package wlq_test

import (
	"bytes"
	"fmt"
	"testing"

	"wlq"
	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
	"wlq/internal/gen"
	"wlq/internal/logio"
	"wlq/internal/models"
	"wlq/internal/stream"
)

// TestEndToEndConsistency is the kitchen-sink cross-check: for several
// generated workloads and a battery of queries, every execution path in the
// repository must agree — naive vs merge joins, optimizer on vs off,
// serial vs parallel, batch vs streaming — and every produced incident
// must pass the independent Definition 4 verifier and yield bindings.
func TestEndToEndConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end consistency is slow")
	}

	type workload struct {
		name    string
		log     *wlq.Log
		queries []string
	}
	var workloads []workload

	clinicLog, err := wlq.ClinicLog(120, 5)
	if err != nil {
		t.Fatal(err)
	}
	workloads = append(workloads, workload{
		name: "clinic",
		log:  clinicLog,
		queries: []string{
			"UpdateRefer -> GetReimburse",
			"GetReimburse -> UpdateRefer",
			"SeeDoctor . PayTreatment",
			"GetRefer[balance>5000]",
			"(SeeDoctor -> PayTreatment) | (SeeDoctor -> UpdateRefer)",
			"UpdateRefer & TakeTreatment",
			"!GetRefer . CheckIn",
		},
	})
	for name, c := range models.All() {
		l, err := c.Generate(120, 7)
		if err != nil {
			t.Fatal(err)
		}
		var queries []string
		for _, a := range c.Anomalies {
			queries = append(queries, a.Query)
		}
		acts := wlq.ProfileLog(l).TopActivities(3)
		if len(acts) >= 2 {
			queries = append(queries,
				acts[0]+" -> "+acts[1],
				acts[0]+" . "+acts[1],
				acts[0]+" & "+acts[1],
				acts[0]+" | "+acts[1],
			)
		}
		workloads = append(workloads, workload{name: name, log: l, queries: queries})
	}
	workloads = append(workloads, workload{
		name: "random-skewed",
		log: gen.MustRandomLog(gen.LogParams{
			Instances: 40, MeanLength: 25, Alphabet: gen.Alphabet(6), Skew: 1.2, Seed: 31,
		}),
		queries: []string{
			"Act00 -> Act01 -> Act02",
			"Act00 & Act05",
			"(Act00 . Act01) | (Act00 . Act02)",
			"!Act00 . !Act01",
		},
	})

	for _, wl := range workloads {
		wl := wl
		t.Run(wl.name, func(t *testing.T) {
			engines := map[string]*wlq.Engine{
				"default":  wlq.NewEngine(wl.log),
				"naive":    wlq.NewEngine(wl.log, wlq.WithStrategy(wlq.StrategyNaive)),
				"no-opt":   wlq.NewEngine(wl.log, wlq.WithoutOptimizer()),
				"naive-no": wlq.NewEngine(wl.log, wlq.WithStrategy(wlq.StrategyNaive), wlq.WithoutOptimizer()),
			}
			ix := eval.NewIndex(wl.log)
			plainEval := eval.New(ix, eval.Options{})

			for _, q := range wl.queries {
				reference, err := engines["default"].Query(q)
				if err != nil {
					t.Fatalf("%s: %v", q, err)
				}
				for name, e := range engines {
					got, err := e.Query(q)
					if err != nil {
						t.Fatalf("%s engine %s: %v", q, name, err)
					}
					if !got.Equal(reference) {
						t.Errorf("%s: engine %s disagrees", q, name)
					}
					exists, err := e.Exists(q)
					if err != nil {
						t.Fatal(err)
					}
					if exists != (reference.Len() > 0) {
						t.Errorf("%s: engine %s Exists mismatch", q, name)
					}
				}

				// Parallel evaluation agrees.
				p := pattern.MustParse(q)
				for _, workers := range []int{2, 7} {
					if !plainEval.EvalParallel(p, workers).Equal(reference) {
						t.Errorf("%s: EvalParallel(%d) disagrees", q, workers)
					}
				}

				// Every incident verifies and binds.
				for _, inc := range reference.Incidents() {
					if !plainEval.Verify(p, inc) {
						t.Errorf("%s: incident %s fails the Definition 4 verifier", q, inc)
					}
					if _, err := engines["default"].BindIncident(q, inc); err != nil {
						t.Errorf("%s: incident %s has no bindings: %v", q, inc, err)
					}
				}
			}

			// Streaming monitor agrees with batch per-instance counts.
			monitor := stream.NewMonitor(nil)
			for i, q := range wl.queries {
				if err := monitor.Watch(fmt.Sprintf("w%d", i), q); err != nil {
					t.Fatal(err)
				}
			}
			if err := monitor.IngestLog(wl.log); err != nil {
				t.Fatal(err)
			}
			for i, q := range wl.queries {
				batch, err := engines["default"].InstancesMatching(q)
				if err != nil {
					t.Fatal(err)
				}
				if got := monitor.FiredInstances(fmt.Sprintf("w%d", i)); got != len(batch) {
					t.Errorf("%s: monitor fired %d instances, batch %d", q, got, len(batch))
				}
			}

			// Serialization round trips preserve all query results.
			for _, format := range []logio.Format{logio.FormatJSONL, logio.FormatText} {
				var buf bytes.Buffer
				if err := logio.Encode(&buf, wl.log, format); err != nil {
					t.Fatal(err)
				}
				back, err := logio.Decode(&buf, format)
				if err != nil {
					t.Fatal(err)
				}
				e2 := wlq.NewEngine(back)
				for _, q := range wl.queries {
					a, err := engines["default"].Query(q)
					if err != nil {
						t.Fatal(err)
					}
					b, err := e2.Query(q)
					if err != nil {
						t.Fatal(err)
					}
					if !a.Equal(b) {
						t.Errorf("%s: results changed across %v round trip", q, format)
					}
				}
			}
		})
	}
}
