// Command wlq runs incident-pattern queries over workflow log files.
//
// Usage:
//
//	wlq -log referrals.jsonl -q "UpdateRefer -> GetReimburse"
//	wlq -log fig3 -q "SeeDoctor -> (UpdateRefer -> GetReimburse)" -records
//	wlq -log clinic:500:7 -q "GetRefer[balance>5000]" -group-by year
//	wlq -log big.jsonl -q "A -> B" -exists
//	wlq -log big.jsonl -q "(A -> B) | (A -> C)" -explain
//
// The -log flag accepts a file path (.jsonl/.json/.log/.txt/.tsv), the
// literal "fig3" for the paper's Figure 3 example, or
// "clinic:<instances>:<seed>" for a generated clinic-referral log.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"wlq"
	"wlq/internal/audit"
	"wlq/internal/models"
)

// traceOut receives the -trace rendering (span tree + cost table). It goes
// to stderr so piping incident output stays clean; tests override it.
var traceOut io.Writer = os.Stderr

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wlq:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("wlq", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		logSpec     = fs.String("log", "", "log source: file path, \"fig3\", \"clinic:<instances>:<seed>\", or \"model:<name>:<instances>:<seed>\"")
		query       = fs.String("q", "", "incident-pattern query")
		exists      = fs.Bool("exists", false, "print only whether any incident exists")
		count       = fs.Bool("count", false, "print only the number of incidents")
		students    = fs.Bool("instances", false, "print only the number of distinct workflow instances with a match")
		records     = fs.Bool("records", false, "print each incident's full log records")
		bind        = fs.Bool("bind", false, "print which atom of the query matched which record")
		explain     = fs.Bool("explain", false, "print the incident tree and plan instead of evaluating")
		groupBy     = fs.String("group-by", "", "group incident counts by this attribute")
		groupScope  = fs.String("group-scope", "incident", "attribute lookup scope for -group-by: incident or instance")
		naive       = fs.Bool("naive", false, "use the paper's verbatim Algorithm 1 joins")
		columnar    = fs.Bool("columnar", false, "use the columnar storage backend (interned activities, posting lists)")
		noOpt       = fs.Bool("no-optimize", false, "disable the Theorem 2-5 query optimizer")
		limit       = fs.Int("limit", 0, "best-effort cap on incidents per operator per instance (0 = unlimited)")
		maxComp     = fs.Uint64("max-comparisons", 0, "abort a query after this many record comparisons (0 = unlimited)")
		timeout     = fs.Duration("timeout", 0, "abort a query after this much wall time, e.g. 5s (0 = unlimited)")
		trace       = fs.Bool("trace", false, "print the execution trace (span tree and Lemma 1 cost table) to stderr")
		shards      = fs.Int("shards", 0, "evaluate in this many isolated wid-range failure domains (0 = off, -1 = GOMAXPROCS)")
		partial     = fs.Bool("partial", false, "with -shards: accept a partial result when shards fail, printing what was excluded")
		adaptive    = fs.Bool("adaptive", false, "rank plans with measured selectivities persisted across runs (see -stats-file)")
		statsFile   = fs.String("stats-file", "", "with -adaptive: selectivity statistics snapshot path (default: <log>.stats.json next to the log file)")
		stats       = fs.Bool("stats", false, "print log statistics and exit (no query needed)")
		dfg         = fs.Bool("dfg", false, "print the directly-follows graph and exit (no query needed)")
		conform     = fs.String("conform", "", "check every instance against this model (orders, loans, helpdesk) and exit")
		auditModel  = fs.String("audit", "", "derive compliance queries from this model's clean reference and audit the log")
		dot         = fs.Bool("dot", false, "with -dfg: emit Graphviz DOT instead of text")
		interactive = fs.Bool("i", false, "interactive mode: read queries from stdin")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logSpec == "" {
		fs.Usage()
		return fmt.Errorf("missing -log")
	}
	log, err := loadLog(*logSpec)
	if err != nil {
		return err
	}

	if *stats {
		printStats(out, log)
		return nil
	}
	if *dfg {
		g := wlq.DirectlyFollows(log, true)
		if *dot {
			fmt.Fprint(out, g.Dot(*logSpec))
		} else {
			fmt.Fprint(out, g)
		}
		return nil
	}
	if *conform != "" {
		return runConformance(out, log, *conform)
	}
	if *auditModel != "" {
		c, err := models.ByName(*auditModel)
		if err != nil {
			return err
		}
		report, err := audit.Check(log, c.Reference)
		if err != nil {
			return err
		}
		fmt.Fprint(out, report)
		return nil
	}
	var opts []wlq.Option
	if *naive {
		opts = append(opts, wlq.WithStrategy(wlq.StrategyNaive))
	}
	if *columnar {
		opts = append(opts, wlq.WithColumnar())
	}
	if *noOpt {
		opts = append(opts, wlq.WithoutOptimizer())
	}
	if *limit > 0 {
		opts = append(opts, wlq.WithLimit(*limit))
	}
	if b := (wlq.Budget{MaxComparisons: *maxComp, MaxWallTime: *timeout}); !b.IsZero() {
		opts = append(opts, wlq.WithBudget(b))
	}
	if *statsFile != "" && !*adaptive {
		return fmt.Errorf("-stats-file requires -adaptive")
	}
	var (
		registry  *wlq.StatsRegistry
		statsPath string
	)
	if *adaptive {
		statsPath = *statsFile
		if statsPath == "" {
			statsPath = wlq.StatsPathFor(*logSpec)
		}
		if statsPath == "" {
			registry = wlq.NewStatsRegistry() // generated log: in-memory only
		} else if registry, err = wlq.LoadStats(statsPath); err != nil {
			return fmt.Errorf("load stats: %w", err)
		}
		opts = append(opts, wlq.WithStats(registry))
	}
	// saveStats persists measured selectivities for the next run; called
	// only after a successful evaluation (the registry never sees failed or
	// partial queries, so any snapshot is safe to write).
	saveStats := func() error {
		if registry == nil || statsPath == "" {
			return nil
		}
		return wlq.SaveStats(registry, statsPath)
	}
	if *interactive {
		if err := repl(wlq.NewEngine(log, opts...), stdin, out); err != nil {
			return err
		}
		return saveStats()
	}
	if *query == "" {
		fs.Usage()
		return fmt.Errorf("missing -q")
	}
	engine := wlq.NewEngine(log, opts...)

	switch {
	case *explain:
		text, err := engine.Explain(*query)
		if err != nil {
			return err
		}
		fmt.Fprint(out, text)
	case *exists:
		ok, err := engine.Exists(*query)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, ok)
	case *count:
		n, err := engine.Count(*query)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, n)
	case *students:
		n, err := engine.DistinctInstances(*query)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, n)
	case *groupBy != "":
		var report *wlq.Report
		switch *groupScope {
		case "incident":
			report, err = engine.GroupByAttr(*query, *groupBy)
		case "instance":
			report, err = engine.GroupByInstanceAttr(*query, *groupBy)
		default:
			return fmt.Errorf("unknown -group-scope %q (want incident or instance)", *groupScope)
		}
		if err != nil {
			return err
		}
		fmt.Fprint(out, report)
	case *shards != 0:
		if *trace {
			return fmt.Errorf("-shards and -trace are mutually exclusive")
		}
		set, comp, err := engine.QuerySharded(context.Background(), *query, *shards)
		if err != nil {
			return err
		}
		if !comp.Complete && !*partial {
			return fmt.Errorf("incomplete result: %d of %d shards lost (%d wids excluded; %s) — re-run with -partial to accept it",
				comp.Failed+comp.Skipped, comp.Shards, comp.ExcludedWIDs, comp.Failures[0].Cause)
		}
		fmt.Fprintf(out, "%d incident(s)\n", set.Len())
		for _, inc := range set.Incidents() {
			fmt.Fprintln(out, " ", inc)
			if *records {
				for _, rec := range engine.IncidentRecords(inc) {
					fmt.Fprintln(out, "   ", rec)
				}
			}
		}
		if comp.Complete {
			fmt.Fprintf(out, "complete: all %d shard(s) evaluated\n", comp.Shards)
		} else {
			fmt.Fprintf(out, "PARTIAL: %d of %d shard(s) in result, %d wid(s) excluded\n",
				comp.Succeeded, comp.Shards, comp.ExcludedWIDs)
			for _, f := range comp.Failures {
				fmt.Fprintf(out, "  shard %d (wids %d-%d, %d wids): %s\n",
					f.Shard, f.WIDMin, f.WIDMax, f.WIDs, f.Cause)
			}
		}
	default:
		var set *wlq.IncidentSet
		if *trace {
			var qt *wlq.QueryTrace
			set, qt, err = engine.QueryTraced(context.Background(), *query)
			if err != nil {
				return err
			}
			qt.Render(traceOut)
		} else {
			set, err = engine.Query(*query)
			if err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "%d incident(s)\n", set.Len())
		for _, inc := range set.Incidents() {
			fmt.Fprintln(out, " ", inc)
			if *records {
				for _, rec := range engine.IncidentRecords(inc) {
					fmt.Fprintln(out, "   ", rec)
				}
			}
			if *bind {
				bindings, err := engine.BindIncident(*query, inc)
				if err != nil {
					return err
				}
				for _, ab := range bindings {
					fmt.Fprintf(out, "    %s => is-lsn %d\n", ab.Atom, ab.Seq)
				}
			}
		}
	}
	return saveStats()
}

// loadLog resolves the -log flag; wlq.OpenLog implements the spec syntax
// (shared with cmd/wlq-serve).
func loadLog(spec string) (*wlq.Log, error) {
	return wlq.OpenLog(spec)
}

// runConformance checks every instance's activity trace against the named
// model's language: complete instances must be full words, in-flight ones
// valid prefixes.
func runConformance(out io.Writer, log *wlq.Log, modelName string) error {
	c, err := models.ByName(modelName)
	if err != nil {
		return err
	}
	total, bad := 0, 0
	for _, wid := range log.WIDs() {
		var trace []string
		for _, r := range log.Instance(wid) {
			if r.IsStart() || r.IsEnd() {
				continue
			}
			trace = append(trace, r.Activity)
		}
		total++
		ok := false
		kind := "prefix"
		if log.InstanceComplete(wid) {
			ok = c.Model.Accepts(trace)
			kind = "trace"
		} else {
			ok = c.Model.AcceptsPrefix(trace)
		}
		if !ok {
			bad++
			fmt.Fprintf(out, "wid %d: %s does not conform: %s\n", wid, kind, strings.Join(trace, " "))
		}
	}
	fmt.Fprintf(out, "%d of %d instance(s) conform to model %q\n", total-bad, total, modelName)
	return nil
}

func printStats(out io.Writer, log *wlq.Log) {
	fmt.Fprint(out, wlq.ProfileLog(log))
}
