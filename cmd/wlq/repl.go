package main

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"wlq"
)

// repl reads queries from in, one per line, and evaluates each against the
// engine. Besides plain queries it understands a few commands:
//
//	\help             list commands
//	\stats            log statistics
//	\tree <query>     print the query's incident tree
//	\explain <query>  print the evaluation plan
//	\count <query>    print |incL(p)| only
//	\exists <query>   print yes/no only
//	\quit             exit
func repl(engine *wlq.Engine, in io.Reader, out io.Writer) error {
	fmt.Fprintln(out, `wlq interactive mode — type a query, or \help`)
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "wlq> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch cmd {
		case `\quit`, `\q`, `\exit`:
			return nil
		case `\help`:
			fmt.Fprintln(out, `commands:
  <query>           evaluate and print incidents
  \count <query>    print the number of incidents
  \exists <query>   print whether any incident exists
  \tree <query>     print the incident tree (paper Figure 4)
  \explain <query>  print the evaluation plan
  \stats            print log statistics
  \quit             exit`)
		case `\stats`:
			printStats(out, engine.Log())
		case `\tree`:
			p, err := wlq.ParsePattern(rest)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprint(out, wlq.PatternTree(p))
		case `\explain`:
			text, err := engine.Explain(rest)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprint(out, text)
		case `\count`:
			n, err := engine.Count(rest)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintln(out, n)
		case `\exists`:
			ok, err := engine.Exists(rest)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintln(out, ok)
		default:
			if strings.HasPrefix(cmd, `\`) {
				fmt.Fprintf(out, "error: unknown command %s (try \\help)\n", cmd)
				continue
			}
			set, err := engine.Query(line)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintf(out, "%d incident(s)\n", set.Len())
			const maxShown = 20
			for i, inc := range set.Incidents() {
				if i == maxShown {
					fmt.Fprintf(out, "  ... %d more\n", set.Len()-maxShown)
					break
				}
				fmt.Fprintln(out, " ", inc)
			}
		}
	}
}
