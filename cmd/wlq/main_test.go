package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wlq"
)

// runOK executes run and returns its output, failing the test on error.
func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, strings.NewReader(""), &buf); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s", args, err, buf.String())
	}
	return buf.String()
}

// runErr executes run expecting an error.
func runErr(t *testing.T, args ...string) error {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, strings.NewReader(""), &buf)
	if err == nil {
		t.Fatalf("run(%v): want error, output:\n%s", args, buf.String())
	}
	return err
}

func TestQueryFig3(t *testing.T) {
	out := runOK(t, "-log", "fig3", "-q", "UpdateRefer -> GetReimburse")
	if !strings.Contains(out, "1 incident(s)") || !strings.Contains(out, "wid=2:{5,9}") {
		t.Errorf("output:\n%s", out)
	}
}

func TestQueryWithRecords(t *testing.T) {
	out := runOK(t, "-log", "fig3", "-q", "UpdateRefer -> GetReimburse", "-records")
	for _, want := range []string{"lsn=14", "lsn=20", "UpdateRefer", "GetReimburse"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestExistsCountInstances(t *testing.T) {
	if out := runOK(t, "-log", "fig3", "-q", "SeeDoctor", "-exists"); strings.TrimSpace(out) != "true" {
		t.Errorf("-exists = %q", out)
	}
	if out := runOK(t, "-log", "fig3", "-q", "SeeDoctor", "-count"); strings.TrimSpace(out) != "4" {
		t.Errorf("-count = %q", out)
	}
	if out := runOK(t, "-log", "fig3", "-q", "SeeDoctor", "-instances"); strings.TrimSpace(out) != "2" {
		t.Errorf("-instances = %q", out)
	}
}

func TestStats(t *testing.T) {
	out := runOK(t, "-log", "fig3", "-stats")
	for _, want := range []string{"records:         20", "instances:       3 (0 complete)", "GetRefer", "max concurrent"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestExplain(t *testing.T) {
	out := runOK(t, "-log", "fig3", "-q", "(SeeDoctor -> PayTreatment) | (SeeDoctor -> UpdateRefer)", "-explain")
	for _, want := range []string{"incident tree", "optimized:", "estimated cost"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestClinicSpecAndGroupBy(t *testing.T) {
	out := runOK(t, "-log", "clinic:50:7", "-q", "GetRefer", "-group-by", "year")
	if !strings.Contains(out, "201") {
		t.Errorf("group-by output:\n%s", out)
	}
	out = runOK(t, "-log", "clinic:50:7", "-q", "GetReimburse", "-group-by", "hospital", "-group-scope", "instance")
	if !strings.Contains(out, "Hospital") {
		t.Errorf("instance-scope group-by output:\n%s", out)
	}
}

func TestStrategiesAgreeViaCLI(t *testing.T) {
	base := runOK(t, "-log", "clinic:30:3", "-q", "SeeDoctor . PayTreatment", "-count")
	naive := runOK(t, "-log", "clinic:30:3", "-q", "SeeDoctor . PayTreatment", "-count", "-naive")
	noopt := runOK(t, "-log", "clinic:30:3", "-q", "SeeDoctor . PayTreatment", "-count", "-no-optimize")
	if base != naive || base != noopt {
		t.Errorf("counts differ: %q / %q / %q", base, naive, noopt)
	}
}

func TestLimitFlag(t *testing.T) {
	full := runOK(t, "-log", "clinic:10:3", "-q", "!X & !Y", "-count")
	limited := runOK(t, "-log", "clinic:10:3", "-q", "!X & !Y", "-count", "-limit", "2")
	if full == limited {
		t.Errorf("limit had no effect: %q vs %q", full, limited)
	}
}

func TestFileLoading(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.jsonl")
	logData, err := wlq.ClinicLog(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := wlq.SaveLog(path, logData); err != nil {
		t.Fatal(err)
	}
	out := runOK(t, "-log", path, "-q", "GetRefer", "-instances")
	if strings.TrimSpace(out) != "5" {
		t.Errorf("instances from file = %q", out)
	}
}

func TestErrorPaths(t *testing.T) {
	tests := [][]string{
		{},               // missing -log
		{"-log", "fig3"}, // missing -q
		{"-log", "absent.jsonl", "-q", "A"},
		{"-log", "clinic:bad:1", "-q", "A"},
		{"-log", "clinic:1", "-q", "A"},
		{"-log", "clinic:1:x", "-q", "A"},
		{"-log", "fig3", "-q", "A ->"},                   // syntax error
		{"-log", "fig3", "-q", "A ->", "-exists"},        // syntax error via exists
		{"-log", "fig3", "-q", "A ->", "-count"},         // ... count
		{"-log", "fig3", "-q", "A ->", "-instances"},     // ... instances
		{"-log", "fig3", "-q", "A ->", "-explain"},       // ... explain
		{"-log", "fig3", "-q", "A ->", "-group-by", "x"}, // ... group-by
		{"-log", "fig3", "-q", "A", "-group-by", "x", "-group-scope", "bogus"},
		{"-badflag"},
	}
	for _, args := range tests {
		runErr(t, args...)
	}
}

func TestCSVLoading(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.csv")
	csv := "case,activity\no-1,Pay\no-1,Ship\no-2,Ship\no-2,Pay\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runOK(t, "-log", path, "-q", "Ship -> Pay", "-instances")
	if strings.TrimSpace(out) != "1" {
		t.Errorf("ship-before-pay instances = %q, want 1", out)
	}
}

func TestREPL(t *testing.T) {
	script := strings.Join([]string{
		"UpdateRefer -> GetReimburse",
		`\count SeeDoctor`,
		`\exists CompleteRefer`,
		`\tree A -> B`,
		`\explain SeeDoctor`,
		`\stats`,
		`\help`,
		"A -> ",        // syntax error, must not abort the session
		`\count A ->`,  // ditto
		`\exists A ->`, // ditto
		`\tree (`,      // ditto
		`\explain )`,   // ditto
		`\bogus`,       // unknown command
		"",             // blank line skipped
		`\quit`,
	}, "\n") + "\n"
	var buf bytes.Buffer
	if err := run([]string{"-log", "fig3", "-i"}, strings.NewReader(script), &buf); err != nil {
		t.Fatalf("repl: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"wid=2:{5,9}",         // query result
		"4",                   // \count SeeDoctor
		"true",                // \exists CompleteRefer
		"(->) sequential",     // \tree
		"estimated cost",      // \explain
		"records:         20", // \stats
		"commands:",           // \help
		"error:",              // syntax errors reported inline
		"unknown command",     // \bogus
	} {
		if !strings.Contains(out, want) {
			t.Errorf("REPL output missing %q:\n%s", want, out)
		}
	}
}

func TestREPLEOF(t *testing.T) {
	// EOF without \quit ends cleanly.
	var buf bytes.Buffer
	if err := run([]string{"-log", "fig3", "-i"}, strings.NewReader("SeeDoctor\n"), &buf); err != nil {
		t.Fatalf("repl EOF: %v", err)
	}
	if !strings.Contains(buf.String(), "4 incident(s)") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestREPLTruncatesLongResults(t *testing.T) {
	var buf bytes.Buffer
	script := "!Nothing -> !Nothing\n\\quit\n"
	if err := run([]string{"-log", "clinic:20:1", "-i"}, strings.NewReader(script), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "more") {
		t.Errorf("expected truncation marker in:\n%.500s", buf.String())
	}
}

func TestBindFlag(t *testing.T) {
	out := runOK(t, "-log", "fig3", "-q", "SeeDoctor -> (UpdateRefer -> GetReimburse)", "-bind")
	for _, want := range []string{"SeeDoctor => is-lsn 4", "UpdateRefer => is-lsn 5", "GetReimburse => is-lsn 9"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestModelSpec(t *testing.T) {
	out := runOK(t, "-log", "model:loans:200:3", "-q", "Reject -> Disburse", "-instances")
	n := strings.TrimSpace(out)
	if n == "0" || n == "" {
		t.Errorf("planted loan anomaly not found: %q", out)
	}
	runErr(t, "-log", "model:nope:10:1", "-q", "A")
	runErr(t, "-log", "model:loans:x:1", "-q", "A")
	runErr(t, "-log", "model:loans:10:y", "-q", "A")
	runErr(t, "-log", "model:loans", "-q", "A")
}

func TestXESLoading(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.xes")
	xes := `<log><trace>
		<event><string key="concept:name" value="Pay"/></event>
		<event><string key="concept:name" value="Ship"/></event>
	</trace></log>`
	if err := os.WriteFile(path, []byte(xes), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runOK(t, "-log", path, "-q", "Pay . Ship", "-count")
	if strings.TrimSpace(out) != "1" {
		t.Errorf("xes query = %q", out)
	}
}

func TestDFGFlag(t *testing.T) {
	out := runOK(t, "-log", "fig3", "-dfg")
	if !strings.Contains(out, "SeeDoctor -> PayTreatment  3") {
		t.Errorf("dfg output:\n%s", out)
	}
	dot := runOK(t, "-log", "fig3", "-dfg", "-dot")
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, `"GetRefer" -> "CheckIn"`) {
		t.Errorf("dot output:\n%s", dot)
	}
}

func TestConformFlag(t *testing.T) {
	out := runOK(t, "-log", "model:orders:40:3", "-conform", "orders")
	if !strings.Contains(out, "40 of 40 instance(s) conform") {
		t.Errorf("conform output:\n%s", out)
	}
	// The clinic log does not follow the orders model.
	out = runOK(t, "-log", "clinic:5:1", "-conform", "orders")
	if !strings.Contains(out, "0 of 5 instance(s) conform") {
		t.Errorf("cross-model conform output:\n%s", out)
	}
	runErr(t, "-log", "fig3", "-conform", "bogus")
}

func TestAuditFlag(t *testing.T) {
	out := runOK(t, "-log", "model:orders:400:7", "-audit", "orders")
	for _, want := range []string{"VIOLATION", "rule(s) checked"} {
		if !strings.Contains(out, want) {
			t.Errorf("audit output missing %q:\n%s", want, out)
		}
	}
	runErr(t, "-log", "fig3", "-audit", "bogus")
}

// TestTraceFlag: -trace renders the span tree and cost table to traceOut
// (stderr in production) while incident output stays on stdout.
func TestTraceFlag(t *testing.T) {
	var trace bytes.Buffer
	old := traceOut
	traceOut = &trace
	defer func() { traceOut = old }()

	out := runOK(t, "-log", "fig3", "-naive", "-trace",
		"-q", "(GetRefer -> GetReimburse) | (SeeDoctor & CheckIn)")
	if !strings.Contains(out, "incident(s)") {
		t.Errorf("stdout lost the incident listing:\n%s", out)
	}
	if strings.Contains(out, "cost_") || strings.Contains(out, "predicted") {
		t.Errorf("trace leaked onto stdout:\n%s", out)
	}
	text := trace.String()
	for _, want := range []string{"parse", "rewrite", "eval", "predicted", "n1·n2", "strategy: naive"} {
		if !strings.Contains(text, want) {
			t.Errorf("trace output missing %q:\n%s", want, text)
		}
	}
}

func TestShardsFlag(t *testing.T) {
	// The sharded result matches the single-domain one exactly.
	want := runOK(t, "-log", "clinic:40:7", "-q", "UpdateRefer -> GetReimburse")
	got := runOK(t, "-log", "clinic:40:7", "-q", "UpdateRefer -> GetReimburse", "-shards", "4")
	if !strings.HasPrefix(got, want[:strings.Index(want, "\n")]) {
		t.Errorf("sharded incident count differs:\n%s\nvs\n%s", got, want)
	}
	for _, line := range strings.Split(strings.TrimSpace(want), "\n") {
		if !strings.Contains(got, line) {
			t.Errorf("sharded output missing %q:\n%s", line, got)
		}
	}
	if !strings.Contains(got, "complete: all 4 shard(s) evaluated") {
		t.Errorf("missing completeness summary:\n%s", got)
	}
	// -shards -1 means GOMAXPROCS; still complete.
	got = runOK(t, "-log", "fig3", "-q", "SeeDoctor", "-shards", "-1", "-partial")
	if !strings.Contains(got, "complete:") {
		t.Errorf("-shards -1 output:\n%s", got)
	}
	// -shards and -trace are mutually exclusive.
	err := runErr(t, "-log", "fig3", "-q", "SeeDoctor", "-shards", "2", "-trace")
	if !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("err = %v", err)
	}
}
