package main

import (
	"fmt"
	"io"

	"wlq"
	"wlq/internal/benchkit"
)

// The backend suite: a fixed set of queries over a generated clinic log,
// measured per backend and emitted as a benchkit.Report. The queries lean
// atomic-heavy on purpose — single atoms and two-atom operators are where
// the columnar posting lists pay off — with a few composite plans so
// regressions in the join loops are visible too. The count/* and exists/*
// benches answer without materializing incident sets, so they measure the
// storage probe and join arithmetic directly; the incident-mode benches
// include materialization, which is backend-independent and dominates on
// high-cardinality results.
const (
	modeIncidents = "incidents"
	modeCount     = "count"
	modeExists    = "exists"
)

var suiteBenches = []struct {
	name  string
	query string
	mode  string
}{
	{"atom/frequent", "SeeDoctor", modeIncidents},
	{"atom/rare", "GetReimburse", modeIncidents},
	{"atom/negated", "!SeeDoctor", modeIncidents},
	{"consecutive", "CheckIn . SeeDoctor", modeIncidents},
	{"sequential", "SeeDoctor -> PayTreatment", modeIncidents},
	{"choice", "GetRefer | GetReimburse", modeIncidents},
	{"parallel", "UpdateRefer & TakeTreatment", modeIncidents},
	{"chain/seq3", "GetRefer -> (SeeDoctor -> PayTreatment)", modeIncidents},
	{"mixed/choice-of-seqs", "(SeeDoctor -> PayTreatment) | (SeeDoctor -> UpdateRefer)", modeIncidents},
	{"boundary/start-end", "START -> END", modeIncidents},
	{"count/consecutive", "CheckIn . SeeDoctor", modeCount},
	{"count/sequential", "SeeDoctor -> PayTreatment", modeCount},
	{"count/parallel", "UpdateRefer & TakeTreatment", modeCount},
	{"exists/frequent", "SeeDoctor -> PayTreatment", modeExists},
	{"exists/absent", "NoSuchActivity -> SeeDoctor", modeExists},
}

// runSuite measures every suite query on one backend and writes the report
// (and a human-readable table to out). With adaptive, a fresh statistics
// registry rides along: the warm-up run of each bench feeds it measured
// selectivities, so later benches may be planned adaptively — the digest
// gate proves answers stay identical either way.
func runSuite(out io.Writer, backend, jsonPath string, instances int, seed int64, adaptive bool) error {
	var opts []wlq.Option
	switch backend {
	case "row":
	case "columnar":
		opts = append(opts, wlq.WithColumnar())
	default:
		return fmt.Errorf("unknown backend %q (want row or columnar)", backend)
	}
	label := backend
	if adaptive {
		opts = append(opts, wlq.WithStats(wlq.NewStatsRegistry()))
		label += "+adaptive"
	}
	log, err := wlq.ClinicLog(instances, seed)
	if err != nil {
		return err
	}
	engine := wlq.NewEngine(log, opts...)

	report := benchkit.NewReport(label, benchkit.LogMeta{
		Source:     "clinic",
		Instances:  instances,
		Records:    log.Len(),
		Activities: len(log.Activities()),
		Seed:       seed,
	})
	rows := [][]string{{"bench", "query", "time", "incidents"}}
	for _, b := range suiteBenches {
		// One non-measured run captures the answer for the digest; Measure
		// then times steady-state evaluations (parse + optimize included,
		// evaluation dominates at suite log sizes).
		var (
			answer    string
			incidents int
			run       func()
		)
		switch b.mode {
		case modeIncidents:
			set, err := engine.Query(b.query)
			if err != nil {
				return fmt.Errorf("bench %s: %w", b.name, err)
			}
			answer, incidents = set.String(), set.Len()
			run = func() {
				if _, err := engine.Query(b.query); err != nil {
					panic(err)
				}
			}
		case modeCount:
			n, err := engine.Count(b.query)
			if err != nil {
				return fmt.Errorf("bench %s: %w", b.name, err)
			}
			answer, incidents = fmt.Sprintf("count:%d", n), n
			run = func() {
				if _, err := engine.Count(b.query); err != nil {
					panic(err)
				}
			}
		case modeExists:
			ok, err := engine.Exists(b.query)
			if err != nil {
				return fmt.Errorf("bench %s: %w", b.name, err)
			}
			answer = fmt.Sprintf("exists:%v", ok)
			run = func() {
				if _, err := engine.Exists(b.query); err != nil {
					panic(err)
				}
			}
		default:
			return fmt.Errorf("bench %s: unknown mode %q", b.name, b.mode)
		}
		// Min of three measurement rounds: the minimum is the standard
		// noise-robust statistic for microbenchmarks (GC pauses and
		// scheduler jitter only ever add time, never subtract it).
		d := benchkit.Measure(run)
		for round := 0; round < 2; round++ {
			if m := benchkit.Measure(run); m < d {
				d = m
			}
		}
		report.Benches = append(report.Benches, benchkit.BenchItem{
			Name:      b.name,
			Query:     b.query,
			NsPerOp:   d.Nanoseconds(),
			Incidents: incidents,
			Digest:    benchkit.Digest(answer),
		})
		rows = append(rows, []string{b.name, b.query, d.String(), fmt.Sprintf("%d", incidents)})
	}
	report.Finalize()

	fmt.Fprintf(out, "== backend suite: %s (clinic instances=%d seed=%d records=%d) ==\n",
		label, instances, seed, log.Len())
	fmt.Fprint(out, benchkit.Align(rows))
	fmt.Fprintf(out, "combined answer digest: %s\n", report.Digest)
	if jsonPath != "" {
		if err := benchkit.WriteReport(jsonPath, report); err != nil {
			return err
		}
		fmt.Fprintf(out, "report written to %s\n", jsonPath)
	}
	return nil
}

// compareReports loads two reports and fails on any answer-digest or
// workload mismatch; on success it prints the speedup table.
func compareReports(out io.Writer, pathA, pathB string) error {
	a, err := benchkit.ReadReport(pathA)
	if err != nil {
		return err
	}
	b, err := benchkit.ReadReport(pathB)
	if err != nil {
		return err
	}
	table, err := benchkit.CompareReports(a, b)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "== %s (%s) vs %s (%s) ==\n", pathA, a.Backend, pathB, b.Backend)
	fmt.Fprint(out, table)
	fmt.Fprintln(out, "answer digests match")
	return nil
}
