// Command wlq-bench regenerates the evaluation tables of EXPERIMENTS.md:
// the paper's worked examples, the Lemma 1 and Theorem 1 scaling curves,
// the Theorems 2–5 law matrix, and the ablation studies.
//
// Usage:
//
//	wlq-bench                 # run every experiment (several minutes)
//	wlq-bench -quick          # shrunken sweeps (seconds)
//	wlq-bench -exp E6         # one experiment by id ...
//	wlq-bench -exp lemma1-choice   # ... or by name
//	wlq-bench -list           # list experiments
//
// The backend suite produces the checked-in BENCH_*.json run summaries
// (see the Benchmarks section of README.md):
//
//	wlq-bench -suite -backend row -json BENCH_baseline.json
//	wlq-bench -suite -backend columnar -json BENCH_columnar.json
//	wlq-bench -compare BENCH_baseline.json,BENCH_columnar.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"wlq/internal/benchkit"
	"wlq/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wlq-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("wlq-bench", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		exp   = fs.String("exp", "", "run a single experiment (id like E3, or name)")
		quick = fs.Bool("quick", false, "shrink sweeps for a fast smoke run")
		list  = fs.Bool("list", false, "list experiments and exit")

		suite     = fs.Bool("suite", false, "run the backend bench suite instead of the experiments")
		backend   = fs.String("backend", "row", "with -suite: storage backend, row or columnar")
		adaptive  = fs.Bool("adaptive", false, "with -suite: rank plans with measured selectivities fed back from earlier benches")
		jsonPath  = fs.String("json", "", "with -suite: write the machine-readable run summary to this path")
		instances = fs.Int("instances", 1500, "with -suite: clinic log size (workflow instances)")
		seed      = fs.Int64("seed", 42, "with -suite: clinic log generation seed")
		compare   = fs.String("compare", "", "compare two run summaries: -compare a.json,b.json (exits non-zero when answers differ)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare != "" {
		parts := strings.Split(*compare, ",")
		if len(parts) != 2 {
			return fmt.Errorf("-compare wants two comma-separated paths, got %q", *compare)
		}
		return compareReports(out, strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]))
	}
	if *suite {
		n := *instances
		if *quick {
			n = 150
		}
		return runSuite(out, *backend, *jsonPath, n, *seed, *adaptive)
	}
	if *list {
		rows := [][]string{{"id", "name", "reproduces"}}
		for _, e := range experiments.All() {
			rows = append(rows, []string{e.ID, e.Name, e.Paper})
		}
		fmt.Fprint(out, benchkit.Align(rows))
		return nil
	}
	if *exp != "" {
		e, ok := experiments.Find(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *exp)
		}
		fmt.Fprintf(out, "######## %s %s — %s ########\n\n", e.ID, e.Name, e.Paper)
		return e.Run(out, *quick)
	}
	return experiments.RunAll(out, *quick)
}
