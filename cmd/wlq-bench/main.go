// Command wlq-bench regenerates the evaluation tables of EXPERIMENTS.md:
// the paper's worked examples, the Lemma 1 and Theorem 1 scaling curves,
// the Theorems 2–5 law matrix, and the ablation studies.
//
// Usage:
//
//	wlq-bench                 # run every experiment (several minutes)
//	wlq-bench -quick          # shrunken sweeps (seconds)
//	wlq-bench -exp E6         # one experiment by id ...
//	wlq-bench -exp lemma1-choice   # ... or by name
//	wlq-bench -list           # list experiments
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"wlq/internal/benchkit"
	"wlq/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wlq-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("wlq-bench", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		exp   = fs.String("exp", "", "run a single experiment (id like E3, or name)")
		quick = fs.Bool("quick", false, "shrink sweeps for a fast smoke run")
		list  = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		rows := [][]string{{"id", "name", "reproduces"}}
		for _, e := range experiments.All() {
			rows = append(rows, []string{e.ID, e.Name, e.Paper})
		}
		fmt.Fprint(out, benchkit.Align(rows))
		return nil
	}
	if *exp != "" {
		e, ok := experiments.Find(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *exp)
		}
		fmt.Fprintf(out, "######## %s %s — %s ########\n\n", e.ID, e.Name, e.Paper)
		return e.Run(out, *quick)
	}
	return experiments.RunAll(out, *quick)
}
