package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"E1", "E10", "thm1-worstcase", "Lemma 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in -list output:\n%s", want, out)
		}
	}
}

func TestSingleExperimentQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "E1", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MATCH") {
		t.Errorf("E1 output:\n%s", buf.String())
	}
	// By name too.
	buf.Reset()
	if err := run([]string{"-exp", "incident-tree", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "incident tree") {
		t.Errorf("E2 output:\n%s", buf.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "E99"}, &buf); err == nil {
		t.Error("want error for unknown experiment")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("want error for bad flag")
	}
}
