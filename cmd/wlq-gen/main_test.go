package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wlq"
)

func runGen(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), err
}

func TestFig3ToStdout(t *testing.T) {
	out, _, err := runGen(t, "-model", "fig3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"GetRefer", "CheckIn", "lsn"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in stdout", want)
		}
	}
}

func TestClinicToFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.jsonl")
	_, stderr, err := runGen(t, "-model", "clinic", "-instances", "20", "-seed", "5", "-o", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr, "wrote") {
		t.Errorf("stderr = %q", stderr)
	}
	logData, err := wlq.LoadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(logData.WIDs()) != 20 {
		t.Errorf("instances = %d", len(logData.WIDs()))
	}
}

func TestRandomModelRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "random.txt")
	_, _, err := runGen(t,
		"-model", "random", "-instances", "10", "-mean-length", "6",
		"-alphabet", "4", "-skew", "1.0", "-complete", "0.5", "-seed", "3",
		"-o", path)
	if err != nil {
		t.Fatal(err)
	}
	logData, err := wlq.LoadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := logData.Validate(); err != nil {
		t.Errorf("generated log invalid: %v", err)
	}
	acts := logData.Activities()
	// 4 synthetic activities plus START (and possibly END).
	if len(acts) < 4 {
		t.Errorf("activities = %v", acts)
	}
}

func TestGenErrors(t *testing.T) {
	cases := [][]string{
		{"-model", "bogus"},
		{"-model", "random", "-instances", "0"},
		{"-model", "clinic", "-instances", "0"},
		{"-model", "clinic", "-o", "out.unknownext"},
		{"-badflag"},
	}
	for _, args := range cases {
		if _, _, err := runGen(t, args...); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	_, stderr, err := runGen(t, "-model", "clinic", "-instances", "5", "-o", path)
	if err != nil {
		t.Fatal(err)
	}
	_ = stderr
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "case,activity") {
		t.Errorf("csv header missing:\n%.200s", data)
	}
}

func TestDotModel(t *testing.T) {
	for _, model := range []string{"clinic", "orders", "loans", "helpdesk"} {
		out, _, err := runGen(t, "-model", model, "-dot-model")
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if !strings.Contains(out, "digraph") || !strings.Contains(out, "shape=diamond") {
			t.Errorf("%s dot output:\n%.200s", model, out)
		}
	}
	if _, _, err := runGen(t, "-model", "fig3", "-dot-model"); err == nil {
		t.Error("fig3 has no model; want error")
	}
}
