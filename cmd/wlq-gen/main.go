// Command wlq-gen generates workflow logs for experimentation.
//
// Usage:
//
//	wlq-gen -model clinic -instances 1000 -seed 7 -o referrals.jsonl
//	wlq-gen -model random -instances 50 -mean-length 30 -alphabet 12 -skew 1.2 -o random.txt
//	wlq-gen -model fig3 -o fig3.txt
//
// Output format is inferred from the -o extension (.jsonl/.json for JSON
// lines, .log/.txt/.tsv for the compact text format); "-o -" prints the
// Figure 3-style table to stdout.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"wlq"
	"wlq/internal/clinic"
	"wlq/internal/gen"
	"wlq/internal/models"
	"wlq/internal/workflow"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "wlq-gen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("wlq-gen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		model      = fs.String("model", "clinic", "log source: clinic, random, fig3, orders, loans, or helpdesk")
		instances  = fs.Int("instances", 100, "number of workflow instances")
		seed       = fs.Int64("seed", 1, "random seed")
		meanLength = fs.Int("mean-length", 20, "mean activities per instance (random model)")
		alphabet   = fs.Int("alphabet", 8, "activity alphabet size (random model)")
		skew       = fs.Float64("skew", 0, "Zipf skew of activity frequencies (random model)")
		complete   = fs.Float64("complete", 1.0, "fraction of instances that complete")
		out        = fs.String("o", "-", "output file (extension selects format) or - for stdout")
		dotModel   = fs.Bool("dot-model", false, "emit the model's Graphviz flowchart instead of a log (clinic/orders/loans/helpdesk)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *dotModel {
		var m *workflow.Model
		switch *model {
		case "clinic":
			m = clinic.Model()
		case "orders", "loans", "helpdesk":
			c, err := models.ByName(*model)
			if err != nil {
				return err
			}
			m = c.Model
		default:
			return fmt.Errorf("-dot-model: no workflow model for %q", *model)
		}
		fmt.Fprint(stdout, m.Dot())
		return nil
	}

	var log *wlq.Log
	var err error
	switch *model {
	case "fig3":
		log = wlq.ClinicFig3()
	case "clinic":
		log, err = wlq.ClinicLog(*instances, *seed)
	case "orders", "loans", "helpdesk":
		var c models.Catalog
		if c, err = models.ByName(*model); err == nil {
			log, err = c.Generate(*instances, *seed)
		}
	case "random":
		log, err = gen.RandomLog(gen.LogParams{
			Instances:        *instances,
			MeanLength:       *meanLength,
			Alphabet:         gen.Alphabet(*alphabet),
			Skew:             *skew,
			CompleteFraction: *complete,
			Seed:             *seed,
		})
	default:
		return fmt.Errorf("unknown -model %q (want clinic, random, fig3, orders, loans, or helpdesk)", *model)
	}
	if err != nil {
		return err
	}

	if *out == "-" {
		fmt.Fprint(stdout, log)
		return nil
	}
	if strings.HasSuffix(strings.ToLower(*out), ".csv") {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := wlq.ExportCSV(f, log); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	} else if err := wlq.SaveLog(*out, log); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %d records (%d instances) to %s\n",
		log.Len(), len(log.WIDs()), *out)
	return nil
}
