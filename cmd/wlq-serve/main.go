// Command wlq-serve runs the long-lived HTTP query service: it loads one or
// more workflow logs at startup, builds each log's index once, and serves
// incident-pattern queries with plan/result caching.
//
// Usage:
//
//	wlq-serve -log referrals.jsonl
//	wlq-serve -log clinic=clinic:2000:7 -log fig3=fig3 -addr :8080
//	wlq-serve -log big.jsonl -workers 8 -cache 1024 -timeout 5s
//	wlq-serve -log live.jsonl -ingest -wal-dir /var/lib/wlq/wal        (live appends)
//	wlq-serve -log big.jsonl -worker -addr :9001                      (cluster worker)
//	wlq-serve -log big.jsonl -cluster-workers http://w1:9001,http://w2:9002
//	                                                                   (cluster coordinator)
//
// In cluster mode every node loads the same -log specs; the coordinator
// places workflow instances on workers by consistent hash and fans each
// query out to the owners (see docs/OPERATIONS.md, "Cluster deployment").
//
// Each -log flag (repeatable) is either a bare log specification — file
// path, "fig3", "clinic:<instances>:<seed>", "model:<name>:<instances>:<seed>"
// — or "<name>=<spec>" to choose the name the API addresses the log by.
// A bare spec is named after its basename ("referrals" for
// /data/referrals.jsonl).
//
// Endpoints: POST /v1/query, GET /v1/explain, GET /v1/logs, GET /v1/queries
// (the query flight recorder; /v1/queries/{id} for one full capture),
// GET /metrics (JSON, or Prometheus text with ?format=prometheus),
// GET /healthz, GET /readyz and GET /debug/pprof/*. See docs/OPERATIONS.md
// for the full reference and docs/OBSERVABILITY.md for tracing and metrics.
//
// The service logs one structured line per request (slog, text by default,
// JSON with -log-json) and warns about queries slower than -slow-query.
//
// The process shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// get a drain window before the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"wlq"
	"wlq/internal/cluster"
	"wlq/internal/server"
	"wlq/internal/wal"
)

// logFlags collects repeated -log arguments.
type logFlags []string

func (f *logFlags) String() string { return strings.Join(*f, ", ") }

func (f *logFlags) Set(v string) error {
	if v == "" {
		return errors.New("empty -log value")
	}
	*f = append(*f, v)
	return nil
}

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wlq-serve:", err)
		os.Exit(1)
	}
}

// run configures and serves until ctx is cancelled or SIGINT/SIGTERM lands.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("wlq-serve", flag.ContinueOnError)
	fs.SetOutput(out)
	var logs logFlags
	fs.Var(&logs, "log", "log to serve, \"<spec>\" or \"<name>=<spec>\" (repeatable)")
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		workers  = fs.Int("workers", 0, "evaluation workers per query (0 = GOMAXPROCS)")
		cache    = fs.Int("cache", server.DefaultCacheSize, "plan/result cache entries (negative disables)")
		timeout  = fs.Duration("timeout", server.DefaultTimeout, "per-request evaluation timeout")
		maxBody  = fs.Int64("max-body", server.DefaultMaxBody, "request body size limit in bytes")
		naive    = fs.Bool("naive", false, "default to the paper's verbatim Algorithm 1 joins")
		columnar = fs.Bool("columnar", false,
			"build every loaded log's backend as the columnar store (interned activities, posting lists)")
		drain      = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
		slow       = fs.Duration("slow-query", 500*time.Millisecond, "warn about queries slower than this (0 disables)")
		flightSize = fs.Int("flight-recorder-size", server.DefaultFlightRecorderSize,
			"query flight recorder capacity per ring (recent + notable); 0 or negative disables GET /v1/queries")
		adaptive = fs.Bool("adaptive", false,
			"rank plans with measured selectivities aggregated from successful queries (persisted per log as <log>.stats.json)")
		statsFile = fs.String("stats-file", "",
			"with -adaptive and exactly one -log: override the selectivity statistics snapshot path")
		pprofOn = fs.Bool("pprof", true, "expose the GET /debug/pprof/* profiling handlers")
		logJSON = fs.Bool("log-json", false, "emit request logs as JSON instead of text")
		noLog   = fs.Bool("no-request-log", false, "disable structured request logging")

		maxInFlight = fs.Int("max-inflight", server.DefaultMaxInFlight,
			"concurrent queries admitted before shedding with 429 (negative = unlimited)")
		maxComp = fs.Uint64("max-comparisons", 0,
			"per-query comparison budget; exceeding it aborts with 422 (0 = unlimited)")
		maxOutputs = fs.Uint64("max-outputs", 0,
			"per-query produced-incident budget (0 = unlimited)")
		maxResultBytes = fs.Uint64("max-result-bytes", 0,
			"per-query result-size budget in bytes (0 = unlimited)")
		maxCost = fs.Float64("max-predicted-cost", 0,
			"pre-flight ceiling on the plan's Lemma 1 cost estimate; costlier queries are rejected with 422 before evaluation (0 disables)")

		worker = fs.Bool("worker", false,
			"serve as a cluster worker: expose POST /v1/worker/query evaluating coordinator-shipped plans against this node's ring-assigned wids")
		clusterWorkers = fs.String("cluster-workers", "",
			"comma-separated worker base URLs; non-empty runs this instance as a cluster coordinator fanning every query out to the fleet")
		hashReplicas = fs.Int("hash-replicas", 0,
			"virtual nodes per worker on the consistent-hash placement ring (0 = default 64; must match across the fleet)")
		workerTimeout = fs.Duration("worker-timeout", 0,
			"coordinator's per-attempt deadline for one worker request (0 = default 5s)")
		workerAttempts = fs.Int("worker-attempts", 0,
			"coordinator's request attempts per worker per query, first try included (0 = default 2)")
		hedgeAfter = fs.Duration("hedge-after", 0,
			"duplicate a worker request that has not answered within this delay and take the first response (0 disables hedging)")
		probeInterval = fs.Duration("probe-interval", 0,
			"coordinator's worker health-probe period feeding /readyz (0 = default 5s)")
		tracePropagation = fs.Bool("trace-propagation", true,
			"propagate a traceparent trace context on every worker request and stitch the returned span trees into one distributed trace (coordinator only)")
		maxTraceSpans = fs.Int("max-trace-spans", 0,
			"cap on the span subtree each worker may return on a traced query; oversized trees are pruned and annotated (0 = default 2048)")

		ingestOn = fs.Bool("ingest", false,
			"accept live appends on POST /v1/logs/{name}/append, made durable through a per-log write-ahead log before they are applied or acknowledged (requires -wal-dir; incompatible with -worker and -cluster-workers)")
		walDir = fs.String("wal-dir", "",
			"directory holding one WAL subdirectory per log; replayed over the loaded snapshot at startup to recover acknowledged appends")
		fsyncMode = fs.String("fsync", "always",
			"WAL durability policy: always (fsync every append), interval (group fsync on a timer), never (OS page cache only)")
		fsyncInterval = fs.Duration("fsync-interval", 0,
			"group-fsync period for -fsync=interval (0 = default 100ms)")
		walSegmentBytes = fs.Int64("wal-segment-bytes", 0,
			"rotate WAL segments at this size (0 = default 64MiB)")
		ingestQueue = fs.Int("ingest-queue", 0,
			"pending appends admitted per log before backpressure sheds with 429 (0 = default 256)")

		shards = fs.Int("shards", 0,
			"evaluate each query across this many isolated wid-range failure domains with per-shard retries and circuit breakers; a lost shard degrades the result instead of failing it (0 = off, negative = GOMAXPROCS)")
		shardAttempts = fs.Int("shard-attempts", 0,
			"evaluation attempts per shard before it is excluded from the result (0 = default 3)")
		breakerThreshold = fs.Int("breaker-threshold", 0,
			"consecutive shard failures that open its circuit breaker (0 = default 5)")
		breakerCooldown = fs.Duration("breaker-cooldown", 0,
			"how long an open shard breaker waits before admitting a probe (0 = default 30s)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(logs) == 0 {
		fs.Usage()
		return errors.New("missing -log (repeat it to serve several logs)")
	}
	if *statsFile != "" {
		if !*adaptive {
			return errors.New("-stats-file requires -adaptive")
		}
		if len(logs) != 1 {
			return errors.New("-stats-file requires exactly one -log (per-log defaults apply otherwise)")
		}
	}

	// Live ingestion. Validated here, like the cluster flags, so a bad
	// combination is an error message rather than a server.New panic.
	var fsyncPolicy wal.Policy
	if *ingestOn {
		if *worker || *clusterWorkers != "" {
			return errors.New("-ingest is incompatible with -worker and -cluster-workers (appends are single-node; see docs/DURABILITY.md)")
		}
		if *walDir == "" {
			return errors.New("-ingest requires -wal-dir (appends are acknowledged only after they are durable)")
		}
		var err error
		if fsyncPolicy, err = wal.ParsePolicy(*fsyncMode); err != nil {
			return fmt.Errorf("-fsync: %w", err)
		}
	}

	// Cluster roles. The flag is validated here (server.New treats a bad
	// cluster config as a programming error) so the operator gets a clean
	// message, not a panic.
	var clusterCfg *cluster.Config
	if *clusterWorkers != "" {
		urls := splitWorkers(*clusterWorkers)
		seen := make(map[string]bool, len(urls))
		for _, u := range urls {
			if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
				return fmt.Errorf("-cluster-workers: %q is not an http(s) base URL", u)
			}
			if seen[u] {
				return fmt.Errorf("-cluster-workers: duplicate worker %q", u)
			}
			seen[u] = true
		}
		if len(urls) == 0 {
			return errors.New("-cluster-workers: no worker URLs")
		}
		clusterCfg = &cluster.Config{
			Workers:       urls,
			HashReplicas:  *hashReplicas,
			WorkerTimeout: *workerTimeout,
			MaxAttempts:   *workerAttempts,
			HedgeAfter:    *hedgeAfter,
			// The breaker flags tune whichever failure-domain tier is active:
			// in-process shards on a single node, workers on a coordinator.
			BreakerThreshold:        *breakerThreshold,
			BreakerCooldown:         *breakerCooldown,
			DisableTracePropagation: !*tracePropagation,
			MaxTraceSpans:           *maxTraceSpans,
		}
	}

	cfg := server.Config{
		Workers:      *workers,
		CacheSize:    *cache,
		Timeout:      *timeout,
		MaxBodyBytes: *maxBody,
		SlowQuery:    *slow,
		EnablePprof:  *pprofOn,
		MaxInFlight:  *maxInFlight,
		Budget: wlq.Budget{
			MaxComparisons: *maxComp,
			MaxOutputs:     *maxOutputs,
			MaxResultBytes: *maxResultBytes,
		},
		MaxPredictedCost: *maxCost,
		Loader:           wlq.OpenLog,
		Shards:           *shards,
		ShardAttempts:    *shardAttempts,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Columnar:         *columnar,
		Adaptive:         *adaptive,
		StatsFile:        *statsFile,
		WorkerMode:       *worker,
		Cluster:          clusterCfg,
		ProbeInterval:    *probeInterval,
		Ingest:           *ingestOn,
		WALDir:           *walDir,
		FsyncPolicy:      fsyncPolicy,
		FsyncInterval:    *fsyncInterval,
		WALSegmentBytes:  *walSegmentBytes,
		IngestQueue:      *ingestQueue,
	}
	if *flightSize > 0 {
		cfg.FlightRecorderSize = *flightSize
	} else {
		cfg.FlightRecorderSize = -1 // disable
	}
	if *naive {
		cfg.Strategy = wlq.StrategyNaive
	}
	if !*noLog {
		if *logJSON {
			cfg.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
		} else {
			cfg.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
		}
	}
	srv := server.New(cfg)
	for _, arg := range logs {
		name, spec := splitLogArg(arg)
		l, err := wlq.OpenLog(spec)
		if err != nil {
			return fmt.Errorf("load %q: %w", spec, err)
		}
		if err := srv.AddLog(name, spec, l); err != nil {
			return err
		}
		fmt.Fprintf(out, "loaded %q from %s: %d records, %d instances\n",
			name, spec, l.Len(), len(l.WIDs()))
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Coordinator role: probe the fleet in the background so /readyz reports
	// lost workers without waiting for a query to trip a breaker.
	if clusterCfg != nil {
		fmt.Fprintf(out, "coordinating %d workers (hash replicas %d)\n",
			len(clusterCfg.Workers), srv.Coordinator().Ring().Replicas())
		srv.StartClusterProbing(ctx)
	}
	if *worker {
		fmt.Fprintln(out, "worker mode: serving POST /v1/worker/query")
	}
	if *ingestOn {
		fmt.Fprintf(out, "live ingestion on: WAL under %s (fsync %s)\n", *walDir, *fsyncMode)
	}

	// SIGHUP triggers a hot reload of every log (same pass as POST
	// /v1/reload): a log that fails to load or validate is quarantined and
	// the last-good snapshot keeps serving.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				res, err := srv.ReloadLogs()
				if err != nil {
					fmt.Fprintf(out, "reload: %v\n", err)
					continue
				}
				fmt.Fprintf(out, "reloaded %d log(s), %d quarantined\n",
					len(res.Reloaded), len(res.Quarantined))
			}
		}
	}()

	err := serve(ctx, *addr, *drain, srv.Handler(), out)
	// Close the WALs only after the listener has drained: an in-flight append
	// acknowledged over a closed WAL would be a durability lie.
	if cerr := srv.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// serve listens until ctx is cancelled, then drains in-flight requests.
func serve(ctx context.Context, addr string, drain time.Duration, h http.Handler, out io.Writer) error {
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "serving on %s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// splitWorkers parses the comma-separated -cluster-workers list, trimming
// whitespace and dropping empty elements (a trailing comma is not an error).
func splitWorkers(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, strings.TrimSuffix(part, "/"))
		}
	}
	return out
}

// splitLogArg parses "<name>=<spec>" or a bare spec. Bare file paths are
// named by basename without extension; bare generator specs by their prefix
// ("fig3", "clinic", "model").
func splitLogArg(arg string) (name, spec string) {
	if n, s, ok := strings.Cut(arg, "="); ok && n != "" && !strings.Contains(n, "/") && !strings.Contains(n, ":") {
		return n, s
	}
	spec = arg
	if i := strings.IndexByte(spec, ':'); i >= 0 && !strings.ContainsAny(spec[:i], "./\\") {
		return spec[:i], spec // generator spec: clinic:100:7 -> "clinic"
	}
	base := filepath.Base(spec)
	if ext := filepath.Ext(base); ext != "" {
		base = strings.TrimSuffix(base, ext)
	}
	return base, spec
}
