package main

import (
	"context"
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSplitLogArg(t *testing.T) {
	tests := []struct {
		arg, name, spec string
	}{
		{"fig3", "fig3", "fig3"},
		{"clinic:100:7", "clinic", "clinic:100:7"},
		{"referrals.jsonl", "referrals", "referrals.jsonl"},
		{"/data/referrals.jsonl", "referrals", "/data/referrals.jsonl"},
		{"./logs/audit.txt", "audit", "./logs/audit.txt"},
		{"prod=clinic:100:7", "prod", "clinic:100:7"},
		{"mylog=/data/x.jsonl", "mylog", "/data/x.jsonl"},
	}
	for _, tt := range tests {
		name, spec := splitLogArg(tt.arg)
		if name != tt.name || spec != tt.spec {
			t.Errorf("splitLogArg(%q) = (%q, %q), want (%q, %q)",
				tt.arg, name, spec, tt.name, tt.spec)
		}
	}
}

// syncBuffer is a goroutine-safe writer the server goroutine logs into.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

func TestRunArgErrors(t *testing.T) {
	ctx := context.Background()
	var buf syncBuffer
	if err := run(ctx, nil, &buf); err == nil {
		t.Error("run without -log succeeded")
	}
	if err := run(ctx, []string{"-log", "does-not-exist.jsonl"}, &buf); err == nil {
		t.Error("run with a missing log file succeeded")
	}
	if err := run(ctx, []string{"-log", "fig3", "-addr", "999.999.999.999:1"}, &buf); err == nil {
		t.Error("run with an unlistenable address succeeded")
	}
}

var servingRE = regexp.MustCompile(`serving on ([\d.:\[\]]+)`)

func TestServeEndToEndAndGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-log", "fig3", "-addr", "127.0.0.1:0"}, &buf)
	}()

	// Wait for the listener to come up and learn the ephemeral port.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if m := servingRE.FindStringSubmatch(buf.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("server exited early: %v\n%s", err, buf.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never started:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Post("http://"+addr+"/v1/query", "application/json",
		strings.NewReader(`{"log":"fig3","query":"UpdateRefer -> GetReimburse"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	var body struct {
		Count     int `json:"count"`
		Incidents []struct {
			WID  uint64   `json:"wid"`
			Seqs []uint64 `json:"seqs"`
		} `json:"incidents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	// The paper's Example 3: exactly {wid=2:{5,9}}.
	if body.Count != 1 || body.Incidents[0].WID != 2 {
		t.Fatalf("unexpected result: %+v", body)
	}

	mresp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics struct {
		QueriesTotal uint64 `json:"queries_total"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.QueriesTotal != 1 {
		t.Errorf("queries_total = %d, want 1", metrics.QueriesTotal)
	}

	// Graceful shutdown: cancelling the context must end run without error.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down within the drain window")
	}
	if !strings.Contains(buf.String(), "shutting down") {
		t.Errorf("no shutdown log line:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `loaded "fig3"`) {
		t.Errorf("no load log line:\n%s", buf.String())
	}
}
