package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"wlq/internal/core/eval"
)

func TestSplitLogArg(t *testing.T) {
	tests := []struct {
		arg, name, spec string
	}{
		{"fig3", "fig3", "fig3"},
		{"clinic:100:7", "clinic", "clinic:100:7"},
		{"referrals.jsonl", "referrals", "referrals.jsonl"},
		{"/data/referrals.jsonl", "referrals", "/data/referrals.jsonl"},
		{"./logs/audit.txt", "audit", "./logs/audit.txt"},
		{"prod=clinic:100:7", "prod", "clinic:100:7"},
		{"mylog=/data/x.jsonl", "mylog", "/data/x.jsonl"},
	}
	for _, tt := range tests {
		name, spec := splitLogArg(tt.arg)
		if name != tt.name || spec != tt.spec {
			t.Errorf("splitLogArg(%q) = (%q, %q), want (%q, %q)",
				tt.arg, name, spec, tt.name, tt.spec)
		}
	}
}

// syncBuffer is a goroutine-safe writer the server goroutine logs into.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

func TestRunArgErrors(t *testing.T) {
	ctx := context.Background()
	var buf syncBuffer
	if err := run(ctx, nil, &buf); err == nil {
		t.Error("run without -log succeeded")
	}
	if err := run(ctx, []string{"-log", "does-not-exist.jsonl"}, &buf); err == nil {
		t.Error("run with a missing log file succeeded")
	}
	if err := run(ctx, []string{"-log", "fig3", "-addr", "999.999.999.999:1"}, &buf); err == nil {
		t.Error("run with an unlistenable address succeeded")
	}
}

var servingRE = regexp.MustCompile(`serving on ([\d.:\[\]]+)`)

// waitServing blocks until run's listener is up and returns its address.
func waitServing(t *testing.T, buf *syncBuffer, done <-chan error) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := servingRE.FindStringSubmatch(buf.String()); m != nil {
			return m[1]
		}
		select {
		case err := <-done:
			t.Fatalf("server exited early: %v\n%s", err, buf.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never started:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServeEndToEndAndGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-log", "fig3", "-addr", "127.0.0.1:0"}, &buf)
	}()
	addr := waitServing(t, &buf, done)

	resp, err := http.Post("http://"+addr+"/v1/query", "application/json",
		strings.NewReader(`{"log":"fig3","query":"UpdateRefer -> GetReimburse"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	var body struct {
		Count     int `json:"count"`
		Incidents []struct {
			WID  uint64   `json:"wid"`
			Seqs []uint64 `json:"seqs"`
		} `json:"incidents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	// The paper's Example 3: exactly {wid=2:{5,9}}.
	if body.Count != 1 || body.Incidents[0].WID != 2 {
		t.Fatalf("unexpected result: %+v", body)
	}

	mresp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics struct {
		QueriesTotal uint64 `json:"queries_total"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.QueriesTotal != 1 {
		t.Errorf("queries_total = %d, want 1", metrics.QueriesTotal)
	}

	// Graceful shutdown: cancelling the context must end run without error.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down within the drain window")
	}
	if !strings.Contains(buf.String(), "shutting down") {
		t.Errorf("no shutdown log line:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `loaded "fig3"`) {
		t.Errorf("no load log line:\n%s", buf.String())
	}
}

// TestShutdownCompletesInFlightAndRefusesNew pins the drain contract: once
// shutdown begins, the listener stops accepting new connections, but a query
// already being evaluated still completes with 200.
func TestShutdownCompletesInFlightAndRefusesNew(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-log", "fig3", "-addr", "127.0.0.1:0", "-drain", "5s"}, &buf)
	}()
	addr := waitServing(t, &buf, done)

	// Park the first evaluation worker inside the engine so the request is
	// provably in flight when shutdown starts.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	eval.SetEvalHook(func(uint64) {
		once.Do(func() {
			close(entered)
			<-release
		})
	})
	defer eval.SetEvalHook(nil)

	type result struct {
		status int
		err    error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Post("http://"+addr+"/v1/query", "application/json",
			strings.NewReader(`{"log":"fig3","query":"UpdateRefer -> GetReimburse"}`))
		if err != nil {
			resCh <- result{0, err}
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		resCh <- result{resp.StatusCode, nil}
	}()

	<-entered // the query is mid-evaluation
	cancel()  // equivalent of SIGTERM: begin draining

	// The listener must close: fresh connections get refused.
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			break
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting connections after shutdown began")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The in-flight query, released now, still completes successfully.
	close(release)
	r := <-resCh
	if r.err != nil {
		t.Fatalf("in-flight query failed during drain: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("in-flight query status = %d during drain, want 200", r.status)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down within the drain window")
	}
}

// TestSIGHUPReloadsLogs sends the process a real SIGHUP and asserts the
// server re-runs its loaders and bumps the log generation.
func TestSIGHUPReloadsLogs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-log", "fig3", "-addr", "127.0.0.1:0"}, &buf)
	}()
	addr := waitServing(t, &buf, done)

	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(buf.String(), "reloaded 1 log(s), 0 quarantined") {
		if time.Now().After(deadline) {
			t.Fatalf("no reload log line after SIGHUP:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get("http://" + addr + "/v1/logs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var logList struct {
		Logs []struct {
			Name       string `json:"name"`
			Generation uint64 `json:"generation"`
		} `json:"logs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&logList); err != nil {
		t.Fatal(err)
	}
	if len(logList.Logs) != 1 || logList.Logs[0].Generation != 1 {
		t.Fatalf("after SIGHUP logs = %+v, want fig3 at generation 1", logList.Logs)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}
