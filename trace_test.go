package wlq_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"wlq"
)

// TestQueryTracedLemma1Acceptance is the acceptance criterion for the
// observability layer: over a generated clinic log, a traced query covering
// all four operators yields a cost table where every ⊙/≺/⊗/⊕ row reports
// measured comparisons, measured outputs and the Lemma 1 predicted bound —
// and, under the naive strategy (the paper's Algorithm 1, whose work the
// bound describes), measured never exceeds predicted.
func TestQueryTracedLemma1Acceptance(t *testing.T) {
	log, err := wlq.ClinicLog(200, 7)
	if err != nil {
		t.Fatal(err)
	}
	engine := wlq.NewEngine(log, wlq.WithStrategy(wlq.StrategyNaive))
	query := "(GetRefer . CheckIn) | (UpdateRefer -> GetReimburse) | (SeeDoctor & CheckIn)"

	set, qt, err := engine.QueryTraced(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	if set == nil || qt == nil {
		t.Fatal("nil result or trace")
	}

	// Same incidents as the untraced path: tracing observes, never changes.
	plain, err := engine.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	if !set.Equal(plain) {
		t.Error("traced evaluation returned different incidents")
	}

	// The span tree covers the full pipeline.
	if qt.Spans == nil {
		t.Fatal("no span tree")
	}
	stages := make(map[string]bool)
	for _, c := range qt.Spans.Children {
		stages[c.Name] = true
	}
	for _, want := range []string{"parse", "canonicalize", "rewrite", "eval"} {
		if !stages[want] {
			t.Errorf("missing %q span (have %v)", want, stages)
		}
	}

	// Every operator row is fully populated and within the Lemma 1 bound.
	seenOps := make(map[string]bool)
	for _, row := range qt.CostTable {
		if row.Op == "atom" {
			if row.Evals == 0 {
				t.Errorf("atom %s never evaluated", row.Node)
			}
			continue
		}
		seenOps[row.Op] = true
		if row.Evals == 0 {
			t.Errorf("%s node %s never evaluated", row.Op, row.Node)
		}
		if row.Bound == "" || row.Predicted == 0 {
			t.Errorf("%s node %s lacks a predicted bound: %+v", row.Op, row.Node, row)
		}
		if row.Comparisons > row.Predicted {
			t.Errorf("%s node %s: measured %d comparisons exceed the Lemma 1 bound %d",
				row.Op, row.Node, row.Comparisons, row.Predicted)
		}
	}
	for _, op := range []string{"consecutive", "sequential", "choice", "parallel"} {
		if !seenOps[op] {
			t.Errorf("query did not exercise operator %s (rows: %v)", op, seenOps)
		}
	}

	// The trace marshals (the service's wire shape).
	if _, err := json.Marshal(qt); err != nil {
		t.Errorf("trace does not marshal: %v", err)
	}

	// And renders (the CLI shape).
	var buf bytes.Buffer
	qt.Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

// TestQueryTracedReusesContextTrace: a caller-provided trace collects the
// pipeline spans instead of a fresh one.
func TestQueryTracedReusesContextTrace(t *testing.T) {
	engine := wlq.NewEngine(wlq.ClinicFig3())
	tr := wlq.NewTrace("caller")
	ctx := wlq.WithTrace(context.Background(), tr)
	if _, _, err := engine.QueryTraced(ctx, "GetRefer -> SeeDoctor"); err != nil {
		t.Fatal(err)
	}
	if len(tr.Root().Children) == 0 {
		t.Error("caller trace collected no spans")
	}
}
