// Benchmarks regenerating the paper's evaluation artifacts as testing.B
// series — one benchmark family per experiment in DESIGN.md (E3–E10).
// cmd/wlq-bench prints the same sweeps as tables with power-law fits.
//
//	go test -bench=. -benchmem
package wlq_test

import (
	"fmt"
	"testing"

	"wlq/internal/analytics"
	"wlq/internal/clinic"
	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
	"wlq/internal/core/rewrite"
	"wlq/internal/gen"
	"wlq/internal/logio"
	"wlq/internal/stream"
	"wlq/internal/wlog"
)

// evalN runs the pattern with the given strategy and reports the result
// size to the benchmark (as a custom metric, so the series shape is
// visible next to the timing).
func evalN(b *testing.B, ix *eval.Index, p pattern.Node, strategy eval.Strategy) {
	b.Helper()
	var out int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = eval.New(ix, eval.Options{Strategy: strategy}).Eval(p).Len()
	}
	b.ReportMetric(float64(out), "incidents")
}

// BenchmarkConsecutiveScaling is experiment E3 (Lemma 1 bullet 1): the ⊙
// join over alternating logs; n1 = n2 = rounds.
func BenchmarkConsecutiveScaling(b *testing.B) {
	for _, rounds := range []int{250, 1000, 4000} {
		l := gen.Alternating([]string{"A", "B"}, rounds)
		ix := eval.NewIndex(l)
		p := pattern.MustParse("A . B")
		b.Run("n="+gen.SeqString(rounds), func(b *testing.B) {
			evalN(b, ix, p, eval.StrategyNaive)
		})
	}
}

// BenchmarkSequentialScaling is experiment E3 (Lemma 1 bullet 2): the ≺
// join over block logs; output is n².
func BenchmarkSequentialScaling(b *testing.B) {
	for _, n := range []int{50, 100, 200, 400} {
		l := gen.Blocks("A", n, "B", n)
		ix := eval.NewIndex(l)
		p := pattern.MustParse("A -> B")
		b.Run("n="+gen.SeqString(n), func(b *testing.B) {
			evalN(b, ix, p, eval.StrategyNaive)
		})
	}
}

// BenchmarkChoiceScaling is experiment E4 (Lemma 1 bullet 3): the ⊗ join
// with full duplicate elimination (identical operand sets of size n²).
func BenchmarkChoiceScaling(b *testing.B) {
	for _, n := range []int{8, 16, 24} {
		l := gen.Blocks("A", n, "B", n)
		ix := eval.NewIndex(l)
		p := pattern.MustParse("(A -> B) | (A -> B)")
		b.Run(fmt.Sprintf("n1=%d", n*n), func(b *testing.B) {
			evalN(b, ix, p, eval.StrategyNaive)
		})
	}
}

// BenchmarkParallelScaling is experiment E5 (Lemma 1 bullet 4): the ⊕ join
// over disjoint blocks; every pair unions.
func BenchmarkParallelScaling(b *testing.B) {
	for _, n := range []int{50, 100, 200, 400} {
		l := gen.Blocks("A", n, "B", n)
		ix := eval.NewIndex(l)
		p := pattern.MustParse("A & B")
		b.Run("n="+gen.SeqString(n), func(b *testing.B) {
			evalN(b, ix, p, eval.StrategyNaive)
		})
	}
}

// BenchmarkWorstCaseDepth is experiment E6 (Theorem 1): the left-deep ⊕
// chain over the single-activity log, k swept at fixed m. Time and output
// grow geometrically in k.
func BenchmarkWorstCaseDepth(b *testing.B) {
	const m = 20
	l := gen.WorstCaseLog(m)
	ix := eval.NewIndex(l)
	for k := 1; k <= 4; k++ {
		p := gen.WorstCasePattern(k)
		b.Run(fmt.Sprintf("m=%d/k=%d", m, k), func(b *testing.B) {
			evalN(b, ix, p, eval.StrategyNaive)
		})
	}
}

// BenchmarkWorstCaseLogSize is experiment E6's m sweep at fixed k: expect
// slope ≈ k on log-log axes (O(m^k)).
func BenchmarkWorstCaseLogSize(b *testing.B) {
	const k = 3
	p := gen.WorstCasePattern(k)
	for _, m := range []int{8, 16, 32} {
		ix := eval.NewIndex(gen.WorstCaseLog(m))
		b.Run(fmt.Sprintf("k=%d/m=%d", k, m), func(b *testing.B) {
			evalN(b, ix, p, eval.StrategyNaive)
		})
	}
}

// BenchmarkNaiveVsMerge is experiment E9: the published Algorithm 1 joins
// vs the sorted-merge variants on selectivity extremes.
func BenchmarkNaiveVsMerge(b *testing.B) {
	const n = 2000
	workloads := []struct {
		name  string
		log   *wlog.Log
		query string
	}{
		{"seq-zero-matches", gen.Blocks("B", n, "A", n), "A -> B"},
		{"cons-one-match", gen.Blocks("A", n, "B", n), "A . B"},
		{"choice-duplicates", gen.Blocks("A", n/40, "B", n/40), "(A -> B) | (A -> B)"},
		{"parallel-disjoint", gen.Blocks("A", n/4, "B", n/4), "A & B"},
	}
	for _, wl := range workloads {
		ix := eval.NewIndex(wl.log)
		p := pattern.MustParse(wl.query)
		for _, strategy := range []eval.Strategy{eval.StrategyNaive, eval.StrategyMerge} {
			b.Run(wl.name+"/"+strategy.String(), func(b *testing.B) {
				evalN(b, ix, p, strategy)
			})
		}
	}
}

// BenchmarkOptimizerAblation is experiment E8: factorable and skewed
// queries evaluated as written vs through the Theorem 2–5 optimizer
// (optimization time included).
func BenchmarkOptimizerAblation(b *testing.B) {
	l := gen.MustRandomLog(gen.LogParams{
		Instances: 60, MeanLength: 40, Alphabet: gen.Alphabet(8), Skew: 1.5, Seed: 99,
	})
	ix := eval.NewIndex(l)
	queries := []struct {
		name  string
		query string
	}{
		{"factorable", "(Act00 -> Act01) | (Act00 -> Act02) | (Act00 -> Act03)"},
		{"skewed-chain", "Act00 -> Act01 -> Act02 -> Act07"},
		{"skewed-parallel", "Act00 & Act06 & Act07"},
	}
	for _, q := range queries {
		p := pattern.MustParse(q.query)
		b.Run(q.name+"/as-written", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eval.New(ix, eval.Options{}).Eval(p)
			}
		})
		b.Run(q.name+"/optimized", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				op, _ := rewrite.Optimize(p, ix)
				eval.New(ix, eval.Options{}).Eval(op)
			}
		})
	}
}

// BenchmarkAnalytics is experiment E10: the Section 1 motivating queries on
// generated clinic logs.
func BenchmarkAnalytics(b *testing.B) {
	for _, instances := range []int{100, 400, 1600} {
		l, err := clinic.Generate(instances, 7)
		if err != nil {
			b.Fatal(err)
		}
		ix := eval.NewIndex(l)
		yearly := pattern.MustParse("GetRefer[balance>5000]")
		anomaly := pattern.MustParse("GetReimburse -> UpdateRefer")
		b.Run(fmt.Sprintf("yearly-report/instances=%d", instances), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				set := eval.New(ix, eval.Options{}).Eval(yearly)
				analytics.GroupBy(set, analytics.ByAttr(ix, "year"))
			}
		})
		b.Run(fmt.Sprintf("anomaly-full/instances=%d", instances), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eval.New(ix, eval.Options{}).Eval(anomaly)
			}
		})
		b.Run(fmt.Sprintf("anomaly-exists/instances=%d", instances), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eval.New(ix, eval.Options{}).Exists(anomaly)
			}
		})
	}
}

// BenchmarkIndexBuild measures Algorithm 2's LogRecordsDict construction.
func BenchmarkIndexBuild(b *testing.B) {
	for _, instances := range []int{100, 1000} {
		l, err := clinic.Generate(instances, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("instances=%d", instances), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eval.NewIndex(l)
			}
		})
	}
}

// BenchmarkParse measures the shunting-yard parser (Algorithm 3).
func BenchmarkParse(b *testing.B) {
	queries := map[string]string{
		"small": "A -> B",
		"deep":  "A -> (B . (C & (D | (E -> (F . G)))))",
		"wide":  "A | B | C | D | E | F | G | H | I | J",
		"guarded": `GetRefer[balance>5000][hospital="Public Hospital"] -> ` +
			`GetReimburse[out.reimburse>=1000]`,
	}
	for name, q := range queries {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pattern.Parse(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLogIO measures the serialization substrate.
func BenchmarkLogIO(b *testing.B) {
	l, err := clinic.Generate(500, 3)
	if err != nil {
		b.Fatal(err)
	}
	for _, format := range []logio.Format{logio.FormatJSONL, logio.FormatText} {
		b.Run("encode/"+format.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := logio.Encode(discard{}, l, format); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// discard is a no-op writer (io.Discard without importing io for one use).
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkMonitorIngest is experiment E12's core cost: per-record
// ingestion with three active watches, amortized.
func BenchmarkMonitorIngest(b *testing.B) {
	l, err := clinic.Generate(200, 23)
	if err != nil {
		b.Fatal(err)
	}
	records := l.Records()
	watches := []string{
		"GetReimburse -> UpdateRefer",
		"SeeDoctor -> SeeDoctor -> SeeDoctor",
		"UpdateRefer -> UpdateRefer",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := stream.NewMonitor(nil)
		for j, q := range watches {
			if err := m.Watch(fmt.Sprintf("w%d", j), q); err != nil {
				b.Fatal(err)
			}
		}
		for _, r := range records {
			if err := m.Ingest(r); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(records)), "records/op")
}

// BenchmarkParallelEvaluation is experiment E11 as a testing.B series.
func BenchmarkParallelEvaluation(b *testing.B) {
	l, err := clinic.Generate(400, 7)
	if err != nil {
		b.Fatal(err)
	}
	ix := eval.NewIndex(l)
	e := eval.New(ix, eval.Options{})
	p := pattern.MustParse("(!A & !B) -> GetReimburse")
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.EvalParallel(p, workers)
			}
		})
	}
}
