package wlq_test

import (
	"fmt"

	"wlq"
)

// The paper's Example 3: find students who update their referral before
// they receive a reimbursement, on the Figure 3 log.
func ExampleEngine_Query() {
	engine := wlq.NewEngine(wlq.ClinicFig3())
	set, err := engine.Query("UpdateRefer -> GetReimburse")
	if err != nil {
		panic(err)
	}
	fmt.Println(set)
	// Output: {wid=2:{5,9}}
}

// Incidents reference records by (wid, is-lsn); materialize them to see the
// underlying log rows (the paper's {l14, l20}).
func ExampleEngine_IncidentRecords() {
	engine := wlq.NewEngine(wlq.ClinicFig3())
	set, _ := engine.Query("UpdateRefer -> GetReimburse")
	for _, rec := range engine.IncidentRecords(set.At(0)) {
		fmt.Printf("l%d %s\n", rec.LSN, rec.Activity)
	}
	// Output:
	// l14 UpdateRefer
	// l20 GetReimburse
}

// Existence queries answer the paper's yes/no questions with instance-level
// short-circuiting.
func ExampleEngine_Exists() {
	engine := wlq.NewEngine(wlq.ClinicFig3())
	yes, _ := engine.Exists("UpdateRefer -> GetReimburse")
	no, _ := engine.Exists("CompleteRefer -> GetRefer")
	fmt.Println(yes, no)
	// Output: true false
}

// Patterns compose with four operators; Explain shows the incident tree of
// the paper's Figure 4 and the optimizer's plan.
func ExampleEngine_Explain() {
	engine := wlq.NewEngine(wlq.ClinicFig3(), wlq.WithoutOptimizer())
	text, _ := engine.Explain("SeeDoctor -> (UpdateRefer -> GetReimburse)")
	fmt.Println(text[:len("query:")+1])
	// Output: query:
}

// Logs are built programmatically with a Builder that enforces the paper's
// Definition 2 (START first, dense sequence numbers, END last).
func ExampleBuilder() {
	var b wlq.Builder
	order := b.Start()
	_ = b.Emit(order, "Pay", nil, wlq.Attrs("amount", 120))
	_ = b.Emit(order, "Ship", nil, nil)
	_ = b.End(order)
	log, err := b.Build()
	if err != nil {
		panic(err)
	}
	engine := wlq.NewEngine(log)
	n, _ := engine.Count("Pay . Ship")
	fmt.Println(n)
	// Output: 1
}

// Attribute guards (an extension beyond the paper) restrict atomic matches
// by αin/αout values.
func ExampleEngine_GroupByAttr() {
	log, _ := wlq.ClinicLog(200, 42)
	engine := wlq.NewEngine(log)
	report, _ := engine.GroupByAttr("GetRefer[balance>5000]", "year")
	fmt.Println(report.Total() > 0, len(report.Keys()) > 0)
	// Output: true true
}

// A Monitor evaluates watches continuously while records stream in,
// alerting at the exact record that first completes an incident.
func ExampleMonitor() {
	monitor := wlq.NewMonitor(func(a wlq.Alert) {
		fmt.Printf("wid=%d at lsn=%d\n", a.WID, a.LSN)
	})
	_ = monitor.Watch("fraud", "GetReimburse -> UpdateRefer")
	_ = monitor.IngestLog(wlq.ClinicFig3())
	fmt.Println("alerts:", monitor.Alerts())
	// Output: alerts: 0
}
