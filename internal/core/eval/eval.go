package eval

import (
	"fmt"

	"wlq/internal/core/incident"
	"wlq/internal/core/pattern"
	"wlq/internal/predicate"
	"wlq/internal/resilience"
)

// Strategy selects the operator join implementation.
type Strategy int

// Evaluation strategies.
const (
	// StrategyNaive runs the published Algorithm 1: nested-loop joins with
	// the Lemma 1 complexity.
	StrategyNaive Strategy = iota + 1
	// StrategyMerge exploits the sorted incident-set order with binary
	// search and range pre-checks; results are identical to StrategyNaive.
	StrategyMerge
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyNaive:
		return "naive"
	case StrategyMerge:
		return "merge"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures an Evaluator.
type Options struct {
	// Strategy selects the join implementation; the zero value means
	// StrategyMerge (the better default; benchmarks opt into naive).
	Strategy Strategy
	// Limit, when positive, caps (best effort) the number of incidents each
	// operator produces per workflow instance. It is a safety valve against
	// the O(m^k) worst case of Theorem 1, not an exact top-k.
	Limit int
	// Meter, when non-nil, attributes measured comparison work and the
	// Lemma 1 predicted bounds to the nodes of the evaluated plan. It must
	// be built (NewMeter) over the same pattern tree passed to Eval — nodes
	// are matched by identity. Safe under EvalParallel: counters are atomic.
	Meter *Meter
	// Budget, when non-zero, caps the evaluation's comparison work,
	// produced incidents, wall time and result size; a tripped limit aborts
	// with an error wrapping resilience.ErrBudgetExceeded. Enforced on the
	// context-aware paths (EvalParallelCtx and the serial path beneath it);
	// the plain Eval/Exists/EvalInstance entry points have no error channel
	// and ignore it. See internal/core/eval/budget.go for check cadence.
	Budget resilience.Budget
}

// Evaluator computes incident sets incL(p) over an indexed log, per
// Algorithm 2: atomic patterns are answered from the index, composite
// patterns by post-order traversal of the pattern tree, instance by
// instance (incidents never span workflow instances).
type Evaluator struct {
	ix   *Index
	opts Options
}

// New creates an Evaluator over an indexed log.
func New(ix *Index, opts Options) *Evaluator {
	if opts.Strategy == 0 {
		opts.Strategy = StrategyMerge
	}
	return &Evaluator{ix: ix, opts: opts}
}

// Index returns the evaluator's index.
func (e *Evaluator) Index() *Index { return e.ix }

// Eval computes incL(p): every incident of the pattern in the log.
func (e *Evaluator) Eval(p pattern.Node) *incident.Set {
	set := &incident.Set{}
	for _, wid := range e.ix.WIDs() {
		set.Add(e.evalWID(p, wid, nil)...)
	}
	set.Normalize()
	return set
}

// EvalInstance computes the incidents of p within a single workflow
// instance.
func (e *Evaluator) EvalInstance(p pattern.Node, wid uint64) *incident.Set {
	return incident.NewSet(e.evalWID(p, wid, nil)...)
}

// Exists reports whether incL(p) is non-empty, short-circuiting across
// workflow instances: evaluation stops at the first instance containing an
// incident. This answers the paper's yes/no queries ("are there any
// students who ...") without enumerating every match.
func (e *Evaluator) Exists(p pattern.Node) bool {
	for _, wid := range e.ix.WIDs() {
		if len(e.evalWID(p, wid, nil)) > 0 {
			return true
		}
	}
	return false
}

// evalWID is the post-order incident-tree evaluation of Algorithm 2,
// restricted to one workflow instance. The returned slice is normalized.
//
// Under StrategyMerge, structurally repeated sub-patterns — common after
// Theorem 5 rewrites, or in queries like (A -> B) | (A -> C) where the atom
// A recurs — are evaluated once per instance via a memo keyed on the
// pattern's printed form (printing is injective on the AST; see the parser
// round-trip tests). StrategyNaive stays verbatim Algorithm 1: no caching,
// so the Lemma 1 benchmarks measure the published join work.
func (e *Evaluator) evalWID(p pattern.Node, wid uint64, bs *budgetState) []incident.Incident {
	if e.opts.Strategy == StrategyNaive {
		return e.evalNode(p, wid, nil, bs)
	}
	return e.evalNode(p, wid, make(map[string][]incident.Incident), bs)
}

func (e *Evaluator) evalNode(p pattern.Node, wid uint64, memo map[string][]incident.Incident, bs *budgetState) []incident.Incident {
	var memoKey string
	if memo != nil {
		memoKey = p.String()
		if cached, ok := memo[memoKey]; ok {
			if nm := e.opts.Meter.node(p); nm != nil {
				nm.recordMemoHit()
			}
			return cached
		}
	}
	var out []incident.Incident
	switch p := p.(type) {
	case *pattern.Atom:
		out = e.evalAtom(p, wid)
	case *pattern.Binary:
		left := e.evalNode(p.Left, wid, memo, bs)
		right := e.evalNode(p.Right, wid, memo, bs)
		nm := e.opts.Meter.node(p)
		if nm != nil || bs != nil {
			cnt := opCount{bs: bs}
			out = e.applyOp(p.Op, left, right, &cnt)
			if nm != nil {
				nm.recordOp(len(left), len(right), cnt.comparisons, len(out))
			}
			// Budget checks come after the meter update so an abort's
			// partial cost table includes every completed operator.
			cnt.flushBudget()
			bs.addOutputs(len(out))
		} else {
			out = e.applyOp(p.Op, left, right, nil)
		}
	default:
		panic(fmt.Sprintf("eval: unknown pattern node %T", p))
	}
	if memo != nil {
		memo[memoKey] = out
	}
	return out
}

// applyOp dispatches OPERATOR-EVAL to the configured join family. cnt, when
// non-nil, tallies the join's record-level comparison work.
func (e *Evaluator) applyOp(op pattern.Op, left, right []incident.Incident, cnt *opCount) []incident.Incident {
	// Empty inputs: only choice can still produce incidents.
	if op != pattern.OpChoice && (len(left) == 0 || len(right) == 0) {
		return nil
	}
	naive := e.opts.Strategy == StrategyNaive
	switch op {
	case pattern.OpConsecutive:
		if naive {
			return naiveConsecutive(left, right, e.opts.Limit, cnt)
		}
		return mergeConsecutive(left, right, e.opts.Limit, cnt)
	case pattern.OpSequential:
		if naive {
			return naiveSequential(left, right, e.opts.Limit, cnt)
		}
		return mergeSequential(left, right, e.opts.Limit, cnt)
	case pattern.OpChoice:
		if naive {
			return naiveChoice(left, right, e.opts.Limit, cnt)
		}
		return mergeChoice(left, right, e.opts.Limit, cnt)
	case pattern.OpParallel:
		if naive {
			return naiveParallel(left, right, e.opts.Limit, cnt)
		}
		return mergeParallel(left, right, e.opts.Limit, cnt)
	default:
		panic(fmt.Sprintf("eval: unknown operator %v", op))
	}
}

// evalAtom answers an atomic pattern from the index: for a positive pattern
// the indexed is-lsn list of the activity; for a negated pattern the
// complement within the instance (valid logs have dense is-lsn 1..n, so the
// complement is computed by a linear merge, not a scan of record contents).
// Guards, when present, filter the matching records (extension).
func (e *Evaluator) evalAtom(a *pattern.Atom, wid uint64) []incident.Incident {
	var seqs []uint64
	if !a.Negated {
		seqs = e.ix.ActivitySeqs(wid, a.Activity)
	} else {
		n := uint64(e.ix.InstanceLen(wid))
		excluded := e.ix.ActivitySeqs(wid, a.Activity)
		seqs = make([]uint64, 0, int(n)-len(excluded))
		j := 0
		for s := uint64(1); s <= n; s++ {
			if j < len(excluded) && excluded[j] == s {
				j++
				continue
			}
			seqs = append(seqs, s)
		}
	}
	out := make([]incident.Incident, 0, len(seqs))
	for _, s := range seqs {
		if len(a.Guards) > 0 {
			rec, ok := e.ix.Record(wid, s)
			if !ok || !predicate.MatchAll(a.Guards, rec) {
				continue
			}
		}
		out = append(out, incident.Singleton(wid, s))
		if limited(out, e.opts.Limit) {
			break
		}
	}
	if nm := e.opts.Meter.node(a); nm != nil {
		nm.recordAtom(len(seqs), len(out))
	}
	return out
}

// EvalSet computes incL(p) for a pattern over a freshly indexed log; a
// convenience for one-shot queries.
func EvalSet(ix *Index, p pattern.Node) *incident.Set {
	return New(ix, Options{}).Eval(p)
}
