package eval

import (
	"fmt"
	"sync"

	"wlq/internal/core/incident"
	"wlq/internal/core/pattern"
	"wlq/internal/predicate"
	"wlq/internal/resilience"
)

// Strategy selects the operator join implementation.
type Strategy int

// Evaluation strategies.
const (
	// StrategyNaive runs the published Algorithm 1: nested-loop joins with
	// the Lemma 1 complexity.
	StrategyNaive Strategy = iota + 1
	// StrategyMerge exploits the sorted incident-set order with binary
	// search and range pre-checks; results are identical to StrategyNaive.
	StrategyMerge
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyNaive:
		return "naive"
	case StrategyMerge:
		return "merge"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures an Evaluator.
type Options struct {
	// Strategy selects the join implementation; the zero value means
	// StrategyMerge (the better default; benchmarks opt into naive).
	Strategy Strategy
	// Limit, when positive, caps (best effort) the number of incidents each
	// operator produces per workflow instance. It is a safety valve against
	// the O(m^k) worst case of Theorem 1, not an exact top-k.
	Limit int
	// Meter, when non-nil, attributes measured comparison work and the
	// Lemma 1 predicted bounds to the nodes of the evaluated plan. It must
	// be built (NewMeter) over the same pattern tree passed to Eval — nodes
	// are matched by identity. Safe under EvalParallel: counters are atomic.
	Meter *Meter
	// Budget, when non-zero, caps the evaluation's comparison work,
	// produced incidents, wall time and result size; a tripped limit aborts
	// with an error wrapping resilience.ErrBudgetExceeded. Enforced on the
	// context-aware paths (EvalParallelCtx and the serial path beneath it);
	// the plain Eval/Exists/EvalInstance entry points have no error channel
	// and ignore it. See internal/core/eval/budget.go for check cadence.
	Budget resilience.Budget
}

// Evaluator computes incident sets incL(p) over an indexed log, per
// Algorithm 2: atomic patterns are answered from the backend (row index or
// columnar posting lists), composite patterns by post-order traversal of
// the pattern tree, instance by instance (incidents never span workflow
// instances).
type Evaluator struct {
	src  Source
	sym  SymbolicSource // non-nil when src interns activity symbols
	opts Options
	// atomSyms caches ResolveActivity per atom node (plan nodes are stable
	// pointers), so a symbolic backend hashes each activity name once per
	// plan instead of once per (atom, instance) probe. sync.Map: the read
	// path after warmup is a lock-free pointer-keyed load, safe under
	// EvalParallel's shared-evaluator workers.
	atomSyms sync.Map // *pattern.Atom -> atomSym
}

// atomSym is one memoized symbol resolution.
type atomSym struct {
	sym int32
	ok  bool
}

// New creates an Evaluator over a log backend: the row *Index, or any other
// Source implementation such as the columnar internal/colstore.Store.
func New(src Source, opts Options) *Evaluator {
	if opts.Strategy == 0 {
		opts.Strategy = StrategyMerge
	}
	sym, _ := src.(SymbolicSource)
	return &Evaluator{src: src, sym: sym, opts: opts}
}

// Source returns the evaluator's backend.
func (e *Evaluator) Source() Source { return e.src }

// Eval computes incL(p): every incident of the pattern in the log.
func (e *Evaluator) Eval(p pattern.Node) *incident.Set {
	set := &incident.Set{}
	for _, wid := range e.src.WIDs() {
		set.Add(e.evalWID(p, wid, nil)...)
	}
	set.Normalize()
	return set
}

// EvalInstance computes the incidents of p within a single workflow
// instance.
func (e *Evaluator) EvalInstance(p pattern.Node, wid uint64) *incident.Set {
	return incident.NewSet(e.evalWID(p, wid, nil)...)
}

// Exists reports whether incL(p) is non-empty, short-circuiting across
// workflow instances: evaluation stops at the first instance containing an
// incident. This answers the paper's yes/no queries ("are there any
// students who ...") without enumerating every match.
func (e *Evaluator) Exists(p pattern.Node) bool {
	for _, wid := range e.src.WIDs() {
		if len(e.evalWID(p, wid, nil)) > 0 {
			return true
		}
	}
	return false
}

// evalWID is the post-order incident-tree evaluation of Algorithm 2,
// restricted to one workflow instance. The returned slice is normalized.
//
// Under StrategyMerge, structurally repeated sub-patterns — common after
// Theorem 5 rewrites, or in queries like (A -> B) | (A -> C) where the atom
// A recurs — are evaluated once per instance via a memo keyed on the
// pattern's printed form (printing is injective on the AST; see the parser
// round-trip tests). StrategyNaive stays verbatim Algorithm 1: no caching,
// so the Lemma 1 benchmarks measure the published join work.
func (e *Evaluator) evalWID(p pattern.Node, wid uint64, bs *budgetState) []incident.Incident {
	if e.opts.Strategy == StrategyNaive {
		return e.evalNode(p, wid, nil, bs)
	}
	return e.evalNode(p, wid, make(map[string][]incident.Incident), bs)
}

func (e *Evaluator) evalNode(p pattern.Node, wid uint64, memo map[string][]incident.Incident, bs *budgetState) []incident.Incident {
	var memoKey string
	if memo != nil {
		memoKey = p.String()
		if cached, ok := memo[memoKey]; ok {
			if nm := e.opts.Meter.node(p); nm != nil {
				nm.recordMemoHit()
			}
			return cached
		}
	}
	var out []incident.Incident
	switch p := p.(type) {
	case *pattern.Atom:
		out = e.evalAtom(p, wid)
	case *pattern.Binary:
		left := e.evalNode(p.Left, wid, memo, bs)
		right := e.evalNode(p.Right, wid, memo, bs)
		nm := e.opts.Meter.node(p)
		if nm != nil || bs != nil {
			cnt := opCount{bs: bs}
			out = e.applyOp(p.Op, left, right, &cnt)
			if nm != nil {
				nm.recordOp(len(left), len(right), cnt.comparisons, len(out))
			}
			// Budget checks come after the meter update so an abort's
			// partial cost table includes every completed operator.
			cnt.flushBudget()
			bs.addOutputs(len(out))
		} else {
			out = e.applyOp(p.Op, left, right, nil)
		}
	default:
		panic(fmt.Sprintf("eval: unknown pattern node %T", p))
	}
	if memo != nil {
		memo[memoKey] = out
	}
	return out
}

// applyOp dispatches OPERATOR-EVAL to the configured join family. cnt, when
// non-nil, tallies the join's record-level comparison work.
func (e *Evaluator) applyOp(op pattern.Op, left, right []incident.Incident, cnt *opCount) []incident.Incident {
	// Empty inputs: only choice can still produce incidents.
	if op != pattern.OpChoice && (len(left) == 0 || len(right) == 0) {
		return nil
	}
	naive := e.opts.Strategy == StrategyNaive
	switch op {
	case pattern.OpConsecutive:
		if naive {
			return naiveConsecutive(left, right, e.opts.Limit, cnt)
		}
		return mergeConsecutive(left, right, e.opts.Limit, cnt)
	case pattern.OpSequential:
		if naive {
			return naiveSequential(left, right, e.opts.Limit, cnt)
		}
		return mergeSequential(left, right, e.opts.Limit, cnt)
	case pattern.OpChoice:
		if naive {
			return naiveChoice(left, right, e.opts.Limit, cnt)
		}
		return mergeChoice(left, right, e.opts.Limit, cnt)
	case pattern.OpParallel:
		if naive {
			return naiveParallel(left, right, e.opts.Limit, cnt)
		}
		return mergeParallel(left, right, e.opts.Limit, cnt)
	default:
		panic(fmt.Sprintf("eval: unknown operator %v", op))
	}
}

// atomPostings answers an atom's is-lsn list from the backend. On a symbolic
// backend the activity name is resolved to its interned symbol once per
// plan (memoized per atom node) and each per-instance probe is an
// integer-keyed posting-list lookup; the row backend probes its per-wid
// string-keyed map directly.
func (e *Evaluator) atomPostings(a *pattern.Atom, wid uint64) []uint64 {
	if e.sym == nil {
		return e.src.ActivitySeqs(wid, a.Activity)
	}
	var as atomSym
	if v, ok := e.atomSyms.Load(a); ok {
		as = v.(atomSym)
	} else {
		as.sym, as.ok = e.sym.ResolveActivity(a.Activity)
		e.atomSyms.Store(a, as)
	}
	if !as.ok {
		return nil // activity absent from the log
	}
	return e.sym.ActivitySeqsSym(wid, as.sym)
}

// evalAtom answers an atomic pattern from the backend: for a positive
// pattern the is-lsn list of the activity; for a negated pattern the
// complement within the instance (valid logs have dense is-lsn 1..n, so the
// complement is computed by a linear merge, not a scan of record contents).
// Guards, when present, filter the matching records (extension).
func (e *Evaluator) evalAtom(a *pattern.Atom, wid uint64) []incident.Incident {
	var seqs []uint64
	if !a.Negated {
		seqs = e.atomPostings(a, wid)
	} else {
		n := uint64(e.src.InstanceLen(wid))
		excluded := e.atomPostings(a, wid)
		seqs = make([]uint64, 0, int(n)-len(excluded))
		j := 0
		for s := uint64(1); s <= n; s++ {
			if j < len(excluded) && excluded[j] == s {
				j++
				continue
			}
			seqs = append(seqs, s)
		}
	}
	out := make([]incident.Incident, 0, len(seqs))
	for _, s := range seqs {
		if len(a.Guards) > 0 {
			rec, ok := e.src.Record(wid, s)
			if !ok || !predicate.MatchAll(a.Guards, rec) {
				continue
			}
		}
		out = append(out, incident.Singleton(wid, s))
		if limited(out, e.opts.Limit) {
			break
		}
	}
	if nm := e.opts.Meter.node(a); nm != nil {
		nm.recordAtom(len(seqs), len(out))
	}
	return out
}

// EvalSet computes incL(p) for a pattern over a freshly indexed log; a
// convenience for one-shot queries.
func EvalSet(src Source, p pattern.Node) *incident.Set {
	return New(src, Options{}).Eval(p)
}
