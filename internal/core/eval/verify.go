package eval

import (
	"wlq/internal/core/incident"
	"wlq/internal/core/pattern"
	"wlq/internal/predicate"
)

// Verify reports whether o is an incident of p in the indexed log, checking
// Definition 4 directly: it searches for a decomposition of o's records
// into sub-incidents satisfying the operator conditions. It is independent
// of the evaluation algorithms (no incident sets are computed), which makes
// it a soundness oracle for them in tests; its worst case is exponential in
// o's size, so it is meant for verification, not evaluation.
func (e *Evaluator) Verify(p pattern.Node, o incident.Incident) bool {
	return e.verify(p, o.WID(), o.Seqs())
}

// possibleSizes returns the set of record counts an incident of p can have.
// Atoms contribute 1; ⊙, ≺ and ⊕ sum their operands; ⊗ takes the union of
// its operands' size sets (an incident of a choice is an incident of either
// side, so sizes need not agree).
func possibleSizes(p pattern.Node) map[int]struct{} {
	switch p := p.(type) {
	case *pattern.Atom:
		return map[int]struct{}{1: {}}
	case *pattern.Binary:
		left := possibleSizes(p.Left)
		right := possibleSizes(p.Right)
		out := make(map[int]struct{})
		if p.Op == pattern.OpChoice {
			for s := range left {
				out[s] = struct{}{}
			}
			for s := range right {
				out[s] = struct{}{}
			}
			return out
		}
		for a := range left {
			for b := range right {
				out[a+b] = struct{}{}
			}
		}
		return out
	default:
		return nil
	}
}

// verify checks that the record set seqs (sorted is-lsn values of instance
// wid) is an incident of p.
func (e *Evaluator) verify(p pattern.Node, wid uint64, seqs []uint64) bool {
	switch p := p.(type) {
	case *pattern.Atom:
		if len(seqs) != 1 {
			return false
		}
		rec, ok := e.src.Record(wid, seqs[0])
		if !ok {
			return false
		}
		match := rec.Activity == p.Activity
		if p.Negated {
			match = !match
		}
		return match && predicate.MatchAll(p.Guards, rec)
	case *pattern.Binary:
		switch p.Op {
		case pattern.OpChoice:
			return e.verify(p.Left, wid, seqs) || e.verify(p.Right, wid, seqs)
		case pattern.OpConsecutive, pattern.OpSequential:
			// The ordering constraint (all of o1 before all of o2) forces
			// the split to be prefix/suffix of the sorted seqs; try every
			// cut point with a compatible gap.
			for cut := 1; cut < len(seqs); cut++ {
				left, right := seqs[:cut], seqs[cut:]
				gapOK := left[cut-1] < right[0]
				if p.Op == pattern.OpConsecutive {
					gapOK = left[cut-1]+1 == right[0]
				}
				if gapOK && e.verify(p.Left, wid, left) && e.verify(p.Right, wid, right) {
					return true
				}
			}
			return false
		case pattern.OpParallel:
			// Any subset split can work; enumerate subsets for the left
			// operand, pruned to the sizes its incidents can actually have.
			rightSizes := possibleSizes(p.Right)
			for need := range possibleSizes(p.Left) {
				if need < 1 || need >= len(seqs) {
					continue
				}
				if _, ok := rightSizes[len(seqs)-need]; !ok {
					continue
				}
				if e.verifyParallelSplit(p, wid, seqs, need, nil, 0) {
					return true
				}
			}
			return false
		default:
			return false
		}
	default:
		return false
	}
}

// verifyParallelSplit enumerates size-need subsets of seqs (starting at
// index from, with the prefix already chosen), checking each split of seqs
// into (chosen, rest) against (p.Left, p.Right).
func (e *Evaluator) verifyParallelSplit(p *pattern.Binary, wid uint64, seqs []uint64, need int, chosen []uint64, from int) bool {
	if len(chosen) == need {
		rest := make([]uint64, 0, len(seqs)-need)
		ci := 0
		for _, s := range seqs {
			if ci < len(chosen) && chosen[ci] == s {
				ci++
				continue
			}
			rest = append(rest, s)
		}
		return e.verify(p.Left, wid, chosen) && e.verify(p.Right, wid, rest)
	}
	for i := from; i <= len(seqs)-(need-len(chosen)); i++ {
		if e.verifyParallelSplit(p, wid, seqs, need, append(chosen, seqs[i]), i+1) {
			return true
		}
	}
	return false
}
