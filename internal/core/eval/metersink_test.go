package eval

import (
	"testing"

	"wlq/internal/core/pattern"
)

// captureSink records the snapshots flushed into it.
type captureSink struct {
	flushes [][]NodeStats
}

func (s *captureSink) ObserveMeter(stats []NodeStats) {
	s.flushes = append(s.flushes, stats)
}

// TestMeterPairsIsSumOfProducts pins the Pairs counter unit: Σ n1·n2 per
// instance evaluation, not the product of the summed operand sizes — two
// instances of 2×2 joins must report 8 pairs, not (2+2)·(2+2) = 16.
func TestMeterPairsIsSumOfProducts(t *testing.T) {
	l := buildLog(t,
		[]string{"A", "A", "B", "B"},
		[]string{"A", "A", "B", "B"},
	)
	ix := NewIndex(l)
	p := pattern.MustParse("A -> B")
	m := NewMeter(p)
	New(ix, Options{Strategy: StrategyNaive, Meter: m}).Eval(p)
	for _, st := range m.Snapshot() {
		if st.Atom {
			continue
		}
		if st.Pairs != 8 {
			t.Fatalf("Pairs = %d, want 8 (2 instances x 2x2)", st.Pairs)
		}
		if prod := st.LeftInputs * st.RightInputs; st.Pairs >= prod && prod != st.Pairs {
			t.Fatalf("Pairs %d not below product of sums %d", st.Pairs, prod)
		}
	}
}

func TestMeterFlush(t *testing.T) {
	l := buildLog(t, []string{"A", "B"})
	ix := NewIndex(l)
	p := pattern.MustParse("A -> B")
	m := NewMeter(p)
	New(ix, Options{Meter: m}).Eval(p)

	sink := &captureSink{}
	m.Flush(sink)
	if len(sink.flushes) != 1 {
		t.Fatalf("Flush delivered %d snapshots, want 1", len(sink.flushes))
	}
	if len(sink.flushes[0]) != len(m.Snapshot()) {
		t.Fatalf("flushed %d node stats, want %d", len(sink.flushes[0]), len(m.Snapshot()))
	}
}

func TestMeterFlushNilSafety(t *testing.T) {
	var m *Meter
	m.Flush(&captureSink{}) // nil meter: no-op
	real := NewMeter(pattern.MustParse("A"))
	real.Flush(nil) // nil sink: no-op
}
