package eval

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"wlq/internal/core/incident"
	"wlq/internal/core/pattern"
)

// Incidents never span workflow instances (Definition 4 requires one wid),
// so incL(p) decomposes as a disjoint union over instances and the
// per-instance evaluations are embarrassingly parallel. EvalParallel
// exploits this: instances are distributed over a worker pool and the
// per-instance results concatenated. The result is identical to Eval.

// QueryStats collects per-query evaluation statistics. Pass a zero value to
// EvalParallelCtx and read it after the call returns; the query service
// aggregates these into its /metrics counters.
type QueryStats struct {
	// Workers is the number of goroutines actually used (1 = serial path).
	Workers int
	// Instances is the number of workflow instances evaluated. On a
	// cancelled query it counts the instances finished before the cancel.
	Instances int
	// Incidents is the number of incidents produced across all instances.
	Incidents int

	// Sharded-execution accounting, filled by internal/shard when the query
	// runs under the sharded executor (zero on the single-domain paths).
	// Shards is the number of failure domains the log was partitioned into;
	// ShardsFailed counts shards excluded from the result (failed after
	// retries, or skipped by an open circuit breaker); ShardRetries counts
	// re-attempts across all shards.
	Shards       int
	ShardsFailed int
	ShardRetries int
}

// EvalParallel computes incL(p) using up to workers goroutines (0 means
// GOMAXPROCS). The Index is immutable, so workers share it without locks.
func (e *Evaluator) EvalParallel(p pattern.Node, workers int) *incident.Set {
	set, _ := e.EvalParallelCtx(context.Background(), p, workers, nil)
	return set
}

// EvalParallelCtx is EvalParallel with cooperative cancellation, budget
// enforcement and per-query statistics. Cancellation is checked between
// instances, budget limits additionally inside the joins at the
// resilience.CheckInterval stride; when ctx is cancelled or a budget limit
// trips, the partial result is discarded and the error returned. Worker
// panics do not escape: each instance evaluation runs under an isolation
// boundary (safeEvalWID) that converts a panic into a *resilience.PanicError
// so one poisoned query cannot take the process down. stats, when non-nil,
// is filled in before returning — on both the success and the failure path.
func (e *Evaluator) EvalParallelCtx(ctx context.Context, p pattern.Node, workers int, stats *QueryStats) (*incident.Set, error) {
	wids := e.src.WIDs()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(wids) {
		workers = len(wids)
	}
	bs := newBudgetState(e.opts.Budget)
	if workers <= 1 {
		return e.evalSerialCtx(ctx, p, stats, bs)
	}
	if stats != nil {
		stats.Workers = workers
	}

	// Contiguous chunks, one per worker: per-instance work is often tiny,
	// so per-item handoff (a channel send per instance) would dominate.
	results := make([][]incident.Incident, len(wids))
	var (
		wg        sync.WaitGroup
		done      int64 // instances completed, across workers
		cancelled atomic.Bool
		errOnce   sync.Once
		evalErr   error // first worker error; read after wg.Wait
	)
	fail := func(err error) {
		errOnce.Do(func() { evalErr = err })
		cancelled.Store(true)
	}
	ctxDone := ctx.Done()
	chunk := (len(wids) + workers - 1) / workers
	for start := 0; start < len(wids); start += chunk {
		end := start + chunk
		if end > len(wids) {
			end = len(wids)
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			for i := start; i < end; i++ {
				if cancelled.Load() {
					return
				}
				select {
				case <-ctxDone:
					cancelled.Store(true)
					return
				default:
				}
				incs, err := e.safeEvalWID(p, wids[i], bs)
				if err != nil {
					fail(err)
					return
				}
				if err := bs.addResult(incs); err != nil {
					fail(err)
					return
				}
				results[i] = incs
				atomic.AddInt64(&done, 1)
			}
		}(start, end)
	}
	wg.Wait()

	total := 0
	for _, r := range results {
		total += len(r)
	}
	if stats != nil {
		stats.Instances = int(done)
		stats.Incidents = total
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if evalErr != nil {
		return nil, evalErr
	}

	// Per-instance slices are individually normalized and instance ids are
	// ascending, so concatenation in wid order is already canonical.
	flat := make([]incident.Incident, 0, total)
	for _, r := range results {
		flat = append(flat, r...)
	}
	return setFromSorted(flat), nil
}

// EvalWIDsCtx evaluates p over exactly the given workflow instances — the
// per-shard entry point of internal/shard — with the same cooperative
// cancellation, budget enforcement (Options.Budget, a fresh budget state
// per call) and panic isolation as EvalParallelCtx. Evaluation is serial:
// a sharded execution gets its parallelism from concurrent shards, not
// from workers within one. The returned set is exactly the restriction of
// incL(p) to the given wids.
func (e *Evaluator) EvalWIDsCtx(ctx context.Context, p pattern.Node, wids []uint64, stats *QueryStats) (*incident.Set, error) {
	return e.evalWIDList(ctx, p, wids, stats, newBudgetState(e.opts.Budget))
}

// evalSerialCtx is the workers<=1 path of EvalParallelCtx: Eval with
// per-instance cancellation checks, budget enforcement, panic isolation
// and stats.
func (e *Evaluator) evalSerialCtx(ctx context.Context, p pattern.Node, stats *QueryStats, bs *budgetState) (*incident.Set, error) {
	return e.evalWIDList(ctx, p, e.src.WIDs(), stats, bs)
}

// evalWIDList is the shared serial evaluation loop over an explicit wid
// list, under the full isolation boundary (safeEvalWID + budget + ctx).
func (e *Evaluator) evalWIDList(ctx context.Context, p pattern.Node, wids []uint64, stats *QueryStats, bs *budgetState) (*incident.Set, error) {
	if stats != nil {
		stats.Workers = 1
	}
	ctxDone := ctx.Done()
	set := &incident.Set{}
	for _, wid := range wids {
		select {
		case <-ctxDone:
			return nil, ctx.Err()
		default:
		}
		incs, err := e.safeEvalWID(p, wid, bs)
		if err != nil {
			return nil, err
		}
		if err := bs.addResult(incs); err != nil {
			return nil, err
		}
		set.Add(incs...)
		if stats != nil {
			stats.Instances++
			stats.Incidents += len(incs)
		}
	}
	set.Normalize()
	return set, nil
}

// ExistsParallel is Exists with a parallel scan over instances; it still
// stops early (workers poll a shared found flag via a closed channel).
func (e *Evaluator) ExistsParallel(p pattern.Node, workers int) bool {
	wids := e.src.WIDs()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(wids) {
		workers = len(wids)
	}
	if workers <= 1 {
		return e.Exists(p)
	}

	var (
		wg    sync.WaitGroup
		found atomic.Bool
	)
	// Interleaved assignment (worker w takes wids w, w+workers, ...) so all
	// workers touch early instances first: existence hits near the front of
	// the log short-circuit quickly regardless of chunk boundaries.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(wids); i += workers {
				if found.Load() {
					return
				}
				if len(e.evalWID(p, wids[i], nil)) > 0 {
					found.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return found.Load()
}

// setFromSorted builds a Set from incidents already in canonical order
// without re-sorting (the per-instance evaluator guarantees order).
func setFromSorted(incs []incident.Incident) *incident.Set {
	// Defensive: verify order in debug-ish O(n) pass; fall back to a full
	// normalize if a violation sneaks in (should be unreachable).
	for i := 1; i < len(incs); i++ {
		if incs[i-1].Compare(incs[i]) >= 0 {
			sort.Slice(incs, func(a, b int) bool { return incs[a].Compare(incs[b]) < 0 })
			break
		}
	}
	return incident.NewSet(incs...)
}
