package eval

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"wlq/internal/core/incident"
	"wlq/internal/core/pattern"
)

// Incidents never span workflow instances (Definition 4 requires one wid),
// so incL(p) decomposes as a disjoint union over instances and the
// per-instance evaluations are embarrassingly parallel. EvalParallel
// exploits this: instances are distributed over a worker pool and the
// per-instance results concatenated. The result is identical to Eval.

// EvalParallel computes incL(p) using up to workers goroutines (0 means
// GOMAXPROCS). The Index is immutable, so workers share it without locks.
func (e *Evaluator) EvalParallel(p pattern.Node, workers int) *incident.Set {
	wids := e.ix.WIDs()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(wids) {
		workers = len(wids)
	}
	if workers <= 1 {
		return e.Eval(p)
	}

	// Contiguous chunks, one per worker: per-instance work is often tiny,
	// so per-item handoff (a channel send per instance) would dominate.
	results := make([][]incident.Incident, len(wids))
	var wg sync.WaitGroup
	chunk := (len(wids) + workers - 1) / workers
	for start := 0; start < len(wids); start += chunk {
		end := start + chunk
		if end > len(wids) {
			end = len(wids)
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			for i := start; i < end; i++ {
				results[i] = e.evalWID(p, wids[i])
			}
		}(start, end)
	}
	wg.Wait()

	// Per-instance slices are individually normalized and instance ids are
	// ascending, so concatenation in wid order is already canonical.
	total := 0
	for _, r := range results {
		total += len(r)
	}
	flat := make([]incident.Incident, 0, total)
	for _, r := range results {
		flat = append(flat, r...)
	}
	return setFromSorted(flat)
}

// ExistsParallel is Exists with a parallel scan over instances; it still
// stops early (workers poll a shared found flag via a closed channel).
func (e *Evaluator) ExistsParallel(p pattern.Node, workers int) bool {
	wids := e.ix.WIDs()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(wids) {
		workers = len(wids)
	}
	if workers <= 1 {
		return e.Exists(p)
	}

	var (
		wg    sync.WaitGroup
		found atomic.Bool
	)
	// Interleaved assignment (worker w takes wids w, w+workers, ...) so all
	// workers touch early instances first: existence hits near the front of
	// the log short-circuit quickly regardless of chunk boundaries.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(wids); i += workers {
				if found.Load() {
					return
				}
				if len(e.evalWID(p, wids[i])) > 0 {
					found.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return found.Load()
}

// setFromSorted builds a Set from incidents already in canonical order
// without re-sorting (the per-instance evaluator guarantees order).
func setFromSorted(incs []incident.Incident) *incident.Set {
	// Defensive: verify order in debug-ish O(n) pass; fall back to a full
	// normalize if a violation sneaks in (should be unreachable).
	for i := 1; i < len(incs); i++ {
		if incs[i-1].Compare(incs[i]) >= 0 {
			sort.Slice(incs, func(a, b int) bool { return incs[a].Compare(incs[b]) < 0 })
			break
		}
	}
	return incident.NewSet(incs...)
}
