package eval

import (
	"context"
	"errors"
	"testing"

	"wlq/internal/core/pattern"
)

func TestEvalParallelCtxStats(t *testing.T) {
	traces := make([][]string, 32)
	for i := range traces {
		traces[i] = []string{"A", "B"}
	}
	l := buildLog(t, traces...)
	e := New(NewIndex(l), Options{})
	p := pattern.MustParse("A . B")
	for _, workers := range []int{1, 4} {
		var qs QueryStats
		set, err := e.EvalParallelCtx(context.Background(), p, workers, &qs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if set.Len() != 32 {
			t.Errorf("workers=%d: %d incidents, want 32", workers, set.Len())
		}
		if qs.Workers != workers {
			t.Errorf("workers=%d: stats.Workers = %d", workers, qs.Workers)
		}
		if qs.Instances != 32 {
			t.Errorf("workers=%d: stats.Instances = %d, want 32", workers, qs.Instances)
		}
		if qs.Incidents != 32 {
			t.Errorf("workers=%d: stats.Incidents = %d, want 32", workers, qs.Incidents)
		}
	}
}

func TestEvalParallelCtxNilStats(t *testing.T) {
	l := buildLog(t, []string{"A", "B"}, []string{"A", "B"})
	e := New(NewIndex(l), Options{})
	set, err := e.EvalParallelCtx(context.Background(), pattern.MustParse("A -> B"), 2, nil)
	if err != nil || set.Len() != 2 {
		t.Fatalf("got (%v, %v), want 2 incidents", set, err)
	}
}

func TestEvalParallelCtxCancelled(t *testing.T) {
	traces := make([][]string, 16)
	for i := range traces {
		traces[i] = []string{"A", "B", "C"}
	}
	l := buildLog(t, traces...)
	e := New(NewIndex(l), Options{})
	p := pattern.MustParse("A -> C")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired before evaluation starts
	for _, workers := range []int{1, 4} {
		set, err := e.EvalParallelCtx(ctx, p, workers, nil)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if set != nil {
			t.Errorf("workers=%d: got a partial result on cancellation", workers)
		}
	}
}

func TestEvalParallelCtxDeadline(t *testing.T) {
	l := buildLog(t, []string{"A", "B"})
	e := New(NewIndex(l), Options{})
	ctx, cancel := context.WithTimeout(context.Background(), -1)
	defer cancel()
	_, err := e.EvalParallelCtx(ctx, pattern.MustParse("A"), 2, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
