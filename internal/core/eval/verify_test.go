package eval

import (
	"math/rand"
	"testing"

	"wlq/internal/core/incident"
	"wlq/internal/core/pattern"
	"wlq/internal/wlog"
)

func TestVerifyBasics(t *testing.T) {
	l := buildLog(t, []string{"A", "B", "A", "B"}) // seqs: START=1 A=2 B=3 A=4 B=5
	e := New(NewIndex(l), Options{})

	tests := []struct {
		query string
		inc   incident.Incident
		want  bool
	}{
		{"A", incident.New(1, 2), true},
		{"A", incident.New(1, 3), false},
		{"!A", incident.New(1, 3), true},
		{"!A", incident.New(1, 2), false},
		{"A", incident.New(1, 2, 4), false}, // atoms are singletons
		{"A . B", incident.New(1, 2, 3), true},
		{"A . B", incident.New(1, 2, 5), false}, // gap
		{"A -> B", incident.New(1, 2, 5), true},
		{"B -> A", incident.New(1, 2, 3), false}, // wrong order
		{"A | B", incident.New(1, 3), true},
		{"A | B", incident.New(1, 2, 3), false}, // choice picks one side
		{"A & B", incident.New(1, 3, 4), true},  // B then A: shuffle allowed
		{"A & A", incident.New(1, 2, 4), true},
		{"A & A", incident.New(1, 2, 3), false}, // one side is B
		{"A -> (B & A)", incident.New(1, 2, 3, 4), true},
		{"(A . B) & (A . B)", incident.New(1, 2, 3, 4, 5), true},
		{"A", incident.New(99, 1), false}, // unknown instance
	}
	for _, tt := range tests {
		t.Run(tt.query+"/"+tt.inc.String(), func(t *testing.T) {
			p := pattern.MustParse(tt.query)
			if got := e.Verify(p, tt.inc); got != tt.want {
				t.Errorf("Verify(%s, %s) = %v, want %v", tt.query, tt.inc, got, tt.want)
			}
		})
	}
}

func TestVerifyChoiceSizes(t *testing.T) {
	// (A . B) | C has incidents of sizes 2 and 1; a parallel above it must
	// consider both left-operand sizes.
	l := buildLog(t, []string{"A", "B", "C", "D"})
	e := New(NewIndex(l), Options{})
	p := pattern.MustParse("((A . B) | C) & D")
	if !e.Verify(p, incident.New(1, 2, 3, 5)) { // {A,B} ∪ {D}
		t.Error("size-2 left branch not verified")
	}
	if !e.Verify(p, incident.New(1, 4, 5)) { // {C} ∪ {D}
		t.Error("size-1 left branch not verified")
	}
	if e.Verify(p, incident.New(1, 2, 5)) { // {A} alone isn't an incident of (A.B)|C
		t.Error("bogus split accepted")
	}
}

func TestPossibleSizes(t *testing.T) {
	tests := []struct {
		query string
		want  []int
	}{
		{"A", []int{1}},
		{"A -> B", []int{2}},
		{"A | B", []int{1}},
		{"(A -> B) | C", []int{1, 2}},
		{"((A -> B) | C) & D", []int{2, 3}},
		{"((A -> B) | C) . ((A -> B) | C)", []int{2, 3, 4}},
	}
	for _, tt := range tests {
		t.Run(tt.query, func(t *testing.T) {
			got := possibleSizes(pattern.MustParse(tt.query))
			if len(got) != len(tt.want) {
				t.Fatalf("possibleSizes = %v, want %v", got, tt.want)
			}
			for _, s := range tt.want {
				if _, ok := got[s]; !ok {
					t.Errorf("missing size %d in %v", s, got)
				}
			}
		})
	}
}

// TestVerifySoundnessOfEvaluator: everything the evaluator returns must
// verify against Definition 4, and mutations of returned incidents must
// (almost always) fail verification.
func TestVerifySoundnessOfEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	alphabet := []string{"A", "B", "C"}
	for trial := 0; trial < 80; trial++ {
		var b wlog.Builder
		numInst := 1 + rng.Intn(3)
		wids := make([]uint64, numInst)
		for i := range wids {
			wids[i] = b.Start()
		}
		for step := 0; step < 4+rng.Intn(8); step++ {
			wid := wids[rng.Intn(numInst)]
			if err := b.Emit(wid, alphabet[rng.Intn(len(alphabet))], nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		l := b.MustBuild()
		ix := NewIndex(l)
		e := New(ix, Options{})
		p := randomPattern(rng, 3, alphabet)
		set := e.Eval(p)
		for _, inc := range set.Incidents() {
			if !e.Verify(p, inc) {
				t.Fatalf("trial %d: evaluator returned %s for %s, which does not verify",
					trial, inc, p)
			}
			// A record set NOT in incL(p) must not verify: shift the
			// incident's wid to a different instance (if any) where the
			// same seqs may not exist or not match.
			otherWID := inc.WID()%uint64(numInst) + 1
			if otherWID != inc.WID() {
				moved := incident.New(otherWID, inc.Seqs()...)
				if e.Verify(p, moved) && !set.Contains(moved) {
					t.Fatalf("trial %d: %s verifies for %s but is not in incL",
						trial, moved, p)
				}
			}
		}
	}
}
