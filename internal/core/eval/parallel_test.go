package eval

import (
	"math/rand"
	"testing"

	"wlq/internal/core/pattern"
	"wlq/internal/wlog"
)

func TestEvalParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	alphabet := []string{"A", "B", "C"}
	for trial := 0; trial < 40; trial++ {
		var b wlog.Builder
		numInst := 1 + rng.Intn(8)
		wids := make([]uint64, numInst)
		for i := range wids {
			wids[i] = b.Start()
		}
		for step := 0; step < 5+rng.Intn(30); step++ {
			wid := wids[rng.Intn(numInst)]
			if err := b.Emit(wid, alphabet[rng.Intn(len(alphabet))], nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		l := b.MustBuild()
		ix := NewIndex(l)
		e := New(ix, Options{})
		p := randomPattern(rng, 3, alphabet)

		serial := e.Eval(p)
		for _, workers := range []int{0, 1, 2, 4, 100} {
			par := e.EvalParallel(p, workers)
			if !serial.Equal(par) {
				t.Fatalf("trial %d workers=%d: parallel differs on %s:\nserial: %s\npar:    %s",
					trial, workers, p, serial, par)
			}
			if e.ExistsParallel(p, workers) != (serial.Len() > 0) {
				t.Fatalf("trial %d workers=%d: ExistsParallel wrong for %s", trial, workers, p)
			}
		}
	}
}

func TestEvalParallelEmptyPatternResult(t *testing.T) {
	l := buildLog(t, []string{"A"}, []string{"B"})
	e := New(NewIndex(l), Options{})
	p := pattern.MustParse("Z -> Z")
	if got := e.EvalParallel(p, 4); got.Len() != 0 {
		t.Errorf("EvalParallel = %s, want empty", got)
	}
	if e.ExistsParallel(p, 4) {
		t.Error("ExistsParallel = true on empty result")
	}
}

func TestEvalParallelManyInstances(t *testing.T) {
	// More instances than workers; every instance matches, so Exists must
	// stop early without deadlocking the feeder.
	traces := make([][]string, 64)
	for i := range traces {
		traces[i] = []string{"A", "B"}
	}
	l := buildLog(t, traces...)
	e := New(NewIndex(l), Options{})
	p := pattern.MustParse("A . B")
	if !e.ExistsParallel(p, 4) {
		t.Error("ExistsParallel = false")
	}
	set := e.EvalParallel(p, 4)
	if set.Len() != 64 {
		t.Errorf("EvalParallel found %d incidents, want 64", set.Len())
	}
	// Canonical order must hold without a re-sort.
	for i := 1; i < set.Len(); i++ {
		if set.At(i-1).Compare(set.At(i)) >= 0 {
			t.Fatal("parallel result not in canonical order")
		}
	}
}

func BenchmarkEvalParallel(b *testing.B) {
	traces := make([][]string, 200)
	for i := range traces {
		traces[i] = make([]string, 40)
		for j := range traces[i] {
			traces[i][j] = []string{"A", "B", "C"}[(i+j)%3]
		}
	}
	var bld wlog.Builder
	wids := make([]uint64, len(traces))
	for i := range traces {
		wids[i] = bld.Start()
	}
	for step := 0; step < 40; step++ {
		for i := range traces {
			if err := bld.Emit(wids[i], traces[i][step], nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	l := bld.MustBuild()
	ix := NewIndex(l)
	e := New(ix, Options{})
	p := pattern.MustParse("A -> (B & C)")
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.Eval(p)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.EvalParallel(p, 0)
		}
	})
}
