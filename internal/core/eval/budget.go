package eval

import (
	"sync/atomic"
	"time"

	"wlq/internal/core/incident"
	"wlq/internal/core/pattern"
	"wlq/internal/resilience"
)

// Budget enforcement. Options.Budget caps the resources one evaluation may
// consume; the caps are checked inside the hot loops, but periodically, not
// per comparison:
//
//   - comparisons: the opCount every join tallies into flushes to a shared
//     atomic total every resilience.CheckInterval comparisons, where the
//     MaxComparisons and MaxWallTime limits are checked. A query therefore
//     overruns MaxComparisons by at most one interval per concurrent worker
//     before aborting — the same counters eval.Meter reports, so budget
//     accounting and the cost table agree.
//   - outputs: checked after every operator application (MaxOutputs bounds
//     the Theorem 1 incident blowup, intermediate results included).
//   - result bytes and wall time: checked between workflow instances as
//     each instance's incidents are produced.
//
// Deep inside a join there is no error return path (Algorithm 1's loops
// produce slices, not errors), so a tripped limit aborts by panicking with
// a budgetAbort, which safeEvalWID converts back into the *BudgetError at
// the instance boundary. The panic never escapes the evaluator.
//
// Budgets are enforced on the context-aware paths (EvalParallelCtx and the
// serial path under it); the plain Eval/Exists/EvalInstance entry points
// have no error channel and ignore Options.Budget.

// budgetAbort is the internal panic payload carrying the typed error.
type budgetAbort struct {
	err *resilience.BudgetError
}

// budgetState is the shared, per-evaluation enforcement state. All workers
// of a parallel evaluation share one; counters are atomic. A nil
// *budgetState disables enforcement everywhere it is passed.
type budgetState struct {
	b        resilience.Budget
	started  time.Time
	deadline time.Time // zero when MaxWallTime is unset

	comparisons atomic.Uint64
	outputs     atomic.Uint64
	resultBytes atomic.Uint64
}

// newBudgetState starts enforcement for one evaluation; a zero budget
// returns nil (no overhead on any path).
func newBudgetState(b resilience.Budget) *budgetState {
	if b.IsZero() {
		return nil
	}
	bs := &budgetState{b: b, started: resilience.Now()}
	if b.MaxWallTime > 0 {
		bs.deadline = bs.started.Add(b.MaxWallTime)
	}
	return bs
}

// wallTimeErr returns the wall-time violation, or nil while within budget.
func (bs *budgetState) wallTimeErr() *resilience.BudgetError {
	if bs == nil || bs.deadline.IsZero() {
		return nil
	}
	now := resilience.Now()
	if now.Before(bs.deadline) {
		return nil
	}
	return &resilience.BudgetError{
		Dimension: resilience.DimWallTime,
		Limit:     uint64(bs.b.MaxWallTime),
		Measured:  uint64(now.Sub(bs.started)),
	}
}

// addComparisons folds a flushed comparison delta into the shared total and
// checks the comparison and wall-time limits, panicking with budgetAbort on
// a violation (this is the mid-join check; there is no error return path).
func (bs *budgetState) addComparisons(delta uint64) {
	if bs == nil {
		return
	}
	total := bs.comparisons.Add(delta)
	if max := bs.b.MaxComparisons; max > 0 && total > max {
		panic(budgetAbort{&resilience.BudgetError{
			Dimension: resilience.DimComparisons, Limit: max, Measured: total,
		}})
	}
	if err := bs.wallTimeErr(); err != nil {
		panic(budgetAbort{err})
	}
}

// addOutputs folds one operator application's incident count into the
// shared total, panicking on a MaxOutputs violation.
func (bs *budgetState) addOutputs(n int) {
	if bs == nil {
		return
	}
	total := bs.outputs.Add(uint64(n))
	if max := bs.b.MaxOutputs; max > 0 && total > max {
		panic(budgetAbort{&resilience.BudgetError{
			Dimension: resilience.DimOutputs, Limit: max, Measured: total,
		}})
	}
}

// incidentBytes approximates the in-memory size of one incident: the
// two-word header plus the seqs slice (three-word header + 8 bytes per
// element).
func incidentBytes(o incident.Incident) uint64 {
	return 40 + 8*uint64(o.Len())
}

// addResult accounts one finished instance's incidents against the
// result-size budget and re-checks wall time. Called at the instance
// boundary, where an error return exists — no panic needed.
func (bs *budgetState) addResult(incs []incident.Incident) error {
	if bs == nil {
		return nil
	}
	var bytes uint64
	for _, o := range incs {
		bytes += incidentBytes(o)
	}
	total := bs.resultBytes.Add(bytes)
	if max := bs.b.MaxResultBytes; max > 0 && total > max {
		return &resilience.BudgetError{
			Dimension: resilience.DimResultBytes, Limit: max, Measured: total,
		}
	}
	if err := bs.wallTimeErr(); err != nil {
		return err
	}
	return nil
}

// Comparisons returns the comparison work charged so far (test hook).
func (bs *budgetState) Comparisons() uint64 {
	if bs == nil {
		return 0
	}
	return bs.comparisons.Load()
}

// evalHook, when set, is called once per instance evaluation on the
// context-aware paths, before any join work for that instance. It is a
// deterministic fault-injection seam: internal/faultinject builds hooks
// that panic on the Nth call or stall, and the chaos tests assert the
// service degrades instead of dying. Production code never sets it; the
// cost when unset is one atomic load per instance.
var evalHook atomic.Pointer[func(wid uint64)]

// SetEvalHook installs (or, with nil, removes) the per-instance evaluation
// hook. Intended for tests only.
func SetEvalHook(h func(wid uint64)) {
	if h == nil {
		evalHook.Store(nil)
		return
	}
	evalHook.Store(&h)
}

// safeEvalWID evaluates one instance under the worker isolation boundary:
// a budgetAbort panic becomes its typed *BudgetError, any other panic — a
// genuine bug, or an injected fault — becomes a *resilience.PanicError with
// an incident id and the captured stack. One poisoned instance evaluation
// fails one query; the process, and the other queries in flight, keep going.
func (e *Evaluator) safeEvalWID(p pattern.Node, wid uint64, bs *budgetState) (incs []incident.Incident, err error) {
	defer func() {
		switch r := recover().(type) {
		case nil:
		case budgetAbort:
			incs, err = nil, r.err
		default:
			incs, err = nil, resilience.NewPanicError(r)
		}
	}()
	if h := evalHook.Load(); h != nil {
		(*h)(wid)
	}
	return e.evalWID(p, wid, bs), nil
}
