package eval

import (
	"context"
	"errors"
	"testing"
	"time"

	"wlq/internal/core/pattern"
	"wlq/internal/resilience"
	"wlq/internal/wlog"
)

// heavyLog builds a log whose A -> B evaluation performs many comparisons:
// each instance interleaves n As and n Bs, so the sequential join of one
// instance touches ~n² pairs under the naive strategy.
func heavyLog(t *testing.T, instances, n int) *wlog.Log {
	t.Helper()
	traces := make([][]string, instances)
	for i := range traces {
		tr := make([]string, 0, 2*n)
		for j := 0; j < n; j++ {
			tr = append(tr, "A", "B")
		}
		traces[i] = tr
	}
	return buildLog(t, traces...)
}

func budgetEval(t *testing.T, l *wlog.Log, query string, workers int, b resilience.Budget) (*QueryStats, *Meter, error) {
	t.Helper()
	p := pattern.MustParse(query)
	meter := NewMeter(p)
	e := New(NewIndex(l), Options{Strategy: StrategyNaive, Meter: meter, Budget: b})
	var qs QueryStats
	_, err := e.EvalParallelCtx(context.Background(), p, workers, &qs)
	return &qs, meter, err
}

func TestBudgetMaxComparisonsAborts(t *testing.T) {
	l := heavyLog(t, 4, 200) // ~4·200² = 160k comparisons for A -> B
	const max = 10_000
	for _, workers := range []int{1, 4} {
		_, meter, err := budgetEval(t, l, "A -> B", workers,
			resilience.Budget{MaxComparisons: max})
		if !errors.Is(err, resilience.ErrBudgetExceeded) {
			t.Fatalf("workers=%d: err = %v, want budget exceeded", workers, err)
		}
		var be *resilience.BudgetError
		if !errors.As(err, &be) || be.Dimension != resilience.DimComparisons {
			t.Fatalf("workers=%d: wrong dimension: %v", workers, err)
		}
		// The abort is prompt: measured work stays within the limit plus
		// one check interval per worker (the overshoot bound budget.go
		// documents).
		slack := uint64(workers) * resilience.CheckInterval
		if got := meter.TotalComparisons(); got > max+slack {
			t.Errorf("workers=%d: meter comparisons %d > limit %d + slack %d",
				workers, got, max, slack)
		}
	}
}

func TestBudgetMaxOutputsAborts(t *testing.T) {
	l := heavyLog(t, 2, 100) // ~2·(100·101/2) ≈ 10k incidents for A -> B
	_, _, err := budgetEval(t, l, "A -> B", 2, resilience.Budget{MaxOutputs: 500})
	var be *resilience.BudgetError
	if !errors.As(err, &be) || be.Dimension != resilience.DimOutputs {
		t.Fatalf("err = %v, want outputs budget error", err)
	}
}

func TestBudgetMaxResultBytesAborts(t *testing.T) {
	l := heavyLog(t, 8, 50)
	_, _, err := budgetEval(t, l, "A -> B", 2, resilience.Budget{MaxResultBytes: 4 << 10})
	var be *resilience.BudgetError
	if !errors.As(err, &be) || be.Dimension != resilience.DimResultBytes {
		t.Fatalf("err = %v, want result-bytes budget error", err)
	}
}

func TestBudgetMaxWallTimeAbortsDeterministically(t *testing.T) {
	// A skewed clock makes the wall-time budget trip on the first check
	// without any real waiting: the second Now() call reports one hour
	// later than the first.
	base := time.Date(2026, 8, 6, 9, 0, 0, 0, time.UTC)
	calls := 0
	resilience.SetClock(func() time.Time {
		calls++
		if calls == 1 {
			return base
		}
		return base.Add(time.Hour)
	})
	defer resilience.SetClock(nil)

	l := heavyLog(t, 2, 100)
	_, _, err := budgetEval(t, l, "A -> B", 1, resilience.Budget{MaxWallTime: time.Second})
	var be *resilience.BudgetError
	if !errors.As(err, &be) || be.Dimension != resilience.DimWallTime {
		t.Fatalf("err = %v, want wall-time budget error", err)
	}
}

func TestBudgetWithinLimitsSucceeds(t *testing.T) {
	l := heavyLog(t, 4, 20)
	p := pattern.MustParse("A -> B")
	want := New(NewIndex(l), Options{}).Eval(p)
	e := New(NewIndex(l), Options{Budget: resilience.Budget{
		MaxComparisons: 1 << 40,
		MaxOutputs:     1 << 40,
		MaxWallTime:    time.Hour,
		MaxResultBytes: 1 << 40,
	}})
	got, err := e.EvalParallelCtx(context.Background(), p, 4, nil)
	if err != nil {
		t.Fatalf("roomy budget aborted: %v", err)
	}
	if !got.Equal(want) {
		t.Fatal("budgeted evaluation changed the result")
	}
}

func TestZeroBudgetIsFree(t *testing.T) {
	if bs := newBudgetState(resilience.Budget{}); bs != nil {
		t.Fatal("zero budget must produce a nil state")
	}
	// All nil-state methods are no-ops.
	var bs *budgetState
	bs.addComparisons(1 << 50)
	bs.addOutputs(1 << 30)
	if err := bs.addResult(nil); err != nil {
		t.Fatalf("nil state addResult: %v", err)
	}
}

func TestWorkerPanicIsIsolated(t *testing.T) {
	l := heavyLog(t, 8, 4)
	SetEvalHook(func(wid uint64) {
		if wid == 5 {
			panic("injected worker fault")
		}
	})
	defer SetEvalHook(nil)

	e := New(NewIndex(l), Options{})
	for _, workers := range []int{1, 4} {
		_, err := e.EvalParallelCtx(context.Background(), pattern.MustParse("A -> B"), workers, nil)
		var pe *resilience.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.IncidentID == "" || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: panic error missing incident id or stack", workers)
		}
	}

	// The evaluator (and the process) survive: a clean evaluation on the
	// same Evaluator still succeeds once the fault stops firing.
	SetEvalHook(nil)
	set, err := e.EvalParallelCtx(context.Background(), pattern.MustParse("A -> B"), 4, nil)
	if err != nil {
		t.Fatalf("post-fault evaluation failed: %v", err)
	}
	if set.Len() == 0 {
		t.Fatal("post-fault evaluation returned no incidents")
	}
}

func TestBudgetMergeStrategyAlsoEnforced(t *testing.T) {
	// The merge joins count probes rather than pairs, so force volume with
	// outputs: mergeSequential's output work is unavoidable.
	l := heavyLog(t, 2, 150)
	p := pattern.MustParse("A -> B")
	e := New(NewIndex(l), Options{Strategy: StrategyMerge,
		Budget: resilience.Budget{MaxOutputs: 1000}})
	_, err := e.EvalParallelCtx(context.Background(), p, 2, nil)
	var be *resilience.BudgetError
	if !errors.As(err, &be) || be.Dimension != resilience.DimOutputs {
		t.Fatalf("merge strategy: err = %v, want outputs budget error", err)
	}
}
