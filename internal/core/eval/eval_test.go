package eval

import (
	"math/rand"
	"testing"

	"wlq/internal/core/incident"
	"wlq/internal/core/pattern"
	"wlq/internal/wlog"
)

// buildLog creates a log with one instance per activity slice, interleaved
// round-robin. Instance i gets wid i+1.
func buildLog(t *testing.T, instances ...[]string) *wlog.Log {
	t.Helper()
	var b wlog.Builder
	wids := make([]uint64, len(instances))
	for i := range instances {
		wids[i] = b.Start()
	}
	for step := 0; ; step++ {
		emitted := false
		for i, acts := range instances {
			if step < len(acts) {
				if err := b.Emit(wids[i], acts[step], nil, nil); err != nil {
					t.Fatal(err)
				}
				emitted = true
			}
		}
		if !emitted {
			break
		}
	}
	return b.MustBuild()
}

// evalStr parses and evaluates a pattern over a log with both strategies,
// checks they agree, and returns the merge result.
func evalStr(t *testing.T, l *wlog.Log, query string) *incident.Set {
	t.Helper()
	p, err := pattern.Parse(query)
	if err != nil {
		t.Fatalf("Parse(%q): %v", query, err)
	}
	ix := NewIndex(l)
	naive := New(ix, Options{Strategy: StrategyNaive}).Eval(p)
	merge := New(ix, Options{Strategy: StrategyMerge}).Eval(p)
	if !naive.Equal(merge) {
		t.Fatalf("strategies disagree on %q:\nnaive: %s\nmerge: %s", query, naive, merge)
	}
	return merge
}

// wantSet asserts the incident set equals the expected incidents.
func wantSet(t *testing.T, got *incident.Set, want ...incident.Incident) {
	t.Helper()
	expected := incident.NewSet(want...)
	if !got.Equal(expected) {
		t.Errorf("incident set = %s, want %s", got, expected)
	}
}

// The single-instance workload A B A B (is-lsn 2..5 after START at 1).
func abab(t *testing.T) *wlog.Log {
	t.Helper()
	return buildLog(t, []string{"A", "B", "A", "B"})
}

func TestAtomicPositive(t *testing.T) {
	got := evalStr(t, abab(t), "A")
	wantSet(t, got, incident.Singleton(1, 2), incident.Singleton(1, 4))
}

func TestAtomicNoMatch(t *testing.T) {
	got := evalStr(t, abab(t), "Z")
	wantSet(t, got)
}

func TestAtomicNegated(t *testing.T) {
	// !A matches START(1), B(3), B(5) — negation includes START records.
	got := evalStr(t, abab(t), "!A")
	wantSet(t, got,
		incident.Singleton(1, 1), incident.Singleton(1, 3), incident.Singleton(1, 5))
}

func TestConsecutive(t *testing.T) {
	got := evalStr(t, abab(t), "A . B")
	wantSet(t, got, incident.New(1, 2, 3), incident.New(1, 4, 5))
}

func TestConsecutiveReversedOrder(t *testing.T) {
	got := evalStr(t, abab(t), "B . A")
	wantSet(t, got, incident.New(1, 3, 4))
}

func TestSequential(t *testing.T) {
	got := evalStr(t, abab(t), "A -> B")
	wantSet(t, got,
		incident.New(1, 2, 3), incident.New(1, 2, 5), incident.New(1, 4, 5))
}

func TestSequentialNotCommutative(t *testing.T) {
	ab := evalStr(t, abab(t), "A -> B")
	ba := evalStr(t, abab(t), "B -> A")
	wantSet(t, ba, incident.New(1, 3, 4))
	if ab.Equal(ba) {
		t.Error("A -> B and B -> A should differ on ABAB")
	}
}

func TestChoice(t *testing.T) {
	got := evalStr(t, abab(t), "A | B")
	wantSet(t, got,
		incident.Singleton(1, 2), incident.Singleton(1, 3),
		incident.Singleton(1, 4), incident.Singleton(1, 5))
}

func TestChoiceDeduplicates(t *testing.T) {
	// A | A must yield each incident of A exactly once (Definition 4 makes
	// incident sets true sets; Section 3.1 discusses this duplicate check).
	got := evalStr(t, abab(t), "A | A")
	wantSet(t, got, incident.Singleton(1, 2), incident.Singleton(1, 4))
}

func TestParallel(t *testing.T) {
	got := evalStr(t, abab(t), "A & B")
	wantSet(t, got,
		incident.New(1, 2, 3), incident.New(1, 2, 5),
		incident.New(1, 3, 4), incident.New(1, 4, 5))
}

func TestParallelIsCommutativeHere(t *testing.T) {
	ab := evalStr(t, abab(t), "A & B")
	ba := evalStr(t, abab(t), "B & A")
	if !ab.Equal(ba) {
		t.Errorf("A & B = %s but B & A = %s", ab, ba)
	}
}

func TestParallelDisjointness(t *testing.T) {
	// A & A on a log with two A records: only the pair of distinct records
	// qualifies (an incident cannot reuse one record for both sides).
	got := evalStr(t, abab(t), "A & A")
	wantSet(t, got, incident.New(1, 2, 4))
}

func TestParallelSetSemantics(t *testing.T) {
	// !X & !X over one instance of length 3 (START A B): every 2-subset of
	// {1,2,3} arises from two (o1,o2) pairs; the set must contain each once.
	l := buildLog(t, []string{"A", "B"})
	got := evalStr(t, l, "!X & !X")
	wantSet(t, got,
		incident.New(1, 1, 2), incident.New(1, 1, 3), incident.New(1, 2, 3))
}

func TestInstancesDoNotMix(t *testing.T) {
	// Instance 1 has A then nothing; instance 2 has B. A -> B must be empty:
	// incidents never span workflow instances.
	l := buildLog(t, []string{"A"}, []string{"B"})
	got := evalStr(t, l, "A -> B")
	wantSet(t, got)
}

func TestMultiInstance(t *testing.T) {
	l := buildLog(t, []string{"A", "B"}, []string{"A", "C", "B"})
	got := evalStr(t, l, "A -> B")
	wantSet(t, got, incident.New(1, 2, 3), incident.New(2, 2, 4))
}

func TestCompositeNesting(t *testing.T) {
	// (A . B) -> (A . B) on ABAB: the two consecutive pairs in order.
	got := evalStr(t, abab(t), "(A . B) -> (A . B)")
	wantSet(t, got, incident.New(1, 2, 3, 4, 5))
}

func TestChoiceOfComposites(t *testing.T) {
	got := evalStr(t, abab(t), "(A . B) | (B . A)")
	wantSet(t, got,
		incident.New(1, 2, 3), incident.New(1, 3, 4), incident.New(1, 4, 5))
}

func TestGuardedAtom(t *testing.T) {
	var b wlog.Builder
	w := b.Start()
	if err := b.Emit(w, "GetRefer", nil, wlog.Attrs("balance", 1000)); err != nil {
		t.Fatal(err)
	}
	if err := b.Emit(w, "GetRefer", nil, wlog.Attrs("balance", 6000)); err != nil {
		t.Fatal(err)
	}
	l := b.MustBuild()
	got := evalStr(t, l, "GetRefer[balance>5000]")
	wantSet(t, got, incident.Singleton(1, 3))

	all := evalStr(t, l, "GetRefer")
	wantSet(t, all, incident.Singleton(1, 2), incident.Singleton(1, 3))
}

func TestGuardedNegatedAtom(t *testing.T) {
	var b wlog.Builder
	w := b.Start()
	if err := b.Emit(w, "A", nil, wlog.Attrs("x", 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Emit(w, "B", nil, wlog.Attrs("x", 2)); err != nil {
		t.Fatal(err)
	}
	l := b.MustBuild()
	// Records that are not A and have x defined: only B.
	got := evalStr(t, l, "!A[x?]")
	wantSet(t, got, incident.Singleton(1, 3))
}

func TestExists(t *testing.T) {
	l := buildLog(t, []string{"A", "B"}, []string{"B", "A"})
	ix := NewIndex(l)
	e := New(ix, Options{})
	if !e.Exists(pattern.MustParse("A -> B")) {
		t.Error("Exists(A -> B) = false")
	}
	if e.Exists(pattern.MustParse("A . A")) {
		t.Error("Exists(A . A) = true")
	}
}

func TestCount(t *testing.T) {
	ix := NewIndex(abab(t))
	e := New(ix, Options{})
	if got := e.Count(pattern.MustParse("A -> B")); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	if got := e.Count(pattern.MustParse("Z")); got != 0 {
		t.Errorf("Count(Z) = %d, want 0", got)
	}
}

func TestEvalInstance(t *testing.T) {
	l := buildLog(t, []string{"A", "B"}, []string{"A", "B"})
	ix := NewIndex(l)
	e := New(ix, Options{})
	got := e.EvalInstance(pattern.MustParse("A -> B"), 2)
	wantSet(t, got, incident.New(2, 2, 3))
}

func TestLimitCapsResults(t *testing.T) {
	// Pattern !Z & !Z on a longer instance explodes quadratically; Limit
	// keeps the result bounded.
	acts := make([]string, 30)
	for i := range acts {
		acts[i] = "A"
	}
	l := buildLog(t, acts)
	ix := NewIndex(l)
	for _, s := range []Strategy{StrategyNaive, StrategyMerge} {
		e := New(ix, Options{Strategy: s, Limit: 10})
		got := e.Eval(pattern.MustParse("!Z & !Z"))
		if got.Len() == 0 || got.Len() > 10 {
			t.Errorf("%v: Len = %d, want 1..10", s, got.Len())
		}
	}
}

func TestEvalSetConvenience(t *testing.T) {
	got := EvalSet(NewIndex(abab(t)), pattern.MustParse("A . B"))
	wantSet(t, got, incident.New(1, 2, 3), incident.New(1, 4, 5))
}

func TestStrategyString(t *testing.T) {
	if StrategyNaive.String() != "naive" || StrategyMerge.String() != "merge" {
		t.Error("Strategy.String wrong")
	}
}

// TestStrategiesAgreeRandomized cross-checks the naive (published) and
// merge-based joins on randomized logs and patterns: the merge variants
// must be a pure optimization.
func TestStrategiesAgreeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alphabet := []string{"A", "B", "C"}
	for trial := 0; trial < 150; trial++ {
		// Random log: 1-3 instances, 3-10 activities each.
		var b wlog.Builder
		numInst := 1 + rng.Intn(3)
		wids := make([]uint64, numInst)
		for i := range wids {
			wids[i] = b.Start()
		}
		for step := 0; step < 3+rng.Intn(8); step++ {
			wid := wids[rng.Intn(numInst)]
			if err := b.Emit(wid, alphabet[rng.Intn(len(alphabet))], nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		l := b.MustBuild()
		ix := NewIndex(l)
		p := randomPattern(rng, 3, alphabet)
		naive := New(ix, Options{Strategy: StrategyNaive}).Eval(p)
		merge := New(ix, Options{Strategy: StrategyMerge}).Eval(p)
		if !naive.Equal(merge) {
			t.Fatalf("trial %d: strategies disagree on %s over\n%s\nnaive: %s\nmerge: %s",
				trial, p, l, naive, merge)
		}
		// Exists must agree with Eval emptiness.
		e := New(ix, Options{})
		if e.Exists(p) != (naive.Len() > 0) {
			t.Fatalf("trial %d: Exists disagrees with Eval on %s", trial, p)
		}
		if e.Count(p) != naive.Len() {
			t.Fatalf("trial %d: Count disagrees with Eval on %s", trial, p)
		}
	}
}

func randomPattern(rng *rand.Rand, depth int, alphabet []string) pattern.Node {
	if depth <= 1 || rng.Intn(3) == 0 {
		name := alphabet[rng.Intn(len(alphabet))]
		if rng.Intn(5) == 0 {
			return pattern.NewNegAtom(name)
		}
		return pattern.NewAtom(name)
	}
	ops := []pattern.Op{
		pattern.OpConsecutive, pattern.OpSequential,
		pattern.OpChoice, pattern.OpParallel,
	}
	return &pattern.Binary{
		Op:    ops[rng.Intn(len(ops))],
		Left:  randomPattern(rng, depth-1, alphabet),
		Right: randomPattern(rng, depth-1, alphabet),
	}
}

// TestEvalMatchesBruteForce checks the evaluator against a brute-force
// reference that enumerates record subsets per Definition 4 directly.
func TestEvalMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	alphabet := []string{"A", "B"}
	for trial := 0; trial < 60; trial++ {
		acts := make([]string, 2+rng.Intn(4)) // instance length ≤ 7 with START
		for i := range acts {
			acts[i] = alphabet[rng.Intn(len(alphabet))]
		}
		l := buildLog(t, acts)
		ix := NewIndex(l)
		p := randomPattern(rng, 3, alphabet)
		got := New(ix, Options{}).Eval(p)
		want := bruteForce(ix, p, 1)
		if !got.Equal(want) {
			t.Fatalf("trial %d: pattern %s over %v\n got %s\nwant %s",
				trial, p, acts, got, want)
		}
	}
}

// bruteForce computes incL(p) for one instance straight from Definition 4.
func bruteForce(ix *Index, p pattern.Node, wid uint64) *incident.Set {
	switch p := p.(type) {
	case *pattern.Atom:
		var out []incident.Incident
		for _, r := range ix.Instance(wid) {
			match := r.Activity == p.Activity
			if p.Negated {
				match = !match
			}
			if match {
				out = append(out, incident.Singleton(wid, r.Seq))
			}
		}
		return incident.NewSet(out...)
	case *pattern.Binary:
		left := bruteForce(ix, p.Left, wid).Incidents()
		right := bruteForce(ix, p.Right, wid).Incidents()
		var out []incident.Incident
		switch p.Op {
		case pattern.OpConsecutive:
			for _, o1 := range left {
				for _, o2 := range right {
					if o1.Last()+1 == o2.First() {
						out = append(out, o1.Concat(o2))
					}
				}
			}
		case pattern.OpSequential:
			for _, o1 := range left {
				for _, o2 := range right {
					if o1.Last() < o2.First() {
						out = append(out, o1.Concat(o2))
					}
				}
			}
		case pattern.OpChoice:
			out = append(out, left...)
			out = append(out, right...)
		case pattern.OpParallel:
			for _, o1 := range left {
				for _, o2 := range right {
					if u, ok := o1.Union(o2); ok {
						out = append(out, u)
					}
				}
			}
		}
		return incident.NewSet(out...)
	default:
		panic("bruteForce: unknown node")
	}
}

// TestMemoizedSubpatterns: repeated sub-patterns evaluate identically with
// and without the merge strategy's memo, and the memo actually dedupes work
// (observable through a guarded-atom evaluation counter via the index —
// here checked behaviorally: deep duplication stays fast and correct).
func TestMemoizedSubpatterns(t *testing.T) {
	l := buildLog(t, []string{"A", "B", "A", "B", "A", "B"})
	ix := NewIndex(l)
	// (A -> B) duplicated eight times under choice: one evaluation suffices.
	sub := "(A -> B)"
	q := sub
	for i := 0; i < 7; i++ {
		q += " | " + sub
	}
	p := pattern.MustParse(q)
	merge := New(ix, Options{Strategy: StrategyMerge}).Eval(p)
	naive := New(ix, Options{Strategy: StrategyNaive}).Eval(p)
	single := New(ix, Options{}).Eval(pattern.MustParse(sub))
	if !merge.Equal(naive) || !merge.Equal(single) {
		t.Errorf("memoized choice-of-duplicates wrong:\nmerge %s\nnaive %s\nsingle %s",
			merge, naive, single)
	}
}
