package eval

import (
	"sort"

	"wlq/internal/core/incident"
)

// The operator evaluation functions below work on the incidents of a single
// workflow instance, sorted by first() as Section 3.1 assumes ("these sets
// are further assumed to be sorted by the value of the first function").
// Each returns a normalized (sorted, duplicate-free) slice.
//
// Two families are provided:
//
//   - naive*: the published Algorithm 1, verbatim nested loops with the
//     complexity stated in Lemma 1.
//   - merge*: variants that exploit the sorted order (binary search on
//     first(), range-overlap pre-checks) without changing the result. The
//     benchmark suite ablates the two (experiment E9 in DESIGN.md).
//
// Every function takes an optional *opCount (nil disables counting) and
// tallies its record-level comparison work into it, in the unit Lemma 1
// counts: one unit per pair test for ⊙/≺, up to min(|o1|,|o2|) units per
// incident equality/order test for ⊗, and |o1|+|o2| units per union for ⊕.
// For the naive family the tally is therefore never above the Lemma 1
// bound computed from the actual operand sizes; the merge family counts
// its binary-search probes and merge steps instead.

// normalize sorts and deduplicates a result slice in place, establishing
// set semantics for incL(p) (Definition 4 makes incident sets true sets;
// the parallel operator can produce one union from several pairs).
func normalize(incs []incident.Incident) []incident.Incident {
	if len(incs) <= 1 {
		return incs
	}
	sort.Slice(incs, func(i, j int) bool { return incs[i].Compare(incs[j]) < 0 })
	out := incs[:1]
	for _, o := range incs[1:] {
		if o.Compare(out[len(out)-1]) != 0 {
			out = append(out, o)
		}
	}
	return out
}

// minLen is the cost unit of one incident-against-incident test: comparing
// two record sets touches at most min(|o1|,|o2|) elements.
func minLen(o1, o2 incident.Incident) uint64 {
	if o1.Len() < o2.Len() {
		return uint64(o1.Len())
	}
	return uint64(o2.Len())
}

// naiveConsecutive is CONSECUTIVE-EVAL of Algorithm 1: all pairs (o1, o2)
// with last(o1)+1 = first(o2).
func naiveConsecutive(inc1, inc2 []incident.Incident, limit int, cnt *opCount) []incident.Incident {
	var out []incident.Incident
	for _, o1 := range inc1 {
		for _, o2 := range inc2 {
			cnt.add(1)
			if o1.Last()+1 == o2.First() {
				out = append(out, o1.Concat(o2))
				if limited(out, limit) {
					return normalize(out)
				}
			}
		}
	}
	return normalize(out)
}

// naiveSequential is SEQUENTIAL-EVAL of Algorithm 1: all pairs (o1, o2)
// with last(o1) < first(o2).
func naiveSequential(inc1, inc2 []incident.Incident, limit int, cnt *opCount) []incident.Incident {
	var out []incident.Incident
	for _, o1 := range inc1 {
		for _, o2 := range inc2 {
			cnt.add(1)
			if o1.Last() < o2.First() {
				out = append(out, o1.Concat(o2))
				if limited(out, limit) {
					return normalize(out)
				}
			}
		}
	}
	return normalize(out)
}

// naiveChoice is CHOICE-EVAL of Algorithm 1: the set union of the two
// incident sets. The published algorithm performs a pairwise duplicate scan
// (O(n1·n2·min(k1,k2))); we reproduce that join shape here for the ablation
// benchmarks, with mergeChoice providing the linear merge.
func naiveChoice(inc1, inc2 []incident.Incident, limit int, cnt *opCount) []incident.Incident {
	out := make([]incident.Incident, 0, len(inc1)+len(inc2))
	out = append(out, inc1...)
	for _, o2 := range inc2 {
		dup := false
		for _, o1 := range inc1 {
			cnt.add(minLen(o1, o2))
			if o1.Equal(o2) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, o2)
		}
		if limited(out, limit) {
			break
		}
	}
	return normalize(out)
}

// naiveParallel is PARALLEL-EVAL of Algorithm 1: all unions o1 ∪ o2 of
// record-disjoint pairs.
func naiveParallel(inc1, inc2 []incident.Incident, limit int, cnt *opCount) []incident.Incident {
	var out []incident.Incident
	for _, o1 := range inc1 {
		for _, o2 := range inc2 {
			cnt.add(uint64(o1.Len() + o2.Len()))
			if u, ok := o1.Union(o2); ok {
				out = append(out, u)
				if limited(out, limit) {
					return normalize(out)
				}
			}
		}
	}
	return normalize(out)
}

// mergeConsecutive exploits sortedness: for each o1, the o2 candidates are
// exactly the contiguous run of incidents with first(o2) = last(o1)+1,
// located by binary search. O(n1·log n2 + output).
func mergeConsecutive(inc1, inc2 []incident.Incident, limit int, cnt *opCount) []incident.Incident {
	var out []incident.Incident
	for _, o1 := range inc1 {
		want := o1.Last() + 1
		i := sort.Search(len(inc2), func(i int) bool { cnt.add(1); return inc2[i].First() >= want })
		for ; i < len(inc2); i++ {
			cnt.add(1)
			if inc2[i].First() != want {
				break
			}
			out = append(out, o1.Concat(inc2[i]))
			if limited(out, limit) {
				return normalize(out)
			}
		}
	}
	return normalize(out)
}

// mergeSequential exploits sortedness: for each o1, every o2 from the first
// index with first(o2) > last(o1) onward qualifies. The scan cost is
// O(n1·log n2) plus the (unavoidable) output size.
func mergeSequential(inc1, inc2 []incident.Incident, limit int, cnt *opCount) []incident.Incident {
	var out []incident.Incident
	for _, o1 := range inc1 {
		lo := o1.Last()
		i := sort.Search(len(inc2), func(i int) bool { cnt.add(1); return inc2[i].First() > lo })
		for ; i < len(inc2); i++ {
			out = append(out, o1.Concat(inc2[i]))
			if limited(out, limit) {
				return normalize(out)
			}
		}
	}
	return normalize(out)
}

// mergeChoice unions two already-normalized lists with a linear merge.
func mergeChoice(inc1, inc2 []incident.Incident, limit int, cnt *opCount) []incident.Incident {
	out := make([]incident.Incident, 0, len(inc1)+len(inc2))
	i, j := 0, 0
	for i < len(inc1) && j < len(inc2) {
		if limited(out, limit) {
			return out
		}
		cnt.add(minLen(inc1[i], inc2[j]))
		switch c := inc1[i].Compare(inc2[j]); {
		case c < 0:
			out = append(out, inc1[i])
			i++
		case c > 0:
			out = append(out, inc2[j])
			j++
		default:
			out = append(out, inc1[i])
			i++
			j++
		}
	}
	for ; i < len(inc1) && !limited(out, limit); i++ {
		out = append(out, inc1[i])
	}
	for ; j < len(inc2) && !limited(out, limit); j++ {
		out = append(out, inc2[j])
	}
	return out
}

// mergeParallel keeps the pair loop (disjointness is not monotone in the
// sort order) but skips the per-record disjointness scan whenever the two
// incidents' [first, last] ranges do not overlap, which is the common case
// on realistic logs.
func mergeParallel(inc1, inc2 []incident.Incident, limit int, cnt *opCount) []incident.Incident {
	var out []incident.Incident
	for _, o1 := range inc1 {
		for _, o2 := range inc2 {
			cnt.add(1)
			if o2.First() > o1.Last() || o1.First() > o2.Last() {
				// Ranges disjoint: union cannot overlap; concatenate cheaply.
				var u incident.Incident
				if o1.Last() < o2.First() {
					u = o1.Concat(o2)
				} else {
					u = o2.Concat(o1)
				}
				out = append(out, u)
			} else {
				cnt.add(uint64(o1.Len() + o2.Len()))
				u, ok := o1.Union(o2)
				if !ok {
					continue
				}
				out = append(out, u)
			}
			if limited(out, limit) {
				return normalize(out)
			}
		}
	}
	return normalize(out)
}

// limited reports whether the best-effort result cap has been reached.
func limited(out []incident.Incident, limit int) bool {
	return limit > 0 && len(out) >= limit
}
