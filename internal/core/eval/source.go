package eval

import "wlq/internal/wlog"

// Source is the log-access contract the evaluator runs over — the seam
// between the query algorithms (Algorithms 1–3) and the physical storage
// layout. Two implementations exist:
//
//   - *Index (this package): the row backend — per-instance []wlog.Record
//     slices plus a per-(instance, activity) map of is-lsn lists, built by
//     NewIndex. This is the access structure Algorithm 2 calls
//     LogRecordsDict.
//   - *colstore.Store: the columnar backend — interned activity symbols,
//     parallel wid/lsn/activity columns with per-instance offset ranges,
//     and a sorted posting list per activity. See docs/STORAGE.md.
//
// Both backends answer every method identically for the same log (the
// cross-backend equivalence suite in internal/colstore enforces this), so
// the choice is purely physical: throughput and memory, never answers.
//
// A Source must be immutable while an Evaluator reads it — the same
// contract EvalParallel, the result cache and the shard executor rely on.
type Source interface {
	// WIDs returns the workflow instance ids present, ascending. Callers
	// must not modify the returned slice.
	WIDs() []uint64
	// InstanceLen returns the number of records of the instance.
	InstanceLen(wid uint64) int
	// Instance returns the records of the instance in is-lsn order.
	// Callers must not modify the returned slice.
	Instance(wid uint64) []wlog.Record
	// Record returns the record of the instance with the given is-lsn;
	// ok is false when the instance or sequence number is unknown.
	Record(wid, seq uint64) (wlog.Record, bool)
	// ActivitySeqs returns the is-lsn values (ascending) of the instance's
	// records whose activity is act. Callers must not modify the result.
	ActivitySeqs(wid uint64, act string) []uint64
	// ActivityCount returns the total number of records (across all
	// instances) carrying the activity name (optimizer statistics).
	ActivityCount(act string) int
	// TotalRecords returns m = |L|.
	TotalRecords() int
	// Activities returns the distinct activity names, sorted.
	Activities() []string
}

// SymbolicSource is the optional fast path a backend with interned activity
// symbols provides. When the evaluator's Source implements it, each atom's
// activity name is resolved to its dense symbol once per plan and every
// per-instance probe thereafter is an integer-keyed posting-list lookup —
// no string hashing or comparison inside the evaluation loops.
type SymbolicSource interface {
	Source
	// ResolveActivity maps an activity name to its interned symbol; ok is
	// false when the name never occurs in the log (its incident set is
	// empty for positive atoms, the full complement for negated ones).
	ResolveActivity(name string) (sym int32, ok bool)
	// ActivitySeqsSym is ActivitySeqs keyed by symbol. sym must come from
	// ResolveActivity on the same source.
	ActivitySeqsSym(wid uint64, sym int32) []uint64
}

// The row backend satisfies the seam (the columnar backend's assertion
// lives in internal/colstore to keep the dependency one-directional).
var _ Source = (*Index)(nil)
