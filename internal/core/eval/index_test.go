package eval

import (
	"testing"

	"wlq/internal/wlog"
)

func TestIndexBasics(t *testing.T) {
	l := buildLog(t, []string{"A", "B", "A"}, []string{"B"})
	ix := NewIndex(l)

	wids := ix.WIDs()
	if len(wids) != 2 || wids[0] != 1 || wids[1] != 2 {
		t.Fatalf("WIDs = %v", wids)
	}
	if ix.TotalRecords() != l.Len() {
		t.Errorf("TotalRecords = %d, want %d", ix.TotalRecords(), l.Len())
	}
	if got := ix.InstanceLen(1); got != 4 { // START + 3 activities
		t.Errorf("InstanceLen(1) = %d, want 4", got)
	}
	if got := ix.InstanceLen(99); got != 0 {
		t.Errorf("InstanceLen(99) = %d, want 0", got)
	}

	seqs := ix.ActivitySeqs(1, "A")
	if len(seqs) != 2 || seqs[0] != 2 || seqs[1] != 4 {
		t.Errorf("ActivitySeqs(1, A) = %v", seqs)
	}
	if got := ix.ActivitySeqs(99, "A"); got != nil {
		t.Errorf("ActivitySeqs on unknown wid = %v", got)
	}

	if got := ix.ActivityCount("A"); got != 2 {
		t.Errorf("ActivityCount(A) = %d", got)
	}
	if got := ix.ActivityCount(wlog.ActivityStart); got != 2 {
		t.Errorf("ActivityCount(START) = %d", got)
	}
	if got := ix.ActivityCount("nope"); got != 0 {
		t.Errorf("ActivityCount(nope) = %d", got)
	}

	rec, ok := ix.Record(1, 2)
	if !ok || rec.Activity != "A" {
		t.Errorf("Record(1,2) = %v, %v", rec, ok)
	}
	if _, ok := ix.Record(1, 0); ok {
		t.Error("Record(1,0) should miss")
	}
	if _, ok := ix.Record(1, 99); ok {
		t.Error("Record(1,99) should miss")
	}
	if _, ok := ix.Record(42, 1); ok {
		t.Error("Record on unknown wid should miss")
	}

	inst := ix.Instance(2)
	if len(inst) != 2 || !inst[0].IsStart() || inst[1].Activity != "B" {
		t.Errorf("Instance(2) = %v", inst)
	}

	acts := ix.Activities()
	want := []string{"A", "B", wlog.ActivityStart}
	if len(acts) != len(want) {
		t.Fatalf("Activities = %v", acts)
	}
	for i := range want {
		if acts[i] != want[i] {
			t.Errorf("Activities = %v, want %v", acts, want)
		}
	}
}
