package eval

import (
	"sync/atomic"

	"wlq/internal/core/pattern"
	"wlq/internal/resilience"
)

// Per-operator cost accounting. Lemma 1 bounds the join work of each
// operator node by the sizes of its operand incident sets (n1, n2) and the
// atom counts of its operand patterns (k1, k2):
//
//	⊙, ≺ : O(n1·n2)
//	⊗    : O(n1·n2·min(k1,k2))
//	⊕    : O(n1·n2·(k1+k2))
//
// A Meter attributes the comparisons the evaluator actually performs to the
// nodes of one pattern plan, alongside the bound predicted from the actual
// per-instance operand sizes — so a metered query yields a measured-vs-
// predicted cost table (surfaced by internal/obs and the query service).
//
// Counters are atomic: the meter is shared by the workers of a parallel
// evaluation without locks. The overhead per operator application is one
// map lookup and a handful of atomic adds, negligible next to the join.

// Meter collects per-node evaluation metrics for one plan. Build it with
// NewMeter over the exact pattern tree passed to the evaluator (nodes are
// keyed by identity) and hand it to the evaluator via Options.Meter. A nil
// *Meter is valid and disables metering.
type Meter struct {
	nodes map[pattern.Node]*NodeMetrics
	order []pattern.Node // pre-order, for stable reporting
}

// NewMeter allocates metrics storage for every node of the plan.
func NewMeter(p pattern.Node) *Meter {
	m := &Meter{nodes: make(map[pattern.Node]*NodeMetrics, pattern.Size(p))}
	var walk func(n pattern.Node)
	walk = func(n pattern.Node) {
		nm := &NodeMetrics{}
		if b, ok := n.(*pattern.Binary); ok {
			nm.op = b.Op
			nm.k1 = len(pattern.Atoms(b.Left))
			nm.k2 = len(pattern.Atoms(b.Right))
		} else {
			nm.atom = true
		}
		m.nodes[n] = nm
		m.order = append(m.order, n)
		if b, ok := n.(*pattern.Binary); ok {
			walk(b.Left)
			walk(b.Right)
		}
	}
	walk(p)
	return m
}

// node returns the metrics slot for a plan node, or nil when the meter is
// nil or the node is not part of the metered plan.
func (m *Meter) node(p pattern.Node) *NodeMetrics {
	if m == nil {
		return nil
	}
	return m.nodes[p]
}

// NodeMetrics accumulates the measured work of one plan node across all
// instance evaluations. All counters are atomic; read them via Snapshot.
type NodeMetrics struct {
	op   pattern.Op // operator; zero for atoms
	atom bool
	k1   int // Lemma 1 k1: atoms in the left operand pattern
	k2   int // Lemma 1 k2: atoms in the right operand pattern

	evals       atomic.Uint64 // instance evaluations performed
	memoHits    atomic.Uint64 // evaluations answered from the sub-pattern memo
	leftInputs  atomic.Uint64 // Σ n1 over instance evaluations
	rightInputs atomic.Uint64 // Σ n2 over instance evaluations
	pairs       atomic.Uint64 // Σ n1·n2 over instance evaluations
	comparisons atomic.Uint64 // measured record-level comparisons
	outputs     atomic.Uint64 // incidents produced (post-normalize)
	predicted   atomic.Uint64 // Σ Lemma 1 bound, from the actual n1, n2
}

// predictedBound is the Lemma 1 join bound for one instance evaluation with
// operand sizes n1, n2 and static atom counts k1, k2.
func predictedBound(op pattern.Op, n1, n2 uint64, k1, k2 int) uint64 {
	switch op {
	case pattern.OpConsecutive, pattern.OpSequential:
		return n1 * n2
	case pattern.OpChoice:
		k := k1
		if k2 < k1 {
			k = k2
		}
		return n1 * n2 * uint64(k)
	case pattern.OpParallel:
		return n1 * n2 * uint64(k1+k2)
	default:
		return 0
	}
}

// recordOp accumulates one operator application over one instance.
func (nm *NodeMetrics) recordOp(n1, n2 int, comparisons uint64, outputs int) {
	nm.evals.Add(1)
	nm.leftInputs.Add(uint64(n1))
	nm.rightInputs.Add(uint64(n2))
	nm.pairs.Add(uint64(n1) * uint64(n2))
	nm.comparisons.Add(comparisons)
	nm.outputs.Add(uint64(outputs))
	nm.predicted.Add(predictedBound(nm.op, uint64(n1), uint64(n2), nm.k1, nm.k2))
}

// recordAtom accumulates one atomic lookup over one instance: candidates is
// the number of index positions examined (the linear materialization work,
// which is also the predicted bound for an atom), outputs the matches kept
// after guards.
func (nm *NodeMetrics) recordAtom(candidates, outputs int) {
	nm.evals.Add(1)
	nm.comparisons.Add(uint64(candidates))
	nm.outputs.Add(uint64(outputs))
	nm.predicted.Add(uint64(candidates))
}

// recordMemoHit notes an evaluation answered from the sub-pattern memo
// (no join work was performed; no other counter moves).
func (nm *NodeMetrics) recordMemoHit() { nm.memoHits.Add(1) }

// NodeStats is a point-in-time copy of one node's metrics.
type NodeStats struct {
	// Node is the plan node the stats belong to.
	Node pattern.Node
	// Atom reports an atomic node; Op is meaningful only when !Atom.
	Atom bool
	Op   pattern.Op
	// K1, K2 are the Lemma 1 atom counts of the operand patterns.
	K1, K2 int
	// Evals counts instance evaluations; MemoHits those answered from the
	// sub-pattern memo instead (merge strategy only).
	Evals, MemoHits uint64
	// LeftInputs, RightInputs are Σ n1 and Σ n2 across instance evaluations.
	LeftInputs, RightInputs uint64
	// Pairs is Σ n1·n2 across instance evaluations — the denominator of the
	// node's observed selectivity (Outputs / Pairs). Kept separately from
	// LeftInputs·RightInputs, which would over-count: the product of sums is
	// not the sum of products.
	Pairs uint64
	// Comparisons is the measured record-level comparison work; Outputs the
	// incidents produced.
	Comparisons, Outputs uint64
	// Predicted is the summed Lemma 1 bound computed from the actual
	// per-instance operand sizes. Under StrategyNaive the measured
	// comparisons never exceed it; merge joins usually do far less work but
	// carry no per-instance guarantee on degenerate (1–2 element) inputs,
	// where a binary-search probe can cost more than the linear bound.
	Predicted uint64
}

// Snapshot returns the per-node stats in pre-order of the metered plan.
func (m *Meter) Snapshot() []NodeStats {
	if m == nil {
		return nil
	}
	out := make([]NodeStats, 0, len(m.order))
	for _, n := range m.order {
		nm := m.nodes[n]
		out = append(out, NodeStats{
			Node:        n,
			Atom:        nm.atom,
			Op:          nm.op,
			K1:          nm.k1,
			K2:          nm.k2,
			Evals:       nm.evals.Load(),
			MemoHits:    nm.memoHits.Load(),
			LeftInputs:  nm.leftInputs.Load(),
			RightInputs: nm.rightInputs.Load(),
			Pairs:       nm.pairs.Load(),
			Comparisons: nm.comparisons.Load(),
			Outputs:     nm.outputs.Load(),
			Predicted:   nm.predicted.Load(),
		})
	}
	return out
}

// MeterSink consumes the per-node stats of a finished metered evaluation.
// internal/stats implements it to fold measured operator selectivities and
// atom match rates into the per-log statistics registry; the seam lives here
// so eval does not import the registry.
type MeterSink interface {
	ObserveMeter(stats []NodeStats)
}

// Flush hands the meter's snapshot to sink. Both a nil meter and a nil sink
// are valid no-ops, so callers can flush unconditionally on the success path
// without caring whether metering or statistics collection is enabled.
// Callers are responsible for flushing only evaluations whose results are
// complete — partial, budget-tripped, or panicked runs would poison the
// observed selectivities with truncated outputs.
func (m *Meter) Flush(sink MeterSink) {
	if m == nil || sink == nil {
		return
	}
	sink.ObserveMeter(m.Snapshot())
}

// TotalComparisons sums measured comparisons over all operator nodes.
func (m *Meter) TotalComparisons() uint64 {
	var total uint64
	for _, st := range m.Snapshot() {
		if !st.Atom {
			total += st.Comparisons
		}
	}
	return total
}

// opCount tallies the comparison work of one operator application; the ops
// functions increment it and the evaluator folds it into the meter. A nil
// receiver is valid and makes add a no-op, so unmetered evaluation pays
// only a predictable branch per comparison.
//
// When bs is non-nil the tally also drives budget enforcement: every
// resilience.CheckInterval comparisons the local count is flushed into the
// shared budget state, where the comparison and wall-time limits are
// checked (and may abort the join by panicking; see budget.go). The flush
// cadence keeps the hot loop free of atomics.
type opCount struct {
	comparisons uint64
	bs          *budgetState
	flushed     uint64 // comparisons already folded into bs
}

func (c *opCount) add(n uint64) {
	if c == nil {
		return
	}
	c.comparisons += n
	if c.bs != nil && c.comparisons-c.flushed >= resilience.CheckInterval {
		c.flushBudget()
	}
}

// flushBudget folds the not-yet-flushed comparisons into the shared budget
// state. Called from add at the check interval and once per operator
// application for the remainder.
func (c *opCount) flushBudget() {
	if c == nil || c.bs == nil || c.comparisons == c.flushed {
		return
	}
	delta := c.comparisons - c.flushed
	c.flushed = c.comparisons
	c.bs.addComparisons(delta)
}
