package eval

import (
	"sort"

	"wlq/internal/core/pattern"
	"wlq/internal/predicate"
)

// Counting without materialization. |incL(p)| for a pattern whose operands
// are atomic can be computed arithmetically from the per-activity position
// lists, never building a single union — O(n log n) instead of O(output).
// Count uses this fast path when it applies and falls back to full
// evaluation otherwise; the two are cross-checked by property tests.

// Count returns |incL(p)|.
func (e *Evaluator) Count(p pattern.Node) int {
	if b, ok := p.(*pattern.Binary); ok {
		la, lok := b.Left.(*pattern.Atom)
		ra, rok := b.Right.(*pattern.Atom)
		if lok && rok && e.opts.Limit == 0 {
			total := 0
			for _, wid := range e.src.WIDs() {
				total += e.countAtomicPair(b.Op, la, ra, wid)
			}
			return total
		}
	}
	total := 0
	for _, wid := range e.src.WIDs() {
		total += len(e.evalWID(p, wid, nil))
	}
	return total
}

// atomSeqs returns the sorted is-lsn list matching the atom in the
// instance (guards applied).
func (e *Evaluator) atomSeqs(a *pattern.Atom, wid uint64) []uint64 {
	if !a.Negated && len(a.Guards) == 0 {
		return e.atomPostings(a, wid)
	}
	var out []uint64
	for _, rec := range e.src.Instance(wid) {
		match := rec.Activity == a.Activity
		if a.Negated {
			match = !match
		}
		if match && predicate.MatchAll(a.Guards, rec) {
			out = append(out, rec.Seq)
		}
	}
	return out
}

// countAtomicPair computes |incL(a1 op a2)| within one instance from the
// two position lists.
func (e *Evaluator) countAtomicPair(op pattern.Op, a1, a2 *pattern.Atom, wid uint64) int {
	s1 := e.atomSeqs(a1, wid)
	s2 := e.atomSeqs(a2, wid)
	switch op {
	case pattern.OpConsecutive:
		// Pairs with s+1 present in s2.
		count := 0
		for _, s := range s1 {
			i := sort.Search(len(s2), func(i int) bool { return s2[i] >= s+1 })
			if i < len(s2) && s2[i] == s+1 {
				count++
			}
		}
		return count
	case pattern.OpSequential:
		// Σ over s1 of |{s2 > s}|.
		count := 0
		for _, s := range s1 {
			i := sort.Search(len(s2), func(i int) bool { return s2[i] > s })
			count += len(s2) - i
		}
		return count
	case pattern.OpChoice:
		// |S1 ∪ S2| over singletons: union of the position sets.
		return len(unionCount(s1, s2))
	case pattern.OpParallel:
		// Unordered pairs {x, y}, x ≠ y, x matching a1 and y matching a2.
		// Ordered qualifying pairs: n1·n2 minus the |I| same-record pairs
		// (I = positions matching both atoms). Each unordered pair with
		// BOTH elements in I arises from two ordered pairs; subtract the
		// C(|I|, 2) duplicates.
		inter := len(intersectCount(s1, s2))
		ordered := len(s1)*len(s2) - inter
		return ordered - inter*(inter-1)/2
	default:
		return 0
	}
}

// unionCount merges two sorted lists, returning the union.
func unionCount(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// intersectCount intersects two sorted lists.
func intersectCount(a, b []uint64) []uint64 {
	var out []uint64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
