package eval

import (
	"math/rand"
	"testing"

	"wlq/internal/core/pattern"
	"wlq/internal/gen"
	"wlq/internal/wlog"
)

// TestCountFastPathMatchesEval: for every atomic-pair shape (the fast
// path), Count must equal Eval().Len() on randomized logs — including the
// tricky parallel dedup case where both atoms match shared records.
func TestCountFastPathMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	alphabet := []string{"A", "B"}
	queries := []string{
		"A . B", "A . A", "B . A",
		"A -> B", "A -> A",
		"A | B", "A | A", "A | !B", "!A | !B",
		"A & B", "A & A", "!A & !B", "!A & A", "!A & !A",
	}
	for trial := 0; trial < 80; trial++ {
		var b wlog.Builder
		numInst := 1 + rng.Intn(3)
		wids := make([]uint64, numInst)
		for i := range wids {
			wids[i] = b.Start()
		}
		for step := 0; step < 3+rng.Intn(9); step++ {
			wid := wids[rng.Intn(numInst)]
			if err := b.Emit(wid, alphabet[rng.Intn(2)], nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		l := b.MustBuild()
		e := New(NewIndex(l), Options{})
		for _, q := range queries {
			p := pattern.MustParse(q)
			fast := e.Count(p)
			slow := e.Eval(p).Len()
			if fast != slow {
				t.Fatalf("trial %d: Count(%s) = %d, Eval = %d on\n%s", trial, q, fast, slow, l)
			}
		}
	}
}

func TestCountGuardedAtoms(t *testing.T) {
	var b wlog.Builder
	w := b.Start()
	for i, amount := range []int{100, 6000, 7000, 50} {
		_ = i
		if err := b.Emit(w, "Pay", nil, wlog.Attrs("amount", amount)); err != nil {
			t.Fatal(err)
		}
	}
	l := b.MustBuild()
	e := New(NewIndex(l), Options{})
	p := pattern.MustParse("Pay[amount>5000] -> Pay[amount>5000]")
	if got := e.Count(p); got != 1 { // (6000, 7000)
		t.Errorf("guarded fast count = %d, want 1", got)
	}
	if got := e.Eval(p).Len(); got != 1 {
		t.Errorf("guarded eval = %d, want 1", got)
	}
}

func TestCountFallsBackForComposites(t *testing.T) {
	l := buildLog(t, []string{"A", "B", "A", "B"})
	e := New(NewIndex(l), Options{})
	p := pattern.MustParse("(A . B) -> (A . B)")
	if got := e.Count(p); got != e.Eval(p).Len() {
		t.Errorf("composite Count = %d, Eval = %d", got, e.Eval(p).Len())
	}
}

func TestCountRespectsLimitFallback(t *testing.T) {
	// With a Limit, Count must reflect the capped evaluation, not the
	// arithmetic total.
	acts := make([]string, 30)
	for i := range acts {
		acts[i] = "A"
	}
	l := buildLog(t, acts)
	e := New(NewIndex(l), Options{Limit: 5})
	p := pattern.MustParse("A -> A")
	if got := e.Count(p); got > 5 {
		t.Errorf("limited Count = %d, want ≤ 5", got)
	}
}

func BenchmarkCountFastVsMaterialized(b *testing.B) {
	l := gen.Blocks("A", 2000, "B", 2000)
	ix := NewIndex(l)
	e := New(ix, Options{})
	p := pattern.MustParse("A -> B") // 4M incidents if materialized
	b.Run("fast-count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if e.Count(p) != 4000000 {
				b.Fatal("wrong count")
			}
		}
	})
}
