package eval

import (
	"testing"

	"wlq/internal/core/pattern"
)

func TestMeterNaiveWithinLemma1Bound(t *testing.T) {
	l := buildLog(t,
		[]string{"A", "B", "A", "C", "B", "D"},
		[]string{"B", "A", "C", "A", "D", "B"},
		[]string{"A", "A", "B", "B", "C", "D"},
	)
	ix := NewIndex(l)
	queries := []string{
		"A . B",
		"A -> B",
		"A | B",
		"A & B",
		"(A -> B) | (C & D)",
		"(A . B) -> (C | D)",
		"(A & B) & (C -> D)",
	}
	for _, q := range queries {
		p := pattern.MustParse(q)
		m := NewMeter(p)
		New(ix, Options{Strategy: StrategyNaive, Meter: m}).Eval(p)
		for _, st := range m.Snapshot() {
			if st.Atom {
				continue
			}
			if st.Evals == 0 {
				t.Errorf("%q node %v: never evaluated", q, st.Node)
			}
			if st.Comparisons > st.Predicted {
				t.Errorf("%q node %v (%s): measured %d comparisons > Lemma 1 bound %d",
					q, st.Node, st.Op.Name(), st.Comparisons, st.Predicted)
			}
		}
	}
}

// TestMeterNaiveExactPairCount pins the ⊙/≺ counting unit: the naive join
// examines every (left, right) pair exactly once, so with nonempty operands
// the measured comparisons equal Σ n1·n2 — the bound is tight, not just an
// upper limit.
func TestMeterNaiveExactPairCount(t *testing.T) {
	l := buildLog(t, []string{"A", "B", "A", "B"}, []string{"A", "A", "B"})
	ix := NewIndex(l)
	p := pattern.MustParse("A -> B")
	m := NewMeter(p)
	New(ix, Options{Strategy: StrategyNaive, Meter: m}).Eval(p)
	for _, st := range m.Snapshot() {
		if st.Atom {
			continue
		}
		want := uint64(2*2 + 2*1) // instance 1: n1=2,n2=2; instance 2: n1=2,n2=1
		if st.Comparisons != want {
			t.Errorf("A -> B comparisons = %d, want %d", st.Comparisons, want)
		}
		if st.Predicted != want {
			t.Errorf("A -> B predicted = %d, want %d", st.Predicted, want)
		}
		if st.K1 != 1 || st.K2 != 1 {
			t.Errorf("k1,k2 = %d,%d, want 1,1", st.K1, st.K2)
		}
	}
}

// TestMeterMemoHits verifies repeated sub-patterns are answered from the
// memo under the merge strategy and attributed as memo hits, not work.
func TestMeterMemoHits(t *testing.T) {
	l := buildLog(t, []string{"A", "B", "C"}, []string{"A", "C", "B"})
	ix := NewIndex(l)
	p := pattern.MustParse("(A -> B) | (A -> B)")
	m := NewMeter(p)
	New(ix, Options{Strategy: StrategyMerge, Meter: m}).Eval(p)
	var hits uint64
	for _, st := range m.Snapshot() {
		hits += st.MemoHits
	}
	if hits == 0 {
		t.Error("no memo hits recorded for a duplicated sub-pattern")
	}
}

// TestMeterParallelMatchesSerial: the meter is shared by parallel workers;
// totals must agree with a serial evaluation of the same plan.
func TestMeterParallelMatchesSerial(t *testing.T) {
	l := buildLog(t,
		[]string{"A", "B", "C", "D"},
		[]string{"B", "A", "D", "C"},
		[]string{"A", "C", "B", "D"},
		[]string{"D", "C", "B", "A"},
	)
	ix := NewIndex(l)
	p := pattern.MustParse("(A -> B) & (C | D)")

	serial := NewMeter(p)
	New(ix, Options{Strategy: StrategyNaive, Meter: serial}).Eval(p)

	par := NewMeter(p)
	New(ix, Options{Strategy: StrategyNaive, Meter: par}).EvalParallel(p, 4)

	ss, ps := serial.Snapshot(), par.Snapshot()
	if len(ss) != len(ps) {
		t.Fatalf("snapshot sizes differ: %d vs %d", len(ss), len(ps))
	}
	for i := range ss {
		if ss[i].Comparisons != ps[i].Comparisons || ss[i].Outputs != ps[i].Outputs ||
			ss[i].Predicted != ps[i].Predicted {
			t.Errorf("node %v: serial (cmp=%d out=%d pred=%d) != parallel (cmp=%d out=%d pred=%d)",
				ss[i].Node, ss[i].Comparisons, ss[i].Outputs, ss[i].Predicted,
				ps[i].Comparisons, ps[i].Outputs, ps[i].Predicted)
		}
	}
}

// TestMeterNilSafe: a nil meter must be inert, and a meter built over a
// different tree must not observe anything (nodes are keyed by identity).
func TestMeterNilSafe(t *testing.T) {
	l := buildLog(t, []string{"A", "B"})
	ix := NewIndex(l)
	p := pattern.MustParse("A -> B")

	var nilMeter *Meter
	if nilMeter.Snapshot() != nil {
		t.Error("nil meter snapshot not nil")
	}
	New(ix, Options{Strategy: StrategyMerge, Meter: nilMeter}).Eval(p)

	other := NewMeter(pattern.MustParse("A -> B")) // equal shape, different identity
	New(ix, Options{Strategy: StrategyMerge, Meter: other}).Eval(p)
	if got := other.TotalComparisons(); got != 0 {
		t.Errorf("foreign meter recorded %d comparisons, want 0", got)
	}
}
