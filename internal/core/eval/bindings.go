package eval

import (
	"wlq/internal/core/incident"
	"wlq/internal/core/pattern"
)

// Bindings explains an incident: which atomic pattern matched which record.
// It returns, for each atom of p in left-to-right order, the is-lsn of the
// record it matched — atoms on choice branches the incident did not take
// are absent from the map. ok is false when o is not an incident of p.
//
// Like Verify, Bindings searches Definition 4 decompositions directly (a
// witnessing decomposition is found, not all of them); when several
// decompositions exist — e.g. t ⊕ t over two t-records — one is returned
// deterministically (the search prefers earlier records on left operands).
func (e *Evaluator) Bindings(p pattern.Node, o incident.Incident) (map[int]uint64, bool) {
	return e.bind(p, o.WID(), o.Seqs(), 0)
}

// bind returns the atom → seq assignment for one witnessing decomposition,
// or nil, false. base is the index of p's first atom in the whole pattern's
// left-to-right atom order. Each call returns a fresh map so failed search
// branches leave no residue.
func (e *Evaluator) bind(p pattern.Node, wid uint64, seqs []uint64, base int) (map[int]uint64, bool) {
	switch p := p.(type) {
	case *pattern.Atom:
		if len(seqs) != 1 || !e.verify(p, wid, seqs) {
			return nil, false
		}
		return map[int]uint64{base: seqs[0]}, true
	case *pattern.Binary:
		leftAtoms := len(pattern.Atoms(p.Left))
		switch p.Op {
		case pattern.OpChoice:
			if m, ok := e.bind(p.Left, wid, seqs, base); ok {
				return m, true
			}
			return e.bind(p.Right, wid, seqs, base+leftAtoms)
		case pattern.OpConsecutive, pattern.OpSequential:
			for cut := 1; cut < len(seqs); cut++ {
				left, right := seqs[:cut], seqs[cut:]
				gapOK := left[cut-1] < right[0]
				if p.Op == pattern.OpConsecutive {
					gapOK = left[cut-1]+1 == right[0]
				}
				if !gapOK {
					continue
				}
				lm, ok := e.bind(p.Left, wid, left, base)
				if !ok {
					continue
				}
				rm, ok := e.bind(p.Right, wid, right, base+leftAtoms)
				if !ok {
					continue
				}
				return merged(lm, rm), true
			}
			return nil, false
		case pattern.OpParallel:
			rightSizes := possibleSizes(p.Right)
			for need := range possibleSizes(p.Left) {
				if need < 1 || need >= len(seqs) {
					continue
				}
				if _, ok := rightSizes[len(seqs)-need]; !ok {
					continue
				}
				if m, ok := e.bindParallel(p, wid, seqs, need, nil, 0, base, leftAtoms); ok {
					return m, true
				}
			}
			return nil, false
		default:
			return nil, false
		}
	default:
		return nil, false
	}
}

func (e *Evaluator) bindParallel(p *pattern.Binary, wid uint64, seqs []uint64, need int, chosen []uint64, from, base, leftAtoms int) (map[int]uint64, bool) {
	if len(chosen) == need {
		rest := make([]uint64, 0, len(seqs)-need)
		ci := 0
		for _, s := range seqs {
			if ci < len(chosen) && chosen[ci] == s {
				ci++
				continue
			}
			rest = append(rest, s)
		}
		lm, ok := e.bind(p.Left, wid, chosen, base)
		if !ok {
			return nil, false
		}
		rm, ok := e.bind(p.Right, wid, rest, base+leftAtoms)
		if !ok {
			return nil, false
		}
		return merged(lm, rm), true
	}
	for i := from; i <= len(seqs)-(need-len(chosen)); i++ {
		if m, ok := e.bindParallel(p, wid, seqs, need, append(chosen, seqs[i]), i+1, base, leftAtoms); ok {
			return m, true
		}
	}
	return nil, false
}

func merged(a, b map[int]uint64) map[int]uint64 {
	out := make(map[int]uint64, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}
