package eval

import (
	"math/rand"
	"testing"

	"wlq/internal/core/incident"
	"wlq/internal/core/pattern"
	"wlq/internal/wlog"
)

func TestBindingsSimple(t *testing.T) {
	l := buildLog(t, []string{"A", "B", "A", "B"}) // START=1 A=2 B=3 A=4 B=5
	e := New(NewIndex(l), Options{})

	tests := []struct {
		query string
		inc   incident.Incident
		want  map[int]uint64
	}{
		{"A", incident.New(1, 2), map[int]uint64{0: 2}},
		{"A -> B", incident.New(1, 2, 5), map[int]uint64{0: 2, 1: 5}},
		{"A . B", incident.New(1, 4, 5), map[int]uint64{0: 4, 1: 5}},
		// Parallel shuffle: atom 0 (A) matched the later record.
		{"A & B", incident.New(1, 3, 4), map[int]uint64{0: 4, 1: 3}},
		// Choice: only the taken branch's atom binds.
		{"A | Z", incident.New(1, 2), map[int]uint64{0: 2}},
		{"Z | A", incident.New(1, 2), map[int]uint64{1: 2}},
		// Nested: (A -> B) -> (A -> B).
		{"(A -> B) -> (A -> B)", incident.New(1, 2, 3, 4, 5),
			map[int]uint64{0: 2, 1: 3, 2: 4, 3: 5}},
	}
	for _, tt := range tests {
		t.Run(tt.query+"/"+tt.inc.String(), func(t *testing.T) {
			p := pattern.MustParse(tt.query)
			got, ok := e.Bindings(p, tt.inc)
			if !ok {
				t.Fatalf("Bindings failed for a valid incident")
			}
			if len(got) != len(tt.want) {
				t.Fatalf("bindings = %v, want %v", got, tt.want)
			}
			for idx, seq := range tt.want {
				if got[idx] != seq {
					t.Errorf("atom %d bound to %d, want %d", idx, got[idx], seq)
				}
			}
		})
	}

	// Non-incidents yield no bindings.
	if _, ok := e.Bindings(pattern.MustParse("B -> A"), incident.New(1, 2, 3)); ok {
		t.Error("Bindings succeeded for a non-incident")
	}
}

func TestBindingsBacktrackingAcrossFailedBranches(t *testing.T) {
	// The left cut A(2) fails the right side; the search must retry with
	// the later A(4) without residue from the failed attempt.
	l := buildLog(t, []string{"A", "C", "A", "B"}) // A=2 C=3 A=4 B=5
	e := New(NewIndex(l), Options{})
	p := pattern.MustParse("A . B")
	got, ok := e.Bindings(p, incident.New(1, 4, 5))
	if !ok || got[0] != 4 || got[1] != 5 {
		t.Errorf("bindings = %v, %v", got, ok)
	}
}

// TestBindingsAgreeWithVerify: on random patterns and incidents from the
// evaluator, Bindings succeeds exactly when Verify does, and the bound
// records reassemble the incident (for patterns where every taken branch's
// atoms are bound, the bound seqs must be exactly the incident's seqs).
func TestBindingsAgreeWithVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	alphabet := []string{"A", "B", "C"}
	for trial := 0; trial < 60; trial++ {
		var b wlog.Builder
		wid := b.Start()
		for step := 0; step < 4+rng.Intn(6); step++ {
			if err := b.Emit(wid, alphabet[rng.Intn(len(alphabet))], nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		l := b.MustBuild()
		e := New(NewIndex(l), Options{})
		p := randomPattern(rng, 3, alphabet)
		for _, inc := range e.Eval(p).Incidents() {
			bindings, ok := e.Bindings(p, inc)
			if !ok {
				t.Fatalf("trial %d: Bindings failed for %s of %s", trial, inc, p)
			}
			// The bound seqs must form exactly the incident's record set.
			seen := map[uint64]int{}
			for _, seq := range bindings {
				seen[seq]++
			}
			if len(seen) != inc.Len() {
				t.Fatalf("trial %d: bindings %v cover %d records, incident has %d (%s of %s)",
					trial, bindings, len(seen), inc.Len(), inc, p)
			}
			for seq := range seen {
				if !inc.Contains(seq) {
					t.Fatalf("trial %d: binding to %d outside incident %s", trial, seq, inc)
				}
			}
			// Every bound atom must individually match its record.
			atoms := pattern.Atoms(p)
			for idx, seq := range bindings {
				rec, ok := e.Source().Record(inc.WID(), seq)
				if !ok {
					t.Fatalf("trial %d: bound record missing", trial)
				}
				a := atoms[idx]
				matches := rec.Activity == a.Activity
				if a.Negated {
					matches = !matches
				}
				if !matches {
					t.Fatalf("trial %d: atom %s bound to %s record", trial, a, rec.Activity)
				}
			}
		}
	}
}
