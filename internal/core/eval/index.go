// Package eval implements incident-pattern query evaluation: the operator
// algorithms of Algorithm 1, the per-instance record index and post-order
// incident-tree evaluation of Algorithms 2–3, plus merge-based variants of
// the operator joins that exploit the sorted order the paper notes but never
// uses (Section 3.1).
package eval

import (
	"sort"

	"wlq/internal/wlog"
)

// Index is the access structure Algorithm 2 calls LogRecordsDict: per
// workflow instance, the records in is-lsn order, plus a per-(instance,
// activity) list of is-lsn values so atomic patterns are answered without
// scanning (the "index structure for each workflow id and activity" of
// Section 3.2). It also keeps global activity frequencies for the
// cost-based optimizer.
//
// An Index is safe for concurrent readers; Append must not run concurrently
// with reads (internal/stream serializes ingestion).
type Index struct {
	wids     []uint64
	inst     map[uint64][]wlog.Record
	actSeqs  map[uint64]map[string][]uint64
	actCount map[string]int
	total    int
}

// NewEmptyIndex creates an index with no records, for incremental use
// via Append.
func NewEmptyIndex() *Index {
	return &Index{
		inst:     make(map[uint64][]wlog.Record),
		actSeqs:  make(map[uint64]map[string][]uint64),
		actCount: make(map[string]int),
	}
}

// NewIndex builds the index in one pass over the log.
func NewIndex(l *wlog.Log) *Index {
	ix := NewEmptyIndex()
	for i := 0; i < l.Len(); i++ {
		r := l.Record(i)
		ix.append(r)
	}
	ix.sortAll()
	return ix
}

// append adds a record without maintaining sort invariants (bulk load).
func (ix *Index) append(r wlog.Record) {
	if len(ix.inst[r.WID]) == 0 {
		ix.wids = append(ix.wids, r.WID)
	}
	ix.inst[r.WID] = append(ix.inst[r.WID], r)
	byAct := ix.actSeqs[r.WID]
	if byAct == nil {
		byAct = make(map[string][]uint64)
		ix.actSeqs[r.WID] = byAct
	}
	byAct[r.Activity] = append(byAct[r.Activity], r.Seq)
	ix.actCount[r.Activity]++
	ix.total++
}

// sortAll establishes the order invariants after bulk loading.
func (ix *Index) sortAll() {
	sort.Slice(ix.wids, func(i, j int) bool { return ix.wids[i] < ix.wids[j] })
	for _, recs := range ix.inst {
		sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	}
	for _, byAct := range ix.actSeqs {
		for _, seqs := range byAct {
			sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		}
	}
}

// Append adds one record incrementally, maintaining all order invariants.
// Records of one instance must arrive in ascending is-lsn order (the log
// discipline of Definition 2); instance ids may arrive in any order.
func (ix *Index) Append(r wlog.Record) {
	ix.append(r)
	// A new wid may break the sorted wid list; restore by insertion (logs
	// usually open instances in ascending wid order, making this O(1)).
	for i := len(ix.wids) - 1; i > 0 && ix.wids[i-1] > ix.wids[i]; i-- {
		ix.wids[i-1], ix.wids[i] = ix.wids[i], ix.wids[i-1]
	}
}

// WIDs returns the workflow instance ids present, in ascending order.
// Callers must not modify the returned slice.
func (ix *Index) WIDs() []uint64 { return ix.wids }

// InstanceLen returns the number of records of the instance.
func (ix *Index) InstanceLen(wid uint64) int { return len(ix.inst[wid]) }

// Record returns the record of the instance with the given is-lsn.
// ok is false when the instance or sequence number is unknown.
func (ix *Index) Record(wid, seq uint64) (wlog.Record, bool) {
	recs := ix.inst[wid]
	if seq == 0 || seq > uint64(len(recs)) {
		return wlog.Record{}, false
	}
	// Valid logs have dense per-instance is-lsn starting at 1.
	if r := recs[seq-1]; r.Seq == seq {
		return r, true
	}
	// Fallback for indexes built over unchecked logs.
	i := sort.Search(len(recs), func(i int) bool { return recs[i].Seq >= seq })
	if i < len(recs) && recs[i].Seq == seq {
		return recs[i], true
	}
	return wlog.Record{}, false
}

// Instance returns the records of the instance in is-lsn order. Callers
// must not modify the returned slice.
func (ix *Index) Instance(wid uint64) []wlog.Record { return ix.inst[wid] }

// ActivitySeqs returns the is-lsn values (ascending) of the instance's
// records whose activity is act. Callers must not modify the result.
func (ix *Index) ActivitySeqs(wid uint64, act string) []uint64 {
	byAct := ix.actSeqs[wid]
	if byAct == nil {
		return nil
	}
	return byAct[act]
}

// ActivityCount returns the total number of records (across all instances)
// carrying the activity name. Used by the optimizer's cost model.
func (ix *Index) ActivityCount(act string) int { return ix.actCount[act] }

// TotalRecords returns m = |L|.
func (ix *Index) TotalRecords() int { return ix.total }

// Activities returns the distinct activity names, sorted.
func (ix *Index) Activities() []string {
	names := make([]string, 0, len(ix.actCount))
	for name := range ix.actCount {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
