package pattern

import (
	"math/rand"
	"testing"
)

func TestCanonicalKeyACInvariance(t *testing.T) {
	// Each group lists queries equal modulo associativity (Theorem 2) and
	// commutativity (Theorem 3); every member must share one key, and keys
	// must differ across groups.
	groups := [][]string{
		{"A | B", "B | A", "(A) | (B)"},
		{"A | B | C", "C | (A | B)", "(B | C) | A", "B | (C | A)"},
		{"A & B & C", "C & B & A", "A & (B & C)"},
		{"A -> B -> C", "(A -> B) -> C", "A -> (B -> C)"},
		{"A . B . C", "A . (B . C)"},
		{"A -> B", "A -> B"},
		{"B -> A"},
		{"A . B"},
		{"(A -> B) | (A -> C)", "(A -> C) | (A -> B)"},
		{"!A | B[x>1]", "B[x>1] | !A"},
		// Theorem 4 (⊙/≺ interchange) is deliberately NOT normalized:
		{"A . B -> C"},
		{"A -> B . C"},
	}
	seen := make(map[string]int)
	for gi, group := range groups {
		var key string
		for _, q := range group {
			p := MustParse(q)
			k := CanonicalKey(p)
			if key == "" {
				key = k
			} else if k != key {
				t.Errorf("group %d: CanonicalKey(%q) = %q, want %q", gi, q, k, key)
			}
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("groups %d and %d collide on key %q", prev, gi, key)
		}
		seen[key] = gi
	}
}

func TestCanonicalKeyRoundTrip(t *testing.T) {
	// The key is valid query syntax and a fixpoint: parsing the key and
	// re-keying yields the identical string, and the parsed pattern is
	// AC-equal to the original's canonical form.
	queries := []string{
		"A",
		"!A",
		`"two words"[balance>5000]`,
		"A | B | C & D",
		"(D | C) & B -> A",
		"SeeDoctor -> (UpdateRefer -> GetReimburse)",
		"(A -> B) | (A -> C) | (B . C)",
		"!A . B[x>1] . C | A & D",
	}
	for _, q := range queries {
		p := MustParse(q)
		key := CanonicalKey(p)
		back, err := Parse(key)
		if err != nil {
			t.Fatalf("CanonicalKey(%q) = %q does not parse: %v", q, key, err)
		}
		if got := CanonicalKey(back); got != key {
			t.Errorf("key of %q is not a fixpoint: %q -> %q", q, key, got)
		}
		if !Equal(Canonical(p), back) {
			t.Errorf("parse(CanonicalKey(%q)) is not the canonical pattern", q)
		}
	}
}

func TestCanonicalDoesNotMutate(t *testing.T) {
	p := MustParse("C | B | A")
	before := p.String()
	_ = Canonical(p)
	if p.String() != before {
		t.Fatalf("Canonical mutated its input: %q -> %q", before, p.String())
	}
}

// TestCanonicalKeyRandomShuffles builds random patterns, randomly rotates
// and commutes their chains (only law-preserving edits), and checks the key
// is invariant.
func TestCanonicalKeyRandomShuffles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	names := []string{"A", "B", "C", "D", "E"}
	ops := []Op{OpConsecutive, OpSequential, OpChoice, OpParallel}
	var gen func(depth int) Node
	gen = func(depth int) Node {
		if depth <= 0 || rng.Intn(3) == 0 {
			a := &Atom{Activity: names[rng.Intn(len(names))]}
			if rng.Intn(4) == 0 {
				a.Negated = true
			}
			return a
		}
		return &Binary{
			Op:    ops[rng.Intn(len(ops))],
			Left:  gen(depth - 1),
			Right: gen(depth - 1),
		}
	}
	// shuffle applies random rotations (all ops) and swaps (commutative
	// ops) — exactly the Theorem 2/3 moves CanonicalKey must absorb.
	var shuffle func(n Node) Node
	shuffle = func(n Node) Node {
		b, ok := n.(*Binary)
		if !ok {
			return n
		}
		out := &Binary{Op: b.Op, Left: shuffle(b.Left), Right: shuffle(b.Right)}
		if out.Op.Commutative() && rng.Intn(2) == 0 {
			out.Left, out.Right = out.Right, out.Left
		}
		// Rotate (a op b) op c  <->  a op (b op c) when shapes allow.
		if l, ok := out.Left.(*Binary); ok && l.Op == out.Op && rng.Intn(2) == 0 {
			out = &Binary{Op: out.Op, Left: l.Left,
				Right: &Binary{Op: out.Op, Left: l.Right, Right: out.Right}}
		}
		return out
	}
	for i := 0; i < 200; i++ {
		p := gen(4)
		key := CanonicalKey(p)
		for j := 0; j < 3; j++ {
			q := shuffle(p)
			if got := CanonicalKey(q); got != key {
				t.Fatalf("iter %d: shuffled key %q != %q\noriginal: %s\nshuffled: %s",
					i, got, key, p, q)
			}
		}
	}
}
