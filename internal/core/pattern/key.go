package pattern

import "sort"

// Canonical rewrites p into a canonical representative of its
// syntactic-equivalence class under associativity (Theorem 2) and
// commutativity (Theorem 3): maximal chains of one operator are flattened
// and rebuilt left-deep, and the operand lists of commutative chains are
// sorted by their canonical printed form. Patterns equal under those laws
// canonicalize identically; equalities that need Theorem 4, Theorem 5 or
// Definition 4 reasoning are not normalized. The input is never mutated.
func Canonical(p Node) Node {
	b, ok := p.(*Binary)
	if !ok {
		return Clone(p)
	}
	// Flatten the maximal chain of exactly this operator (not the mixed
	// ⊙/≺ family of Theorem 4: canonical form must preserve the operator
	// sequence).
	var operands []Node
	var rec func(n Node)
	rec = func(n Node) {
		if nb, ok := n.(*Binary); ok && nb.Op == b.Op {
			rec(nb.Left)
			rec(nb.Right)
			return
		}
		operands = append(operands, Canonical(n))
	}
	rec(b)
	if b.Op.Commutative() {
		sort.SliceStable(operands, func(i, j int) bool {
			return operands[i].String() < operands[j].String()
		})
	}
	acc := operands[0]
	for _, o := range operands[1:] {
		acc = &Binary{Op: b.Op, Left: acc, Right: o}
	}
	return acc
}

// CanonicalKey returns a serialization of p suitable as a cache key:
// the textual rendering of Canonical(p). Two patterns that are equal
// modulo associativity and commutativity produce identical keys, so a
// result cache keyed on CanonicalKey serves `B | A` from the entry
// populated by `A | B`. The key is itself valid query syntax: parsing it
// yields a pattern with the same key (a fixpoint), which the cache-key
// round-trip tests rely on.
func CanonicalKey(p Node) string {
	return Canonical(p).String()
}
