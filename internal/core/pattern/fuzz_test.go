package pattern

import (
	"errors"
	"testing"
)

// FuzzParse checks the parser never panics, and that every accepted input
// round-trips: Parse(p.String()) must reproduce the same AST. Run the seed
// corpus with `go test`; explore with `go test -fuzz=FuzzParse`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"A",
		"!A",
		"¬A",
		"A -> B",
		"A.B|C&D",
		"A ⊙ B ≺ C ⊗ D ⊕ E",
		`"quoted name" -> X`,
		"GetRefer[balance>5000][in.state=active] -> Pay",
		"((((A))))",
		"A ->",
		"-> A",
		"A | | B",
		"(",
		")",
		"",
		"   ",
		`A["x]y"=1]`,
		"!",
		"A[",
		`"unterminated`,
		"A - B",
		"𝛼 -> B", // non-ASCII identifier start: must error, not panic
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := Parse(input)
		if err != nil {
			if !errors.Is(err, ErrSyntax) {
				t.Fatalf("non-syntax error %v for %q", err, input)
			}
			return
		}
		printed := p.String()
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form %q of %q does not re-parse: %v", printed, input, err)
		}
		if !Equal(p, back) {
			t.Fatalf("round trip changed AST: %q -> %q -> %q", input, printed, back.String())
		}
		// The glyph rendering must also round-trip.
		glyphs := Pretty(p)
		back2, err := Parse(glyphs)
		if err != nil {
			t.Fatalf("glyph form %q does not re-parse: %v", glyphs, err)
		}
		if !Equal(p, back2) {
			t.Fatalf("glyph round trip changed AST: %q -> %q", glyphs, back2.String())
		}
	})
}

// FuzzPostfix checks FromPostfix never panics and inverts Postfix.
func FuzzPostfix(f *testing.F) {
	f.Add("A -> B & C")
	f.Add("A . B | !C")
	f.Fuzz(func(t *testing.T, input string) {
		p, err := Parse(input)
		if err != nil {
			return
		}
		back, err := FromPostfix(Postfix(p))
		if err != nil {
			t.Fatalf("FromPostfix(Postfix(%q)): %v", input, err)
		}
		if !Equal(p, back) {
			t.Fatalf("postfix round trip changed AST for %q", input)
		}
	})
}
