package pattern

import (
	"strings"
)

// TreeString renders the pattern's incident tree (Definition 6) as ASCII
// art, operator nodes first, mirroring Figure 4 of the paper. Example for
// SeeDoctor -> (UpdateRefer -> GetReimburse):
//
//	(->) sequential
//	├── SeeDoctor
//	└── (->) sequential
//	    ├── UpdateRefer
//	    └── GetReimburse
func TreeString(n Node) string {
	var sb strings.Builder
	writeTree(&sb, n, "", "", "")
	return sb.String()
}

func writeTree(sb *strings.Builder, n Node, prefix, selfMarker, childPrefix string) {
	sb.WriteString(prefix)
	sb.WriteString(selfMarker)
	switch n := n.(type) {
	case *Atom:
		sb.WriteString(n.String())
		sb.WriteByte('\n')
	case *Binary:
		sb.WriteString("(" + n.Op.String() + ") " + n.Op.Name())
		sb.WriteByte('\n')
		writeTree(sb, n.Left, prefix+childPrefix, "├── ", "│   ")
		writeTree(sb, n.Right, prefix+childPrefix, "└── ", "    ")
	}
}

// Postfix returns the pattern in postfix (Reverse Polish) order, the
// intermediate form of Algorithm 3's shunting-yard construction. Atoms
// appear in their printed form; operators in ASCII.
func Postfix(n Node) []string {
	var out []string
	var rec func(Node)
	rec = func(n Node) {
		switch n := n.(type) {
		case *Atom:
			out = append(out, n.String())
		case *Binary:
			rec(n.Left)
			rec(n.Right)
			out = append(out, n.Op.String())
		}
	}
	rec(n)
	return out
}

// FromPostfix rebuilds a pattern from a postfix token stream as produced by
// Postfix. It is the inverse used by tests to validate the shunting-yard
// construction end to end.
func FromPostfix(tokens []string) (Node, error) {
	var stack []Node
	for i, tok := range tokens {
		var op Op
		switch tok {
		case ".":
			op = OpConsecutive
		case "->":
			op = OpSequential
		case "|":
			op = OpChoice
		case "&":
			op = OpParallel
		default:
			atom, err := parseAtomToken(tok, i)
			if err != nil {
				return nil, err
			}
			stack = append(stack, atom)
			continue
		}
		if len(stack) < 2 {
			return nil, &SyntaxError{Pos: i, Msg: "postfix operator with fewer than two operands"}
		}
		r := stack[len(stack)-1]
		l := stack[len(stack)-2]
		stack = stack[:len(stack)-2]
		stack = append(stack, &Binary{Op: op, Left: l, Right: r})
	}
	if len(stack) != 1 {
		return nil, &SyntaxError{Pos: len(tokens), Msg: "postfix stream does not reduce to one pattern"}
	}
	return stack[0], nil
}

func parseAtomToken(tok string, pos int) (*Atom, error) {
	lx := &lexer{input: tok}
	atom, err := lx.lexAtom()
	if err != nil {
		return nil, &SyntaxError{Pos: pos, Msg: "malformed postfix atom " + tok}
	}
	if lx.pos != len(tok) {
		return nil, &SyntaxError{Pos: pos, Msg: "trailing characters in postfix atom " + tok}
	}
	return atom, nil
}
