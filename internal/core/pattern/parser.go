package pattern

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"

	"wlq/internal/predicate"
)

// ErrSyntax is wrapped by every parse failure.
var ErrSyntax = errors.New("pattern: syntax error")

// SyntaxError reports a parse failure with its byte offset in the query.
type SyntaxError struct {
	Pos int    // byte offset of the offending token
	Msg string // human-readable description
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("pattern: syntax error at offset %d: %s", e.Pos, e.Msg)
}

// Unwrap lets errors.Is match ErrSyntax.
func (e *SyntaxError) Unwrap() error { return ErrSyntax }

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokAtom tokenKind = iota + 1
	tokOp
	tokLParen
	tokRParen
	tokEOF
)

type token struct {
	kind tokenKind
	pos  int
	atom *Atom // when kind == tokAtom
	op   Op    // when kind == tokOp
}

// lexer tokenizes the textual pattern syntax.
type lexer struct {
	input string
	pos   int
}

func (lx *lexer) errf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) skipSpace() {
	for lx.pos < len(lx.input) {
		switch lx.input[lx.pos] {
		case ' ', '\t', '\n', '\r':
			lx.pos++
		default:
			return
		}
	}
}

// next returns the next token. Operators are accepted in both ASCII and the
// paper's glyph spellings.
func (lx *lexer) next() (token, error) {
	lx.skipSpace()
	start := lx.pos
	if lx.pos >= len(lx.input) {
		return token{kind: tokEOF, pos: start}, nil
	}
	r, size := utf8.DecodeRuneInString(lx.input[lx.pos:])
	switch r {
	case '(':
		lx.pos++
		return token{kind: tokLParen, pos: start}, nil
	case ')':
		lx.pos++
		return token{kind: tokRParen, pos: start}, nil
	case '.', '⊙':
		lx.pos += size
		return token{kind: tokOp, pos: start, op: OpConsecutive}, nil
	case '≺':
		lx.pos += size
		return token{kind: tokOp, pos: start, op: OpSequential}, nil
	case '|', '⊗':
		lx.pos += size
		return token{kind: tokOp, pos: start, op: OpChoice}, nil
	case '&', '⊕':
		lx.pos += size
		return token{kind: tokOp, pos: start, op: OpParallel}, nil
	case '-':
		if strings.HasPrefix(lx.input[lx.pos:], "->") {
			lx.pos += 2
			return token{kind: tokOp, pos: start, op: OpSequential}, nil
		}
		return token{}, lx.errf(start, "unexpected %q (did you mean \"->\"?)", "-")
	}
	atom, err := lx.lexAtom()
	if err != nil {
		return token{}, err
	}
	return token{kind: tokAtom, pos: start, atom: atom}, nil
}

// lexAtom scans [!] name [guard]... where name is an identifier or a quoted
// string and each guard is a bracketed condition.
func (lx *lexer) lexAtom() (*Atom, error) {
	start := lx.pos
	atom := &Atom{}
	if lx.input[lx.pos] == '!' || strings.HasPrefix(lx.input[lx.pos:], "¬") {
		atom.Negated = true
		_, size := utf8.DecodeRuneInString(lx.input[lx.pos:])
		lx.pos += size
		lx.skipSpace()
		if lx.pos >= len(lx.input) {
			return nil, lx.errf(start, "negation with no activity name")
		}
	}
	switch c := lx.input[lx.pos]; {
	case c == '"':
		name, err := lx.lexQuoted()
		if err != nil {
			return nil, err
		}
		atom.Activity = name
	case isIdentStart(rune(c)):
		atom.Activity = lx.lexIdent()
	default:
		return nil, lx.errf(lx.pos, "unexpected character %q", string(c))
	}
	for lx.pos < len(lx.input) && lx.input[lx.pos] == '[' {
		guard, err := lx.lexGuard()
		if err != nil {
			return nil, err
		}
		atom.Guards = append(atom.Guards, guard)
	}
	return atom, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}

func isIdentRune(r rune) bool {
	return isIdentStart(r) || (r >= '0' && r <= '9')
}

func (lx *lexer) lexIdent() string {
	start := lx.pos
	for lx.pos < len(lx.input) && isIdentRune(rune(lx.input[lx.pos])) {
		lx.pos++
	}
	return lx.input[start:lx.pos]
}

func (lx *lexer) lexQuoted() (string, error) {
	start := lx.pos
	i := lx.pos + 1
	for i < len(lx.input) {
		switch lx.input[i] {
		case '\\':
			i += 2
			continue
		case '"':
			raw := lx.input[lx.pos : i+1]
			name, err := strconv.Unquote(raw)
			if err != nil {
				return "", lx.errf(start, "malformed quoted activity name %s", raw)
			}
			lx.pos = i + 1
			return name, nil
		}
		i++
	}
	return "", lx.errf(start, "unterminated quoted activity name")
}

func (lx *lexer) lexGuard() (predicate.Guard, error) {
	start := lx.pos // at '['
	end := -1
	inQuote := false
	for i := lx.pos + 1; i < len(lx.input); i++ {
		switch c := lx.input[i]; {
		case c == '\\' && inQuote:
			i++
		case c == '"':
			inQuote = !inQuote
		case c == ']' && !inQuote:
			end = i
		}
		if end >= 0 {
			break
		}
	}
	if end < 0 {
		return predicate.Guard{}, lx.errf(start, "unterminated guard (missing ']')")
	}
	body := strings.TrimSpace(lx.input[lx.pos+1 : end])
	guard, err := predicate.Parse(body)
	if err != nil {
		return predicate.Guard{}, lx.errf(start, "%v", err)
	}
	lx.pos = end + 1
	return guard, nil
}

// Parse converts a textual incident pattern into its AST using Dijkstra's
// shunting-yard algorithm, the construction named by Section 3.2 of the
// paper (the infix query is converted to postfix order and the incident
// tree — our Binary/Atom AST — is assembled from the postfix stream).
func Parse(input string) (Node, error) {
	lx := &lexer{input: input}

	var output []Node    // operand stack (holds assembled subtrees)
	var ops []token      // operator/paren stack
	lastOperand := false // previous token completed an operand

	apply := func(t token) error {
		if len(output) < 2 {
			return &SyntaxError{Pos: t.pos, Msg: fmt.Sprintf("operator %q needs two operands", t.op.String())}
		}
		right := output[len(output)-1]
		left := output[len(output)-2]
		output = output[:len(output)-2]
		output = append(output, &Binary{Op: t.op, Left: left, Right: right})
		return nil
	}

	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		switch t.kind {
		case tokAtom:
			if lastOperand {
				return nil, &SyntaxError{Pos: t.pos, Msg: "expected an operator before this activity"}
			}
			output = append(output, t.atom)
			lastOperand = true
		case tokOp:
			if !lastOperand {
				return nil, &SyntaxError{Pos: t.pos, Msg: fmt.Sprintf("operator %q with no left operand", t.op.String())}
			}
			for len(ops) > 0 {
				top := ops[len(ops)-1]
				if top.kind != tokOp || top.op.precedence() < t.op.precedence() {
					break
				}
				ops = ops[:len(ops)-1]
				if err := apply(top); err != nil {
					return nil, err
				}
			}
			ops = append(ops, t)
			lastOperand = false
		case tokLParen:
			if lastOperand {
				return nil, &SyntaxError{Pos: t.pos, Msg: "expected an operator before '('"}
			}
			ops = append(ops, t)
		case tokRParen:
			if !lastOperand {
				return nil, &SyntaxError{Pos: t.pos, Msg: "')' with no operand before it"}
			}
			matched := false
			for len(ops) > 0 {
				top := ops[len(ops)-1]
				ops = ops[:len(ops)-1]
				if top.kind == tokLParen {
					matched = true
					break
				}
				if err := apply(top); err != nil {
					return nil, err
				}
			}
			if !matched {
				return nil, &SyntaxError{Pos: t.pos, Msg: "unmatched ')'"}
			}
		case tokEOF:
			if !lastOperand && (len(output) > 0 || len(ops) > 0) {
				return nil, &SyntaxError{Pos: t.pos, Msg: "query ends with a dangling operator"}
			}
			for len(ops) > 0 {
				top := ops[len(ops)-1]
				ops = ops[:len(ops)-1]
				if top.kind == tokLParen {
					return nil, &SyntaxError{Pos: top.pos, Msg: "unmatched '('"}
				}
				if err := apply(top); err != nil {
					return nil, err
				}
			}
			switch len(output) {
			case 0:
				return nil, &SyntaxError{Pos: 0, Msg: "empty pattern"}
			case 1:
				return output[0], nil
			default:
				return nil, &SyntaxError{Pos: t.pos, Msg: "patterns not joined by an operator"}
			}
		}
	}
}

// MustParse is Parse, panicking on error. For fixtures and examples.
func MustParse(input string) Node {
	n, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return n
}
