// Package pattern implements incident patterns (Definition 3 of "Querying
// Workflow Logs"): the abstract syntax tree, a textual query syntax with a
// shunting-yard parser (as Section 3.2 prescribes), printers, and structural
// metrics used by the evaluator and the optimizer.
//
// The four binary operators and their textual / paper spellings are:
//
//	consecutive  p1 . p2    (paper: p1 ⊙ p2)  p1 then immediately p2
//	sequential   p1 -> p2   (paper: p1 ≺ p2)  p1 then eventually p2
//	choice       p1 | p2    (paper: p1 ⊗ p2)  one of p1, p2
//	parallel     p1 & p2    (paper: p1 ⊕ p2)  both, records disjoint
//
// Atomic patterns are activity names (optionally negated with '!'), and — as
// a documented extension beyond the paper — may carry attribute guards in
// brackets: GetRefer[balance>5000].
package pattern

import (
	"fmt"
	"sort"
	"strings"

	"wlq/internal/predicate"
)

// Op identifies one of the four pattern composition operators.
type Op int

// The operators of Definition 3.
const (
	OpConsecutive Op = iota + 1 // ⊙
	OpSequential                // ≺
	OpChoice                    // ⊗
	OpParallel                  // ⊕
)

// String returns the ASCII spelling of the operator.
func (o Op) String() string {
	switch o {
	case OpConsecutive:
		return "."
	case OpSequential:
		return "->"
	case OpChoice:
		return "|"
	case OpParallel:
		return "&"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Name returns the paper's name for the operator.
func (o Op) Name() string {
	switch o {
	case OpConsecutive:
		return "consecutive"
	case OpSequential:
		return "sequential"
	case OpChoice:
		return "choice"
	case OpParallel:
		return "parallel"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Symbol returns the paper's glyph for the operator.
func (o Op) Symbol() string {
	switch o {
	case OpConsecutive:
		return "⊙"
	case OpSequential:
		return "≺"
	case OpChoice:
		return "⊗"
	case OpParallel:
		return "⊕"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Commutative reports whether the operator is commutative (Theorem 3:
// choice and parallel are; consecutive and sequential are not).
func (o Op) Commutative() bool { return o == OpChoice || o == OpParallel }

// precedence orders the operators for parsing and printing. Consecutive and
// sequential share the highest level (they interchange freely by Theorem 4),
// parallel binds tighter than choice. All operators associate to the left,
// which is harmless because every operator is associative (Theorem 2).
func (o Op) precedence() int {
	switch o {
	case OpConsecutive, OpSequential:
		return 3
	case OpParallel:
		return 2
	case OpChoice:
		return 1
	default:
		return 0
	}
}

// Node is an incident pattern. Implementations are *Atom and *Binary;
// the interface is sealed.
type Node interface {
	// String renders the pattern in the textual syntax accepted by Parse,
	// with the fewest parentheses permitted by precedence.
	String() string
	isPattern()
}

// Compile-time interface checks.
var (
	_ Node = (*Atom)(nil)
	_ Node = (*Binary)(nil)
)

// Atom is an atomic activity pattern: t or ¬t, optionally guarded.
type Atom struct {
	// Activity is the activity name t ∈ T the pattern matches (or excludes).
	Activity string
	// Negated flips the pattern to ¬t: match any record whose activity is
	// not Activity.
	Negated bool
	// Guards further restrict matching records by their attribute maps.
	// This is an extension; the paper's atomic patterns have no guards.
	Guards []predicate.Guard
}

func (*Atom) isPattern() {}

// String renders the atom, e.g. `GetRefer`, `!GetRefer`,
// `GetRefer[balance>5000]`, or a quoted form when the name needs it.
func (a *Atom) String() string {
	var sb strings.Builder
	if a.Negated {
		sb.WriteByte('!')
	}
	if identifierSafe(a.Activity) {
		sb.WriteString(a.Activity)
	} else {
		sb.WriteString(fmt.Sprintf("%q", a.Activity))
	}
	for _, g := range a.Guards {
		sb.WriteByte('[')
		sb.WriteString(g.String())
		sb.WriteByte(']')
	}
	return sb.String()
}

// Binary is a composite pattern p1 op p2.
type Binary struct {
	Op          Op
	Left, Right Node
}

func (*Binary) isPattern() {}

// String renders the composite with minimal parentheses: a child is
// parenthesized only when its top operator binds more loosely than this
// node's, or — on the right-hand side — equally (printing is left-
// associative).
func (b *Binary) String() string {
	return render(b, false)
}

// Pretty renders the pattern using the paper's glyphs (⊙ ≺ ⊗ ⊕ and ¬).
func Pretty(n Node) string {
	return render(n, true)
}

// render produces the infix form; glyphs selects the paper's spellings.
func render(n Node, glyphs bool) string {
	switch n := n.(type) {
	case *Atom:
		s := n.String()
		if glyphs && n.Negated {
			s = "¬" + s[1:]
		}
		return s
	case *Binary:
		opStr := " " + n.Op.String() + " "
		if glyphs {
			opStr = " " + n.Op.Symbol() + " "
		}
		left := render(n.Left, glyphs)
		right := render(n.Right, glyphs)
		if l, ok := n.Left.(*Binary); ok && l.Op.precedence() < n.Op.precedence() {
			left = "(" + left + ")"
		}
		if r, ok := n.Right.(*Binary); ok && r.Op.precedence() <= n.Op.precedence() {
			right = "(" + right + ")"
		}
		return left + opStr + right
	default:
		return fmt.Sprintf("%v", n)
	}
}

// identifierSafe reports whether an activity name can be printed without
// quotes: it must look like an identifier token.
func identifierSafe(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// NewAtom returns the atomic pattern t.
func NewAtom(activity string) *Atom { return &Atom{Activity: activity} }

// NewNegAtom returns the negated atomic pattern ¬t.
func NewNegAtom(activity string) *Atom { return &Atom{Activity: activity, Negated: true} }

// Consecutive returns p1 ⊙ p2.
func Consecutive(l, r Node) *Binary { return &Binary{Op: OpConsecutive, Left: l, Right: r} }

// Sequential returns p1 ≺ p2.
func Sequential(l, r Node) *Binary { return &Binary{Op: OpSequential, Left: l, Right: r} }

// Choice returns p1 ⊗ p2.
func Choice(l, r Node) *Binary { return &Binary{Op: OpChoice, Left: l, Right: r} }

// Parallel returns p1 ⊕ p2.
func Parallel(l, r Node) *Binary { return &Binary{Op: OpParallel, Left: l, Right: r} }

// Combine folds patterns left-associatively under op:
// Combine(op, a, b, c) = (a op b) op c. It panics on an empty argument list.
func Combine(op Op, patterns ...Node) Node {
	if len(patterns) == 0 {
		panic("pattern.Combine: no patterns")
	}
	acc := patterns[0]
	for _, p := range patterns[1:] {
		acc = &Binary{Op: op, Left: acc, Right: p}
	}
	return acc
}

// Clone returns a deep copy of the pattern.
func Clone(n Node) Node {
	switch n := n.(type) {
	case *Atom:
		guards := make([]predicate.Guard, len(n.Guards))
		copy(guards, n.Guards)
		if len(guards) == 0 {
			guards = nil
		}
		return &Atom{Activity: n.Activity, Negated: n.Negated, Guards: guards}
	case *Binary:
		return &Binary{Op: n.Op, Left: Clone(n.Left), Right: Clone(n.Right)}
	default:
		panic(fmt.Sprintf("pattern.Clone: unknown node %T", n))
	}
}

// Equal reports structural equality of two patterns (same shape, operators,
// activities, negation flags and guard lists).
func Equal(a, b Node) bool {
	switch a := a.(type) {
	case *Atom:
		bb, ok := b.(*Atom)
		return ok && a.Activity == bb.Activity && a.Negated == bb.Negated &&
			predicate.EqualSlices(a.Guards, bb.Guards)
	case *Binary:
		bb, ok := b.(*Binary)
		return ok && a.Op == bb.Op && Equal(a.Left, bb.Left) && Equal(a.Right, bb.Right)
	default:
		return false
	}
}

// Walk visits every node of the pattern in depth-first pre-order. If fn
// returns false, the walk stops descending into that subtree.
func Walk(n Node, fn func(Node) bool) {
	if !fn(n) {
		return
	}
	if b, ok := n.(*Binary); ok {
		Walk(b.Left, fn)
		Walk(b.Right, fn)
	}
}

// Size returns the number of AST nodes in the pattern.
func Size(n Node) int {
	count := 0
	Walk(n, func(Node) bool { count++; return true })
	return count
}

// Operators returns k, the number of operator nodes (used by Theorem 1).
func Operators(n Node) int {
	count := 0
	Walk(n, func(m Node) bool {
		if _, ok := m.(*Binary); ok {
			count++
		}
		return true
	})
	return count
}

// Depth returns the height of the AST (1 for an atom).
func Depth(n Node) int {
	if b, ok := n.(*Binary); ok {
		l, r := Depth(b.Left), Depth(b.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return 1
}

// Atoms returns the atomic patterns in left-to-right order.
func Atoms(n Node) []*Atom {
	var atoms []*Atom
	Walk(n, func(m Node) bool {
		if a, ok := m.(*Atom); ok {
			atoms = append(atoms, a)
		}
		return true
	})
	return atoms
}

// ActivityMultiset returns the multiset of activity names occurring in the
// pattern (Section 3.1 uses this to decide whether a choice needs duplicate
// elimination). Negated atoms contribute their name tagged with "¬".
func ActivityMultiset(n Node) map[string]int {
	m := make(map[string]int)
	for _, a := range Atoms(n) {
		key := a.Activity
		if a.Negated {
			key = "¬" + key
		}
		m[key]++
	}
	return m
}

// SameActivityMultiset reports whether two patterns contain identical
// activity multisets.
func SameActivityMultiset(a, b Node) bool {
	ma, mb := ActivityMultiset(a), ActivityMultiset(b)
	if len(ma) != len(mb) {
		return false
	}
	for k, v := range ma {
		if mb[k] != v {
			return false
		}
	}
	return true
}

// Activities returns the distinct (non-negated tag) activity names in
// sorted order.
func Activities(n Node) []string {
	seen := make(map[string]struct{})
	for _, a := range Atoms(n) {
		seen[a.Activity] = struct{}{}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
