package pattern

import (
	"strings"
	"testing"

	"wlq/internal/predicate"
)

func TestOpMetadata(t *testing.T) {
	tests := []struct {
		op     Op
		str    string
		name   string
		symbol string
		comm   bool
	}{
		{OpConsecutive, ".", "consecutive", "⊙", false},
		{OpSequential, "->", "sequential", "≺", false},
		{OpChoice, "|", "choice", "⊗", true},
		{OpParallel, "&", "parallel", "⊕", true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.op.String() != tt.str || tt.op.Name() != tt.name ||
				tt.op.Symbol() != tt.symbol || tt.op.Commutative() != tt.comm {
				t.Errorf("metadata mismatch for %v", tt.op)
			}
		})
	}
}

func TestConstructorsAndString(t *testing.T) {
	tests := []struct {
		name string
		node Node
		want string
	}{
		{"atom", NewAtom("A"), "A"},
		{"negated atom", NewNegAtom("A"), "!A"},
		{"quoted atom", NewAtom("two words"), `"two words"`},
		{"quoted empty", NewAtom(""), `""`},
		{"quoted leading digit", NewAtom("9lives"), `"9lives"`},
		{"consecutive", Consecutive(NewAtom("A"), NewAtom("B")), "A . B"},
		{"sequential", Sequential(NewAtom("A"), NewAtom("B")), "A -> B"},
		{"choice", Choice(NewAtom("A"), NewAtom("B")), "A | B"},
		{"parallel", Parallel(NewAtom("A"), NewAtom("B")), "A & B"},
		{
			"precedence omits parens",
			Choice(Sequential(NewAtom("A"), NewAtom("B")), NewAtom("C")),
			"A -> B | C",
		},
		{
			"parens kept when needed",
			Sequential(Choice(NewAtom("A"), NewAtom("B")), NewAtom("C")),
			"(A | B) -> C",
		},
		{
			"right-nested same-op keeps parens",
			Sequential(NewAtom("A"), Sequential(NewAtom("B"), NewAtom("C"))),
			"A -> (B -> C)",
		},
		{
			"left-nested same-op drops parens",
			Sequential(Sequential(NewAtom("A"), NewAtom("B")), NewAtom("C")),
			"A -> B -> C",
		},
		{
			"parallel binds tighter than choice",
			Choice(Parallel(NewAtom("A"), NewAtom("B")), NewAtom("C")),
			"A & B | C",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.node.String(); got != tt.want {
				t.Errorf("String() = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestPretty(t *testing.T) {
	p := Sequential(NewNegAtom("A"), Parallel(NewAtom("B"), NewAtom("C")))
	want := "¬A ≺ (B ⊕ C)"
	if got := Pretty(p); got != want {
		t.Errorf("Pretty = %q, want %q", got, want)
	}
}

func TestCombine(t *testing.T) {
	got := Combine(OpParallel, NewAtom("A"), NewAtom("B"), NewAtom("C"))
	want := Parallel(Parallel(NewAtom("A"), NewAtom("B")), NewAtom("C"))
	if !Equal(got, want) {
		t.Errorf("Combine = %s, want %s", got, want)
	}
	if single := Combine(OpChoice, NewAtom("A")); !Equal(single, NewAtom("A")) {
		t.Errorf("Combine of one = %s", single)
	}
	defer func() {
		if recover() == nil {
			t.Error("Combine() with no patterns should panic")
		}
	}()
	Combine(OpChoice)
}

func TestCloneIndependence(t *testing.T) {
	g, err := predicate.Parse("balance>5000")
	if err != nil {
		t.Fatal(err)
	}
	orig := Sequential(&Atom{Activity: "A", Guards: []predicate.Guard{g}}, NewAtom("B"))
	cp := Clone(orig).(*Binary)
	if !Equal(orig, cp) {
		t.Fatal("clone not Equal to original")
	}
	cp.Left.(*Atom).Activity = "Z"
	cp.Left.(*Atom).Guards[0] = predicate.Guard{}
	if orig.Left.(*Atom).Activity != "A" {
		t.Error("Clone shares atom")
	}
	if orig.Left.(*Atom).Guards[0].Attr != "balance" {
		t.Error("Clone shares guard slice")
	}
}

func TestEqual(t *testing.T) {
	g1, _ := predicate.Parse("x>1")
	g2, _ := predicate.Parse("x>2")
	tests := []struct {
		name string
		a, b Node
		want bool
	}{
		{"same atoms", NewAtom("A"), NewAtom("A"), true},
		{"different names", NewAtom("A"), NewAtom("B"), false},
		{"negation differs", NewAtom("A"), NewNegAtom("A"), false},
		{"atom vs binary", NewAtom("A"), Choice(NewAtom("A"), NewAtom("A")), false},
		{"same tree", Sequential(NewAtom("A"), NewAtom("B")), Sequential(NewAtom("A"), NewAtom("B")), true},
		{"op differs", Sequential(NewAtom("A"), NewAtom("B")), Consecutive(NewAtom("A"), NewAtom("B")), false},
		{"children swapped", Choice(NewAtom("A"), NewAtom("B")), Choice(NewAtom("B"), NewAtom("A")), false},
		{
			"guards equal",
			&Atom{Activity: "A", Guards: []predicate.Guard{g1}},
			&Atom{Activity: "A", Guards: []predicate.Guard{g1}},
			true,
		},
		{
			"guards differ",
			&Atom{Activity: "A", Guards: []predicate.Guard{g1}},
			&Atom{Activity: "A", Guards: []predicate.Guard{g2}},
			false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Equal(tt.a, tt.b); got != tt.want {
				t.Errorf("Equal = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMetrics(t *testing.T) {
	// ((A -> B) | (!A & C)) — 4 atoms, 3 operators, depth 3.
	p := Choice(
		Sequential(NewAtom("A"), NewAtom("B")),
		Parallel(NewNegAtom("A"), NewAtom("C")),
	)
	if got := Size(p); got != 7 {
		t.Errorf("Size = %d, want 7", got)
	}
	if got := Operators(p); got != 3 {
		t.Errorf("Operators = %d, want 3", got)
	}
	if got := Depth(p); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
	if got := Depth(NewAtom("A")); got != 1 {
		t.Errorf("Depth(atom) = %d, want 1", got)
	}

	atoms := Atoms(p)
	if len(atoms) != 4 || atoms[0].Activity != "A" || atoms[3].Activity != "C" {
		t.Errorf("Atoms = %v", atoms)
	}

	ms := ActivityMultiset(p)
	if ms["A"] != 1 || ms["¬A"] != 1 || ms["B"] != 1 || ms["C"] != 1 {
		t.Errorf("ActivityMultiset = %v", ms)
	}

	acts := Activities(p)
	if strings.Join(acts, ",") != "A,B,C" {
		t.Errorf("Activities = %v", acts)
	}
}

func TestSameActivityMultiset(t *testing.T) {
	a := Sequential(NewAtom("A"), NewAtom("B"))
	b := Consecutive(NewAtom("B"), NewAtom("A"))
	c := Sequential(NewAtom("A"), NewAtom("A"))
	d := Sequential(NewAtom("A"), NewNegAtom("B"))
	if !SameActivityMultiset(a, b) {
		t.Error("same multisets reported different")
	}
	if SameActivityMultiset(a, c) || SameActivityMultiset(a, d) {
		t.Error("different multisets reported same")
	}
}

func TestWalkEarlyStop(t *testing.T) {
	p := Sequential(Sequential(NewAtom("A"), NewAtom("B")), NewAtom("C"))
	count := 0
	Walk(p, func(n Node) bool {
		count++
		_, isBinary := n.(*Binary)
		return !isBinary || count == 1 // descend only from the root
	})
	// Root binary (descend) -> left binary (stop) + right atom C.
	if count != 3 {
		t.Errorf("visited %d nodes, want 3", count)
	}
}
