package pattern

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func TestParseBasics(t *testing.T) {
	tests := []struct {
		name  string
		input string
		want  Node
	}{
		{"atom", "A", NewAtom("A")},
		{"negated", "!A", NewNegAtom("A")},
		{"negated with space", "! A", NewNegAtom("A")},
		{"unicode negation", "¬A", NewNegAtom("A")},
		{"quoted name", `"Get Refer"`, NewAtom("Get Refer")},
		{"consecutive", "A . B", Consecutive(NewAtom("A"), NewAtom("B"))},
		{"sequential", "A -> B", Sequential(NewAtom("A"), NewAtom("B"))},
		{"choice", "A | B", Choice(NewAtom("A"), NewAtom("B"))},
		{"parallel", "A & B", Parallel(NewAtom("A"), NewAtom("B"))},
		{"no spaces", "A->B", Sequential(NewAtom("A"), NewAtom("B"))},
		{
			"left associative",
			"A -> B -> C",
			Sequential(Sequential(NewAtom("A"), NewAtom("B")), NewAtom("C")),
		},
		{
			"parens",
			"A -> (B -> C)",
			Sequential(NewAtom("A"), Sequential(NewAtom("B"), NewAtom("C"))),
		},
		{
			"precedence: sequential over parallel",
			"A -> B & C",
			Parallel(Sequential(NewAtom("A"), NewAtom("B")), NewAtom("C")),
		},
		{
			"precedence: parallel over choice",
			"A & B | C & D",
			Choice(Parallel(NewAtom("A"), NewAtom("B")), Parallel(NewAtom("C"), NewAtom("D"))),
		},
		{
			"consecutive and sequential share precedence",
			"A . B -> C",
			Sequential(Consecutive(NewAtom("A"), NewAtom("B")), NewAtom("C")),
		},
		{
			"glyph operators",
			"A ⊙ B ≺ C ⊗ D ⊕ E",
			Choice(
				Sequential(Consecutive(NewAtom("A"), NewAtom("B")), NewAtom("C")),
				Parallel(NewAtom("D"), NewAtom("E")),
			),
		},
		{
			"paper example 5",
			"SeeDoctor -> (UpdateRefer -> GetReimburse)",
			Sequential(NewAtom("SeeDoctor"),
				Sequential(NewAtom("UpdateRefer"), NewAtom("GetReimburse"))),
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Parse(tt.input)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.input, err)
			}
			if !Equal(got, tt.want) {
				t.Errorf("Parse(%q) = %s, want %s", tt.input, got, tt.want)
			}
		})
	}
}

func TestParseGuards(t *testing.T) {
	n, err := Parse(`GetRefer[balance>5000][hospital="Public Hospital"] -> CheckIn`)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := n.(*Binary)
	if !ok || b.Op != OpSequential {
		t.Fatalf("unexpected shape %s", n)
	}
	atom := b.Left.(*Atom)
	if atom.Activity != "GetRefer" || len(atom.Guards) != 2 {
		t.Fatalf("atom = %s, guards = %v", atom, atom.Guards)
	}
	if atom.Guards[0].Attr != "balance" || atom.Guards[1].Attr != "hospital" {
		t.Errorf("guards parsed wrong: %v", atom.Guards)
	}
	// Guard value with ']' inside quotes must not end the bracket early.
	n2, err := Parse(`A[x="a]b"]`)
	if err != nil {
		t.Fatal(err)
	}
	g := n2.(*Atom).Guards[0]
	if s, _ := g.Value.Str(); s != "a]b" {
		t.Errorf("quoted ] mishandled: %v", g)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"spaces only", "   "},
		{"dangling operator", "A ->"},
		{"leading operator", "-> A"},
		{"double operator", "A -> -> B"},
		{"adjacent atoms", "A B"},
		{"adjacent paren group", "A (B)"},
		{"unmatched open", "(A -> B"},
		{"unmatched close", "A -> B)"},
		{"empty parens", "()"},
		{"rparen after operator", "(A ->)"},
		{"bare negation", "!"},
		{"bad dash", "A - B"},
		{"unterminated quote", `"A`},
		{"bad quote escape", `"A\q"`},
		{"unterminated guard", "A[x>5"},
		{"malformed guard", "A[>5]"},
		{"stray character", "A $ B"},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.input)
			if err == nil {
				t.Fatalf("Parse(%q): want error", tt.input)
			}
			if !errors.Is(err, ErrSyntax) {
				t.Errorf("error %v does not wrap ErrSyntax", err)
			}
			var serr *SyntaxError
			if !errors.As(err, &serr) {
				t.Errorf("error %v is not a *SyntaxError", err)
			} else if !strings.Contains(serr.Error(), "offset") {
				t.Errorf("error text lacks position: %v", serr)
			}
		})
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on bad input should panic")
		}
	}()
	MustParse("A ->")
}

// TestParsePrintRoundTrip checks Parse(p.String()) == p on hand-picked and
// randomly generated patterns.
func TestParsePrintRoundTrip(t *testing.T) {
	fixed := []Node{
		NewAtom("A"),
		NewNegAtom("Get"),
		NewAtom("odd name here"),
		MustParse("A -> B . C & (D | !E)"),
		MustParse(`X[balance>=100] . "Y Z"[in.state=active]`),
	}
	for _, p := range fixed {
		back, err := Parse(p.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", p.String(), err)
		}
		if !Equal(p, back) {
			t.Errorf("round trip: %s != %s", p, back)
		}
	}

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		p := randomPattern(rng, 4)
		back, err := Parse(p.String())
		if err != nil {
			t.Fatalf("trial %d: re-Parse(%q): %v", trial, p.String(), err)
		}
		if !Equal(p, back) {
			t.Errorf("trial %d: round trip %q parsed as %q", trial, p, back)
		}
		// The glyph form must parse back identically too.
		back2, err := Parse(Pretty(p))
		if err != nil {
			t.Fatalf("trial %d: re-Parse(pretty %q): %v", trial, Pretty(p), err)
		}
		if !Equal(p, back2) {
			t.Errorf("trial %d: pretty round trip %q parsed as %q", trial, Pretty(p), back2)
		}
	}
}

// randomPattern builds a random pattern of the given maximum depth.
func randomPattern(rng *rand.Rand, depth int) Node {
	if depth <= 1 || rng.Intn(3) == 0 {
		name := string(rune('A' + rng.Intn(6)))
		if rng.Intn(4) == 0 {
			return NewNegAtom(name)
		}
		return NewAtom(name)
	}
	ops := []Op{OpConsecutive, OpSequential, OpChoice, OpParallel}
	return &Binary{
		Op:    ops[rng.Intn(len(ops))],
		Left:  randomPattern(rng, depth-1),
		Right: randomPattern(rng, depth-1),
	}
}

func TestPostfixRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		p := randomPattern(rng, 4)
		back, err := FromPostfix(Postfix(p))
		if err != nil {
			t.Fatalf("trial %d: FromPostfix: %v", trial, err)
		}
		if !Equal(p, back) {
			t.Errorf("trial %d: postfix round trip %s != %s", trial, p, back)
		}
	}
}

func TestPostfixOrder(t *testing.T) {
	p := MustParse("SeeDoctor -> (UpdateRefer -> GetReimburse)")
	got := strings.Join(Postfix(p), " ")
	want := "SeeDoctor UpdateRefer GetReimburse -> ->"
	if got != want {
		t.Errorf("Postfix = %q, want %q", got, want)
	}
}

func TestFromPostfixErrors(t *testing.T) {
	bad := [][]string{
		{"A", "B"},          // unreduced operands
		{"->"},              // operator without operands
		{"A", "->"},         // operator with one operand
		{"A", "B", "-> ->"}, // malformed token
		{},                  // empty stream
	}
	for _, toks := range bad {
		if _, err := FromPostfix(toks); err == nil {
			t.Errorf("FromPostfix(%v): want error", toks)
		}
	}
}

func TestTreeString(t *testing.T) {
	p := MustParse("SeeDoctor -> (UpdateRefer -> GetReimburse)")
	got := TreeString(p)
	wantLines := []string{
		"(->) sequential",
		"├── SeeDoctor",
		"└── (->) sequential",
		"    ├── UpdateRefer",
		"    └── GetReimburse",
	}
	for _, line := range wantLines {
		if !strings.Contains(got, line) {
			t.Errorf("TreeString missing %q:\n%s", line, got)
		}
	}
}
