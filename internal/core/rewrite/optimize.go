package rewrite

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"wlq/internal/core/pattern"
)

// Explanation records what the optimizer did to a pattern.
type Explanation struct {
	// Before and After are the estimated Lemma 1 costs.
	Before, After float64
	// Steps names the transformations applied, in order.
	Steps []string
	// Details carries one structured entry per applied law, for EXPLAIN and
	// tracing surfaces.
	Details []Step
}

// Step is one applied Theorem 2–5 law with its estimated cost effect.
// Before and After bracket the optimization pass that applied the law:
// laws fired by the same pass (e.g. several chains re-bracketed bottom-up)
// share the pass's cost delta, because their effects interact and are not
// separable per chain.
type Step struct {
	// Law describes the transformation, e.g. "factored 2 choice(s)".
	Law string
	// Theorem cites the licensing result(s), e.g. "Theorem 5".
	Theorem string
	// Before and After are the estimated Lemma 1 costs around the pass.
	Before, After float64
}

// String summarizes the explanation for CLI display.
func (ex Explanation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "estimated cost %.4g -> %.4g", ex.Before, ex.After)
	if len(ex.Steps) > 0 {
		sb.WriteString(" via ")
		sb.WriteString(strings.Join(ex.Steps, ", "))
	}
	return sb.String()
}

// Optimize rewrites p into an equivalent pattern with lower estimated cost,
// using only the Theorem 2–5 laws:
//
//  1. choice factoring (inverse distributivity, Theorem 5) to fixpoint;
//  2. dynamic-programming re-bracketing of ⊙/≺ chains (Theorems 2 and 4);
//  3. operand reordering plus left-deep re-bracketing of ⊗ and ⊕ chains
//     (Theorems 2 and 3), smallest estimated operand first.
//
// The result always satisfies incL(Optimize(p)) = incL(p). Optimize never
// returns a pattern costlier than its input.
func Optimize(p pattern.Node, stats Stats) (pattern.Node, Explanation) {
	return OptimizeWith(p, stats, ModelSelectivities())
}

// OptimizeWith is Optimize with explicit selectivities: every cost the
// passes compare is estimated with sel instead of the model constants, so
// measured statistics can change which bracketing and operand order win.
// The rewrite laws applied are identical — only the ranking differs.
func OptimizeWith(p pattern.Node, stats Stats, sel Selectivities) (pattern.Node, Explanation) {
	est := NewEstimatorWith(stats, sel)
	ex := Explanation{Before: est.Cost(p)}
	out := pattern.Clone(p)

	// Pass 1: factoring.
	factored := out
	fired := 0
	for pass := 0; pass < 10; pass++ {
		roundFired := 0
		for _, op := range AllOps {
			if op == pattern.OpChoice {
				continue
			}
			var n int
			factored, n = ApplyEverywhere(factored, factorLeft(op))
			roundFired += n
			factored, n = ApplyEverywhere(factored, factorRight(op))
			roundFired += n
		}
		fired += roundFired
		if roundFired == 0 {
			break
		}
	}
	if fired > 0 && est.Cost(factored) <= est.Cost(out) {
		before := est.Cost(out)
		out = factored
		note := fmt.Sprintf("factored %d choice(s)", fired)
		ex.Steps = append(ex.Steps, note)
		ex.Details = append(ex.Details, Step{
			Law: note, Theorem: "Theorem 5", Before: before, After: est.Cost(out),
		})
	}

	// Pass 2 + 3: chain re-bracketing, bottom-up over the whole tree.
	rebracketed, steps := rebracket(out, est)
	if len(steps) > 0 && est.Cost(rebracketed) <= est.Cost(out) {
		before := est.Cost(out)
		out = rebracketed
		after := est.Cost(out)
		for _, st := range steps {
			st.Before, st.After = before, after
			ex.Steps = append(ex.Steps, st.Law)
			ex.Details = append(ex.Details, st)
		}
	}

	ex.After = est.Cost(out)
	return out, ex
}

// chainKind classifies an operator for chain flattening: ⊙ and ≺ form one
// interchangeable family (Theorem 4); ⊗ and ⊕ each form their own.
func chainKind(op pattern.Op) int {
	switch op {
	case pattern.OpConsecutive, pattern.OpSequential:
		return 1
	case pattern.OpParallel:
		return 2
	case pattern.OpChoice:
		return 3
	default:
		return 0
	}
}

// rebracket walks the tree bottom-up; at every maximal chain of one kind it
// re-brackets (and, for commutative kinds, reorders) for minimal estimated
// cost. The returned steps carry law text and theorem citations; the caller
// fills in the cost bracket.
func rebracket(p pattern.Node, est *Estimator) (pattern.Node, []Step) {
	var steps []Step
	var rec func(pattern.Node) pattern.Node
	rec = func(n pattern.Node) pattern.Node {
		b, ok := n.(*pattern.Binary)
		if !ok {
			return n
		}
		kind := chainKind(b.Op)
		operands, ops := flattenChain(b, kind)
		for i, o := range operands {
			operands[i] = rec(o) // optimize below the chain first
		}
		if b.Op == pattern.OpChoice {
			if deduped := dedupOperands(operands); len(deduped) < len(operands) {
				steps = append(steps, Step{
					Law:     fmt.Sprintf("dropped %d duplicate choice operand(s)", len(operands)-len(deduped)),
					Theorem: "idempotence (derived from Definition 4)",
				})
				operands = deduped
				ops = ops[:len(operands)-1]
				if len(operands) == 1 {
					return operands[0]
				}
			}
		}
		if len(operands) < 3 {
			// A 2-operand "chain" has a single bracketing; for commutative
			// ops, ordering the cheaper operand left still helps the joins'
			// inner loop but not the estimate; keep the input shape.
			return &pattern.Binary{Op: b.Op, Left: operands[0], Right: operands[len(operands)-1]}
		}
		var rebuilt pattern.Node
		var step Step
		if b.Op.Commutative() {
			rebuilt, step = rebuildCommutative(b.Op, operands, est)
		} else {
			rebuilt, step = rebuildDP(operands, ops, est)
		}
		if step.Law != "" {
			steps = append(steps, step)
		}
		return rebuilt
	}
	return rec(pattern.Clone(p)), steps
}

// flattenChain collects the maximal same-kind chain rooted at b into its
// operand list and the operator sequence between adjacent operands.
func flattenChain(b *pattern.Binary, kind int) (operands []pattern.Node, ops []pattern.Op) {
	var rec func(n pattern.Node)
	rec = func(n pattern.Node) {
		if nb, ok := n.(*pattern.Binary); ok && chainKind(nb.Op) == kind {
			rec(nb.Left)
			ops = append(ops, nb.Op)
			rec(nb.Right)
			return
		}
		operands = append(operands, n)
	}
	rec(b)
	return operands, ops
}

// rebuildDP chooses the cheapest bracketing of a non-commutative ⊙/≺ chain
// by interval dynamic programming (the matrix-chain pattern). Operand order
// and the operator sequence are fixed; Theorems 2 and 4 license every
// bracketing.
func rebuildDP(operands []pattern.Node, ops []pattern.Op, est *Estimator) (pattern.Node, Step) {
	n := len(operands)
	type cell struct {
		est   Estimate
		split int
	}
	dp := make([][]cell, n)
	for i := range dp {
		dp[i] = make([]cell, n)
		dp[i][i] = cell{est: est.Estimate(operands[i])}
	}
	for span := 1; span < n; span++ {
		for i := 0; i+span < n; i++ {
			j := i + span
			best := cell{est: Estimate{Cost: math.Inf(1)}}
			for k := i; k < j; k++ {
				combined := est.Combine(ops[k], dp[i][k].est, dp[k+1][j].est)
				if combined.Cost < best.est.Cost {
					best = cell{est: combined, split: k}
				}
			}
			dp[i][j] = best
		}
	}
	var build func(i, j int) pattern.Node
	build = func(i, j int) pattern.Node {
		if i == j {
			return operands[i]
		}
		k := dp[i][j].split
		return &pattern.Binary{Op: ops[k], Left: build(i, k), Right: build(k+1, j)}
	}
	out := build(0, n-1)
	return out, Step{
		Law:     fmt.Sprintf("re-bracketed %d-operand %s chain", n, ops[0].Name()),
		Theorem: "Theorems 2, 4",
	}
}

// dedupOperands removes structurally equal duplicates from a ⊗ chain's
// operand list (the derived idempotence law: incL(p ⊗ p) = incL(p)).
// First occurrences are kept in order.
func dedupOperands(operands []pattern.Node) []pattern.Node {
	out := make([]pattern.Node, 0, len(operands))
	for _, o := range operands {
		dup := false
		for _, kept := range out {
			if pattern.Equal(o, kept) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, o)
		}
	}
	return out
}

// rebuildCommutative reorders a ⊗ or ⊕ chain smallest-estimate first and
// rebuilds it left-deep, keeping intermediate results small (greedy; exact
// ordering is a join-ordering problem). Reordering is licensed by Theorem 3,
// re-bracketing by Theorem 2.
func rebuildCommutative(op pattern.Op, operands []pattern.Node, est *Estimator) (pattern.Node, Step) {
	type ranked struct {
		node pattern.Node
		est  Estimate
		pos  int
	}
	rs := make([]ranked, len(operands))
	for i, o := range operands {
		rs[i] = ranked{node: o, est: est.Estimate(o), pos: i}
	}
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].est.Card != rs[j].est.Card {
			return rs[i].est.Card < rs[j].est.Card
		}
		return rs[i].pos < rs[j].pos
	})
	acc := rs[0].node
	for _, r := range rs[1:] {
		acc = &pattern.Binary{Op: op, Left: acc, Right: r.node}
	}
	return acc, Step{
		Law:     fmt.Sprintf("reordered %d-operand %s chain", len(operands), op.Name()),
		Theorem: "Theorems 2, 3",
	}
}

// Canonicalize rewrites p into a canonical representative of its
// syntactic-equivalence class under associativity (Theorem 2) and
// commutativity (Theorem 3): associative chains are flattened and rebuilt
// left-deep, and the operand lists of commutative chains are sorted by
// their printed form. Patterns equal under those laws canonicalize
// identically (Theorem 4/5 equalities are not normalized). It delegates to
// pattern.Canonical, which also backs the query service's cache keys.
func Canonicalize(p pattern.Node) pattern.Node {
	return pattern.Canonical(p)
}

// EquivalentModuloAC reports whether two patterns are provably equivalent
// using associativity (Theorem 2) and commutativity (Theorem 3) alone: both
// canonicalize to the same tree. It is sound but incomplete — equivalences
// that need Theorem 4, Theorem 5 or Definition 4 reasoning (e.g.
// distributed vs. factored forms) are not detected.
func EquivalentModuloAC(p, q pattern.Node) bool {
	return pattern.Equal(Canonicalize(p), Canonicalize(q))
}
