package rewrite

import (
	"testing"

	"wlq/internal/core/pattern"
)

func TestWithDefaultsFillsZeroValues(t *testing.T) {
	got := Selectivities{Sequential: 0.9, SequentialSource: SelectivityMeasured}.withDefaults()
	m := ModelSelectivities()
	if got.Sequential != 0.9 || got.SequentialSource != SelectivityMeasured {
		t.Fatalf("measured field overwritten: %+v", got)
	}
	if got.Guard != m.Guard || got.Consecutive != m.Consecutive || got.Parallel != m.Parallel {
		t.Fatalf("zero fields not defaulted: %+v", got)
	}
	if got.GuardSource != SelectivityAssumed || got.ConsecutiveSource != SelectivityAssumed ||
		got.ParallelSource != SelectivityAssumed {
		t.Fatalf("defaulted fields not tagged assumed: %+v", got)
	}
}

func TestForOp(t *testing.T) {
	sel := ModelSelectivities()
	sel.Sequential, sel.SequentialSource = 0.8, SelectivityMeasured
	if v, src := sel.ForOp(pattern.OpSequential); v != 0.8 || src != SelectivityMeasured {
		t.Fatalf("sequential: %v/%s", v, src)
	}
	if v, src := sel.ForOp(pattern.OpConsecutive); v != sel.Consecutive || src != SelectivityAssumed {
		t.Fatalf("consecutive: %v/%s", v, src)
	}
	// Choice's output is n1+n2 exactly — no selectivity to report.
	if v, src := sel.ForOp(pattern.OpChoice); v != 0 || src != "" {
		t.Fatalf("choice: %v/%q, want 0/\"\"", v, src)
	}
}

func TestMeasured(t *testing.T) {
	if ModelSelectivities().Measured() {
		t.Fatal("model constants must not read as measured")
	}
	sel := ModelSelectivities()
	sel.ParallelSource = SelectivityMeasured
	if !sel.Measured() {
		t.Fatal("one measured source must flip Measured()")
	}
}

func TestEstimatorWithScalesCardinality(t *testing.T) {
	stats := UniformStats{PerActivity: 100, Instances: 10}
	hi := NewEstimatorWith(stats, Selectivities{Sequential: 1.0, SequentialSource: SelectivityMeasured})
	lo := NewEstimator(stats) // assumed 0.25
	p := pattern.MustParse("A -> B")
	if h, l := hi.Estimate(p).Card, lo.Estimate(p).Card; h != 4*l {
		t.Fatalf("sequential card with sel 1.0 = %g, want 4x the 0.25-model %g", h, l)
	}
}

// skewStats gives each activity its own per-instance frequency, so tests can
// place a composite sub-pattern's estimated cardinality between two atoms'.
type skewStats struct {
	counts map[string]int
	inst   int
}

func (s skewStats) ActivityCount(act string) int { return s.counts[act] }
func (s skewStats) TotalRecords() int {
	total := 0
	for _, n := range s.counts {
		total += n
	}
	return total
}
func (s skewStats) WIDs() []uint64 {
	wids := make([]uint64, s.inst)
	for i := range wids {
		wids[i] = uint64(i + 1)
	}
	return wids
}

// TestOptimizeWithPlanFlip pins the tentpole behavior: the same query over
// the same statistics yields different plans under assumed vs measured
// selectivities. The ⊕ chain is reordered smallest-card first; (A -> B)'s
// card is sel·16 per instance, so it sorts between the E (card 3) and F
// (card 5) atoms under the 0.25 constant but after both under a measured
// selectivity of 1.0, moving the join against the composite operand last.
func TestOptimizeWithPlanFlip(t *testing.T) {
	stats := skewStats{
		counts: map[string]int{"A": 40, "B": 40, "E": 30, "F": 50},
		inst:   10,
	}
	q := pattern.MustParse("E & (A -> B) & F")

	static, _ := Optimize(q, stats)
	adaptive, _ := OptimizeWith(q, stats, Selectivities{
		Sequential:       1.0,
		SequentialSource: SelectivityMeasured,
	})

	wantStatic := pattern.MustParse("(E & (A -> B)) & F")
	wantAdaptive := pattern.MustParse("(E & F) & (A -> B)")
	if !pattern.Equal(static, wantStatic) {
		t.Errorf("static plan = %q, want %q", static, wantStatic)
	}
	if !pattern.Equal(adaptive, wantAdaptive) {
		t.Errorf("adaptive plan = %q, want %q", adaptive, wantAdaptive)
	}
	if pattern.Equal(static, adaptive) {
		t.Fatal("measured selectivities did not change the plan")
	}
	// Both plans are AC-equivalent — same answers, different evaluation order.
	if !EquivalentModuloAC(static, adaptive) {
		t.Fatal("plans must stay equivalent modulo Theorems 2-3")
	}
}

func TestExplainWithReportsSelectivities(t *testing.T) {
	stats := UniformStats{}
	sel := ModelSelectivities()
	sel.Sequential, sel.SequentialSource = 0.9, SelectivityMeasured
	_, tr := ExplainWith(pattern.MustParse("A -> B"), stats, sel)
	if tr.Selectivities.Sequential != 0.9 || tr.Selectivities.SequentialSource != SelectivityMeasured {
		t.Fatalf("trace selectivities = %+v", tr.Selectivities)
	}
	if !tr.Selectivities.Measured() {
		t.Fatal("trace must read as adaptive")
	}
	_, static := Explain(pattern.MustParse("A -> B"), stats)
	if static.Selectivities.Measured() {
		t.Fatal("default Explain must report assumed selectivities")
	}
}
