package rewrite

import (
	"math/rand"
	"strings"
	"testing"

	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
)

func TestChoiceIdempotentLaw(t *testing.T) {
	laws := DerivedLaws()
	if len(laws) != 1 || laws[0].Name != "idempotent(⊗)" {
		t.Fatalf("DerivedLaws = %v", laws)
	}
	law := laws[0]

	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		p := randomPattern(rng, 3)
		lhs := law.LHS(p, nil, nil)
		rhs, ok := law.Apply(lhs)
		if !ok {
			t.Fatalf("idempotence did not fire on %s", lhs)
		}
		if !pattern.Equal(rhs, p) {
			t.Fatalf("p ⊗ p rewrote to %s, want %s", rhs, p)
		}
		checkEquivalent(t, randomLog(t, rng), lhs, rhs, law.Name)
	}

	// Must not fire on distinct operands.
	if _, ok := law.Apply(pattern.MustParse("A | B")); ok {
		t.Error("idempotence fired on A | B")
	}
	if _, ok := law.Apply(pattern.MustParse("A & A")); ok {
		t.Error("idempotence fired on A & A (parallel is NOT idempotent)")
	}
}

// TestParallelNotIdempotent documents why ⊕ has no idempotence law: A ⊕ A
// requires two distinct A records, so incL(A ⊕ A) ≠ incL(A) in general.
func TestParallelNotIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	foundCounterexample := false
	for trial := 0; trial < 50 && !foundCounterexample; trial++ {
		l := randomLog(t, rng)
		ix := eval.NewIndex(l)
		a := eval.EvalSet(ix, pattern.MustParse("A"))
		aa := eval.EvalSet(ix, pattern.MustParse("A & A"))
		if !a.Equal(aa) {
			foundCounterexample = true
		}
	}
	if !foundCounterexample {
		t.Error("never saw incL(A) != incL(A & A); generator too weak?")
	}
}

func TestOptimizerDropsDuplicateChoiceOperands(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{"A | A", "A"},
		{"A | B | A", "A | B"},
		{"(X -> Y) | (X -> Y)", "X -> Y"},
		{"A | A | A | A", "A"},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			out, ex := Optimize(pattern.MustParse(tt.in), UniformStats{})
			want := pattern.MustParse(tt.want)
			if !pattern.Equal(out, want) {
				t.Errorf("Optimize(%s) = %s, want %s (steps %v)", tt.in, out, want, ex.Steps)
			}
			hasNote := false
			for _, s := range ex.Steps {
				if strings.Contains(s, "duplicate choice") {
					hasNote = true
				}
			}
			if !hasNote {
				t.Errorf("no dedup note in %v", ex.Steps)
			}
		})
	}
}

func TestOptimizerKeepsParallelDuplicates(t *testing.T) {
	out, _ := Optimize(pattern.MustParse("A & A"), UniformStats{})
	if !pattern.Equal(out, pattern.MustParse("A & A")) {
		t.Errorf("A & A rewrote to %s (parallel must keep duplicates)", out)
	}
	out, _ = Optimize(pattern.MustParse("A & A & A"), UniformStats{})
	if pattern.Operators(out) != 2 {
		t.Errorf("A & A & A lost operands: %s", out)
	}
}
