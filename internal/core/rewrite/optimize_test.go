package rewrite

import (
	"math/rand"
	"strings"
	"testing"

	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
)

func TestEstimatorAtoms(t *testing.T) {
	stats := UniformStats{PerActivity: 100, Instances: 10, ActivityNames: 5}
	est := NewEstimator(stats)

	pos := est.Estimate(pattern.NewAtom("A"))
	if pos.Card != 10 { // 100 records over 10 instances
		t.Errorf("positive atom card = %g, want 10", pos.Card)
	}
	if pos.Atoms != 1 {
		t.Errorf("Atoms = %d", pos.Atoms)
	}

	neg := est.Estimate(pattern.NewNegAtom("A"))
	if neg.Card != 40 { // (500-100)/10
		t.Errorf("negated atom card = %g, want 40", neg.Card)
	}

	guarded := est.Estimate(pattern.MustParse("A[x>1]"))
	if guarded.Card >= pos.Card {
		t.Errorf("guard did not reduce cardinality: %g >= %g", guarded.Card, pos.Card)
	}
}

func TestEstimatorMonotonicInChildren(t *testing.T) {
	est := NewEstimator(UniformStats{})
	small := est.Estimate(pattern.MustParse("A -> B"))
	big := est.Estimate(pattern.MustParse("(A | !A) -> B"))
	if big.Cost <= small.Cost {
		t.Errorf("larger input should cost more: %g <= %g", big.Cost, small.Cost)
	}
}

func TestEstimatorChoiceVsParallelJoin(t *testing.T) {
	est := NewEstimator(UniformStats{})
	l := est.Estimate(pattern.MustParse("A -> B"))
	r := est.Estimate(pattern.MustParse("C -> D"))
	choice := est.Combine(pattern.OpChoice, l, r)
	parallel := est.Combine(pattern.OpParallel, l, r)
	// Lemma 1: ⊗ joins at n1·n2·min(k1,k2), ⊕ at n1·n2·(k1+k2); with k1=k2=2
	// the parallel join must be costlier.
	if parallel.Cost <= choice.Cost {
		t.Errorf("parallel %g should exceed choice %g", parallel.Cost, choice.Cost)
	}
}

func TestUniformStatsDefaults(t *testing.T) {
	var u UniformStats
	if u.ActivityCount("anything") != 100 {
		t.Errorf("default PerActivity = %d", u.ActivityCount("x"))
	}
	if u.TotalRecords() != 1000 {
		t.Errorf("default TotalRecords = %d", u.TotalRecords())
	}
	if len(u.WIDs()) != 10 {
		t.Errorf("default Instances = %d", len(u.WIDs()))
	}
}

func TestOptimizeFactorsChoices(t *testing.T) {
	p := pattern.MustParse("(A -> B) | (A -> C)")
	out, ex := Optimize(p, UniformStats{})
	want := pattern.MustParse("A -> (B | C)")
	if !pattern.Equal(out, want) {
		t.Errorf("Optimize = %s, want %s", out, want)
	}
	if ex.After > ex.Before {
		t.Errorf("cost increased: %g -> %g", ex.Before, ex.After)
	}
	if len(ex.Steps) == 0 || !strings.Contains(ex.Steps[0], "factored") {
		t.Errorf("Steps = %v", ex.Steps)
	}
	if !strings.Contains(ex.String(), "estimated cost") {
		t.Errorf("Explanation.String = %q", ex.String())
	}
}

func TestOptimizeRebracketsSkewedChain(t *testing.T) {
	// Rare -> (Common -> Common) ... with "Rare" tiny, bracketing the chain
	// so the rare operand joins early is cheaper. Build skewed stats.
	stats := skewedStats{counts: map[string]int{"R": 2, "X": 1000, "Y": 1000, "Z": 1000}}
	p := pattern.MustParse("X -> Y -> Z -> R") // left-deep: big joins first
	out, ex := Optimize(p, stats)
	est := NewEstimator(stats)
	if est.Cost(out) > est.Cost(p) {
		t.Errorf("optimizer increased cost: %g -> %g", est.Cost(p), est.Cost(out))
	}
	if ex.After > ex.Before {
		t.Errorf("explanation disagrees: %g -> %g", ex.Before, ex.After)
	}
}

// skewedStats is a Stats stub with per-activity counts.
type skewedStats struct {
	counts map[string]int
}

func (s skewedStats) ActivityCount(act string) int { return s.counts[act] }
func (s skewedStats) TotalRecords() int {
	total := 0
	for _, c := range s.counts {
		total += c
	}
	return total
}
func (s skewedStats) WIDs() []uint64 { return []uint64{1, 2, 3, 4, 5} }

// TestOptimizePreservesSemantics: the full optimizer pipeline never changes
// incL(p) (experiment E8's correctness half).
func TestOptimizePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 120; trial++ {
		p := randomPattern(rng, 4)
		l := randomLog(t, rng)
		ix := eval.NewIndex(l)
		out, ex := Optimize(p, ix)
		checkEquivalent(t, l, p, out, "Optimize")
		if ex.After > ex.Before+1e-9 {
			t.Fatalf("trial %d: optimizer increased estimated cost %g -> %g for %s",
				trial, ex.Before, ex.After, p)
		}
	}
}

func TestOptimizeLeavesAtomsAlone(t *testing.T) {
	p := pattern.NewAtom("A")
	out, ex := Optimize(p, UniformStats{})
	if !pattern.Equal(p, out) || len(ex.Steps) != 0 {
		t.Errorf("Optimize(atom) = %s, steps %v", out, ex.Steps)
	}
}

func TestCanonicalizeCommutative(t *testing.T) {
	a := pattern.MustParse("(C | A) | B")
	b := pattern.MustParse("B | (C | A)")
	c := pattern.MustParse("A | (B | C)")
	ca, cb, cc := Canonicalize(a), Canonicalize(b), Canonicalize(c)
	if !pattern.Equal(ca, cb) || !pattern.Equal(cb, cc) {
		t.Errorf("canonical forms differ: %s / %s / %s", ca, cb, cc)
	}
	want := pattern.MustParse("(A | B) | C")
	if !pattern.Equal(ca, want) {
		t.Errorf("canonical = %s, want %s", ca, want)
	}
}

func TestCanonicalizeNonCommutativePreservesOrder(t *testing.T) {
	a := pattern.MustParse("C -> (A -> B)")
	got := Canonicalize(a)
	want := pattern.MustParse("(C -> A) -> B")
	if !pattern.Equal(got, want) {
		t.Errorf("canonical = %s, want %s", got, want)
	}
	// Operand order must not be sorted for ≺.
	bad := pattern.MustParse("(A -> B) -> C")
	if pattern.Equal(got, bad) {
		t.Error("canonicalization reordered a sequential chain")
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		p := randomPattern(rng, 4)
		once := Canonicalize(p)
		twice := Canonicalize(once)
		if !pattern.Equal(once, twice) {
			t.Fatalf("not idempotent on %s: %s vs %s", p, once, twice)
		}
	}
}

// TestCanonicalizePreservesSemantics: canonicalization is itself built only
// from Theorems 2 and 3, so it must preserve incL.
func TestCanonicalizePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		p := randomPattern(rng, 4)
		checkEquivalent(t, randomLog(t, rng), p, Canonicalize(p), "Canonicalize")
	}
}

func TestEquivalentModuloAC(t *testing.T) {
	yes := [][2]string{
		{"A | B | C", "C | (B | A)"},
		{"A & (B & C)", "(C & B) & A"},
		{"A -> (B -> C)", "(A -> B) -> C"},
		{"(A | B) -> C", "(B | A) -> C"},
	}
	for _, pair := range yes {
		p, q := pattern.MustParse(pair[0]), pattern.MustParse(pair[1])
		if !EquivalentModuloAC(p, q) {
			t.Errorf("EquivalentModuloAC(%s, %s) = false", p, q)
		}
	}
	no := [][2]string{
		{"A -> B", "B -> A"},
		{"A . B", "A -> B"},
		{"A | B", "A & B"},
		// True equivalences beyond AC (documented incompleteness).
		{"A . (B -> C)", "(A . B) -> C"},        // Theorem 4
		{"(A -> B) | (A -> C)", "A -> (B | C)"}, // Theorem 5
	}
	for _, pair := range no {
		p, q := pattern.MustParse(pair[0]), pattern.MustParse(pair[1])
		if EquivalentModuloAC(p, q) {
			t.Errorf("EquivalentModuloAC(%s, %s) = true", p, q)
		}
	}
	// Soundness at scale: random commuted/rebracketed variants.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		p := randomPattern(rng, 4)
		variant := p
		for i := 0; i < 3; i++ {
			for _, op := range AllOps {
				if op.Commutative() {
					variant, _ = ApplyEverywhere(variant, commute(op))
				}
				variant, _ = ApplyEverywhere(variant, assocRight(op))
			}
		}
		if !EquivalentModuloAC(p, variant) {
			t.Fatalf("trial %d: AC variant not recognized:\n%s\n%s", trial, p, variant)
		}
	}
}
