package rewrite

import "wlq/internal/core/pattern"

// Trace is the machine-readable account of one optimizer run, for EXPLAIN
// surfaces (the CLI's -explain and the query service's /v1/explain): the
// input and output patterns with their full cost-model estimates, and the
// transformations applied. Explanation remains the compact human-readable
// form; Trace carries the numbers it summarizes.
type Trace struct {
	// Input is the pattern as written; Output the pattern the evaluator
	// will run (equal to Input when no rewrite fired).
	Input, Output pattern.Node
	// Before and After are the Lemma 1 estimates (cost, output
	// cardinality per instance, atom count) of Input and Output.
	Before, After Estimate
	// Steps names the transformations applied, in order (empty when the
	// optimizer left the pattern unchanged).
	Steps []string
	// Details carries one entry per applied law with its theorem citation
	// and the estimated cost bracket of the pass that applied it.
	Details []Step
	// Selectivities records the per-operator selectivities the run ranked
	// plans with, each tagged with its source (assumed constant or measured
	// from the statistics registry).
	Selectivities Selectivities
}

// Changed reports whether the optimizer produced a different pattern.
func (t Trace) Changed() bool { return !pattern.Equal(t.Input, t.Output) }

// Explain optimizes p exactly as Optimize does and returns the optimized
// pattern together with the full trace, using the model's assumed constants.
func Explain(p pattern.Node, stats Stats) (pattern.Node, Trace) {
	return ExplainWith(p, stats, ModelSelectivities())
}

// ExplainWith is Explain with explicit selectivities: the trace's estimates
// and optimization decisions all use sel, and the trace records which source
// (assumed or measured) supplied each operator's value.
func ExplainWith(p pattern.Node, stats Stats, sel Selectivities) (pattern.Node, Trace) {
	est := NewEstimatorWith(stats, sel)
	out, ex := OptimizeWith(p, stats, sel)
	return out, Trace{
		Input:         pattern.Clone(p),
		Output:        out,
		Before:        est.Estimate(p),
		After:         est.Estimate(out),
		Steps:         ex.Steps,
		Details:       ex.Details,
		Selectivities: est.Selectivities(),
	}
}

// Selectivities exposes the cost model's assumed selectivity constants —
// the fractions of the Lemma 1 worst case n1·n2 each operator is assumed
// to output, and the fraction of records assumed to pass one attribute
// guard. They are documented assumptions, not measurements: the paper's
// model has no histograms, so the estimator uses fixed textbook defaults
// (cf. Selinger). EXPLAIN output surfaces them so users can judge how much
// to trust a reported estimate.
type Selectivities struct {
	// Guard is the fraction of records passing one attribute guard.
	Guard float64
	// Consecutive, Sequential, Parallel are each operator's output
	// cardinality as a fraction of n1·n2. Choice has no constant: its
	// output is estimated as n1+n2 exactly.
	Consecutive float64
	Sequential  float64
	Parallel    float64

	// The *Source fields name where each value came from:
	// SelectivityAssumed (the model constant) or SelectivityMeasured (the
	// per-log statistics registry). An empty source reads as assumed.
	GuardSource       string
	ConsecutiveSource string
	SequentialSource  string
	ParallelSource    string
}

// Selectivity provenance labels.
const (
	// SelectivityAssumed marks a value taken from the model's constants.
	SelectivityAssumed = "assumed"
	// SelectivityMeasured marks a value derived from observed evaluations
	// via the statistics registry.
	SelectivityMeasured = "measured"
)

// ModelSelectivities returns the constants the estimator uses by default,
// every source tagged assumed.
func ModelSelectivities() Selectivities {
	return Selectivities{
		Guard:             guardSelectivity,
		Consecutive:       consecutiveSelectivity,
		Sequential:        sequentialSelectivity,
		Parallel:          parallelSelectivity,
		GuardSource:       SelectivityAssumed,
		ConsecutiveSource: SelectivityAssumed,
		SequentialSource:  SelectivityAssumed,
		ParallelSource:    SelectivityAssumed,
	}
}

// withDefaults fills zero-valued fields with the model constants so a
// partially-populated Selectivities (only some operators measured) is safe
// to rank plans with.
func (s Selectivities) withDefaults() Selectivities {
	m := ModelSelectivities()
	if s.Guard <= 0 {
		s.Guard, s.GuardSource = m.Guard, SelectivityAssumed
	}
	if s.Consecutive <= 0 {
		s.Consecutive, s.ConsecutiveSource = m.Consecutive, SelectivityAssumed
	}
	if s.Sequential <= 0 {
		s.Sequential, s.SequentialSource = m.Sequential, SelectivityAssumed
	}
	if s.Parallel <= 0 {
		s.Parallel, s.ParallelSource = m.Parallel, SelectivityAssumed
	}
	if s.GuardSource == "" {
		s.GuardSource = SelectivityAssumed
	}
	if s.ConsecutiveSource == "" {
		s.ConsecutiveSource = SelectivityAssumed
	}
	if s.SequentialSource == "" {
		s.SequentialSource = SelectivityAssumed
	}
	if s.ParallelSource == "" {
		s.ParallelSource = SelectivityAssumed
	}
	return s
}

// ForOp returns the selectivity and its source for one operator. Choice has
// no selectivity constant (its output is n1+n2 exactly); ForOp returns
// (0, "") for it and for unknown operators.
func (s Selectivities) ForOp(op pattern.Op) (float64, string) {
	s = s.withDefaults()
	switch op {
	case pattern.OpConsecutive:
		return s.Consecutive, s.ConsecutiveSource
	case pattern.OpSequential:
		return s.Sequential, s.SequentialSource
	case pattern.OpParallel:
		return s.Parallel, s.ParallelSource
	default:
		return 0, ""
	}
}

// Measured reports whether any value came from measurement rather than the
// model constants — i.e. whether a plan ranked with s is an adaptive plan.
func (s Selectivities) Measured() bool {
	return s.GuardSource == SelectivityMeasured ||
		s.ConsecutiveSource == SelectivityMeasured ||
		s.SequentialSource == SelectivityMeasured ||
		s.ParallelSource == SelectivityMeasured
}
