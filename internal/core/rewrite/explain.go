package rewrite

import "wlq/internal/core/pattern"

// Trace is the machine-readable account of one optimizer run, for EXPLAIN
// surfaces (the CLI's -explain and the query service's /v1/explain): the
// input and output patterns with their full cost-model estimates, and the
// transformations applied. Explanation remains the compact human-readable
// form; Trace carries the numbers it summarizes.
type Trace struct {
	// Input is the pattern as written; Output the pattern the evaluator
	// will run (equal to Input when no rewrite fired).
	Input, Output pattern.Node
	// Before and After are the Lemma 1 estimates (cost, output
	// cardinality per instance, atom count) of Input and Output.
	Before, After Estimate
	// Steps names the transformations applied, in order (empty when the
	// optimizer left the pattern unchanged).
	Steps []string
	// Details carries one entry per applied law with its theorem citation
	// and the estimated cost bracket of the pass that applied it.
	Details []Step
}

// Changed reports whether the optimizer produced a different pattern.
func (t Trace) Changed() bool { return !pattern.Equal(t.Input, t.Output) }

// Explain optimizes p exactly as Optimize does and returns the optimized
// pattern together with the full trace.
func Explain(p pattern.Node, stats Stats) (pattern.Node, Trace) {
	est := NewEstimator(stats)
	out, ex := Optimize(p, stats)
	return out, Trace{
		Input:   pattern.Clone(p),
		Output:  out,
		Before:  est.Estimate(p),
		After:   est.Estimate(out),
		Steps:   ex.Steps,
		Details: ex.Details,
	}
}

// Selectivities exposes the cost model's assumed selectivity constants —
// the fractions of the Lemma 1 worst case n1·n2 each operator is assumed
// to output, and the fraction of records assumed to pass one attribute
// guard. They are documented assumptions, not measurements: the paper's
// model has no histograms, so the estimator uses fixed textbook defaults
// (cf. Selinger). EXPLAIN output surfaces them so users can judge how much
// to trust a reported estimate.
type Selectivities struct {
	// Guard is the assumed fraction of records passing one attribute guard.
	Guard float64
	// Consecutive, Sequential, Parallel are each operator's assumed output
	// cardinality as a fraction of n1·n2. Choice has no constant: its
	// output is estimated as n1+n2 exactly.
	Consecutive float64
	Sequential  float64
	Parallel    float64
}

// ModelSelectivities returns the constants the estimator uses.
func ModelSelectivities() Selectivities {
	return Selectivities{
		Guard:       guardSelectivity,
		Consecutive: consecutiveSelectivity,
		Sequential:  sequentialSelectivity,
		Parallel:    parallelSelectivity,
	}
}
