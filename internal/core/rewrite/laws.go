// Package rewrite implements the algebraic layer of "Querying Workflow
// Logs": the equivalence laws of Theorems 2–5 as rewrite rules, a Lemma 1
// cost model over index statistics, and a cost-based optimizer that
// re-brackets associative chains and factors choices — the "basis for query
// optimization" the paper's Section 4 anticipates.
//
// Every transformation in this package preserves incL(p) exactly
// (Definition 5 equivalence); the property tests in laws_test.go verify
// this by evaluation over randomized logs.
package rewrite

import (
	"wlq/internal/core/pattern"
)

// Law is a named, directed equivalence: Apply attempts to transform the
// root of a pattern, reporting whether it matched. Each law corresponds to
// one direction of an equation in Theorems 2–5.
type Law struct {
	// Name identifies the law, e.g. "assoc-right(⊕)" or "distribute-left".
	Name string
	// Theorem cites the paper result the law comes from.
	Theorem string
	// Apply rewrites the root of p, returning the transformed pattern and
	// true, or p unchanged and false when the shape does not match.
	Apply func(p pattern.Node) (pattern.Node, bool)
	// LHS assembles, from three sub-patterns, a pattern whose root matches
	// the law's shape (the equation's left-hand side). Laws over fewer than
	// three sub-patterns ignore the surplus arguments. Test harnesses use
	// it to exercise every law deterministically.
	LHS func(p1, p2, p3 pattern.Node) pattern.Node
}

// binary returns p's root as a Binary with the given operator, or nil.
func binary(p pattern.Node, op pattern.Op) *pattern.Binary {
	b, ok := p.(*pattern.Binary)
	if !ok || b.Op != op {
		return nil
	}
	return b
}

// assocRight builds the Theorem 2 law (p1 θ p2) θ p3 → p1 θ (p2 θ p3).
func assocRight(op pattern.Op) Law {
	return Law{
		Name:    "assoc-right(" + op.Symbol() + ")",
		Theorem: "Theorem 2",
		LHS: func(p1, p2, p3 pattern.Node) pattern.Node {
			return &pattern.Binary{Op: op, Left: &pattern.Binary{Op: op, Left: p1, Right: p2}, Right: p3}
		},
		Apply: func(p pattern.Node) (pattern.Node, bool) {
			root := binary(p, op)
			if root == nil {
				return p, false
			}
			left := binary(root.Left, op)
			if left == nil {
				return p, false
			}
			return &pattern.Binary{
				Op:   op,
				Left: left.Left,
				Right: &pattern.Binary{
					Op: op, Left: left.Right, Right: root.Right,
				},
			}, true
		},
	}
}

// assocLeft builds the Theorem 2 law p1 θ (p2 θ p3) → (p1 θ p2) θ p3.
func assocLeft(op pattern.Op) Law {
	return Law{
		Name:    "assoc-left(" + op.Symbol() + ")",
		Theorem: "Theorem 2",
		LHS: func(p1, p2, p3 pattern.Node) pattern.Node {
			return &pattern.Binary{Op: op, Left: p1, Right: &pattern.Binary{Op: op, Left: p2, Right: p3}}
		},
		Apply: func(p pattern.Node) (pattern.Node, bool) {
			root := binary(p, op)
			if root == nil {
				return p, false
			}
			right := binary(root.Right, op)
			if right == nil {
				return p, false
			}
			return &pattern.Binary{
				Op: op,
				Left: &pattern.Binary{
					Op: op, Left: root.Left, Right: right.Left,
				},
				Right: right.Right,
			}, true
		},
	}
}

// commute builds the Theorem 3 law p1 θ p2 → p2 θ p1 for θ ∈ {⊗, ⊕}.
func commute(op pattern.Op) Law {
	return Law{
		Name:    "commute(" + op.Symbol() + ")",
		Theorem: "Theorem 3",
		LHS: func(p1, p2, _ pattern.Node) pattern.Node {
			return &pattern.Binary{Op: op, Left: p1, Right: p2}
		},
		Apply: func(p pattern.Node) (pattern.Node, bool) {
			root := binary(p, op)
			if root == nil {
				return p, false
			}
			return &pattern.Binary{Op: op, Left: root.Right, Right: root.Left}, true
		},
	}
}

// mixedShiftLeft builds the Theorem 4 laws
//
//	p1 ⊙ (p2 ≺ p3) → (p1 ⊙ p2) ≺ p3   (outer=⊙, inner=≺)
//	p1 ≺ (p2 ⊙ p3) → (p1 ≺ p2) ⊙ p3   (outer=≺, inner=⊙)
func mixedShiftLeft(outer, inner pattern.Op) Law {
	return Law{
		Name:    "mixed-shift-left(" + outer.Symbol() + "," + inner.Symbol() + ")",
		Theorem: "Theorem 4",
		LHS: func(p1, p2, p3 pattern.Node) pattern.Node {
			return &pattern.Binary{Op: outer, Left: p1, Right: &pattern.Binary{Op: inner, Left: p2, Right: p3}}
		},
		Apply: func(p pattern.Node) (pattern.Node, bool) {
			root := binary(p, outer)
			if root == nil {
				return p, false
			}
			right := binary(root.Right, inner)
			if right == nil {
				return p, false
			}
			return &pattern.Binary{
				Op: inner,
				Left: &pattern.Binary{
					Op: outer, Left: root.Left, Right: right.Left,
				},
				Right: right.Right,
			}, true
		},
	}
}

// mixedShiftRight builds the inverse Theorem 4 direction
// (p1 θ1 p2) θ2 p3 → p1 θ1 (p2 θ2 p3) for {θ1, θ2} = {⊙, ≺}.
func mixedShiftRight(inner, outer pattern.Op) Law {
	return Law{
		Name:    "mixed-shift-right(" + inner.Symbol() + "," + outer.Symbol() + ")",
		Theorem: "Theorem 4",
		LHS: func(p1, p2, p3 pattern.Node) pattern.Node {
			return &pattern.Binary{Op: outer, Left: &pattern.Binary{Op: inner, Left: p1, Right: p2}, Right: p3}
		},
		Apply: func(p pattern.Node) (pattern.Node, bool) {
			root := binary(p, outer)
			if root == nil {
				return p, false
			}
			left := binary(root.Left, inner)
			if left == nil {
				return p, false
			}
			return &pattern.Binary{
				Op:   inner,
				Left: left.Left,
				Right: &pattern.Binary{
					Op: outer, Left: left.Right, Right: root.Right,
				},
			}, true
		},
	}
}

// distributeLeft builds the Theorem 5 law
// p1 θ (p2 ⊗ p3) → (p1 θ p2) ⊗ (p1 θ p3).
func distributeLeft(op pattern.Op) Law {
	return Law{
		Name:    "distribute-left(" + op.Symbol() + ")",
		Theorem: "Theorem 5",
		LHS: func(p1, p2, p3 pattern.Node) pattern.Node {
			return &pattern.Binary{Op: op, Left: p1, Right: &pattern.Binary{Op: pattern.OpChoice, Left: p2, Right: p3}}
		},
		Apply: func(p pattern.Node) (pattern.Node, bool) {
			root := binary(p, op)
			if root == nil {
				return p, false
			}
			choice := binary(root.Right, pattern.OpChoice)
			if choice == nil {
				return p, false
			}
			return &pattern.Binary{
				Op: pattern.OpChoice,
				Left: &pattern.Binary{
					Op: op, Left: root.Left, Right: choice.Left,
				},
				Right: &pattern.Binary{
					Op: op, Left: pattern.Clone(root.Left), Right: choice.Right,
				},
			}, true
		},
	}
}

// distributeRight builds the Theorem 5 law
// (p1 ⊗ p2) θ p3 → (p1 θ p3) ⊗ (p2 θ p3).
func distributeRight(op pattern.Op) Law {
	return Law{
		Name:    "distribute-right(" + op.Symbol() + ")",
		Theorem: "Theorem 5",
		LHS: func(p1, p2, p3 pattern.Node) pattern.Node {
			return &pattern.Binary{Op: op, Left: &pattern.Binary{Op: pattern.OpChoice, Left: p1, Right: p2}, Right: p3}
		},
		Apply: func(p pattern.Node) (pattern.Node, bool) {
			root := binary(p, op)
			if root == nil {
				return p, false
			}
			choice := binary(root.Left, pattern.OpChoice)
			if choice == nil {
				return p, false
			}
			return &pattern.Binary{
				Op: pattern.OpChoice,
				Left: &pattern.Binary{
					Op: op, Left: choice.Left, Right: root.Right,
				},
				Right: &pattern.Binary{
					Op: op, Left: choice.Right, Right: pattern.Clone(root.Right),
				},
			}, true
		},
	}
}

// factorLeft is the inverse of distributeLeft:
// (p1 θ p2) ⊗ (p1' θ p3) → p1 θ (p2 ⊗ p3) when p1 and p1' are structurally
// equal. Factoring shrinks the pattern, letting the evaluator compute the
// shared operand's incident set once.
func factorLeft(op pattern.Op) Law {
	return Law{
		Name:    "factor-left(" + op.Symbol() + ")",
		Theorem: "Theorem 5 (inverse)",
		LHS: func(p1, p2, p3 pattern.Node) pattern.Node {
			return &pattern.Binary{
				Op:    pattern.OpChoice,
				Left:  &pattern.Binary{Op: op, Left: p1, Right: p2},
				Right: &pattern.Binary{Op: op, Left: pattern.Clone(p1), Right: p3},
			}
		},
		Apply: func(p pattern.Node) (pattern.Node, bool) {
			root := binary(p, pattern.OpChoice)
			if root == nil {
				return p, false
			}
			l := binary(root.Left, op)
			r := binary(root.Right, op)
			if l == nil || r == nil || !pattern.Equal(l.Left, r.Left) {
				return p, false
			}
			return &pattern.Binary{
				Op:   op,
				Left: l.Left,
				Right: &pattern.Binary{
					Op: pattern.OpChoice, Left: l.Right, Right: r.Right,
				},
			}, true
		},
	}
}

// factorRight is the inverse of distributeRight:
// (p1 θ p3) ⊗ (p2 θ p3') → (p1 ⊗ p2) θ p3 when p3 ≡ p3' structurally.
func factorRight(op pattern.Op) Law {
	return Law{
		Name:    "factor-right(" + op.Symbol() + ")",
		Theorem: "Theorem 5 (inverse)",
		LHS: func(p1, p2, p3 pattern.Node) pattern.Node {
			return &pattern.Binary{
				Op:    pattern.OpChoice,
				Left:  &pattern.Binary{Op: op, Left: p1, Right: p3},
				Right: &pattern.Binary{Op: op, Left: p2, Right: pattern.Clone(p3)},
			}
		},
		Apply: func(p pattern.Node) (pattern.Node, bool) {
			root := binary(p, pattern.OpChoice)
			if root == nil {
				return p, false
			}
			l := binary(root.Left, op)
			r := binary(root.Right, op)
			if l == nil || r == nil || !pattern.Equal(l.Right, r.Right) {
				return p, false
			}
			return &pattern.Binary{
				Op: op,
				Left: &pattern.Binary{
					Op: pattern.OpChoice, Left: l.Left, Right: r.Left,
				},
				Right: l.Right,
			}, true
		},
	}
}

// AllOps lists the four operators.
var AllOps = []pattern.Op{
	pattern.OpConsecutive, pattern.OpSequential, pattern.OpChoice, pattern.OpParallel,
}

// Laws returns every law family of Theorems 2–5, both directions where the
// equations are directed.
func Laws() []Law {
	var laws []Law
	for _, op := range AllOps {
		laws = append(laws, assocRight(op), assocLeft(op))
	}
	laws = append(laws,
		commute(pattern.OpChoice),
		commute(pattern.OpParallel),
		mixedShiftLeft(pattern.OpConsecutive, pattern.OpSequential),
		mixedShiftLeft(pattern.OpSequential, pattern.OpConsecutive),
		mixedShiftRight(pattern.OpConsecutive, pattern.OpSequential),
		mixedShiftRight(pattern.OpSequential, pattern.OpConsecutive),
	)
	for _, op := range AllOps {
		laws = append(laws, distributeLeft(op), distributeRight(op))
		if op != pattern.OpChoice { // factoring ⊗ over ⊗ is a no-op shape
			laws = append(laws, factorLeft(op), factorRight(op))
		}
	}
	return laws
}

// ApplyEverywhere applies the law once at every matching node, bottom-up,
// and reports how many times it fired. The input is not modified.
func ApplyEverywhere(p pattern.Node, law Law) (pattern.Node, int) {
	fired := 0
	var rec func(pattern.Node) pattern.Node
	rec = func(n pattern.Node) pattern.Node {
		if b, ok := n.(*pattern.Binary); ok {
			n = &pattern.Binary{Op: b.Op, Left: rec(b.Left), Right: rec(b.Right)}
		}
		if out, ok := law.Apply(n); ok {
			fired++
			return out
		}
		return n
	}
	return rec(pattern.Clone(p)), fired
}
