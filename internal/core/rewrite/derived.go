package rewrite

import (
	"wlq/internal/core/pattern"
)

// DerivedLaws returns equivalences that follow from Definition 4 directly
// rather than from a numbered theorem of the paper. They are kept separate
// from Laws() so the E7 experiment reports exactly the paper's 28 law
// instances; the optimizer uses both sets.
func DerivedLaws() []Law {
	return []Law{choiceIdempotent()}
}

// choiceIdempotent is p ⊗ p → p: incL(p1 ⊗ p2) is the set union
// incL(p1) ∪ incL(p2) (Definition 4, choice case), so a choice between two
// structurally equal patterns is the pattern itself.
func choiceIdempotent() Law {
	return Law{
		Name:    "idempotent(⊗)",
		Theorem: "Definition 4 (derived)",
		LHS: func(p1, _, _ pattern.Node) pattern.Node {
			return &pattern.Binary{
				Op: pattern.OpChoice, Left: p1, Right: pattern.Clone(p1),
			}
		},
		Apply: func(p pattern.Node) (pattern.Node, bool) {
			root := binary(p, pattern.OpChoice)
			if root == nil || !pattern.Equal(root.Left, root.Right) {
				return p, false
			}
			return root.Left, true
		},
	}
}
