package rewrite

import (
	"math/rand"
	"strings"
	"testing"

	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
	"wlq/internal/wlog"
)

// randomLog builds a small random log: 1-3 instances, alphabet {A,B,C},
// 3-9 activity records per log.
func randomLog(t testing.TB, rng *rand.Rand) *wlog.Log {
	t.Helper()
	alphabet := []string{"A", "B", "C"}
	var b wlog.Builder
	numInst := 1 + rng.Intn(3)
	wids := make([]uint64, numInst)
	for i := range wids {
		wids[i] = b.Start()
	}
	for step := 0; step < 3+rng.Intn(7); step++ {
		wid := wids[rng.Intn(numInst)]
		if err := b.Emit(wid, alphabet[rng.Intn(len(alphabet))], nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	return b.MustBuild()
}

func randomPattern(rng *rand.Rand, depth int) pattern.Node {
	if depth <= 1 || rng.Intn(3) == 0 {
		name := []string{"A", "B", "C"}[rng.Intn(3)]
		if rng.Intn(6) == 0 {
			return pattern.NewNegAtom(name)
		}
		return pattern.NewAtom(name)
	}
	return &pattern.Binary{
		Op:    AllOps[rng.Intn(len(AllOps))],
		Left:  randomPattern(rng, depth-1),
		Right: randomPattern(rng, depth-1),
	}
}

// checkEquivalent asserts incL(p) = incL(q) on the given log.
func checkEquivalent(t *testing.T, l *wlog.Log, p, q pattern.Node, context string) {
	t.Helper()
	ix := eval.NewIndex(l)
	sp := eval.EvalSet(ix, p)
	sq := eval.EvalSet(ix, q)
	if !sp.Equal(sq) {
		t.Fatalf("%s: %s and %s differ:\n  %s\n  %s\nlog:\n%s",
			context, p, q, sp, sq, l)
	}
}

// TestLawsPreserveSemantics is experiment E7: every law of Theorems 2–5,
// applied to randomized sub-patterns over randomized logs, leaves incL
// unchanged.
func TestLawsPreserveSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	laws := Laws()
	if len(laws) != 8+2+4+8+6 {
		t.Fatalf("law inventory = %d, want 28", len(laws))
	}
	for _, law := range laws {
		law := law
		t.Run(law.Name, func(t *testing.T) {
			fired := 0
			for trial := 0; trial < 40; trial++ {
				p1 := randomPattern(rng, 2)
				p2 := randomPattern(rng, 2)
				p3 := randomPattern(rng, 2)
				lhs := law.LHS(p1, p2, p3)
				rhs, applied := law.Apply(lhs)
				if !applied {
					t.Fatalf("law %s did not fire on its own shape %s", law.Name, lhs)
				}
				fired++
				checkEquivalent(t, randomLog(t, rng), lhs, rhs, law.Name)
			}
			if fired == 0 {
				t.Fatalf("law %s never fired", law.Name)
			}
		})
	}
}

// TestLawsDoNotFireOnWrongShapes: each law must decline a bare atom.
func TestLawsDoNotFireOnWrongShapes(t *testing.T) {
	atom := pattern.NewAtom("A")
	for _, law := range Laws() {
		if _, ok := law.Apply(atom); ok {
			t.Errorf("law %s fired on an atom", law.Name)
		}
	}
}

func TestLawMetadata(t *testing.T) {
	for _, law := range Laws() {
		if law.Name == "" || law.Theorem == "" {
			t.Errorf("law with missing metadata: %+v", law)
		}
		if !strings.HasPrefix(law.Theorem, "Theorem") {
			t.Errorf("law %s cites %q", law.Name, law.Theorem)
		}
	}
}

func TestApplyEverywhere(t *testing.T) {
	// Two factorable choices in one tree.
	p := pattern.MustParse("((A -> B) | (A -> C)) & ((X . Y) | (X . Z))")
	lawSeq := factorLeft(pattern.OpSequential)
	out, n := ApplyEverywhere(p, lawSeq)
	if n != 1 {
		t.Fatalf("factor-left(≺) fired %d times, want 1", n)
	}
	lawCons := factorLeft(pattern.OpConsecutive)
	out, n = ApplyEverywhere(out, lawCons)
	if n != 1 {
		t.Fatalf("factor-left(⊙) fired %d times, want 1", n)
	}
	want := pattern.MustParse("(A -> (B | C)) & (X . (Y | Z))")
	if !pattern.Equal(out, want) {
		t.Errorf("ApplyEverywhere = %s, want %s", out, want)
	}
	// Original must be untouched.
	if p.String() != "(A -> B | A -> C) & (X . Y | X . Z)" {
		t.Errorf("input mutated: %s", p)
	}
}

// TestMixedChainTheorem4 exercises the specific Theorem 4 statements on a
// fixed log where all bracketings are observable.
func TestMixedChainTheorem4(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		l := randomLog(t, rng)
		pairs := [][2]string{
			{"A . (B -> C)", "(A . B) -> C"},
			{"A -> (B . C)", "(A -> B) . C"},
		}
		for _, pair := range pairs {
			checkEquivalent(t, l,
				pattern.MustParse(pair[0]), pattern.MustParse(pair[1]), "Theorem 4")
		}
	}
}
