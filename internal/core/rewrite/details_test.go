package rewrite

import (
	"strings"
	"testing"

	"wlq/internal/core/pattern"
)

// TestDetailsFactoringCitesTheorem5: the per-law step record carries the
// theorem citation and a non-increasing cost bracket.
func TestDetailsFactoringCitesTheorem5(t *testing.T) {
	_, ex := Optimize(pattern.MustParse("(A -> B) | (A -> C)"), UniformStats{})
	if len(ex.Details) == 0 {
		t.Fatal("no detail steps for a factoring rewrite")
	}
	found := false
	for _, st := range ex.Details {
		if st.Theorem == "Theorem 5" && strings.Contains(st.Law, "factored") {
			found = true
			if st.After > st.Before {
				t.Errorf("factoring step cost increased: %g -> %g", st.Before, st.After)
			}
		}
		if st.Law == "" || st.Theorem == "" {
			t.Errorf("incomplete step: %+v", st)
		}
	}
	if !found {
		t.Errorf("no Theorem 5 factoring step in %+v", ex.Details)
	}
}

func TestDetailsDedupCitesIdempotence(t *testing.T) {
	_, ex := Optimize(pattern.MustParse("(A -> B) | (A -> B)"), UniformStats{})
	found := false
	for _, st := range ex.Details {
		if strings.Contains(st.Theorem, "idempotence") {
			found = true
		}
	}
	if !found {
		t.Errorf("no idempotence step for a duplicate choice, got %+v", ex.Details)
	}
}

func TestDetailsRebracketCitesTheorems(t *testing.T) {
	// A skewed chain forces the DP pass to move the cheap operand early.
	stats := skewedStats{counts: map[string]int{"R": 2, "X": 1000, "Y": 1000, "Z": 1000}}
	_, exSkew := Optimize(pattern.MustParse("X -> Y -> Z -> R"), stats)
	found := false
	for _, st := range exSkew.Details {
		if strings.Contains(st.Law, "re-bracketed") {
			found = true
			if !strings.Contains(st.Theorem, "Theorem") {
				t.Errorf("re-bracket step lacks a theorem citation: %+v", st)
			}
			if st.After > st.Before {
				t.Errorf("re-bracket pass cost increased: %g -> %g", st.Before, st.After)
			}
		}
	}
	if !found {
		t.Errorf("no re-bracket step for a skewed chain, got %+v", exSkew.Details)
	}
}

// TestDetailsEmptyWhenNoChange: a pattern the optimizer leaves alone yields
// no detail steps (an empty Details, not fabricated entries).
func TestDetailsEmptyWhenNoChange(t *testing.T) {
	_, ex := Optimize(pattern.MustParse("A"), UniformStats{})
	if len(ex.Details) != 0 {
		t.Errorf("details for an untouched atom: %+v", ex.Details)
	}
}

// TestExplainTraceCarriesDetails: rewrite.Explain forwards the step list.
func TestExplainTraceCarriesDetails(t *testing.T) {
	_, tr := Explain(pattern.MustParse("(A -> B) | (A -> C)"), UniformStats{})
	if len(tr.Details) == 0 {
		t.Error("Explain trace has no details")
	}
}
