package rewrite

import (
	"math"

	"wlq/internal/core/pattern"
)

// Stats is the slice of log statistics the cost model consumes.
// *eval.Index satisfies it.
type Stats interface {
	// ActivityCount returns how many records carry the activity name.
	ActivityCount(act string) int
	// TotalRecords returns m = |L|.
	TotalRecords() int
	// WIDs returns the workflow instance ids present in the log.
	WIDs() []uint64
}

// guardSelectivity is the assumed fraction of records passing one attribute
// guard. A classic textbook default (cf. Selinger); exact selectivities
// would need attribute histograms, which the paper's model does not discuss.
const guardSelectivity = 1.0 / 3.0

// Selectivity constants for the operators' output cardinality, as fractions
// of the Lemma 1 worst case n1·n2. The worst case is attained only by
// degenerate logs (Theorem 1's single-activity instance); on realistic logs
// the consecutive join is far more selective than the sequential one.
const (
	consecutiveSelectivity = 0.05
	sequentialSelectivity  = 0.25
	parallelSelectivity    = 0.50
)

// Estimate carries the cost model's per-pattern numbers.
type Estimate struct {
	// Card is the estimated number of incidents of the pattern per
	// workflow instance.
	Card float64
	// Cost is the estimated total work (Lemma 1 join costs, summed over
	// the pattern tree and all instances).
	Cost float64
	// Atoms is k_i of Lemma 1: the number of activity names in the pattern.
	Atoms int
}

// Estimator computes Lemma 1 cost estimates over log statistics.
type Estimator struct {
	stats Stats
	inst  float64 // number of instances, ≥ 1
	sel   Selectivities
}

// NewEstimator builds an estimator using the model's assumed selectivity
// constants; stats may not be nil.
func NewEstimator(stats Stats) *Estimator {
	return NewEstimatorWith(stats, ModelSelectivities())
}

// NewEstimatorWith builds an estimator with explicit selectivities — the
// seam through which measured per-log statistics (internal/stats) replace
// the assumed constants. Zero-valued selectivity fields fall back to the
// model constants, so a partially-measured Selectivities is safe.
func NewEstimatorWith(stats Stats, sel Selectivities) *Estimator {
	inst := float64(len(stats.WIDs()))
	if inst < 1 {
		inst = 1
	}
	return &Estimator{stats: stats, inst: inst, sel: sel.withDefaults()}
}

// Selectivities returns the (defaulted) selectivities the estimator ranks
// plans with.
func (e *Estimator) Selectivities() Selectivities { return e.sel }

// Estimate returns the estimate for a pattern.
func (e *Estimator) Estimate(p pattern.Node) Estimate {
	switch p := p.(type) {
	case *pattern.Atom:
		var matches float64
		if p.Negated {
			matches = float64(e.stats.TotalRecords() - e.stats.ActivityCount(p.Activity))
		} else {
			matches = float64(e.stats.ActivityCount(p.Activity))
		}
		matches *= math.Pow(e.sel.Guard, float64(len(p.Guards)))
		perInst := matches / e.inst
		return Estimate{
			Card:  perInst,
			Cost:  perInst * e.inst, // index lookup + materialization
			Atoms: 1,
		}
	case *pattern.Binary:
		l := e.Estimate(p.Left)
		r := e.Estimate(p.Right)
		return e.Combine(p.Op, l, r)
	default:
		return Estimate{}
	}
}

// Combine folds two child estimates through an operator, per Lemma 1:
//
//	⊙, ≺ : join cost n1·n2
//	⊗    : join cost n1·n2·min(k1,k2)
//	⊕    : join cost n1·n2·(k1+k2)
//
// Output cardinalities use the estimator's selectivities (assumed constants
// or measured values); ⊗ outputs at most n1+n2 (the union), the others at
// most n1·n2.
func (e *Estimator) Combine(op pattern.Op, l, r Estimate) Estimate {
	n1, n2 := l.Card, r.Card
	k1, k2 := float64(l.Atoms), float64(r.Atoms)
	var join, card float64
	switch op {
	case pattern.OpConsecutive:
		join = n1 * n2
		card = e.sel.Consecutive * n1 * n2
	case pattern.OpSequential:
		join = n1 * n2
		card = e.sel.Sequential * n1 * n2
	case pattern.OpChoice:
		join = n1 * n2 * math.Min(k1, k2)
		card = n1 + n2
	case pattern.OpParallel:
		join = n1 * n2 * (k1 + k2)
		card = e.sel.Parallel * n1 * n2
	}
	return Estimate{
		Card:  card,
		Cost:  l.Cost + r.Cost + join*e.inst,
		Atoms: l.Atoms + r.Atoms,
	}
}

// Cost is a convenience returning just the estimated total work.
func (e *Estimator) Cost(p pattern.Node) float64 { return e.Estimate(p).Cost }

// UniformStats is a Stats implementation for use without a log: every
// activity has the same assumed frequency. It lets the optimizer run
// log-free (purely structural optimization).
type UniformStats struct {
	// PerActivity is the assumed record count per activity (default 100).
	PerActivity int
	// Instances is the assumed instance count (default 10).
	Instances int
	// ActivityNames is the assumed alphabet size (default 10).
	ActivityNames int
}

func (u UniformStats) params() (per, inst, names int) {
	per, inst, names = u.PerActivity, u.Instances, u.ActivityNames
	if per <= 0 {
		per = 100
	}
	if inst <= 0 {
		inst = 10
	}
	if names <= 0 {
		names = 10
	}
	return per, inst, names
}

// ActivityCount implements Stats.
func (u UniformStats) ActivityCount(string) int {
	per, _, _ := u.params()
	return per
}

// TotalRecords implements Stats.
func (u UniformStats) TotalRecords() int {
	per, _, names := u.params()
	return per * names
}

// WIDs implements Stats.
func (u UniformStats) WIDs() []uint64 {
	_, inst, _ := u.params()
	wids := make([]uint64, inst)
	for i := range wids {
		wids[i] = uint64(i + 1)
	}
	return wids
}
