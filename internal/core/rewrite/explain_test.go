package rewrite

import (
	"testing"

	"wlq/internal/core/pattern"
)

func TestExplainMatchesOptimize(t *testing.T) {
	stats := UniformStats{}
	for _, q := range []string{
		"A",
		"A -> B",
		"(A -> B) | (A -> C)",
		"A -> B -> C -> D",
		"A & B & C | D",
	} {
		p := pattern.MustParse(q)
		opt, ex := Optimize(p, stats)
		got, tr := Explain(p, stats)
		if !pattern.Equal(opt, got) {
			t.Errorf("%q: Explain output %s differs from Optimize output %s", q, got, opt)
		}
		if !pattern.Equal(tr.Input, p) || !pattern.Equal(tr.Output, got) {
			t.Errorf("%q: trace input/output mismatch", q)
		}
		if tr.Before.Cost != ex.Before || tr.After.Cost != ex.After {
			t.Errorf("%q: trace costs (%g, %g) != explanation costs (%g, %g)",
				q, tr.Before.Cost, tr.After.Cost, ex.Before, ex.After)
		}
		if tr.After.Cost > tr.Before.Cost {
			t.Errorf("%q: optimizer made the plan costlier: %g -> %g", q, tr.Before.Cost, tr.After.Cost)
		}
		if tr.Changed() != !pattern.Equal(p, got) {
			t.Errorf("%q: Changed() = %v inconsistent with patterns", q, tr.Changed())
		}
		if len(tr.Steps) != len(ex.Steps) {
			t.Errorf("%q: trace steps %v != explanation steps %v", q, tr.Steps, ex.Steps)
		}
	}
}

func TestExplainDoesNotAliasInput(t *testing.T) {
	p := pattern.MustParse("A -> B")
	_, tr := Explain(p, UniformStats{})
	tr.Input.(*pattern.Binary).Left = pattern.NewAtom("X")
	if p.String() != "A -> B" {
		t.Fatalf("mutating the trace input changed the caller's pattern: %s", p)
	}
}

func TestModelSelectivities(t *testing.T) {
	s := ModelSelectivities()
	if s.Guard != guardSelectivity || s.Consecutive != consecutiveSelectivity ||
		s.Sequential != sequentialSelectivity || s.Parallel != parallelSelectivity {
		t.Fatalf("ModelSelectivities() = %+v does not match the package constants", s)
	}
	for name, v := range map[string]float64{
		"guard": s.Guard, "consecutive": s.Consecutive,
		"sequential": s.Sequential, "parallel": s.Parallel,
	} {
		if v <= 0 || v > 1 {
			t.Errorf("%s selectivity %g outside (0, 1]", name, v)
		}
	}
}
