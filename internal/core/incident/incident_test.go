package incident

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewSortsAndAccessors(t *testing.T) {
	o := New(2, 9, 5, 7)
	if o.WID() != 2 {
		t.Errorf("WID = %d", o.WID())
	}
	if o.First() != 5 || o.Last() != 9 || o.Len() != 3 {
		t.Errorf("first/last/len = %d/%d/%d, want 5/9/3", o.First(), o.Last(), o.Len())
	}
	want := []uint64{5, 7, 9}
	for i, s := range o.Seqs() {
		if s != want[i] {
			t.Errorf("Seqs[%d] = %d, want %d", i, s, want[i])
		}
		if o.Seq(i) != want[i] {
			t.Errorf("Seq(%d) = %d, want %d", i, o.Seq(i), want[i])
		}
	}
}

func TestNewPanics(t *testing.T) {
	tests := []struct {
		name string
		fn   func()
	}{
		{"empty", func() { New(1) }},
		{"duplicate", func() { New(1, 3, 3) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			tt.fn()
		})
	}
}

func TestSeqsIsACopy(t *testing.T) {
	o := New(1, 1, 2)
	s := o.Seqs()
	s[0] = 99
	if o.First() != 1 {
		t.Error("Seqs() exposes internal storage")
	}
}

func TestContains(t *testing.T) {
	o := New(1, 2, 4, 6)
	for _, seq := range []uint64{2, 4, 6} {
		if !o.Contains(seq) {
			t.Errorf("Contains(%d) = false", seq)
		}
	}
	for _, seq := range []uint64{1, 3, 5, 7} {
		if o.Contains(seq) {
			t.Errorf("Contains(%d) = true", seq)
		}
	}
}

func TestIsZero(t *testing.T) {
	var zero Incident
	if !zero.IsZero() || Singleton(1, 1).IsZero() {
		t.Error("IsZero wrong")
	}
}

func TestEqualAndCompare(t *testing.T) {
	tests := []struct {
		name string
		a, b Incident
		cmp  int
	}{
		{"equal", New(1, 2, 5), New(1, 5, 2), 0},
		{"wid orders first", New(1, 9), New(2, 1), -1},
		{"first orders", New(1, 2), New(1, 3), -1},
		{"last orders", New(1, 2, 5), New(1, 2, 7), -1},
		{"length orders", New(1, 2, 7), New(1, 2, 5, 7), -1},
		{"lexicographic", New(1, 2, 4, 7), New(1, 2, 5, 7), -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.a.Compare(tt.b)
			if sign(got) != tt.cmp {
				t.Errorf("Compare = %d, want sign %d", got, tt.cmp)
			}
			if sign(tt.b.Compare(tt.a)) != -tt.cmp {
				t.Error("Compare not antisymmetric")
			}
			if (tt.cmp == 0) != tt.a.Equal(tt.b) {
				t.Error("Equal disagrees with Compare")
			}
		})
	}
}

func sign(i int) int {
	switch {
	case i < 0:
		return -1
	case i > 0:
		return 1
	default:
		return 0
	}
}

func TestDisjointAndUnion(t *testing.T) {
	a := New(1, 1, 3)
	b := New(1, 2, 4)
	c := New(1, 3, 5)
	otherWID := New(2, 1, 3)

	if !a.Disjoint(b) || a.Disjoint(c) {
		t.Error("Disjoint wrong")
	}
	if !a.Disjoint(otherWID) {
		t.Error("different instances must be disjoint")
	}

	u, ok := a.Union(b)
	if !ok {
		t.Fatal("Union of disjoint incidents failed")
	}
	if !u.Equal(New(1, 1, 2, 3, 4)) {
		t.Errorf("Union = %v", u)
	}
	if _, ok := a.Union(c); ok {
		t.Error("Union of overlapping incidents should fail")
	}
	if _, ok := a.Union(otherWID); ok {
		t.Error("Union across instances should fail")
	}
}

func TestConcat(t *testing.T) {
	a := New(1, 1, 2)
	b := New(1, 3, 5)
	got := a.Concat(b)
	if !got.Equal(New(1, 1, 2, 3, 5)) {
		t.Errorf("Concat = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Concat with overlap should panic")
		}
	}()
	b.Concat(a)
}

func TestIncidentString(t *testing.T) {
	if got := New(2, 9, 5).String(); got != "wid=2:{5,9}" {
		t.Errorf("String = %q", got)
	}
}

// Property: Union agrees with a set-theoretic reference implementation.
func TestUnionMatchesReference(t *testing.T) {
	f := func(seedA, seedB []uint8) bool {
		toSeqs := func(raw []uint8) []uint64 {
			m := map[uint64]struct{}{}
			for _, r := range raw {
				m[uint64(r%32)+1] = struct{}{}
			}
			out := make([]uint64, 0, len(m))
			for s := range m {
				out = append(out, s)
			}
			return out
		}
		sa, sb := toSeqs(seedA), toSeqs(seedB)
		if len(sa) == 0 || len(sb) == 0 {
			return true
		}
		a, b := New(1, sa...), New(1, sb...)
		u, ok := a.Union(b)
		overlap := false
		for _, s := range sa {
			if b.Contains(s) {
				overlap = true
			}
		}
		if overlap != !ok {
			return false
		}
		if !ok {
			return true
		}
		ref := map[uint64]struct{}{}
		for _, s := range append(sa, sb...) {
			ref[s] = struct{}{}
		}
		refSeqs := make([]uint64, 0, len(ref))
		for s := range ref {
			refSeqs = append(refSeqs, s)
		}
		sort.Slice(refSeqs, func(i, j int) bool { return refSeqs[i] < refSeqs[j] })
		if u.Len() != len(refSeqs) {
			return false
		}
		for i, s := range refSeqs {
			if u.Seq(i) != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSetNormalization(t *testing.T) {
	var s Set
	s.Add(New(2, 5), New(1, 3), New(1, 1), New(1, 3)) // one duplicate
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3 after dedup", s.Len())
	}
	order := []Incident{New(1, 1), New(1, 3), New(2, 5)}
	for i, want := range order {
		if !s.At(i).Equal(want) {
			t.Errorf("At(%d) = %v, want %v", i, s.At(i), want)
		}
	}
}

func TestZeroSetUsable(t *testing.T) {
	var s Set
	if !s.IsEmpty() || s.Len() != 0 {
		t.Error("zero Set not empty")
	}
	if s.Contains(New(1, 1)) {
		t.Error("empty set Contains = true")
	}
	if got := s.String(); got != "{}" {
		t.Errorf("String = %q", got)
	}
}

func TestSetContains(t *testing.T) {
	s := NewSet(New(1, 1), New(1, 3, 4), New(2, 2))
	if !s.Contains(New(1, 4, 3)) {
		t.Error("Contains missed an equal incident")
	}
	if s.Contains(New(1, 3)) {
		t.Error("Contains found a non-member")
	}
}

func TestSetEqual(t *testing.T) {
	a := NewSet(New(1, 1), New(1, 2))
	b := NewSet(New(1, 2), New(1, 1), New(1, 1)) // different order + dup
	c := NewSet(New(1, 1))
	if !a.Equal(b) {
		t.Error("equal sets reported unequal")
	}
	if a.Equal(c) {
		t.Error("unequal sets reported equal")
	}
}

func TestSetUnion(t *testing.T) {
	a := NewSet(New(1, 1), New(1, 2))
	b := NewSet(New(1, 2), New(2, 1))
	u := a.Union(b)
	if u.Len() != 3 {
		t.Errorf("Union Len = %d, want 3", u.Len())
	}
	if !u.Contains(New(2, 1)) || !u.Contains(New(1, 1)) {
		t.Error("Union missing members")
	}
	// Inputs unchanged.
	if a.Len() != 2 || b.Len() != 2 {
		t.Error("Union mutated inputs")
	}
}

func TestSetFilterWIDAndWIDs(t *testing.T) {
	s := NewSet(New(1, 1), New(3, 1), New(1, 5), New(2, 2))
	f := s.FilterWID(1)
	if f.Len() != 2 || f.At(0).WID() != 1 || f.At(1).WID() != 1 {
		t.Errorf("FilterWID = %v", f)
	}
	wids := s.WIDs()
	want := []uint64{1, 2, 3}
	if len(wids) != 3 {
		t.Fatalf("WIDs = %v", wids)
	}
	for i := range want {
		if wids[i] != want[i] {
			t.Errorf("WIDs = %v, want %v", wids, want)
		}
	}
}

// Property: a Set built from random incidents in random order always equals
// the Set built from the same incidents sorted, and Len never exceeds input.
func TestSetCanonicalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(20)
		incs := make([]Incident, 0, n)
		for i := 0; i < n; i++ {
			seqCount := 1 + rng.Intn(3)
			seqs := map[uint64]struct{}{}
			for len(seqs) < seqCount {
				seqs[uint64(rng.Intn(10)+1)] = struct{}{}
			}
			flat := make([]uint64, 0, seqCount)
			for s := range seqs {
				flat = append(flat, s)
			}
			incs = append(incs, New(uint64(rng.Intn(3)+1), flat...))
		}
		a := NewSet(incs...)
		shuffled := append([]Incident(nil), incs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		b := NewSet(shuffled...)
		if !a.Equal(b) {
			t.Fatalf("trial %d: canonical form depends on insertion order", trial)
		}
		if a.Len() > n {
			t.Fatalf("trial %d: Len %d > input %d", trial, a.Len(), n)
		}
		for i := 1; i < a.Len(); i++ {
			if a.At(i-1).Compare(a.At(i)) >= 0 {
				t.Fatalf("trial %d: set not strictly ordered", trial)
			}
		}
	}
}

func TestSetIntersect(t *testing.T) {
	a := NewSet(New(1, 1), New(1, 2), New(2, 1))
	b := NewSet(New(1, 2), New(2, 1), New(3, 5))
	got := a.Intersect(b)
	want := NewSet(New(1, 2), New(2, 1))
	if !got.Equal(want) {
		t.Errorf("Intersect = %s, want %s", got, want)
	}
	if !a.Intersect(NewSet()).Equal(NewSet()) {
		t.Error("Intersect with empty should be empty")
	}
	// Inputs untouched.
	if a.Len() != 3 || b.Len() != 3 {
		t.Error("Intersect mutated inputs")
	}
}

func TestSetDifference(t *testing.T) {
	a := NewSet(New(1, 1), New(1, 2), New(2, 1))
	b := NewSet(New(1, 2))
	got := a.Difference(b)
	want := NewSet(New(1, 1), New(2, 1))
	if !got.Equal(want) {
		t.Errorf("Difference = %s, want %s", got, want)
	}
	if !a.Difference(NewSet()).Equal(a) {
		t.Error("Difference with empty should be identity")
	}
	if !NewSet().Difference(a).Equal(NewSet()) {
		t.Error("empty Difference should be empty")
	}
}

// Property: A = (A ∩ B) ∪ (A \ B) and the two parts are disjoint.
func TestSetAlgebraProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 80; trial++ {
		mk := func() *Set {
			n := rng.Intn(12)
			incs := make([]Incident, 0, n)
			for i := 0; i < n; i++ {
				incs = append(incs, New(uint64(rng.Intn(2)+1), uint64(rng.Intn(6)+1)))
			}
			return NewSet(incs...)
		}
		a, b := mk(), mk()
		inter := a.Intersect(b)
		diff := a.Difference(b)
		if !inter.Union(diff).Equal(a) {
			t.Fatalf("trial %d: (A∩B)∪(A\\B) != A", trial)
		}
		if got := inter.Intersect(diff); got.Len() != 0 {
			t.Fatalf("trial %d: intersection and difference overlap: %s", trial, got)
		}
	}
}
