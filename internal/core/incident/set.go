package incident

import (
	"sort"
	"strings"
)

// Set is an incident set incL(p): a duplicate-free collection of incidents
// kept in the canonical order defined by Incident.Compare. Within one
// workflow instance this coincides with the paper's "sorted by first"
// convention from Section 3.1.
//
// The zero Set is an empty set ready for use.
type Set struct {
	incidents []Incident
	// normalized records whether incidents is known sorted and deduped.
	normalized bool
}

// NewSet builds a normalized set from the given incidents.
func NewSet(incidents ...Incident) *Set {
	s := &Set{incidents: append([]Incident(nil), incidents...)}
	s.Normalize()
	return s
}

// Add appends incidents without normalizing (cheap during evaluation inner
// loops). Call Normalize before relying on order, Len or equality.
func (s *Set) Add(incidents ...Incident) {
	s.incidents = append(s.incidents, incidents...)
	s.normalized = len(s.incidents) <= 1
}

// Normalize sorts the set and removes duplicate incidents, establishing the
// canonical form. It is idempotent and cheap when already normalized.
func (s *Set) Normalize() {
	if s.normalized {
		return
	}
	sort.Slice(s.incidents, func(i, j int) bool {
		return s.incidents[i].Compare(s.incidents[j]) < 0
	})
	out := s.incidents[:0]
	for i, inc := range s.incidents {
		if i == 0 || inc.Compare(s.incidents[i-1]) != 0 {
			out = append(out, inc)
		}
	}
	s.incidents = out
	s.normalized = true
}

// Len returns the number of distinct incidents. The set is normalized first.
func (s *Set) Len() int {
	s.Normalize()
	return len(s.incidents)
}

// At returns the i-th incident in canonical order.
func (s *Set) At(i int) Incident {
	s.Normalize()
	return s.incidents[i]
}

// Incidents returns a copy of the incidents in canonical order.
func (s *Set) Incidents() []Incident {
	s.Normalize()
	out := make([]Incident, len(s.incidents))
	copy(out, s.incidents)
	return out
}

// IsEmpty reports whether the set has no incidents.
func (s *Set) IsEmpty() bool { return s.Len() == 0 }

// Contains reports whether the set holds an incident equal to o.
func (s *Set) Contains(o Incident) bool {
	s.Normalize()
	i := sort.Search(len(s.incidents), func(i int) bool {
		return s.incidents[i].Compare(o) >= 0
	})
	return i < len(s.incidents) && s.incidents[i].Compare(o) == 0
}

// Equal reports whether two sets contain exactly the same incidents.
func (s *Set) Equal(t *Set) bool {
	s.Normalize()
	t.Normalize()
	if len(s.incidents) != len(t.incidents) {
		return false
	}
	for i := range s.incidents {
		if s.incidents[i].Compare(t.incidents[i]) != 0 {
			return false
		}
	}
	return true
}

// Union returns a new set holding every incident of s and t (deduplicated).
func (s *Set) Union(t *Set) *Set {
	s.Normalize()
	t.Normalize()
	out := &Set{incidents: make([]Incident, 0, len(s.incidents)+len(t.incidents))}
	out.incidents = append(out.incidents, s.incidents...)
	out.incidents = append(out.incidents, t.incidents...)
	out.normalized = false
	out.Normalize()
	return out
}

// FilterWID returns the subset of incidents belonging to one instance.
func (s *Set) FilterWID(wid uint64) *Set {
	s.Normalize()
	out := &Set{normalized: true}
	for _, inc := range s.incidents {
		if inc.WID() == wid {
			out.incidents = append(out.incidents, inc)
		}
	}
	return out
}

// WIDs returns the distinct instance ids with at least one incident,
// ascending.
func (s *Set) WIDs() []uint64 {
	s.Normalize()
	var out []uint64
	for _, inc := range s.incidents {
		if len(out) == 0 || out[len(out)-1] != inc.WID() {
			out = append(out, inc.WID())
		}
	}
	return out
}

// String renders the set as "{wid=1:{2}, wid=2:{5,9}}".
func (s *Set) String() string {
	s.Normalize()
	var sb strings.Builder
	sb.WriteByte('{')
	for i, inc := range s.incidents {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(inc.String())
	}
	sb.WriteByte('}')
	return sb.String()
}

// Intersect returns the incidents present in both sets.
func (s *Set) Intersect(t *Set) *Set {
	s.Normalize()
	t.Normalize()
	out := &Set{normalized: true}
	i, j := 0, 0
	for i < len(s.incidents) && j < len(t.incidents) {
		switch c := s.incidents[i].Compare(t.incidents[j]); {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			out.incidents = append(out.incidents, s.incidents[i])
			i++
			j++
		}
	}
	return out
}

// Difference returns the incidents of s that are not in t.
func (s *Set) Difference(t *Set) *Set {
	s.Normalize()
	t.Normalize()
	out := &Set{normalized: true}
	i, j := 0, 0
	for i < len(s.incidents) {
		switch {
		case j >= len(t.incidents):
			out.incidents = append(out.incidents, s.incidents[i])
			i++
		default:
			switch c := s.incidents[i].Compare(t.incidents[j]); {
			case c < 0:
				out.incidents = append(out.incidents, s.incidents[i])
				i++
			case c > 0:
				j++
			default:
				i++
				j++
			}
		}
	}
	return out
}
