// Package incident implements incident instances and incident sets
// (Definition 4 of "Querying Workflow Logs").
//
// An incident of a pattern p in a log L is a set of log records of one
// workflow instance; we represent it compactly as the instance id plus the
// strictly increasing sequence of instance-specific log sequence numbers
// (is-lsn) of its records. The three defined functions first(o), last(o) and
// wid(o) fall out of this representation directly.
package incident

import (
	"fmt"
	"sort"
	"strings"
)

// Incident is one incident instance: a non-empty set of records of a single
// workflow instance, identified by their is-lsn values in increasing order.
//
// Incidents are immutable after construction; composition helpers return
// fresh values.
type Incident struct {
	wid  uint64
	seqs []uint64 // strictly increasing is-lsn values
}

// New builds an incident from a workflow instance id and record is-lsn
// values (in any order). It panics if seqs is empty or contains duplicates:
// incidents are, by Definition 4, non-empty sets.
func New(wid uint64, seqs ...uint64) Incident {
	if len(seqs) == 0 {
		panic("incident.New: empty incident")
	}
	s := make([]uint64, len(seqs))
	copy(s, seqs)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	for i := 1; i < len(s); i++ {
		if s[i] == s[i-1] {
			panic(fmt.Sprintf("incident.New: duplicate is-lsn %d", s[i]))
		}
	}
	return Incident{wid: wid, seqs: s}
}

// Singleton builds the one-record incident for an atomic pattern match.
func Singleton(wid, seq uint64) Incident {
	return Incident{wid: wid, seqs: []uint64{seq}}
}

// WID returns wid(o), the workflow instance all records belong to.
func (o Incident) WID() uint64 { return o.wid }

// First returns first(o), the smallest is-lsn of the incident.
func (o Incident) First() uint64 { return o.seqs[0] }

// Last returns last(o), the largest is-lsn of the incident.
func (o Incident) Last() uint64 { return o.seqs[len(o.seqs)-1] }

// Len returns the number of log records in the incident.
func (o Incident) Len() int { return len(o.seqs) }

// Seqs returns a copy of the is-lsn values in increasing order.
func (o Incident) Seqs() []uint64 {
	out := make([]uint64, len(o.seqs))
	copy(out, o.seqs)
	return out
}

// Seq returns the i-th smallest is-lsn (0-based).
func (o Incident) Seq(i int) uint64 { return o.seqs[i] }

// Contains reports whether the incident includes the record with the given
// is-lsn (binary search).
func (o Incident) Contains(seq uint64) bool {
	i := sort.Search(len(o.seqs), func(i int) bool { return o.seqs[i] >= seq })
	return i < len(o.seqs) && o.seqs[i] == seq
}

// IsZero reports whether o is the zero Incident (no records); such values
// only arise from uninitialized variables, never from New or composition.
func (o Incident) IsZero() bool { return len(o.seqs) == 0 }

// Equal reports whether two incidents denote the same set of log records.
func (o Incident) Equal(p Incident) bool {
	if o.wid != p.wid || len(o.seqs) != len(p.seqs) {
		return false
	}
	for i := range o.seqs {
		if o.seqs[i] != p.seqs[i] {
			return false
		}
	}
	return true
}

// Compare totally orders incidents: by wid, then first, then last, then
// length, then lexicographically on the is-lsn sequence. The order refines
// the paper's "sorted by first" convention (Section 3.1) into a strict total
// order so that incident sets have a canonical form.
func (o Incident) Compare(p Incident) int {
	switch {
	case o.wid != p.wid:
		return cmpU64(o.wid, p.wid)
	case o.First() != p.First():
		return cmpU64(o.First(), p.First())
	case o.Last() != p.Last():
		return cmpU64(o.Last(), p.Last())
	case len(o.seqs) != len(p.seqs):
		return len(o.seqs) - len(p.seqs)
	}
	for i := range o.seqs {
		if o.seqs[i] != p.seqs[i] {
			return cmpU64(o.seqs[i], p.seqs[i])
		}
	}
	return 0
}

func cmpU64(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Disjoint reports whether the two incidents share no log records. Incidents
// of different instances are trivially disjoint. The scan is the linear merge
// the paper's complexity analysis assumes for the parallel operator.
func (o Incident) Disjoint(p Incident) bool {
	if o.wid != p.wid {
		return true
	}
	i, j := 0, 0
	for i < len(o.seqs) && j < len(p.seqs) {
		switch {
		case o.seqs[i] == p.seqs[j]:
			return false
		case o.seqs[i] < p.seqs[j]:
			i++
		default:
			j++
		}
	}
	return true
}

// Union returns o ∪ p, merging the two sorted is-lsn sequences. ok is false
// when the incidents belong to different instances or share a record (the
// parallel operator requires disjointness; consecutive and sequential
// guarantee it by their ordering constraints).
func (o Incident) Union(p Incident) (Incident, bool) {
	if o.wid != p.wid {
		return Incident{}, false
	}
	merged := make([]uint64, 0, len(o.seqs)+len(p.seqs))
	i, j := 0, 0
	for i < len(o.seqs) && j < len(p.seqs) {
		switch {
		case o.seqs[i] == p.seqs[j]:
			return Incident{}, false
		case o.seqs[i] < p.seqs[j]:
			merged = append(merged, o.seqs[i])
			i++
		default:
			merged = append(merged, p.seqs[j])
			j++
		}
	}
	merged = append(merged, o.seqs[i:]...)
	merged = append(merged, p.seqs[j:]...)
	return Incident{wid: o.wid, seqs: merged}, true
}

// Concat returns o ∪ p for the consecutive/sequential case where every
// record of o precedes every record of p; it panics if that precondition is
// violated (composition in internal/core/eval checks last(o) < first(p)
// before calling).
func (o Incident) Concat(p Incident) Incident {
	if o.wid != p.wid || o.Last() >= p.First() {
		panic(fmt.Sprintf("incident.Concat: %v does not precede %v", o, p))
	}
	merged := make([]uint64, 0, len(o.seqs)+len(p.seqs))
	merged = append(merged, o.seqs...)
	merged = append(merged, p.seqs...)
	return Incident{wid: o.wid, seqs: merged}
}

// String renders the incident as "wid=2:{5,9}".
func (o Incident) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "wid=%d:{", o.wid)
	for i, s := range o.seqs {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", s)
	}
	sb.WriteByte('}')
	return sb.String()
}
