// Package wal implements the write-ahead log behind durable live ingestion:
// an append-only sequence of length+CRC32C-framed records in rotating
// segment files. A record accepted through the WAL survives a process kill,
// a torn write, or a short write without corrupting anything written before
// it — the recovery scan distinguishes a torn tail (the expected shape of a
// crash mid-append, silently truncated) from mid-segment corruption (never
// produced by a crash; the WAL refuses to open and quarantines the segment
// for the operator).
//
// Frame layout, all little-endian:
//
//	[4 bytes: payload length n] [4 bytes: CRC32C of payload] [n bytes: payload]
//
// The payload is one logio JSONL record line, so a WAL segment minus its
// framing is a valid log fragment and every existing codec test applies to
// the bytes at rest. Segment files are named wal-<first-lsn, 16 hex>.wal and
// rotate once they exceed Options.SegmentBytes.
//
// Durability is governed by the fsync policy:
//
//	PolicyAlways   fsync after every append; an acknowledged record is on disk.
//	PolicyInterval fsync at most every FsyncInterval (background); a crash
//	               loses at most one interval of acknowledged records.
//	PolicyNever    never fsync explicitly; the OS page cache decides.
//
// See docs/DURABILITY.md for the recovery decision table.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"wlq/internal/logio"
	"wlq/internal/wlog"
)

// Defaults for the zero Options.
const (
	// DefaultSegmentBytes is the rotation threshold for segment files.
	DefaultSegmentBytes = int64(64 << 20)
	// DefaultFsyncInterval paces background syncs under PolicyInterval.
	DefaultFsyncInterval = 100 * time.Millisecond
	// headerSize is the per-frame framing overhead: length + CRC32C.
	headerSize = 8
	// maxFrameBytes caps a single frame's payload — matches the logio
	// scanner's line cap, so any record the codec can produce fits. A header
	// declaring more is framing garbage, never a real record.
	maxFrameBytes = 16 << 20
)

// castagnoli is the CRC32C polynomial table (the iSCSI/ext4 checksum, with
// hardware support on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Policy selects when appended frames are fsynced.
type Policy int

const (
	// PolicyAlways syncs after every append (the default).
	PolicyAlways Policy = iota
	// PolicyInterval syncs in the background every FsyncInterval.
	PolicyInterval
	// PolicyNever leaves flushing to the operating system.
	PolicyNever
)

// String names the policy as accepted by ParsePolicy.
func (p Policy) String() string {
	switch p {
	case PolicyAlways:
		return "always"
	case PolicyInterval:
		return "interval"
	case PolicyNever:
		return "never"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy maps the -fsync flag values to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "always":
		return PolicyAlways, nil
	case "interval":
		return PolicyInterval, nil
	case "never":
		return PolicyNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// File is the subset of *os.File the WAL writes through. It is the fault-
// injection seam: internal/faultinject.FaultyFile implements it with short
// writes, fsync errors and error-after-N-bytes faults.
type File interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
}

// Options configures Open.
type Options struct {
	// Dir is the segment directory, created if missing. Required.
	Dir string
	// Policy is the fsync policy (zero value: PolicyAlways).
	Policy Policy
	// FsyncInterval paces background syncs under PolicyInterval
	// (0 = DefaultFsyncInterval).
	FsyncInterval time.Duration
	// SegmentBytes is the rotation threshold (0 = DefaultSegmentBytes).
	SegmentBytes int64
	// OpenFile creates or opens a segment for appending. Nil uses os.
	// Fault-injection tests substitute faultinject.FaultyFile here.
	OpenFile func(path string) (File, error)
	// Hook, when non-nil, fires at named crash points ("append:framed",
	// "append:written", "sync:before", "rotate:before"). A hook that panics
	// simulates a crash at exactly that point; production leaves it nil.
	Hook func(point string)
	// ObserveFsync, when non-nil, receives the wall-clock duration of every
	// fsync — the seam behind the wlq_ingest_fsync_duration_seconds histogram.
	ObserveFsync func(d time.Duration)
}

// Recovery reports what the opening scan found and repaired.
type Recovery struct {
	// Segments is the number of live segment files scanned.
	Segments int
	// Records is the number of whole, checksum-valid records found.
	Records int
	// LastLSN is the lsn of the final recovered record (0 when empty).
	LastLSN uint64
	// TornBytes is how many trailing bytes the scan truncated from the last
	// segment — the torn tail of a crash mid-append.
	TornBytes int64
}

// CorruptError reports mid-segment corruption: a frame that fails its
// checksum (or framing that cannot be parsed) with valid data after it, or
// in any segment before the last. A crash cannot produce that shape —
// appends only ever tear the tail — so the WAL refuses to open, renames the
// segment to <name>.corrupt (quarantine) and leaves the decision to the
// operator.
type CorruptError struct {
	// Segment is the original segment path; Quarantined where it was moved
	// ("" when the rename itself failed).
	Segment     string
	Quarantined string
	// Offset is the byte offset of the bad frame; Reason describes the check
	// that failed.
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt segment %s at byte %d: %s (quarantined as %s)",
		e.Segment, e.Offset, e.Reason, e.Quarantined)
}

// Stats is a point-in-time snapshot of the WAL's write-side counters.
type Stats struct {
	// Appends is the number of records appended this process lifetime;
	// Bytes the framed bytes written; Fsyncs the explicit syncs issued;
	// Rotations the segment rotations performed.
	Appends   uint64
	Bytes     uint64
	Fsyncs    uint64
	Rotations uint64
	// Segments is the current number of live segment files; LastLSN the lsn
	// of the newest durable-or-pending record (recovered or appended).
	Segments int
	LastLSN  uint64
	// TornBytes is what the opening recovery scan truncated.
	TornBytes int64
}

// WAL is an open write-ahead log. Safe for concurrent use; appends are
// serialized internally.
type WAL struct {
	opts Options

	mu       sync.Mutex
	f        File   // active segment, nil until the first append
	path     string // active segment path
	size     int64  // bytes written to the active segment
	lastLSN  uint64
	segments []string // live segment paths, oldest first (including active)
	pending  bool     // unsynced frames outstanding
	broken   error    // sticky failure: the WAL refuses further appends
	closed   bool

	appends   uint64
	bytes     uint64
	fsyncs    uint64
	rotations uint64
	torn      int64

	stopSync chan struct{} // interval-sync loop shutdown (nil unless PolicyInterval)
	syncDone chan struct{}
}

// Open scans (and repairs) the segment directory, then readies the WAL for
// appends after the recovered tail. A torn tail is truncated and reported in
// Recovery; mid-segment corruption quarantines the segment and fails with a
// *CorruptError.
func Open(opts Options) (*WAL, Recovery, error) {
	if opts.Dir == "" {
		return nil, Recovery{}, errors.New("wal: empty segment directory")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = DefaultFsyncInterval
	}
	if opts.OpenFile == nil {
		opts.OpenFile = func(path string) (File, error) {
			return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		}
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, Recovery{}, fmt.Errorf("wal: %w", err)
	}
	segments, err := listSegments(opts.Dir)
	if err != nil {
		return nil, Recovery{}, err
	}

	var rec Recovery
	rec.Segments = len(segments)
	for i, seg := range segments {
		last := i == len(segments)-1
		sr, err := scanSegment(seg, last, rec.LastLSN, nil)
		if err != nil {
			var ce *CorruptError
			if errors.As(err, &ce) {
				quarantine(ce)
			}
			return nil, Recovery{}, err
		}
		rec.Records += sr.records
		if sr.records > 0 {
			rec.LastLSN = sr.lastLSN
		}
		if sr.tornBytes > 0 {
			// Repair the tail so the next append continues at a frame
			// boundary. Truncation is the only write recovery performs.
			if err := os.Truncate(seg, sr.goodOffset); err != nil {
				return nil, Recovery{}, fmt.Errorf("wal: truncating torn tail of %s: %w", seg, err)
			}
			rec.TornBytes += sr.tornBytes
		}
	}

	w := &WAL{opts: opts, lastLSN: rec.LastLSN, segments: segments, torn: rec.TornBytes}
	if len(segments) > 0 {
		// Resume the last segment (it rotates on the next append if full).
		last := segments[len(segments)-1]
		fi, err := os.Stat(last)
		if err != nil {
			return nil, Recovery{}, fmt.Errorf("wal: %w", err)
		}
		f, err := opts.OpenFile(last)
		if err != nil {
			return nil, Recovery{}, fmt.Errorf("wal: reopening %s: %w", last, err)
		}
		w.f, w.path, w.size = f, last, fi.Size()
	}
	if opts.Policy == PolicyInterval {
		w.stopSync = make(chan struct{})
		w.syncDone = make(chan struct{})
		go w.syncLoop()
	}
	return w, rec, nil
}

// quarantine moves a corrupt segment aside so a restart does not loop on the
// same failure; the operator inspects or deletes the .corrupt file.
func quarantine(ce *CorruptError) {
	dst := ce.Segment + ".corrupt"
	if err := os.Rename(ce.Segment, dst); err == nil {
		ce.Quarantined = dst
	}
}

// listSegments returns the live segment paths in lsn order.
func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".wal") {
			segs = append(segs, filepath.Join(dir, name))
		}
	}
	sort.Strings(segs) // fixed-width hex lsn names sort chronologically
	return segs, nil
}

// segmentName names a segment by the lsn of its first record.
func segmentName(dir string, firstLSN uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.wal", firstLSN))
}

// scanResult is one segment's recovery outcome.
type scanResult struct {
	records    int
	lastLSN    uint64
	goodOffset int64 // end of the last whole frame
	tornBytes  int64 // trailing bytes past goodOffset (last segment only)
}

// scanSegment walks a segment's frames. prevLSN is the lsn of the last
// record recovered before this segment; records must continue strictly
// ascending. When emit is non-nil every decoded record is passed to it.
//
// The torn-tail/corruption decision table (docs/DURABILITY.md):
//
//   - incomplete header or payload at end of the LAST segment → torn tail
//   - declared length 0, > maxFrameBytes, or overrunning the LAST segment's
//     end → torn tail (garbage header written by an interrupted append)
//   - CRC mismatch on a frame ending exactly at the LAST segment's end →
//     torn tail (payload partially flushed)
//   - CRC mismatch (or any of the above) with valid bytes after it, or in
//     any earlier segment → corruption: refuse and quarantine
//   - checksum-valid payload that fails to decode, or an lsn that is not
//     strictly ascending → corruption (a crash cannot forge a valid CRC)
func scanSegment(path string, last bool, prevLSN uint64, emit func(wlog.Record) error) (scanResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return scanResult{}, fmt.Errorf("wal: %w", err)
	}
	res := scanResult{lastLSN: prevLSN}
	size := int64(len(data))
	off := int64(0)
	corrupt := func(reason string) (scanResult, error) {
		return scanResult{}, &CorruptError{Segment: path, Offset: off, Reason: reason}
	}
	torn := func() (scanResult, error) {
		if !last {
			return corrupt("truncated frame before the final segment")
		}
		res.goodOffset = off
		res.tornBytes = size - off
		return res, nil
	}
	for off < size {
		if size-off < headerSize {
			return torn()
		}
		n := int64(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || n > maxFrameBytes || off+headerSize+n > size {
			// Unusable length. At the tail it is an interrupted header;
			// followed by nothing else it IS the tail.
			return torn()
		}
		payload := data[off+headerSize : off+headerSize+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			if last && off+headerSize+n == size {
				return torn() // partially flushed final frame
			}
			return corrupt("checksum mismatch")
		}
		r, err := decodePayload(payload)
		if err != nil {
			return corrupt(fmt.Sprintf("checksum-valid frame does not decode: %v", err))
		}
		if r.LSN <= res.lastLSN {
			return corrupt(fmt.Sprintf("lsn %d not ascending after %d", r.LSN, res.lastLSN))
		}
		if emit != nil {
			if err := emit(r); err != nil {
				return scanResult{}, err
			}
		}
		res.lastLSN = r.LSN
		res.records++
		off += headerSize + n
		res.goodOffset = off
	}
	return res, nil
}

// encodePayload renders a record as one JSONL line (the logio wire form).
func encodePayload(r wlog.Record) ([]byte, error) {
	return logio.EncodeRecord(r)
}

// decodePayload inverts encodePayload.
func decodePayload(payload []byte) (wlog.Record, error) {
	return logio.DecodeRecord(payload)
}

// hook fires the crash-point seam.
func (w *WAL) hook(point string) {
	if w.opts.Hook != nil {
		w.opts.Hook(point)
	}
}

// Append frames and writes one record, then syncs per the fsync policy.
// When Append returns nil under PolicyAlways, the record is on disk. Records
// must arrive with strictly ascending lsn (the ingest coordinator's
// Definition 2 validation guarantees density; the WAL only asserts order).
//
// A failed write leaves no partial frame behind when the filesystem
// cooperates: the segment is truncated back to the last whole frame. If even
// that fails the WAL goes sticky-broken and refuses further appends — the
// recovery scan on restart is then the authority on what survived.
func (w *WAL) Append(r wlog.Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return w.broken
	}
	if w.closed {
		return errors.New("wal: closed")
	}
	if r.LSN <= w.lastLSN {
		return fmt.Errorf("wal: lsn %d not ascending after %d", r.LSN, w.lastLSN)
	}
	payload, err := encodePayload(r)
	if err != nil {
		return fmt.Errorf("wal: encode lsn=%d: %w", r.LSN, err)
	}
	frame := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[headerSize:], payload)
	w.hook("append:framed")

	if w.f == nil || (w.size > 0 && w.size+int64(len(frame)) > w.opts.SegmentBytes) {
		if err := w.rotateLocked(r.LSN); err != nil {
			return err
		}
	}
	n, err := w.f.Write(frame)
	if err != nil || n < len(frame) {
		if err == nil {
			err = io.ErrShortWrite
		}
		// Scrub the partial frame so the in-process view matches the disk;
		// if the truncate fails too, the WAL is broken and recovery decides.
		if terr := w.f.Truncate(w.size); terr != nil {
			w.broken = fmt.Errorf("wal: write failed (%v) and truncate failed (%v); wal is broken", err, terr)
			return w.broken
		}
		return fmt.Errorf("wal: append lsn=%d: %w", r.LSN, err)
	}
	w.hook("append:written")
	w.size += int64(len(frame))
	w.bytes += uint64(len(frame))
	w.appends++
	w.lastLSN = r.LSN
	w.pending = true
	if w.opts.Policy == PolicyAlways {
		return w.syncLocked()
	}
	return nil
}

// rotateLocked syncs and closes the active segment and opens a fresh one
// whose name carries the first lsn it will hold.
func (w *WAL) rotateLocked(firstLSN uint64) error {
	w.hook("rotate:before")
	if w.f != nil {
		if w.pending {
			if err := w.syncLocked(); err != nil {
				return err
			}
		}
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("wal: closing %s: %w", w.path, err)
		}
		w.rotations++
	}
	path := segmentName(w.opts.Dir, firstLSN)
	f, err := w.opts.OpenFile(path)
	if err != nil {
		return fmt.Errorf("wal: creating %s: %w", path, err)
	}
	w.f, w.path, w.size = f, path, 0
	w.segments = append(w.segments, path)
	return nil
}

// syncLocked issues one fsync and observes its latency. An fsync failure is
// sticky: the kernel may have dropped the dirty pages, so pretending a later
// fsync could still make the data durable would be a lie (the PostgreSQL
// fsync-gate lesson). The WAL refuses further appends and the caller
// surfaces the outage.
func (w *WAL) syncLocked() error {
	w.hook("sync:before")
	start := time.Now()
	err := w.f.Sync()
	if w.opts.ObserveFsync != nil {
		w.opts.ObserveFsync(time.Since(start))
	}
	w.fsyncs++
	if err != nil {
		w.broken = fmt.Errorf("wal: fsync %s: %w", w.path, err)
		return w.broken
	}
	w.pending = false
	return nil
}

// Sync flushes outstanding frames to disk, regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return w.broken
	}
	if w.f == nil || !w.pending {
		return nil
	}
	return w.syncLocked()
}

// syncLoop is the PolicyInterval background flusher.
func (w *WAL) syncLoop() {
	defer close(w.syncDone)
	t := time.NewTicker(w.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stopSync:
			return
		case <-t.C:
			_ = w.Sync() // a broken WAL surfaces on the next Append
		}
	}
}

// Replay streams every recovered record, oldest first, to fn. It re-scans
// the repaired segments from disk; Open must have succeeded, so a scan error
// here means the files changed underneath the process. Replay does not block
// Append, but the caller (the ingest coordinator) serializes them.
func (w *WAL) Replay(fn func(wlog.Record) error) error {
	w.mu.Lock()
	segments := append([]string(nil), w.segments...)
	w.mu.Unlock()
	prev := uint64(0)
	for i, seg := range segments {
		sr, err := scanSegment(seg, i == len(segments)-1, prev, fn)
		if err != nil {
			return err
		}
		if sr.records > 0 {
			prev = sr.lastLSN
		}
	}
	return nil
}

// LastLSN returns the lsn of the newest record the WAL holds (recovered or
// appended; 0 when empty).
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastLSN
}

// Stats snapshots the write-side counters.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{
		Appends:   w.appends,
		Bytes:     w.bytes,
		Fsyncs:    w.fsyncs,
		Rotations: w.rotations,
		Segments:  len(w.segments),
		LastLSN:   w.lastLSN,
		TornBytes: w.torn,
	}
}

// Close stops the background flusher, syncs outstanding frames (best
// effort on a broken WAL) and closes the active segment.
func (w *WAL) Close() error {
	if w.stopSync != nil {
		close(w.stopSync)
		<-w.syncDone
		w.stopSync = nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	var err error
	if w.f != nil {
		if w.pending && w.broken == nil {
			err = w.syncLocked()
		}
		if cerr := w.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		w.f = nil
	}
	return err
}
