package wal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wlq/internal/faultinject"
	"wlq/internal/wlog"
)

// rec builds a minimal record; the WAL only cares about framing, not
// Definition 2 (the ingest coordinator owns that).
func rec(lsn, wid, seq uint64, act string) wlog.Record {
	return wlog.Record{LSN: lsn, WID: wid, Seq: seq, Activity: act}
}

// streamOf appends n records lsn=1..n to a fresh WAL and returns its dir.
func streamOf(t *testing.T, n int, opts Options) string {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	w, rc, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if rc.Records != 0 {
		t.Fatalf("fresh dir recovered %d records", rc.Records)
	}
	for i := 1; i <= n; i++ {
		if err := w.Append(rec(uint64(i), uint64(i%3+1), uint64(i), "A")); err != nil {
			t.Fatalf("Append lsn=%d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return opts.Dir
}

// replayAll reopens dir and returns every recovered record plus the Recovery.
func replayAll(t *testing.T, dir string) ([]wlog.Record, Recovery) {
	t.Helper()
	w, rc, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w.Close()
	var got []wlog.Record
	if err := w.Replay(func(r wlog.Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got, rc
}

// lastSegment returns the newest live segment file in dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (err=%v)", dir, err)
	}
	return segs[len(segs)-1]
}

func TestWALAppendReplayRoundtrip(t *testing.T) {
	dir := streamOf(t, 25, Options{})
	got, rc := replayAll(t, dir)
	if rc.Records != 25 || rc.LastLSN != 25 || rc.TornBytes != 0 {
		t.Fatalf("recovery = %+v, want 25 clean records", rc)
	}
	if len(got) != 25 {
		t.Fatalf("replayed %d records, want 25", len(got))
	}
	for i, r := range got {
		want := rec(uint64(i+1), uint64((i+1)%3+1), uint64(i+1), "A")
		if !r.Equal(want) {
			t.Fatalf("record %d = %v, want %v", i, r, want)
		}
	}
}

func TestWALAttributesSurviveRoundtrip(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	r := rec(1, 7, 1, "SeeDoctor")
	r.In = wlog.AttrMap{"patient": wlog.String("p-9")}
	r.Out = wlog.AttrMap{"cost": wlog.Int(250)}
	if err := w.Append(r); err != nil {
		t.Fatalf("Append: %v", err)
	}
	w.Close()
	got, _ := replayAll(t, dir)
	if len(got) != 1 || !got[0].Equal(r) {
		t.Fatalf("roundtrip lost attributes: got %v want %v", got, r)
	}
}

func TestWALRejectsNonAscendingLSN(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w.Close()
	if err := w.Append(rec(5, 1, 1, "A")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Append(rec(5, 1, 2, "B")); err == nil {
		t.Fatal("duplicate lsn accepted")
	}
	if err := w.Append(rec(4, 1, 2, "B")); err == nil {
		t.Fatal("descending lsn accepted")
	}
	if err := w.Append(rec(6, 1, 2, "B")); err != nil {
		t.Fatalf("ascending lsn rejected: %v", err)
	}
}

func TestWALEmptySegmentIsValid(t *testing.T) {
	dir := t.TempDir()
	// A crash can die between creating a segment and writing its first
	// frame; the scan must treat the empty file as zero records, not error.
	if err := os.WriteFile(segmentName(dir, 1), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	got, rc := replayAll(t, dir)
	if len(got) != 0 || rc.Records != 0 || rc.Segments != 1 {
		t.Fatalf("empty segment: records=%d segments=%d", rc.Records, rc.Segments)
	}
}

func TestWALAppendsContinueAfterEmptySegmentRecovery(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(segmentName(dir, 1), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	w, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := w.Append(rec(1, 1, 1, "A")); err != nil {
		t.Fatalf("Append after empty recovery: %v", err)
	}
	w.Close()
	got, _ := replayAll(t, dir)
	if len(got) != 1 {
		t.Fatalf("replayed %d records, want 1", len(got))
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	// Chop the final frame at several byte positions; every cut is a torn
	// tail: recovery keeps the records before it and truncates the rest.
	for _, chop := range []int64{1, 3, headerSize - 1, headerSize, headerSize + 1} {
		dir := streamOf(t, 10, Options{})
		seg := lastSegment(t, dir)
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(seg, fi.Size()-chop); err != nil {
			t.Fatal(err)
		}
		got, rc := replayAll(t, dir)
		if len(got) != 9 || rc.Records != 9 || rc.LastLSN != 9 {
			t.Fatalf("chop=%d: recovered %d records (recovery %+v), want 9", chop, len(got), rc)
		}
		if rc.TornBytes == 0 {
			t.Fatalf("chop=%d: torn bytes not reported", chop)
		}
		// The truncation must be persistent: a second scan sees a clean log.
		got2, rc2 := replayAll(t, dir)
		if len(got2) != 9 || rc2.TornBytes != 0 {
			t.Fatalf("chop=%d: tail not repaired on disk (second recovery %+v)", chop, rc2)
		}
	}
}

func TestWALExactlyTornLengthPrefix(t *testing.T) {
	// The crash wrote exactly the 4-byte length prefix of the next frame and
	// nothing else — the edge the scan must read as an incomplete header.
	dir := streamOf(t, 5, Options{})
	seg := lastSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, rc := replayAll(t, dir)
	if len(got) != 5 || rc.TornBytes != 4 {
		t.Fatalf("recovered %d records, torn=%d; want 5 records, 4 torn bytes", len(got), rc.TornBytes)
	}
}

func TestWALGarbageLengthAtTailTruncated(t *testing.T) {
	// A header whose declared length is absurd (over maxFrameBytes) with
	// nothing after it is an interrupted append, not corruption.
	dir := streamOf(t, 3, Options{})
	seg := lastSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, rc := replayAll(t, dir)
	if len(got) != 3 || rc.TornBytes != 9 {
		t.Fatalf("recovered %d records, torn=%d; want 3 records, 9 torn bytes", len(got), rc.TornBytes)
	}
}

func TestWALMidSegmentCorruptionQuarantined(t *testing.T) {
	// Flip a payload bit in the MIDDLE of the segment: valid frames follow,
	// so this cannot be a torn tail. Open must refuse and quarantine.
	dir := streamOf(t, 10, Options{})
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Walk the framing to target the 5th frame's payload — flipping a
	// header byte instead would be a different (torn-tail) case.
	off := int64(0)
	for i := 0; i < 4; i++ {
		off += headerSize + int64(binary.LittleEndian.Uint32(data[off:]))
	}
	data[off+headerSize+2] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(Options{Dir: dir})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Open = %v, want *CorruptError", err)
	}
	if ce.Quarantined == "" || !strings.HasSuffix(ce.Quarantined, ".corrupt") {
		t.Fatalf("segment not quarantined: %+v", ce)
	}
	if _, err := os.Stat(ce.Quarantined); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(seg); !os.IsNotExist(err) {
		t.Fatalf("corrupt segment still live: %v", err)
	}
	// After the operator removes the quarantined file the dir opens clean.
	if err := os.Remove(ce.Quarantined); err != nil {
		t.Fatal(err)
	}
	if _, rc, err := mustOpen(dir); err != nil || rc.Records != 0 {
		t.Fatalf("post-quarantine open: rc=%+v err=%v", rc, err)
	}
}

func mustOpen(dir string) (*WAL, Recovery, error) {
	w, rc, err := Open(Options{Dir: dir})
	if w != nil {
		w.Close()
	}
	return w, rc, err
}

func TestWALCorruptionInEarlierSegmentRefused(t *testing.T) {
	// Any damage in a non-final segment is corruption even at its tail: a
	// crash only ever tears the newest segment.
	dir := t.TempDir()
	streamOf(t, 12, Options{Dir: dir, SegmentBytes: 128}) // forces rotation
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("rotation did not produce multiple segments: %v (err=%v)", segs, err)
	}
	first := segs[0]
	fi, err := os.Stat(first)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(first, fi.Size()-2); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(Options{Dir: dir})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Open = %v, want *CorruptError for non-final torn segment", err)
	}
}

func TestWALRotationAndRecoveryAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	streamOf(t, 50, Options{Dir: dir, SegmentBytes: 256})
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	got, rc := replayAll(t, dir)
	if len(got) != 50 || rc.LastLSN != 50 || rc.Segments != len(segs) {
		t.Fatalf("cross-segment recovery: %d records, %+v", len(got), rc)
	}
	// Appends continue after recovery with the lsn sequence intact.
	w, _, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(rec(51, 1, 51, "A")); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	w.Close()
	got, _ = replayAll(t, dir)
	if len(got) != 51 {
		t.Fatalf("post-recovery append lost: %d records", len(got))
	}
}

func TestWALShortWriteScrubbedAndRetryable(t *testing.T) {
	// faultinject: the 3rd Write lands only half the frame. Append must
	// report the failure, scrub the partial frame, and accept a retry.
	dir := t.TempDir()
	var ff *faultinject.FaultyFile
	opts := Options{Dir: dir, OpenFile: func(path string) (File, error) {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		ff = faultinject.NewFaultyFile(f).ShortWriteOnNth(3)
		return ff, nil
	}}
	w, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := w.Append(rec(uint64(i), 1, uint64(i), "A")); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := w.Append(rec(3, 1, 3, "A")); err == nil {
		t.Fatal("short write not surfaced")
	}
	// The WAL is not broken — the partial frame was scrubbed; retry works.
	if err := w.Append(rec(3, 1, 3, "A")); err != nil {
		t.Fatalf("retry after short write: %v", err)
	}
	w.Close()
	got, rc := replayAll(t, dir)
	if len(got) != 3 || rc.TornBytes != 0 {
		t.Fatalf("after scrubbed short write: %d records, recovery %+v", len(got), rc)
	}
}

func TestWALFsyncErrorIsSticky(t *testing.T) {
	// faultinject: fsync fails once. Durability of already-acked frames is
	// unknowable, so the WAL must go sticky-broken (the postgres lesson),
	// refusing all further appends.
	dir := t.TempDir()
	opts := Options{Dir: dir, OpenFile: func(path string) (File, error) {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		return faultinject.NewFaultyFile(f).FailSyncOnNth(2), nil
	}}
	w, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(rec(1, 1, 1, "A")); err != nil {
		t.Fatalf("Append 1: %v", err)
	}
	err = w.Append(rec(2, 1, 2, "A"))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("fsync fault not surfaced: %v", err)
	}
	if err := w.Append(rec(3, 1, 3, "A")); err == nil {
		t.Fatal("append accepted on a broken wal")
	}
	if err := w.Sync(); err == nil {
		t.Fatal("sync succeeded on a broken wal")
	}
}

func TestWALErrorAfterBytesLeavesPrefixRecoverable(t *testing.T) {
	// faultinject: the disk dies after 200 bytes. Whatever whole frames
	// landed before the cliff must recover; the torn remainder is truncated.
	dir := t.TempDir()
	opts := Options{Dir: dir, Policy: PolicyNever, OpenFile: func(path string) (File, error) {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		return faultinject.NewFaultyFile(f).ErrorAfterBytes(200), nil
	}}
	w, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for i := 1; i <= 20; i++ {
		if err := w.Append(rec(uint64(i), 1, uint64(i), "A")); err != nil {
			break
		}
		accepted++
	}
	w.Close()
	if accepted == 0 || accepted == 20 {
		t.Fatalf("fault did not bite mid-stream (accepted %d)", accepted)
	}
	got, _ := replayAll(t, dir)
	if len(got) < accepted {
		t.Fatalf("recovered %d < %d acknowledged records", len(got), accepted)
	}
}

func TestWALCrashHookAtFramePoints(t *testing.T) {
	// PanicAtPoint simulates dying exactly between framing and writing: no
	// bytes of the doomed frame may reach the disk.
	dir := t.TempDir()
	hook := faultinject.PanicAtPoint("append:framed", 3)
	w, _, err := Open(Options{Dir: dir, Hook: func(p string) { hook(p) }})
	if err != nil {
		t.Fatal(err)
	}
	crashed := func() (crashed bool) {
		defer func() { crashed = recover() != nil }()
		for i := 1; i <= 5; i++ {
			if err := w.Append(rec(uint64(i), 1, uint64(i), "A")); err != nil {
				t.Errorf("Append %d: %v", i, err)
			}
		}
		return false
	}()
	if !crashed {
		t.Fatal("crash hook never fired")
	}
	// Simulated kill: the file handle is simply abandoned, like a dead
	// process. Recovery sees exactly the two acknowledged records.
	got, rc := replayAll(t, dir)
	if len(got) != 2 || rc.TornBytes != 0 {
		t.Fatalf("after crash at append:framed: %d records, %+v", len(got), rc)
	}
}

func TestWALIntervalPolicyFlushesInBackground(t *testing.T) {
	dir := t.TempDir()
	synced := make(chan struct{}, 16)
	opts := Options{
		Dir:           dir,
		Policy:        PolicyInterval,
		FsyncInterval: 5 * time.Millisecond,
		ObserveFsync:  func(time.Duration) { synced <- struct{}{} },
	}
	w, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(rec(1, 1, 1, "A")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-synced:
	case <-time.After(2 * time.Second):
		t.Fatal("background fsync never fired")
	}
	if st := w.Stats(); st.Fsyncs == 0 {
		t.Fatalf("stats missed the background fsync: %+v", st)
	}
}

func TestWALStats(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := w.Append(rec(uint64(i), 1, uint64(i), "A")); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	w.Close()
	if st.Appends != 10 || st.LastLSN != 10 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Rotations == 0 || st.Segments < 2 {
		t.Fatalf("tiny segments did not rotate: %+v", st)
	}
	if st.Fsyncs < st.Appends {
		t.Fatalf("PolicyAlways must fsync per append: %+v", st)
	}
	if st.Bytes == 0 {
		t.Fatalf("no bytes accounted: %+v", st)
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"always": PolicyAlways, "": PolicyAlways, "interval": PolicyInterval, "never": PolicyNever} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestWALCRCMismatchOnFinalFrameIsTorn(t *testing.T) {
	// Flip a bit in the LAST frame's payload: the frame ends exactly at the
	// file end, so this is a partially flushed final frame — torn, not
	// corrupt.
	dir := streamOf(t, 6, Options{})
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, rc := replayAll(t, dir)
	if len(got) != 5 || rc.TornBytes == 0 {
		t.Fatalf("final-frame crc flip: %d records, %+v; want 5 + torn tail", len(got), rc)
	}
}

func TestWALIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"notes.txt", "wal-0000000000000001.wal.corrupt", "other.wal"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, rc, err := mustOpen(dir)
	if err != nil || rc.Segments != 0 {
		t.Fatalf("foreign files scanned: rc=%+v err=%v", rc, err)
	}
}
