package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"wlq/internal/wlog"
)

// frame encodes one record as a seed frame for the fuzzer.
func frame(t interface{ Fatal(...any) }, r wlog.Record) []byte {
	payload, err := encodePayload(r)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, castagnoli))
	copy(buf[headerSize:], payload)
	return buf
}

// FuzzScanSegment throws arbitrary bytes at the segment scanner as both the
// final and a non-final segment. The invariants under any input:
//
//   - the scanner never panics;
//   - as the final segment it either succeeds (goodOffset+tornBytes == size,
//     records consistent, lsns ascending) or reports a *CorruptError — never
//     a third state;
//   - as a non-final segment any imperfection is a *CorruptError;
//   - on success, re-scanning the goodOffset prefix yields the same records
//     with no torn bytes (truncation repair is a fixed point).
//
// Seeds: a clean two-record segment, then truncations and bit flips of it.
func FuzzScanSegment(f *testing.F) {
	r1 := wlog.Record{LSN: 1, WID: 1, Seq: 1, Activity: "START"}
	r2 := wlog.Record{LSN: 2, WID: 1, Seq: 2, Activity: "SeeDoctor"}
	clean := append(frame(f, r1), frame(f, r2)...)
	f.Add(clean)
	for _, cut := range []int{1, 4, headerSize, len(clean) / 2, len(clean) - 1} {
		if cut < len(clean) {
			f.Add(clean[:cut])
		}
	}
	for _, flip := range []int{0, 5, headerSize + 2, len(clean) - 3} {
		b := append([]byte(nil), clean...)
		b[flip] ^= 0x80
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		seg := filepath.Join(dir, "wal-0000000000000001.wal")
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Skip()
		}
		// Final-segment scan: success or CorruptError, nothing else.
		var got []wlog.Record
		res, err := scanSegment(seg, true, 0, func(r wlog.Record) error {
			got = append(got, r)
			return nil
		})
		if err != nil {
			if _, ok := err.(*CorruptError); !ok {
				t.Fatalf("final scan failed with non-corrupt error: %v", err)
			}
			return
		}
		if res.goodOffset+res.tornBytes != int64(len(data)) {
			t.Fatalf("offsets disagree: good=%d torn=%d size=%d", res.goodOffset, res.tornBytes, len(data))
		}
		if len(got) != res.records {
			t.Fatalf("emitted %d records, counted %d", len(got), res.records)
		}
		prev := uint64(0)
		for _, r := range got {
			if r.LSN <= prev {
				t.Fatalf("scanner admitted non-ascending lsn %d after %d", r.LSN, prev)
			}
			prev = r.LSN
		}
		// Repair fixed point: the good prefix re-scans identically, clean.
		if err := os.WriteFile(seg, data[:res.goodOffset], 0o644); err != nil {
			t.Skip()
		}
		res2, err := scanSegment(seg, true, 0, nil)
		if err != nil || res2.tornBytes != 0 || res2.records != res.records || res2.lastLSN != res.lastLSN {
			t.Fatalf("repaired prefix rescans differently: %+v vs %+v (err=%v)", res2, res, err)
		}
		// Non-final scan of the clean prefix must also succeed.
		if _, err := scanSegment(seg, false, 0, nil); err != nil {
			t.Fatalf("clean prefix rejected as non-final segment: %v", err)
		}
	})
}
