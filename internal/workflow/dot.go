package workflow

import (
	"fmt"
	"strconv"
	"strings"
)

// Dot renders the model as a Graphviz flowchart (BPMN-ish): rounded boxes
// for tasks, diamonds for XOR gateways, bars for AND split/join, a loop-back
// edge for loops. The output is ready for `dot -Tsvg`.
func (m *Model) Dot() string {
	d := &dotBuilder{}
	d.line("digraph %s {", strconv.Quote(m.Name))
	d.line("  rankdir=TB;")
	d.line("  node [fontsize=11];")
	d.line(`  start [shape=circle, label="", style=filled, fillcolor=black, width=0.25];`)
	d.line(`  end [shape=doublecircle, label="", style=filled, fillcolor=black, width=0.18];`)
	exit := d.emit(m.Root, "start")
	d.line("  %s -> end;", exit)
	d.line("}")
	return d.sb.String()
}

type dotBuilder struct {
	sb   strings.Builder
	next int
}

func (d *dotBuilder) line(format string, args ...any) {
	fmt.Fprintf(&d.sb, format+"\n", args...)
}

func (d *dotBuilder) fresh(prefix string) string {
	d.next++
	return fmt.Sprintf("%s%d", prefix, d.next)
}

// emit writes the subgraph for s entered from node `from` and returns the
// node every successor should attach to.
func (d *dotBuilder) emit(s Step, from string) string {
	switch s := s.(type) {
	case Task:
		id := d.fresh("t")
		d.line("  %s [shape=box, style=rounded, label=%s];", id, strconv.Quote(s.Name))
		d.line("  %s -> %s;", from, id)
		return id
	case Sequence:
		cur := from
		for _, sub := range s {
			cur = d.emit(sub, cur)
		}
		return cur
	case XOR:
		split := d.fresh("x")
		join := d.fresh("x")
		d.line(`  %s [shape=diamond, label="×", width=0.35, height=0.35];`, split)
		d.line(`  %s [shape=diamond, label="×", width=0.35, height=0.35];`, join)
		d.line("  %s -> %s;", from, split)
		total := 0.0
		for _, br := range s.Branches {
			total += br.Weight
		}
		for _, br := range s.Branches {
			label := fmt.Sprintf("%.0f%%", 100*br.Weight/total)
			if br.Step == nil {
				d.line("  %s -> %s [label=%s, style=dashed];", split, join, strconv.Quote(label))
				continue
			}
			exit := d.emitLabeled(br.Step, split, label)
			d.line("  %s -> %s;", exit, join)
		}
		return join
	case AND:
		split := d.fresh("a")
		join := d.fresh("a")
		d.line(`  %s [shape=box, label="∥", width=0.3, height=0.12, style=filled, fillcolor=black, fontcolor=white];`, split)
		d.line(`  %s [shape=box, label="∥", width=0.3, height=0.12, style=filled, fillcolor=black, fontcolor=white];`, join)
		d.line("  %s -> %s;", from, split)
		for _, br := range s.Branches {
			exit := d.emit(br, split)
			d.line("  %s -> %s;", exit, join)
		}
		return join
	case Loop:
		entry := d.fresh("l")
		d.line(`  %s [shape=point];`, entry)
		d.line("  %s -> %s;", from, entry)
		exit := d.emit(s.Body, entry)
		d.line("  %s -> %s [label=%s, style=dashed, constraint=false];",
			exit, entry, strconv.Quote(fmt.Sprintf("≤%d×, p=%.2f", s.MaxIter, s.ContinueProb)))
		return exit
	default:
		return from
	}
}

// emitLabeled is emit with a label on the entering edge (XOR branch
// probabilities).
func (d *dotBuilder) emitLabeled(s Step, from, label string) string {
	// Insert a labeled point so the branch probability sits on the first
	// edge regardless of the branch's internal structure.
	p := d.fresh("p")
	d.line("  %s [shape=point, width=0.05];", p)
	d.line("  %s -> %s [label=%s];", from, p, strconv.Quote(label))
	return d.emit(s, p)
}
