package workflow

import (
	"math/rand"
	"testing"
)

func conformModel() *Model {
	return &Model{
		Name: "conform",
		Root: Sequence{
			Task{Name: "A"},
			XOR{Branches: []Branch{
				{Weight: 1, Step: Task{Name: "B"}},
				{Weight: 1, Step: Task{Name: "C"}},
				{Weight: 1, Step: nil}, // skippable
			}},
			AND{Branches: []Step{
				Sequence{Task{Name: "D"}, Task{Name: "E"}},
				Task{Name: "F"},
			}},
			Loop{Body: Task{Name: "G"}, ContinueProb: 0.5, MaxIter: 2},
		},
	}
}

func TestAcceptsExactTraces(t *testing.T) {
	m := conformModel()
	accepted := [][]string{
		{"A", "B", "D", "E", "F", "G"},
		{"A", "C", "F", "D", "E", "G"},
		{"A", "D", "F", "E", "G"},           // XOR skipped; F interleaves D..E
		{"A", "B", "D", "E", "F", "G", "G"}, // loop twice
	}
	for _, tr := range accepted {
		if !m.Accepts(tr) {
			t.Errorf("Accepts(%v) = false", tr)
		}
	}
	rejected := [][]string{
		{},                                       // A is mandatory
		{"A"},                                    // AND and loop missing
		{"A", "B", "D", "E", "F"},                // loop body missing (runs ≥1)
		{"A", "B", "E", "D", "F", "G"},           // E before D breaks the branch
		{"A", "B", "C", "D", "E", "F", "G"},      // both XOR branches
		{"A", "B", "D", "E", "F", "G", "G", "G"}, // loop beyond MaxIter
		{"A", "B", "D", "E", "F", "G", "X"},      // unknown activity
		{"B", "A", "D", "E", "F", "G"},           // wrong start
		{"A", "B", "D", "E", "F", "F", "G"},      // F twice
	}
	for _, tr := range rejected {
		if m.Accepts(tr) {
			t.Errorf("Accepts(%v) = true", tr)
		}
	}
}

func TestAcceptsPrefix(t *testing.T) {
	m := conformModel()
	prefixes := [][]string{
		{},
		{"A"},
		{"A", "B"},
		{"A", "D"},
		{"A", "C", "F", "D"},
	}
	for _, tr := range prefixes {
		if !m.AcceptsPrefix(tr) {
			t.Errorf("AcceptsPrefix(%v) = false", tr)
		}
	}
	bad := [][]string{
		{"B"},
		{"A", "A"},
		{"A", "B", "C"},
		{"A", "B", "E"},
	}
	for _, tr := range bad {
		if m.AcceptsPrefix(tr) {
			t.Errorf("AcceptsPrefix(%v) = true", tr)
		}
	}
	// A complete trace is also a valid prefix.
	if !m.AcceptsPrefix([]string{"A", "B", "D", "E", "F", "G"}) {
		t.Error("complete trace rejected as prefix")
	}
}

// TestEveryExpansionConforms: model expansions are, by construction, words
// of the model's language.
func TestEveryExpansionConforms(t *testing.T) {
	models := []*Model{
		conformModel(),
		{Name: "nested", Root: Sequence{
			Loop{Body: AND{Branches: []Step{
				Task{Name: "P"},
				XOR{Branches: []Branch{
					{Weight: 1, Step: Task{Name: "Q"}},
					{Weight: 1, Step: Sequence{Task{Name: "R"}, Task{Name: "S"}}},
				}},
			}}, ContinueProb: 0.5, MaxIter: 3},
			Task{Name: "T"},
		}},
	}
	rng := rand.New(rand.NewSource(44))
	for _, m := range models {
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 300; trial++ {
			tasks := m.Expand(rng)
			trace := make([]string, len(tasks))
			for i, task := range tasks {
				trace[i] = task.Name
			}
			if !m.Accepts(trace) {
				t.Fatalf("%s: expansion %v rejected", m.Name, trace)
			}
			for cut := 0; cut <= len(trace); cut++ {
				if !m.AcceptsPrefix(trace[:cut]) {
					t.Fatalf("%s: prefix %v rejected", m.Name, trace[:cut])
				}
			}
		}
	}
}

// TestMutatedExpansionsMostlyRejected: random single-mutation corruptions
// of valid traces are usually outside the language (not always — a swap can
// produce another valid interleaving — so the test demands a high rejection
// rate, not totality).
func TestMutatedExpansionsMostlyRejected(t *testing.T) {
	m := conformModel()
	rng := rand.New(rand.NewSource(45))
	total, rejected := 0, 0
	for trial := 0; trial < 300; trial++ {
		tasks := m.Expand(rng)
		trace := make([]string, len(tasks))
		for i, task := range tasks {
			trace[i] = task.Name
		}
		mutated := append([]string{}, trace...)
		switch rng.Intn(3) {
		case 0: // drop one activity
			i := rng.Intn(len(mutated))
			mutated = append(mutated[:i], mutated[i+1:]...)
		case 1: // duplicate one activity
			i := rng.Intn(len(mutated))
			mutated = append(mutated[:i+1], mutated[i:]...)
		case 2: // inject a foreign activity
			i := rng.Intn(len(mutated) + 1)
			mutated = append(mutated[:i], append([]string{"ZZZ"}, mutated[i:]...)...)
		}
		total++
		if !m.Accepts(mutated) {
			rejected++
		}
	}
	// Some mutations land back inside the language (duplicating the loop
	// body within MaxIter, dropping an optional XOR activity), so demand a
	// high rate, not totality.
	if rate := float64(rejected) / float64(total); rate < 0.8 {
		t.Errorf("mutation rejection rate %.2f, want ≥ 0.8", rate)
	}
}

func TestAcceptsDoesNotMutateModel(t *testing.T) {
	m := conformModel()
	before := key(m.Root)
	m.Accepts([]string{"A", "B", "D", "E", "F", "G"})
	if key(m.Root) != before {
		t.Error("Accepts mutated the model")
	}
}

func TestNullable(t *testing.T) {
	tests := []struct {
		name string
		s    Step
		want bool
	}{
		{"task", Task{Name: "A"}, false},
		{"done", doneStep{}, true},
		{"skippable xor", XOR{Branches: []Branch{{Weight: 1, Step: nil}}}, true},
		{"mandatory xor", XOR{Branches: []Branch{{Weight: 1, Step: Task{Name: "A"}}}}, false},
		{"sequence of nullables", Sequence{XOR{Branches: []Branch{{Weight: 1, Step: nil}}}}, true},
		{"sequence with task", Sequence{Task{Name: "A"}}, false},
		{"and of nullables", AND{Branches: []Step{
			XOR{Branches: []Branch{{Weight: 1, Step: nil}}},
			XOR{Branches: []Branch{{Weight: 1, Step: nil}}},
		}}, true},
		{"loop of task", Loop{Body: Task{Name: "A"}, MaxIter: 3}, false},
		{"loop of nullable", Loop{Body: XOR{Branches: []Branch{{Weight: 1, Step: nil}}}, MaxIter: 3}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := nullable(tt.s); got != tt.want {
				t.Errorf("nullable = %v, want %v", got, tt.want)
			}
		})
	}
}
