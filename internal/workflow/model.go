// Package workflow implements a block-structured, data-centric workflow
// model: tasks with data effects composed by sequence, exclusive choice
// (XOR gateways), parallel branches (AND gateways) and probabilistic loops —
// the BPMN constructs the paper's operators are "inspired by" (Section 1).
//
// The model is the substrate that produces workflow logs: the paper queries
// logs recorded by a workflow engine, so this package (together with
// internal/enact) stands in for that engine. A model expands, under a seeded
// random source, into per-instance activity traces whose interleavings and
// data attributes internal/enact turns into valid logs per Definition 2.
package workflow

import (
	"errors"
	"fmt"
	"math/rand"

	"wlq/internal/wlog"
)

// Effect computes a task's attribute reads and writes given the instance's
// current attribute state. The engine merges out into the state after the
// task executes. A nil Effect reads and writes nothing.
type Effect func(state wlog.AttrMap, rng *rand.Rand) (in, out wlog.AttrMap)

// Step is one block of a workflow model. Implementations: Task, Sequence,
// XOR, AND, Loop. The interface is sealed.
type Step interface {
	isStep()
	// validate checks structural well-formedness.
	validate() error
}

// Compile-time interface checks.
var (
	_ Step = Task{}
	_ Step = Sequence(nil)
	_ Step = XOR{}
	_ Step = AND{}
	_ Step = Loop{}
)

// Task is an atomic activity with an optional data effect.
type Task struct {
	Name   string
	Effect Effect
}

func (Task) isStep() {}

func (t Task) validate() error {
	if t.Name == "" {
		return errors.New("workflow: task with empty name")
	}
	if t.Name == wlog.ActivityStart || t.Name == wlog.ActivityEnd {
		return fmt.Errorf("workflow: task name %q is reserved", t.Name)
	}
	return nil
}

// Sequence executes its steps in order.
type Sequence []Step

func (Sequence) isStep() {}

func (s Sequence) validate() error {
	if len(s) == 0 {
		return errors.New("workflow: empty sequence")
	}
	for _, step := range s {
		if err := step.validate(); err != nil {
			return err
		}
	}
	return nil
}

// Branch is one alternative of an XOR gateway with a relative weight.
type Branch struct {
	// Weight is the branch's relative probability mass; must be positive.
	Weight float64
	// Step may be nil, modeling a skip branch (the XOR contributes nothing).
	Step Step
}

// XOR executes exactly one branch, chosen with probability proportional to
// its weight (an exclusive gateway).
type XOR struct {
	Branches []Branch
}

func (XOR) isStep() {}

func (x XOR) validate() error {
	if len(x.Branches) == 0 {
		return errors.New("workflow: XOR with no branches")
	}
	for i, br := range x.Branches {
		if br.Weight <= 0 {
			return fmt.Errorf("workflow: XOR branch %d has non-positive weight %g", i, br.Weight)
		}
		if br.Step != nil {
			if err := br.Step.validate(); err != nil {
				return err
			}
		}
	}
	return nil
}

// AND executes all branches, randomly interleaved (a parallel gateway:
// split before, join after).
type AND struct {
	Branches []Step
}

func (AND) isStep() {}

func (a AND) validate() error {
	if len(a.Branches) < 2 {
		return errors.New("workflow: AND needs at least two branches")
	}
	for _, br := range a.Branches {
		if err := br.validate(); err != nil {
			return err
		}
	}
	return nil
}

// Loop executes Body at least once, then repeats it with probability
// ContinueProb after each iteration, up to MaxIter iterations in total.
type Loop struct {
	Body         Step
	ContinueProb float64
	// MaxIter caps the total iterations; it must be at least 1.
	MaxIter int
}

func (Loop) isStep() {}

func (l Loop) validate() error {
	if l.Body == nil {
		return errors.New("workflow: loop with nil body")
	}
	if l.ContinueProb < 0 || l.ContinueProb >= 1 {
		return fmt.Errorf("workflow: loop continue probability %g outside [0, 1)", l.ContinueProb)
	}
	if l.MaxIter < 1 {
		return fmt.Errorf("workflow: loop MaxIter %d < 1", l.MaxIter)
	}
	return l.Body.validate()
}

// Model is a named workflow definition.
type Model struct {
	Name string
	Root Step
}

// Validate checks the model for structural problems.
func (m *Model) Validate() error {
	if m.Name == "" {
		return errors.New("workflow: model with empty name")
	}
	if m.Root == nil {
		return errors.New("workflow: model with nil root")
	}
	return m.Root.validate()
}

// Activities returns the distinct task names reachable in the model,
// in first-occurrence order.
func (m *Model) Activities() []string {
	var names []string
	seen := make(map[string]struct{})
	var walk func(Step)
	walk = func(s Step) {
		switch s := s.(type) {
		case Task:
			if _, ok := seen[s.Name]; !ok {
				seen[s.Name] = struct{}{}
				names = append(names, s.Name)
			}
		case Sequence:
			for _, sub := range s {
				walk(sub)
			}
		case XOR:
			for _, br := range s.Branches {
				if br.Step != nil {
					walk(br.Step)
				}
			}
		case AND:
			for _, br := range s.Branches {
				walk(br)
			}
		case Loop:
			walk(s.Body)
		}
	}
	if m.Root != nil {
		walk(m.Root)
	}
	return names
}

// Expand unrolls the model into one concrete activity trace using the given
// random source: XOR branches are drawn by weight, loops by coin flips, and
// AND branches are shuffled together by a random order-preserving merge.
// The returned tasks carry their effects for the enactment engine to apply.
func (m *Model) Expand(rng *rand.Rand) []Task {
	return expand(m.Root, rng)
}

func expand(s Step, rng *rand.Rand) []Task {
	switch s := s.(type) {
	case Task:
		return []Task{s}
	case Sequence:
		var out []Task
		for _, sub := range s {
			out = append(out, expand(sub, rng)...)
		}
		return out
	case XOR:
		total := 0.0
		for _, br := range s.Branches {
			total += br.Weight
		}
		pick := rng.Float64() * total
		for _, br := range s.Branches {
			pick -= br.Weight
			if pick < 0 {
				if br.Step == nil {
					return nil
				}
				return expand(br.Step, rng)
			}
		}
		// Floating-point edge: fall back to the last branch.
		last := s.Branches[len(s.Branches)-1]
		if last.Step == nil {
			return nil
		}
		return expand(last.Step, rng)
	case AND:
		traces := make([][]Task, 0, len(s.Branches))
		for _, br := range s.Branches {
			traces = append(traces, expand(br, rng))
		}
		return shuffleMerge(traces, rng)
	case Loop:
		var out []Task
		for iter := 0; iter < s.MaxIter; iter++ {
			out = append(out, expand(s.Body, rng)...)
			if rng.Float64() >= s.ContinueProb {
				break
			}
		}
		return out
	default:
		panic(fmt.Sprintf("workflow: unknown step %T", s))
	}
}

// shuffleMerge merges the traces into one, preserving each trace's internal
// order and choosing the next contributor uniformly among the remaining
// tasks (a uniform random shuffle of the multiset of positions).
func shuffleMerge(traces [][]Task, rng *rand.Rand) []Task {
	total := 0
	for _, tr := range traces {
		total += len(tr)
	}
	out := make([]Task, 0, total)
	idx := make([]int, len(traces))
	remaining := total
	for remaining > 0 {
		// Pick a trace with probability proportional to its remaining
		// length: this yields a uniform random interleaving.
		pick := rng.Intn(remaining)
		for i, tr := range traces {
			left := len(tr) - idx[i]
			if pick < left {
				out = append(out, tr[idx[i]])
				idx[i]++
				remaining--
				break
			}
			pick -= left
		}
	}
	return out
}
