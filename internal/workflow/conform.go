package workflow

import (
	"sort"
	"strconv"
	"strings"
)

// Conformance checking: does an observed activity trace belong to the
// language of a model? Accepts answers this by stepping a set of residual
// process terms through the trace, Brzozowski-derivative style:
//
//	state   := set of residual Steps (what may still run)
//	step(a) := for each residual, every way to consume activity a
//	accept  := after the whole trace, some residual is nullable (may stop)
//
// Sequence, XOR and Loop derive structurally; AND derives in any branch
// while the others stay put, which handles interleavings without
// enumerating them. State sets are deduplicated by a canonical printed
// form, so the walk stays polynomial for realistic models.

// doneStep is the residual of a completed block: nullable, derives nothing.
type doneStep struct{}

func (doneStep) isStep()         {}
func (doneStep) validate() error { return nil }

// Accepts reports whether the trace (activity names, without START/END) is
// a possible complete execution of the model.
func (m *Model) Accepts(trace []string) bool {
	states := map[string]Step{key(m.Root): m.Root}
	for _, activity := range trace {
		next := make(map[string]Step)
		for _, st := range states {
			for _, d := range derive(st, activity) {
				next[key(d)] = d
			}
		}
		if len(next) == 0 {
			return false
		}
		states = next
	}
	for _, st := range states {
		if nullable(st) {
			return true
		}
	}
	return false
}

// AcceptsPrefix reports whether the trace is a prefix of some complete
// execution — the right check for instances still in flight (no END yet).
func (m *Model) AcceptsPrefix(trace []string) bool {
	states := map[string]Step{key(m.Root): m.Root}
	for _, activity := range trace {
		next := make(map[string]Step)
		for _, st := range states {
			for _, d := range derive(st, activity) {
				next[key(d)] = d
			}
		}
		if len(next) == 0 {
			return false
		}
		states = next
	}
	return true
}

// nullable reports whether the residual can terminate without consuming
// more activities.
func nullable(s Step) bool {
	switch s := s.(type) {
	case doneStep:
		return true
	case Task:
		return false
	case Sequence:
		for _, sub := range s {
			if !nullable(sub) {
				return false
			}
		}
		return true
	case XOR:
		for _, br := range s.Branches {
			if br.Step == nil || nullable(br.Step) {
				return true
			}
		}
		return false
	case AND:
		for _, br := range s.Branches {
			if !nullable(br) {
				return false
			}
		}
		return true
	case Loop:
		// The body runs at least once.
		return nullable(s.Body)
	default:
		return false
	}
}

// derive returns every residual after s consumes the activity.
func derive(s Step, activity string) []Step {
	switch s := s.(type) {
	case doneStep:
		return nil
	case Task:
		if s.Name == activity {
			return []Step{doneStep{}}
		}
		return nil
	case Sequence:
		if len(s) == 0 {
			return nil
		}
		var out []Step
		// Consume in the head.
		for _, d := range derive(s[0], activity) {
			out = append(out, seq(d, s[1:]))
		}
		// Or skip a nullable head and consume later.
		if nullable(s[0]) {
			out = append(out, derive(Sequence(s[1:]), activity)...)
		}
		return out
	case XOR:
		var out []Step
		for _, br := range s.Branches {
			if br.Step == nil {
				continue
			}
			out = append(out, derive(br.Step, activity)...)
		}
		return out
	case AND:
		var out []Step
		for i, br := range s.Branches {
			for _, d := range derive(br, activity) {
				rest := make([]Step, len(s.Branches))
				copy(rest, s.Branches)
				rest[i] = d
				out = append(out, pruneAND(rest))
			}
		}
		return out
	case Loop:
		var out []Step
		for _, d := range derive(s.Body, activity) {
			if s.MaxIter > 1 {
				// Finish this iteration, then optionally loop again.
				again := XOR{Branches: []Branch{
					{Weight: 1, Step: nil},
					{Weight: 1, Step: Loop{Body: s.Body, ContinueProb: s.ContinueProb, MaxIter: s.MaxIter - 1}},
				}}
				out = append(out, seq(d, Sequence{again}))
			} else {
				out = append(out, d)
			}
		}
		return out
	default:
		return nil
	}
}

// seq prepends a residual to the remaining steps, simplifying done heads.
func seq(head Step, tail Sequence) Step {
	if _, ok := head.(doneStep); ok {
		switch len(tail) {
		case 0:
			return doneStep{}
		case 1:
			return tail[0]
		default:
			return Sequence(append([]Step{}, tail...))
		}
	}
	if len(tail) == 0 {
		return head
	}
	return Sequence(append([]Step{head}, tail...))
}

// pruneAND drops completed branches; a fully completed AND is done.
func pruneAND(branches []Step) Step {
	var live []Step
	for _, br := range branches {
		if _, ok := br.(doneStep); !ok {
			live = append(live, br)
		}
	}
	switch len(live) {
	case 0:
		return doneStep{}
	case 1:
		return live[0]
	default:
		return AND{Branches: live}
	}
}

// key renders a residual canonically for state-set deduplication. AND
// branches are order-normalized (interleaving makes branch order
// irrelevant); weights and probabilities are ignored (they do not affect
// the language).
func key(s Step) string {
	var sb strings.Builder
	writeKey(&sb, s)
	return sb.String()
}

func writeKey(sb *strings.Builder, s Step) {
	switch s := s.(type) {
	case doneStep:
		sb.WriteString("√")
	case Task:
		sb.WriteString(s.Name)
	case Sequence:
		sb.WriteString("(;")
		for _, sub := range s {
			sb.WriteByte(' ')
			writeKey(sb, sub)
		}
		sb.WriteByte(')')
	case XOR:
		keys := make([]string, 0, len(s.Branches))
		for _, br := range s.Branches {
			if br.Step == nil {
				keys = append(keys, "ε")
				continue
			}
			keys = append(keys, key(br.Step))
		}
		sort.Strings(keys)
		sb.WriteString("(+ " + strings.Join(keys, " ") + ")")
	case AND:
		keys := make([]string, 0, len(s.Branches))
		for _, br := range s.Branches {
			keys = append(keys, key(br))
		}
		sort.Strings(keys)
		sb.WriteString("(∥ " + strings.Join(keys, " ") + ")")
	case Loop:
		sb.WriteString("(*")
		writeKey(sb, s.Body)
		sb.WriteString(" x")
		sb.WriteString(strconv.Itoa(s.MaxIter))
		sb.WriteByte(')')
	}
}
