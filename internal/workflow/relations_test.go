package workflow

import (
	"math/rand"
	"testing"
)

func TestRelationsSequence(t *testing.T) {
	m := &Model{Name: "seq", Root: Sequence{
		Task{Name: "A"}, Task{Name: "B"}, Task{Name: "C"},
	}}
	r, err := ComputeRelations(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Alphabet) != 3 {
		t.Fatalf("alphabet = %v", r.Alphabet)
	}
	type rel struct {
		a, b   string
		df, ef bool
	}
	checks := []rel{
		{"A", "B", true, true},
		{"B", "C", true, true},
		{"A", "C", false, true},
		{"B", "A", false, false},
		{"C", "A", false, false},
		{"A", "A", false, false},
	}
	for _, c := range checks {
		if got := r.DirectlyFollows(c.a, c.b); got != c.df {
			t.Errorf("DF(%s,%s) = %v, want %v", c.a, c.b, got, c.df)
		}
		if got := r.EventuallyFollows(c.a, c.b); got != c.ef {
			t.Errorf("EF(%s,%s) = %v, want %v", c.a, c.b, got, c.ef)
		}
	}
}

func TestRelationsXORAndLoop(t *testing.T) {
	m := &Model{Name: "xl", Root: Sequence{
		XOR{Branches: []Branch{
			{Weight: 1, Step: Task{Name: "B"}},
			{Weight: 1, Step: Task{Name: "C"}},
		}},
		Loop{Body: Task{Name: "D"}, ContinueProb: 0.5, MaxIter: 3},
	}}
	r, err := ComputeRelations(m)
	if err != nil {
		t.Fatal(err)
	}
	// B and C are alternatives: never ordered relative to each other.
	if r.EventuallyFollows("B", "C") || r.EventuallyFollows("C", "B") {
		t.Error("XOR alternatives ordered")
	}
	// The loop makes D follow itself.
	if !r.DirectlyFollows("D", "D") || !r.EventuallyFollows("D", "D") {
		t.Error("loop self-follow missing")
	}
	if !r.DirectlyFollows("B", "D") || !r.DirectlyFollows("C", "D") {
		t.Error("branch to loop DF missing")
	}
	if r.EventuallyFollows("D", "B") {
		t.Error("D precedes B?")
	}
}

func TestRelationsAND(t *testing.T) {
	m := &Model{Name: "and", Root: AND{Branches: []Step{
		Sequence{Task{Name: "P"}, Task{Name: "Q"}},
		Task{Name: "R"},
	}}}
	r, err := ComputeRelations(m)
	if err != nil {
		t.Fatal(err)
	}
	// R interleaves anywhere: both orders possible against P and Q.
	for _, pair := range [][2]string{{"P", "R"}, {"R", "P"}, {"Q", "R"}, {"R", "Q"}} {
		if !r.EventuallyFollows(pair[0], pair[1]) {
			t.Errorf("EF(%s,%s) = false under AND", pair[0], pair[1])
		}
	}
	// Branch-internal order still holds strictly.
	if r.EventuallyFollows("Q", "P") {
		t.Error("Q before P inside a sequence branch")
	}
	if !r.DirectlyFollows("P", "Q") {
		t.Error("DF(P,Q) missing")
	}
}

// TestRelationsMatchExpansions: relations computed from the state graph
// must agree with relations observed across many random expansions
// (observed ⊆ computed always; equality given enough samples on small
// models).
func TestRelationsMatchExpansions(t *testing.T) {
	m := conformModel()
	r, err := ComputeRelations(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	observedDF := map[[2]string]bool{}
	observedEF := map[[2]string]bool{}
	for trial := 0; trial < 4000; trial++ {
		tasks := m.Expand(rng)
		for i := range tasks {
			if i+1 < len(tasks) {
				observedDF[[2]string{tasks[i].Name, tasks[i+1].Name}] = true
			}
			for j := i + 1; j < len(tasks); j++ {
				observedEF[[2]string{tasks[i].Name, tasks[j].Name}] = true
			}
		}
	}
	for pair := range observedDF {
		if !r.DirectlyFollows(pair[0], pair[1]) {
			t.Errorf("observed DF %v not computed", pair)
		}
	}
	for pair := range observedEF {
		if !r.EventuallyFollows(pair[0], pair[1]) {
			t.Errorf("observed EF %v not computed", pair)
		}
	}
	// And the computed relations are tight on this model: everything
	// computed shows up in 4000 samples.
	for _, a := range r.Alphabet {
		for _, b := range r.Alphabet {
			if r.DirectlyFollows(a, b) && !observedDF[[2]string{a, b}] {
				t.Errorf("computed DF(%s,%s) never observed", a, b)
			}
			if r.EventuallyFollows(a, b) && !observedEF[[2]string{a, b}] {
				t.Errorf("computed EF(%s,%s) never observed", a, b)
			}
		}
	}
}

func TestRelationsInvalidModel(t *testing.T) {
	if _, err := ComputeRelations(&Model{Name: "bad", Root: Sequence{}}); err == nil {
		t.Error("invalid model accepted")
	}
}
