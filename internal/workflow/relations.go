package workflow

import (
	"fmt"
	"sort"
)

// Language relations. Relations computes, exactly, which activity orderings
// the model's language permits:
//
//   - DirectlyFollows(a, b): some word of the language contains a
//     immediately followed by b.
//   - EventuallyFollows(a, b): some word contains a with b anywhere later.
//
// The computation explores the residual-state graph of the conformance
// checker (conform.go): states are canonical residual terms, edges are
// activity-labeled derivative steps. Every derivative consumes one activity
// and loops carry a strictly decreasing iteration bound, so the graph is a
// DAG and label reachability is a memoized traversal — no sampling, no
// approximation.
//
// The complements of these relations are exactly the "queries from business
// principles" the paper's conclusion envisions: if the model never allows b
// (eventually) after a, then the incident pattern `a -> b` must be empty on
// any conforming log; a non-empty result is a deviation (internal/audit
// builds on this).
type Relations struct {
	// Alphabet is the model's activity set, sorted.
	Alphabet []string
	df       map[[2]string]bool
	ef       map[[2]string]bool
}

// DirectlyFollows reports whether some execution runs a then b adjacently.
func (r *Relations) DirectlyFollows(a, b string) bool { return r.df[[2]string{a, b}] }

// EventuallyFollows reports whether some execution runs a with b later.
func (r *Relations) EventuallyFollows(a, b string) bool { return r.ef[[2]string{a, b}] }

// maxRelationStates bounds the residual-state exploration; block-structured
// models of realistic size stay far below it (the bound exists because AND
// blocks multiply branch positions).
const maxRelationStates = 200000

// ComputeRelations explores the model's residual-state graph and returns
// its exact ordering relations. It returns an error if the model is invalid
// or the state space exceeds the safety bound.
func ComputeRelations(m *Model) (*Relations, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	alphabet := m.Activities()
	sort.Strings(alphabet)

	type edge struct {
		label string
		to    string
	}
	states := map[string]Step{}
	edges := map[string][]edge{}

	rootKey := key(m.Root)
	states[rootKey] = m.Root
	frontier := []string{rootKey}
	for len(frontier) > 0 {
		k := frontier[0]
		frontier = frontier[1:]
		s := states[k]
		for _, a := range alphabet {
			for _, d := range derive(s, a) {
				dk := key(d)
				if _, seen := states[dk]; !seen {
					if len(states) >= maxRelationStates {
						return nil, fmt.Errorf(
							"workflow: model %q exceeds %d residual states; relations not computed",
							m.Name, maxRelationStates)
					}
					states[dk] = d
					frontier = append(frontier, dk)
				}
				edges[k] = append(edges[k], edge{label: a, to: dk})
			}
		}
	}

	// reach[state] = set of labels firable somewhere at-or-after the state.
	// The graph is a DAG (each step consumes an activity from a finite
	// expansion), so plain memoized recursion terminates.
	reach := make(map[string]map[string]bool, len(states))
	var labelsFrom func(k string) map[string]bool
	labelsFrom = func(k string) map[string]bool {
		if r, ok := reach[k]; ok {
			return r
		}
		r := map[string]bool{}
		reach[k] = r // DAG: no cycle can revisit k mid-computation
		for _, e := range edges[k] {
			r[e.label] = true
			for l := range labelsFrom(e.to) {
				r[l] = true
			}
		}
		return r
	}

	rel := &Relations{
		Alphabet: alphabet,
		df:       map[[2]string]bool{},
		ef:       map[[2]string]bool{},
	}
	for k := range states {
		for _, e := range edges[k] {
			for _, next := range edges[e.to] {
				rel.df[[2]string{e.label, next.label}] = true
			}
			for l := range labelsFrom(e.to) {
				rel.ef[[2]string{e.label, l}] = true
			}
		}
	}
	return rel, nil
}
