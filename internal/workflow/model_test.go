package workflow

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"wlq/internal/wlog"
)

func task(name string) Task { return Task{Name: name} }

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		m    Model
	}{
		{"empty model name", Model{Root: task("A")}},
		{"nil root", Model{Name: "m"}},
		{"empty task name", Model{Name: "m", Root: task("")}},
		{"reserved START", Model{Name: "m", Root: task(wlog.ActivityStart)}},
		{"reserved END", Model{Name: "m", Root: task(wlog.ActivityEnd)}},
		{"empty sequence", Model{Name: "m", Root: Sequence{}}},
		{"bad nested task", Model{Name: "m", Root: Sequence{task("A"), task("")}}},
		{"XOR no branches", Model{Name: "m", Root: XOR{}}},
		{"XOR zero weight", Model{Name: "m", Root: XOR{Branches: []Branch{{Weight: 0, Step: task("A")}}}}},
		{"XOR bad branch", Model{Name: "m", Root: XOR{Branches: []Branch{{Weight: 1, Step: task("")}}}}},
		{"AND one branch", Model{Name: "m", Root: AND{Branches: []Step{task("A")}}}},
		{"AND bad branch", Model{Name: "m", Root: AND{Branches: []Step{task("A"), Sequence{}}}}},
		{"loop nil body", Model{Name: "m", Root: Loop{MaxIter: 1}}},
		{"loop bad prob", Model{Name: "m", Root: Loop{Body: task("A"), ContinueProb: 1.0, MaxIter: 2}}},
		{"loop negative prob", Model{Name: "m", Root: Loop{Body: task("A"), ContinueProb: -0.1, MaxIter: 2}}},
		{"loop zero max", Model{Name: "m", Root: Loop{Body: task("A"), ContinueProb: 0.5, MaxIter: 0}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.m.Validate(); err == nil {
				t.Error("Validate: want error")
			}
		})
	}
}

func TestValidateOK(t *testing.T) {
	m := Model{
		Name: "ok",
		Root: Sequence{
			task("A"),
			XOR{Branches: []Branch{
				{Weight: 1, Step: task("B")},
				{Weight: 3, Step: nil}, // skip branch
			}},
			AND{Branches: []Step{task("C"), Sequence{task("D"), task("E")}}},
			Loop{Body: task("F"), ContinueProb: 0.5, MaxIter: 4},
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	acts := m.Activities()
	if strings.Join(acts, ",") != "A,B,C,D,E,F" {
		t.Errorf("Activities = %v", acts)
	}
}

func TestExpandSequenceAndTask(t *testing.T) {
	m := Model{Name: "m", Root: Sequence{task("A"), task("B"), task("C")}}
	got := m.Expand(rand.New(rand.NewSource(1)))
	if len(got) != 3 || got[0].Name != "A" || got[1].Name != "B" || got[2].Name != "C" {
		t.Errorf("Expand = %v", got)
	}
}

func TestExpandXORRespectsWeights(t *testing.T) {
	m := Model{Name: "m", Root: XOR{Branches: []Branch{
		{Weight: 3, Step: task("A")},
		{Weight: 1, Step: task("B")},
	}}}
	rng := rand.New(rand.NewSource(5))
	counts := map[string]int{}
	const trials = 10000
	for i := 0; i < trials; i++ {
		tr := m.Expand(rng)
		if len(tr) != 1 {
			t.Fatalf("XOR expansion length %d", len(tr))
		}
		counts[tr[0].Name]++
	}
	ratio := float64(counts["A"]) / float64(trials)
	if math.Abs(ratio-0.75) > 0.02 {
		t.Errorf("branch A frequency %.3f, want ≈0.75", ratio)
	}
}

func TestExpandXORSkipBranch(t *testing.T) {
	m := Model{Name: "m", Root: XOR{Branches: []Branch{{Weight: 1, Step: nil}}}}
	if got := m.Expand(rand.New(rand.NewSource(2))); len(got) != 0 {
		t.Errorf("skip branch produced %v", got)
	}
}

func TestExpandANDPreservesBranchOrder(t *testing.T) {
	m := Model{Name: "m", Root: AND{Branches: []Step{
		Sequence{task("A1"), task("A2"), task("A3")},
		Sequence{task("B1"), task("B2")},
	}}}
	rng := rand.New(rand.NewSource(7))
	sawInterleaving := false
	for trial := 0; trial < 200; trial++ {
		tr := m.Expand(rng)
		if len(tr) != 5 {
			t.Fatalf("AND expansion length %d, want 5", len(tr))
		}
		posA, posB := []int{}, []int{}
		for i, tk := range tr {
			if strings.HasPrefix(tk.Name, "A") {
				posA = append(posA, i)
			} else {
				posB = append(posB, i)
			}
		}
		if len(posA) != 3 || len(posB) != 2 {
			t.Fatalf("lost tasks: %v", tr)
		}
		for i := 1; i < len(posA); i++ {
			if posA[i] < posA[i-1] {
				t.Fatalf("branch A order violated: %v", tr)
			}
		}
		// Branch-internal name order must also hold.
		namesA := []string{tr[posA[0]].Name, tr[posA[1]].Name, tr[posA[2]].Name}
		if strings.Join(namesA, ",") != "A1,A2,A3" {
			t.Fatalf("branch A sequence broken: %v", namesA)
		}
		if posB[0] < posA[2] && posA[0] < posB[1] {
			sawInterleaving = true
		}
	}
	if !sawInterleaving {
		t.Error("200 trials produced no genuine interleaving")
	}
}

func TestExpandLoopBounds(t *testing.T) {
	m := Model{Name: "m", Root: Loop{Body: task("A"), ContinueProb: 0.9, MaxIter: 5}}
	rng := rand.New(rand.NewSource(9))
	sawMultiple := false
	for trial := 0; trial < 500; trial++ {
		tr := m.Expand(rng)
		if len(tr) < 1 || len(tr) > 5 {
			t.Fatalf("loop produced %d iterations, want 1..5", len(tr))
		}
		if len(tr) > 1 {
			sawMultiple = true
		}
	}
	if !sawMultiple {
		t.Error("loop with p=0.9 never iterated twice")
	}
}

func TestExpandLoopNeverContinuesAtZeroProb(t *testing.T) {
	m := Model{Name: "m", Root: Loop{Body: task("A"), ContinueProb: 0, MaxIter: 10}}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		if got := m.Expand(rng); len(got) != 1 {
			t.Fatalf("loop with p=0 ran %d times", len(got))
		}
	}
}

func TestExpandDeterministicForSeed(t *testing.T) {
	m := Model{Name: "m", Root: Sequence{
		XOR{Branches: []Branch{{Weight: 1, Step: task("A")}, {Weight: 1, Step: task("B")}}},
		Loop{Body: task("C"), ContinueProb: 0.5, MaxIter: 4},
		AND{Branches: []Step{task("D"), task("E")}},
	}}
	a := m.Expand(rand.New(rand.NewSource(42)))
	b := m.Expand(rand.New(rand.NewSource(42)))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("expansion not deterministic at %d: %s vs %s", i, a[i].Name, b[i].Name)
		}
	}
}

func TestShuffleMergeUniformCoverage(t *testing.T) {
	// Merging [X] and [Y] must produce both orders over many trials.
	m := Model{Name: "m", Root: AND{Branches: []Step{task("X"), task("Y")}}}
	rng := rand.New(rand.NewSource(13))
	first := map[string]int{}
	const trials = 4000
	for i := 0; i < trials; i++ {
		first[m.Expand(rng)[0].Name]++
	}
	ratio := float64(first["X"]) / float64(trials)
	if math.Abs(ratio-0.5) > 0.03 {
		t.Errorf("X first %.3f of the time, want ≈0.5", ratio)
	}
}
