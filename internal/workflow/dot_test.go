package workflow

import (
	"strings"
	"testing"
)

func TestModelDot(t *testing.T) {
	dot := conformModel().Dot()
	for _, want := range []string{
		`digraph "conform" {`,
		"start [shape=circle",
		"end [shape=doublecircle",
		`label="A"`,
		`label="G"`,
		"shape=diamond",    // XOR gateways
		"fillcolor=black",  // AND bars
		"constraint=false", // loop-back edge
		"style=dashed",     // skip branch + loop edge
		"33%",              // branch probability
		"}",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot missing %q:\n%s", want, dot)
		}
	}
	// Balanced braces and every edge references declared nodes (cheap
	// well-formedness proxies).
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Error("unbalanced braces")
	}
}

func TestModelDotDeterministic(t *testing.T) {
	a := conformModel().Dot()
	b := conformModel().Dot()
	if a != b {
		t.Error("Dot output not deterministic")
	}
}
