package enact

import (
	"math/rand"
	"strings"
	"testing"

	"wlq/internal/wlog"
	"wlq/internal/workflow"
)

func testModel() *workflow.Model {
	return &workflow.Model{
		Name: "test",
		Root: workflow.Sequence{
			workflow.Task{Name: "A"},
			workflow.XOR{Branches: []workflow.Branch{
				{Weight: 1, Step: workflow.Task{Name: "B"}},
				{Weight: 1, Step: workflow.Task{Name: "C"}},
			}},
			workflow.Loop{
				Body:         workflow.Task{Name: "D"},
				ContinueProb: 0.5,
				MaxIter:      3,
			},
		},
	}
}

func TestRunProducesValidLogs(t *testing.T) {
	for _, policy := range []Policy{PolicyRoundRobin, PolicyRandom, PolicyBursty, PolicySerial} {
		t.Run(policy.String(), func(t *testing.T) {
			l, err := Run(testModel(), Config{Instances: 8, Seed: 1, Policy: policy})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := l.Validate(); err != nil {
				t.Fatalf("log invalid: %v", err)
			}
			if got := len(l.WIDs()); got != 8 {
				t.Errorf("instances = %d, want 8", got)
			}
			for _, wid := range l.WIDs() {
				if !l.InstanceComplete(wid) {
					t.Errorf("instance %d incomplete (CompleteFraction defaults to 1)", wid)
				}
				// Every instance trace must start with A after START.
				inst := l.Instance(wid)
				if inst[1].Activity != "A" {
					t.Errorf("instance %d begins with %q", wid, inst[1].Activity)
				}
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Instances: 5, Seed: 99, Policy: PolicyRandom}
	a, err := Run(testModel(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testModel(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same seed produced different logs")
	}
	c, err := Run(testModel(), Config{Instances: 5, Seed: 100, Policy: PolicyRandom})
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Error("different seeds produced identical logs (suspicious)")
	}
}

func TestRunCompleteFraction(t *testing.T) {
	l, err := Run(testModel(), Config{Instances: 40, Seed: 3, CompleteFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	complete := 0
	for _, wid := range l.WIDs() {
		if l.InstanceComplete(wid) {
			complete++
		}
	}
	if complete == 0 || complete == 40 {
		t.Errorf("complete = %d of 40, want a mix at fraction 0.5", complete)
	}
}

func TestRunLeaveIncomplete(t *testing.T) {
	l, err := Run(testModel(), Config{Instances: 5, Seed: 3, LeaveIncomplete: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, wid := range l.WIDs() {
		if l.InstanceComplete(wid) {
			t.Errorf("instance %d completed despite LeaveIncomplete", wid)
		}
	}
}

func TestRunConfigErrors(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"zero instances", Config{}},
		{"negative fraction", Config{Instances: 1, CompleteFraction: -0.1}},
		{"fraction above one", Config{Instances: 1, CompleteFraction: 1.5}},
		{"negative burst", Config{Instances: 1, BurstMean: -2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(testModel(), tt.cfg); err == nil {
				t.Error("Run: want error")
			}
		})
	}
}

func TestRunInvalidModel(t *testing.T) {
	bad := &workflow.Model{Name: "bad", Root: workflow.Sequence{}}
	if _, err := Run(bad, Config{Instances: 1}); err == nil {
		t.Error("Run with invalid model: want error")
	}
}

// TestRunAppliesEffects exercises per-instance state threading: Init writes
// x=1, Bump reads the current x and writes x+1, Check reads the bumped value.
func TestRunAppliesEffects(t *testing.T) {
	model := &workflow.Model{
		Name: "fx",
		Root: workflow.Sequence{
			workflow.Task{Name: "Init", Effect: func(state wlog.AttrMap, _ *rand.Rand) (wlog.AttrMap, wlog.AttrMap) {
				return nil, wlog.Attrs("x", 1)
			}},
			workflow.Task{Name: "Bump", Effect: func(state wlog.AttrMap, _ *rand.Rand) (wlog.AttrMap, wlog.AttrMap) {
				x, _ := state.Get("x").IntVal()
				return wlog.Attrs("x", x), wlog.Attrs("x", x+1)
			}},
			workflow.Task{Name: "Check", Effect: func(state wlog.AttrMap, _ *rand.Rand) (wlog.AttrMap, wlog.AttrMap) {
				return wlog.Attrs("x", state.Get("x")), nil
			}},
		},
	}
	l, err := Run(model, Config{Instances: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, wid := range l.WIDs() {
		inst := l.Instance(wid)
		var bump, check wlog.Record
		for _, r := range inst {
			switch r.Activity {
			case "Bump":
				bump = r
			case "Check":
				check = r
			}
		}
		if !bump.In.Get("x").Equal(wlog.Int(1)) || !bump.Out.Get("x").Equal(wlog.Int(2)) {
			t.Errorf("wid %d: Bump saw in=%v out=%v", wid, bump.In, bump.Out)
		}
		if !check.In.Get("x").Equal(wlog.Int(2)) {
			t.Errorf("wid %d: Check read x=%v, want 2", wid, check.In.Get("x"))
		}
	}
}

func TestRunSerialDoesNotInterleave(t *testing.T) {
	l, err := Run(testModel(), Config{Instances: 4, Seed: 8, Policy: PolicySerial})
	if err != nil {
		t.Fatal(err)
	}
	// Under serial scheduling, each instance's records are contiguous.
	lastWID := uint64(0)
	seen := map[uint64]bool{}
	for _, r := range l.Records() {
		if r.WID != lastWID {
			if seen[r.WID] {
				t.Fatalf("instance %d records not contiguous", r.WID)
			}
			seen[r.WID] = true
			lastWID = r.WID
		}
	}
}

func TestRoundRobinInterleaves(t *testing.T) {
	l, err := Run(testModel(), Config{Instances: 3, Seed: 8, Policy: PolicyRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	// Record 1,2,3 must be the three START records of wids 1,2,3.
	for i := 0; i < 3; i++ {
		r := l.Record(i)
		if !r.IsStart() || r.WID != uint64(i+1) {
			t.Errorf("record %d = %v, want START of wid %d", i, r, i+1)
		}
	}
}

func TestRunTraces(t *testing.T) {
	l, err := RunTraces([]string{"A", "B"}, []string{"C"})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	var acts []string
	for _, r := range l.Records() {
		acts = append(acts, r.Activity)
	}
	want := "START,START,A,C,B,END,END"
	if got := strings.Join(acts, ","); got != want {
		t.Errorf("trace order = %s, want %s", got, want)
	}
	if _, err := RunTraces([]string{"A"}, nil); err == nil {
		t.Error("RunTraces with empty trace: want error")
	}
}
