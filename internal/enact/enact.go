// Package enact is the workflow enactment engine substrate: it runs many
// instances of a workflow model concurrently (in simulated time) and records
// their effects as a workflow log satisfying Definition 2 — the role the
// paper's Figure 2 assigns to the "workflow execution engine" that writes
// the log our query language reads.
//
// The engine is deterministic for a given seed: expansion of each instance's
// control flow, the interleaving of instances, and all data effects draw
// from a single seeded source.
package enact

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"wlq/internal/wlog"
	"wlq/internal/workflow"
)

// Policy selects how the scheduler interleaves ready instances.
type Policy int

// Scheduling policies.
const (
	// PolicyRoundRobin cycles through active instances one step at a time,
	// producing maximal interleaving (the shape of Figure 3).
	PolicyRoundRobin Policy = iota + 1
	// PolicyRandom picks a uniformly random active instance per step.
	PolicyRandom
	// PolicyBursty picks an instance and runs a geometric burst of its
	// steps before switching, producing clumpy logs (realistic for engines
	// that batch per-instance work).
	PolicyBursty
	// PolicySerial runs each instance to completion before the next starts:
	// no interleaving at all.
	PolicySerial
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyRoundRobin:
		return "round-robin"
	case PolicyRandom:
		return "random"
	case PolicyBursty:
		return "bursty"
	case PolicySerial:
		return "serial"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config parameterizes a run.
type Config struct {
	// Instances is the number of workflow instances to enact; must be ≥ 1.
	Instances int
	// Seed drives all randomness. Two runs with equal Config and model
	// produce identical logs.
	Seed int64
	// Policy selects the interleaving; zero value means PolicyRoundRobin.
	Policy Policy
	// CompleteFraction in [0,1] is the fraction of instances that receive an
	// END record; the rest are left running, as in Figure 3 where instance 3
	// has no END. The zero value means 1.0 (all complete) when
	// LeaveIncomplete is false.
	CompleteFraction float64
	// LeaveIncomplete interprets CompleteFraction of zero as zero (instead
	// of the 1.0 default), so configs can express "no instance completes".
	LeaveIncomplete bool
	// BurstMean is the mean burst length for PolicyBursty; zero means 4.
	BurstMean int
	// Stamp, when set, writes a simulated wall-clock timestamp (RFC 3339,
	// attribute "time" in αout) on every activity record. The clock starts
	// at StampStart (default 2017-01-01T00:00:00Z) and advances by an
	// exponentially distributed gap with mean StampMeanGap (default 15m)
	// before each record.
	Stamp bool
	// StampStart is the simulated clock's origin; zero means
	// 2017-01-01T00:00:00Z.
	StampStart time.Time
	// StampMeanGap is the mean simulated time between records; zero means
	// 15 minutes.
	StampMeanGap time.Duration
}

func (c *Config) normalize() error {
	if c.Instances < 1 {
		return fmt.Errorf("enact: Instances %d < 1", c.Instances)
	}
	if c.Policy == 0 {
		c.Policy = PolicyRoundRobin
	}
	if c.CompleteFraction == 0 && !c.LeaveIncomplete {
		c.CompleteFraction = 1.0
	}
	if c.CompleteFraction < 0 || c.CompleteFraction > 1 {
		return fmt.Errorf("enact: CompleteFraction %g outside [0,1]", c.CompleteFraction)
	}
	if c.BurstMean == 0 {
		c.BurstMean = 4
	}
	if c.BurstMean < 1 {
		return fmt.Errorf("enact: BurstMean %d < 1", c.BurstMean)
	}
	if c.StampStart.IsZero() {
		c.StampStart = time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.StampMeanGap == 0 {
		c.StampMeanGap = 15 * time.Minute
	}
	if c.StampMeanGap < 0 {
		return fmt.Errorf("enact: negative StampMeanGap %v", c.StampMeanGap)
	}
	return nil
}

// instanceRun is one instance's pre-expanded trace and mutable data state.
// The START record is emitted lazily on the instance's first scheduled step,
// so PolicySerial keeps each instance's records contiguous.
type instanceRun struct {
	wid      uint64
	started  bool
	trace    []workflow.Task
	pos      int
	state    wlog.AttrMap
	complete bool // whether this instance gets an END record
}

func (ir *instanceRun) done() bool { return ir.started && ir.pos >= len(ir.trace) }

// Run enacts the model and returns the resulting log.
func Run(m *workflow.Model, cfg Config) (*wlog.Log, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("enact: invalid model: %w", err)
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var b wlog.Builder
	runs := make([]*instanceRun, cfg.Instances)
	for i := range runs {
		runs[i] = &instanceRun{
			trace:    m.Expand(rng),
			state:    wlog.AttrMap{},
			complete: rng.Float64() < cfg.CompleteFraction,
		}
	}

	active := make([]*instanceRun, len(runs))
	copy(active, runs)

	clock := cfg.StampStart
	step := func(ir *instanceRun) error {
		if !ir.started {
			ir.wid = b.Start()
			ir.started = true
			return nil
		}
		task := ir.trace[ir.pos]
		ir.pos++
		var in, out wlog.AttrMap
		if task.Effect != nil {
			in, out = task.Effect(ir.state, rng)
		}
		if cfg.Stamp {
			clock = clock.Add(time.Duration(rng.ExpFloat64() * float64(cfg.StampMeanGap)))
			out = out.Merge(wlog.Attrs("time", clock.Format(time.RFC3339Nano)))
		}
		if err := b.Emit(ir.wid, task.Name, in, out); err != nil {
			return err
		}
		ir.state = ir.state.Merge(out)
		return nil
	}

	finish := func(ir *instanceRun) error {
		if ir.complete {
			return b.End(ir.wid)
		}
		return nil
	}

	drop := func(i int) {
		active = append(active[:i], active[i+1:]...)
	}

	switch cfg.Policy {
	case PolicySerial:
		for _, ir := range active {
			for !ir.done() {
				if err := step(ir); err != nil {
					return nil, err
				}
			}
			if err := finish(ir); err != nil {
				return nil, err
			}
		}
	case PolicyRoundRobin:
		for len(active) > 0 {
			for i := 0; i < len(active); {
				ir := active[i]
				if ir.done() {
					if err := finish(ir); err != nil {
						return nil, err
					}
					drop(i)
					continue
				}
				if err := step(ir); err != nil {
					return nil, err
				}
				i++
			}
		}
	case PolicyRandom, PolicyBursty:
		for len(active) > 0 {
			i := rng.Intn(len(active))
			ir := active[i]
			burst := 1
			if cfg.Policy == PolicyBursty {
				// Geometric burst with the configured mean.
				p := 1.0 / float64(cfg.BurstMean)
				for burst = 1; rng.Float64() > p; burst++ {
				}
			}
			for n := 0; n < burst && !ir.done(); n++ {
				if err := step(ir); err != nil {
					return nil, err
				}
			}
			if ir.done() {
				if err := finish(ir); err != nil {
					return nil, err
				}
				drop(i)
			}
		}
	default:
		return nil, fmt.Errorf("enact: unknown policy %v", cfg.Policy)
	}

	log, err := b.Build()
	if err != nil {
		// Builder output satisfies Definition 2 by construction.
		return nil, fmt.Errorf("enact: internal error: %w", err)
	}
	return log, nil
}

// ErrEmptyTrace is reported by RunTraces for an instance with no activities.
var ErrEmptyTrace = errors.New("enact: empty trace")

// RunTraces builds a log directly from explicit per-instance activity
// traces (no model, no data effects), interleaved round-robin. It is the
// workhorse for constructing precisely shaped logs in tests and benchmarks.
func RunTraces(traces ...[]string) (*wlog.Log, error) {
	var b wlog.Builder
	wids := make([]uint64, len(traces))
	for i, tr := range traces {
		if len(tr) == 0 {
			return nil, fmt.Errorf("%w: instance %d", ErrEmptyTrace, i)
		}
		wids[i] = b.Start()
	}
	for step := 0; ; step++ {
		emitted := false
		for i, tr := range traces {
			if step < len(tr) {
				if err := b.Emit(wids[i], tr[step], nil, nil); err != nil {
					return nil, err
				}
				emitted = true
			}
		}
		if !emitted {
			break
		}
	}
	for _, wid := range wids {
		if err := b.End(wid); err != nil {
			return nil, err
		}
	}
	return b.Build()
}
