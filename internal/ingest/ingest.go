// Package ingest coordinates durable live ingestion: every append is
// serialized through a write-ahead log (internal/wal) before it touches the
// in-memory index, so a record the server has acknowledged survives a
// process kill and is replayed into the index on restart.
//
// The ordering invariant is WAL-then-apply: a record reaches the
// stream.Monitor only after its frame is in the WAL (and, under
// wal.PolicyAlways, fsynced). A crash can therefore leave the WAL ahead of
// the index — never behind — and recovery closes the gap by replaying the
// WAL over the base snapshot, skipping records the snapshot already holds
// (idempotent by lsn, which Definition 2 makes globally unique and dense).
//
// Validation happens before the WAL write: a record violating the
// Definition 2 discipline is rejected with a *RejectError naming the
// offending record and is never persisted, so the WAL only ever holds
// records that were valid when written.
package ingest

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"wlq/internal/colstore"
	"wlq/internal/core/eval"
	"wlq/internal/resilience"
	"wlq/internal/stream"
	"wlq/internal/wal"
	"wlq/internal/wlog"
)

// The live columnar backend must keep satisfying the Monitor's seam.
var _ stream.Backend = (*colstore.LiveStore)(nil)

// ErrBusy reports apply-queue saturation: more appenders are waiting than
// the configured queue depth. The HTTP layer maps it to 429 + Retry-After.
var ErrBusy = errors.New("ingest: apply queue saturated")

// RejectError reports a record that violates the Definition 2 log
// discipline. It names the offending record so the HTTP 422 body can show
// the client exactly what was refused and why.
type RejectError struct {
	// Record is the refused record; Err the monitor's validation error.
	Record wlog.Record
	Err    error
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("ingest: rejected record %s: %v", e.Record, e.Err)
}

func (e *RejectError) Unwrap() error { return e.Err }

// Config configures Open.
type Config struct {
	// Dir is the WAL segment directory for this log. Required.
	Dir string
	// Policy, FsyncInterval and SegmentBytes pass through to wal.Options.
	Policy        wal.Policy
	FsyncInterval time.Duration
	SegmentBytes  int64
	// Queue bounds how many append requests may be in flight (admitted but
	// not yet applied) before new ones are shed with ErrBusy. 0 or negative
	// means unlimited.
	Queue int
	// Columnar selects the colstore.LiveStore backend instead of the row
	// backend, mirroring the server's -columnar switch.
	Columnar bool
	// OnApply, when non-nil, is called after each record is durably logged
	// and applied — the server's delta cache-invalidation hook. It runs
	// outside the monitor's locks but inside the coordinator's serial
	// section, so calls arrive in lsn order.
	OnApply func(r wlog.Record)
	// OpenFile, Hook and ObserveFsync pass through to wal.Options (fault
	// injection and metrics seams).
	OpenFile     func(path string) (wal.File, error)
	Hook         func(point string)
	ObserveFsync func(d time.Duration)
}

// Stats is a snapshot of the coordinator's counters.
type Stats struct {
	// Accepted counts records durably appended and applied this process
	// lifetime; Rejected the Definition 2 refusals; Shed the ErrBusy
	// backpressure refusals.
	Accepted uint64
	Rejected uint64
	Shed     uint64
	// Replayed is how many WAL records recovery applied on top of the base
	// snapshot at Open (or the last Rebase); Deduped how many it skipped as
	// already present.
	Replayed uint64
	Deduped  uint64
	// LastLSN is the newest applied lsn; WAL the underlying log's counters.
	LastLSN uint64
	WAL     wal.Stats
	// QueueDepth/QueueCapacity describe the apply queue right now
	// (capacity 0 = unlimited).
	QueueDepth    int
	QueueCapacity int
}

// Coordinator serializes appends through the WAL into a live Monitor.
// Safe for concurrent use.
type Coordinator struct {
	cfg Config
	adm *resilience.Admission

	mu  sync.Mutex // serializes WAL-then-apply; held across both
	w   *wal.WAL
	mon *stream.Monitor

	accepted uint64
	rejected uint64
	replayed uint64
	deduped  uint64
}

// Open builds the live monitor from the base snapshot (which must satisfy
// Definition 2 — the server validates before enabling ingestion), opens the
// WAL, and replays any records the WAL holds beyond the snapshot. Recovery
// semantics — torn tails truncated, corruption refused — are the WAL's; see
// that package and docs/DURABILITY.md.
func Open(base *wlog.Log, cfg Config) (*Coordinator, wal.Recovery, error) {
	mon, err := newMonitor(base, cfg.Columnar)
	if err != nil {
		return nil, wal.Recovery{}, err
	}
	w, rec, err := wal.Open(wal.Options{
		Dir:           cfg.Dir,
		Policy:        cfg.Policy,
		FsyncInterval: cfg.FsyncInterval,
		SegmentBytes:  cfg.SegmentBytes,
		OpenFile:      cfg.OpenFile,
		Hook:          cfg.Hook,
		ObserveFsync:  cfg.ObserveFsync,
	})
	if err != nil {
		return nil, wal.Recovery{}, err
	}
	c := &Coordinator{cfg: cfg, w: w, mon: mon}
	if cfg.Queue > 0 {
		c.adm = resilience.NewAdmission(cfg.Queue)
	}
	applied, skipped, err := replayInto(mon, w)
	if err != nil {
		w.Close()
		return nil, wal.Recovery{}, err
	}
	c.replayed, c.deduped = applied, skipped
	return c, rec, nil
}

// newMonitor loads the base snapshot into a fresh backend.
func newMonitor(base *wlog.Log, columnar bool) (*stream.Monitor, error) {
	var backend stream.Backend
	if columnar {
		backend = colstore.NewLiveStore()
	} else {
		backend = eval.NewEmptyIndex()
	}
	mon := stream.NewMonitorOn(nil, backend)
	if base != nil {
		if err := mon.IngestLog(base); err != nil {
			return nil, fmt.Errorf("ingest: base snapshot violates the log discipline: %w", err)
		}
	}
	return mon, nil
}

// replayInto applies WAL records beyond the monitor's high-water lsn.
// Records at or below it are duplicates of the snapshot (or of a previous
// replay pass interrupted mid-apply) and are skipped — lsn identifies a
// record globally, so (wid, lsn) dedup reduces to lsn dedup. A WAL record
// past the watermark that the monitor refuses is a real conflict (the base
// snapshot changed shape underneath the WAL); replay stops there with an
// error naming the record.
func replayInto(mon *stream.Monitor, w *wal.WAL) (applied, skipped uint64, err error) {
	err = w.Replay(func(r wlog.Record) error {
		if r.LSN <= mon.LastLSN() {
			skipped++
			return nil
		}
		if err := mon.Ingest(r); err != nil {
			return fmt.Errorf("ingest: wal replay conflicts with base snapshot at record %s: %w", r, err)
		}
		applied++
		return nil
	})
	return applied, skipped, err
}

// Append validates, durably logs, and applies one record, returning its
// assigned lsn. A zero r.LSN asks the server to assign the next lsn; a
// non-zero lsn must be exactly the next (optimistic concurrency for clients
// that track the watermark). Returns *RejectError for discipline
// violations, ErrBusy under backpressure, and the WAL's error when
// durability itself fails (the record is then NOT applied).
func (c *Coordinator) Append(r wlog.Record) (uint64, error) {
	if c.adm != nil {
		if !c.adm.TryAcquire() {
			return 0, ErrBusy
		}
		defer c.adm.Release()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.LSN == 0 {
		r.LSN = c.mon.LastLSN() + 1
	}
	if err := c.mon.Validate(r); err != nil {
		c.rejected++
		return 0, &RejectError{Record: r, Err: err}
	}
	if err := c.w.Append(r); err != nil {
		return 0, err
	}
	// The monitor re-validates inside Ingest; after Validate succeeded under
	// the coordinator lock this cannot fail, but belt-and-braces: a failure
	// here leaves the record in the WAL, where restart replay would apply
	// it — so surface it loudly rather than silently diverge.
	if err := c.mon.Ingest(r); err != nil {
		return 0, fmt.Errorf("ingest: wal accepted but apply failed for %s: %w", r, err)
	}
	c.accepted++
	if c.cfg.OnApply != nil {
		c.cfg.OnApply(r)
	}
	return r.LSN, nil
}

// Rebase swaps in a monitor rebuilt from a freshly reloaded base snapshot,
// then replays the WAL on top (dedup-skipping) — the hot-reload-vs-append
// fix: durable appends survive a reload instead of being silently dropped.
// On conflict (the new snapshot is incompatible with the WAL's records) the
// coordinator is left unchanged and the error names the first conflicting
// record; the server quarantines the log in that case.
func (c *Coordinator) Rebase(base *wlog.Log) error {
	mon, err := newMonitor(base, c.cfg.Columnar)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	applied, skipped, err := replayInto(mon, c.w)
	if err != nil {
		return err
	}
	c.mon = mon
	c.replayed, c.deduped = applied, skipped
	return nil
}

// Monitor returns the live monitor. The query path freezes it with
// RLock/RUnlock while planning and evaluating.
func (c *Coordinator) Monitor() *stream.Monitor {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mon
}

// LastLSN returns the applied high-water mark.
func (c *Coordinator) LastLSN() uint64 { return c.Monitor().LastLSN() }

// Admission exposes the apply-queue limiter (nil when unlimited) so tests
// can saturate it deterministically.
func (c *Coordinator) Admission() *resilience.Admission { return c.adm }

// Stats snapshots the counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Accepted: c.accepted,
		Rejected: c.rejected,
		Replayed: c.replayed,
		Deduped:  c.deduped,
		LastLSN:  c.mon.LastLSN(),
		WAL:      c.w.Stats(),
	}
	if c.adm != nil {
		st.Shed = c.adm.Shed()
		st.QueueDepth = c.adm.InFlight()
		st.QueueCapacity = c.adm.Capacity()
	}
	return st
}

// Sync forces outstanding WAL frames to disk (graceful-shutdown path).
func (c *Coordinator) Sync() error { return c.w.Sync() }

// Close syncs and closes the WAL. The monitor stays readable.
func (c *Coordinator) Close() error { return c.w.Close() }
