package ingest

import (
	"errors"
	"testing"

	"wlq/internal/stream"
	"wlq/internal/wlog"
)

func mk(lsn, wid, seq uint64, act string) wlog.Record {
	return wlog.Record{LSN: lsn, WID: wid, Seq: seq, Activity: act}
}

// A small two-instance stream obeying Definition 2.
func sampleStream() []wlog.Record {
	return []wlog.Record{
		mk(1, 1, 1, "START"),
		mk(2, 2, 1, "START"),
		mk(3, 1, 2, "CheckIn"),
		mk(4, 2, 2, "CheckIn"),
		mk(5, 1, 3, "SeeDoctor"),
		mk(6, 1, 4, "END"),
		mk(7, 2, 3, "END"),
	}
}

func openEmpty(t *testing.T, dir string, cfg Config) *Coordinator {
	t.Helper()
	cfg.Dir = dir
	c, _, err := Open(nil, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return c
}

func TestAppendAssignsAndAppliesLSN(t *testing.T) {
	for _, columnar := range []bool{false, true} {
		c := openEmpty(t, t.TempDir(), Config{Columnar: columnar})
		defer c.Close()
		for i, r := range sampleStream() {
			r.LSN = 0 // server-assigned
			lsn, err := c.Append(r)
			if err != nil {
				t.Fatalf("columnar=%v Append %d: %v", columnar, i, err)
			}
			if lsn != uint64(i+1) {
				t.Fatalf("columnar=%v assigned lsn %d, want %d", columnar, lsn, i+1)
			}
		}
		set, err := c.Monitor().Query("CheckIn -> SeeDoctor")
		if err != nil {
			t.Fatal(err)
		}
		if set.Len() != 1 {
			t.Fatalf("columnar=%v query over appended records: %s", columnar, set)
		}
		st := c.Stats()
		if st.Accepted != 7 || st.LastLSN != 7 || st.WAL.Appends != 7 {
			t.Fatalf("stats = %+v", st)
		}
	}
}

func TestExplicitLSNOptimisticConcurrency(t *testing.T) {
	c := openEmpty(t, t.TempDir(), Config{})
	defer c.Close()
	if _, err := c.Append(mk(1, 1, 1, "START")); err != nil {
		t.Fatal(err)
	}
	// Stale watermark: lsn 1 again must be refused as a discipline error.
	var re *RejectError
	if _, err := c.Append(mk(1, 1, 2, "A")); !errors.As(err, &re) {
		t.Fatalf("stale lsn: %v, want *RejectError", err)
	}
	if !errors.Is(re, stream.ErrBadLSN) {
		t.Fatalf("stale lsn wrapped %v, want ErrBadLSN", re.Err)
	}
	// Exactly-next lsn is accepted.
	if _, err := c.Append(mk(2, 1, 2, "A")); err != nil {
		t.Fatalf("exact next lsn refused: %v", err)
	}
}

func TestRejectNamesOffendingRecord(t *testing.T) {
	c := openEmpty(t, t.TempDir(), Config{})
	defer c.Close()
	if _, err := c.Append(mk(1, 1, 1, "START")); err != nil {
		t.Fatal(err)
	}
	// seq 3 skips seq 2: Definition 2 violation.
	bad := mk(0, 1, 3, "CheckIn")
	_, err := c.Append(bad)
	var re *RejectError
	if !errors.As(err, &re) {
		t.Fatalf("got %v, want *RejectError", err)
	}
	if re.Record.WID != 1 || re.Record.Seq != 3 {
		t.Fatalf("reject names wrong record: %+v", re.Record)
	}
	if !errors.Is(err, stream.ErrBadSeq) {
		t.Fatalf("reject reason %v, want ErrBadSeq", err)
	}
	// The refused record must NOT be in the WAL: restart sees only lsn 1.
	c.Close()
	c2, _, err := Open(nil, Config{Dir: c.cfg.Dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.LastLSN() != 1 {
		t.Fatalf("rejected record leaked into the WAL: lastLSN %d", c2.LastLSN())
	}
	if st := c2.Stats(); st.Replayed != 1 {
		t.Fatalf("restart replay: %+v", st)
	}
}

func TestCrashRecoveryReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	c := openEmpty(t, dir, Config{})
	for _, r := range sampleStream() {
		if _, err := c.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// Simulated kill -9: the coordinator is abandoned, never closed.
	want, err := c.Monitor().Query("CheckIn -> SeeDoctor")
	if err != nil {
		t.Fatal(err)
	}

	c2, rec, err := Open(nil, Config{Dir: dir})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer c2.Close()
	if rec.Records != 7 || c2.LastLSN() != 7 {
		t.Fatalf("recovered %d records, lastLSN %d", rec.Records, c2.LastLSN())
	}
	got, err := c2.Monitor().Query("CheckIn -> SeeDoctor")
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Fatalf("post-recovery answers diverge:\nbefore: %s\nafter:  %s", want, got)
	}
	// Appends continue after the recovered watermark.
	if _, err := c2.Append(mk(0, 3, 1, "START")); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

func TestReplayDedupAgainstBaseSnapshot(t *testing.T) {
	// The WAL holds lsn 1..7; the base snapshot already contains 1..5
	// (an operator snapshotted mid-stream). Replay must apply only 6..7.
	dir := t.TempDir()
	c := openEmpty(t, dir, Config{})
	all := sampleStream()
	for _, r := range all {
		if _, err := c.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	base, err := wlog.New(all[:5])
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := Open(base, Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st := c2.Stats()
	if st.Replayed != 2 || st.Deduped != 5 {
		t.Fatalf("dedup replay: %+v", st)
	}
	if c2.Monitor().Records() != 7 {
		t.Fatalf("double-applied records: %d", c2.Monitor().Records())
	}
}

func TestRebaseReplaysWALOverReload(t *testing.T) {
	// Reload-vs-append: rebase onto the same snapshot must keep the WAL's
	// extra records (and a second rebase is idempotent).
	dir := t.TempDir()
	all := sampleStream()
	base, err := wlog.New(all[:5])
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := Open(base, Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, r := range all[5:] {
		if _, err := c.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	for pass := 1; pass <= 2; pass++ {
		if err := c.Rebase(base); err != nil {
			t.Fatalf("rebase pass %d: %v", pass, err)
		}
		if c.Monitor().Records() != 7 || c.LastLSN() != 7 {
			t.Fatalf("rebase pass %d dropped appends: %d records, lsn %d",
				pass, c.Monitor().Records(), c.LastLSN())
		}
	}
}

func TestRebaseConflictLeavesCoordinatorUntouched(t *testing.T) {
	dir := t.TempDir()
	c := openEmpty(t, dir, Config{})
	for _, r := range sampleStream() {
		if _, err := c.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	defer c.Close()
	// A "reloaded" snapshot where wid 1 already ENDed at lsn 2: the WAL's
	// lsn 3 (wid 1, CheckIn) cannot follow it.
	conflicting, err := wlog.New([]wlog.Record{
		mk(1, 1, 1, "START"),
		mk(2, 1, 2, "END"),
	})
	if err != nil {
		t.Fatal(err)
	}
	err = c.Rebase(conflicting)
	if err == nil {
		t.Fatal("conflicting rebase accepted")
	}
	if !errors.Is(err, stream.ErrBadSeq) && !errors.Is(err, stream.ErrBadLSN) {
		t.Fatalf("conflict error %v does not carry a discipline cause", err)
	}
	// The live monitor still answers from the pre-rebase state.
	if c.Monitor().Records() != 7 {
		t.Fatalf("failed rebase mutated the monitor: %d records", c.Monitor().Records())
	}
}

func TestBackpressureShedsWithErrBusy(t *testing.T) {
	c := openEmpty(t, t.TempDir(), Config{Queue: 1})
	defer c.Close()
	// Hold the only queue slot; the next append must shed deterministically.
	if !c.Admission().TryAcquire() {
		t.Fatal("could not occupy the queue slot")
	}
	_, err := c.Append(mk(1, 1, 1, "START"))
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("saturated append: %v, want ErrBusy", err)
	}
	c.Admission().Release()
	if _, err := c.Append(mk(1, 1, 1, "START")); err != nil {
		t.Fatalf("append after release: %v", err)
	}
	if st := c.Stats(); st.Shed != 1 || st.QueueCapacity != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOnApplyRunsPerAcceptedRecord(t *testing.T) {
	var applied []uint64
	cfg := Config{OnApply: func(r wlog.Record) { applied = append(applied, r.LSN) }}
	c := openEmpty(t, t.TempDir(), cfg)
	defer c.Close()
	if _, err := c.Append(mk(0, 1, 1, "START")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(mk(0, 1, 5, "A")); err == nil { // rejected
		t.Fatal("bad record accepted")
	}
	if _, err := c.Append(mk(0, 1, 2, "A")); err != nil {
		t.Fatal(err)
	}
	if len(applied) != 2 || applied[0] != 1 || applied[1] != 2 {
		t.Fatalf("OnApply saw %v, want [1 2]", applied)
	}
}

func TestConcurrentAppendersSerialize(t *testing.T) {
	// Many goroutines race to append server-assigned records for distinct
	// wids; every accepted record must get a unique lsn and the final log
	// must be discipline-clean (provable by a clean restart replay).
	dir := t.TempDir()
	c := openEmpty(t, dir, Config{})
	const n = 40
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(wid uint64) {
			_, err := c.Append(wlog.Record{WID: wid, Seq: 1, Activity: "START"})
			errs <- err
		}(uint64(i + 1))
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("concurrent append: %v", err)
		}
	}
	if c.LastLSN() != n {
		t.Fatalf("lastLSN %d, want %d", c.LastLSN(), n)
	}
	c.Close()
	c2, rec, err := Open(nil, Config{Dir: dir})
	if err != nil {
		t.Fatalf("restart after concurrent appends: %v", err)
	}
	defer c2.Close()
	if rec.Records != n {
		t.Fatalf("recovered %d records, want %d", rec.Records, n)
	}
}
