// Package clinic provides the paper's running example: the medical-clinic
// referral workflow of Examples 1–5. It ships two artifacts:
//
//   - Fig3, a verbatim transcription of the 20-record log prefix shown in
//     Figure 3 of the paper (experiment E1/E2 in DESIGN.md), and
//   - Model/Generate (model.go), a generative workflow model of the referral
//     process described in Example 2, used to produce arbitrarily large
//     clinic logs with the same activity vocabulary.
//
// Note on spelling: Figure 3 of the paper prints the reimbursement activity
// as "GetReimberse" while the queries in Examples 3 and 5 spell it
// "GetReimburse". We normalize to GetReimburse throughout so the worked
// queries match the worked log, as the authors clearly intended.
package clinic

import (
	"wlq/internal/wlog"
)

// Activity names of the referral workflow.
const (
	ActGetRefer      = "GetRefer"
	ActCheckIn       = "CheckIn"
	ActSeeDoctor     = "SeeDoctor"
	ActPayTreatment  = "PayTreatment"
	ActTakeTreatment = "TakeTreatment"
	ActUpdateRefer   = "UpdateRefer"
	ActGetReimburse  = "GetReimburse"
	ActCompleteRefer = "CompleteRefer"
)

// Fig3 returns the initial log segment of Figure 3: twenty records over
// three concurrently running referral instances (wid 3 has not completed).
// The attribute maps are transcribed cell by cell.
func Fig3() *wlog.Log {
	a := wlog.Attrs
	return wlog.MustNew([]wlog.Record{
		{LSN: 1, WID: 1, Seq: 1, Activity: wlog.ActivityStart},
		{LSN: 2, WID: 2, Seq: 1, Activity: wlog.ActivityStart},
		{LSN: 3, WID: 1, Seq: 2, Activity: ActGetRefer, Out: a(
			"hospital", "Public Hospital", "referId", "034d1",
			"referState", "start", "balance", 1000)},
		{LSN: 4, WID: 1, Seq: 3, Activity: ActCheckIn,
			In:  a("referId", "034d1", "referState", "start", "balance", 1000),
			Out: a("referState", "active")},
		{LSN: 5, WID: 2, Seq: 2, Activity: ActGetRefer, Out: a(
			"hospital", "People Hospital", "referId", "022f3",
			"referState", "start", "balance", 2000)},
		{LSN: 6, WID: 3, Seq: 1, Activity: wlog.ActivityStart},
		{LSN: 7, WID: 3, Seq: 2, Activity: ActGetRefer, Out: a(
			"hospital", "Public Hospital", "referId", "048s1",
			"referState", "start", "balance", 500)},
		{LSN: 8, WID: 2, Seq: 3, Activity: ActCheckIn,
			In:  a("referId", "022f3", "referState", "start", "balance", 2000),
			Out: a("referState", "active")},
		{LSN: 9, WID: 1, Seq: 4, Activity: ActSeeDoctor,
			In: a("referId", "034d1", "referState", "active")},
		{LSN: 10, WID: 1, Seq: 5, Activity: ActPayTreatment,
			In:  a("referId", "034d1", "referState", "active"),
			Out: a("receipt1", 560, "receipt1State", "active")},
		{LSN: 11, WID: 1, Seq: 6, Activity: ActSeeDoctor,
			In: a("referId", "034d1", "referState", "active")},
		{LSN: 12, WID: 1, Seq: 7, Activity: ActPayTreatment,
			In:  a("referId", "034d1", "referState", "active"),
			Out: a("receipt2", 460, "receipt2State", "active")},
		{LSN: 13, WID: 2, Seq: 4, Activity: ActSeeDoctor,
			In: a("referId", "022f3", "referState", "active")},
		{LSN: 14, WID: 2, Seq: 5, Activity: ActUpdateRefer,
			In:  a("referId", "022f3", "referState", "active", "balance", 2000),
			Out: a("balance", 5000)},
		{LSN: 15, WID: 1, Seq: 8, Activity: ActGetReimburse,
			In: a("referState", "active", "balance", 1000,
				"receipt1", 560, "receipt1State", "active",
				"receipt2", 460, "receipt2State", "active"),
			Out: a("amount", 1020, "balance", 0, "reimburse", 1000,
				"receipt1State", "complete", "receipt2State", "complete")},
		{LSN: 16, WID: 1, Seq: 9, Activity: ActCompleteRefer,
			In:  a("referState", "active", "balance", 0),
			Out: a("referState", "complete")},
		{LSN: 17, WID: 2, Seq: 6, Activity: ActSeeDoctor,
			In: a("referId", "022f3", "referState", "active")},
		{LSN: 18, WID: 2, Seq: 7, Activity: ActPayTreatment,
			In:  a("referId", "022f3", "referState", "active"),
			Out: a("receipt1", 4560, "receipt1State", "active")},
		{LSN: 19, WID: 2, Seq: 8, Activity: ActTakeTreatment,
			In: a("referId", "022f3", "receipt1", 4560)},
		{LSN: 20, WID: 2, Seq: 9, Activity: ActGetReimburse,
			In: a("referState", "active", "balance", 5000,
				"receipt1", 6560, "receipt1State", "active"),
			Out: a("amount", 6560, "balance", 0, "reimburse", 5000,
				"receipt1State", "complete")},
	})
}
