package clinic

import (
	"testing"

	"wlq/internal/core/eval"
	"wlq/internal/core/incident"
	"wlq/internal/core/pattern"
	"wlq/internal/wlog"
)

func TestFig3IsValid(t *testing.T) {
	l := Fig3()
	if err := l.Validate(); err != nil {
		t.Fatalf("Figure 3 log invalid: %v", err)
	}
	if l.Len() != 20 {
		t.Errorf("Len = %d, want 20", l.Len())
	}
	wids := l.WIDs()
	if len(wids) != 3 {
		t.Errorf("WIDs = %v, want 3 instances", wids)
	}
	// No instance has completed in the prefix shown (no END records).
	for _, wid := range wids {
		if l.InstanceComplete(wid) {
			t.Errorf("instance %d should be incomplete", wid)
		}
	}
}

// TestExample1 checks the record the paper dissects in Example 1 (lsn 4).
func TestExample1(t *testing.T) {
	l := Fig3()
	r, ok := l.ByLSN(4)
	if !ok {
		t.Fatal("lsn 4 missing")
	}
	if r.WID != 1 || r.Seq != 3 || r.Activity != ActCheckIn {
		t.Errorf("record = %v", r)
	}
	wantIn := wlog.Attrs("referId", "034d1", "referState", "start", "balance", 1000)
	if !r.In.Equal(wantIn) {
		t.Errorf("αin = %v, want %v", r.In, wantIn)
	}
	wantOut := wlog.Attrs("referState", "active")
	if !r.Out.Equal(wantOut) {
		t.Errorf("αout = %v, want %v", r.Out, wantOut)
	}
}

// TestExample3 evaluates "UpdateRefer -> GetReimburse": the only incident is
// {l14, l20}, i.e. wid 2 records with is-lsn 5 and 9 (experiment E1).
func TestExample3(t *testing.T) {
	ix := eval.NewIndex(Fig3())
	got := eval.EvalSet(ix, pattern.MustParse("UpdateRefer -> GetReimburse"))
	want := incident.NewSet(incident.New(2, 5, 9))
	if !got.Equal(want) {
		t.Errorf("incL = %s, want %s", got, want)
	}
}

// TestExample5 evaluates "SeeDoctor -> (UpdateRefer -> GetReimburse)".
// Example 5's final output is {l13, l14, l20}: wid 2, is-lsn {4, 5, 9}.
// (Example 3's printed "{l13, l14, l19}" is a typo in the paper: l19 is
// TakeTreatment; the reimbursement record is l20, as Example 5 confirms.)
func TestExample5(t *testing.T) {
	ix := eval.NewIndex(Fig3())

	// Intermediate check from Example 5: incidents of the SeeDoctor leaf.
	leaves := eval.EvalSet(ix, pattern.MustParse("SeeDoctor"))
	wantLeaves := incident.NewSet(
		incident.New(1, 4), incident.New(1, 6), // l9, l11
		incident.New(2, 4), incident.New(2, 6), // l13, l17
	)
	if !leaves.Equal(wantLeaves) {
		t.Errorf("incL(SeeDoctor) = %s, want %s", leaves, wantLeaves)
	}

	got := eval.EvalSet(ix, pattern.MustParse("SeeDoctor -> (UpdateRefer -> GetReimburse)"))
	want := incident.NewSet(incident.New(2, 4, 5, 9))
	if !got.Equal(want) {
		t.Errorf("incL = %s, want %s", got, want)
	}
}

// TestSection2Question reproduces the Section 2 question "are there any
// students who update their referral before they receive a reimbursement?"
// — the answer on Figure 3 is yes, via instance 2.
func TestSection2Question(t *testing.T) {
	ix := eval.NewIndex(Fig3())
	e := eval.New(ix, eval.Options{})
	if !e.Exists(pattern.MustParse("UpdateRefer -> GetReimburse")) {
		t.Error("paper says the answer is yes")
	}
}

// TestMotivatingBalanceQuery exercises the Section 1 motivating query
// "referrals with balance > 5000" using the guard extension: no referral in
// the Figure 3 prefix is granted with balance above 5000 (wid 2 reaches
// 5000 only after UpdateRefer, and only equal, not above).
func TestMotivatingBalanceQuery(t *testing.T) {
	ix := eval.NewIndex(Fig3())
	if got := eval.EvalSet(ix, pattern.MustParse("GetRefer[balance>5000]")); got.Len() != 0 {
		t.Errorf("GetRefer[balance>5000] = %s, want empty", got)
	}
	got := eval.EvalSet(ix, pattern.MustParse("UpdateRefer[balance>=5000]"))
	want := incident.NewSet(incident.New(2, 5))
	if !got.Equal(want) {
		t.Errorf("UpdateRefer[balance>=5000] = %s, want %s", got, want)
	}
}

// TestConsecutiveOnFig3 checks a consecutive query: within instance 1,
// SeeDoctor is immediately followed by PayTreatment twice (l9-l10 and
// l11-l12), and in instance 2 once (l17-l18).
func TestConsecutiveOnFig3(t *testing.T) {
	ix := eval.NewIndex(Fig3())
	got := eval.EvalSet(ix, pattern.MustParse("SeeDoctor . PayTreatment"))
	want := incident.NewSet(
		incident.New(1, 4, 5), incident.New(1, 6, 7), incident.New(2, 6, 7),
	)
	if !got.Equal(want) {
		t.Errorf("incL = %s, want %s", got, want)
	}
}

// TestParallelOnFig3: UpdateRefer & TakeTreatment both happen in instance 2
// only, in either order — the parallel operator shuffles them.
func TestParallelOnFig3(t *testing.T) {
	ix := eval.NewIndex(Fig3())
	got := eval.EvalSet(ix, pattern.MustParse("UpdateRefer & TakeTreatment"))
	want := incident.NewSet(incident.New(2, 5, 8))
	if !got.Equal(want) {
		t.Errorf("incL = %s, want %s", got, want)
	}
}

// TestChoiceOnFig3: CompleteRefer | TakeTreatment matches the one
// CompleteRefer (wid 1) and the one TakeTreatment (wid 2).
func TestChoiceOnFig3(t *testing.T) {
	ix := eval.NewIndex(Fig3())
	got := eval.EvalSet(ix, pattern.MustParse("CompleteRefer | TakeTreatment"))
	want := incident.NewSet(incident.New(1, 9), incident.New(2, 8))
	if !got.Equal(want) {
		t.Errorf("incL = %s, want %s", got, want)
	}
}
