package clinic

import (
	"fmt"
	"math/rand"

	"wlq/internal/enact"
	"wlq/internal/wlog"
	"wlq/internal/workflow"
)

// hospitals mirrors the names appearing in Figure 3.
var hospitals = []string{"Public Hospital", "People Hospital", "Union Hospital"}

// Model returns a generative workflow model of the referral process narrated
// in Example 2 of the paper:
//
//	GetRefer → CheckIn → { SeeDoctor → (PayTreatment [→ TakeTreatment]
//	  | UpdateRefer) }* → [GetReimburse [→ UpdateRefer†]] → [CompleteRefer]
//
// Data effects reproduce the attribute vocabulary of Figure 3 (hospital,
// referId, referState, balance, receiptN, receiptNState, amount, reimburse)
// plus a `year` attribute on GetRefer so the Section 1 motivating query
// ("how many students every year get referrals with balance > 5000?") has
// something to group by.
//
// † The low-weight UpdateRefer branch after GetReimburse plants the
// anomaly the paper's introduction hunts for ("students updating a referral
// after they already got reimbursement"), at a known ~6.25% rate per
// reimbursed instance, so detection queries have measurable ground truth.
func Model() *workflow.Model {
	getRefer := workflow.Task{Name: ActGetRefer, Effect: func(_ wlog.AttrMap, rng *rand.Rand) (wlog.AttrMap, wlog.AttrMap) {
		balance := int64(500 + 500*rng.Intn(15)) // 500..7500
		return nil, wlog.Attrs(
			"hospital", hospitals[rng.Intn(len(hospitals))],
			"referId", fmt.Sprintf("%05x", rng.Intn(1<<20)),
			"referState", "start",
			"balance", balance,
			"year", int64(2014+rng.Intn(4)),
		)
	}}

	checkIn := workflow.Task{Name: ActCheckIn, Effect: func(state wlog.AttrMap, _ *rand.Rand) (wlog.AttrMap, wlog.AttrMap) {
		return wlog.Attrs(
				"referId", state.Get("referId"),
				"referState", state.Get("referState"),
				"balance", state.Get("balance"),
			),
			wlog.Attrs("referState", "active")
	}}

	seeDoctor := workflow.Task{Name: ActSeeDoctor, Effect: func(state wlog.AttrMap, _ *rand.Rand) (wlog.AttrMap, wlog.AttrMap) {
		return wlog.Attrs(
			"referId", state.Get("referId"),
			"referState", state.Get("referState"),
		), nil
	}}

	payTreatment := workflow.Task{Name: ActPayTreatment, Effect: func(state wlog.AttrMap, rng *rand.Rand) (wlog.AttrMap, wlog.AttrMap) {
		n := receiptCount(state) + 1
		amount := int64(20 * (1 + rng.Intn(300))) // 20..6000
		return wlog.Attrs(
				"referId", state.Get("referId"),
				"referState", state.Get("referState"),
			),
			wlog.Attrs(
				fmt.Sprintf("receipt%d", n), amount,
				fmt.Sprintf("receipt%dState", n), "active",
			)
	}}

	takeTreatment := workflow.Task{Name: ActTakeTreatment, Effect: func(state wlog.AttrMap, _ *rand.Rand) (wlog.AttrMap, wlog.AttrMap) {
		n := receiptCount(state)
		return wlog.Attrs(
			"referId", state.Get("referId"),
			fmt.Sprintf("receipt%d", n), state.Get(fmt.Sprintf("receipt%d", n)),
		), nil
	}}

	updateRefer := workflow.Task{Name: ActUpdateRefer, Effect: func(state wlog.AttrMap, rng *rand.Rand) (wlog.AttrMap, wlog.AttrMap) {
		old, _ := state.Get("balance").IntVal()
		return wlog.Attrs(
				"referId", state.Get("referId"),
				"referState", state.Get("referState"),
				"balance", old,
			),
			wlog.Attrs("balance", old+int64(1000*(1+rng.Intn(5))))
	}}

	getReimburse := workflow.Task{Name: ActGetReimburse, Effect: func(state wlog.AttrMap, _ *rand.Rand) (wlog.AttrMap, wlog.AttrMap) {
		in := wlog.Attrs(
			"referState", state.Get("referState"),
			"balance", state.Get("balance"),
		)
		var total int64
		out := wlog.AttrMap{}
		for n := 1; ; n++ {
			key := fmt.Sprintf("receipt%d", n)
			if !state.Has(key) {
				break
			}
			amount, _ := state.Get(key).IntVal()
			total += amount
			in[key] = state.Get(key)
			in[key+"State"] = state.Get(key + "State")
			out[key+"State"] = wlog.String("complete")
		}
		balance, _ := state.Get("balance").IntVal()
		reimburse := total
		if reimburse > balance {
			reimburse = balance
		}
		out["amount"] = wlog.Int(total)
		out["reimburse"] = wlog.Int(reimburse)
		out["balance"] = wlog.Int(balance - reimburse)
		return in, out
	}}

	completeRefer := workflow.Task{Name: ActCompleteRefer, Effect: func(state wlog.AttrMap, _ *rand.Rand) (wlog.AttrMap, wlog.AttrMap) {
		return wlog.Attrs(
				"referState", state.Get("referState"),
				"balance", state.Get("balance"),
			),
			wlog.Attrs("referState", "complete")
	}}

	visit := workflow.Sequence{
		seeDoctor,
		workflow.XOR{Branches: []workflow.Branch{
			{Weight: 3, Step: workflow.Sequence{
				payTreatment,
				workflow.XOR{Branches: []workflow.Branch{
					{Weight: 1, Step: takeTreatment},
					{Weight: 1, Step: nil},
				}},
			}},
			{Weight: 1, Step: updateRefer},
		}},
	}

	return &workflow.Model{
		Name: "clinic-referral",
		Root: workflow.Sequence{
			getRefer,
			checkIn,
			workflow.Loop{Body: visit, ContinueProb: 0.55, MaxIter: 4},
			workflow.XOR{Branches: []workflow.Branch{
				// The common path: reimbursement, possibly the anomalous
				// post-reimbursement update, then completion.
				{Weight: 8, Step: workflow.Sequence{
					getReimburse,
					workflow.XOR{Branches: []workflow.Branch{
						{Weight: 1, Step: updateRefer}, // anomaly
						{Weight: 15, Step: nil},
					}},
					completeRefer,
				}},
				// Termination without reimbursement (student's request).
				{Weight: 2, Step: workflow.XOR{Branches: []workflow.Branch{
					{Weight: 1, Step: completeRefer},
					{Weight: 1, Step: nil},
				}}},
			}},
		},
	}
}

// receiptCount returns how many receiptN attributes the instance state
// holds (receipts are numbered densely from 1 by PayTreatment).
func receiptCount(state wlog.AttrMap) int {
	n := 0
	for state.Has(fmt.Sprintf("receipt%d", n+1)) {
		n++
	}
	return n
}

// Generate enacts the referral model for the given number of instances with
// round-robin interleaving (the shape of Figure 3) and returns the log.
// A small fraction of instances is left incomplete, as in the figure.
func Generate(instances int, seed int64) (*wlog.Log, error) {
	return enact.Run(Model(), enact.Config{
		Instances:        instances,
		Seed:             seed,
		Policy:           enact.PolicyRandom,
		CompleteFraction: 0.9,
	})
}
