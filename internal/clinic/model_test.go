package clinic

import (
	"testing"

	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
)

func TestModelValid(t *testing.T) {
	if err := Model().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	acts := Model().Activities()
	want := map[string]bool{
		ActGetRefer: true, ActCheckIn: true, ActSeeDoctor: true,
		ActPayTreatment: true, ActTakeTreatment: true, ActUpdateRefer: true,
		ActGetReimburse: true, ActCompleteRefer: true,
	}
	if len(acts) != len(want) {
		t.Fatalf("Activities = %v", acts)
	}
	for _, a := range acts {
		if !want[a] {
			t.Errorf("unexpected activity %q", a)
		}
	}
}

func TestGenerateValidAndDeterministic(t *testing.T) {
	a, err := Generate(50, 7)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated log invalid: %v", err)
	}
	b, err := Generate(50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("Generate not deterministic for equal seeds")
	}
}

func TestGeneratedProcessShape(t *testing.T) {
	l, err := Generate(200, 11)
	if err != nil {
		t.Fatal(err)
	}
	ix := eval.NewIndex(l)
	e := eval.New(ix, eval.Options{})

	// Every instance that checks in got a referral first, consecutively.
	checkIns := e.Count(pattern.MustParse(ActCheckIn))
	pairs := e.Count(pattern.MustParse(ActGetRefer + " . " + ActCheckIn))
	if checkIns == 0 || pairs != checkIns {
		t.Errorf("GetRefer.CheckIn pairs = %d, CheckIns = %d (must be equal)", pairs, checkIns)
	}

	// Reimbursement only after seeing a doctor.
	orphanReimburse := 0
	for _, wid := range ix.WIDs() {
		reimb := ix.ActivitySeqs(wid, ActGetReimburse)
		if len(reimb) == 0 {
			continue
		}
		doc := ix.ActivitySeqs(wid, ActSeeDoctor)
		if len(doc) == 0 || doc[0] > reimb[0] {
			orphanReimburse++
		}
	}
	if orphanReimburse > 0 {
		t.Errorf("%d instances reimbursed before any SeeDoctor", orphanReimburse)
	}

	// The planted anomaly (UpdateRefer after GetReimburse) occurs but is
	// rare: roughly 6% of reimbursed instances.
	anomaly := e.Count(pattern.MustParse(ActGetReimburse + " -> " + ActUpdateRefer))
	reimbursed := e.Count(pattern.MustParse(ActGetReimburse))
	if anomaly == 0 {
		t.Error("no planted anomalies found in 200 instances")
	}
	if anomaly*3 > reimbursed {
		t.Errorf("anomaly rate too high: %d of %d", anomaly, reimbursed)
	}

	// The year attribute exists on every GetRefer record.
	for _, wid := range ix.WIDs() {
		for _, seq := range ix.ActivitySeqs(wid, ActGetRefer) {
			rec, ok := ix.Record(wid, seq)
			if !ok || !rec.Out.Has("year") {
				t.Fatalf("GetRefer record without year: wid=%d seq=%d", wid, seq)
			}
		}
	}
}

func TestGeneratedBalancesConsistent(t *testing.T) {
	l, err := Generate(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	ix := eval.NewIndex(l)
	for _, wid := range ix.WIDs() {
		for _, seq := range ix.ActivitySeqs(wid, ActGetReimburse) {
			rec, _ := ix.Record(wid, seq)
			reimburse, ok := rec.Out.Get("reimburse").IntVal()
			if !ok {
				t.Fatalf("wid %d: reimburse not an int: %v", wid, rec.Out)
			}
			balanceIn, _ := rec.In.Get("balance").IntVal()
			balanceOut, _ := rec.Out.Get("balance").IntVal()
			if reimburse > balanceIn {
				t.Errorf("wid %d: reimbursed %d above balance %d", wid, reimburse, balanceIn)
			}
			if balanceOut != balanceIn-reimburse {
				t.Errorf("wid %d: balance %d -> %d with reimburse %d", wid, balanceIn, balanceOut, reimburse)
			}
		}
	}
}
