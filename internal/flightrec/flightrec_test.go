package flightrec

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRecordAssignsSequentialIDs(t *testing.T) {
	r := New(4)
	for want := uint64(1); want <= 3; want++ {
		if id := r.Record(Capture{Query: "A"}); id != want {
			t.Fatalf("Record returned id %d, want %d", id, want)
		}
	}
	if got := r.Captured(); got != 3 {
		t.Fatalf("Captured() = %d, want 3", got)
	}
	if got := r.Len(); got != 3 {
		t.Fatalf("Len() = %d, want 3", got)
	}
}

func TestRingEvictsOldest(t *testing.T) {
	r := New(2)
	r.Record(Capture{Query: "q1"})
	r.Record(Capture{Query: "q2"})
	r.Record(Capture{Query: "q3"})
	if _, ok := r.Get(1); ok {
		t.Fatal("capture 1 should have been evicted from a size-2 ring")
	}
	for _, id := range []uint64{2, 3} {
		if _, ok := r.Get(id); !ok {
			t.Fatalf("capture %d missing", id)
		}
	}
	if got := r.Captured(); got != 3 {
		t.Fatalf("Captured() = %d, want 3 (lifetime count survives eviction)", got)
	}
}

func TestNotableRingSurvivesFastOKFlood(t *testing.T) {
	r := New(4)
	panicID := r.Record(Capture{Query: "boom", Status: StatusPanic})
	slowID := r.Record(Capture{Query: "slow", Status: StatusOK, Slow: true})
	// Flood with fast healthy traffic: far more than the recent ring holds.
	for i := 0; i < 50; i++ {
		r.Record(Capture{Query: "ok", Status: StatusOK})
	}
	if _, ok := r.Get(panicID); !ok {
		t.Fatal("panicked capture evicted by fast-OK flood; notable ring must retain it")
	}
	if _, ok := r.Get(slowID); !ok {
		t.Fatal("slow capture evicted by fast-OK flood; notable ring must retain it")
	}
}

func TestListNewestFirstAndDeduped(t *testing.T) {
	r := New(8)
	r.Record(Capture{Query: "a", Status: StatusOK})
	// Notable captures land in both rings; List must report them once.
	r.Record(Capture{Query: "b", Status: StatusError})
	r.Record(Capture{Query: "c", Status: StatusOK})
	got := r.List(Filter{})
	if len(got) != 3 {
		t.Fatalf("List returned %d captures, want 3 (deduplicated)", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].ID <= got[i].ID {
			t.Fatalf("List not newest-first: ids %d, %d", got[i-1].ID, got[i].ID)
		}
	}
}

func TestListFilters(t *testing.T) {
	r := New(16)
	r.Record(Capture{Query: "a", Log: "clinic", Status: StatusOK, ElapsedUS: 100})
	r.Record(Capture{Query: "b", Log: "clinic", Status: StatusBudget, ElapsedUS: 5000})
	r.Record(Capture{Query: "c", Log: "fig3", Status: StatusOK, Slow: true, ElapsedUS: 900_000})

	if got := r.List(Filter{Status: StatusBudget}); len(got) != 1 || got[0].Query != "b" {
		t.Fatalf("status filter: got %d captures", len(got))
	}
	if got := r.List(Filter{Log: "fig3"}); len(got) != 1 || got[0].Query != "c" {
		t.Fatalf("log filter: got %d captures", len(got))
	}
	if got := r.List(Filter{MinElapsed: time.Millisecond}); len(got) != 2 {
		t.Fatalf("min-elapsed filter: got %d captures, want 2", len(got))
	}
	if got := r.List(Filter{SlowOnly: true}); len(got) != 1 || got[0].Query != "c" {
		t.Fatalf("slow filter: got %d captures", len(got))
	}
	if got := r.List(Filter{Limit: 2}); len(got) != 2 {
		t.Fatalf("limit: got %d captures, want 2", len(got))
	}
}

func TestGetUnknownID(t *testing.T) {
	r := New(4)
	if _, ok := r.Get(42); ok {
		t.Fatal("Get of never-recorded id succeeded")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if id := r.Record(Capture{Query: "x"}); id != 0 {
		t.Fatalf("nil Record returned %d, want 0", id)
	}
	if got := r.List(Filter{}); got != nil {
		t.Fatal("nil List returned captures")
	}
	if _, ok := r.Get(1); ok {
		t.Fatal("nil Get succeeded")
	}
	if r.Len() != 0 || r.Captured() != 0 {
		t.Fatal("nil recorder reported contents")
	}
}

func TestZeroAndNegativeSizes(t *testing.T) {
	if r := New(0); r.size != DefaultSize {
		t.Fatalf("New(0) size = %d, want DefaultSize", r.size)
	}
	if r := New(-5); r.size != 1 {
		t.Fatalf("New(-5) size = %d, want 1", r.size)
	}
}

func TestRecordCopiesValue(t *testing.T) {
	r := New(4)
	c := Capture{Query: "original"}
	id := r.Record(c)
	c.Query = "mutated after record"
	got, ok := r.Get(id)
	if !ok || got.Query != "original" {
		t.Fatalf("stored capture shares caller memory: %q", got.Query)
	}
}

func TestConcurrentRecordListGet(t *testing.T) {
	r := New(8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				status := StatusOK
				if j%5 == 0 {
					status = StatusError
				}
				r.Record(Capture{Query: fmt.Sprintf("q%d-%d", i, j), Status: status})
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				for _, c := range r.List(Filter{Limit: 4}) {
					r.Get(c.ID)
				}
				r.Len()
				r.Captured()
			}
		}()
	}
	wg.Wait()
	if got := r.Captured(); got != 8*200 {
		t.Fatalf("Captured() = %d, want %d", got, 8*200)
	}
}
