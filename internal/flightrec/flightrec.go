// Package flightrec is the query flight recorder: a bounded, concurrency-
// safe record of recent query executions, kept so an operator can inspect
// what the engine actually did — full span tree, measured-vs-predicted cost
// table, plan, backend, outcome — after the fact, without having asked for
// a trace up front.
//
// The recorder holds two fixed-size rings sharing one id sequence. Every
// execution lands in the recent ring; slow and failed (error, budget-
// tripped, panicked, timed-out, partial) executions additionally land in
// the notable ring, so a flood of fast healthy traffic cannot evict the one
// capture that explains an incident. Lookups merge both rings and
// deduplicate by id.
//
// Captures are immutable once recorded: Record copies the value, and
// readers receive pointers into the rings that they must not mutate.
package flightrec

import (
	"sort"
	"sync"
	"time"

	"wlq/internal/obs"
	"wlq/internal/shard"
)

// DefaultSize is the per-ring capacity used when a size of 0 is requested.
const DefaultSize = 256

// Status classifies how an execution ended.
type Status string

const (
	// StatusOK is a successful, complete answer.
	StatusOK Status = "ok"
	// StatusPartial is a sharded answer with failed shards (HTTP 206).
	StatusPartial Status = "partial"
	// StatusBudget is a query stopped by its resource budget (HTTP 422).
	StatusBudget Status = "budget"
	// StatusPanic is a query aborted by a recovered evaluator panic.
	StatusPanic Status = "panic"
	// StatusTimeout is a query that exceeded its deadline (HTTP 504).
	StatusTimeout Status = "timeout"
	// StatusError is any other failure, including parse and plan errors.
	StatusError Status = "error"
)

// Capture is one recorded query execution.
type Capture struct {
	// ID is the recorder-assigned sequence number, unique per recorder.
	ID uint64 `json:"id"`
	// Time is when the execution finished.
	Time time.Time `json:"time"`
	// Log and Generation identify the log snapshot queried; captures from
	// before and after a hot reload carry different generations.
	Log        string `json:"log,omitempty"`
	Generation uint64 `json:"generation"`
	// IngestLSN is the live log's applied high-water mark at evaluation
	// time (0 for static logs): under live ingestion the generation alone
	// no longer pins the data a capture saw, the watermark does.
	IngestLSN uint64 `json:"ingest_lsn,omitempty"`
	// Backend is the storage engine that served the query: "row" or
	// "columnar".
	Backend string `json:"backend,omitempty"`
	// Query is the pattern as submitted; Canonical its cache key form.
	Query     string `json:"query"`
	Canonical string `json:"canonical,omitempty"`
	// Plan is the optimized pattern the evaluator ran.
	Plan string `json:"plan,omitempty"`
	// Planner records which cost model ranked the plan: "adaptive"
	// (measured selectivities) or "static" (model constants).
	Planner string `json:"planner,omitempty"`
	// Status classifies the outcome; HTTPStatus is the code returned.
	Status     Status `json:"status"`
	HTTPStatus int    `json:"http_status,omitempty"`
	// Error is the failure detail for non-ok statuses.
	Error string `json:"error,omitempty"`
	// ElapsedUS is the wall time of the execution in microseconds.
	ElapsedUS int64 `json:"elapsed_us"`
	// Slow marks executions over the server's slow-query threshold.
	Slow bool `json:"slow,omitempty"`
	// Cached marks answers served from the result cache (no evaluation ran,
	// so Trace carries no eval spans).
	Cached bool `json:"cached,omitempty"`
	// Sharded marks executions routed through the shard executor.
	Sharded bool `json:"sharded,omitempty"`
	// Trace is the full observability trace — span tree and cost table —
	// captured whether or not the client requested one.
	Trace *obs.QueryTrace `json:"trace,omitempty"`
	// Completeness reports shard coverage for sharded executions.
	Completeness *shard.Completeness `json:"completeness,omitempty"`
	// Workers summarizes the cluster fan-out for distributed executions
	// (nil for local ones).
	Workers *WorkerSummary `json:"workers,omitempty"`
}

// WorkerSummary is the distributed fan-out of one capture: the fleet-level
// counts plus structured per-worker detail. Mirrors cluster.Fanout without
// importing it (flightrec stays a leaf below the cluster tier).
type WorkerSummary struct {
	// Workers is the number of workers owning wids this query.
	Workers int `json:"workers"`
	// Attempted/Succeeded/Failed/Skipped count workers by terminal outcome
	// (Skipped = excluded by an open circuit breaker without a request).
	Attempted int `json:"attempted"`
	Succeeded int `json:"succeeded"`
	Failed    int `json:"failed,omitempty"`
	Skipped   int `json:"skipped,omitempty"`
	// Hedged counts duplicated straggler requests; Retries re-attempts;
	// HedgeWins hedges whose duplicate answered first.
	Hedged    int `json:"hedged,omitempty"`
	Retries   int `json:"retries,omitempty"`
	HedgeWins int `json:"hedge_wins,omitempty"`
	// TraceID is the propagated cross-process trace id, when the query was
	// traced end-to-end.
	TraceID string `json:"trace_id,omitempty"`
	// PerWorker details every worker the query touched, in fleet order.
	PerWorker []WorkerDetail `json:"per_worker,omitempty"`
}

// WorkerDetail is one worker's outcome within a captured distributed query
// (mirrors cluster.WorkerCall).
type WorkerDetail struct {
	// Worker is the worker base URL; WIDs how many wids it owned.
	Worker string `json:"worker"`
	WIDs   int    `json:"wids"`
	// Status is "ok", "failed", or "skipped" (breaker).
	Status string `json:"status"`
	// Attempts counts requests sent (hedges excluded); Retries re-attempts;
	// Hedges duplicated straggler requests; HedgeWon whether a hedge's
	// answer was used; BreakerSkip an exclusion by an open breaker.
	Attempts    int  `json:"attempts"`
	Retries     int  `json:"retries,omitempty"`
	Hedges      int  `json:"hedges,omitempty"`
	HedgeWon    bool `json:"hedge_won,omitempty"`
	BreakerSkip bool `json:"breaker_skip,omitempty"`
	// ElapsedUS is the worker-reported evaluation wall time (0 on failure).
	ElapsedUS int64 `json:"elapsed_us"`
	// Incidents is the worker's contribution to the merged answer;
	// TraceSpans the size of its returned span subtree.
	Incidents  int `json:"incidents"`
	TraceSpans int `json:"trace_spans,omitempty"`
	// Error is the terminal failure, when Status != "ok".
	Error string `json:"error,omitempty"`
}

// Notable reports whether the capture earns a slot in the notable ring:
// anything slow or not plainly successful.
func (c *Capture) Notable() bool {
	return c.Slow || (c.Status != StatusOK && c.Status != "")
}

// Filter selects captures in List. The zero Filter matches everything.
type Filter struct {
	// Status keeps only captures with this status ("" keeps all).
	Status Status
	// Log keeps only captures of this log ("" keeps all).
	Log string
	// MinElapsed keeps only captures at least this slow.
	MinElapsed time.Duration
	// SlowOnly keeps only captures marked slow.
	SlowOnly bool
	// Worker keeps only distributed captures that touched this worker
	// (matched against the per-worker detail; "" keeps all).
	Worker string
	// Limit caps the result length (0 means no cap beyond ring capacity).
	Limit int
}

func (f Filter) match(c *Capture) bool {
	if f.Status != "" && c.Status != f.Status {
		return false
	}
	if f.Log != "" && c.Log != f.Log {
		return false
	}
	if f.MinElapsed > 0 && time.Duration(c.ElapsedUS)*time.Microsecond < f.MinElapsed {
		return false
	}
	if f.SlowOnly && !c.Slow {
		return false
	}
	if f.Worker != "" {
		if c.Workers == nil {
			return false
		}
		found := false
		for _, d := range c.Workers.PerWorker {
			if d.Worker == f.Worker {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Recorder is the bounded capture store. The zero value is not usable;
// build one with New. A nil *Recorder is valid and drops every capture, so
// callers can record unconditionally.
type Recorder struct {
	mu       sync.RWMutex
	size     int
	seq      uint64
	captured uint64
	recent   ring
	notable  ring
}

// ring is a fixed-capacity overwrite-oldest buffer.
type ring struct {
	buf []*Capture
	pos int // next write slot
}

func (r *ring) add(c *Capture) {
	r.buf[r.pos] = c
	r.pos = (r.pos + 1) % len(r.buf)
}

// New builds a recorder holding size captures per ring (recent + notable).
// size 0 means DefaultSize; negative sizes are treated as 1.
func New(size int) *Recorder {
	if size == 0 {
		size = DefaultSize
	}
	if size < 1 {
		size = 1
	}
	return &Recorder{
		size:    size,
		recent:  ring{buf: make([]*Capture, size)},
		notable: ring{buf: make([]*Capture, size)},
	}
}

// Record stores a capture, assigns it the next id, and returns that id.
// The capture value is copied; the caller may reuse c. A nil recorder
// returns 0 and stores nothing.
func (r *Recorder) Record(c Capture) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	r.captured++
	c.ID = r.seq
	stored := &c
	r.recent.add(stored)
	if stored.Notable() {
		r.notable.add(stored)
	}
	return c.ID
}

// List returns the captures matching f, newest first. Captures present in
// both rings appear once.
func (r *Recorder) List(f Filter) []*Capture {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	seen := make(map[uint64]*Capture, 2*r.size)
	for _, ring := range []ring{r.recent, r.notable} {
		for _, c := range ring.buf {
			if c != nil {
				seen[c.ID] = c
			}
		}
	}
	r.mu.RUnlock()
	out := make([]*Capture, 0, len(seen))
	for _, c := range seen {
		if f.match(c) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[:f.Limit]
	}
	return out
}

// Get returns the capture with the given id, or (nil, false) when it has
// been evicted or never existed.
func (r *Recorder) Get(id uint64) (*Capture, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, ring := range []ring{r.recent, r.notable} {
		for _, c := range ring.buf {
			if c != nil && c.ID == id {
				return c, true
			}
		}
	}
	return nil, false
}

// Len reports how many distinct captures are currently held.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := make(map[uint64]struct{}, 2*r.size)
	for _, ring := range []ring{r.recent, r.notable} {
		for _, c := range ring.buf {
			if c != nil {
				seen[c.ID] = struct{}{}
			}
		}
	}
	return len(seen)
}

// Captured reports the total captures recorded over the recorder's
// lifetime, including evicted ones — the counter behind
// wlq_flightrec_captured_total.
func (r *Recorder) Captured() uint64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.captured
}
