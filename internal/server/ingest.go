package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"

	"wlq/internal/ingest"
	"wlq/internal/logio"
	"wlq/internal/wal"
	"wlq/internal/wlog"
)

// Live ingestion: POST /v1/logs/{name}/append writes records through a
// per-log write-ahead log into the live index (internal/ingest owns the
// WAL-then-apply ordering; this file owns the HTTP surface and the delta
// cache invalidation). See docs/DURABILITY.md.

// DefaultIngestQueue is the per-log append admission bound when
// Config.IngestQueue is 0: deep enough that bursty appenders rarely see
// 429, shallow enough that a stalled disk sheds instead of queueing
// unboundedly.
const DefaultIngestQueue = 256

// openIngest builds one log's durable ingest coordinator over its WAL
// directory. Called under s.mu from AddLog.
func (s *Server) openIngest(name string, l *wlog.Log) (*ingest.Coordinator, wal.Recovery, error) {
	if s.cfg.WALDir == "" {
		return nil, wal.Recovery{}, errors.New("ingest enabled but Config.WALDir is empty")
	}
	queue := s.cfg.IngestQueue
	if queue == 0 {
		queue = DefaultIngestQueue
	}
	return ingest.Open(l, ingest.Config{
		Dir:           filepath.Join(s.cfg.WALDir, sanitizeWALName(name)),
		Policy:        s.cfg.FsyncPolicy,
		FsyncInterval: s.cfg.FsyncInterval,
		SegmentBytes:  s.cfg.WALSegmentBytes,
		Queue:         queue,
		Columnar:      s.cfg.Columnar,
		// Delta cache invalidation, the live twin of the generation-keyed
		// reload scheme: each accepted append drops exactly the cached
		// entries whose atom sets could match the new record. Runs in lsn
		// order after the monitor's write lock is released, so it strictly
		// follows any cache put of a result computed from the pre-append
		// view (the query path holds the monitor's read lock across its put).
		OnApply: func(r wlog.Record) {
			if n := s.cache.invalidateActivity(name, r.Activity); n > 0 {
				s.metrics.ingestInvalidations.Add(n)
			}
		},
		ObserveFsync: s.metrics.fsyncHist.observe,
	})
}

// sanitizeWALName maps a log name to a filesystem-safe WAL subdirectory
// name: anything outside [A-Za-z0-9._-] becomes '_', and a leading dot is
// escaped so the directory is never hidden or a path traversal.
func sanitizeWALName(name string) string {
	var sb strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			sb.WriteByte(c)
		case c == '.' && i > 0:
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// appendResponse is the POST /v1/logs/{name}/append result. The body is a
// stream of JSONL records (the logio wire form, one per line); all of them
// were durably logged and applied in order when the status is 200.
type appendResponse struct {
	Log string `json:"log"`
	// Appended is how many records this request persisted; FirstLSN and
	// LastLSN bracket their assigned log sequence numbers. LastLSN is the
	// watermark an appender resumes from after a reconnect.
	Appended int    `json:"appended"`
	FirstLSN uint64 `json:"first_lsn,omitempty"`
	LastLSN  uint64 `json:"last_lsn"`
}

// handleAppend is POST /v1/logs/{name}/append. Records are applied one at a
// time in body order; each is durable before the next is read. On a mid-
// batch failure the response names the offending record AND reports how
// many earlier records were already accepted — those are durable and are
// NOT rolled back (the WAL is append-only; clients resume from last_lsn).
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	entry, err := s.lookup(r.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if entry.live == nil {
		writeError(w, http.StatusConflict, "log %q does not accept appends", entry.name)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	lr := logio.NewReader(r.Body, logio.FormatJSONL)
	resp := appendResponse{Log: entry.name}
	for {
		rec, err := lr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				s.appendFailure(w, http.StatusRequestEntityTooLarge, resp, errorDoc{
					Error:    fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit),
					Accepted: resp.Appended,
				})
				return
			}
			s.appendFailure(w, http.StatusBadRequest, resp, errorDoc{
				Error:    fmt.Sprintf("malformed record: %v", err),
				Accepted: resp.Appended,
			})
			return
		}
		lsn, err := entry.live.Append(rec)
		if err != nil {
			s.writeAppendError(w, entry, resp, rec, err)
			return
		}
		if resp.Appended == 0 {
			resp.FirstLSN = lsn
		}
		resp.Appended++
		resp.LastLSN = lsn
	}
	if resp.Appended == 0 {
		writeError(w, http.StatusBadRequest, "empty append: no records in request body")
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeAppendError maps a coordinator append failure to its HTTP shape:
// 422 for a Definition 2 rejection (naming the refused record), 429 +
// Retry-After under backpressure, 503 when durability itself failed (the
// WAL could not persist the record; nothing was applied).
func (s *Server) writeAppendError(w http.ResponseWriter, entry *logEntry, resp appendResponse, rec wlog.Record, err error) {
	var re *ingest.RejectError
	switch {
	case errors.As(err, &re):
		s.appendFailure(w, http.StatusUnprocessableEntity, resp, errorDoc{
			Error:    fmt.Sprintf("record rejected: %v", re.Err),
			Record:   re.Record.String(),
			Accepted: resp.Appended,
		})
	case errors.Is(err, ingest.ErrBusy):
		retry := retryAfterSeconds(entry.live.Admission().RetryAfter())
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		s.appendFailure(w, http.StatusTooManyRequests, resp, errorDoc{
			Error:             "ingest saturated: apply queue full",
			RetryAfterSeconds: retry,
			Accepted:          resp.Appended,
		})
	default:
		// The WAL refused or broke: acknowledging the record would promise
		// durability the disk did not deliver. 503 — the condition is
		// sticky until the operator intervenes (see docs/DURABILITY.md).
		s.appendFailure(w, http.StatusServiceUnavailable, resp, errorDoc{
			Error:    fmt.Sprintf("durability failure, record not accepted: %v", err),
			Record:   rec.String(),
			Accepted: resp.Appended,
		})
	}
}

// appendFailure writes an append error envelope. Records accepted before
// the failure are durable; the doc's Accepted field says how many.
func (s *Server) appendFailure(w http.ResponseWriter, code int, resp appendResponse, doc errorDoc) {
	if resp.Appended > 0 {
		doc.LastLSN = resp.LastLSN
	}
	writeJSON(w, code, doc)
}

// Close releases server-held resources: every live log's WAL is synced and
// closed. Queries keep working against the in-memory state; appends to a
// closed WAL fail. Call once, after the HTTP server has drained.
func (s *Server) Close() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var first error
	for _, name := range s.names {
		if e := s.logs[name]; e.live != nil {
			if err := e.live.Close(); err != nil && first == nil {
				first = fmt.Errorf("server: close wal for %q: %w", name, err)
			}
		}
	}
	return first
}

// ingestLogDoc is one live log's row in the metrics ingest section.
type ingestLogDoc struct {
	Log           string `json:"log"`
	LastLSN       uint64 `json:"last_lsn"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	Segments      int    `json:"wal_segments"`
}

// ingestMetricsDoc is the ingest section of the metrics document:
// coordinator and WAL counters aggregated across live logs at scrape time
// (the same assembled-at-scrape pattern as the cluster section), plus the
// server-owned delta-invalidation counter and the fsync latency histogram's
// scalar summary (the full histogram is Prometheus-only).
type ingestMetricsDoc struct {
	Accepted           uint64         `json:"accepted"`
	Rejected           uint64         `json:"rejected"`
	Shed               uint64         `json:"shed"`
	Replayed           uint64         `json:"replayed"`
	Deduped            uint64         `json:"deduped"`
	WALAppends         uint64         `json:"wal_appends"`
	WALBytes           uint64         `json:"wal_bytes"`
	WALFsyncs          uint64         `json:"wal_fsyncs"`
	WALRotations       uint64         `json:"wal_rotations"`
	WALSegments        int            `json:"wal_segments"`
	WALTornBytes       int64          `json:"wal_torn_bytes"`
	CacheInvalidations uint64         `json:"cache_invalidations"`
	FsyncCount         uint64         `json:"fsync_count"`
	FsyncSumUS         int64          `json:"fsync_sum_us"`
	Logs               []ingestLogDoc `json:"logs,omitempty"`
}

// ingestMetrics assembles the ingest section, or nil when live ingestion is
// disabled.
func (s *Server) ingestMetrics() *ingestMetricsDoc {
	if !s.cfg.Ingest {
		return nil
	}
	s.mu.RLock()
	coords := make([]*logEntry, 0, len(s.names))
	for _, name := range s.names {
		if e := s.logs[name]; e.live != nil {
			coords = append(coords, e)
		}
	}
	s.mu.RUnlock()
	doc := &ingestMetricsDoc{
		CacheInvalidations: s.metrics.ingestInvalidations.Load(),
	}
	_, doc.FsyncCount, doc.FsyncSumUS = s.metrics.fsyncHist.snapshot()
	for _, e := range coords {
		st := e.live.Stats()
		doc.Accepted += st.Accepted
		doc.Rejected += st.Rejected
		doc.Shed += st.Shed
		doc.Replayed += st.Replayed
		doc.Deduped += st.Deduped
		doc.WALAppends += st.WAL.Appends
		doc.WALBytes += st.WAL.Bytes
		doc.WALFsyncs += st.WAL.Fsyncs
		doc.WALRotations += st.WAL.Rotations
		doc.WALSegments += st.WAL.Segments
		doc.WALTornBytes += st.WAL.TornBytes
		doc.Logs = append(doc.Logs, ingestLogDoc{
			Log:           e.name,
			LastLSN:       st.LastLSN,
			QueueDepth:    st.QueueDepth,
			QueueCapacity: st.QueueCapacity,
			Segments:      st.WAL.Segments,
		})
	}
	return doc
}
