package server

import (
	"log/slog"
	"net/http"
	"time"
)

// statusWriter captures the response status and size for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// logRequests wraps the handler with structured slog request logging: one
// Info line per request with method, path, status, duration and response
// size. Probe endpoints are logged at Debug so liveness checks don't flood
// the log.
func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		level := slog.LevelInfo
		if r.URL.Path == "/healthz" || r.URL.Path == "/readyz" {
			level = slog.LevelDebug
		}
		s.cfg.Logger.Log(r.Context(), level, "request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration_ms", float64(time.Since(started).Microseconds())/1000,
			"bytes", sw.bytes,
			"remote", r.RemoteAddr,
		)
	})
}
