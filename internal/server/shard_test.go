package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"wlq/internal/core/eval"
)

// Sharded-execution suite for the HTTP service: Config.Shards splits every
// query into isolated wid-range failure domains, and the partial-result
// contract (206 degraded / 502 strict, never cached) rides on the same
// chaos seams as the rest of the suite. Test names carry Shard/Chaos so the
// CI race step (`go test -race -run 'Chaos|Fault|Shard'`) picks them up.

// shardedChaosServer builds a 16-instance log served with 4 wid-range
// shards (wids 1–4, 5–8, 9–12, 13–16) and no retries, so a single injected
// fault maps to exactly one lost shard.
func shardedChaosServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	if cfg.ShardAttempts == 0 {
		cfg.ShardAttempts = 1
	}
	s := New(cfg)
	if err := s.AddLog("chaos", "builtin:chaos", chaosLog(t, 16, 3)); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestShardedQueryCompleteMatchesUnsharded(t *testing.T) {
	plain := newChaosServer(t, Config{}, 16, 3)
	sharded := shardedChaosServer(t, Config{})

	var want, got queryResponse
	if rec := postQuery(t, plain, `{"log":"chaos","query":"A -> B"}`, &want); rec.Code != http.StatusOK {
		t.Fatalf("unsharded: %d: %s", rec.Code, rec.Body)
	}
	if rec := postQuery(t, sharded.Handler(), `{"log":"chaos","query":"A -> B"}`, &got); rec.Code != http.StatusOK {
		t.Fatalf("sharded: %d: %s", rec.Code, rec.Body)
	}
	if got.Count != want.Count || len(got.Incidents) != len(want.Incidents) {
		t.Fatalf("sharded count %d != unsharded %d", got.Count, want.Count)
	}
	for i := range want.Incidents {
		if got.Incidents[i].WID != want.Incidents[i].WID {
			t.Fatalf("incident %d differs: %+v vs %+v", i, got.Incidents[i], want.Incidents[i])
		}
	}
	if got.Partial {
		t.Fatal("fault-free sharded response marked partial")
	}
	if got.Completeness == nil || !got.Completeness.Complete || got.Completeness.Shards != 4 {
		t.Fatalf("completeness = %+v, want 4/4 complete", got.Completeness)
	}

	// Complete sharded results are cacheable: the repeat is a hit.
	var again queryResponse
	postQuery(t, sharded.Handler(), `{"log":"chaos","query":"A -> B"}`, &again)
	if !again.Cached {
		t.Fatal("complete sharded result was not cached")
	}
}

func TestShardedQueryTraceHasShardSpans(t *testing.T) {
	s := shardedChaosServer(t, Config{})
	var resp queryResponse
	if rec := postQuery(t, s.Handler(), `{"log":"chaos","query":"A -> B","trace":true}`, &resp); rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if resp.Trace == nil || resp.Trace.Spans == nil {
		t.Fatal("traced sharded query returned no span tree")
	}
	raw, err := json.Marshal(resp.Trace.Spans)
	if err != nil {
		t.Fatal(err)
	}
	// One span per shard attempt, named "shard <id> attempt <n>".
	for _, name := range []string{"shard 0 attempt 1", "shard 1 attempt 1", "shard 2 attempt 1", "shard 3 attempt 1"} {
		if !strings.Contains(string(raw), name) {
			t.Errorf("span tree missing %q:\n%s", name, raw)
		}
	}
}

func TestChaosShardFaultStrictModeIs502(t *testing.T) {
	s := shardedChaosServer(t, Config{})
	// Persistent fault in the last shard's wid range (13–16).
	eval.SetEvalHook(func(wid uint64) {
		if wid >= 13 {
			panic("injected shard fault")
		}
	})
	defer eval.SetEvalHook(nil)

	rec := postQuery(t, s.Handler(), `{"log":"chaos","query":"A -> B"}`, nil)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("strict partial status %d, want 502: %s", rec.Code, rec.Body)
	}
	doc := decodeError(t, rec)
	if doc.Completeness == nil {
		t.Fatalf("502 envelope missing completeness: %s", rec.Body)
	}
	c := doc.Completeness
	if c.Complete || c.Succeeded != 3 || c.Failed != 1 || c.ExcludedWIDs != 4 {
		t.Fatalf("completeness = %+v, want 3/4 with 4 wids excluded", c)
	}
	if len(c.Failures) != 1 || c.Failures[0].WIDMin != 13 || c.Failures[0].WIDMax != 16 {
		t.Fatalf("failures = %+v, want the 13–16 range named", c.Failures)
	}
}

func TestChaosShardFaultDegradedModeIs206(t *testing.T) {
	s := shardedChaosServer(t, Config{})
	eval.SetEvalHook(func(wid uint64) {
		if wid >= 13 {
			panic("injected shard fault")
		}
	})
	defer eval.SetEvalHook(nil)

	rec := postQuery(t, s.Handler(), `{"log":"chaos","query":"A -> B","partial":true}`, nil)
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("degraded partial status %d, want 206: %s", rec.Code, rec.Body)
	}
	var resp queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode 206 body: %v\n%s", err, rec.Body)
	}
	if !resp.Partial || resp.Completeness == nil || resp.Completeness.Complete {
		t.Fatalf("206 response not marked partial: %+v", resp)
	}
	// The surviving shards' incidents are present — and none from the lost
	// wid range.
	if resp.Count == 0 {
		t.Fatal("partial response carries no incidents from the surviving shards")
	}
	for _, inc := range resp.Incidents {
		if inc.WID >= 13 {
			t.Fatalf("incident from the excluded wid range leaked into the partial result: %+v", inc)
		}
	}
	cause := resp.Completeness.Failures[0].Cause
	if !strings.Contains(cause, "panic") {
		t.Fatalf("completeness cause %q does not name the fault", cause)
	}
}

// TestChaosPartialResultNeverCached is the cache-safety regression: a
// partial result must not be served from the cache after the shards
// recover — "no incidents in wids 13–16" and "wids 13–16 were not
// evaluated" are different answers.
func TestChaosPartialResultNeverCached(t *testing.T) {
	s := shardedChaosServer(t, Config{})
	eval.SetEvalHook(func(wid uint64) {
		if wid >= 13 {
			panic("injected shard fault")
		}
	})

	var partial queryResponse
	rec := postQuery(t, s.Handler(), `{"log":"chaos","query":"A -> B","partial":true}`, nil)
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("status %d, want 206: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &partial); err != nil {
		t.Fatal(err)
	}
	if s.cache.len() != 0 {
		t.Fatalf("partial result entered the cache (%d entries)", s.cache.len())
	}

	// Fault gone: the same query must be re-evaluated in full, not answered
	// from a poisoned cache entry.
	eval.SetEvalHook(nil)
	var healed queryResponse
	if rec := postQuery(t, s.Handler(), `{"log":"chaos","query":"A -> B","partial":true}`, &healed); rec.Code != http.StatusOK {
		t.Fatalf("post-recovery status %d: %s", rec.Code, rec.Body)
	}
	if healed.Cached {
		t.Fatal("post-recovery response claims a cache hit: the partial result was cached")
	}
	if healed.Partial || healed.Count <= partial.Count {
		t.Fatalf("post-recovery result not complete: partial=%v count=%d (was %d)",
			healed.Partial, healed.Count, partial.Count)
	}
	// And the complete result now IS cached.
	var again queryResponse
	postQuery(t, s.Handler(), `{"log":"chaos","query":"A -> B","partial":true}`, &again)
	if !again.Cached {
		t.Fatal("complete post-recovery result was not cached")
	}
}

func TestChaosShardedMetricsCounters(t *testing.T) {
	s := shardedChaosServer(t, Config{})
	eval.SetEvalHook(func(wid uint64) {
		if wid >= 13 {
			panic("injected shard fault")
		}
	})
	defer eval.SetEvalHook(nil)
	postQuery(t, s.Handler(), `{"log":"chaos","query":"A -> B","partial":true}`, nil)

	var doc metricsDoc
	if rec := getJSON(t, s.Handler(), "/metrics", &doc); rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	if doc.ShardedQueries != 1 || doc.ShardsFailed != 1 || doc.PartialResults != 1 || doc.WIDsExcluded != 4 {
		t.Fatalf("sharded counters = sharded=%d failed=%d partial=%d excluded=%d, want 1/1/1/4",
			doc.ShardedQueries, doc.ShardsFailed, doc.PartialResults, doc.WIDsExcluded)
	}
	// The prometheus exposition carries the same families.
	rec := getJSON(t, s.Handler(), "/metrics?format=prometheus", nil)
	body := rec.Body.String()
	for _, family := range []string{
		"wlq_sharded_queries_total 1",
		"wlq_shards_failed_total 1",
		"wlq_partial_results_total 1",
		"wlq_wids_excluded_total 4",
		"wlq_shard_breakers_open",
		"wlq_shard_retries_total",
		"wlq_shards_skipped_total",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("prometheus exposition missing %q", family)
		}
	}
}

// TestChaosRetryAfterClamp covers the 429 backoff hint: sub-second advisory
// delays must not truncate to "Retry-After: 0" (an instant-retry stampede);
// the value is ceil'd to whole seconds, floored at 1, and jittered by at
// most one extra second.
func TestChaosRetryAfterClamp(t *testing.T) {
	cases := []struct {
		d        time.Duration
		min, max int
	}{
		{0, 1, 2},
		{time.Millisecond, 1, 2},
		{999 * time.Millisecond, 1, 2},
		{time.Second, 1, 2},
		{1500 * time.Millisecond, 2, 3},
		{5 * time.Second, 5, 6},
	}
	for _, c := range cases {
		for i := 0; i < 50; i++ {
			got := retryAfterSeconds(c.d)
			if got < c.min || got > c.max {
				t.Fatalf("retryAfterSeconds(%v) = %d, want in [%d, %d]", c.d, got, c.min, c.max)
			}
		}
	}
}
