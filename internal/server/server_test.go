package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wlq"
	"wlq/internal/core/eval"
)

// newTestServer serves the paper's Figure 3 log under the name "fig3".
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	if err := s.AddLog("fig3", "builtin:fig3", wlq.ClinicFig3()); err != nil {
		t.Fatal(err)
	}
	return s
}

// postQuery sends a POST /v1/query and decodes the response into out.
func postQuery(t *testing.T, h http.Handler, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decode response: %v\n%s", err, rec.Body)
		}
	}
	return rec
}

func getJSON(t *testing.T, h http.Handler, url string, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decode %s: %v\n%s", url, err, rec.Body)
		}
	}
	return rec
}

func TestQueryMatchesEngine(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	engine := wlq.NewEngine(wlq.ClinicFig3())
	for _, q := range []string{
		"UpdateRefer -> GetReimburse",
		"SeeDoctor -> (UpdateRefer -> GetReimburse)",
		"GetRefer . SeeDoctor",
		"GetRefer | SeeDoctor",
		"Zzz -> Zzz",
	} {
		want, err := engine.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		var resp queryResponse
		rec := postQuery(t, h, fmt.Sprintf(`{"log":"fig3","query":%q}`, q), &resp)
		if rec.Code != http.StatusOK {
			t.Fatalf("%q: status %d: %s", q, rec.Code, rec.Body)
		}
		if resp.Count != want.Len() {
			t.Errorf("%q: server count %d, engine count %d", q, resp.Count, want.Len())
		}
		if len(resp.Incidents) != want.Len() {
			t.Fatalf("%q: %d incidents in payload, want %d", q, len(resp.Incidents), want.Len())
		}
		for i, doc := range resp.Incidents {
			inc := want.At(i)
			if doc.WID != inc.WID() {
				t.Errorf("%q incident %d: wid %d, want %d", q, i, doc.WID, inc.WID())
			}
			wantSeqs := inc.Seqs()
			if len(doc.Seqs) != len(wantSeqs) {
				t.Fatalf("%q incident %d: seqs %v, want %v", q, i, doc.Seqs, wantSeqs)
			}
			for j := range wantSeqs {
				if doc.Seqs[j] != wantSeqs[j] {
					t.Errorf("%q incident %d: seqs %v, want %v", q, i, doc.Seqs, wantSeqs)
					break
				}
			}
		}
	}
}

func TestQueryModes(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	var resp queryResponse
	postQuery(t, h, `{"log":"fig3","query":"UpdateRefer -> GetReimburse","mode":"exists"}`, &resp)
	if !resp.Exists || resp.Incidents != nil {
		t.Errorf("exists mode: %+v", resp)
	}
	postQuery(t, h, `{"log":"fig3","query":"UpdateRefer -> GetReimburse","mode":"count"}`, &resp)
	if resp.Count != 1 || resp.Incidents != nil {
		t.Errorf("count mode: %+v", resp)
	}
	resp = queryResponse{}
	postQuery(t, h, `{"log":"fig3","query":"UpdateRefer -> GetReimburse","mode":"instances"}`, &resp)
	if len(resp.Instances) != 1 || resp.Instances[0] != 2 {
		t.Errorf("instances mode: %+v", resp.Instances)
	}
}

func TestQueryErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	tests := []struct {
		name string
		body string
		code int
	}{
		{"parse error", `{"log":"fig3","query":"A -> "}`, http.StatusBadRequest},
		{"missing query", `{"log":"fig3"}`, http.StatusBadRequest},
		{"unknown log", `{"log":"nope","query":"A"}`, http.StatusNotFound},
		{"bad mode", `{"log":"fig3","query":"A","mode":"wat"}`, http.StatusBadRequest},
		{"bad strategy", `{"log":"fig3","query":"A","strategy":"quantum"}`, http.StatusBadRequest},
		{"negative limit", `{"log":"fig3","query":"A","limit":-1}`, http.StatusBadRequest},
		{"unknown field", `{"log":"fig3","query":"A","frobnicate":1}`, http.StatusBadRequest},
		{"not json", `hello`, http.StatusBadRequest},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rec := postQuery(t, h, tt.body, nil)
			if rec.Code != tt.code {
				t.Errorf("status %d, want %d: %s", rec.Code, tt.code, rec.Body)
			}
			var e errorDoc
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Errorf("error body not a JSON error envelope: %s", rec.Body)
			}
		})
	}
}

func TestQueryMethodNotAllowed(t *testing.T) {
	s := newTestServer(t, Config{})
	req := httptest.NewRequest(http.MethodGet, "/v1/query", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query: status %d, want 405", rec.Code)
	}
}

func TestQueryBodyTooLarge(t *testing.T) {
	s := newTestServer(t, Config{MaxBodyBytes: 64})
	big := fmt.Sprintf(`{"log":"fig3","query":%q}`, strings.Repeat("A -> ", 100)+"A")
	rec := postQuery(t, s.Handler(), big, nil)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", rec.Code, rec.Body)
	}
}

func TestQueryTimeout(t *testing.T) {
	// A log big enough that its evaluation cannot finish within a
	// nanosecond; the deadline must surface as 504 and a timeout counter.
	log, err := wlq.ClinicLog(300, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Timeout: time.Nanosecond})
	if err := s.AddLog("big", "clinic:300:1", log); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	rec := postQuery(t, h, `{"log":"big","query":"!GetRefer -> !SeeDoctor -> !CheckIn"}`, nil)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body)
	}
	var m metricsDoc
	getJSON(t, h, "/metrics", &m)
	if m.QueryTimeouts != 1 {
		t.Errorf("query_timeouts = %d, want 1", m.QueryTimeouts)
	}
}

func TestQueryCacheHit(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	var first, second, commuted queryResponse
	postQuery(t, h, `{"log":"fig3","query":"GetRefer | SeeDoctor"}`, &first)
	if first.Cached {
		t.Fatal("first query reported cached")
	}
	postQuery(t, h, `{"log":"fig3","query":"GetRefer | SeeDoctor"}`, &second)
	if !second.Cached {
		t.Fatal("repeat query missed the cache")
	}
	// Theorems 2–3: the commuted form must share the cache entry.
	postQuery(t, h, `{"log":"fig3","query":"SeeDoctor | GetRefer"}`, &commuted)
	if !commuted.Cached {
		t.Fatal("commuted query missed the cache")
	}
	if second.Count != first.Count || commuted.Count != first.Count {
		t.Fatal("cached results differ from the first evaluation")
	}
	var m metricsDoc
	getJSON(t, h, "/metrics", &m)
	if m.CacheHits != 2 || m.CacheMisses != 1 {
		t.Errorf("cache_hits=%d cache_misses=%d, want 2/1", m.CacheHits, m.CacheMisses)
	}
	if m.CacheEntries != 1 {
		t.Errorf("cache_entries = %d, want 1", m.CacheEntries)
	}
}

func TestQueryLimitPartitionsCache(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	var unlimited, limited queryResponse
	postQuery(t, h, `{"log":"fig3","query":"GetRefer | SeeDoctor"}`, &unlimited)
	postQuery(t, h, `{"log":"fig3","query":"GetRefer | SeeDoctor","limit":1}`, &limited)
	if limited.Cached {
		t.Fatal("limited query must not reuse the unlimited entry")
	}
	if limited.Count >= unlimited.Count {
		t.Fatalf("limit=1 returned %d incidents, unlimited %d", limited.Count, unlimited.Count)
	}
}

func TestQueryNoOptimizeBypassesCache(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	var a, b queryResponse
	postQuery(t, h, `{"log":"fig3","query":"(GetRefer -> CheckIn) | (GetRefer -> SeeDoctor)","no_optimize":true}`, &a)
	postQuery(t, h, `{"log":"fig3","query":"(GetRefer -> CheckIn) | (GetRefer -> SeeDoctor)","no_optimize":true}`, &b)
	if a.Cached || b.Cached {
		t.Fatal("no_optimize queries must bypass the cache")
	}
	// The plan must be the pattern exactly as written (re-rendered with
	// minimal parentheses), not the optimizer's factored form.
	if want := wlq.MustParsePattern(a.Query).String(); a.Plan != want {
		t.Errorf("no_optimize plan %q, want the unoptimized %q", a.Plan, want)
	}
}

func TestQueryMaxResults(t *testing.T) {
	s := newTestServer(t, Config{})
	var resp queryResponse
	postQuery(t, s.Handler(), `{"log":"fig3","query":"GetRefer | SeeDoctor","max_results":1}`, &resp)
	if !resp.Truncated || len(resp.Incidents) != 1 {
		t.Fatalf("truncation failed: truncated=%v incidents=%d", resp.Truncated, len(resp.Incidents))
	}
	if resp.Count <= 1 {
		t.Errorf("count %d should report the full set size", resp.Count)
	}
}

func TestQueryDefaultLogName(t *testing.T) {
	s := newTestServer(t, Config{})
	var resp queryResponse
	rec := postQuery(t, s.Handler(), `{"query":"GetRefer"}`, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("single-log deployment must accept an empty log name: %d %s", rec.Code, rec.Body)
	}
	if resp.Log != "fig3" {
		t.Errorf("resolved log %q, want fig3", resp.Log)
	}
	// With two logs loaded the name becomes mandatory.
	if err := s.AddLog("fig3b", "builtin:fig3", wlq.ClinicFig3()); err != nil {
		t.Fatal(err)
	}
	rec = postQuery(t, s.Handler(), `{"query":"GetRefer"}`, nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("ambiguous empty log name: status %d, want 404", rec.Code)
	}
}

func TestQueryStrategiesAgree(t *testing.T) {
	s := newTestServer(t, Config{CacheSize: -1}) // no cache: force evaluation
	h := s.Handler()
	var merge, naive queryResponse
	postQuery(t, h, `{"log":"fig3","query":"SeeDoctor -> (UpdateRefer -> GetReimburse)","strategy":"merge"}`, &merge)
	postQuery(t, h, `{"log":"fig3","query":"SeeDoctor -> (UpdateRefer -> GetReimburse)","strategy":"naive"}`, &naive)
	if merge.Count != naive.Count {
		t.Fatalf("strategies disagree: merge %d, naive %d", merge.Count, naive.Count)
	}
	if merge.Strategy != "merge" || naive.Strategy != "naive" {
		t.Errorf("strategy echo wrong: %q / %q", merge.Strategy, naive.Strategy)
	}
}

func TestExplain(t *testing.T) {
	s := newTestServer(t, Config{})
	var resp explainResponse
	url := "/v1/explain?log=fig3&q=" + "%28GetRefer%20-%3E%20CheckIn%29%20%7C%20%28GetRefer%20-%3E%20SeeDoctor%29"
	rec := getJSON(t, s.Handler(), url, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if resp.Before.Cost <= 0 || resp.After.Cost <= 0 {
		t.Errorf("estimates missing: before=%+v after=%+v", resp.Before, resp.After)
	}
	if resp.After.Cost > resp.Before.Cost {
		t.Errorf("optimizer reported a costlier plan: %g -> %g", resp.Before.Cost, resp.After.Cost)
	}
	if !resp.Changed || len(resp.Steps) == 0 {
		t.Errorf("factorable query reported no rewrite: changed=%v steps=%v", resp.Changed, resp.Steps)
	}
	sel := resp.Selectivities
	if sel.Guard <= 0 || sel.Consecutive <= 0 || sel.Sequential <= 0 || sel.Parallel <= 0 {
		t.Errorf("selectivity constants missing from EXPLAIN: %+v", sel)
	}
	if resp.IncidentTree == "" || resp.PaperForm == "" {
		t.Error("incident tree / paper form missing")
	}
}

func TestExplainErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	if rec := getJSON(t, h, "/v1/explain?log=fig3", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("missing q: status %d, want 400", rec.Code)
	}
	if rec := getJSON(t, h, "/v1/explain?log=nope&q=A", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown log: status %d, want 404", rec.Code)
	}
	if rec := getJSON(t, h, "/v1/explain?log=fig3&q=A+-%3E", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("parse error: status %d, want 400", rec.Code)
	}
}

func TestLogsInventory(t *testing.T) {
	s := newTestServer(t, Config{})
	clinicLog, err := wlq.ClinicLog(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddLog("clinic", "clinic:5:7", clinicLog); err != nil {
		t.Fatal(err)
	}
	var resp logsResponse
	getJSON(t, s.Handler(), "/v1/logs", &resp)
	if len(resp.Logs) != 2 {
		t.Fatalf("%d logs listed, want 2", len(resp.Logs))
	}
	// Sorted by name: clinic before fig3.
	if resp.Logs[0].Name != "clinic" || resp.Logs[1].Name != "fig3" {
		t.Fatalf("inventory order: %+v", resp.Logs)
	}
	fig3 := resp.Logs[1]
	if fig3.Records != 20 || fig3.Instances != 3 || !fig3.Valid {
		t.Errorf("fig3 inventory wrong: %+v", fig3)
	}
	if fig3.Source != "builtin:fig3" {
		t.Errorf("source not echoed: %+v", fig3)
	}
	clinic := resp.Logs[0]
	if clinic.Instances != 5 || clinic.Activities == 0 {
		t.Errorf("clinic inventory wrong: %+v", clinic)
	}
}

func TestAddLogErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	if err := s.AddLog("fig3", "dup", wlq.ClinicFig3()); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := s.AddLog("", "anon", wlq.ClinicFig3()); err == nil {
		t.Error("empty name accepted")
	}
	if err := s.AddLog("nil", "nil", nil); err == nil {
		t.Error("nil log accepted")
	}
}

func TestMetricsDocument(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	h := s.Handler()
	postQuery(t, h, `{"log":"fig3","query":"GetRefer"}`, nil)
	postQuery(t, h, `{"log":"fig3","query":"GetRefer"}`, nil)
	postQuery(t, h, `{"log":"fig3","query":"A -> "}`, nil) // parse error
	var m metricsDoc
	getJSON(t, h, "/metrics", &m)
	if m.QueriesTotal != 3 || m.QueryErrors != 1 {
		t.Errorf("queries_total=%d query_errors=%d, want 3/1", m.QueriesTotal, m.QueryErrors)
	}
	if m.LogsLoaded != 1 || m.WorkersPerQuery != 2 {
		t.Errorf("logs_loaded=%d workers=%d", m.LogsLoaded, m.WorkersPerQuery)
	}
	if m.Latency.Count != 3 {
		t.Errorf("latency count %d, want 3 (error paths are latency samples too)", m.Latency.Count)
	}
	if m.IncidentsReturned == 0 || m.InstancesEvaluated == 0 {
		t.Errorf("work counters empty: %+v", m)
	}
	if m.UptimeSeconds < 0 || m.WorkerCapacity <= 0 {
		t.Errorf("gauges wrong: %+v", m)
	}
}

// TestConcurrentQueries exercises the full handler stack from many
// goroutines against one shared Index; `go test -race` (the CI race step)
// verifies the absence of data races on the cache and metrics.
func TestConcurrentQueries(t *testing.T) {
	log, err := wlq.ClinicLog(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{CacheSize: 8})
	if err := s.AddLog("clinic", "clinic:40:3", log); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	queries := []string{
		`{"log":"clinic","query":"GetRefer -> SeeDoctor"}`,
		`{"log":"clinic","query":"SeeDoctor | CheckIn"}`,
		`{"log":"clinic","query":"CheckIn | SeeDoctor"}`,
		`{"log":"clinic","query":"GetRefer . CheckIn","mode":"count"}`,
		`{"log":"clinic","query":"GetRefer","mode":"exists"}`,
		`{"log":"clinic","query":"bogus ->"}`,
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				body := queries[(g+i)%len(queries)]
				req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader([]byte(body)))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK && rec.Code != http.StatusBadRequest {
					t.Errorf("unexpected status %d: %s", rec.Code, rec.Body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	var m metricsDoc
	getJSON(t, h, "/metrics", &m)
	if m.QueriesTotal != 16*20 {
		t.Errorf("queries_total = %d, want %d", m.QueriesTotal, 16*20)
	}
	if m.InflightQueries != 0 || m.BusyWorkers != 0 {
		t.Errorf("gauges did not drain: %+v", m)
	}
}

func TestServedResultsMatchEngineAcrossStrategies(t *testing.T) {
	// Acceptance: wlq-serve answers match cmd/wlq (the Engine) on the same
	// log/pattern, for both strategies, with and without the cache.
	log, err := wlq.ClinicLog(25, 9)
	if err != nil {
		t.Fatal(err)
	}
	engine := wlq.NewEngine(log)
	for _, cache := range []int{-1, 64} {
		s := New(Config{CacheSize: cache})
		if err := s.AddLog("clinic", "clinic:25:9", log); err != nil {
			t.Fatal(err)
		}
		h := s.Handler()
		for _, q := range []string{
			"GetRefer -> SeeDoctor -> CheckIn",
			"(GetRefer -> CheckIn) | (GetRefer -> SeeDoctor)",
			"GetRefer & SeeDoctor",
		} {
			want, err := engine.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			for _, strategy := range []string{"merge", "naive"} {
				var resp queryResponse
				rec := postQuery(t, h,
					fmt.Sprintf(`{"log":"clinic","query":%q,"strategy":%q}`, q, strategy), &resp)
				if rec.Code != http.StatusOK {
					t.Fatalf("%q/%s: status %d: %s", q, strategy, rec.Code, rec.Body)
				}
				if resp.Count != want.Len() {
					t.Errorf("cache=%d %q/%s: server %d incidents, engine %d",
						cache, q, strategy, resp.Count, want.Len())
				}
			}
		}
	}
}

func TestEvalStrategyZeroValueIsMerge(t *testing.T) {
	// Guards the Config.withDefaults assumption.
	if (Config{}.withDefaults().Strategy) != eval.StrategyMerge {
		t.Fatal("zero Config must default to the merge strategy")
	}
}
