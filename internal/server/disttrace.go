package server

import (
	"wlq/internal/cluster"
	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
	"wlq/internal/flightrec"
	"wlq/internal/obs"
)

// Helpers bridging the cluster tier's distributed-tracing results into the
// flight recorder and the statistics registry.

// workerSummaryOf converts a cluster fan-out into the flight recorder's
// worker summary, per-worker detail included.
func workerSummaryOf(fan cluster.Fanout) *flightrec.WorkerSummary {
	ws := &flightrec.WorkerSummary{
		Workers:   fan.Workers,
		Attempted: fan.Attempted,
		Succeeded: fan.Succeeded,
		Failed:    fan.Failed,
		Skipped:   fan.Skipped,
		Hedged:    fan.Hedged,
		Retries:   fan.Retries,
		HedgeWins: fan.HedgeWins,
		TraceID:   fan.TraceID,
	}
	for _, c := range fan.PerWorker {
		ws.PerWorker = append(ws.PerWorker, flightrec.WorkerDetail{
			Worker:      c.Worker,
			WIDs:        c.WIDs,
			Status:      c.Status,
			Attempts:    c.Attempts,
			Retries:     c.Retries,
			Hedges:      c.Hedges,
			HedgeWon:    c.HedgeWon,
			BreakerSkip: c.BreakerSkip,
			ElapsedUS:   c.ElapsedUS,
			Incidents:   c.Incidents,
			TraceSpans:  c.TraceSpans,
			Error:       c.Error,
		})
	}
	return ws
}

// nodeStatsFromCostRows reconstructs meter node stats from a wire cost
// table so a fleet-aggregated table can feed the statistics registry the
// same way a local meter flush does. Rows are the pre-order walk of the
// plan (the meter's own order); any shape disagreement — row count or node
// text — returns nil rather than guessing, because mis-attributed counts
// would poison the adaptive cost model.
func nodeStatsFromCostRows(plan pattern.Node, rows []obs.CostRow) []eval.NodeStats {
	if len(rows) == 0 {
		return nil
	}
	var nodes []pattern.Node
	var walk func(n pattern.Node)
	walk = func(n pattern.Node) {
		nodes = append(nodes, n)
		if b, ok := n.(*pattern.Binary); ok {
			walk(b.Left)
			walk(b.Right)
		}
	}
	walk(plan)
	if len(nodes) != len(rows) {
		return nil
	}
	out := make([]eval.NodeStats, 0, len(rows))
	for i, n := range nodes {
		r := rows[i]
		if r.Node != n.String() {
			return nil
		}
		st := eval.NodeStats{
			Node:        n,
			Evals:       r.Evals,
			MemoHits:    r.MemoHits,
			Comparisons: r.Comparisons,
			Outputs:     r.Outputs,
			Predicted:   r.Predicted,
			Pairs:       r.Pairs,
			LeftInputs:  r.N1,
			RightInputs: r.N2,
			K1:          r.K1,
			K2:          r.K2,
		}
		if b, ok := n.(*pattern.Binary); ok {
			st.Op = b.Op
		} else {
			st.Atom = true
		}
		out = append(out, st)
	}
	return out
}
