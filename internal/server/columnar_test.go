package server

import (
	"fmt"
	"net/http"
	"testing"
)

// TestColumnarBackendMatchesRow runs the same queries against a row-backed
// and a columnar-backed server and requires identical responses — the HTTP
// layer must be unable to tell the backends apart.
func TestColumnarBackendMatchesRow(t *testing.T) {
	row := newTestServer(t, Config{}).Handler()
	col := newTestServer(t, Config{Columnar: true}).Handler()
	for _, q := range []string{
		"UpdateRefer -> GetReimburse",
		"CheckIn . SeeDoctor",
		"GetRefer | TakeTreatment",
		"SeeDoctor & PayTreatment",
		"!SeeDoctor . END",
	} {
		body := fmt.Sprintf(`{"log":"fig3","query":%q}`, q)
		var rowRes, colRes struct {
			Count     int `json:"count"`
			Incidents []struct {
				WID  uint64   `json:"wid"`
				Seqs []uint64 `json:"seqs"`
			} `json:"incidents"`
		}
		if rec := postQuery(t, row, body, &rowRes); rec.Code != http.StatusOK {
			t.Fatalf("row backend %q: status %d: %s", q, rec.Code, rec.Body)
		}
		if rec := postQuery(t, col, body, &colRes); rec.Code != http.StatusOK {
			t.Fatalf("columnar backend %q: status %d: %s", q, rec.Code, rec.Body)
		}
		if rowRes.Count != colRes.Count {
			t.Errorf("%q: row count %d, columnar count %d", q, rowRes.Count, colRes.Count)
		}
		if fmt.Sprint(rowRes.Incidents) != fmt.Sprint(colRes.Incidents) {
			t.Errorf("%q: incidents differ\nrow:      %v\ncolumnar: %v",
				q, rowRes.Incidents, colRes.Incidents)
		}
	}
}

// TestColumnarSharded exercises the sharded execution path over the
// columnar backend through the full HTTP stack.
func TestColumnarSharded(t *testing.T) {
	row := newTestServer(t, Config{Shards: 3}).Handler()
	col := newTestServer(t, Config{Shards: 3, Columnar: true}).Handler()
	body := `{"log":"fig3","query":"UpdateRefer -> GetReimburse"}`
	var rowRes, colRes struct {
		Count int `json:"count"`
	}
	if rec := postQuery(t, row, body, &rowRes); rec.Code != http.StatusOK {
		t.Fatalf("row sharded: status %d: %s", rec.Code, rec.Body)
	}
	if rec := postQuery(t, col, body, &colRes); rec.Code != http.StatusOK {
		t.Fatalf("columnar sharded: status %d: %s", rec.Code, rec.Body)
	}
	if rowRes.Count != colRes.Count {
		t.Errorf("sharded count: row %d, columnar %d", rowRes.Count, colRes.Count)
	}
}
