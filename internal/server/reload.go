package server

import (
	"fmt"
	"net/http"
	"sort"

	"wlq/internal/ingest"
)

// Hot reload with quarantine. ReloadLogs re-reads every registered log from
// its source spec via Config.Loader and swaps the rebuilt entry in atomically
// (logEntry values are immutable; in-flight queries keep the snapshot they
// resolved). A log whose reload fails — the loader errors, or the fresh log
// fails Definition 2 validation — is quarantined: the last-good entry keeps
// serving, the error is recorded, and /readyz + /v1/logs surface it until a
// later reload succeeds. The result cache needs no invalidation sweep: keys
// carry the entry's reload generation, so stale results simply become
// unreachable and age out under LRU pressure.

// ReloadResult summarizes one ReloadLogs pass.
type ReloadResult struct {
	// Reloaded lists the logs whose fresh load replaced the served entry.
	Reloaded []string `json:"reloaded"`
	// Quarantined maps each failing log to its reload error; those logs
	// keep serving their last-good snapshot.
	Quarantined map[string]string `json:"quarantined,omitempty"`
	// Coalesced is true when this caller did not run its own pass but
	// joined one already in progress (single-flight) and shares its result.
	Coalesced bool `json:"coalesced,omitempty"`
}

// reloadCall is one in-progress reload pass; joiners block on done and then
// share res/err.
type reloadCall struct {
	done chan struct{}
	res  ReloadResult
	err  error
}

// ReloadLogs re-reads every registered log. It returns an error only when
// reloading is not configured (nil Config.Loader); per-log failures are
// reported in the result and quarantine the log rather than failing the pass.
//
// Concurrent callers are coalesced (single-flight): a SIGHUP landing while a
// POST /v1/reload pass is already loading joins that pass and shares its
// result instead of re-reading every source a second time — reload is
// idempotent, and doubling the I/O under a signal storm helps nobody.
func (s *Server) ReloadLogs() (ReloadResult, error) {
	if s.cfg.Loader == nil {
		return ReloadResult{}, fmt.Errorf("server: hot reload not configured (no loader)")
	}
	s.reloadMu.Lock()
	if c := s.reloadCall; c != nil {
		s.reloadMu.Unlock()
		<-c.done
		s.metrics.coalescedReloads.Add(1)
		res := c.res
		res.Coalesced = true
		return res, c.err
	}
	c := &reloadCall{done: make(chan struct{})}
	s.reloadCall = c
	s.reloadMu.Unlock()
	c.res, c.err = s.reloadLogsLocked()
	// Clear the slot before signalling: a caller arriving after close(done)
	// must start a fresh pass, not join a finished one.
	s.reloadMu.Lock()
	s.reloadCall = nil
	s.reloadMu.Unlock()
	close(c.done)
	return c.res, c.err
}

// reloadLogsLocked runs one actual reload pass (the single flight).
func (s *Server) reloadLogsLocked() (ReloadResult, error) {

	// Snapshot the roster under the read lock, then load and validate
	// outside any lock: loading is file I/O plus index building and must
	// not stall queries.
	s.mu.RLock()
	type target struct {
		name, source string
		live         *ingest.Coordinator
	}
	targets := make([]target, 0, len(s.names))
	for _, name := range s.names {
		targets = append(targets, target{
			name: name, source: s.logs[name].source, live: s.logs[name].live,
		})
	}
	s.mu.RUnlock()

	res := ReloadResult{Reloaded: []string{}}
	fresh := make(map[string]*logEntry, len(targets))
	for _, t := range targets {
		l, err := s.cfg.Loader(t.source)
		if err == nil && l == nil {
			err = fmt.Errorf("loader returned no log")
		}
		if err == nil {
			// Definition 2 validation gates the swap: AddLog tolerates an
			// invalid log at startup (the operator sees what they loaded),
			// but a reload degrading a valid log to an invalid one is a
			// fault to contain, not a state to adopt.
			err = l.Validate()
		}
		if err != nil {
			s.metrics.logReloadFailures.Add(1)
			if res.Quarantined == nil {
				res.Quarantined = make(map[string]string)
			}
			res.Quarantined[t.name] = err.Error()
			if s.cfg.Logger != nil {
				s.cfg.Logger.Error("log reload failed; serving last-good snapshot",
					"log", t.name, "source", t.source, "error", err)
			}
			continue
		}
		e := &logEntry{
			name:   t.name,
			source: t.source,
			log:    l,
			valid:  true,
		}
		if t.live != nil {
			// Reload-vs-append: the fresh snapshot alone would silently drop
			// every durably acknowledged append since the last (re)load.
			// Rebase rebuilds the live monitor from the snapshot and replays
			// the WAL on top (lsn-dedup keeps records the snapshot already
			// absorbed). A conflicting snapshot — one the WAL's records
			// cannot legally follow — quarantines the log; the coordinator
			// and the served entry are left untouched.
			if err := t.live.Rebase(l); err != nil {
				s.metrics.logReloadFailures.Add(1)
				if res.Quarantined == nil {
					res.Quarantined = make(map[string]string)
				}
				res.Quarantined[t.name] = err.Error()
				if s.cfg.Logger != nil {
					s.cfg.Logger.Error("log reload conflicts with its WAL; serving last-good state",
						"log", t.name, "source", t.source, "error", err)
				}
				continue
			}
			e.live = t.live
			e.ix = t.live.Monitor().Source()
		} else {
			e.ix = s.newBackend(l)
			// The shard executor is rebuilt with the backend: the new partition
			// matches the new log, and breaker history bound to stale wid ranges
			// is discarded with them.
			e.shardex = s.newShardExecutor(e.ix)
		}
		fresh[t.name] = e
		res.Reloaded = append(res.Reloaded, t.name)
	}
	sort.Strings(res.Reloaded)

	s.mu.Lock()
	for name, e := range fresh {
		if old, ok := s.logs[name]; ok {
			e.gen = old.gen + 1
		}
		s.logs[name] = e
		delete(s.quarantine, name)
		s.metrics.logReloads.Add(1)
	}
	for name, reason := range res.Quarantined {
		s.quarantine[name] = reason
	}
	s.mu.Unlock()

	if s.cfg.Logger != nil && len(res.Reloaded) > 0 {
		s.cfg.Logger.Info("logs reloaded", "reloaded", res.Reloaded,
			"quarantined", len(res.Quarantined))
	}
	return res, nil
}

// handleReload is POST /v1/reload: trigger a reload pass and report the
// outcome. 501 when no loader is configured, 200 otherwise — per-log
// failures are data (the quarantined map), not a request failure.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	res, err := s.ReloadLogs()
	if err != nil {
		writeError(w, http.StatusNotImplemented, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}
