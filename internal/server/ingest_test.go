package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"wlq"
	"wlq/internal/flightrec"
	"wlq/internal/wlog"
)

// newIngestServer serves Figure 3 as a live log with a WAL under a fresh
// temp directory (returned so a second server can recover from it).
func newIngestServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.WALDir == "" {
		cfg.WALDir = t.TempDir()
	}
	cfg.Ingest = true
	s := New(cfg)
	t.Cleanup(func() { s.Close() })
	if err := s.AddLog("fig3", "builtin:fig3", wlq.ClinicFig3()); err != nil {
		t.Fatal(err)
	}
	return s, cfg.WALDir
}

// postAppend sends a JSONL body to POST /v1/logs/{name}/append.
func postAppend(t *testing.T, h http.Handler, log, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/logs/"+log+"/append", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decode append response: %v\n%s", err, rec.Body)
		}
	}
	return rec
}

func TestAppendRoundtrip(t *testing.T) {
	s, _ := newIngestServer(t, Config{})
	h := s.Handler()

	// Figure 3 ends at lsn 20 with wid 3 stalled after GetRefer (seq 2).
	// Drive wid 3 forward: the appended records must be queryable at once.
	var resp appendResponse
	rec := postAppend(t, h, "fig3",
		`{"lsn":21,"wid":3,"seq":3,"act":"CheckIn"}
{"lsn":22,"wid":3,"seq":4,"act":"SeeDoctor"}
`, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("append: status %d: %s", rec.Code, rec.Body)
	}
	if resp.Appended != 2 || resp.FirstLSN != 21 || resp.LastLSN != 22 {
		t.Fatalf("append response: %+v", resp)
	}

	var q queryResponse
	postQuery(t, h, `{"log":"fig3","query":"CheckIn -> SeeDoctor","mode":"instances"}`, &q)
	found := false
	for _, wid := range q.Instances {
		if wid == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("appended records invisible to queries: instances %v", q.Instances)
	}

	// /v1/logs reports the entry as live with the new watermark and counts.
	var logs logsResponse
	getJSON(t, h, "/v1/logs", &logs)
	if len(logs.Logs) != 1 {
		t.Fatalf("logs: %+v", logs)
	}
	doc := logs.Logs[0]
	if !doc.Live || doc.IngestLSN != 22 || doc.Records != 22 {
		t.Errorf("live log doc: live=%v ingest_lsn=%d records=%d", doc.Live, doc.IngestLSN, doc.Records)
	}
}

func TestAppendLSNAutoAssign(t *testing.T) {
	s, _ := newIngestServer(t, Config{})
	var resp appendResponse
	rec := postAppend(t, s.Handler(), "fig3", `{"wid":4,"seq":1,"act":"START"}`, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("append: status %d: %s", rec.Code, rec.Body)
	}
	if resp.LastLSN != 21 {
		t.Fatalf("auto-assigned lsn %d, want 21", resp.LastLSN)
	}
}

func TestAppendRejectNamesRecord(t *testing.T) {
	s, _ := newIngestServer(t, Config{})
	h := s.Handler()

	// Seq 9 is a gap for wid 3 (its last seq is 2): a Definition 2 violation.
	req := httptest.NewRequest(http.MethodPost, "/v1/logs/fig3/append",
		strings.NewReader(`{"lsn":21,"wid":3,"seq":9,"act":"CheckIn"}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", rec.Code, rec.Body)
	}
	var doc errorDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Record == "" || !strings.Contains(doc.Record, "wid=3") {
		t.Errorf("422 does not name the offending record: %+v", doc)
	}

	// A mid-batch rejection reports the durable prefix.
	rec = postAppend(t, h, "fig3",
		`{"lsn":21,"wid":3,"seq":3,"act":"CheckIn"}
{"lsn":22,"wid":3,"seq":9,"act":"SeeDoctor"}
`, nil)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", rec.Code, rec.Body)
	}
	doc = errorDoc{}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Accepted != 1 || doc.LastLSN != 21 {
		t.Errorf("mid-batch 422 must report the durable prefix: %+v", doc)
	}
}

func TestAppendErrors(t *testing.T) {
	s, _ := newIngestServer(t, Config{})
	h := s.Handler()
	for _, tc := range []struct {
		name, log, body string
		want            int
	}{
		{"unknown log", "nope", `{"wid":4,"seq":1,"act":"START"}`, http.StatusNotFound},
		{"empty body", "fig3", "", http.StatusBadRequest},
		{"malformed JSON", "fig3", `{"wid":`, http.StatusBadRequest},
	} {
		rec := postAppend(t, h, tc.log, tc.body, nil)
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d: %s", tc.name, rec.Code, tc.want, rec.Body)
		}
	}

	// A static server (no -ingest) has no append route at all.
	static := newTestServer(t, Config{})
	rec := postAppend(t, static.Handler(), "fig3", `{"wid":4,"seq":1,"act":"START"}`, nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("append on non-ingest server: status %d, want 404", rec.Code)
	}
}

func TestAppendBackpressure(t *testing.T) {
	s, _ := newIngestServer(t, Config{IngestQueue: 1})
	h := s.Handler()

	// Saturate the one-slot apply queue out-of-band, then append: the request
	// must shed with 429 and a Retry-After header, not block.
	s.mu.RLock()
	adm := s.logs["fig3"].live.Admission()
	s.mu.RUnlock()
	if !adm.TryAcquire() {
		t.Fatal("could not take the only admission slot")
	}
	defer adm.Release()

	rec := postAppend(t, h, "fig3", `{"wid":4,"seq":1,"act":"START"}`, nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
}

// TestAppendDeltaInvalidation proves the cache invalidation is a delta, not
// a flush: an append drops exactly the cached results whose atom sets could
// match the new record, and keeps the rest warm.
func TestAppendDeltaInvalidation(t *testing.T) {
	s, _ := newIngestServer(t, Config{})
	h := s.Handler()

	const relevant = `{"log":"fig3","query":"CheckIn -> SeeDoctor"}`
	const negated = `{"log":"fig3","query":"GetRefer . !CheckIn"}`
	const irrelevant = `{"log":"fig3","query":"UpdateRefer -> GetReimburse"}`
	for _, q := range []string{relevant, negated, irrelevant} {
		if rec := postQuery(t, h, q, nil); rec.Code != http.StatusOK {
			t.Fatalf("warm %s: status %d: %s", q, rec.Code, rec.Body)
		}
	}

	hits := func() uint64 {
		var m metricsDoc
		getJSON(t, h, "/metrics", &m)
		return m.CacheHits
	}
	base := hits()

	// CheckIn matches the relevant query's positive CheckIn atom. It matches
	// neither UpdateRefer/GetReimburse (irrelevant) nor ¬CheckIn (negated):
	// those two entries must survive the append.
	rec := postAppend(t, h, "fig3", `{"lsn":21,"wid":3,"seq":3,"act":"CheckIn"}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("append: %d: %s", rec.Code, rec.Body)
	}
	postQuery(t, h, irrelevant, nil)
	postQuery(t, h, negated, nil)
	if got := hits(); got != base+2 {
		t.Errorf("untouched queries after CheckIn append: hits %d, want %d (entry was dropped)", got, base+2)
	}
	postQuery(t, h, relevant, nil)
	if got := hits(); got != base+2 {
		t.Errorf("relevant query after CheckIn append: hits %d, want %d (stale entry served)", got, base+2)
	}

	// SeeDoctor is matched by the negated query's ¬CheckIn atom (any
	// activity but CheckIn), while still touching neither irrelevant atom.
	rec = postAppend(t, h, "fig3", `{"lsn":22,"wid":3,"seq":4,"act":"SeeDoctor"}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("append: %d: %s", rec.Code, rec.Body)
	}
	postQuery(t, h, irrelevant, nil)
	if got := hits(); got != base+3 {
		t.Errorf("irrelevant query after SeeDoctor append: hits %d, want %d", got, base+3)
	}
	postQuery(t, h, negated, nil)
	if got := hits(); got != base+3 {
		t.Errorf("negated query after SeeDoctor append: hits %d, want %d (stale entry served)", got, base+3)
	}

	// And the re-evaluated relevant result reflects the appends.
	var q queryResponse
	postQuery(t, h, `{"log":"fig3","query":"CheckIn -> SeeDoctor","mode":"count"}`, &q)
	if q.Count < 1 {
		t.Errorf("re-evaluated result misses the appended records: %+v", q)
	}

	var m metricsDoc
	getJSON(t, h, "/metrics", &m)
	if m.Ingest == nil || m.Ingest.CacheInvalidations == 0 {
		t.Errorf("ingest metrics missing invalidations: %+v", m.Ingest)
	}
}

// TestAppendRecovery is the in-process twin of scripts/ingest_crash_smoke.sh:
// a second server opening the same WAL directory over the same base snapshot
// must recover every acknowledged append.
func TestAppendRecovery(t *testing.T) {
	s1, walDir := newIngestServer(t, Config{})
	rec := postAppend(t, s1.Handler(), "fig3",
		`{"lsn":21,"wid":3,"seq":3,"act":"CheckIn"}
{"lsn":22,"wid":3,"seq":4,"act":"SeeDoctor"}
{"lsn":23,"wid":4,"seq":1,"act":"START"}
`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("append: %d: %s", rec.Code, rec.Body)
	}
	// Every record is already durable (default PolicyAlways fsyncs per
	// append); Close only releases the handles. The kill -9 variant of this
	// test is scripts/ingest_crash_smoke.sh.
	s1.Close()

	s2, _ := newIngestServer(t, Config{WALDir: walDir})
	var logs logsResponse
	getJSON(t, s2.Handler(), "/v1/logs", &logs)
	if logs.Logs[0].IngestLSN != 23 {
		t.Fatalf("recovered watermark %d, want 23", logs.Logs[0].IngestLSN)
	}
	var q queryResponse
	postQuery(t, s2.Handler(), `{"log":"fig3","query":"CheckIn -> SeeDoctor","mode":"instances"}`, &q)
	found := false
	for _, wid := range q.Instances {
		if wid == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("recovered server lost acknowledged appends: %v", q.Instances)
	}

	var m metricsDoc
	getJSON(t, s2.Handler(), "/metrics", &m)
	if m.Ingest == nil || m.Ingest.Replayed != 3 {
		t.Errorf("recovery replay count: %+v", m.Ingest)
	}
}

// TestReloadReplaysWAL regression-tests the reload-vs-append hole: a hot
// reload rebuilds the snapshot, and the WAL's acknowledged appends must be
// replayed on top rather than silently dropped.
func TestReloadReplaysWAL(t *testing.T) {
	s, _ := newIngestServer(t, Config{
		Loader: func(string) (*wlq.Log, error) { return wlq.ClinicFig3(), nil },
	})
	h := s.Handler()
	rec := postAppend(t, h, "fig3", `{"lsn":21,"wid":3,"seq":3,"act":"CheckIn"}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("append: %d: %s", rec.Code, rec.Body)
	}

	res, err := s.ReloadLogs()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 0 || len(res.Reloaded) != 1 {
		t.Fatalf("reload: %+v", res)
	}

	var logs logsResponse
	getJSON(t, h, "/v1/logs", &logs)
	if logs.Logs[0].IngestLSN != 21 {
		t.Fatalf("reload dropped the acknowledged append: watermark %d, want 21", logs.Logs[0].IngestLSN)
	}

	// And the reloaded live entry still accepts appends at the watermark.
	rec = postAppend(t, h, "fig3", `{"lsn":22,"wid":3,"seq":4,"act":"SeeDoctor"}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("append after reload: %d: %s", rec.Code, rec.Body)
	}
}

func TestReloadConflictQuarantinesLiveLog(t *testing.T) {
	// The reloaded snapshot omits wid 3 entirely, so the WAL's appended
	// wid-3 record cannot legally follow it: the log must quarantine and
	// keep serving the last-good live state.
	conflicting, err := wlog.FilterInstances(wlq.ClinicFig3(),
		func(records []wlog.Record) bool { return records[0].WID != 3 })
	if err != nil {
		t.Fatal(err)
	}
	s, _ := newIngestServer(t, Config{
		Loader: func(string) (*wlog.Log, error) { return conflicting, nil },
	})
	h := s.Handler()
	rec := postAppend(t, h, "fig3", `{"lsn":21,"wid":3,"seq":3,"act":"CheckIn"}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("append: %d: %s", rec.Code, rec.Body)
	}

	res, rerr := s.ReloadLogs()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if _, ok := res.Quarantined["fig3"]; !ok {
		t.Fatalf("conflicting reload not quarantined: %+v", res)
	}

	// Served state is untouched: the appended record is still queryable.
	var logs logsResponse
	getJSON(t, h, "/v1/logs", &logs)
	if logs.Logs[0].IngestLSN != 21 {
		t.Errorf("quarantined reload disturbed the live state: watermark %d", logs.Logs[0].IngestLSN)
	}
}

func TestCaptureCarriesIngestLSN(t *testing.T) {
	s, _ := newIngestServer(t, Config{})
	h := s.Handler()
	postAppend(t, h, "fig3", `{"lsn":21,"wid":3,"seq":3,"act":"CheckIn"}`, nil)
	postQuery(t, h, `{"log":"fig3","query":"CheckIn -> SeeDoctor"}`, nil)

	caps := s.flight.List(flightrec.Filter{})
	if len(caps) == 0 {
		t.Fatal("no captures recorded")
	}
	if caps[0].IngestLSN != 21 {
		t.Errorf("capture ingest_lsn %d, want 21", caps[0].IngestLSN)
	}
}

func TestIngestPrometheusExposition(t *testing.T) {
	s, _ := newIngestServer(t, Config{})
	h := s.Handler()
	postAppend(t, h, "fig3", `{"lsn":21,"wid":3,"seq":3,"act":"CheckIn"}`, nil)

	req := httptest.NewRequest(http.MethodGet, "/metrics?format=prometheus", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		"wlq_ingest_appends_total 1",
		"wlq_ingest_replayed_total",
		`wlq_ingest_last_lsn{log="fig3"} 21`,
		"wlq_ingest_wal_fsyncs_total",
		"wlq_ingest_fsync_duration_seconds_count",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}

// TestConcurrentAppendAndQuery exercises the append path against concurrent
// queries (run under -race in CI): the monitor's read lock freezes the
// backend per query while appends mutate it in between.
func TestConcurrentAppendAndQuery(t *testing.T) {
	s, _ := newIngestServer(t, Config{})
	h := s.Handler()

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Drive a fresh instance forward one record at a time.
		body := `{"wid":4,"seq":1,"act":"START"}`
		for seq := 2; seq <= 40; seq++ {
			if rec := postAppend(t, h, "fig3", body, nil); rec.Code != http.StatusOK {
				t.Errorf("append: %d: %s", rec.Code, rec.Body)
				return
			}
			body = `{"wid":4,"seq":` + strconv.Itoa(seq) + `,"act":"SeeDoctor"}`
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				rec := postQuery(t, h, `{"log":"fig3","query":"SeeDoctor -> SeeDoctor","mode":"count"}`, nil)
				if rec.Code != http.StatusOK {
					t.Errorf("query: %d: %s", rec.Code, rec.Body)
					return
				}
			}
		}()
	}
	wg.Wait()
	<-done
}

func TestIngestConfigErrors(t *testing.T) {
	// No WALDir: AddLog must fail rather than serve a log whose appends
	// would not be durable.
	s := New(Config{Ingest: true})
	if err := s.AddLog("fig3", "builtin:fig3", wlq.ClinicFig3()); err == nil {
		t.Error("AddLog with empty WALDir succeeded")
	}
	// Ingest on a cluster node is a construction-time contradiction.
	defer func() {
		if recover() == nil {
			t.Error("New(Ingest+WorkerMode) did not panic")
		}
	}()
	New(Config{Ingest: true, WorkerMode: true})
}
