package server

import (
	"testing"
	"time"
)

func TestLatencyRingPercentiles(t *testing.T) {
	var r latencyRing
	if count, p50, p95, p99, max := r.percentiles(); count != 0 || p50 != 0 || p95 != 0 || p99 != 0 || max != 0 {
		t.Fatal("empty ring must report zeros")
	}
	// 1..100 microseconds: nearest-rank percentiles are exact.
	for i := 1; i <= 100; i++ {
		r.observe(time.Duration(i) * time.Microsecond)
	}
	count, p50, p95, p99, max := r.percentiles()
	if count != 100 {
		t.Errorf("count = %d, want 100", count)
	}
	if p50 != 50 || p95 != 95 || p99 != 99 || max != 100 {
		t.Errorf("p50=%d p95=%d p99=%d max=%d, want 50/95/99/100", p50, p95, p99, max)
	}
}

func TestLatencyRingTailNotUnderReported(t *testing.T) {
	// Two samples: the tail percentiles must report the slow one.
	var r latencyRing
	r.observe(161 * time.Microsecond)
	r.observe(94 * time.Microsecond)
	_, p50, p95, p99, _ := r.percentiles()
	if p50 != 94 {
		t.Errorf("p50 = %d, want 94", p50)
	}
	if p95 != 161 || p99 != 161 {
		t.Errorf("p95=%d p99=%d, want 161/161", p95, p99)
	}
}

func TestLatencyRingWraps(t *testing.T) {
	var r latencyRing
	n := len(r.samples)
	for i := 0; i < n+10; i++ {
		r.observe(time.Duration(i+1) * time.Microsecond)
	}
	count, _, _, _, max := r.percentiles()
	if count != uint64(n+10) {
		t.Errorf("count = %d, want %d", count, n+10)
	}
	if max != int64(n+10) {
		t.Errorf("max = %d, want %d", max, n+10)
	}
	if r.n != n {
		t.Errorf("window size %d, want %d", r.n, n)
	}
}
