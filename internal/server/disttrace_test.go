package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"wlq/internal/cluster"
	"wlq/internal/faultinject"
	"wlq/internal/flightrec"
	"wlq/internal/obs"
)

// Distributed tracing suite: the coordinator mints one trace id per query,
// propagates it to every worker on a traceparent header, and stitches the
// returned span subtrees into one cross-process trace. Named with the
// Cluster prefix so the CI chaos step (-race) covers it.

// walkSpans visits every span of the tree in pre-order.
func walkSpans(s *obs.Span, fn func(*obs.Span)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children {
		walkSpans(c, fn)
	}
}

// findSpans returns every span in the tree satisfying pred.
func findSpans(s *obs.Span, pred func(*obs.Span) bool) []*obs.Span {
	var out []*obs.Span
	walkSpans(s, func(sp *obs.Span) {
		if pred(sp) {
			out = append(out, sp)
		}
	})
	return out
}

// TestClusterDistributedTraceStitched is the tentpole acceptance walk: a
// traced distributed query returns ONE stitched trace — worker attribution
// on every span, grafted worker subtrees under the transport spans that
// carried them, a fleet-aggregated cost table honoring the Lemma 1 bound —
// and the answer stays digest-identical to single-node across fleet sizes
// and storage backends.
func TestClusterDistributedTraceStitched(t *testing.T) {
	l := clusterEquivalenceLogs()["uniform"]
	baseline := New(Config{})
	if err := baseline.AddLog("eq", "builtin:eq", l); err != nil {
		t.Fatal(err)
	}
	const body = `{"log":"eq","query":"(Act00 . Act01) -> Act02","strategy":"naive","trace":true}`
	var want queryResponse
	if rec := postQuery(t, baseline.Handler(), body, &want); rec.Code != http.StatusOK {
		t.Fatalf("baseline status %d: %s", rec.Code, rec.Body)
	}

	for _, columnar := range []bool{false, true} {
		for _, workers := range []int{1, 2, 4} {
			name := fmt.Sprintf("%dw/columnar=%v", workers, columnar)
			var f clusterFixture
			for i := 0; i < workers; i++ {
				s := New(Config{WorkerMode: true, FlightRecorderSize: -1, Columnar: columnar})
				if err := s.AddLog("eq", "builtin:eq", l); err != nil {
					t.Fatal(err)
				}
				ts := httptest.NewServer(s.Handler())
				t.Cleanup(ts.Close)
				f.urls = append(f.urls, ts.URL)
			}
			coord := New(Config{Cluster: &cluster.Config{Workers: f.urls}, ProbeInterval: -1})
			if err := coord.AddLog("eq", "builtin:eq", l); err != nil {
				t.Fatal(err)
			}

			var got queryResponse
			if rec := postQuery(t, coord.Handler(), body, &got); rec.Code != http.StatusOK {
				t.Fatalf("%s: status %d: %s", name, rec.Code, rec.Body)
			}
			if digestOf(got) != digestOf(want) {
				t.Fatalf("%s: traced cluster answer diverges from single-node", name)
			}
			tr := got.Trace
			if tr == nil || tr.Spans == nil {
				t.Fatalf("%s: no stitched trace in the response", name)
			}
			if len(tr.TraceID) != 32 {
				t.Fatalf("%s: trace id %q, want 32 hex chars", name, tr.TraceID)
			}

			// Every span of the stitched tree is attributed to a process.
			workerSet := make(map[string]bool)
			walkSpans(tr.Spans, func(sp *obs.Span) {
				if sp.Worker == "" {
					t.Fatalf("%s: span %q has no worker attribution", name, sp.Name)
				}
				workerSet[sp.Worker] = true
			})
			if !workerSet["coordinator"] {
				t.Fatalf("%s: no coordinator-attributed spans in %v", name, workerSet)
			}

			// Each contacted worker's subtree is grafted in, rooted at its
			// "worker" span, carrying the propagated trace id.
			grafted := findSpans(tr.Spans, func(sp *obs.Span) bool { return sp.Name == "worker" })
			if len(grafted) == 0 {
				t.Fatalf("%s: no grafted worker subtrees", name)
			}
			for _, g := range grafted {
				if !strings.HasPrefix(g.Worker, "http://") {
					t.Fatalf("%s: grafted subtree attributed to %q, want a worker URL", name, g.Worker)
				}
				if got := g.Attrs["trace_id"]; got != tr.TraceID {
					t.Fatalf("%s: worker subtree ran under trace %v, coordinator sent %s", name, got, tr.TraceID)
				}
				if g.Attrs["parent_span_id"] == "" {
					t.Fatalf("%s: worker subtree has no parent span id", name)
				}
			}

			// Coordinator-side stages of the fan-out are spans too.
			for _, stage := range []string{"scatter", "merge", "transport", "queue-wait"} {
				if len(findSpans(tr.Spans, func(sp *obs.Span) bool { return sp.Name == stage })) == 0 {
					t.Fatalf("%s: stitched trace missing the %q stage", name, stage)
				}
			}

			// The cost table is the fleet aggregate; under naive every
			// operator row keeps measured ≤ predicted end to end.
			if len(tr.CostTable) == 0 {
				t.Fatalf("%s: no fleet cost table", name)
			}
			for _, row := range tr.CostTable {
				if row.Op != "atom" && row.Comparisons > row.Predicted {
					t.Errorf("%s: %s: fleet measured %d > predicted %d under naive",
						name, row.Node, row.Comparisons, row.Predicted)
				}
			}
		}
	}
}

// TestClusterTraceStableAcrossRetry: a transport failure burns an attempt
// but not the trace — the retried request carries the SAME trace id (a fresh
// span id), and the stitched trace shows both transport attempts plus the
// backoff between them as sibling spans.
func TestClusterTraceStableAcrossRetry(t *testing.T) {
	l := chaosLog(t, 16, 2)
	var flaky faultinject.FlakyRoundTripper
	var victim string
	f := newClusterFixture(t, 2, "chaos", l, func(c *cluster.Config) {
		victim = heaviestOwner(c.Workers)
		flaky = faultinject.FlakyRoundTripper{Match: victim, FailOn: faultinject.OnNthCall(1)}
		c.Transport = &flaky
		c.MaxAttempts = 2
	}, nil)

	var resp queryResponse
	rec := postQuery(t, f.coord.Handler(), `{"log":"chaos","query":"A -> B","trace":true}`, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 after retry: %s", rec.Code, rec.Body)
	}
	if resp.Trace == nil || resp.Trace.TraceID == "" {
		t.Fatal("no trace id on the retried query")
	}

	wspans := findSpans(resp.Trace.Spans, func(sp *obs.Span) bool { return sp.Name == "worker "+victim })
	if len(wspans) != 1 {
		t.Fatalf("%d spans for the flaky worker, want 1", len(wspans))
	}
	transports := findSpans(wspans[0], func(sp *obs.Span) bool { return sp.Name == "transport" })
	if len(transports) != 2 {
		t.Fatalf("%d transport spans for the flaky worker, want the failed + retried pair", len(transports))
	}
	if transports[0].Attrs["error"] == nil {
		t.Fatal("first transport span carries no error annotation")
	}
	// Fresh span id per attempt, same trace throughout.
	if a, b := transports[0].Attrs["span_id"], transports[1].Attrs["span_id"]; a == nil || a == b {
		t.Fatalf("attempt span ids %v, %v — want distinct non-empty ids", a, b)
	}
	if len(findSpans(wspans[0], func(sp *obs.Span) bool { return sp.Name == "backoff" })) != 1 {
		t.Fatal("no backoff span between the attempts")
	}
	// The grafted subtree (under the winning attempt) ran under the query's id.
	grafted := findSpans(wspans[0], func(sp *obs.Span) bool { return sp.Name == "worker" })
	if len(grafted) != 1 {
		t.Fatalf("%d grafted subtrees under the flaky worker, want 1", len(grafted))
	}
	if got := grafted[0].Attrs["trace_id"]; got != resp.Trace.TraceID {
		t.Fatalf("grafted subtree ran under trace %v, want %s", got, resp.Trace.TraceID)
	}
	// The capture's per-worker detail records the attempt history.
	flights := f.coord.flight.List(flightrec.Filter{Worker: victim})
	if len(flights) != 1 || flights[0].Workers == nil {
		t.Fatalf("%d captures for the flaky worker, want 1 with detail", len(flights))
	}
	for _, d := range flights[0].Workers.PerWorker {
		if d.Worker == victim && (d.Attempts != 2 || d.Retries != 1 || d.Status != "ok") {
			t.Fatalf("victim detail = %+v, want 2 attempts / 1 retry / ok", d)
		}
	}
}

// TestClusterTraceHedgeSiblingSpans: a hedged straggler shows up as two
// sibling transport spans under the worker — the abandoned primary and the
// winning hedge — and the per-worker capture detail records the hedge win.
func TestClusterTraceHedgeSiblingSpans(t *testing.T) {
	l := chaosLog(t, 16, 2)
	var flaky faultinject.FlakyRoundTripper
	var victim string
	f := newClusterFixture(t, 2, "chaos", l, func(c *cluster.Config) {
		victim = heaviestOwner(c.Workers)
		flaky = faultinject.FlakyRoundTripper{Match: victim, BlackholeOn: faultinject.OnNthCall(1)}
		c.Transport = &flaky
		c.HedgeAfter = 10 * time.Millisecond
		c.WorkerTimeout = 30 * time.Second
	}, nil)

	var resp queryResponse
	rec := postQuery(t, f.coord.Handler(), `{"log":"chaos","query":"A -> B","trace":true}`, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 via hedge: %s", rec.Code, rec.Body)
	}
	wspans := findSpans(resp.Trace.Spans, func(sp *obs.Span) bool { return sp.Name == "worker "+victim })
	if len(wspans) != 1 {
		t.Fatalf("%d spans for the hedged worker, want 1", len(wspans))
	}
	transports := findSpans(wspans[0], func(sp *obs.Span) bool { return sp.Name == "transport" })
	if len(transports) != 2 {
		t.Fatalf("%d transport spans, want the primary + hedge pair", len(transports))
	}
	var hedge, primary *obs.Span
	for _, sp := range transports {
		if sp.Attrs["hedge"] == true {
			hedge = sp
		} else {
			primary = sp
		}
	}
	if hedge == nil || primary == nil {
		t.Fatal("transport pair is not one primary + one hedge")
	}
	if primary.Attrs["abandoned"] != true {
		t.Fatal("blackholed primary not marked abandoned")
	}
	// The worker subtree is grafted under the hedge — the span whose
	// response was actually used.
	if len(findSpans(hedge, func(sp *obs.Span) bool { return sp.Name == "worker" })) != 1 {
		t.Fatal("worker subtree not grafted under the winning hedge")
	}
	flights := f.coord.flight.List(flightrec.Filter{})
	if len(flights) != 1 || flights[0].Workers == nil {
		t.Fatal("no capture with worker detail")
	}
	won := false
	for _, d := range flights[0].Workers.PerWorker {
		if d.Worker == victim {
			won = d.HedgeWon && d.Hedges == 1
		}
	}
	if !won {
		t.Fatalf("per-worker detail does not record the hedge win: %+v", flights[0].Workers.PerWorker)
	}
	if flights[0].Workers.HedgeWins != 1 {
		t.Fatalf("capture hedge_wins = %d, want 1", flights[0].Workers.HedgeWins)
	}
}

// TestClusterTraceRingMismatchExcluded: a stale worker (ring view disagrees
// with the coordinator's) is excluded from the merge, but the trace survives
// — same trace id, surviving workers' subtrees grafted, and the stale
// worker's span annotated with the mismatch.
func TestClusterTraceRingMismatchExcluded(t *testing.T) {
	fresh := chaosLog(t, 16, 2)
	wids := make([]uint64, 16)
	for i := range wids {
		wids[i] = uint64(i + 1)
	}
	f := newClusterFixture(t, 2, "chaos", fresh, nil, nil)
	ring := f.coord.Coordinator().Ring()
	victimIdx, assigned := pickVictim(t, ring, wids)
	staleSize := 0
	for j := 1; j < 16; j++ {
		if len(ring.OwnedWIDs(wids[:j], victimIdx)) != len(assigned) {
			staleSize = j
			break
		}
	}
	if staleSize == 0 {
		t.Fatal("fixture: no stale log size produces a detectable skew")
	}
	staleSrv := New(Config{WorkerMode: true, FlightRecorderSize: -1})
	if err := staleSrv.AddLog("chaos", "builtin:stale", chaosLog(t, staleSize, 2)); err != nil {
		t.Fatal(err)
	}
	victim := f.urls[victimIdx]
	addr := strings.TrimPrefix(victim, "http://")
	f.workers[victimIdx].CloseClientConnections()
	f.workers[victimIdx].Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	stale := &httptest.Server{Listener: ln, Config: &http.Server{Handler: staleSrv.Handler()}}
	stale.Start()
	t.Cleanup(stale.Close)

	rec := postQuery(t, f.coord.Handler(), `{"log":"chaos","query":"A -> B","partial":true,"trace":true}`, nil)
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("status %d, want 206: %s", rec.Code, rec.Body)
	}
	var resp queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil || len(resp.Trace.TraceID) != 32 {
		t.Fatalf("degraded query lost its trace: %+v", resp.Trace)
	}
	// The survivor's subtree is in; the stale worker contributed none.
	grafted := findSpans(resp.Trace.Spans, func(sp *obs.Span) bool { return sp.Name == "worker" })
	if len(grafted) == 0 {
		t.Fatal("no surviving worker subtree in the degraded trace")
	}
	for _, g := range grafted {
		if g.Worker == victim {
			t.Fatal("the excluded stale worker's subtree was grafted anyway")
		}
	}
	// The mismatch is named on the stale worker's span.
	mismatched := findSpans(resp.Trace.Spans, func(sp *obs.Span) bool {
		e, _ := sp.Attrs["error"].(string)
		return strings.Contains(e, "ring mismatch")
	})
	if len(mismatched) == 0 {
		t.Fatal("no span names the ring mismatch")
	}
}

// TestClusterTraceSubtreeCapEnforced: the coordinator's span budget rides
// the wire, workers prune their trees to it, and the truncation is declared
// on the subtree root rather than silently absorbed.
func TestClusterTraceSubtreeCapEnforced(t *testing.T) {
	l := chaosLog(t, 16, 2)
	f := newClusterFixture(t, 2, "chaos", l, func(c *cluster.Config) {
		c.MaxTraceSpans = 3
	}, nil)
	var resp queryResponse
	rec := postQuery(t, f.coord.Handler(), `{"log":"chaos","query":"(A -> B) | (B -> C)","trace":true}`, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	grafted := findSpans(resp.Trace.Spans, func(sp *obs.Span) bool { return sp.Name == "worker" })
	if len(grafted) == 0 {
		t.Fatal("no grafted worker subtrees")
	}
	for _, g := range grafted {
		if n := obs.CountSpans(g); n > 3 {
			t.Fatalf("worker subtree has %d spans, cap is 3", n)
		}
		if g.Attrs["truncated_spans"] == nil {
			t.Fatal("capped subtree does not declare its truncation")
		}
	}
}

// TestClusterWorkerTraceEndpoint covers the worker side of propagation in
// isolation: adopting the traceparent id, stamping its own attribution,
// honoring the span cap, and minting a fresh id when the header is absent
// or malformed.
func TestClusterWorkerTraceEndpoint(t *testing.T) {
	l := chaosLog(t, 16, 2)
	s, _ := startWorker(t, "chaos", l)
	h := s.Handler()
	const self = "http://w1"
	base := cluster.WorkerQueryRequest{
		Log: "chaos", Plan: "A -> B", Ring: []string{self, "http://w2"}, Replicas: 64,
		Self: self, Strategy: "naive", Trace: true,
	}
	post := func(t *testing.T, req cluster.WorkerQueryRequest, traceparent string) cluster.WorkerQueryResponse {
		t.Helper()
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		r := httptest.NewRequest(http.MethodPost, "/v1/worker/query", strings.NewReader(string(body)))
		if traceparent != "" {
			r.Header.Set(obs.TraceparentHeader, traceparent)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
		var resp cluster.WorkerQueryResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	t.Run("adopts the propagated trace id", func(t *testing.T) {
		tid, sid := obs.NewTraceID(), obs.NewSpanID()
		resp := post(t, base, obs.FormatTraceparent(tid, sid))
		if resp.TraceID != tid {
			t.Fatalf("worker answered under trace %q, sent %q", resp.TraceID, tid)
		}
		if resp.Spans == nil {
			t.Fatal("no span tree in the response")
		}
		if resp.Spans.Attrs["parent_span_id"] != sid {
			t.Fatalf("parent_span_id = %v, sent %q", resp.Spans.Attrs["parent_span_id"], sid)
		}
		walkSpans(resp.Spans, func(sp *obs.Span) {
			if sp.Worker != self {
				t.Fatalf("span %q attributed to %q, want %q", sp.Name, sp.Worker, self)
			}
		})
		if len(resp.CostTable) == 0 {
			t.Fatal("no cost table on a traced worker response")
		}
		for _, row := range resp.CostTable {
			if row.Op != "atom" && row.Comparisons > row.Predicted {
				t.Errorf("%s: worker measured %d > predicted %d under naive",
					row.Node, row.Comparisons, row.Predicted)
			}
		}
	})
	t.Run("mints a fresh id on a malformed header", func(t *testing.T) {
		for _, header := range []string{"", "not-a-traceparent"} {
			resp := post(t, base, header)
			if len(resp.TraceID) != 32 {
				t.Fatalf("header %q: trace id %q, want a freshly minted 32-hex id", header, resp.TraceID)
			}
		}
	})
	t.Run("enforces the span cap", func(t *testing.T) {
		req := base
		req.MaxTraceSpans = 2
		resp := post(t, req, obs.FormatTraceparent(obs.NewTraceID(), obs.NewSpanID()))
		if n := obs.CountSpans(resp.Spans); n > 2 {
			t.Fatalf("returned %d spans, cap is 2", n)
		}
		if resp.Spans.Attrs["truncated_spans"] == nil {
			t.Fatal("capped tree does not declare its truncation")
		}
	})
}

// TestClusterDegradedRunDoesNotFeedStats: the PR 6 hygiene contract across
// the wire. Workers never flush their registries; the coordinator feeds the
// fleet table to its registry only when the merge is complete — a degraded
// 206 must leave the adaptive model untouched.
func TestClusterDegradedRunDoesNotFeedStats(t *testing.T) {
	l := chaosLog(t, 16, 2)
	f := newClusterFixture(t, 2, "chaos", l, func(c *cluster.Config) {
		c.MaxAttempts = 1
		c.WorkerTimeout = 2 * time.Second
	}, func(c *Config) {
		c.Adaptive = true
		c.CacheSize = -1
	})
	h := f.coord.Handler()
	reg := f.coord.statsFor("chaos")
	if reg == nil {
		t.Fatal("adaptive coordinator has no stats registry")
	}

	// A complete distributed run feeds the registry exactly once, via the
	// fleet table (the coordinator ran no local evaluation to flush).
	if rec := postQuery(t, h, `{"log":"chaos","query":"A -> B","partial":true}`, nil); rec.Code != http.StatusOK {
		t.Fatalf("healthy status %d: %s", rec.Code, rec.Body)
	}
	if got := reg.Queries(); got != 1 {
		t.Fatalf("registry observed %d queries after a complete run, want 1", got)
	}
	// Workers kept their own registries out of it (worker mode never
	// creates one, but the invariant worth pinning is the count here).

	wids := make([]uint64, 16)
	for i := range wids {
		wids[i] = uint64(i + 1)
	}
	victim, _ := pickVictim(t, f.coord.Coordinator().Ring(), wids)
	f.workers[victim].CloseClientConnections()
	f.workers[victim].Close()

	if rec := postQuery(t, h, `{"log":"chaos","query":"A -> B","partial":true}`, nil); rec.Code != http.StatusPartialContent {
		t.Fatalf("degraded status %d, want 206: %s", rec.Code, rec.Body)
	}
	if got := reg.Queries(); got != 1 {
		t.Fatalf("degraded 206 polluted the registry: %d queries observed, want still 1", got)
	}
}

// TestClusterFlightWorkerFilter: GET /v1/queries?worker= narrows the list
// to captures that touched the worker, the summaries carry per-worker
// elapsed/status briefs, and the full capture retains the structured
// per-worker detail with the trace id.
func TestClusterFlightWorkerFilter(t *testing.T) {
	l := chaosLog(t, 16, 2)
	f := newClusterFixture(t, 2, "chaos", l, nil, nil)
	h := f.coord.Handler()
	if rec := postQuery(t, h, `{"log":"chaos","query":"A -> B"}`, nil); rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	contacted := heaviestOwner(f.urls)

	var doc flightListDoc
	getJSON(t, h, "/v1/queries?worker="+url.QueryEscape(contacted), &doc)
	if doc.Count != 1 {
		t.Fatalf("worker filter matched %d captures, want 1", doc.Count)
	}
	briefs := doc.Queries[0].Workers
	if len(briefs) == 0 {
		t.Fatal("capture summary has no per-worker briefs")
	}
	found := false
	for _, b := range briefs {
		if b.Worker == contacted {
			found = true
			if b.Status != "ok" || b.ElapsedUS <= 0 {
				t.Fatalf("brief for %s = %+v, want ok with positive elapsed", contacted, b)
			}
		}
	}
	if !found {
		t.Fatalf("briefs %+v do not name the contacted worker %s", briefs, contacted)
	}

	getJSON(t, h, "/v1/queries?worker="+url.QueryEscape("http://nobody:1"), &doc)
	if doc.Count != 0 {
		t.Fatalf("unknown-worker filter matched %d captures, want 0", doc.Count)
	}

	// The full capture carries the structured detail and the trace id that
	// ties it to the stitched spans.
	var capture flightrec.Capture
	getJSON(t, h, fmt.Sprintf("/v1/queries/%d", doc.Captured), &capture)
	if capture.Workers == nil || len(capture.Workers.PerWorker) == 0 {
		t.Fatal("full capture has no per-worker detail")
	}
	if len(capture.Workers.TraceID) != 32 {
		t.Fatalf("capture trace id %q, want 32 hex chars", capture.Workers.TraceID)
	}
	if capture.Trace == nil || capture.Trace.TraceID != capture.Workers.TraceID {
		t.Fatal("capture trace and worker summary disagree on the trace id")
	}
	for _, d := range capture.Workers.PerWorker {
		if d.Worker == contacted && d.TraceSpans == 0 {
			t.Fatalf("contacted worker returned no trace spans: %+v", d)
		}
	}
}

// TestClusterWorkerDurationHistogram: every worker request feeds the
// per-worker latency histogram, exposed in both the JSON metrics and the
// prometheus exposition.
func TestClusterWorkerDurationHistogram(t *testing.T) {
	l := chaosLog(t, 16, 2)
	f := newClusterFixture(t, 2, "chaos", l, nil, nil)
	h := f.coord.Handler()
	postQuery(t, h, `{"log":"chaos","query":"A -> B"}`, nil)

	contacted := heaviestOwner(f.urls)
	var total uint64
	for _, wd := range f.coord.Coordinator().Durations() {
		if len(wd.Buckets) != len(cluster.DurationBucketsUS)+1 {
			t.Fatalf("%s: %d buckets, want %d bounds + overflow",
				wd.Worker, len(wd.Buckets), len(cluster.DurationBucketsUS))
		}
		if wd.Worker == contacted && wd.Count == 0 {
			t.Fatalf("no observations for the contacted worker %s", contacted)
		}
		total += wd.Count
	}
	if total == 0 {
		t.Fatal("no duration observations anywhere in the fleet")
	}

	prom := getJSON(t, h, "/metrics?format=prometheus", nil).Body.String()
	for _, want := range []string{
		"# TYPE wlq_worker_query_duration_seconds histogram",
		fmt.Sprintf("wlq_worker_query_duration_seconds_bucket{worker=%q,le=\"+Inf\"}", contacted),
		fmt.Sprintf("wlq_worker_query_duration_seconds_count{worker=%q}", contacted),
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}
