package server

import (
	"fmt"
	"io"
	"net/http"
	"strconv"

	"wlq/internal/cluster"
)

// Prometheus text exposition (format version 0.0.4) for GET
// /metrics?format=prometheus. Hand-rolled on purpose: the surface is a
// dozen scalar families plus one histogram, and the service stays
// dependency-free. Metric names follow the Prometheus conventions —
// `wlq_` prefix, `_total` suffix on counters, base units (seconds).

// promFamily writes one metric family: HELP, TYPE, then each sample.
type promSample struct {
	labels string // rendered label set incl. braces, e.g. `{op="choice"}`
	value  string
}

func writeFamily(w io.Writer, name, help, typ string, samples ...promSample) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	for _, s := range samples {
		fmt.Fprintf(w, "%s%s %s\n", name, s.labels, s.value)
	}
}

func gauge(v float64) []promSample {
	return []promSample{{value: strconv.FormatFloat(v, 'g', -1, 64)}}
}

func counter(v uint64) []promSample {
	return []promSample{{value: strconv.FormatUint(v, 10)}}
}

// writePrometheus emits the full exposition document.
func (s *Server) writePrometheus(w http.ResponseWriter) {
	s.mu.RLock()
	loaded, quarantined := len(s.logs), len(s.quarantine)
	s.mu.RUnlock()
	doc := s.metrics.snapshot(loaded, quarantined, s.cfg.Workers, s.openBreakers(), s.cache, s.admission, s.flight, s.backendName(), s.clusterMetrics(), s.ingestMetrics())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	writeFamily(w, "wlq_uptime_seconds", "Seconds since the service started.", "gauge",
		gauge(doc.UptimeSeconds)...)
	writeFamily(w, "wlq_logs_loaded", "Workflow logs loaded and indexed.", "gauge",
		gauge(float64(doc.LogsLoaded))...)
	// Storage backend as a one-hot labeled gauge, so dashboards can select
	// series by backend without string-valued metrics.
	backendSamples := make([]promSample, 0, 2)
	for _, b := range []string{"row", "columnar"} {
		v := "0"
		if doc.Backend == b {
			v = "1"
		}
		backendSamples = append(backendSamples, promSample{labels: `{backend="` + b + `"}`, value: v})
	}
	writeFamily(w, "wlq_storage_backend", "Active storage backend (one-hot).", "gauge",
		backendSamples...)
	writeFamily(w, "wlq_queries_total", "Queries received on POST /v1/query.", "counter",
		counter(doc.QueriesTotal)...)
	writeFamily(w, "wlq_query_errors_total", "Queries rejected or failed.", "counter",
		counter(doc.QueryErrors)...)
	writeFamily(w, "wlq_query_timeouts_total", "Queries aborted by the evaluation timeout.", "counter",
		counter(doc.QueryTimeouts)...)
	writeFamily(w, "wlq_slow_queries_total", "Queries slower than the slow-query threshold.", "counter",
		counter(doc.SlowQueries)...)
	writeFamily(w, "wlq_queries_shed_total", "Queries shed by admission control (429).", "counter",
		counter(doc.QueriesShed)...)
	writeFamily(w, "wlq_panics_recovered_total", "Panics converted to errors (handler or eval worker).", "counter",
		counter(doc.PanicsRecovered)...)
	writeFamily(w, "wlq_budget_aborts_total", "Evaluations aborted by a query budget (422).", "counter",
		counter(doc.BudgetAborts)...)
	writeFamily(w, "wlq_cost_rejected_total", "Queries rejected by the pre-flight cost ceiling (422).", "counter",
		counter(doc.CostRejected)...)
	writeFamily(w, "wlq_log_reloads_total", "Successful per-log hot reloads.", "counter",
		counter(doc.LogReloads)...)
	writeFamily(w, "wlq_log_reload_failures_total", "Hot reloads that quarantined a log.", "counter",
		counter(doc.LogReloadFailures)...)
	writeFamily(w, "wlq_coalesced_reloads_total", "Reload requests coalesced into an in-progress pass.", "counter",
		counter(doc.CoalescedReloads)...)
	writeFamily(w, "wlq_logs_quarantined", "Logs serving a last-good snapshot after a failed reload.", "gauge",
		gauge(float64(doc.LogsQuarantined))...)
	writeFamily(w, "wlq_sharded_queries_total", "Queries evaluated shard-by-shard in isolated failure domains.", "counter",
		counter(doc.ShardedQueries)...)
	writeFamily(w, "wlq_shard_retries_total", "Per-shard evaluation re-attempts (after backoff).", "counter",
		counter(doc.ShardRetries)...)
	writeFamily(w, "wlq_shards_failed_total", "Shards excluded from results after exhausting retries.", "counter",
		counter(doc.ShardsFailed)...)
	writeFamily(w, "wlq_shards_skipped_total", "Shards excluded by an open circuit breaker (no attempt).", "counter",
		counter(doc.ShardsSkipped)...)
	writeFamily(w, "wlq_partial_results_total", "Queries whose result excluded at least one shard.", "counter",
		counter(doc.PartialResults)...)
	writeFamily(w, "wlq_wids_excluded_total", "Workflow instances excluded from partial results.", "counter",
		counter(doc.WIDsExcluded)...)
	writeFamily(w, "wlq_shard_breakers_open", "Per-shard circuit breakers currently open or half-open.", "gauge",
		gauge(float64(doc.BreakersOpen))...)
	writeFamily(w, "wlq_admission_capacity", "Admission controller in-flight query bound (0 = unlimited).", "gauge",
		gauge(float64(doc.AdmissionCapacity))...)
	writeFamily(w, "wlq_admission_in_flight", "Queries currently admitted.", "gauge",
		gauge(float64(doc.AdmissionInFlight))...)
	writeFamily(w, "wlq_cache_hits_total", "Result-cache hits.", "counter",
		counter(doc.CacheHits)...)
	writeFamily(w, "wlq_cache_misses_total", "Result-cache misses.", "counter",
		counter(doc.CacheMisses)...)
	writeFamily(w, "wlq_cache_entries", "Result-cache entries resident.", "gauge",
		gauge(float64(doc.CacheEntries))...)
	writeFamily(w, "wlq_cache_evictions_total", "Result-cache entries displaced by LRU pressure.", "counter",
		counter(doc.CacheEvictions)...)
	writeFamily(w, "wlq_incidents_returned_total", "Incidents returned in query responses.", "counter",
		counter(doc.IncidentsReturned)...)
	writeFamily(w, "wlq_instances_evaluated_total", "Workflow instances evaluated.", "counter",
		counter(doc.InstancesEvaluated)...)
	writeFamily(w, "wlq_inflight_queries", "Queries currently being served.", "gauge",
		gauge(float64(doc.InflightQueries))...)
	writeFamily(w, "wlq_busy_workers", "Evaluation workers currently running.", "gauge",
		gauge(float64(doc.BusyWorkers))...)
	writeFamily(w, "wlq_worker_capacity", "Evaluation worker capacity (GOMAXPROCS).", "gauge",
		gauge(float64(doc.WorkerCapacity))...)
	writeFamily(w, "wlq_worker_utilization", "Busy workers over capacity.", "gauge",
		gauge(doc.WorkerUtilization)...)
	writeFamily(w, "wlq_flightrec_captured_total", "Query executions captured by the flight recorder.", "counter",
		counter(doc.FlightCaptured)...)
	writeFamily(w, "wlq_flightrec_entries", "Captures currently resident in the flight-recorder rings.", "gauge",
		gauge(float64(doc.FlightEntries))...)
	writeFamily(w, "wlq_adaptive_plans_total", "Plans ranked with measured selectivities from the statistics registry.", "counter",
		counter(doc.AdaptivePlans)...)
	writeFamily(w, "wlq_static_plans_total", "Plans ranked with the static model constants.", "counter",
		counter(doc.StaticPlans)...)

	// Cluster tier: coordinator fan-out counters and per-worker breaker
	// state, plus the worker-mode served-request counters. Emitted only on
	// cluster members so single-node scrapes stay compact.
	if cl := doc.Cluster; cl != nil {
		writeFamily(w, "wlq_cluster_workers", "Workers in the configured fleet.", "gauge",
			gauge(float64(cl.Workers))...)
		writeFamily(w, "wlq_cluster_workers_lost", "Workers currently probe-unhealthy or breaker-tripped.", "gauge",
			gauge(float64(len(cl.WorkersLost)))...)
		writeFamily(w, "wlq_cluster_queries_total", "Queries fanned out across the worker fleet.", "counter",
			counter(cl.ClusterQueries)...)
		writeFamily(w, "wlq_cluster_worker_requests_total", "HTTP requests issued to workers (retries and hedges included).", "counter",
			counter(cl.WorkerRequests)...)
		writeFamily(w, "wlq_cluster_worker_failures_total", "Worker requests that failed (transport error or non-200).", "counter",
			counter(cl.WorkerFailures)...)
		writeFamily(w, "wlq_cluster_worker_retries_total", "Worker request re-attempts (after backoff).", "counter",
			counter(cl.WorkerRetries)...)
		writeFamily(w, "wlq_cluster_hedges_total", "Straggler worker requests duplicated (hedging).", "counter",
			counter(cl.Hedges)...)
		writeFamily(w, "wlq_cluster_hedge_wins_total", "Hedged requests whose duplicate answered first.", "counter",
			counter(cl.HedgeWins)...)
		writeFamily(w, "wlq_cluster_workers_skipped_total", "Per-query worker exclusions by an open circuit breaker.", "counter",
			counter(cl.WorkersSkipped)...)
		if len(cl.WorkerHealth) > 0 {
			breakers := make([]promSample, 0, len(cl.WorkerHealth))
			for _, wh := range cl.WorkerHealth {
				v := "0"
				if wh.Breaker != "closed" {
					v = "1"
				}
				breakers = append(breakers, promSample{
					labels: `{worker="` + wh.Worker + `"}`, value: v,
				})
			}
			writeFamily(w, "wlq_cluster_worker_breaker_open",
				"Per-worker circuit breaker state (1 = open or half-open).", "gauge", breakers...)
		}
		writeFamily(w, "wlq_worker_queries_total", "Worker-mode requests served by this instance.", "counter",
			counter(cl.WorkerQueriesServed)...)
		writeFamily(w, "wlq_worker_query_errors_total", "Worker-mode requests this instance failed.", "counter",
			counter(cl.WorkerQueryErrors)...)
		// Per-worker request-duration histogram: one labeled series per
		// worker, cumulative buckets in seconds.
		if len(cl.WorkerDurations) > 0 {
			fmt.Fprintf(w, "# HELP wlq_worker_query_duration_seconds Coordinator-observed worker request round-trip time, per worker.\n")
			fmt.Fprintf(w, "# TYPE wlq_worker_query_duration_seconds histogram\n")
			for _, wd := range cl.WorkerDurations {
				var cum uint64
				for i, le := range cluster.DurationBucketsUS {
					cum += wd.Buckets[i]
					fmt.Fprintf(w, "wlq_worker_query_duration_seconds_bucket{worker=%q,le=%q} %d\n",
						wd.Worker, strconv.FormatFloat(float64(le)/1e6, 'g', -1, 64), cum)
				}
				cum += wd.Buckets[len(wd.Buckets)-1]
				fmt.Fprintf(w, "wlq_worker_query_duration_seconds_bucket{worker=%q,le=\"+Inf\"} %d\n", wd.Worker, cum)
				fmt.Fprintf(w, "wlq_worker_query_duration_seconds_sum{worker=%q} %s\n",
					wd.Worker, strconv.FormatFloat(float64(wd.SumUS)/1e6, 'g', -1, 64))
				fmt.Fprintf(w, "wlq_worker_query_duration_seconds_count{worker=%q} %d\n", wd.Worker, wd.Count)
			}
		}
	}

	// Durable live-ingestion tier: coordinator and WAL counters aggregated
	// over live logs, per-log watermark/queue gauges, and the WAL fsync
	// latency histogram. Emitted only when Config.Ingest is on.
	if ing := doc.Ingest; ing != nil {
		writeFamily(w, "wlq_ingest_appends_total", "Records durably appended and applied.", "counter",
			counter(ing.Accepted)...)
		writeFamily(w, "wlq_ingest_rejected_total", "Appends rejected for violating the log discipline (422).", "counter",
			counter(ing.Rejected)...)
		writeFamily(w, "wlq_ingest_shed_total", "Appends shed by apply-queue backpressure (429).", "counter",
			counter(ing.Shed)...)
		writeFamily(w, "wlq_ingest_replayed_total", "WAL records replayed into the index at startup or reload.", "counter",
			counter(ing.Replayed)...)
		writeFamily(w, "wlq_ingest_deduped_total", "WAL records skipped on replay as already in the snapshot.", "counter",
			counter(ing.Deduped)...)
		writeFamily(w, "wlq_ingest_cache_invalidations_total", "Cached results dropped by the per-append delta sweep.", "counter",
			counter(ing.CacheInvalidations)...)
		writeFamily(w, "wlq_ingest_wal_bytes_total", "Framed bytes written to WAL segments.", "counter",
			counter(ing.WALBytes)...)
		writeFamily(w, "wlq_ingest_wal_fsyncs_total", "Explicit WAL fsyncs issued.", "counter",
			counter(ing.WALFsyncs)...)
		writeFamily(w, "wlq_ingest_wal_rotations_total", "WAL segment rotations.", "counter",
			counter(ing.WALRotations)...)
		writeFamily(w, "wlq_ingest_wal_segments", "Live WAL segment files across logs.", "gauge",
			gauge(float64(ing.WALSegments))...)
		writeFamily(w, "wlq_ingest_wal_torn_bytes_total", "Bytes truncated as torn tails by recovery scans.", "counter",
			counter(uint64(ing.WALTornBytes))...)
		if len(ing.Logs) > 0 {
			lsns := make([]promSample, 0, len(ing.Logs))
			depth := make([]promSample, 0, len(ing.Logs))
			capy := make([]promSample, 0, len(ing.Logs))
			for _, ld := range ing.Logs {
				label := `{log="` + ld.Log + `"}`
				lsns = append(lsns, promSample{labels: label, value: strconv.FormatUint(ld.LastLSN, 10)})
				depth = append(depth, promSample{labels: label, value: strconv.Itoa(ld.QueueDepth)})
				capy = append(capy, promSample{labels: label, value: strconv.Itoa(ld.QueueCapacity)})
			}
			writeFamily(w, "wlq_ingest_last_lsn", "Per-log applied high-water mark.", "gauge", lsns...)
			writeFamily(w, "wlq_ingest_queue_depth", "Per-log append requests currently admitted.", "gauge", depth...)
			writeFamily(w, "wlq_ingest_queue_capacity", "Per-log append admission bound (0 = unlimited).", "gauge", capy...)
		}
		// WAL fsync latency histogram: cumulative buckets in seconds.
		fb, fcount, fsum := s.metrics.fsyncHist.snapshot()
		fmt.Fprintf(w, "# HELP wlq_ingest_fsync_duration_seconds WAL fsync latency.\n")
		fmt.Fprintf(w, "# TYPE wlq_ingest_fsync_duration_seconds histogram\n")
		var fcum uint64
		for i, le := range fsyncBucketsUS {
			fcum += fb[i]
			fmt.Fprintf(w, "wlq_ingest_fsync_duration_seconds_bucket{le=%q} %d\n",
				strconv.FormatFloat(float64(le)/1e6, 'g', -1, 64), fcum)
		}
		fcum += fb[len(fb)-1]
		fmt.Fprintf(w, "wlq_ingest_fsync_duration_seconds_bucket{le=\"+Inf\"} %d\n", fcum)
		fmt.Fprintf(w, "wlq_ingest_fsync_duration_seconds_sum %s\n",
			strconv.FormatFloat(float64(fsum)/1e6, 'g', -1, 64))
		fmt.Fprintf(w, "wlq_ingest_fsync_duration_seconds_count %d\n", fcount)
	}

	// Per-operator Lemma 1 accounting, labeled by operator name.
	ops := []string{"consecutive", "sequential", "choice", "parallel"}
	comps := make([]promSample, 0, len(ops))
	outs := make([]promSample, 0, len(ops))
	for _, op := range ops {
		label := `{op="` + op + `"}`
		comps = append(comps, promSample{labels: label, value: strconv.FormatUint(doc.OperatorComparisons[op], 10)})
		outs = append(outs, promSample{labels: label, value: strconv.FormatUint(doc.OperatorOutputs[op], 10)})
	}
	writeFamily(w, "wlq_operator_comparisons_total",
		"Measured record-level comparisons per operator (Lemma 1 accounting).", "counter", comps...)
	writeFamily(w, "wlq_operator_outputs_total",
		"Incidents produced per operator.", "counter", outs...)

	// Request latency histogram: cumulative buckets in seconds.
	buckets, count, sumUS := s.metrics.hist.snapshot()
	samples := make([]promSample, 0, len(buckets)+2)
	var cum uint64
	for i, le := range latencyBucketsUS {
		cum += buckets[i]
		samples = append(samples, promSample{
			labels: fmt.Sprintf(`{le="%s"}`, strconv.FormatFloat(float64(le)/1e6, 'g', -1, 64)),
			value:  strconv.FormatUint(cum, 10),
		})
	}
	cum += buckets[len(buckets)-1]
	samples = append(samples, promSample{labels: `{le="+Inf"}`, value: strconv.FormatUint(cum, 10)})
	fmt.Fprintf(w, "# HELP wlq_query_duration_seconds Request latency, all paths (success, error, timeout).\n")
	fmt.Fprintf(w, "# TYPE wlq_query_duration_seconds histogram\n")
	for _, sm := range samples {
		fmt.Fprintf(w, "wlq_query_duration_seconds_bucket%s %s\n", sm.labels, sm.value)
	}
	fmt.Fprintf(w, "wlq_query_duration_seconds_sum %s\n",
		strconv.FormatFloat(float64(sumUS)/1e6, 'g', -1, 64))
	fmt.Fprintf(w, "wlq_query_duration_seconds_count %d\n", count)
}
