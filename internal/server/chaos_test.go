package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wlq/internal/core/eval"
	"wlq/internal/faultinject"
	"wlq/internal/resilience"
	"wlq/internal/wlog"
)

// Chaos suite: deterministic faults injected through the production seams
// (eval.SetEvalHook, resilience.SetClock, Config.Loader), asserting graceful
// degradation — the right status code, a live health probe, and a clean
// cache — rather than mere survival. Run with the race detector: the CI
// chaos step is `go test -race -run 'Chaos|Fault|Shard' ./...`.

// chaosLog builds a log heavy enough to trip small budgets: each instance
// interleaves n As and Bs, so "A -> B" performs ~n² comparisons per instance.
func chaosLog(t *testing.T, instances, n int) *wlog.Log {
	t.Helper()
	var b wlog.Builder
	for i := 0; i < instances; i++ {
		wid := b.Start()
		for j := 0; j < n; j++ {
			if err := b.Emit(wid, "A", nil, nil); err != nil {
				t.Fatal(err)
			}
			if err := b.Emit(wid, "B", nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.End(wid); err != nil {
			t.Fatal(err)
		}
	}
	return b.MustBuild()
}

func newChaosServer(t *testing.T, cfg Config, instances, n int) http.Handler {
	t.Helper()
	s := New(cfg)
	if err := s.AddLog("chaos", "builtin:chaos", chaosLog(t, instances, n)); err != nil {
		t.Fatal(err)
	}
	return s.Handler()
}

// decodeError decodes an error envelope (any non-200 response).
func decodeError(t *testing.T, rec *httptest.ResponseRecorder) errorDoc {
	t.Helper()
	var doc errorDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("decode error envelope: %v\n%s", err, rec.Body)
	}
	return doc
}

func TestChaosWorkerPanicReturns500AndServiceSurvives(t *testing.T) {
	h := newChaosServer(t, Config{}, 8, 4)
	eval.SetEvalHook(faultinject.PanicOnNth(3, "injected worker fault"))
	defer eval.SetEvalHook(nil)

	rec := postQuery(t, h, `{"log":"chaos","query":"A -> B"}`, nil)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", rec.Code, rec.Body)
	}
	doc := decodeError(t, rec)
	if doc.IncidentID == "" {
		t.Fatalf("500 envelope missing incident_id: %s", rec.Body)
	}

	// The process keeps serving: liveness stays green...
	if rec := getJSON(t, h, "/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("healthz after panic: %d", rec.Code)
	}
	// ...and the failed query was not cached: once the fault stops firing
	// (PanicOnNth already fired), the same query succeeds with real results.
	var resp queryResponse
	rec = postQuery(t, h, `{"log":"chaos","query":"A -> B"}`, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-fault status %d: %s", rec.Code, rec.Body)
	}
	if resp.Cached {
		t.Fatal("first post-fault response claims a cache hit: the panicked query poisoned the cache")
	}
	if resp.Count == 0 {
		t.Fatal("post-fault evaluation returned no incidents")
	}
}

func TestChaosHandlerPanicRecovered(t *testing.T) {
	s := newTestServer(t, Config{})
	// Panic upstream of handleQuery's own isolation: a handler-level fault
	// must be caught by the recoverPanics middleware.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("handler fault")
	})
	h := s.recoverPanics(mux)

	req := httptest.NewRequest(http.MethodGet, "/boom", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if doc := decodeError(t, rec); doc.IncidentID == "" {
		t.Fatalf("recovered panic missing incident_id: %s", rec.Body)
	}
}

func TestChaosBudgetAbortReturns422WithCostTable(t *testing.T) {
	// Naive joins do the full Lemma 1 pairwise work, so a small comparison
	// budget trips deterministically on a ~160k-comparison query.
	h := newChaosServer(t, Config{
		Strategy: eval.StrategyNaive,
		Budget:   resilience.Budget{MaxComparisons: 10_000},
	}, 4, 200)

	rec := postQuery(t, h, `{"log":"chaos","query":"A -> B"}`, nil)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", rec.Code, rec.Body)
	}
	doc := decodeError(t, rec)
	if doc.BudgetDimension != resilience.DimComparisons {
		t.Fatalf("budget_dimension %q, want %q", doc.BudgetDimension, resilience.DimComparisons)
	}
	if doc.BudgetLimit != 10_000 || doc.BudgetMeasured < doc.BudgetLimit {
		t.Fatalf("implausible budget accounting: limit %d measured %d",
			doc.BudgetLimit, doc.BudgetMeasured)
	}
	// The partial cost table is attached: the client sees which operators
	// consumed the budget before the abort.
	if len(doc.CostTable) == 0 {
		t.Fatalf("422 envelope missing the partial cost table: %s", rec.Body)
	}
	var measured uint64
	for _, row := range doc.CostTable {
		measured += row.Comparisons
	}
	if measured == 0 {
		t.Fatal("partial cost table shows no work: completed operators were not accounted")
	}
}

func TestChaosWallTimeBudgetDeterministic(t *testing.T) {
	base := time.Date(2026, 8, 6, 9, 0, 0, 0, time.UTC)
	resilience.SetClock(faultinject.SkewClock(base, time.Hour))
	defer resilience.SetClock(nil)

	h := newChaosServer(t, Config{
		Budget: resilience.Budget{MaxWallTime: time.Second},
	}, 2, 100)
	rec := postQuery(t, h, `{"log":"chaos","query":"A -> B","workers":1}`, nil)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", rec.Code, rec.Body)
	}
	if doc := decodeError(t, rec); doc.BudgetDimension != resilience.DimWallTime {
		t.Fatalf("budget_dimension %q, want %q", doc.BudgetDimension, resilience.DimWallTime)
	}
}

func TestChaosAdmissionControlSheds429(t *testing.T) {
	h := newChaosServer(t, Config{MaxInFlight: 1}, 4, 4)

	// Block the first query inside evaluation (only the first: the hook
	// fires once), then probe with a second while the slot is held.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	eval.SetEvalHook(func(uint64) {
		once.Do(func() {
			close(entered)
			<-release
		})
	})
	defer eval.SetEvalHook(nil)

	firstDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		req := httptest.NewRequest(http.MethodPost, "/v1/query",
			strings.NewReader(`{"log":"chaos","query":"A -> B","workers":1}`))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		firstDone <- rec
	}()
	<-entered

	rec := postQuery(t, h, `{"log":"chaos","query":"A . B"}`, nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After header")
	}
	if doc := decodeError(t, rec); doc.RetryAfterSeconds <= 0 {
		t.Fatalf("429 envelope missing retry_after_seconds: %s", rec.Body)
	}

	// Shedding is not failure: the admitted query completes once unblocked,
	// and the freed slot admits new work.
	close(release)
	if first := <-firstDone; first.Code != http.StatusOK {
		t.Fatalf("admitted query finished with %d: %s", first.Code, first.Body)
	}
	if rec := postQuery(t, h, `{"log":"chaos","query":"A . B"}`, nil); rec.Code != http.StatusOK {
		t.Fatalf("query after slot release: %d: %s", rec.Code, rec.Body)
	}
}

func TestChaosTimeoutNotCached(t *testing.T) {
	s := New(Config{Timeout: 5 * time.Millisecond})
	if err := s.AddLog("chaos", "builtin:chaos", chaosLog(t, 8, 4)); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	// Stall every instance evaluation past the timeout, fail the query...
	eval.SetEvalHook(func(uint64) { time.Sleep(20 * time.Millisecond) })
	rec := postQuery(t, h, `{"log":"chaos","query":"A -> B"}`, nil)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body)
	}

	// ...then re-issue it healthy: the 504 must not have cached a partial
	// (or empty) result. A fresh evaluation — not a cache hit — answers.
	eval.SetEvalHook(nil)
	var resp queryResponse
	rec = postQuery(t, h, `{"log":"chaos","query":"A -> B"}`, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("retry status %d: %s", rec.Code, rec.Body)
	}
	if resp.Cached {
		t.Fatal("timed-out query poisoned the result cache")
	}
	if resp.Count == 0 {
		t.Fatal("retry returned no incidents")
	}
	// The clean result IS cached for the next client.
	rec = postQuery(t, h, `{"log":"chaos","query":"A -> B"}`, &resp)
	if rec.Code != http.StatusOK || !resp.Cached {
		t.Fatalf("clean result not cached: status %d cached %v", rec.Code, resp.Cached)
	}
}

func TestChaosPreflightCostCeiling(t *testing.T) {
	h := newChaosServer(t, Config{MaxPredictedCost: 1}, 4, 50)
	rec := postQuery(t, h, `{"log":"chaos","query":"A -> B"}`, nil)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", rec.Code, rec.Body)
	}
	doc := decodeError(t, rec)
	if doc.PredictedCost <= doc.CostCeiling {
		t.Fatalf("rejection without predicted > ceiling: %+v", doc)
	}
	// Metrics tell shed-by-cost apart from budget aborts.
	var m metricsDoc
	if rec := getJSON(t, h, "/metrics", &m); rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	if m.CostRejected != 1 || m.BudgetAborts != 0 {
		t.Fatalf("cost_rejected %d budget_aborts %d, want 1 and 0",
			m.CostRejected, m.BudgetAborts)
	}
}

func TestChaosReloadQuarantineKeepsLastGood(t *testing.T) {
	goodLoads := 0
	fail := false
	cfg := Config{Loader: func(spec string) (*wlog.Log, error) {
		if fail {
			return nil, fmt.Errorf("source unreadable: %w", faultinject.ErrInjected)
		}
		goodLoads++
		return chaosLog(t, 2, 2), nil
	}}
	s := New(cfg)
	if err := s.AddLog("chaos", "builtin:chaos", chaosLog(t, 2, 2)); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	// A clean reload bumps the generation.
	req := httptest.NewRequest(http.MethodPost, "/v1/reload", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("reload: %d: %s", rec.Code, rec.Body)
	}
	var res ReloadResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Reloaded) != 1 || len(res.Quarantined) != 0 || goodLoads != 1 {
		t.Fatalf("clean reload: %+v (loads %d)", res, goodLoads)
	}

	// A failing reload quarantines: the error is reported, the last-good
	// snapshot keeps serving, and readiness degrades without going red.
	fail = true
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/reload", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 1 {
		t.Fatalf("failed reload not quarantined: %+v", res)
	}
	var resp queryResponse
	if rec := postQuery(t, h, `{"log":"chaos","query":"A -> B"}`, &resp); rec.Code != http.StatusOK {
		t.Fatalf("query against quarantined log: %d", rec.Code)
	}
	var ready map[string]any
	if rec := getJSON(t, h, "/readyz", &ready); rec.Code != http.StatusOK {
		t.Fatalf("readyz went red on quarantine: %d", rec.Code)
	}
	if ready["status"] != "degraded" {
		t.Fatalf("readyz status %v, want degraded", ready["status"])
	}

	// Recovery clears the quarantine.
	fail = false
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/reload", nil))
	var recovered ReloadResult
	if err := json.Unmarshal(rec.Body.Bytes(), &recovered); err != nil {
		t.Fatal(err)
	}
	if len(recovered.Reloaded) != 1 || len(recovered.Quarantined) != 0 {
		t.Fatalf("recovery reload: %+v", recovered)
	}
	if rec := getJSON(t, h, "/readyz", &ready); ready["status"] != "ready" {
		t.Fatalf("readyz after recovery: %d %v", rec.Code, ready["status"])
	}
}

func TestChaosReloadInvalidatesCacheByGeneration(t *testing.T) {
	// The served log changes across reloads; cached results from the old
	// generation must not answer queries against the new one.
	big := false
	cfg := Config{Loader: func(spec string) (*wlog.Log, error) {
		if big {
			return chaosLog(t, 4, 2), nil
		}
		return chaosLog(t, 2, 2), nil
	}}
	s := New(cfg)
	if err := s.AddLog("chaos", "builtin:chaos", chaosLog(t, 2, 2)); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	var before queryResponse
	postQuery(t, h, `{"log":"chaos","query":"A -> B"}`, &before) // warm the cache
	if rec := postQuery(t, h, `{"log":"chaos","query":"A -> B"}`, &before); !before.Cached {
		t.Fatalf("warmup did not cache: %s", rec.Body)
	}

	big = true
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/reload", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("reload: %d", rec.Code)
	}

	var after queryResponse
	if rec := postQuery(t, h, `{"log":"chaos","query":"A -> B"}`, &after); rec.Code != http.StatusOK {
		t.Fatalf("post-reload query: %d", rec.Code)
	}
	if after.Cached {
		t.Fatal("post-reload query answered from the pre-reload cache")
	}
	if after.Count <= before.Count {
		t.Fatalf("post-reload count %d not above pre-reload %d: stale data",
			after.Count, before.Count)
	}
}

func TestChaosReloadNotConfigured(t *testing.T) {
	h := newTestServer(t, Config{}).Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/reload", nil))
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("reload without loader: %d, want 501", rec.Code)
	}
}

func TestChaosMetricsCountFaults(t *testing.T) {
	h := newChaosServer(t, Config{
		Strategy: eval.StrategyNaive,
		Budget:   resilience.Budget{MaxComparisons: 5000},
	}, 4, 200)
	eval.SetEvalHook(faultinject.PanicOnNth(1, "fault"))
	postQuery(t, h, `{"log":"chaos","query":"A . B"}`, nil) // panic -> 500
	eval.SetEvalHook(nil)
	postQuery(t, h, `{"log":"chaos","query":"A -> B"}`, nil) // budget -> 422

	var m metricsDoc
	if rec := getJSON(t, h, "/metrics", &m); rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	if m.PanicsRecovered != 1 {
		t.Errorf("panics_recovered = %d, want 1", m.PanicsRecovered)
	}
	if m.BudgetAborts != 1 {
		t.Errorf("budget_aborts = %d, want 1", m.BudgetAborts)
	}
	if m.AdmissionCapacity != DefaultMaxInFlight {
		t.Errorf("admission_capacity = %d, want %d", m.AdmissionCapacity, DefaultMaxInFlight)
	}
}
