package server

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wlq/internal/wlog"
)

// TestChaosReloadSingleFlight: concurrent reload triggers (a SIGHUP landing
// while POST /v1/reload is mid-pass, an operator mashing the endpoint) are
// coalesced into ONE loader pass whose result every caller shares. Run under
// `go test -race`: the joiners read the pass's result across goroutines.
func TestChaosReloadSingleFlight(t *testing.T) {
	var loads atomic.Int64
	gate := make(chan struct{}) // holds the first pass open inside the loader
	cfg := Config{Loader: func(spec string) (*wlog.Log, error) {
		loads.Add(1)
		<-gate
		return chaosLog(t, 2, 2), nil
	}}
	s := New(cfg)
	if err := s.AddLog("chaos", "builtin:chaos", chaosLog(t, 2, 2)); err != nil {
		t.Fatal(err)
	}

	// First caller enters the loader and blocks on the gate.
	var (
		wg      sync.WaitGroup
		results [8]ReloadResult
		errs    [8]error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], errs[0] = s.ReloadLogs()
	}()
	for loads.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	// Seven more callers arrive while the pass is in flight: all must join
	// it rather than start their own.
	var entered atomic.Int64
	for i := 1; i < len(results); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entered.Add(1)
			results[i], errs[i] = s.ReloadLogs()
		}(i)
	}
	for entered.Load() < int64(len(results)-1) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let the joiners reach the join point
	close(gate)
	wg.Wait()

	if n := loads.Load(); n != 1 {
		t.Fatalf("loader ran %d times for %d concurrent callers, want 1 (single-flight)", n, len(results))
	}
	coalesced := 0
	for i, res := range results {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if len(res.Reloaded) != 1 || res.Reloaded[0] != "chaos" {
			t.Fatalf("caller %d result %+v, want the shared pass result", i, res)
		}
		if res.Coalesced {
			coalesced++
		}
	}
	if coalesced != len(results)-1 {
		t.Fatalf("%d callers coalesced, want %d (everyone but the pass owner)", coalesced, len(results)-1)
	}
	var m metricsDoc
	getJSON(t, s.Handler(), "/metrics", &m)
	if m.CoalescedReloads != uint64(len(results)-1) {
		t.Fatalf("coalesced_reloads = %d, want %d", m.CoalescedReloads, len(results)-1)
	}

	// The flight is over: a later caller starts a fresh pass, not a stale join.
	res, err := s.ReloadLogs()
	if err != nil {
		t.Fatal(err)
	}
	if res.Coalesced || loads.Load() != 2 {
		t.Fatalf("post-flight reload coalesced=%v loads=%d, want a fresh pass", res.Coalesced, loads.Load())
	}
}
