package server

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wlq/internal/cluster"
	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
	"wlq/internal/flightrec"
	"wlq/internal/resilience"
)

// metrics holds the service counters exported at GET /metrics. Counters are
// atomics; the latency reservoir keeps the most recent samples and computes
// percentiles at scrape time (expvar-style: a flat JSON document, cheap to
// poll).
type metrics struct {
	start time.Time

	queriesTotal       atomic.Uint64
	queryErrors        atomic.Uint64
	queryTimeouts      atomic.Uint64
	cacheHits          atomic.Uint64
	cacheMisses        atomic.Uint64
	incidentsReturned  atomic.Uint64
	instancesEvaluated atomic.Uint64
	slowQueries        atomic.Uint64
	inflight           atomic.Int64
	busyWorkers        atomic.Int64

	// Resilience counters: load shed by admission control, panics converted
	// to errors (handler or eval worker), budget-tripped evaluations,
	// pre-flight cost-ceiling rejections, and hot-reload outcomes.
	queriesShed       atomic.Uint64
	panicsRecovered   atomic.Uint64
	budgetAborts      atomic.Uint64
	costRejected      atomic.Uint64
	logReloads        atomic.Uint64
	logReloadFailures atomic.Uint64
	// coalescedReloads counts reload requests that joined an in-progress
	// pass (single-flight) instead of starting their own.
	coalescedReloads atomic.Uint64

	// Adaptive cost-model counters: plans ranked with measured selectivities
	// from the statistics registry versus the static model constants (a
	// registry below its evidence thresholds still ranks statically).
	adaptivePlans atomic.Uint64
	staticPlans   atomic.Uint64

	// Sharded-execution counters (zero unless Config.Shards is set): queries
	// run shard-by-shard, per-shard retry attempts, shards excluded after
	// exhausting retries, shards skipped by an open circuit breaker, results
	// returned incomplete, and workflow instances those results excluded.
	shardedQueries atomic.Uint64
	shardRetries   atomic.Uint64
	shardsFailed   atomic.Uint64
	shardsSkipped  atomic.Uint64
	partialResults atomic.Uint64
	widsExcluded   atomic.Uint64

	// Cluster counters. clusterQueries counts queries fanned out by the
	// coordinator (the fan-out detail — requests, retries, hedges, skips —
	// lives on cluster.Coordinator and is merged in at scrape time);
	// workerQueries/workerQueryErrors count this instance's served worker-
	// mode requests.
	clusterQueries    atomic.Uint64
	workerQueries     atomic.Uint64
	workerQueryErrors atomic.Uint64

	// Ingest counters owned by the server (the coordinator/WAL counters are
	// merged in at scrape time, like the cluster section):
	// ingestInvalidations counts cache entries dropped by the per-append
	// delta sweep, and fsyncHist is the WAL fsync latency histogram.
	ingestInvalidations atomic.Uint64
	fsyncHist           fsyncHistogram

	// Per-operator totals, indexed by pattern.Op (1..4), folded in from
	// each evaluated query's eval.Meter: the measured record-level
	// comparison work and incident outputs of every ⊙/≺/⊗/⊕ application.
	opComparisons [5]atomic.Uint64
	opOutputs     [5]atomic.Uint64

	lat  latencyRing
	hist latencyHist
}

func newMetrics() *metrics {
	return &metrics{start: time.Now()}
}

// observeLatency records one request's wall-clock latency in both the
// percentile ring and the histogram. It is called on EVERY request path —
// errors and timeouts included — so the percentiles are not survivorship-
// biased toward successful queries.
func (m *metrics) observeLatency(d time.Duration) {
	m.lat.observe(d)
	m.hist.observe(d)
}

// recordMeter folds one query's per-node measurements into the service-wide
// per-operator totals.
func (m *metrics) recordMeter(mt *eval.Meter) {
	for _, st := range mt.Snapshot() {
		if st.Atom || int(st.Op) >= len(m.opComparisons) {
			continue
		}
		m.opComparisons[st.Op].Add(st.Comparisons)
		m.opOutputs[st.Op].Add(st.Outputs)
	}
}

// operatorTotals snapshots the per-operator counters keyed by operator name.
func (m *metrics) operatorTotals() (comparisons, outputs map[string]uint64) {
	comparisons = make(map[string]uint64, 4)
	outputs = make(map[string]uint64, 4)
	for _, op := range []pattern.Op{
		pattern.OpConsecutive, pattern.OpSequential, pattern.OpChoice, pattern.OpParallel,
	} {
		comparisons[op.Name()] = m.opComparisons[op].Load()
		outputs[op.Name()] = m.opOutputs[op].Load()
	}
	return comparisons, outputs
}

// latencyBucketsUS are the histogram upper bounds in microseconds (plus an
// implicit +Inf overflow bucket): 100µs to 10s, roughly logarithmic — the
// span between a cached lookup and the default request timeout.
var latencyBucketsUS = [...]int64{
	100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000,
	100000, 250000, 500000, 1000000, 2500000, 5000000, 10000000,
}

// latencyHist is a fixed-bucket latency histogram in the Prometheus style:
// per-bucket counts (cumulated at exposition time), a running sum and a
// count, all atomic.
type latencyHist struct {
	buckets [len(latencyBucketsUS) + 1]atomic.Uint64 // last slot = +Inf
	count   atomic.Uint64
	sumUS   atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	us := d.Microseconds()
	i := sort.Search(len(latencyBucketsUS), func(i int) bool { return latencyBucketsUS[i] >= us })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
}

// snapshot returns the per-bucket counts (not yet cumulative), the total
// count and the latency sum.
func (h *latencyHist) snapshot() (buckets []uint64, count uint64, sumUS int64) {
	buckets = make([]uint64, len(h.buckets))
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return buckets, h.count.Load(), h.sumUS.Load()
}

// fsyncBucketsUS are the WAL fsync duration histogram bounds in
// microseconds (plus an implicit +Inf bucket): 10µs — a page-cache sync on
// fast NVMe or tmpfs — up to 1s, where the disk is the ingest bottleneck.
var fsyncBucketsUS = [...]int64{
	10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
	25000, 50000, 100000, 250000, 500000, 1000000,
}

// fsyncHistogram is latencyHist over the fsync bucket bounds: per-bucket
// counts (cumulated at exposition time), a running sum and a count.
type fsyncHistogram struct {
	buckets [len(fsyncBucketsUS) + 1]atomic.Uint64 // last slot = +Inf
	count   atomic.Uint64
	sumUS   atomic.Int64
}

func (h *fsyncHistogram) observe(d time.Duration) {
	us := d.Microseconds()
	i := sort.Search(len(fsyncBucketsUS), func(i int) bool { return fsyncBucketsUS[i] >= us })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
}

func (h *fsyncHistogram) snapshot() (buckets []uint64, count uint64, sumUS int64) {
	buckets = make([]uint64, len(h.buckets))
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return buckets, h.count.Load(), h.sumUS.Load()
}

// latencyRing is a fixed-size ring of the most recent query latencies, in
// microseconds. Percentiles over a bounded recent window track current
// behavior instead of averaging over the whole process lifetime.
type latencyRing struct {
	mu      sync.Mutex
	samples [1024]int64
	n       int // filled slots, up to len(samples)
	next    int // write cursor
	count   uint64
	max     int64
}

func (r *latencyRing) observe(d time.Duration) {
	us := d.Microseconds()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples[r.next] = us
	r.next = (r.next + 1) % len(r.samples)
	if r.n < len(r.samples) {
		r.n++
	}
	r.count++
	if us > r.max {
		r.max = us
	}
}

// percentiles returns (count, p50, p95, p99, max) over the current window.
func (r *latencyRing) percentiles() (count uint64, p50, p95, p99, max int64) {
	r.mu.Lock()
	window := make([]int64, r.n)
	copy(window, r.samples[:r.n])
	count, max = r.count, r.max
	r.mu.Unlock()
	if len(window) == 0 {
		return count, 0, 0, 0, max
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	// Nearest-rank percentile: the smallest sample with at least p of the
	// window at or below it (never under-reports the tail).
	at := func(p float64) int64 {
		i := int(math.Ceil(p*float64(len(window)))) - 1
		if i < 0 {
			i = 0
		}
		return window[i]
	}
	return count, at(0.50), at(0.95), at(0.99), max
}

// latencyDoc is the latency section of the metrics document.
type latencyDoc struct {
	Count uint64 `json:"count"`
	P50   int64  `json:"p50_us"`
	P95   int64  `json:"p95_us"`
	P99   int64  `json:"p99_us"`
	Max   int64  `json:"max_us"`
}

// metricsDoc is the full GET /metrics response.
type metricsDoc struct {
	UptimeSeconds      float64 `json:"uptime_seconds"`
	Backend            string  `json:"backend"`
	LogsLoaded         int     `json:"logs_loaded"`
	QueriesTotal       uint64  `json:"queries_total"`
	QueryErrors        uint64  `json:"query_errors"`
	QueryTimeouts      uint64  `json:"query_timeouts"`
	CacheHits          uint64  `json:"cache_hits"`
	CacheMisses        uint64  `json:"cache_misses"`
	CacheEntries       int     `json:"cache_entries"`
	CacheEvictions     uint64  `json:"cache_evictions"`
	IncidentsReturned  uint64  `json:"incidents_returned"`
	InstancesEvaluated uint64  `json:"instances_evaluated"`
	SlowQueries        uint64  `json:"slow_queries"`
	QueriesShed        uint64  `json:"queries_shed"`
	PanicsRecovered    uint64  `json:"panics_recovered"`
	BudgetAborts       uint64  `json:"budget_aborts"`
	CostRejected       uint64  `json:"cost_rejected"`
	LogReloads         uint64  `json:"log_reloads"`
	LogReloadFailures  uint64  `json:"log_reload_failures"`
	CoalescedReloads   uint64  `json:"coalesced_reloads"`
	LogsQuarantined    int     `json:"logs_quarantined"`
	ShardedQueries     uint64  `json:"sharded_queries"`
	ShardRetries       uint64  `json:"shard_retries"`
	ShardsFailed       uint64  `json:"shards_failed"`
	ShardsSkipped      uint64  `json:"shards_skipped"`
	PartialResults     uint64  `json:"partial_results"`
	WIDsExcluded       uint64  `json:"wids_excluded"`
	BreakersOpen       int     `json:"breakers_open"`
	// Cluster is the distributed-tier section (nil on a single-node server
	// that is not in worker mode).
	Cluster *clusterMetricsDoc `json:"cluster,omitempty"`
	// Ingest is the durable live-ingestion section (nil unless
	// Config.Ingest): coordinator, WAL and delta-invalidation counters.
	Ingest            *ingestMetricsDoc `json:"ingest,omitempty"`
	AdmissionCapacity int               `json:"admission_capacity"`
	AdmissionInFlight int               `json:"admission_in_flight"`
	InflightQueries   int64             `json:"inflight_queries"`
	WorkersPerQuery   int               `json:"workers_per_query"`
	BusyWorkers       int64             `json:"busy_workers"`
	WorkerCapacity    int               `json:"worker_capacity"`
	WorkerUtilization float64           `json:"worker_utilization"`
	// Flight-recorder gauges: captures recorded over the service lifetime
	// and captures currently resident in the rings.
	FlightCaptured uint64 `json:"flightrec_captured"`
	FlightEntries  int    `json:"flightrec_entries"`
	// Adaptive cost-model counters: plans ranked with measured vs assumed
	// selectivities.
	AdaptivePlans uint64 `json:"adaptive_plans"`
	StaticPlans   uint64 `json:"static_plans"`

	Latency latencyDoc `json:"latency"`
	// OperatorComparisons and OperatorOutputs are the service-lifetime
	// per-operator totals measured by the evaluator (Lemma 1 accounting).
	OperatorComparisons map[string]uint64 `json:"operator_comparisons"`
	OperatorOutputs     map[string]uint64 `json:"operator_outputs"`
}

// clusterMetricsDoc is the distributed-tier section of the metrics
// document: coordinator-side fan-out counters (merged from
// cluster.Coordinator.Stats at scrape time) and worker-side served-request
// counters.
type clusterMetricsDoc struct {
	// Role is "coordinator", "worker", or "coordinator+worker".
	Role string `json:"role"`
	// Workers is the configured fleet size; WorkersLost the workers
	// currently probe-unhealthy or breaker-tripped; WorkerBreakersOpen the
	// count of not-closed per-worker breakers.
	Workers            int      `json:"workers,omitempty"`
	WorkersLost        []string `json:"workers_lost,omitempty"`
	WorkerBreakersOpen int      `json:"worker_breakers_open"`
	// ClusterQueries counts queries fanned out; the remaining coordinator
	// counters mirror cluster.Stats.
	ClusterQueries uint64 `json:"cluster_queries"`
	Fanouts        uint64 `json:"fanouts"`
	WorkerRequests uint64 `json:"worker_requests"`
	WorkerFailures uint64 `json:"worker_failures"`
	WorkerRetries  uint64 `json:"worker_retries"`
	Hedges         uint64 `json:"hedges"`
	HedgeWins      uint64 `json:"hedge_wins"`
	WorkersSkipped uint64 `json:"workers_skipped"`
	// WorkerHealth is each worker's probe verdict and breaker state.
	WorkerHealth []cluster.WorkerHealth `json:"worker_health,omitempty"`
	// WorkerDurations is each worker's request-duration histogram (the
	// wlq_worker_query_duration_seconds series).
	WorkerDurations []cluster.WorkerDurations `json:"worker_durations,omitempty"`
	// WorkerQueriesServed/WorkerQueryErrors count worker-mode requests this
	// instance served (and failed) as an upstream.
	WorkerQueriesServed uint64 `json:"worker_queries_served"`
	WorkerQueryErrors   uint64 `json:"worker_query_errors"`
}

// clusterMetrics assembles the cluster section, or nil when this instance
// is neither coordinator nor worker.
func (s *Server) clusterMetrics() *clusterMetricsDoc {
	if s.coord == nil && !s.cfg.WorkerMode {
		return nil
	}
	doc := &clusterMetricsDoc{
		ClusterQueries:      s.metrics.clusterQueries.Load(),
		WorkerQueriesServed: s.metrics.workerQueries.Load(),
		WorkerQueryErrors:   s.metrics.workerQueryErrors.Load(),
	}
	switch {
	case s.coord != nil && s.cfg.WorkerMode:
		doc.Role = "coordinator+worker"
	case s.coord != nil:
		doc.Role = "coordinator"
	default:
		doc.Role = "worker"
	}
	if s.coord != nil {
		st := s.coord.Stats()
		doc.Workers = len(s.coord.Ring().Workers())
		doc.WorkersLost = s.coord.Lost()
		doc.WorkerBreakersOpen = s.coord.OpenBreakers()
		doc.Fanouts = st.Fanouts
		doc.WorkerRequests = st.WorkerRequests
		doc.WorkerFailures = st.WorkerFailures
		doc.WorkerRetries = st.WorkerRetries
		doc.Hedges = st.Hedges
		doc.HedgeWins = st.HedgeWins
		doc.WorkersSkipped = st.WorkersSkipped
		doc.WorkerHealth = s.coord.Health()
		doc.WorkerDurations = s.coord.Durations()
	}
	return doc
}

// snapshot assembles the metrics document. workersPerQuery is the resolved
// per-query worker count; breakersOpen is the live count of not-closed
// per-shard circuit breakers; logs, cache and admission supply their own
// gauges; cl is the cluster section (nil off-cluster).
func (m *metrics) snapshot(logsLoaded, quarantined, workersPerQuery, breakersOpen int, cache *lru, adm *resilience.Admission, flight *flightrec.Recorder, backend string, cl *clusterMetricsDoc, ing *ingestMetricsDoc) metricsDoc {
	count, p50, p95, p99, max := m.lat.percentiles()
	capacity := runtime.GOMAXPROCS(0)
	busy := m.busyWorkers.Load()
	util := 0.0
	if capacity > 0 {
		util = float64(busy) / float64(capacity)
	}
	opComparisons, opOutputs := m.operatorTotals()
	return metricsDoc{
		UptimeSeconds:       time.Since(m.start).Seconds(),
		Backend:             backend,
		LogsLoaded:          logsLoaded,
		QueriesTotal:        m.queriesTotal.Load(),
		QueryErrors:         m.queryErrors.Load(),
		QueryTimeouts:       m.queryTimeouts.Load(),
		CacheHits:           m.cacheHits.Load(),
		CacheMisses:         m.cacheMisses.Load(),
		CacheEntries:        cache.len(),
		CacheEvictions:      cache.evicted(),
		IncidentsReturned:   m.incidentsReturned.Load(),
		InstancesEvaluated:  m.instancesEvaluated.Load(),
		SlowQueries:         m.slowQueries.Load(),
		QueriesShed:         m.queriesShed.Load(),
		PanicsRecovered:     m.panicsRecovered.Load(),
		BudgetAborts:        m.budgetAborts.Load(),
		CostRejected:        m.costRejected.Load(),
		LogReloads:          m.logReloads.Load(),
		LogReloadFailures:   m.logReloadFailures.Load(),
		CoalescedReloads:    m.coalescedReloads.Load(),
		LogsQuarantined:     quarantined,
		ShardedQueries:      m.shardedQueries.Load(),
		ShardRetries:        m.shardRetries.Load(),
		ShardsFailed:        m.shardsFailed.Load(),
		ShardsSkipped:       m.shardsSkipped.Load(),
		PartialResults:      m.partialResults.Load(),
		WIDsExcluded:        m.widsExcluded.Load(),
		BreakersOpen:        breakersOpen,
		Cluster:             cl,
		Ingest:              ing,
		AdmissionCapacity:   adm.Capacity(),
		AdmissionInFlight:   adm.InFlight(),
		InflightQueries:     m.inflight.Load(),
		WorkersPerQuery:     workersPerQuery,
		BusyWorkers:         busy,
		WorkerCapacity:      capacity,
		WorkerUtilization:   util,
		FlightCaptured:      flight.Captured(),
		FlightEntries:       flight.Len(),
		AdaptivePlans:       m.adaptivePlans.Load(),
		StaticPlans:         m.staticPlans.Load(),
		Latency:             latencyDoc{Count: count, P50: p50, P95: p95, P99: p99, Max: max},
		OperatorComparisons: opComparisons,
		OperatorOutputs:     opOutputs,
	}
}
