package server

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metrics holds the service counters exported at GET /metrics. Counters are
// atomics; the latency reservoir keeps the most recent samples and computes
// percentiles at scrape time (expvar-style: a flat JSON document, cheap to
// poll).
type metrics struct {
	start time.Time

	queriesTotal       atomic.Uint64
	queryErrors        atomic.Uint64
	queryTimeouts      atomic.Uint64
	cacheHits          atomic.Uint64
	cacheMisses        atomic.Uint64
	incidentsReturned  atomic.Uint64
	instancesEvaluated atomic.Uint64
	inflight           atomic.Int64
	busyWorkers        atomic.Int64

	lat latencyRing
}

func newMetrics() *metrics {
	return &metrics{start: time.Now()}
}

// latencyRing is a fixed-size ring of the most recent query latencies, in
// microseconds. Percentiles over a bounded recent window track current
// behavior instead of averaging over the whole process lifetime.
type latencyRing struct {
	mu      sync.Mutex
	samples [1024]int64
	n       int // filled slots, up to len(samples)
	next    int // write cursor
	count   uint64
	max     int64
}

func (r *latencyRing) observe(d time.Duration) {
	us := d.Microseconds()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples[r.next] = us
	r.next = (r.next + 1) % len(r.samples)
	if r.n < len(r.samples) {
		r.n++
	}
	r.count++
	if us > r.max {
		r.max = us
	}
}

// percentiles returns (count, p50, p95, p99, max) over the current window.
func (r *latencyRing) percentiles() (count uint64, p50, p95, p99, max int64) {
	r.mu.Lock()
	window := make([]int64, r.n)
	copy(window, r.samples[:r.n])
	count, max = r.count, r.max
	r.mu.Unlock()
	if len(window) == 0 {
		return count, 0, 0, 0, max
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	// Nearest-rank percentile: the smallest sample with at least p of the
	// window at or below it (never under-reports the tail).
	at := func(p float64) int64 {
		i := int(math.Ceil(p*float64(len(window)))) - 1
		if i < 0 {
			i = 0
		}
		return window[i]
	}
	return count, at(0.50), at(0.95), at(0.99), max
}

// latencyDoc is the latency section of the metrics document.
type latencyDoc struct {
	Count uint64 `json:"count"`
	P50   int64  `json:"p50_us"`
	P95   int64  `json:"p95_us"`
	P99   int64  `json:"p99_us"`
	Max   int64  `json:"max_us"`
}

// metricsDoc is the full GET /metrics response.
type metricsDoc struct {
	UptimeSeconds      float64    `json:"uptime_seconds"`
	LogsLoaded         int        `json:"logs_loaded"`
	QueriesTotal       uint64     `json:"queries_total"`
	QueryErrors        uint64     `json:"query_errors"`
	QueryTimeouts      uint64     `json:"query_timeouts"`
	CacheHits          uint64     `json:"cache_hits"`
	CacheMisses        uint64     `json:"cache_misses"`
	CacheEntries       int        `json:"cache_entries"`
	CacheEvictions     uint64     `json:"cache_evictions"`
	IncidentsReturned  uint64     `json:"incidents_returned"`
	InstancesEvaluated uint64     `json:"instances_evaluated"`
	InflightQueries    int64      `json:"inflight_queries"`
	WorkersPerQuery    int        `json:"workers_per_query"`
	BusyWorkers        int64      `json:"busy_workers"`
	WorkerCapacity     int        `json:"worker_capacity"`
	WorkerUtilization  float64    `json:"worker_utilization"`
	Latency            latencyDoc `json:"latency"`
}

// snapshot assembles the metrics document. workersPerQuery is the resolved
// per-query worker count; logs and cache supply their own gauges.
func (m *metrics) snapshot(logsLoaded, workersPerQuery int, cache *lru) metricsDoc {
	count, p50, p95, p99, max := m.lat.percentiles()
	capacity := runtime.GOMAXPROCS(0)
	busy := m.busyWorkers.Load()
	util := 0.0
	if capacity > 0 {
		util = float64(busy) / float64(capacity)
	}
	return metricsDoc{
		UptimeSeconds:      time.Since(m.start).Seconds(),
		LogsLoaded:         logsLoaded,
		QueriesTotal:       m.queriesTotal.Load(),
		QueryErrors:        m.queryErrors.Load(),
		QueryTimeouts:      m.queryTimeouts.Load(),
		CacheHits:          m.cacheHits.Load(),
		CacheMisses:        m.cacheMisses.Load(),
		CacheEntries:       cache.len(),
		CacheEvictions:     cache.evicted(),
		IncidentsReturned:  m.incidentsReturned.Load(),
		InstancesEvaluated: m.instancesEvaluated.Load(),
		InflightQueries:    m.inflight.Load(),
		WorkersPerQuery:    workersPerQuery,
		BusyWorkers:        busy,
		WorkerCapacity:     capacity,
		WorkerUtilization:  util,
		Latency:            latencyDoc{Count: count, P50: p50, P95: p95, P99: p99, Max: max},
	}
}
