package server

import (
	"container/list"
	"sync"

	"wlq/internal/core/incident"
	"wlq/internal/core/pattern"
	"wlq/internal/core/rewrite"
)

// cacheEntry is one cached query: the compiled plan (the optimized pattern
// plus the rewrite trace that produced it) and the materialized result set.
// The eval.Index is immutable, so a cached result stays valid for the
// lifetime of the loaded log; entries are only ever displaced by LRU
// pressure, never invalidated.
//
// Entries are shared between concurrent readers and must be treated as
// read-only: the incident set and the plan are never mutated after insert.
type cacheEntry struct {
	plan  pattern.Node
	trace rewrite.Trace
	set   *incident.Set
}

// lru is a mutex-guarded least-recently-used cache from canonical query
// keys to cache entries. A nil *lru (caching disabled) is valid: get
// always misses and put is a no-op.
type lru struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // front = most recently used; values are *lruItem
	items     map[string]*list.Element
	evictions uint64
}

type lruItem struct {
	key   string
	entry *cacheEntry
}

// newLRU creates a cache holding at most max entries; max <= 0 disables
// caching (returns nil).
func newLRU(max int) *lru {
	if max <= 0 {
		return nil
	}
	return &lru{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the entry for key, promoting it to most recently used.
func (c *lru) get(key string) (*cacheEntry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem).entry, true
}

// put inserts or refreshes key, evicting the least recently used entry
// when the cache is full.
func (c *lru) put(key string, e *cacheEntry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruItem).entry = e
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruItem{key: key, entry: e})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruItem).key)
		c.evictions++
	}
}

// len returns the current number of entries.
func (c *lru) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// evicted returns the number of entries displaced so far.
func (c *lru) evicted() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
