package server

import (
	"container/list"
	"sync"

	"wlq/internal/core/incident"
	"wlq/internal/core/pattern"
	"wlq/internal/core/rewrite"
)

// cacheEntry is one cached query: the compiled plan (the optimized pattern
// plus the rewrite trace that produced it) and the materialized result set.
// A static log's index is immutable, so its cached results stay valid for
// the lifetime of the loaded log and are only ever displaced by LRU
// pressure. Under live ingestion (Config.Ingest) the backend grows, and
// each append runs a delta invalidation sweep: the entry's log name and the
// plan's atom set tag exactly which appends could change its answer.
//
// Entries are shared between concurrent readers and must be treated as
// read-only: the incident set and the plan are never mutated after insert.
type cacheEntry struct {
	plan  pattern.Node
	trace rewrite.Trace
	set   *incident.Set
	// log and atoms are the delta-invalidation tags (see above); atoms is
	// nil for entries cached before ingestion was a concern, which the
	// sweep conservatively treats as always-stale.
	log   string
	atoms []*pattern.Atom
}

// staleForActivity decides whether appending a record with the given
// activity could change the entry's answer. A positive atom matches only
// its own activity, so the append is relevant iff it IS that activity; a
// negated atom ¬t matches every OTHER activity, so the append is relevant
// iff it is NOT t. Any atom that could match the new record means new
// incidents may exist and the entry must go; if no atom matches, no
// incident involving the record can form (incidents are per-instance
// compositions of atom matches) and the cached answer is still exact.
func (e *cacheEntry) staleForActivity(act string) bool {
	if e.atoms == nil {
		return true
	}
	for _, a := range e.atoms {
		if a.Negated != (a.Activity == act) {
			return true
		}
	}
	return false
}

// lru is a mutex-guarded least-recently-used cache from canonical query
// keys to cache entries. A nil *lru (caching disabled) is valid: get
// always misses and put is a no-op.
type lru struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // front = most recently used; values are *lruItem
	items     map[string]*list.Element
	evictions uint64
}

type lruItem struct {
	key   string
	entry *cacheEntry
}

// newLRU creates a cache holding at most max entries; max <= 0 disables
// caching (returns nil).
func newLRU(max int) *lru {
	if max <= 0 {
		return nil
	}
	return &lru{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the entry for key, promoting it to most recently used.
func (c *lru) get(key string) (*cacheEntry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem).entry, true
}

// put inserts or refreshes key, evicting the least recently used entry
// when the cache is full.
func (c *lru) put(key string, e *cacheEntry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruItem).entry = e
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruItem{key: key, entry: e})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruItem).key)
		c.evictions++
	}
}

// invalidateActivity drops every entry of the named log whose answer could
// include a newly appended record with the given activity (the delta sweep
// run on each accepted append; see cacheEntry.staleForActivity). Entries of
// other logs, and entries whose atom set cannot match the new record, are
// untouched — repeated appends of irrelevant activities leave the cache
// warm. Returns how many entries were dropped.
func (c *lru) invalidateActivity(logName, act string) uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var dropped uint64
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		it := el.Value.(*lruItem)
		if it.entry.log != logName || !it.entry.staleForActivity(act) {
			continue
		}
		c.ll.Remove(el)
		delete(c.items, it.key)
		dropped++
	}
	return dropped
}

// len returns the current number of entries.
func (c *lru) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// evicted returns the number of entries displaced so far.
func (c *lru) evicted() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
