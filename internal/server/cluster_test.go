package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"wlq/internal/cluster"
	"wlq/internal/faultinject"
	"wlq/internal/flightrec"
	"wlq/internal/gen"
	"wlq/internal/resilience"
	"wlq/internal/shard"
	"wlq/internal/wlog"
)

// Distributed chaos and equivalence suite. Workers are real worker-mode
// Servers behind real loopback listeners (the coordinator speaks HTTP, not
// handlers), so every fault here — a killed process, a flaky transport, a
// blackholed request — exercises the same code paths production does. Part
// of the CI chaos step: `go test -race -run 'Chaos|Fault|Shard|Cluster' ./...`.

// startWorker serves l under the given name on a worker-mode Server bound to
// a real loopback address.
func startWorker(t *testing.T, name string, l *wlog.Log) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{WorkerMode: true, FlightRecorderSize: -1})
	if err := s.AddLog(name, "builtin:"+name, l); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// clusterFixture is a coordinator over n in-process workers, all serving the
// same log under the same name.
type clusterFixture struct {
	coord   *Server
	workers []*httptest.Server
	wsrv    []*Server
	urls    []string
}

// newClusterFixture builds the fleet. mut, when non-nil, adjusts the
// coordinator's cluster config (transport faults, hedging, attempt caps)
// after the worker URLs are filled in; coordMut adjusts the coordinator's
// server config. Backoff sleeps are disabled by default — chaos tests
// assert behavior, not wall-clock delays.
func newClusterFixture(t *testing.T, n int, name string, l *wlog.Log, mut func(*cluster.Config), coordMut func(*Config)) *clusterFixture {
	t.Helper()
	f := &clusterFixture{}
	for i := 0; i < n; i++ {
		s, ts := startWorker(t, name, l)
		f.wsrv = append(f.wsrv, s)
		f.workers = append(f.workers, ts)
		f.urls = append(f.urls, ts.URL)
	}
	ccfg := cluster.Config{
		Workers: f.urls,
		Sleep:   func(time.Duration) {},
	}
	if mut != nil {
		mut(&ccfg)
	}
	cfg := Config{Cluster: &ccfg, ProbeInterval: -1}
	if coordMut != nil {
		coordMut(&cfg)
	}
	f.coord = New(cfg)
	if err := f.coord.AddLog(name, "builtin:"+name, l); err != nil {
		t.Fatal(err)
	}
	return f
}

// The 13-query operator matrix from the cross-backend equivalence suite
// (internal/colstore), here driven end to end over HTTP against 1, 2 and 4
// workers: distribution must be a physical switch, never a semantic one.
var clusterEquivalenceQueries = []string{
	"Act00 . Act01",
	"Act00 -> Act02",
	"Act01 | Act03",
	"Act00 & Act01",
	"(Act00 . Act01) -> Act02",
	"(Act00 -> Act01) | (Act00 -> Act02)",
	"(Act00 | Act01) & Act02",
	"Act00 -> (Act01 & (Act02 | Act03))",
	"!Act00 . Act01",
	"Act00 -> NoSuchActivity",
	"!NoSuchActivity & Act01",
	"START . Act00",
	"Act00 -> END",
}

func clusterEquivalenceLogs() map[string]*wlog.Log {
	return map[string]*wlog.Log{
		"uniform": gen.MustRandomLog(gen.LogParams{
			Instances: 40, MeanLength: 20, Seed: 11,
		}),
		"skewed": gen.MustRandomLog(gen.LogParams{
			Instances: 25, MeanLength: 30, Skew: 1.3, CompleteFraction: 0.6, Seed: 23,
		}),
	}
}

// pickVictim returns the worker owning the most wids and its assignment.
// Worker URLs carry random test ports, so placement differs run to run: the
// victim must be chosen from the live ring, not hardcoded. At least one
// OTHER worker must own wids too, so the victim's loss degrades the query
// instead of destroying it; with vnode replication a layout violating that
// is vanishingly rare, but random, so it skips rather than flakes.
func pickVictim(t *testing.T, ring *cluster.Ring, wids []uint64) (int, []uint64) {
	t.Helper()
	asn := ring.Assignments(wids)
	victim, owners := -1, 0
	for i, part := range asn {
		if len(part) == 0 {
			continue
		}
		owners++
		if victim == -1 || len(part) > len(asn[victim]) {
			victim = i
		}
	}
	if victim < 0 || owners < 2 {
		t.Skipf("degenerate ring layout: only %d workers own wids", owners)
	}
	return victim, asn[victim]
}

// heaviestOwner returns the worker URL owning the most of wids 1..16 on the
// default ring — a transport fault must target a worker the coordinator
// will actually contact.
func heaviestOwner(workers []string) string {
	wids := make([]uint64, 16)
	for i := range wids {
		wids[i] = uint64(i + 1)
	}
	asn := cluster.NewRing(workers, 0).Assignments(wids)
	best := 0
	for i := range asn {
		if len(asn[i]) > len(asn[best]) {
			best = i
		}
	}
	return workers[best]
}

// digestOf reduces a 200 response to the fields that define the answer.
func digestOf(resp queryResponse) string {
	b, _ := json.Marshal(struct {
		Count     int           `json:"count"`
		Incidents []incidentDoc `json:"incidents"`
	}{resp.Count, resp.Incidents})
	return string(b)
}

func TestClusterEquivalence(t *testing.T) {
	for logName, l := range clusterEquivalenceLogs() {
		// The single-node truth every fleet size must reproduce exactly.
		baseline := New(Config{})
		if err := baseline.AddLog("eq", "builtin:eq", l); err != nil {
			t.Fatal(err)
		}
		bh := baseline.Handler()
		for _, workers := range []int{1, 2, 4} {
			f := newClusterFixture(t, workers, "eq", l, nil, nil)
			ch := f.coord.Handler()
			for _, q := range clusterEquivalenceQueries {
				for _, noOpt := range []bool{false, true} {
					name := fmt.Sprintf("%s/%dw/%s/no_optimize=%v", logName, workers, q, noOpt)
					body := fmt.Sprintf(`{"log":"eq","query":%q,"no_optimize":%v}`, q, noOpt)
					var want, got queryResponse
					if rec := postQuery(t, bh, body, &want); rec.Code != http.StatusOK {
						t.Fatalf("%s: baseline status %d: %s", name, rec.Code, rec.Body)
					}
					rec := postQuery(t, ch, body, &got)
					if rec.Code != http.StatusOK {
						t.Fatalf("%s: cluster status %d: %s", name, rec.Code, rec.Body)
					}
					if digestOf(got) != digestOf(want) {
						t.Fatalf("%s: cluster answer diverges from single-node\n cluster: %s\n  single: %s",
							name, digestOf(got), digestOf(want))
					}
					if got.Completeness == nil || !got.Completeness.Complete {
						t.Fatalf("%s: healthy cluster result not marked complete: %+v", name, got.Completeness)
					}
				}
			}
		}
	}
}

// TestClusterEquivalenceColumnarWorkers crosses the distribution axis with
// the storage axis: a fleet whose workers run the columnar backend must
// still match the single-node row backend bit for bit.
func TestClusterEquivalenceColumnarWorkers(t *testing.T) {
	l := clusterEquivalenceLogs()["uniform"]
	baseline := New(Config{})
	if err := baseline.AddLog("eq", "builtin:eq", l); err != nil {
		t.Fatal(err)
	}
	var f clusterFixture
	for i := 0; i < 2; i++ {
		s := New(Config{WorkerMode: true, FlightRecorderSize: -1, Columnar: true})
		if err := s.AddLog("eq", "builtin:eq", l); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		f.urls = append(f.urls, ts.URL)
	}
	coord := New(Config{Cluster: &cluster.Config{Workers: f.urls}, ProbeInterval: -1})
	if err := coord.AddLog("eq", "builtin:eq", l); err != nil {
		t.Fatal(err)
	}
	for _, q := range clusterEquivalenceQueries {
		body := fmt.Sprintf(`{"log":"eq","query":%q}`, q)
		var want, got queryResponse
		postQuery(t, baseline.Handler(), body, &want)
		if rec := postQuery(t, coord.Handler(), body, &got); rec.Code != http.StatusOK {
			t.Fatalf("%q: status %d: %s", q, rec.Code, rec.Body)
		}
		if digestOf(got) != digestOf(want) {
			t.Fatalf("%q: columnar fleet diverges from row single-node", q)
		}
	}
}

// TestClusterChaosWorkerKilledAcceptance is the tier's acceptance walk: 4
// workers, one killed → 206 naming exactly the lost wid ranges, degraded
// /readyz, an open breaker in the metrics; after the worker rejoins at the
// same address, the same query answers 200, digest-equal to the healthy run.
func TestClusterChaosWorkerKilledAcceptance(t *testing.T) {
	l := chaosLog(t, 16, 2)
	// The coordinator cache is off: the healthy run would otherwise cache
	// the complete answer and the post-kill query would (correctly, but
	// uninterestingly) hit it instead of exercising the degraded fan-out.
	f := newClusterFixture(t, 4, "chaos", l, func(c *cluster.Config) {
		c.MaxAttempts = 1
		c.BreakerThreshold = 1
		c.WorkerTimeout = 2 * time.Second
	}, func(c *Config) { c.CacheSize = -1 })
	h := f.coord.Handler()
	const query = `{"log":"chaos","query":"A -> B","partial":true}`

	var healthy queryResponse
	if rec := postQuery(t, h, query, &healthy); rec.Code != http.StatusOK {
		t.Fatalf("healthy fleet status %d: %s", rec.Code, rec.Body)
	}
	if healthy.Completeness == nil || !healthy.Completeness.Complete || healthy.Count == 0 {
		t.Fatalf("healthy fleet result incomplete: %+v", healthy.Completeness)
	}

	// The ring is deterministic given the membership, so the victim's loss
	// is predictable down to the wid: these are exactly the ranges the
	// completeness must name.
	wids := make([]uint64, 16)
	for i := range wids {
		wids[i] = uint64(i + 1)
	}
	ring := f.coord.Coordinator().Ring()
	victimIdx, assigned := pickVictim(t, ring, wids)
	victim := f.urls[victimIdx]
	activeShards := 0
	for _, part := range ring.Assignments(wids) {
		if len(part) > 0 {
			activeShards++
		}
	}
	lost := make(map[uint64]bool)
	for _, wid := range assigned {
		lost[wid] = true
	}

	f.workers[victimIdx].CloseClientConnections()
	f.workers[victimIdx].Close()

	var partial queryResponse
	rec := postQuery(t, h, query, nil)
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("killed-worker status %d, want 206: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &partial); err != nil {
		t.Fatal(err)
	}
	c := partial.Completeness
	if c == nil || c.Complete || c.Shards != activeShards || c.Succeeded != activeShards-1 || c.Failed != 1 {
		t.Fatalf("completeness = %+v, want %d of %d shards with 1 failed", c, activeShards-1, activeShards)
	}
	if c.ExcludedWIDs != len(assigned) {
		t.Fatalf("excluded %d wids, want the victim's %d", c.ExcludedWIDs, len(assigned))
	}
	if len(c.Failures) != 1 {
		t.Fatalf("failures = %+v, want exactly the victim", c.Failures)
	}
	fo := c.Failures[0]
	if fo.Worker != victim {
		t.Fatalf("failure names worker %q, want victim %q", fo.Worker, victim)
	}
	if fo.WIDMin != assigned[0] || fo.WIDMax != assigned[len(assigned)-1] || fo.WIDs != len(assigned) {
		t.Fatalf("failure envelope %d–%d (%d wids), want %d–%d (%d)",
			fo.WIDMin, fo.WIDMax, fo.WIDs, assigned[0], assigned[len(assigned)-1], len(assigned))
	}
	if want := shard.RangesOf(assigned); !reflect.DeepEqual(fo.Ranges, want) {
		t.Fatalf("failure ranges %v, want exactly the lost runs %v", fo.Ranges, want)
	}
	for _, inc := range partial.Incidents {
		if lost[inc.WID] {
			t.Fatalf("incident from the lost wid set leaked into the partial result: %+v", inc)
		}
	}

	// Strict mode refuses the same degraded answer.
	if rec := postQuery(t, h, `{"log":"chaos","query":"A -> B"}`, nil); rec.Code != http.StatusBadGateway {
		t.Fatalf("strict status %d, want 502: %s", rec.Code, rec.Body)
	}

	// The loss is observable before the next query: the probe marks the
	// worker lost on /readyz, and the breaker (threshold 1) shows open in
	// the prometheus exposition.
	f.coord.Coordinator().ProbeOnce(context.Background())
	var ready map[string]any
	getJSON(t, h, "/readyz", &ready)
	if ready["status"] != "degraded" {
		t.Fatalf("readyz status %v, want degraded", ready["status"])
	}
	lostList, _ := ready["workers_lost"].([]any)
	foundVictim := false
	for _, w := range lostList {
		if w == victim {
			foundVictim = true
		}
	}
	if !foundVictim {
		t.Fatalf("readyz workers_lost %v does not name the victim %s", lostList, victim)
	}
	promRec := getJSON(t, h, "/metrics?format=prometheus", nil)
	if want := fmt.Sprintf("wlq_cluster_worker_breaker_open{worker=%q} 1", victim); !strings.Contains(promRec.Body.String(), want) {
		t.Fatalf("prometheus exposition missing %q", want)
	}

	// Rejoin: a fresh worker process on the SAME address (same ring
	// identity), plus a clock jump past the breaker cooldown so the
	// half-open probe admits it.
	addr := strings.TrimPrefix(victim, "http://")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind victim address %s: %v", addr, err)
	}
	revived := &httptest.Server{Listener: ln, Config: &http.Server{Handler: f.wsrv[victimIdx].Handler()}}
	revived.Start()
	t.Cleanup(revived.Close)
	resilience.SetClock(func() time.Time { return time.Now().Add(time.Hour) })
	defer resilience.SetClock(nil)

	var healed queryResponse
	if rec := postQuery(t, h, query, &healed); rec.Code != http.StatusOK {
		t.Fatalf("post-rejoin status %d: %s", rec.Code, rec.Body)
	}
	if digestOf(healed) != digestOf(healthy) {
		t.Fatalf("post-rejoin answer diverges from the healthy run\n healed: %s\nhealthy: %s",
			digestOf(healed), digestOf(healthy))
	}
	if healed.Cached {
		t.Fatal("post-rejoin answer came from the cache: the partial result was cached")
	}
	f.coord.Coordinator().ProbeOnce(context.Background())
	ready = nil
	getJSON(t, h, "/readyz", &ready)
	if ready["status"] != "ready" {
		t.Fatalf("post-rejoin readyz status %v, want ready", ready["status"])
	}
}

// TestClusterChaosPartialResultNeverCached extends the cache-safety
// regression to the distributed path: a 206 assembled from a degraded fleet
// must never be served from the cache once the fleet heals.
func TestClusterChaosPartialResultNeverCached(t *testing.T) {
	l := chaosLog(t, 16, 2)
	f := newClusterFixture(t, 2, "chaos", l, func(c *cluster.Config) {
		c.MaxAttempts = 1 // keep the breaker (default threshold) out of the picture
		c.WorkerTimeout = 2 * time.Second
	}, nil)
	h := f.coord.Handler()
	const query = `{"log":"chaos","query":"A -> B","partial":true}`

	wids := make([]uint64, 16)
	for i := range wids {
		wids[i] = uint64(i + 1)
	}
	victim, _ := pickVictim(t, f.coord.Coordinator().Ring(), wids)
	f.workers[victim].CloseClientConnections()
	f.workers[victim].Close()

	var partial queryResponse
	rec := postQuery(t, h, query, nil)
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("status %d, want 206: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &partial); err != nil {
		t.Fatal(err)
	}
	if f.coord.cache.len() != 0 {
		t.Fatalf("partial cluster result entered the cache (%d entries)", f.coord.cache.len())
	}

	// Heal the fleet: rebind the victim's address.
	addr := strings.TrimPrefix(f.urls[victim], "http://")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	revived := &httptest.Server{Listener: ln, Config: &http.Server{Handler: f.wsrv[victim].Handler()}}
	revived.Start()
	t.Cleanup(revived.Close)

	var healed queryResponse
	if rec := postQuery(t, h, query, &healed); rec.Code != http.StatusOK {
		t.Fatalf("post-heal status %d: %s", rec.Code, rec.Body)
	}
	if healed.Cached {
		t.Fatal("post-heal response claims a cache hit: the 206 was cached")
	}
	if healed.Partial || healed.Count <= partial.Count {
		t.Fatalf("post-heal result not complete: partial=%v count=%d (was %d)",
			healed.Partial, healed.Count, partial.Count)
	}
	// And the other direction: the complete answer IS cached.
	var again queryResponse
	postQuery(t, h, query, &again)
	if !again.Cached {
		t.Fatal("complete post-heal result was not cached")
	}
}

// TestClusterFaultTransportErrorRetried: a single transport-level failure
// (connection reset) is transient; the retry loop absorbs it and the client
// sees a complete 200.
func TestClusterFaultTransportErrorRetried(t *testing.T) {
	l := chaosLog(t, 16, 2)
	var flaky faultinject.FlakyRoundTripper
	f := newClusterFixture(t, 2, "chaos", l, func(c *cluster.Config) {
		flaky = faultinject.FlakyRoundTripper{Match: heaviestOwner(c.Workers), FailOn: faultinject.OnNthCall(1)}
		c.Transport = &flaky
		c.MaxAttempts = 2
	}, nil)
	var resp queryResponse
	rec := postQuery(t, f.coord.Handler(), `{"log":"chaos","query":"A -> B"}`, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 after retry: %s", rec.Code, rec.Body)
	}
	if resp.Completeness == nil || !resp.Completeness.Complete {
		t.Fatalf("retried result not complete: %+v", resp.Completeness)
	}
	if got := f.coord.Coordinator().Stats().WorkerRetries; got != 1 {
		t.Fatalf("worker retries = %d, want exactly 1", got)
	}
	if resp.Completeness.Retries != 1 {
		t.Fatalf("completeness retries = %d, want 1", resp.Completeness.Retries)
	}
}

// TestClusterFaultHedgedRequestRescuesStraggler: a blackholed primary (the
// request goes out, nothing comes back) is rescued by the hedge without
// waiting for the attempt timeout.
func TestClusterFaultHedgedRequestRescuesStraggler(t *testing.T) {
	l := chaosLog(t, 16, 2)
	var flaky faultinject.FlakyRoundTripper
	f := newClusterFixture(t, 2, "chaos", l, func(c *cluster.Config) {
		flaky = faultinject.FlakyRoundTripper{Match: heaviestOwner(c.Workers), BlackholeOn: faultinject.OnNthCall(1)}
		c.Transport = &flaky
		c.HedgeAfter = 10 * time.Millisecond
		c.WorkerTimeout = 30 * time.Second // the hedge, not the timeout, must end the wait
	}, nil)
	start := time.Now()
	var resp queryResponse
	rec := postQuery(t, f.coord.Handler(), `{"log":"chaos","query":"A -> B"}`, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 via hedge: %s", rec.Code, rec.Body)
	}
	if resp.Completeness == nil || !resp.Completeness.Complete {
		t.Fatalf("hedged result not complete: %+v", resp.Completeness)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("hedge did not rescue the straggler: query took %v", elapsed)
	}
	st := f.coord.Coordinator().Stats()
	if st.Hedges < 1 || st.HedgeWins < 1 {
		t.Fatalf("hedges=%d hedge_wins=%d, want at least one winning hedge", st.Hedges, st.HedgeWins)
	}
}

// TestClusterFaultStaleWorkerDetected: a worker serving an outdated copy of
// the log derives a different owned-wid set than the coordinator assigned.
// Merging its answer would silently mis-cover the log, so the ring
// cross-check must exclude it — deterministically, without retries.
func TestClusterFaultStaleWorkerDetected(t *testing.T) {
	fresh := chaosLog(t, 16, 2)
	wids := make([]uint64, 16)
	for i := range wids {
		wids[i] = uint64(i + 1)
	}

	// Build the fleet first to learn the victim's assignment, then pick a
	// stale log size whose victim-owned count provably differs from it.
	f := newClusterFixture(t, 2, "chaos", fresh, func(c *cluster.Config) {
		c.MaxAttempts = 2 // the mismatch must NOT be retried even though attempts remain
	}, nil)
	ring := f.coord.Coordinator().Ring()
	victimIdx, assigned := pickVictim(t, ring, wids)
	assignedCount := len(assigned)
	staleSize := 0
	for j := 1; j < 16; j++ {
		if len(ring.OwnedWIDs(wids[:j], victimIdx)) != assignedCount {
			staleSize = j
			break
		}
	}
	if staleSize == 0 {
		t.Fatal("fixture: no stale log size produces a detectable skew")
	}

	// Swap the victim's backing server for one serving the stale log at the
	// same URL (same ring identity — membership did not change, data did).
	staleSrv := New(Config{WorkerMode: true, FlightRecorderSize: -1})
	if err := staleSrv.AddLog("chaos", "builtin:stale", chaosLog(t, staleSize, 2)); err != nil {
		t.Fatal(err)
	}
	addr := strings.TrimPrefix(f.urls[victimIdx], "http://")
	f.workers[victimIdx].CloseClientConnections()
	f.workers[victimIdx].Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	stale := &httptest.Server{Listener: ln, Config: &http.Server{Handler: staleSrv.Handler()}}
	stale.Start()
	t.Cleanup(stale.Close)

	rec := postQuery(t, f.coord.Handler(), `{"log":"chaos","query":"A -> B","partial":true}`, nil)
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("stale-worker status %d, want 206: %s", rec.Code, rec.Body)
	}
	var resp queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	c := resp.Completeness
	if c == nil || c.Failed != 1 || len(c.Failures) != 1 {
		t.Fatalf("completeness = %+v, want the stale worker excluded", c)
	}
	if cause := c.Failures[0].Cause; !strings.Contains(cause, "ring mismatch") {
		t.Fatalf("failure cause %q does not name the ring mismatch", cause)
	}
	// Deterministic failure: one attempt, no retries burned on it.
	if got := f.coord.Coordinator().Stats().WorkerRetries; got != 0 {
		t.Fatalf("stale worker was retried %d times; mismatches are deterministic", got)
	}
}

// TestClusterWorkerEndpoint covers the worker side in isolation: owned-wid
// evaluation with the echoed count, and each rejection class.
func TestClusterWorkerEndpoint(t *testing.T) {
	l := chaosLog(t, 16, 2)
	s, _ := startWorker(t, "chaos", l)
	h := s.Handler()
	const self = "http://w1"
	ring := []string{self, "http://w2"}

	post := func(t *testing.T, req cluster.WorkerQueryRequest) *httptest.ResponseRecorder {
		t.Helper()
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		r := httptest.NewRequest(http.MethodPost, "/v1/worker/query", strings.NewReader(string(body)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		return rec
	}
	base := cluster.WorkerQueryRequest{
		Log: "chaos", Plan: "A -> B", Ring: ring, Replicas: 64, Self: self,
	}

	t.Run("evaluates exactly the owned wids", func(t *testing.T) {
		rec := post(t, base)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
		var resp cluster.WorkerQueryResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		wids := make([]uint64, 16)
		for i := range wids {
			wids[i] = uint64(i + 1)
		}
		owned := cluster.NewRing(ring, 64).OwnedWIDs(wids, 0)
		if resp.WIDsOwned != len(owned) {
			t.Fatalf("WIDsOwned = %d, want %d", resp.WIDsOwned, len(owned))
		}
		ownedSet := make(map[uint64]bool)
		for _, wid := range owned {
			ownedSet[wid] = true
		}
		if len(resp.Incidents) == 0 {
			t.Fatal("no incidents from the owned wids (A -> B matches every instance)")
		}
		for _, inc := range resp.Incidents {
			if !ownedSet[inc.WID] {
				t.Fatalf("incident from unowned wid %d", inc.WID)
			}
		}
	})
	t.Run("unknown log is 404", func(t *testing.T) {
		req := base
		req.Log = "nope"
		if rec := post(t, req); rec.Code != http.StatusNotFound {
			t.Fatalf("status %d, want 404", rec.Code)
		}
	})
	t.Run("self outside the ring is 400", func(t *testing.T) {
		req := base
		req.Self = "http://intruder"
		if rec := post(t, req); rec.Code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", rec.Code)
		}
	})
	t.Run("malformed plan is 400", func(t *testing.T) {
		req := base
		req.Plan = "A -> ("
		if rec := post(t, req); rec.Code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", rec.Code)
		}
	})
	t.Run("budget abort is 422 with the dimension", func(t *testing.T) {
		req := base
		req.Budget = cluster.BudgetDoc{MaxComparisons: 1}
		rec := post(t, req)
		if rec.Code != http.StatusUnprocessableEntity {
			t.Fatalf("status %d, want 422: %s", rec.Code, rec.Body)
		}
		var ed cluster.WorkerErrorDoc
		if err := json.Unmarshal(rec.Body.Bytes(), &ed); err != nil {
			t.Fatal(err)
		}
		if ed.BudgetDimension != resilience.DimComparisons {
			t.Fatalf("budget dimension %q, want %q", ed.BudgetDimension, resilience.DimComparisons)
		}
	})
	t.Run("worker endpoint absent outside worker mode", func(t *testing.T) {
		plain := newTestServer(t, Config{})
		r := httptest.NewRequest(http.MethodPost, "/v1/worker/query", strings.NewReader("{}"))
		rec := httptest.NewRecorder()
		plain.Handler().ServeHTTP(rec, r)
		if rec.Code != http.StatusNotFound {
			t.Fatalf("status %d, want 404 on a non-worker server", rec.Code)
		}
	})
}

// TestClusterFlightRecorderWorkersField: coordinator captures carry the
// fan-out summary, so a flight of a degraded query shows which workers
// answered.
func TestClusterFlightRecorderWorkersField(t *testing.T) {
	l := chaosLog(t, 16, 2)
	f := newClusterFixture(t, 2, "chaos", l, nil, nil)
	if rec := postQuery(t, f.coord.Handler(), `{"log":"chaos","query":"A -> B"}`, nil); rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	flights := f.coord.flight.List(flightrec.Filter{})
	if len(flights) != 1 {
		t.Fatalf("%d flights recorded, want 1", len(flights))
	}
	ws := flights[0].Workers
	if ws == nil {
		t.Fatal("capture has no workers summary on a cluster coordinator")
	}
	// Placement over random test ports decides how many of the 2 workers own
	// wids; whatever that is, every active worker must have succeeded.
	if ws.Workers < 1 || ws.Succeeded != ws.Workers || ws.Failed != 0 || ws.Skipped != 0 {
		t.Fatalf("workers summary = %+v, want every active worker succeeded", ws)
	}
}

// TestClusterMetrics: the JSON and prometheus metrics carry the cluster
// section with the right role on each side of the tier.
func TestClusterMetrics(t *testing.T) {
	l := chaosLog(t, 16, 2)
	f := newClusterFixture(t, 2, "chaos", l, nil, nil)
	postQuery(t, f.coord.Handler(), `{"log":"chaos","query":"A -> B"}`, nil)

	var doc metricsDoc
	getJSON(t, f.coord.Handler(), "/metrics", &doc)
	if doc.Cluster == nil {
		t.Fatal("coordinator metrics missing the cluster section")
	}
	if doc.Cluster.Role != "coordinator" || doc.Cluster.Workers != 2 {
		t.Fatalf("coordinator cluster section = %+v", doc.Cluster)
	}
	if doc.Cluster.ClusterQueries != 1 || doc.Cluster.Fanouts != 1 || doc.Cluster.WorkerRequests < 1 {
		t.Fatalf("coordinator counters = queries=%d fanouts=%d requests=%d, want 1/1/>=1",
			doc.Cluster.ClusterQueries, doc.Cluster.Fanouts, doc.Cluster.WorkerRequests)
	}
	promBody := getJSON(t, f.coord.Handler(), "/metrics?format=prometheus", nil).Body.String()
	for _, family := range []string{
		"wlq_cluster_workers 2",
		"wlq_cluster_queries_total 1",
		"wlq_cluster_worker_requests_total",
		"wlq_cluster_worker_breaker_open",
	} {
		if !strings.Contains(promBody, family) {
			t.Errorf("coordinator prometheus exposition missing %q", family)
		}
	}

	// The worker side, read from the one guaranteed to have been contacted.
	served := 0
	for i, u := range f.urls {
		if u == heaviestOwner(f.urls) {
			served = i
		}
	}
	var wdoc metricsDoc
	getJSON(t, f.wsrv[served].Handler(), "/metrics", &wdoc)
	if wdoc.Cluster == nil || wdoc.Cluster.Role != "worker" {
		t.Fatalf("worker cluster section = %+v, want role worker", wdoc.Cluster)
	}
	if wdoc.Cluster.WorkerQueriesServed == 0 {
		t.Fatal("worker served no queries according to its metrics")
	}
	wprom := getJSON(t, f.wsrv[served].Handler(), "/metrics?format=prometheus", nil).Body.String()
	if !strings.Contains(wprom, "wlq_worker_queries_total") {
		t.Error("worker prometheus exposition missing wlq_worker_queries_total")
	}
}
