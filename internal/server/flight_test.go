package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"wlq"
	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
	"wlq/internal/faultinject"
	"wlq/internal/resilience"
	"wlq/internal/stats"
	"wlq/internal/wlog"
)

// Flight-recorder and adaptive cost-model suite. The Chaos-named tests ride
// the fault-injection seams and run under the CI race step.

// listCaptures fetches GET /v1/queries with the given query string.
func listCaptures(t *testing.T, h http.Handler, params string) flightListDoc {
	t.Helper()
	var doc flightListDoc
	rec := getJSON(t, h, "/v1/queries"+params, &doc)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/queries%s: status %d: %s", params, rec.Code, rec.Body)
	}
	return doc
}

// TestFlightRecorderCapturesSlowQueryWithFullTrace is the acceptance path:
// a query slower than the threshold is captured with its complete trace —
// span tree and cost table — even though the request never asked for one.
func TestFlightRecorderCapturesSlowQueryWithFullTrace(t *testing.T) {
	s := newTestServer(t, Config{SlowQuery: time.Nanosecond}) // everything is slow
	h := s.Handler()

	var resp queryResponse
	rec := postQuery(t, h, `{"log":"fig3","query":"UpdateRefer -> GetReimburse"}`, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("query status %d: %s", rec.Code, rec.Body)
	}
	if resp.Trace != nil {
		t.Fatal("response carried a trace the client never requested")
	}

	doc := listCaptures(t, h, "?slow=true")
	if doc.Count != 1 {
		t.Fatalf("slow captures = %d, want 1", doc.Count)
	}
	sum := doc.Queries[0]
	if !sum.Slow || sum.Status != "ok" || !sum.HasTrace {
		t.Fatalf("capture summary = %+v, want slow ok with trace", sum)
	}

	var cap struct {
		ID     uint64 `json:"id"`
		Query  string `json:"query"`
		Plan   string `json:"plan"`
		Status string `json:"status"`
		Trace  *struct {
			Spans     json.RawMessage  `json:"spans"`
			CostTable []map[string]any `json:"cost_table"`
		} `json:"trace"`
	}
	rec = getJSON(t, h, fmt.Sprintf("/v1/queries/%d", sum.ID), &cap)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/queries/%d: status %d: %s", sum.ID, rec.Code, rec.Body)
	}
	if cap.Trace == nil || len(cap.Trace.Spans) == 0 || len(cap.Trace.CostTable) == 0 {
		t.Fatalf("capture %d has no full trace: %s", sum.ID, rec.Body)
	}
	if cap.Query != "UpdateRefer -> GetReimburse" || cap.Plan == "" {
		t.Fatalf("capture = %+v", cap)
	}
}

func TestFlightRecorderDisabled(t *testing.T) {
	s := newTestServer(t, Config{FlightRecorderSize: -1})
	h := s.Handler()
	postQuery(t, h, `{"log":"fig3","query":"GetRefer"}`, nil)
	rec := getJSON(t, h, "/v1/queries", nil)
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("disabled recorder: status %d, want 501", rec.Code)
	}
	rec = getJSON(t, h, "/v1/queries/1", nil)
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("disabled recorder get: status %d, want 501", rec.Code)
	}
}

func TestFlightRecorderCapturesParseError(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	if rec := postQuery(t, h, `{"log":"fig3","query":"GetRefer ->"}`, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("parse error status %d", rec.Code)
	}
	doc := listCaptures(t, h, "?status=error")
	if doc.Count != 1 || doc.Queries[0].HTTPStatus != http.StatusBadRequest {
		t.Fatalf("error captures = %+v", doc.Queries)
	}
	if doc.Queries[0].Error == "" {
		t.Fatal("error capture carries no failure detail")
	}
}

func TestFlightRecorderCapturesBudgetAbortAndKeepsRegistryClean(t *testing.T) {
	s := newTestServer(t, Config{
		Adaptive: true,
		Budget:   resilience.Budget{MaxComparisons: 1},
	})
	h := s.Handler()
	rec := postQuery(t, h, `{"log":"fig3","query":"GetRefer -> SeeDoctor"}`, nil)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("budget abort status %d, want 422: %s", rec.Code, rec.Body)
	}
	doc := listCaptures(t, h, "?status=budget")
	if doc.Count != 1 {
		t.Fatalf("budget captures = %d, want 1", doc.Count)
	}
	// Hygiene: the aborted evaluation must not feed the statistics registry.
	if n := s.statsFor("fig3").Queries(); n != 0 {
		t.Fatalf("budget-tripped query fed the registry: %d queries", n)
	}
}

func TestChaosFlightRecorderCapturesPanicAndKeepsRegistryClean(t *testing.T) {
	s := New(Config{Adaptive: true})
	if err := s.AddLog("chaos", "builtin:chaos", chaosLog(t, 8, 3)); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	eval.SetEvalHook(faultinject.PanicOnNth(2, "injected fault"))
	defer eval.SetEvalHook(nil)
	rec := postQuery(t, h, `{"log":"chaos","query":"A -> B"}`, nil)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicked query status %d, want 500: %s", rec.Code, rec.Body)
	}
	eval.SetEvalHook(nil)
	doc := listCaptures(t, h, "?status=panic")
	if doc.Count != 1 {
		t.Fatalf("panic captures = %d, want 1", doc.Count)
	}
	if !doc.Queries[0].HasTrace {
		t.Fatal("panic capture lost its partial trace")
	}
	if n := s.statsFor("chaos").Queries(); n != 0 {
		t.Fatalf("panicked query fed the registry: %d queries", n)
	}
}

func TestChaosFlightRecorderCapturesPartialAndKeepsRegistryClean(t *testing.T) {
	cfg := Config{Adaptive: true, Shards: 4, ShardAttempts: 1}
	s := New(cfg)
	if err := s.AddLog("chaos", "builtin:chaos", chaosLog(t, 16, 3)); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	eval.SetEvalHook(func(wid uint64) {
		if wid >= 13 {
			panic("injected shard fault")
		}
	})
	defer eval.SetEvalHook(nil)
	rec := postQuery(t, h, `{"log":"chaos","query":"A -> B","partial":true}`, nil)
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("degraded partial status %d, want 206: %s", rec.Code, rec.Body)
	}
	eval.SetEvalHook(nil)
	doc := listCaptures(t, h, "?status=partial")
	if doc.Count != 1 {
		t.Fatalf("partial captures = %d, want 1", doc.Count)
	}
	if !doc.Queries[0].Sharded {
		t.Fatal("partial capture not marked sharded")
	}
	// Hygiene: a result missing a wid range under-reports outputs; it must
	// never enter the selectivity registry.
	if n := s.statsFor("chaos").Queries(); n != 0 {
		t.Fatalf("partial query fed the registry: %d queries", n)
	}
}

func TestFlightRecorderMarksCacheHits(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	postQuery(t, h, `{"log":"fig3","query":"GetRefer"}`, nil)
	postQuery(t, h, `{"log":"fig3","query":"GetRefer"}`, nil)
	doc := listCaptures(t, h, "")
	if doc.Count != 2 {
		t.Fatalf("captures = %d, want 2", doc.Count)
	}
	// Newest first: the second (cached) execution leads.
	if !doc.Queries[0].Cached || doc.Queries[1].Cached {
		t.Fatalf("cache marks wrong: %+v", doc.Queries)
	}
}

func TestFlightListValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	for _, url := range []string{
		"/v1/queries?min_elapsed_ms=x",
		"/v1/queries?slow=maybe",
		"/v1/queries?limit=-2",
		"/v1/queries/notanumber",
	} {
		if rec := getJSON(t, h, url, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, rec.Code)
		}
	}
	if rec := getJSON(t, h, "/v1/queries/999", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown capture id: status %d, want 404", rec.Code)
	}
}

// TestAdaptiveStatsPersistAcrossServers runs warm-up queries on an adaptive
// server, then builds a second server over the same stats file and checks
// the measured statistics were loaded back.
func TestAdaptiveStatsPersistAcrossServers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig3.stats.json")
	cfg := Config{Adaptive: true, StatsFile: path}

	s := newTestServer(t, cfg)
	h := s.Handler()
	for _, q := range []string{
		"GetRefer -> SeeDoctor",
		"SeeDoctor -> PayTreatment",
		"UpdateRefer -> GetReimburse",
	} {
		if rec := postQuery(t, h, fmt.Sprintf(`{"log":"fig3","query":%q}`, q), nil); rec.Code != http.StatusOK {
			t.Fatalf("warmup %q status %d: %s", q, rec.Code, rec.Body)
		}
	}
	want := s.statsFor("fig3").Queries()
	if want == 0 {
		t.Fatal("successful queries did not feed the registry")
	}

	s2 := newTestServer(t, cfg)
	if got := s2.statsFor("fig3").Queries(); got != want {
		t.Fatalf("second server loaded %d queries of statistics, want %d", got, want)
	}
}

// fig3Loader reloads the built-in Figure 3 log, for hot-reload tests.
func fig3Loader(string) (*wlog.Log, error) { return wlq.ClinicFig3(), nil }

// TestAdaptiveStatsSurviveReload checks the registry is not reset by a hot
// reload, and that captures carry the new generation afterwards.
func TestAdaptiveStatsSurviveReload(t *testing.T) {
	s := New(Config{Adaptive: true, Loader: fig3Loader})
	if err := s.AddLog("fig3", "builtin:fig3", wlq.ClinicFig3()); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	postQuery(t, h, `{"log":"fig3","query":"GetRefer -> SeeDoctor"}`, nil)
	before := s.statsFor("fig3").Queries()
	if before == 0 {
		t.Fatal("query did not feed the registry")
	}
	if _, err := s.ReloadLogs(); err != nil {
		t.Fatal(err)
	}
	if after := s.statsFor("fig3").Queries(); after != before {
		t.Fatalf("reload reset the registry: %d -> %d", before, after)
	}
	// A post-reload execution carries the bumped generation.
	postQuery(t, h, `{"log":"fig3","query":"SeeDoctor -> PayTreatment"}`, nil)
	doc := listCaptures(t, h, "")
	if doc.Queries[0].Generation != 1 {
		t.Fatalf("post-reload capture generation = %d, want 1", doc.Queries[0].Generation)
	}
	if doc.Queries[len(doc.Queries)-1].Generation != 0 {
		t.Fatalf("pre-reload capture generation = %d, want 0", doc.Queries[len(doc.Queries)-1].Generation)
	}
}

// TestChaosFlightRecorderConcurrentWithReload hammers queries, capture reads
// and hot reloads concurrently; run under -race it proves the recorder and
// registry survive reload without locking up or mixing state.
func TestChaosFlightRecorderConcurrentWithReload(t *testing.T) {
	s := New(Config{Adaptive: true, Loader: fig3Loader})
	if err := s.AddLog("fig3", "builtin:fig3", wlq.ClinicFig3()); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				postQuery(t, h, `{"log":"fig3","query":"GetRefer -> SeeDoctor"}`, nil)
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				req := httptest.NewRequest(http.MethodGet, "/v1/queries?limit=8", nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("list status %d", rec.Code)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if _, err := s.ReloadLogs(); err != nil {
					t.Errorf("reload: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.flight.Captured() == 0 {
		t.Fatal("no captures recorded")
	}
	if s.statsFor("fig3").Queries() == 0 {
		t.Fatal("no queries fed the registry")
	}
}

func TestMetricsBackendAndFlightFamilies(t *testing.T) {
	for _, tc := range []struct {
		columnar bool
		want     string
		not      string
	}{
		{false, `wlq_storage_backend{backend="row"} 1`, `wlq_storage_backend{backend="columnar"} 1`},
		{true, `wlq_storage_backend{backend="columnar"} 1`, `wlq_storage_backend{backend="row"} 1`},
	} {
		s := newTestServer(t, Config{Columnar: tc.columnar, Adaptive: true})
		h := s.Handler()
		postQuery(t, h, `{"log":"fig3","query":"GetRefer -> SeeDoctor"}`, nil)
		rec := getJSON(t, h, "/metrics?format=prometheus", nil)
		body := rec.Body.String()
		if !strings.Contains(body, tc.want) {
			t.Errorf("columnar=%v: missing %q", tc.columnar, tc.want)
		}
		if strings.Contains(body, tc.not) {
			t.Errorf("columnar=%v: unexpected %q", tc.columnar, tc.not)
		}
		for _, family := range []string{
			"wlq_flightrec_captured_total 1",
			"wlq_flightrec_entries 1",
			"wlq_adaptive_plans_total",
			"wlq_static_plans_total",
		} {
			if !strings.Contains(body, family) {
				t.Errorf("columnar=%v: missing family %q in exposition", tc.columnar, family)
			}
		}
	}
}

func TestAdaptiveAndStaticPlanCounters(t *testing.T) {
	s := newTestServer(t, Config{Adaptive: true})
	h := s.Handler()
	// First query: empty registry, static ranking.
	postQuery(t, h, `{"log":"fig3","query":"GetRefer -> SeeDoctor"}`, nil)
	var doc metricsDoc
	getJSON(t, h, "/metrics", &doc)
	if doc.StaticPlans != 1 || doc.AdaptivePlans != 0 {
		t.Fatalf("after first query: adaptive=%d static=%d, want 0/1", doc.AdaptivePlans, doc.StaticPlans)
	}
	// Feed the registry past its evidence threshold, then plan a new query
	// (a cache miss, so the rewriter actually runs).
	seedRegistry(t, s.statsFor("fig3"))
	postQuery(t, h, `{"log":"fig3","query":"SeeDoctor -> PayTreatment"}`, nil)
	getJSON(t, h, "/metrics", &doc)
	if doc.AdaptivePlans != 1 {
		t.Fatalf("after measured registry: adaptive=%d, want 1", doc.AdaptivePlans)
	}
	if doc.Backend != "row" {
		t.Fatalf("metrics backend = %q, want row", doc.Backend)
	}
}

// seedRegistry pushes synthetic sequential-operator evidence past the
// registry's threshold so its selectivities read as measured.
func seedRegistry(t *testing.T, reg *stats.Registry) {
	t.Helper()
	reg.ObserveMeter([]eval.NodeStats{{
		Node:    pattern.MustParse("A -> B"),
		Op:      pattern.OpSequential,
		Evals:   1,
		Pairs:   stats.MinOperatorPairs,
		Outputs: stats.MinOperatorPairs / 2,
	}})
	if !reg.Selectivities().Measured() {
		t.Fatal("seeded registry still reads as assumed")
	}
}
