// Package server implements wlq-serve: a long-running HTTP query service
// over workflow logs. It loads logs once at startup, builds the per-wid
// eval.Index for each, and serves pattern queries with plan/result caching.
//
// Endpoints:
//
//	POST /v1/query    parse → rewrite → parallel evaluation (JSON in/out);
//	                  "trace": true adds the span tree and Lemma 1 cost table
//	GET  /v1/explain  the optimizer's rewrite trace and cost estimates
//	GET  /v1/logs     loaded-log inventory and validity status
//	GET  /metrics     service counters (JSON; ?format=prometheus for text exposition)
//	GET  /healthz     liveness probe
//	GET  /readyz      readiness probe (503 until a log is loaded)
//	GET  /debug/pprof profiling handlers (Config.EnablePprof)
//
// The Index is immutable after load, so concurrent queries share it without
// locks and cached result sets never need invalidation. The result cache is
// an LRU keyed on (log, canonicalized pattern, limit): queries equal modulo
// associativity and commutativity (Theorems 2–3) share one entry.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	mrand "math/rand"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"wlq/internal/cluster"
	"wlq/internal/colstore"
	"wlq/internal/core/eval"
	"wlq/internal/core/incident"
	"wlq/internal/core/pattern"
	"wlq/internal/core/rewrite"
	"wlq/internal/flightrec"
	"wlq/internal/ingest"
	"wlq/internal/obs"
	"wlq/internal/resilience"
	"wlq/internal/shard"
	"wlq/internal/stats"
	"wlq/internal/wal"
	"wlq/internal/wlog"
)

// Defaults for the zero Config.
const (
	DefaultCacheSize = 256
	DefaultTimeout   = 10 * time.Second
	DefaultMaxBody   = 1 << 20 // 1 MiB
	// DefaultMaxInFlight is the admission controller's default concurrency
	// bound: generous next to GOMAXPROCS evaluation workers, tight enough
	// that a burst of Lemma 1 worst cases sheds instead of queueing without
	// bound.
	DefaultMaxInFlight = 64
	// DefaultFlightRecorderSize is the flight recorder's per-ring capacity.
	DefaultFlightRecorderSize = flightrec.DefaultSize
)

// Config tunes the service. The zero value serves with merge joins,
// GOMAXPROCS workers, a 256-entry cache, a 10s per-request timeout and a
// 1 MiB request-body cap.
type Config struct {
	// Workers is the per-query evaluation parallelism (0 = GOMAXPROCS).
	Workers int
	// CacheSize is the maximum number of cached (plan, result) entries;
	// 0 means DefaultCacheSize, negative disables caching.
	CacheSize int
	// Timeout bounds each request's evaluation time (0 = DefaultTimeout).
	// Requests may lower it per call, never raise it.
	Timeout time.Duration
	// MaxBodyBytes caps the size of request bodies (0 = DefaultMaxBody).
	MaxBodyBytes int64
	// Strategy is the default join implementation (0 = merge).
	Strategy eval.Strategy
	// Logger, when non-nil, enables structured request logging (one Info
	// line per request) and the slow-query log. Nil disables both.
	Logger *slog.Logger
	// SlowQuery, when positive, logs a Warn line (and bumps the
	// slow_queries counter) for every query slower than the threshold.
	SlowQuery time.Duration
	// EnablePprof exposes the GET /debug/pprof/* profiling handlers.
	EnablePprof bool
	// MaxInFlight bounds concurrently served queries (admission control):
	// arrivals beyond the bound are shed immediately with 429 and a
	// Retry-After header instead of queueing behind a saturated worker
	// pool. 0 means DefaultMaxInFlight; negative disables shedding.
	MaxInFlight int
	// Budget caps each query evaluation's resources (comparisons, produced
	// incidents, wall time, result bytes); zero fields are unlimited. A
	// tripped budget maps to HTTP 422 with the partial per-operator cost
	// table attached. See docs/RESILIENCE.md for semantics and tuning.
	Budget resilience.Budget
	// MaxPredictedCost, when positive, is the pre-flight admission ceiling:
	// a query whose optimized plan's Lemma 1 cost estimate (rewrite
	// cost model) exceeds it is rejected with 422 before any evaluation
	// starts — the cost model tells us in advance which queries are
	// dangerous, so the worst ones never consume a worker at all.
	MaxPredictedCost float64
	// Loader re-reads a log's source spec for hot reload (POST /v1/reload,
	// and SIGHUP in cmd/wlq-serve). Nil disables reloading. The CLI passes
	// wlq.OpenLog.
	Loader func(spec string) (*wlog.Log, error)
	// Shards, when non-zero, evaluates every query shard-by-shard: the log
	// is partitioned into this many wid-range failure domains (negative =
	// GOMAXPROCS), each with its own budget slice, panic isolation, retry
	// loop and circuit breaker. A shard lost to a persistent fault is
	// excluded from the result instead of failing the query; the response
	// reports coverage via its completeness object (partial results are 206
	// when the request opts in with "partial": true, 502 otherwise).
	// 0 disables sharding (the single-domain paths).
	Shards int
	// ShardAttempts caps evaluation attempts per shard per query
	// (0 = shard.DefaultMaxAttempts).
	ShardAttempts int
	// BreakerThreshold opens a shard's circuit breaker after this many
	// consecutive failures (0 = shard.DefaultBreakerThreshold).
	BreakerThreshold int
	// BreakerCooldown is a tripped breaker's open → half-open delay
	// (0 = shard.DefaultBreakerCooldown).
	BreakerCooldown time.Duration
	// Columnar, when true, builds every loaded (and reloaded) log's
	// backend as the columnar internal/colstore store instead of the row
	// index: interned activity symbols and per-activity posting lists.
	// Answers are identical on either backend; see docs/STORAGE.md.
	Columnar bool
	// FlightRecorderSize is the query flight recorder's per-ring capacity:
	// the recorder keeps that many recent executions plus that many notable
	// (slow or failed) ones. 0 means DefaultFlightRecorderSize; negative
	// disables the recorder (and its GET /v1/queries endpoints).
	FlightRecorderSize int
	// WorkerMode serves the cluster worker endpoint (POST /v1/worker/query):
	// this instance evaluates coordinator-shipped plans against the wid set
	// its ring view assigns it. Worker traffic bypasses rewrite, caching and
	// the flight recorder — the coordinator owns the query lifecycle.
	WorkerMode bool
	// Cluster, when non-nil, runs this server as a cluster coordinator:
	// every query fans out over HTTP to the configured workers and the
	// answers merge through the same completeness contract as in-process
	// shards. Takes precedence over Shards (the network tier IS the shard
	// tier then). Set it via cmd/wlq-serve's -workers flag or directly in
	// tests; cluster.Config.Transport is the fault-injection seam.
	Cluster *cluster.Config
	// ProbeInterval paces the coordinator's background worker health probes
	// (0 = cluster.DefaultProbeInterval; negative disables probing, for
	// tests that drive ProbeOnce deterministically).
	ProbeInterval time.Duration
	// Adaptive enables the measured-selectivity cost model: each log gets a
	// statistics registry fed by successful complete evaluations, and the
	// optimizer ranks plans with the measured operator selectivities once
	// enough evidence accumulates (the Lemma 1 model constants until then).
	// Registries persist as <source>.stats.json next to file-backed logs
	// (see StatsFile) and survive hot reloads in memory regardless.
	Adaptive bool
	// StatsFile overrides the statistics snapshot path. Only meaningful
	// with Adaptive and a single log (every log would share the one file);
	// cmd/wlq-serve enforces that. Empty means the per-source default.
	StatsFile string
	// Ingest enables durable live ingestion: every registered log accepts
	// POST /v1/logs/{name}/append, each accepted record is written to a
	// per-log write-ahead log before it touches the in-memory index, and
	// startup/reload replay the WAL so acknowledged records survive a
	// process kill. Incompatible with WorkerMode and Cluster (a live log's
	// contents would silently diverge across the fleet); live logs also
	// bypass the in-process shard executor, whose wid-range partition is
	// computed once per (re)load. See docs/DURABILITY.md.
	Ingest bool
	// WALDir is the root directory for WAL segments; each log gets its own
	// subdirectory named after (a sanitized form of) the log name. Required
	// when Ingest is set.
	WALDir string
	// FsyncPolicy governs when WAL appends are flushed to stable storage
	// (zero value = wal.PolicyAlways: acknowledged means on disk).
	FsyncPolicy wal.Policy
	// FsyncInterval paces the background flush under wal.PolicyInterval
	// (0 = wal.DefaultFsyncInterval).
	FsyncInterval time.Duration
	// WALSegmentBytes is the rotation threshold per WAL segment file
	// (0 = wal.DefaultSegmentBytes).
	WALSegmentBytes int64
	// IngestQueue bounds concurrently admitted append requests per log;
	// arrivals beyond it are shed with 429 + Retry-After. 0 means
	// DefaultIngestQueue; negative disables the bound.
	IngestQueue int
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize == 0 {
		c.CacheSize = DefaultCacheSize
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBody
	}
	if c.Strategy == 0 {
		c.Strategy = eval.StrategyMerge
	}
	return c
}

// logEntry is one loaded (generation of a) log with its prebuilt backend
// (row index or columnar store, per Config.Columnar). An entry is
// immutable: hot reload replaces the pointer wholesale, so in-flight
// queries keep the consistent snapshot they resolved at lookup time.
type logEntry struct {
	name   string
	source string
	log    *wlog.Log
	ix     eval.Source
	valid  bool
	reason string // validation error text when !valid
	gen    uint64 // reload generation; part of the result-cache key
	// shardex is the log's sharded executor (nil when Config.Shards is 0).
	// It lives as long as the entry, so per-shard circuit-breaker history
	// persists across queries; a reload replaces it together with the index.
	shardex *shard.Executor
	// live is the log's durable ingest coordinator (nil unless
	// Config.Ingest). Unlike the rest of the entry it is long-lived shared
	// state: a hot reload rebases the SAME coordinator onto the fresh
	// snapshot (replaying its WAL on top) instead of replacing it, so the
	// WAL file handle and watermark survive reloads. For a live entry, ix is
	// the coordinator's monitor backend, and the query path brackets every
	// read of it with the monitor's RLock.
	live *ingest.Coordinator
}

// Server is the query service. Safe for concurrent use; logs are loaded
// before serving (AddLog) and replaced atomically by ReloadLogs afterwards.
type Server struct {
	cfg        Config
	admission  *resilience.Admission
	mu         sync.RWMutex
	logs       map[string]*logEntry
	names      []string          // registration order, for stable /v1/logs listings
	quarantine map[string]string // log name -> last reload error (entry kept at last-good)
	cache      *lru
	metrics    *metrics

	// coord is the cluster coordinator (nil for single-node service). It is
	// long-lived shared state like the shard executors: per-worker breakers
	// and health verdicts persist across queries and hot reloads.
	coord *cluster.Coordinator

	// flight is the query flight recorder (nil when disabled by a negative
	// Config.FlightRecorderSize). It is append-only shared state, never
	// replaced, so captures from before and after a hot reload coexist,
	// distinguished by their generation field.
	flight *flightrec.Recorder

	// stats maps log name -> statistics registry state (nil map entries
	// never occur; the map itself is empty unless Config.Adaptive). Guarded
	// by mu. Registries are NOT rebuilt on hot reload: measured behavior is
	// a property of the log's workload, and the snapshot on disk is the
	// authority across restarts.
	stats map[string]*logStats

	// reloadMu guards reloadCall, the single-flight slot for ReloadLogs:
	// concurrent reload requests (SIGHUP racing POST /v1/reload) join the
	// in-progress pass instead of starting their own.
	reloadMu   sync.Mutex
	reloadCall *reloadCall
}

// New creates a Server with no logs loaded. It panics on an invalid
// Config.Cluster (no workers, or duplicate worker URLs): that is a
// construction-time configuration error, and cmd/wlq-serve validates the
// flag before building the Config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	capacity := cfg.MaxInFlight
	if capacity == 0 {
		capacity = DefaultMaxInFlight
	}
	var flight *flightrec.Recorder
	if cfg.FlightRecorderSize >= 0 {
		flight = flightrec.New(cfg.FlightRecorderSize) // 0 resolves to the default size
	}
	var coord *cluster.Coordinator
	if cfg.Cluster != nil {
		var err error
		if coord, err = cluster.New(*cfg.Cluster); err != nil {
			panic(fmt.Sprintf("server: invalid cluster config: %v", err))
		}
	}
	// Live ingestion mutates a single node's log; worker and coordinator
	// roles assume every node serves an identical immutable snapshot.
	// cmd/wlq-serve validates the flags; this is the same construction-time
	// backstop as an invalid cluster config.
	if cfg.Ingest && (cfg.WorkerMode || cfg.Cluster != nil) {
		panic("server: Config.Ingest is incompatible with WorkerMode and Cluster")
	}
	return &Server{
		cfg:        cfg,
		admission:  resilience.NewAdmission(capacity), // nil (unlimited) when negative
		logs:       make(map[string]*logEntry),
		quarantine: make(map[string]string),
		cache:      newLRU(cfg.CacheSize),
		metrics:    newMetrics(),
		coord:      coord,
		flight:     flight,
		stats:      make(map[string]*logStats),
	}
}

// Coordinator returns the cluster coordinator, or nil for a single-node
// server. Tests use it to drive health probes deterministically
// (cluster.Coordinator.ProbeOnce); cmd/wlq-serve only needs StartClusterProbing.
func (s *Server) Coordinator() *cluster.Coordinator { return s.coord }

// StartClusterProbing launches the coordinator's background worker health
// probes until ctx is cancelled. No-op on a single-node server or with a
// negative Config.ProbeInterval (tests probe explicitly instead).
func (s *Server) StartClusterProbing(ctx context.Context) {
	if s.coord == nil || s.cfg.ProbeInterval < 0 {
		return
	}
	s.coord.StartProbing(ctx, s.cfg.ProbeInterval)
}

// logStats is one log's adaptive cost-model state: the registry and the
// snapshot path it persists to ("" = in-memory only, for generated logs).
type logStats struct {
	reg  *stats.Registry
	path string
}

// statsFor returns a log's statistics registry, or nil when the adaptive
// cost model is off (or the log is unknown).
func (s *Server) statsFor(name string) *stats.Registry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if ls, ok := s.stats[name]; ok {
		return ls.reg
	}
	return nil
}

// saveStats persists a log's registry to its snapshot path, if it has one.
// Failures are logged, not fatal: statistics are an optimization, and the
// next successful query retries the write.
func (s *Server) saveStats(name string) {
	s.mu.RLock()
	ls := s.stats[name]
	s.mu.RUnlock()
	if ls == nil || ls.path == "" {
		return
	}
	if err := ls.reg.Save(ls.path); err != nil && s.cfg.Logger != nil {
		s.cfg.Logger.Error("stats snapshot write failed", "log", name, "path", ls.path, "error", err)
	}
}

// backendName names the configured storage backend for captures and metrics.
func (s *Server) backendName() string {
	if s.cfg.Columnar {
		return "columnar"
	}
	return "row"
}

// AddLog registers a log under a name and builds its index. source is a
// human-readable origin (file path or generator spec) echoed by /v1/logs.
// The log's Definition 2 validity is checked and reported, but even an
// invalid log is served (the index tolerates it; /v1/logs flags it).
func (s *Server) AddLog(name, source string, l *wlog.Log) error {
	if name == "" {
		return errors.New("server: empty log name")
	}
	if l == nil {
		return fmt.Errorf("server: nil log %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.logs[name]; dup {
		return fmt.Errorf("server: duplicate log name %q", name)
	}
	e := &logEntry{name: name, source: source, log: l, valid: true}
	if err := l.Validate(); err != nil {
		e.valid, e.reason = false, err.Error()
	}
	if s.cfg.Ingest {
		// A live log must start from a clean snapshot: the WAL replays on
		// top of it and the monitor enforces Definition 2 from record one,
		// so the tolerate-and-flag posture of static serving does not apply.
		if !e.valid {
			return fmt.Errorf("server: log %q cannot accept appends: %s", name, e.reason)
		}
		coord, rec, err := s.openIngest(name, l)
		if err != nil {
			return fmt.Errorf("server: log %q: %w", name, err)
		}
		e.live = coord
		e.ix = coord.Monitor().Source()
		if s.cfg.Logger != nil && (rec.Records > 0 || rec.TornBytes > 0) {
			s.cfg.Logger.Info("wal recovered", "log", name,
				"records", rec.Records, "last_lsn", rec.LastLSN,
				"segments", rec.Segments, "torn_bytes", rec.TornBytes)
		}
	} else {
		e.ix = s.newBackend(l)
		e.shardex = s.newShardExecutor(e.ix)
	}
	if s.cfg.Adaptive {
		path := s.cfg.StatsFile
		if path == "" {
			path = stats.PathFor(source)
		}
		reg := stats.New()
		if path != "" {
			loaded, err := stats.Load(path)
			if err != nil {
				// A corrupt snapshot must not silently discard accumulated
				// statistics; the operator decides (delete the file, or fix it).
				if e.live != nil {
					e.live.Close()
				}
				return fmt.Errorf("server: log %q: %w", name, err)
			}
			reg = loaded
		}
		s.stats[name] = &logStats{reg: reg, path: path}
	}
	s.logs[name] = e
	s.names = append(s.names, name)
	return nil
}

// newBackend builds the configured storage backend for a log.
func (s *Server) newBackend(l *wlog.Log) eval.Source {
	if s.cfg.Columnar {
		return colstore.Build(l)
	}
	return eval.NewIndex(l)
}

// newShardExecutor builds a log's sharded executor from the server config,
// or nil when sharded execution is disabled.
func (s *Server) newShardExecutor(ix eval.Source) *shard.Executor {
	// A coordinator's failure domains are the workers; in-process shards on
	// top would partition twice for no added isolation.
	if s.cfg.Shards == 0 || s.coord != nil {
		return nil
	}
	n := s.cfg.Shards
	if n < 0 {
		n = 0 // shard.Partition resolves 0 to GOMAXPROCS
	}
	return shard.NewExecutor(ix, shard.Config{
		Shards:           n,
		MaxAttempts:      s.cfg.ShardAttempts,
		BreakerThreshold: s.cfg.BreakerThreshold,
		BreakerCooldown:  s.cfg.BreakerCooldown,
	})
}

// openBreakers sums the not-closed circuit breakers across every loaded
// log's shard executor — the "poisoned shards" gauge at /metrics.
func (s *Server) openBreakers() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	open := 0
	for _, e := range s.logs {
		if e.shardex != nil {
			open += e.shardex.OpenBreakers()
		}
	}
	return open
}

// lookup resolves a log name; a single loaded log may be addressed with an
// empty name (the common one-log deployment).
func (s *Server) lookup(name string) (*logEntry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if name == "" && len(s.names) == 1 {
		return s.logs[s.names[0]], nil
	}
	e, ok := s.logs[name]
	if !ok {
		if name == "" {
			return nil, fmt.Errorf("log name required (loaded: %d logs)", len(s.names))
		}
		return nil, fmt.Errorf("unknown log %q", name)
	}
	return e, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/queries", s.handleFlightList)
	mux.HandleFunc("GET /v1/queries/{id}", s.handleFlightGet)
	mux.HandleFunc("GET /v1/explain", s.handleExplain)
	mux.HandleFunc("GET /v1/logs", s.handleLogs)
	mux.HandleFunc("POST /v1/reload", s.handleReload)
	if s.cfg.Ingest {
		mux.HandleFunc("POST /v1/logs/{name}/append", s.handleAppend)
	}
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.cfg.WorkerMode {
		mux.HandleFunc("POST /v1/worker/query", s.handleWorkerQuery)
	}
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	// Panic isolation wraps every handler: a panicking request becomes a
	// 500 with an incident id while the process keeps serving. Request
	// logging sits outermost so recovered panics are still logged with
	// their status code.
	h := s.recoverPanics(mux)
	if s.cfg.Logger != nil {
		return s.logRequests(h)
	}
	return h
}

// recoverPanics converts a handler panic into a 500 carrying an incident id
// (logged alongside the stack) instead of killing the connection — and, with
// the default http.Server behavior, filling the error log with stack traces.
// http.ErrAbortHandler is re-raised: it is the sanctioned way to abort a
// response and must keep its net/http semantics.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			pe := resilience.NewPanicError(v)
			s.metrics.panicsRecovered.Add(1)
			if s.cfg.Logger != nil {
				s.cfg.Logger.Error("panic recovered in handler",
					"incident_id", pe.IncidentID,
					"method", r.Method,
					"path", r.URL.Path,
					"panic", fmt.Sprint(v),
					"stack", string(pe.Stack),
				)
			}
			writeJSON(w, http.StatusInternalServerError, errorDoc{
				Error:      "internal server error",
				IncidentID: pe.IncidentID,
			})
		}()
		next.ServeHTTP(w, r)
	})
}

// handleHealthz is the liveness probe: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 200 once at least one log is loaded
// and indexed (AddLog builds the index synchronously, so a registered log
// is a queryable log), 503 before that — load balancers keep the instance
// out of rotation until it can actually answer queries.
// A quarantined log (a reload that failed validation or loading; the
// last-good snapshot is still served) does not flip readiness, but the
// degradation is surfaced in the body so operators see it on the probe
// they already watch.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	loaded := len(s.logs)
	quarantined := make(map[string]string, len(s.quarantine))
	for name, reason := range s.quarantine {
		quarantined[name] = reason
	}
	s.mu.RUnlock()
	if loaded == 0 {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"status": "loading", "logs_loaded": 0})
		return
	}
	doc := map[string]any{"status": "ready", "logs_loaded": loaded}
	if len(quarantined) > 0 {
		doc["status"] = "degraded"
		doc["quarantined"] = quarantined
	}
	// A coordinator with lost workers (probe-unhealthy, or breaker not
	// closed) still answers — degraded, with partial coverage — so like a
	// quarantined log this surfaces on the probe without flipping readiness.
	if s.coord != nil {
		doc["workers"] = s.coord.Health()
		if lost := s.coord.Lost(); len(lost) > 0 {
			doc["status"] = "degraded"
			doc["workers_lost"] = lost
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

// errorDoc is the JSON error envelope. Beyond the message, resilience
// failures attach machine-readable context: the incident id of a recovered
// panic (500), the retry hint of a shed query (429), the tripped budget
// dimension with its partial per-operator cost table (422), or the predicted
// cost versus the admission ceiling (422 pre-flight).
type errorDoc struct {
	Error             string        `json:"error"`
	IncidentID        string        `json:"incident_id,omitempty"`
	RetryAfterSeconds int           `json:"retry_after_seconds,omitempty"`
	BudgetDimension   string        `json:"budget_dimension,omitempty"`
	BudgetLimit       uint64        `json:"budget_limit,omitempty"`
	BudgetMeasured    uint64        `json:"budget_measured,omitempty"`
	PredictedCost     float64       `json:"predicted_cost,omitempty"`
	CostCeiling       float64       `json:"cost_ceiling,omitempty"`
	CostTable         []obs.CostRow `json:"cost_table,omitempty"`
	// Completeness accompanies a 502 strict-mode rejection of a partial
	// result: what the result would have covered had the client opted into
	// degraded mode with "partial": true.
	Completeness *shard.Completeness `json:"completeness,omitempty"`
	// Append failures (POST /v1/logs/{name}/append): Record names the
	// offending record (422 discipline rejection, or the unpersisted record
	// of a durability failure); Accepted counts the records of the same
	// request that were already durably applied — they are not rolled back
	// — and LastLSN is the watermark to resume from.
	Record   string `json:"record,omitempty"`
	Accepted int    `json:"accepted,omitempty"`
	LastLSN  uint64 `json:"last_lsn,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorDoc{Error: fmt.Sprintf(format, args...)})
}

// queryRequest is the POST /v1/query body.
type queryRequest struct {
	// Log names the loaded log to query (optional when one log is loaded).
	Log string `json:"log"`
	// Query is the incident-pattern query text.
	Query string `json:"query"`
	// Mode selects the answer shape: "incidents" (default), "exists",
	// "count", or "instances".
	Mode string `json:"mode,omitempty"`
	// Strategy overrides the join implementation: "merge" or "naive".
	Strategy string `json:"strategy,omitempty"`
	// NoOptimize evaluates the pattern exactly as written, bypassing both
	// the Theorem 2–5 rewriter and the cache.
	NoOptimize bool `json:"no_optimize,omitempty"`
	// Limit caps (best effort) incidents per operator per instance.
	// Results depend on it, so it is part of the cache key.
	Limit int `json:"limit,omitempty"`
	// Workers overrides the per-query parallelism (capped by the server's
	// configured value).
	Workers int `json:"workers,omitempty"`
	// MaxResults truncates the incidents array in the response (the full
	// set is still computed and cached); 0 returns everything.
	MaxResults int `json:"max_results,omitempty"`
	// TimeoutMS lowers the per-request timeout; it cannot raise it above
	// the server's configured value.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Trace enables execution tracing: the response carries the span tree
	// and the per-operator Lemma 1 cost table. Traced queries bypass the
	// result cache (a cached result has no fresh evaluation to measure).
	Trace bool `json:"trace,omitempty"`
	// Partial opts into degraded mode on a sharded server: when shards are
	// lost to faults, accept the surviving shards' incidents as a 206
	// response with a completeness object instead of a 502. Ignored when
	// the server does not shard (results are then always complete).
	Partial bool `json:"partial,omitempty"`
}

// incidentDoc is the wire form of one incident.
type incidentDoc struct {
	WID  uint64   `json:"wid"`
	Seqs []uint64 `json:"seqs"`
}

// queryResponse is the POST /v1/query result.
type queryResponse struct {
	Log       string        `json:"log"`
	Query     string        `json:"query"`
	Canonical string        `json:"canonical"`
	Plan      string        `json:"plan"`
	Strategy  string        `json:"strategy"`
	Mode      string        `json:"mode"`
	Cached    bool          `json:"cached"`
	ElapsedUS int64         `json:"elapsed_us"`
	Count     int           `json:"count"`
	Exists    bool          `json:"exists"`
	Instances []uint64      `json:"instances,omitempty"`
	Incidents []incidentDoc `json:"incidents,omitempty"`
	Truncated bool          `json:"truncated,omitempty"`
	// Trace is present when the request set "trace": true — the span tree
	// and per-operator cost table of this evaluation.
	Trace *obs.QueryTrace `json:"trace,omitempty"`
	// Partial is true when shards were lost and the result covers only the
	// surviving wid ranges (HTTP 206; requires "partial": true in the
	// request). Completeness is present on every sharded evaluation and
	// says exactly which wid ranges the result covers.
	Partial      bool                `json:"partial,omitempty"`
	Completeness *shard.Completeness `json:"completeness,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.metrics.queriesTotal.Add(1)
	// Admission control: shed immediately rather than queue behind a
	// saturated worker pool — a bounded, fast 429 beats an unbounded, slow
	// 504 (clients can back off; goodput is preserved under overload).
	if !s.admission.TryAcquire() {
		s.metrics.queriesShed.Add(1)
		retry := retryAfterSeconds(s.admission.RetryAfter())
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeJSON(w, http.StatusTooManyRequests, errorDoc{
			Error: fmt.Sprintf("server saturated: %d queries in flight (limit %d)",
				s.admission.InFlight(), s.admission.Capacity()),
			RetryAfterSeconds: retry,
		})
		return
	}
	defer s.admission.Release()
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)
	started := time.Now()

	// Latency is observed on EVERY exit path — parse errors, timeouts and
	// evaluation failures included — so the percentiles and the histogram
	// are not survivorship-biased toward successful queries. The slow-query
	// log rides on the same hook, and so does the flight recorder: every
	// exit path with a known query text lands in it (slow and failed
	// executions additionally earn a slot in its notable ring).
	var req queryRequest
	var capture flightrec.Capture
	defer func() {
		elapsed := time.Since(started)
		s.metrics.observeLatency(elapsed)
		slow := s.cfg.SlowQuery > 0 && elapsed >= s.cfg.SlowQuery
		if slow {
			s.metrics.slowQueries.Add(1)
			if s.cfg.Logger != nil {
				s.cfg.Logger.Warn("slow query",
					"query", req.Query,
					"log", req.Log,
					"duration_ms", float64(elapsed.Microseconds())/1000,
					"threshold_ms", float64(s.cfg.SlowQuery.Microseconds())/1000,
				)
			}
		}
		if s.flight != nil && req.Query != "" {
			capture.Time = time.Now()
			capture.Query = req.Query
			capture.Backend = s.backendName()
			capture.ElapsedUS = elapsed.Microseconds()
			capture.Slow = slow
			if capture.Status == "" {
				capture.Status = flightrec.StatusOK
				capture.HTTPStatus = http.StatusOK
			}
			s.flight.Record(capture)
		}
	}()
	// capFail stamps the capture's outcome on an error exit; the deferred
	// hook above records it.
	capFail := func(st flightrec.Status, code int, msg string) {
		capture.Status = st
		capture.HTTPStatus = code
		capture.Error = msg
	}

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.metrics.queryErrors.Add(1)
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return
		}
		s.metrics.queryErrors.Add(1)
		writeError(w, http.StatusBadRequest, "malformed request: %v", err)
		return
	}
	if req.Query == "" {
		s.metrics.queryErrors.Add(1)
		writeError(w, http.StatusBadRequest, "missing query")
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = "incidents"
	}
	switch mode {
	case "incidents", "exists", "count", "instances":
	default:
		s.metrics.queryErrors.Add(1)
		capFail(flightrec.StatusError, http.StatusBadRequest, "unknown mode "+mode)
		writeError(w, http.StatusBadRequest,
			"unknown mode %q (want incidents, exists, count or instances)", mode)
		return
	}
	strategy, err := parseStrategy(req.Strategy, s.cfg.Strategy)
	if err != nil {
		s.metrics.queryErrors.Add(1)
		capFail(flightrec.StatusError, http.StatusBadRequest, err.Error())
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Limit < 0 || req.Workers < 0 || req.MaxResults < 0 || req.TimeoutMS < 0 {
		s.metrics.queryErrors.Add(1)
		capFail(flightrec.StatusError, http.StatusBadRequest, "negative request parameter")
		writeError(w, http.StatusBadRequest, "limit, workers, max_results and timeout_ms must be >= 0")
		return
	}
	entry, err := s.lookup(req.Log)
	if err != nil {
		s.metrics.queryErrors.Add(1)
		capFail(flightrec.StatusError, http.StatusNotFound, err.Error())
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	capture.Log = entry.name
	capture.Generation = entry.gen
	capture.Sharded = entry.shardex != nil
	// A live log's backend mutates under appends; freeze it for the whole
	// request — planning, evaluation, AND the cache put. Holding the read
	// lock across the put closes the stale-entry race: an append can only
	// take the write lock (and so run its delta invalidation) after this
	// request's result — computed from the pre-append view — is already in
	// the cache, where the invalidation sweep will find it.
	if entry.live != nil {
		mon := entry.live.Monitor()
		mon.RLock()
		defer mon.RUnlock()
		capture.IngestLSN = mon.LastLSNLocked()
	}

	// The trace is created before parsing so the parse span covers it. With
	// the flight recorder on, EVERY execution is traced internally — the
	// capture carries the span tree and cost table whether or not the client
	// asked for them — but only an explicit "trace": true puts the trace in
	// the response (and bypasses the result cache to guarantee fresh
	// measurements; the internal trace does not change caching semantics).
	var qtr *obs.Trace
	if req.Trace || s.flight != nil {
		qtr = obs.NewTrace("query")
	}

	sp := qtr.StartSpan("parse")
	p, err := pattern.Parse(req.Query)
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		s.metrics.queryErrors.Add(1)
		capFail(flightrec.StatusError, http.StatusBadRequest, "parse error: "+err.Error())
		writeError(w, http.StatusBadRequest, "parse error: %v", err)
		return
	}
	sp.SetAttr("pattern", p.String())
	sp.SetAttr("atoms", len(pattern.Atoms(p)))
	sp.SetAttr("operators", pattern.Operators(p))
	sp.End()

	sp = qtr.StartSpan("canonicalize")
	canonical := pattern.CanonicalKey(p)
	sp.SetAttr("key", canonical)
	sp.End()
	capture.Canonical = canonical

	// The reload generation is part of the key, so a hot reload makes every
	// pre-reload entry unreachable (LRU pressure ages them out) without an
	// invalidation sweep.
	cacheKey := fmt.Sprintf("%s\x00gen=%d\x00%s\x00limit=%d", entry.name, entry.gen, canonical, req.Limit)
	// Traced queries bypass the result cache: a cached result carries no
	// fresh evaluation to measure, so a hit would return an empty or stale
	// cost table.
	cacheable := !req.NoOptimize && !req.Trace

	var (
		ce         *cacheEntry
		cached     bool
		queryTrace *obs.QueryTrace
		comp       *shard.Completeness // non-nil iff the query ran sharded
	)
	if cacheable {
		ce, cached = s.cache.get(cacheKey)
	}
	if cached {
		s.metrics.cacheHits.Add(1)
		capture.Cached = true
		capture.Plan = ce.plan.String()
		if qtr != nil {
			// A cache hit ran no evaluation: the capture's trace carries the
			// parse/canonicalize spans but no eval spans or cost table.
			qtr.End()
			capture.Trace = &obs.QueryTrace{
				Query:    req.Query,
				Plan:     ce.plan.String(),
				Strategy: strategy.String(),
				Spans:    qtr.Root(),
			}
		}
	} else {
		if cacheable {
			s.metrics.cacheMisses.Add(1)
		}
		// The adaptive cost model: rank plans with the log's measured
		// selectivities when a statistics registry is attached, the Lemma 1
		// model constants otherwise. Either way the rewrite laws applied are
		// identical — answers cannot change, only plan shape.
		sel := rewrite.ModelSelectivities()
		if reg := s.statsFor(entry.name); reg != nil {
			sel = reg.Selectivities()
		}
		capture.Planner = plannerName(sel)
		plan := pattern.Node(p)
		var trace rewrite.Trace
		if req.NoOptimize {
			trace = rewrite.Trace{Input: p, Output: p}
		} else {
			sp = qtr.StartSpan("rewrite")
			plan, trace = rewrite.ExplainWith(p, entry.ix, sel)
			obs.RewriteSpans(sp, trace)
			sp.End()
			if sel.Measured() {
				s.metrics.adaptivePlans.Add(1)
			} else {
				s.metrics.staticPlans.Add(1)
			}
		}
		capture.Plan = plan.String()

		// Pre-flight admission: the cost model prices the plan the service
		// will actually run, so queries predicted to blow past the ceiling
		// are rejected before they consume a single worker.
		if s.cfg.MaxPredictedCost > 0 {
			predicted := rewrite.NewEstimatorWith(entry.ix, sel).Cost(plan)
			if predicted > s.cfg.MaxPredictedCost {
				s.metrics.costRejected.Add(1)
				capFail(flightrec.StatusError, http.StatusUnprocessableEntity,
					fmt.Sprintf("predicted cost %.3g exceeds ceiling %.3g", predicted, s.cfg.MaxPredictedCost))
				writeJSON(w, http.StatusUnprocessableEntity, errorDoc{
					Error: fmt.Sprintf(
						"query rejected before evaluation: predicted cost %.3g exceeds the ceiling %.3g (tighten the pattern, or raise -max-predicted-cost)",
						predicted, s.cfg.MaxPredictedCost),
					PredictedCost: predicted,
					CostCeiling:   s.cfg.MaxPredictedCost,
				})
				return
			}
		}

		meter := eval.NewMeter(plan)
		opts := eval.Options{Strategy: strategy, Limit: req.Limit, Meter: meter, Budget: s.cfg.Budget}
		workers := s.resolveWorkers(req.Workers, entry.ix)
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
		defer cancel()
		if qtr != nil {
			ctx = obs.WithTrace(ctx, qtr)
		}

		sp = qtr.StartSpan("eval")
		var qs eval.QueryStats
		var set *incident.Set
		// Distributed runs fill these from the fan-out: the fleet-aggregated
		// Lemma 1 table (workers measured, coordinator sums) and the
		// propagated trace id.
		var fleetTable []obs.CostRow
		var distTraceID string
		if s.coord != nil {
			// Distributed execution: the coordinator fans the optimized plan
			// out to the workers owning wids (consistent hash placement) and
			// merges their answers; a lost worker degrades the result to a
			// partial instead of failing the query, under the same
			// completeness contract as in-process shards.
			s.metrics.clusterQueries.Add(1)
			var fan cluster.Fanout
			set, comp, fan, err = s.coord.Execute(ctx, entry.name, plan, cluster.ExecOptions{
				WIDs:     entry.ix.WIDs(),
				Strategy: strategy.String(),
				Limit:    req.Limit,
				Budget:   s.cfg.Budget,
			}, &qs)
			capture.Workers = workerSummaryOf(fan)
			fleetTable = fan.CostTable
			distTraceID = fan.TraceID
			if comp != nil {
				s.metrics.widsExcluded.Add(uint64(comp.ExcludedWIDs))
			}
		} else if entry.shardex != nil {
			// Sharded execution: each shard is its own failure domain with a
			// budget slice, retry loop and circuit breaker; a lost shard
			// yields a partial result instead of a failed query.
			s.metrics.shardedQueries.Add(1)
			set, comp, err = entry.shardex.Execute(ctx, plan, opts, &qs)
			s.metrics.shardRetries.Add(uint64(qs.ShardRetries))
			if comp != nil {
				s.metrics.shardsFailed.Add(uint64(comp.Failed))
				s.metrics.shardsSkipped.Add(uint64(comp.Skipped))
				s.metrics.widsExcluded.Add(uint64(comp.ExcludedWIDs))
			}
		} else {
			ev := eval.New(entry.ix, opts)
			s.metrics.busyWorkers.Add(int64(workers))
			set, err = ev.EvalParallelCtx(ctx, plan, workers, &qs)
			s.metrics.busyWorkers.Add(int64(-workers))
		}
		s.metrics.instancesEvaluated.Add(uint64(qs.Instances))
		s.metrics.recordMeter(meter)
		if err != nil {
			sp.SetAttr("error", err.Error())
			sp.End()
			// Error paths return before cache.put: a timeout, budget abort
			// or fault never poisons the result cache (see TestCacheNotPoisoned*).
			// The capture of a failed evaluation still carries the partial
			// cost table: every operator that completed before the abort is
			// accounted, which is usually exactly what explains the failure.
			qtr.End()
			if qtr != nil {
				ct := obs.CostTableWith(plan, meter, sel)
				if len(fleetTable) > 0 {
					// Distributed: the workers measured; the local meter is
					// empty. A degraded run's fleet table still reflects only
					// the merged (complete) worker answers.
					ct = fleetTable
				}
				if distTraceID != "" {
					obs.StampWorker(qtr.Root(), "coordinator")
				}
				capture.Trace = &obs.QueryTrace{
					Query:     req.Query,
					Plan:      plan.String(),
					Strategy:  strategy.String(),
					TraceID:   distTraceID,
					Spans:     qtr.Root(),
					CostTable: ct,
				}
			}
			var be *resilience.BudgetError
			var pe *resilience.PanicError
			switch {
			case errors.As(err, &be):
				// 422 with the partial cost table: every operator that
				// completed before the abort is accounted, so the client
				// sees where the budget went.
				s.metrics.budgetAborts.Add(1)
				capFail(flightrec.StatusBudget, http.StatusUnprocessableEntity, be.Error())
				writeJSON(w, http.StatusUnprocessableEntity, errorDoc{
					Error:           fmt.Sprintf("query aborted: %v", be),
					BudgetDimension: be.Dimension,
					BudgetLimit:     be.Limit,
					BudgetMeasured:  be.Measured,
					CostTable:       obs.CostTableWith(plan, meter, sel),
				})
			case errors.As(err, &pe):
				s.metrics.panicsRecovered.Add(1)
				if s.cfg.Logger != nil {
					s.cfg.Logger.Error("panic recovered in evaluation",
						"incident_id", pe.IncidentID,
						"query", req.Query,
						"panic", fmt.Sprint(pe.Value),
						"stack", string(pe.Stack),
					)
				}
				capFail(flightrec.StatusPanic, http.StatusInternalServerError,
					"evaluation fault (incident "+pe.IncidentID+")")
				writeJSON(w, http.StatusInternalServerError, errorDoc{
					Error:      "evaluation fault; the query was isolated and the service keeps serving",
					IncidentID: pe.IncidentID,
				})
			case s.coord != nil && ctx.Err() == nil:
				// Whole-fleet loss: every shard-holding worker failed or was
				// skipped by its breaker (single-worker losses degrade to a
				// partial above, not an error). 502: the upstreams failed us.
				// The completeness names exactly what was lost.
				s.metrics.queryErrors.Add(1)
				capFail(flightrec.StatusError, http.StatusBadGateway,
					"cluster evaluation failed: "+err.Error())
				capture.Completeness = comp
				writeJSON(w, http.StatusBadGateway, errorDoc{
					Error:        fmt.Sprintf("cluster evaluation failed: %v", err),
					Completeness: comp,
				})
			case errors.Is(err, context.DeadlineExceeded):
				s.metrics.queryTimeouts.Add(1)
				capFail(flightrec.StatusTimeout, http.StatusGatewayTimeout,
					fmt.Sprintf("query exceeded the %v evaluation timeout", s.timeout(req.TimeoutMS)))
				writeError(w, http.StatusGatewayTimeout,
					"query exceeded the %v evaluation timeout", s.timeout(req.TimeoutMS))
			default:
				s.metrics.queryErrors.Add(1)
				capFail(flightrec.StatusError, http.StatusInternalServerError, err.Error())
				writeError(w, http.StatusInternalServerError, "evaluation aborted: %v", err)
			}
			return
		}
		sp.SetAttr("strategy", strategy.String())
		sp.SetAttr("workers", qs.Workers)
		sp.SetAttr("instances", qs.Instances)
		sp.SetAttr("incidents", qs.Incidents)
		obs.EvalSpansWith(sp, plan, meter, sel)
		sp.End()
		qtr.End()
		if qtr != nil {
			// Built whenever an internal trace exists (flight recorder on or
			// trace requested); attached to the response only on request.
			ct := obs.CostTableWith(plan, meter, sel)
			if len(fleetTable) > 0 {
				ct = fleetTable
			}
			if distTraceID != "" {
				// Every locally recorded span of a stitched distributed trace
				// gets coordinator attribution; grafted subtrees keep the
				// worker stamp they arrived with.
				obs.StampWorker(qtr.Root(), "coordinator")
			}
			queryTrace = &obs.QueryTrace{
				Query:     req.Query,
				Plan:      plan.String(),
				Strategy:  strategy.String(),
				TraceID:   distTraceID,
				Spans:     qtr.Root(),
				CostTable: ct,
			}
			capture.Trace = queryTrace
		}
		// Strict mode: an incomplete result the client did not opt into is a
		// 502 (the upstream shards failed us), carrying the completeness
		// object so the caller sees what degraded mode would have returned.
		if comp != nil && !comp.Complete {
			s.metrics.partialResults.Add(1)
			if !req.Partial {
				s.metrics.queryErrors.Add(1)
				capFail(flightrec.StatusPartial, http.StatusBadGateway,
					fmt.Sprintf("partial result rejected: %d of %d shards lost", comp.Failed+comp.Skipped, comp.Shards))
				capture.Completeness = comp
				writeJSON(w, http.StatusBadGateway, errorDoc{
					Error: fmt.Sprintf(
						"partial result: %d of %d shards lost (%d wids excluded); set \"partial\": true to accept degraded results",
						comp.Failed+comp.Skipped, comp.Shards, comp.ExcludedWIDs),
					Completeness: comp,
				})
				return
			}
		}
		// Statistics hygiene: only a complete, successful evaluation feeds
		// the selectivity registry. Partial results (lost shards), budget
		// aborts, panics and timeouts all exited above — their truncated
		// output counts would read as selectivity and poison later plans.
		// Distributed runs obey the same contract with a deferred flush:
		// workers never flush their own registries (they cannot know the
		// query's final disposition); they carry their measurements back in
		// the wire cost table, and only here — where a degraded 206 is
		// distinguishable from a complete answer — does the fleet table feed
		// the registry.
		if reg := s.statsFor(entry.name); reg != nil && (comp == nil || comp.Complete) {
			if s.coord == nil {
				meter.Flush(reg)
				s.saveStats(entry.name)
			} else if ns := nodeStatsFromCostRows(plan, fleetTable); ns != nil {
				reg.ObserveMeter(ns)
				s.saveStats(entry.name)
			}
		}
		// The log name and the plan's atoms tag the entry for delta
		// invalidation under live ingestion: an append drops exactly the
		// entries whose answers could include the new record.
		ce = &cacheEntry{plan: plan, trace: trace, set: set,
			log: entry.name, atoms: pattern.Atoms(plan)}
		// A partial result is never cached: a later query must not be served
		// an excluded wid range's absence as if it were evaluated truth, and
		// the shards may well recover before the entry would age out.
		if cacheable && (comp == nil || comp.Complete) {
			s.cache.put(cacheKey, ce)
		}
	}

	resp := queryResponse{
		Log:       entry.name,
		Query:     req.Query,
		Canonical: canonical,
		Plan:      ce.plan.String(),
		Strategy:  strategy.String(),
		Mode:      mode,
		Cached:    cached,
		Count:     ce.set.Len(),
		Exists:    ce.set.Len() > 0,
	}
	if req.Trace {
		// The internal always-on trace (flight recorder) is captured above;
		// the response carries it only when explicitly requested.
		resp.Trace = queryTrace
	}
	resp.Completeness = comp
	resp.Partial = comp != nil && !comp.Complete
	switch mode {
	case "instances":
		resp.Instances = ce.set.WIDs()
	case "incidents":
		incs := ce.set.Incidents()
		if req.MaxResults > 0 && len(incs) > req.MaxResults {
			incs = incs[:req.MaxResults]
			resp.Truncated = true
		}
		docs := make([]incidentDoc, len(incs))
		for i, inc := range incs {
			docs[i] = incidentDoc{WID: inc.WID(), Seqs: inc.Seqs()}
		}
		resp.Incidents = docs
		s.metrics.incidentsReturned.Add(uint64(len(docs)))
	}
	resp.ElapsedUS = time.Since(started).Microseconds()
	code := http.StatusOK
	capture.Status = flightrec.StatusOK
	if resp.Partial {
		// 206: a well-formed answer covering only part of the log, as the
		// request's "partial": true accepted.
		code = http.StatusPartialContent
		capture.Status = flightrec.StatusPartial
	}
	capture.HTTPStatus = code
	capture.Completeness = comp
	writeJSON(w, code, resp)
}

// plannerName labels which cost model ranked a plan, for captures and the
// adaptive/static plan counters.
func plannerName(sel rewrite.Selectivities) string {
	if sel.Measured() {
		return "adaptive"
	}
	return "static"
}

// retryAfterSeconds converts an advisory retry delay to the whole-second
// Retry-After value. The delay is rounded UP (a sub-second hint must not
// truncate to "retry immediately", which under saturation synchronizes
// every shed client into a retry stampede), floored at 1 second, and
// spread with up to one second of jitter so a burst of simultaneous 429s
// does not come back as a burst of simultaneous retries.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs + mrand.Intn(2)
}

// timeout resolves the effective per-request timeout: the configured bound,
// lowered (never raised) by the request's timeout_ms.
func (s *Server) timeout(requestMS int) time.Duration {
	t := s.cfg.Timeout
	if requestMS > 0 {
		if rt := time.Duration(requestMS) * time.Millisecond; rt < t {
			t = rt
		}
	}
	return t
}

// resolveWorkers mirrors eval's worker resolution so the busy-worker gauge
// matches what EvalParallelCtx actually spawns: the configured (or lower
// requested) count, capped by the instance count.
func (s *Server) resolveWorkers(requested int, ix eval.Source) int {
	w := s.cfg.Workers
	if requested > 0 && requested < w {
		w = requested
	}
	if n := len(ix.WIDs()); w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

func parseStrategy(name string, fallback eval.Strategy) (eval.Strategy, error) {
	switch name {
	case "":
		return fallback, nil
	case "merge":
		return eval.StrategyMerge, nil
	case "naive":
		return eval.StrategyNaive, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (want merge or naive)", name)
	}
}

// estimateDoc is the wire form of a rewrite.Estimate.
type estimateDoc struct {
	Cost            float64 `json:"cost"`
	CardPerInstance float64 `json:"cardinality_per_instance"`
	Atoms           int     `json:"atoms"`
}

func toEstimateDoc(e rewrite.Estimate) estimateDoc {
	return estimateDoc{Cost: e.Cost, CardPerInstance: e.Card, Atoms: e.Atoms}
}

// selectivityDoc surfaces the cost model's selectivities with their
// provenance: each value is either the assumed model constant or a measured
// value from the log's statistics registry (adaptive cost model). See
// rewrite.ModelSelectivities and docs/OPERATIONS.md.
type selectivityDoc struct {
	Guard       float64 `json:"guard"`
	Consecutive float64 `json:"consecutive"`
	Sequential  float64 `json:"sequential"`
	Parallel    float64 `json:"parallel"`
	// The *Source fields are "assumed" or "measured", per value.
	GuardSource       string `json:"guard_source,omitempty"`
	ConsecutiveSource string `json:"consecutive_source,omitempty"`
	SequentialSource  string `json:"sequential_source,omitempty"`
	ParallelSource    string `json:"parallel_source,omitempty"`
	// Adaptive is true when at least one value is measured — the plan the
	// explain describes is the adaptive planner's choice.
	Adaptive bool `json:"adaptive,omitempty"`
}

func toSelectivityDoc(sel rewrite.Selectivities) selectivityDoc {
	return selectivityDoc{
		Guard:             sel.Guard,
		Consecutive:       sel.Consecutive,
		Sequential:        sel.Sequential,
		Parallel:          sel.Parallel,
		GuardSource:       sel.GuardSource,
		ConsecutiveSource: sel.ConsecutiveSource,
		SequentialSource:  sel.SequentialSource,
		ParallelSource:    sel.ParallelSource,
		Adaptive:          sel.Measured(),
	}
}

// explainResponse is the GET /v1/explain result.
type explainResponse struct {
	Log           string         `json:"log"`
	Query         string         `json:"query"`
	PaperForm     string         `json:"paper_form"`
	Canonical     string         `json:"canonical"`
	IncidentTree  string         `json:"incident_tree"`
	Optimized     string         `json:"optimized"`
	Changed       bool           `json:"changed"`
	Steps         []string       `json:"steps"`
	Before        estimateDoc    `json:"before"`
	After         estimateDoc    `json:"after"`
	Strategy      string         `json:"strategy"`
	Workers       int            `json:"workers"`
	Selectivities selectivityDoc `json:"selectivities"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	entry, err := s.lookup(r.URL.Query().Get("log"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	p, err := pattern.Parse(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse error: %v", err)
		return
	}
	sel := rewrite.ModelSelectivities()
	if reg := s.statsFor(entry.name); reg != nil {
		sel = reg.Selectivities()
	}
	// The estimator reads activity counts off the backend; freeze a live
	// log's backend against appends for the duration.
	if entry.live != nil {
		mon := entry.live.Monitor()
		mon.RLock()
		defer mon.RUnlock()
	}
	opt, trace := rewrite.ExplainWith(p, entry.ix, sel)
	steps := trace.Steps
	if steps == nil {
		steps = []string{}
	}
	writeJSON(w, http.StatusOK, explainResponse{
		Log:           entry.name,
		Query:         q,
		PaperForm:     pattern.Pretty(p),
		Canonical:     pattern.CanonicalKey(p),
		IncidentTree:  pattern.TreeString(p),
		Optimized:     opt.String(),
		Changed:       trace.Changed(),
		Steps:         steps,
		Before:        toEstimateDoc(trace.Before),
		After:         toEstimateDoc(trace.After),
		Strategy:      s.cfg.Strategy.String(),
		Workers:       s.cfg.Workers,
		Selectivities: toSelectivityDoc(trace.Selectivities),
	})
}

// logDoc is one entry of the GET /v1/logs inventory.
type logDoc struct {
	Name              string `json:"name"`
	Source            string `json:"source"`
	Records           int    `json:"records"`
	Instances         int    `json:"instances"`
	CompleteInstances int    `json:"complete_instances"`
	Activities        int    `json:"activities"`
	Valid             bool   `json:"valid"`
	Error             string `json:"error,omitempty"`
	// Generation counts hot reloads of this log (0 = the startup load).
	Generation uint64 `json:"generation"`
	// ReloadError is set while the log is quarantined: the last reload
	// failed and this entry is the retained last-good snapshot.
	ReloadError string `json:"reload_error,omitempty"`
	// AdaptiveQueries counts the complete evaluations folded into the log's
	// statistics registry (absent when the adaptive cost model is off).
	AdaptiveQueries uint64 `json:"adaptive_queries,omitempty"`
	// Live marks a log accepting durable appends; IngestLSN is then its
	// applied high-water mark (the lsn an appender last saw acknowledged).
	Live      bool   `json:"live,omitempty"`
	IngestLSN uint64 `json:"ingest_lsn,omitempty"`
}

// logsResponse is the GET /v1/logs result.
type logsResponse struct {
	Logs []logDoc `json:"logs"`
}

func (s *Server) handleLogs(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	entries := make([]*logEntry, 0, len(s.names))
	reloadErrs := make(map[string]string, len(s.quarantine))
	for _, name := range s.names {
		entries = append(entries, s.logs[name])
		if reason, ok := s.quarantine[name]; ok {
			reloadErrs[name] = reason
		}
	}
	s.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	docs := make([]logDoc, len(entries))
	for i, e := range entries {
		docs[i] = logDoc{
			Name:            e.name,
			Source:          e.source,
			Valid:           e.valid,
			Error:           e.reason,
			Generation:      e.gen,
			ReloadError:     reloadErrs[e.name],
			AdaptiveQueries: s.statsFor(e.name).Queries(),
		}
		if e.live != nil {
			// Live counts come off the monitor, not the startup snapshot:
			// the snapshot does not know about appended records.
			mon := e.live.Monitor()
			mon.RLock()
			src := mon.Source()
			wids := src.WIDs()
			complete := 0
			for _, wid := range wids {
				if recs := src.Instance(wid); len(recs) > 0 && recs[len(recs)-1].IsEnd() {
					complete++
				}
			}
			docs[i].Records = src.TotalRecords()
			docs[i].Instances = len(wids)
			docs[i].CompleteInstances = complete
			docs[i].Activities = len(src.Activities())
			docs[i].Live = true
			docs[i].IngestLSN = mon.LastLSNLocked()
			mon.RUnlock()
			continue
		}
		complete := 0
		for _, wid := range e.log.WIDs() {
			if e.log.InstanceComplete(wid) {
				complete++
			}
		}
		docs[i].Records = e.log.Len()
		docs[i].Instances = len(e.log.WIDs())
		docs[i].CompleteInstances = complete
		docs[i].Activities = len(e.ix.Activities())
	}
	writeJSON(w, http.StatusOK, logsResponse{Logs: docs})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
	case "prometheus":
		s.writePrometheus(w)
		return
	default:
		writeError(w, http.StatusBadRequest,
			"unknown format %q (want json or prometheus)", format)
		return
	}
	s.mu.RLock()
	loaded, quarantined := len(s.logs), len(s.quarantine)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK,
		s.metrics.snapshot(loaded, quarantined, s.cfg.Workers, s.openBreakers(),
			s.cache, s.admission, s.flight, s.backendName(), s.clusterMetrics(), s.ingestMetrics()))
}
