package server

import (
	"fmt"
	"testing"

	"wlq/internal/core/incident"
)

func entry(n int) *cacheEntry {
	return &cacheEntry{set: incident.NewSet(incident.Singleton(uint64(n), 1))}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	c.put("a", entry(1))
	c.put("b", entry(2))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing before capacity reached")
	}
	// "a" was just used, so inserting "c" must evict "b".
	c.put("c", entry(3))
	if _, ok := c.get("b"); ok {
		t.Error("b not evicted as least recently used")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted despite recent use")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c missing after insert")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	if c.evicted() != 1 {
		t.Errorf("evicted = %d, want 1", c.evicted())
	}
}

func TestLRURefreshSameKey(t *testing.T) {
	c := newLRU(2)
	c.put("a", entry(1))
	c.put("a", entry(2))
	if c.len() != 1 {
		t.Fatalf("len = %d after double insert of one key, want 1", c.len())
	}
	e, ok := c.get("a")
	if !ok || e.set.At(0).WID() != 2 {
		t.Fatal("refresh did not replace the entry")
	}
}

func TestLRUDisabled(t *testing.T) {
	for _, c := range []*lru{newLRU(0), newLRU(-5), nil} {
		c.put("a", entry(1))
		if _, ok := c.get("a"); ok {
			t.Error("disabled cache returned a hit")
		}
		if c.len() != 0 || c.evicted() != 0 {
			t.Error("disabled cache reports contents")
		}
	}
}

func TestLRUManyKeysBounded(t *testing.T) {
	c := newLRU(8)
	for i := 0; i < 100; i++ {
		c.put(fmt.Sprintf("k%d", i), entry(i))
	}
	if c.len() != 8 {
		t.Fatalf("len = %d, want 8", c.len())
	}
	if c.evicted() != 92 {
		t.Fatalf("evicted = %d, want 92", c.evicted())
	}
	// The most recent 8 keys survive.
	for i := 92; i < 100; i++ {
		if _, ok := c.get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("recent key k%d evicted", i)
		}
	}
}
