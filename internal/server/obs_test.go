package server

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestQueryTraceResponse: "trace": true returns the span tree and a cost
// table where (under the naive strategy) every operator row satisfies the
// Lemma 1 bound — and traced queries bypass the result cache.
func TestQueryTraceResponse(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	body := `{"log":"fig3","query":"(GetRefer -> GetReimburse) | (SeeDoctor & CheckIn)","strategy":"naive","trace":true}`

	var resp queryResponse
	rec := postQuery(t, h, body, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if resp.Trace == nil {
		t.Fatal("no trace in response")
	}
	if resp.Trace.Spans == nil {
		t.Fatal("trace has no span tree")
	}
	names := make(map[string]bool)
	for _, c := range resp.Trace.Spans.Children {
		names[c.Name] = true
	}
	for _, want := range []string{"parse", "canonicalize", "rewrite", "eval"} {
		if !names[want] {
			t.Errorf("missing pipeline span %q (have %v)", want, names)
		}
	}
	if len(resp.Trace.CostTable) == 0 {
		t.Fatal("empty cost table")
	}
	operators := 0
	for _, row := range resp.Trace.CostTable {
		if row.Op == "atom" {
			continue
		}
		operators++
		if row.Predicted == 0 && row.Outputs > 0 {
			t.Errorf("%s: outputs with zero predicted bound", row.Node)
		}
		if row.Comparisons > row.Predicted {
			t.Errorf("%s: measured %d > predicted %d under naive", row.Node, row.Comparisons, row.Predicted)
		}
		if row.Bound == "" {
			t.Errorf("%s: no bound formula", row.Node)
		}
	}
	if operators == 0 {
		t.Error("cost table has no operator rows")
	}

	// A repeat of the same traced query must not come from the cache.
	var again queryResponse
	postQuery(t, h, body, &again)
	if again.Cached {
		t.Error("traced query served from cache")
	}
	if again.Trace == nil || len(again.Trace.CostTable) == 0 {
		t.Error("repeated traced query lost its trace")
	}

	// Untraced responses must not carry a trace.
	var plain queryResponse
	postQuery(t, h, `{"log":"fig3","query":"GetRefer"}`, &plain)
	if plain.Trace != nil {
		t.Error("untraced query has a trace")
	}
}

func TestHealthzAndReadyz(t *testing.T) {
	empty := New(Config{})
	h := empty.Handler()
	if rec := getJSON(t, h, "/healthz", nil); rec.Code != http.StatusOK {
		t.Errorf("healthz on empty server = %d, want 200", rec.Code)
	}
	rec := getJSON(t, h, "/readyz", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz with no logs = %d, want 503", rec.Code)
	}

	loaded := newTestServer(t, Config{})
	h = loaded.Handler()
	var doc map[string]any
	if rec := getJSON(t, h, "/readyz", &doc); rec.Code != http.StatusOK {
		t.Errorf("readyz with logs = %d, want 200", rec.Code)
	} else if doc["status"] != "ready" {
		t.Errorf("readyz doc = %v", doc)
	}
}

// promLine matches one exposition sample: name, optional labels, value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [0-9eE.+-]+$`)

// TestPrometheusExposition is the CI smoke test for the text exposition:
// every line parses, TYPE/HELP appear exactly once per family, and the
// expected families are present.
func TestPrometheusExposition(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	postQuery(t, h, `{"log":"fig3","query":"UpdateRefer -> GetReimburse"}`, nil)
	postQuery(t, h, `{"log":"fig3","query":"broken ->"}`, nil) // error path

	req := httptest.NewRequest(http.MethodGet, "/metrics?format=prometheus", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}

	types := make(map[string]int)
	helps := make(map[string]int)
	samples := make(map[string]int)
	for _, line := range strings.Split(strings.TrimRight(rec.Body.String(), "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Errorf("malformed TYPE line %q", line)
				continue
			}
			types[fields[2]]++
		case strings.HasPrefix(line, "# HELP "):
			fields := strings.Fields(line)
			if len(fields) < 4 {
				t.Errorf("malformed HELP line %q", line)
				continue
			}
			helps[fields[2]]++
		default:
			if !promLine.MatchString(line) {
				t.Errorf("unparsable sample line %q", line)
				continue
			}
			name := line[:strings.IndexAny(line, "{ ")]
			samples[name]++
		}
	}
	for name, n := range types {
		if n != 1 {
			t.Errorf("TYPE for %s appears %d times", name, n)
		}
		if helps[name] != 1 {
			t.Errorf("HELP for %s appears %d times", name, helps[name])
		}
	}
	for _, want := range []string{
		"wlq_queries_total", "wlq_query_errors_total", "wlq_slow_queries_total",
		"wlq_cache_hits_total", "wlq_operator_comparisons_total",
		"wlq_query_duration_seconds",
	} {
		if types[want] == 0 {
			t.Errorf("missing metric family %s", want)
		}
	}
	// Two requests → histogram count 2, all sample names prefixed.
	for name := range samples {
		if !strings.HasPrefix(name, "wlq_") {
			t.Errorf("sample %s lacks the wlq_ prefix", name)
		}
	}
	if samples["wlq_operator_comparisons_total"] != 4 {
		t.Errorf("operator comparisons has %d samples, want 4 (one per operator)",
			samples["wlq_operator_comparisons_total"])
	}
	if got := getJSON(t, h, "/metrics?format=bogus", nil); got.Code != http.StatusBadRequest {
		t.Errorf("bogus format = %d, want 400", got.Code)
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	s := newTestServer(t, Config{SlowQuery: time.Nanosecond, Logger: logger})
	h := s.Handler()
	postQuery(t, h, `{"log":"fig3","query":"GetRefer -> CompleteRefer"}`, nil)
	if !strings.Contains(buf.String(), "slow query") {
		t.Errorf("no slow-query warning in log:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "GetRefer -> CompleteRefer") {
		t.Errorf("slow-query warning lacks the query text:\n%s", buf.String())
	}
	var m metricsDoc
	getJSON(t, h, "/metrics", &m)
	if m.SlowQueries == 0 {
		t.Error("slow_queries counter not bumped")
	}
}

func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil)) // default level: Info
	s := newTestServer(t, Config{Logger: logger})
	h := s.Handler()
	postQuery(t, h, `{"log":"fig3","query":"GetRefer"}`, nil)
	getJSON(t, h, "/healthz", nil)
	text := buf.String()
	if !strings.Contains(text, "msg=request") || !strings.Contains(text, "path=/v1/query") {
		t.Errorf("no request line for /v1/query:\n%s", text)
	}
	if !strings.Contains(text, "status=200") {
		t.Errorf("request line lacks status:\n%s", text)
	}
	if strings.Contains(text, "path=/healthz") {
		t.Errorf("healthz probe logged at Info:\n%s", text)
	}
}

func TestPprofToggle(t *testing.T) {
	on := newTestServer(t, Config{EnablePprof: true})
	if rec := getJSON(t, on.Handler(), "/debug/pprof/", nil); rec.Code != http.StatusOK {
		t.Errorf("pprof enabled: index = %d, want 200", rec.Code)
	}
	off := newTestServer(t, Config{})
	if rec := getJSON(t, off.Handler(), "/debug/pprof/", nil); rec.Code != http.StatusNotFound {
		t.Errorf("pprof disabled: index = %d, want 404", rec.Code)
	}
}

// TestConcurrentMetricsScrape hammers the handler with queries (some traced,
// some erroneous) while scraping both metric formats — `go test -race`
// verifies the snapshot path holds no torn reads.
func TestConcurrentMetricsScrape(t *testing.T) {
	s := newTestServer(t, Config{CacheSize: 4})
	h := s.Handler()
	queries := []string{
		`{"log":"fig3","query":"GetRefer -> GetReimburse","trace":true,"strategy":"naive"}`,
		`{"log":"fig3","query":"SeeDoctor & CheckIn"}`,
		`{"log":"fig3","query":"GetRefer | SeeDoctor"}`,
		`{"log":"fig3","query":"oops ->"}`,
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/query",
					strings.NewReader(queries[(w+i)%len(queries)]))
				h.ServeHTTP(httptest.NewRecorder(), req)
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				for _, url := range []string{"/metrics", "/metrics?format=prometheus"} {
					req := httptest.NewRequest(http.MethodGet, url, nil)
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						t.Errorf("%s = %d", url, rec.Code)
					}
				}
			}
		}()
	}
	wg.Wait()

	var m metricsDoc
	getJSON(t, h, "/metrics", &m)
	if m.QueriesTotal != 200 {
		t.Errorf("queries_total = %d, want 200", m.QueriesTotal)
	}
	if m.Latency.Count != 200 {
		t.Errorf("latency count = %d, want 200 (every path observed)", m.Latency.Count)
	}
	if m.OperatorComparisons["sequential"] == 0 {
		t.Errorf("no sequential comparisons recorded: %v", m.OperatorComparisons)
	}
}
