package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"wlq/internal/cluster"
	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
	"wlq/internal/obs"
	"wlq/internal/resilience"
)

// The worker side of the cluster tier (Config.WorkerMode): one endpoint,
//
//	POST /v1/worker/query
//
// evaluating the coordinator's already-optimized plan verbatim against the
// wids this worker's ring view assigns it, on its local backend. Workers do
// not rewrite, cache, record flights, or flush statistics for coordinator
// traffic — the coordinator owns the query lifecycle; a worker is a remote
// failure domain with an evaluator, deliberately as thin as an in-process
// shard. When the request asks for tracing the worker does run an
// obs.Trace (under the coordinator's propagated trace id) and ships the
// span tree and cost table back, but the measurements are the
// coordinator's to act on.

// decodeJSON decodes a wire document. Unknown fields are tolerated: during
// a rolling upgrade the coordinator and workers may briefly speak adjacent
// protocol versions, and rejecting a new optional field would turn every
// deploy into an outage.
func decodeJSON(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}

// handleWorkerQuery serves one shard-holding worker's part of a distributed
// query.
func (s *Server) handleWorkerQuery(w http.ResponseWriter, r *http.Request) {
	s.metrics.workerQueries.Add(1)
	// The shared admission controller protects worker capacity too; a shed
	// request is a 429, which the coordinator classifies as retryable.
	if !s.admission.TryAcquire() {
		s.metrics.queriesShed.Add(1)
		s.metrics.workerQueryErrors.Add(1)
		retry := retryAfterSeconds(s.admission.RetryAfter())
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeJSON(w, http.StatusTooManyRequests, cluster.WorkerErrorDoc{
			Error: fmt.Sprintf("worker saturated: %d queries in flight (limit %d)",
				s.admission.InFlight(), s.admission.Capacity()),
		})
		return
	}
	defer s.admission.Release()
	started := time.Now()

	fail := func(code int, doc cluster.WorkerErrorDoc) {
		s.metrics.workerQueryErrors.Add(1)
		writeJSON(w, code, doc)
	}

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req cluster.WorkerQueryRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		fail(http.StatusBadRequest, cluster.WorkerErrorDoc{Error: "malformed worker request: " + err.Error()})
		return
	}
	// Distributed tracing: when the coordinator asks, run the evaluation
	// under an obs.Trace adopting the propagated trace id and return the
	// span tree + Lemma 1 cost table in the response. The worker does NOT
	// flush the meter into its own statistics registry — only the
	// coordinator knows the query's final disposition (complete vs degraded
	// 206), so the PR 6 hygiene gate must run there, over the fleet table.
	var (
		tr    *obs.Trace
		meter *eval.Meter
	)
	if req.Trace {
		tr = obs.NewTrace("worker")
		if tid, psid, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
			tr.SetID(tid)
			tr.Root().SetAttr("parent_span_id", psid)
		}
		tr.Root().SetAttr("trace_id", tr.ID())
	}
	prep := tr.StartSpan("prepare")
	entry, err := s.lookup(req.Log)
	if err != nil {
		fail(http.StatusNotFound, cluster.WorkerErrorDoc{Error: err.Error()})
		return
	}
	p, err := pattern.Parse(req.Plan)
	if err != nil {
		fail(http.StatusBadRequest, cluster.WorkerErrorDoc{Error: "bad plan: " + err.Error()})
		return
	}
	strategy, err := parseStrategy(req.Strategy, s.cfg.Strategy)
	if err != nil {
		fail(http.StatusBadRequest, cluster.WorkerErrorDoc{Error: err.Error()})
		return
	}
	if tr != nil {
		meter = eval.NewMeter(p)
	}
	// Placement is self-derived: the ring parameters in the request rebuild
	// the coordinator's ring bit-for-bit (FNV-1a, stable across processes),
	// and this worker evaluates exactly the wids that ring assigns it. The
	// response echoes the owned count so the coordinator can detect skew.
	ring := cluster.NewRing(req.Ring, req.Replicas)
	self := ring.WorkerIndex(req.Self)
	if self < 0 {
		fail(http.StatusBadRequest, cluster.WorkerErrorDoc{
			Error: fmt.Sprintf("self %q not in ring membership", req.Self),
		})
		return
	}
	owned := ring.OwnedWIDs(entry.ix.WIDs(), self)
	prep.SetAttr("wids_owned", len(owned))
	prep.End()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	ctx = obs.WithTrace(ctx, tr)
	opts := eval.Options{Strategy: strategy, Limit: req.Limit, Meter: meter, Budget: req.Budget.Budget()}
	var qs eval.QueryStats
	esp := tr.StartSpan("eval")
	set, err := eval.New(entry.ix, opts).EvalWIDsCtx(ctx, p, owned, &qs)
	esp.End()
	if err != nil {
		var be *resilience.BudgetError
		var pe *resilience.PanicError
		switch {
		case errors.As(err, &be):
			// Deterministic: the coordinator must not retry a budget abort.
			s.metrics.budgetAborts.Add(1)
			fail(http.StatusUnprocessableEntity, cluster.WorkerErrorDoc{
				Error:           fmt.Sprintf("worker budget exceeded: %v", be),
				BudgetDimension: be.Dimension,
			})
		case errors.As(err, &pe):
			s.metrics.panicsRecovered.Add(1)
			if s.cfg.Logger != nil {
				s.cfg.Logger.Error("panic recovered in worker evaluation",
					"incident_id", pe.IncidentID,
					"log", entry.name,
					"plan", req.Plan,
					"panic", fmt.Sprint(pe.Value),
					"stack", string(pe.Stack),
				)
			}
			fail(http.StatusInternalServerError, cluster.WorkerErrorDoc{
				Error:      "worker evaluation fault",
				IncidentID: pe.IncidentID,
			})
		case errors.Is(err, context.DeadlineExceeded):
			s.metrics.queryTimeouts.Add(1)
			fail(http.StatusGatewayTimeout, cluster.WorkerErrorDoc{
				Error: fmt.Sprintf("worker evaluation exceeded the %v timeout", s.cfg.Timeout),
			})
		default:
			fail(http.StatusInternalServerError, cluster.WorkerErrorDoc{
				Error: "worker evaluation aborted: " + err.Error(),
			})
		}
		return
	}
	s.metrics.instancesEvaluated.Add(uint64(qs.Instances))
	resp := cluster.WorkerQueryResponse{
		Worker:    req.Self,
		WIDsOwned: len(owned),
		Instances: qs.Instances,
		Incidents: cluster.FromIncidents(set.Incidents()),
		ElapsedUS: time.Since(started).Microseconds(),
	}
	if tr != nil {
		obs.EvalSpans(esp, p, meter)
		esp.SetAttr("instances", qs.Instances)
		esp.SetAttr("incidents", len(resp.Incidents))
		tr.End()
		root := tr.Root()
		obs.StampWorker(root, req.Self)
		max := req.MaxTraceSpans
		if max <= 0 {
			max = cluster.DefaultMaxTraceSpans
		}
		obs.CapSpans(root, max)
		resp.TraceID = tr.ID()
		resp.Spans = root
		resp.CostTable = obs.CostTable(p, meter)
	}
	writeJSON(w, http.StatusOK, resp)
}
