package server

import (
	"net/http"
	"strconv"
	"time"

	"wlq/internal/flightrec"
)

// Flight-recorder endpoints.
//
//	GET /v1/queries        — list recent captures (summaries, no trace)
//	GET /v1/queries/{id}   — one capture in full, span tree and cost table
//
// The list view deliberately omits traces: a ring of 256 captures each
// carrying a span tree would make the index response enormous. Clients scan
// the list, then fetch the capture they care about by id.

// captureSummary is the list-view projection of a flightrec.Capture.
type captureSummary struct {
	ID         uint64           `json:"id"`
	Time       time.Time        `json:"time"`
	Log        string           `json:"log,omitempty"`
	Generation uint64           `json:"generation"`
	Backend    string           `json:"backend,omitempty"`
	Query      string           `json:"query"`
	Plan       string           `json:"plan,omitempty"`
	Planner    string           `json:"planner,omitempty"`
	Status     flightrec.Status `json:"status"`
	HTTPStatus int              `json:"http_status,omitempty"`
	Error      string           `json:"error,omitempty"`
	ElapsedUS  int64            `json:"elapsed_us"`
	Slow       bool             `json:"slow,omitempty"`
	Cached     bool             `json:"cached,omitempty"`
	Sharded    bool             `json:"sharded,omitempty"`
	HasTrace   bool             `json:"has_trace"`
	// Workers lists each worker's elapsed/status for distributed captures,
	// so a slow or lost worker is findable without opening the full trace.
	Workers []workerBrief `json:"workers,omitempty"`
}

// workerBrief is the list-view projection of one worker's outcome.
type workerBrief struct {
	Worker    string `json:"worker"`
	Status    string `json:"status"`
	ElapsedUS int64  `json:"elapsed_us"`
}

func summarize(c *flightrec.Capture) captureSummary {
	cs := captureSummary{
		ID:         c.ID,
		Time:       c.Time,
		Log:        c.Log,
		Generation: c.Generation,
		Backend:    c.Backend,
		Query:      c.Query,
		Plan:       c.Plan,
		Planner:    c.Planner,
		Status:     c.Status,
		HTTPStatus: c.HTTPStatus,
		Error:      c.Error,
		ElapsedUS:  c.ElapsedUS,
		Slow:       c.Slow,
		Cached:     c.Cached,
		Sharded:    c.Sharded,
		HasTrace:   c.Trace != nil,
	}
	if c.Workers != nil {
		for _, d := range c.Workers.PerWorker {
			cs.Workers = append(cs.Workers, workerBrief{
				Worker:    d.Worker,
				Status:    d.Status,
				ElapsedUS: d.ElapsedUS,
			})
		}
	}
	return cs
}

// flightListDoc is the GET /v1/queries response.
type flightListDoc struct {
	// Captured is the lifetime capture count (including evicted captures);
	// Count the number of summaries returned after filtering.
	Captured uint64           `json:"captured"`
	Count    int              `json:"count"`
	Queries  []captureSummary `json:"queries"`
}

// handleFlightList serves GET /v1/queries. Query parameters:
//
//	status=ok|partial|budget|panic|timeout|error
//	log=<name>
//	worker=<worker base URL>   (distributed captures touching that worker)
//	min_elapsed_ms=<int>
//	slow=true
//	limit=<int>
func (s *Server) handleFlightList(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		writeError(w, http.StatusNotImplemented, "flight recorder disabled")
		return
	}
	q := r.URL.Query()
	f := flightrec.Filter{
		Status: flightrec.Status(q.Get("status")),
		Log:    q.Get("log"),
		Worker: q.Get("worker"),
	}
	if v := q.Get("min_elapsed_ms"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, "min_elapsed_ms must be a non-negative integer")
			return
		}
		f.MinElapsed = time.Duration(ms) * time.Millisecond
	}
	if v := q.Get("slow"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "slow must be a boolean")
			return
		}
		f.SlowOnly = b
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "limit must be a non-negative integer")
			return
		}
		f.Limit = n
	}
	captures := s.flight.List(f)
	doc := flightListDoc{
		Captured: s.flight.Captured(),
		Count:    len(captures),
		Queries:  make([]captureSummary, 0, len(captures)),
	}
	for _, c := range captures {
		doc.Queries = append(doc.Queries, summarize(c))
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleFlightGet serves GET /v1/queries/{id}: the full capture including
// the span tree and cost table, whether or not the original request asked
// for a trace.
func (s *Server) handleFlightGet(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		writeError(w, http.StatusNotImplemented, "flight recorder disabled")
		return
	}
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "capture id must be an integer")
		return
	}
	c, ok := s.flight.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "capture not found (evicted or never recorded)")
		return
	}
	writeJSON(w, http.StatusOK, c)
}
