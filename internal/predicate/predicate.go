// Package predicate implements attribute guards on atomic incident patterns.
//
// Guards are an extension beyond the paper's formal language: Section 1
// motivates queries such as "referrals with balance > 5000", but Definition 3
// keeps patterns purely temporal. A Guard restricts which log records an
// atomic pattern may match by inspecting the record's input/output attribute
// maps. The core algebra (internal/core) treats guards as part of the atomic
// pattern's identity and is otherwise unchanged, so every algebraic law of
// Section 4 continues to hold with guards present.
package predicate

import (
	"errors"
	"fmt"
	"strings"

	"wlq/internal/wlog"
)

// Op is a comparison operator in a guard.
type Op int

// Comparison operators. OpDefined tests mere presence of the attribute.
const (
	OpEq Op = iota + 1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpDefined
)

// String renders the operator in guard syntax.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpDefined:
		return "?"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Side selects which attribute map(s) of a record a guard inspects.
type Side int

// Guard sides. SideAny checks αout first and falls back to αin, matching
// the intuition that an activity's "current" view of an attribute is the
// value it writes, or otherwise the value it reads.
const (
	SideAny Side = iota + 1
	SideIn
	SideOut
)

// String renders the side as a guard-syntax prefix ("" for SideAny).
func (s Side) String() string {
	switch s {
	case SideAny:
		return ""
	case SideIn:
		return "in."
	case SideOut:
		return "out."
	default:
		return fmt.Sprintf("Side(%d).", int(s))
	}
}

// Guard is a single attribute condition attached to an atomic pattern.
type Guard struct {
	Side Side
	Attr string
	Op   Op
	// Value is the comparison operand. Unused when Op is OpDefined.
	Value wlog.Value
}

// Match reports whether the record satisfies the guard. Comparisons against
// missing or incomparable values are false (not errors): a record that does
// not carry the attribute simply fails the guard.
func (g Guard) Match(r wlog.Record) bool {
	v, ok := g.lookup(r)
	if g.Op == OpDefined {
		return ok
	}
	if !ok {
		return false
	}
	switch g.Op {
	case OpEq:
		return v.Equal(g.Value)
	case OpNe:
		return !v.Equal(g.Value)
	}
	c, comparable := v.Compare(g.Value)
	if !comparable {
		return false
	}
	switch g.Op {
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}

func (g Guard) lookup(r wlog.Record) (wlog.Value, bool) {
	switch g.Side {
	case SideIn:
		if r.In.Has(g.Attr) {
			return r.In.Get(g.Attr), true
		}
	case SideOut:
		if r.Out.Has(g.Attr) {
			return r.Out.Get(g.Attr), true
		}
	default: // SideAny (and zero value)
		if r.Out.Has(g.Attr) {
			return r.Out.Get(g.Attr), true
		}
		if r.In.Has(g.Attr) {
			return r.In.Get(g.Attr), true
		}
	}
	return wlog.Value{}, false
}

// String renders the guard in the syntax accepted by Parse.
func (g Guard) String() string {
	if g.Op == OpDefined {
		return g.Side.String() + g.Attr + "?"
	}
	return g.Side.String() + g.Attr + g.Op.String() + g.Value.String()
}

// Equal reports whether two guards are identical conditions.
func (g Guard) Equal(o Guard) bool {
	side := func(s Side) Side {
		if s == 0 {
			return SideAny
		}
		return s
	}
	if side(g.Side) != side(o.Side) || g.Attr != o.Attr || g.Op != o.Op {
		return false
	}
	return g.Op == OpDefined || g.Value.Equal(o.Value)
}

// ErrMalformedGuard is wrapped by all Parse failures.
var ErrMalformedGuard = errors.New("predicate: malformed guard")

// Parse reads a guard in the textual syntax used inside pattern brackets:
//
//	[balance>5000]     attribute "balance" (out, then in) greater than 5000
//	[in.referState=active]
//	[out.amount<=100.5]
//	[hospital!="Public Hospital"]
//	[receipt1?]        attribute "receipt1" is present
//
// Parse receives the bracket contents without the brackets.
func Parse(s string) (Guard, error) {
	g := Guard{Side: SideAny}
	rest := s
	switch {
	case strings.HasPrefix(rest, "in."):
		g.Side = SideIn
		rest = rest[len("in."):]
	case strings.HasPrefix(rest, "out."):
		g.Side = SideOut
		rest = rest[len("out."):]
	}

	// Find the operator: the first of != <= >= = < > ? outside any quotes.
	// Attribute names may not contain operator characters.
	opIdx := strings.IndexAny(rest, "=!<>?")
	if opIdx <= 0 {
		return Guard{}, fmt.Errorf("%w: %q (missing attribute or operator)", ErrMalformedGuard, s)
	}
	g.Attr = strings.TrimSpace(rest[:opIdx])
	if g.Attr == "" {
		return Guard{}, fmt.Errorf("%w: %q (empty attribute)", ErrMalformedGuard, s)
	}

	opPart := rest[opIdx:]
	var rawValue string
	switch {
	case strings.HasPrefix(opPart, "!="):
		g.Op, rawValue = OpNe, opPart[2:]
	case strings.HasPrefix(opPart, "<="):
		g.Op, rawValue = OpLe, opPart[2:]
	case strings.HasPrefix(opPart, ">="):
		g.Op, rawValue = OpGe, opPart[2:]
	case strings.HasPrefix(opPart, "="):
		g.Op, rawValue = OpEq, opPart[1:]
	case strings.HasPrefix(opPart, "<"):
		g.Op, rawValue = OpLt, opPart[1:]
	case strings.HasPrefix(opPart, ">"):
		g.Op, rawValue = OpGt, opPart[1:]
	case opPart == "?":
		g.Op = OpDefined
		return g, nil
	default:
		return Guard{}, fmt.Errorf("%w: %q (unrecognized operator)", ErrMalformedGuard, s)
	}

	rawValue = strings.TrimSpace(rawValue)
	if rawValue == "" {
		return Guard{}, fmt.Errorf("%w: %q (missing comparison value)", ErrMalformedGuard, s)
	}
	v, err := wlog.ParseValue(rawValue)
	if err != nil {
		return Guard{}, fmt.Errorf("%w: %q: %v", ErrMalformedGuard, s, err)
	}
	g.Value = v
	return g, nil
}

// MatchAll reports whether the record satisfies every guard in the slice.
// An empty slice matches everything.
func MatchAll(guards []Guard, r wlog.Record) bool {
	for _, g := range guards {
		if !g.Match(r) {
			return false
		}
	}
	return true
}

// EqualSlices reports whether two guard lists are identical in order and
// content. Guard order matters for pattern identity (it is part of the
// printed form), even though it does not affect matching.
func EqualSlices(a, b []Guard) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
