package predicate

import (
	"errors"
	"testing"

	"wlq/internal/wlog"
)

func sampleRecord() wlog.Record {
	return wlog.Record{
		LSN: 4, WID: 1, Seq: 3, Activity: "CheckIn",
		In:  wlog.Attrs("referId", "034d1", "referState", "start", "balance", 1000),
		Out: wlog.Attrs("referState", "active"),
	}
}

func TestGuardMatch(t *testing.T) {
	r := sampleRecord()
	tests := []struct {
		name  string
		guard string
		want  bool
	}{
		{"gt true", "balance>500", true},
		{"gt false", "balance>5000", false},
		{"ge boundary", "balance>=1000", true},
		{"lt", "balance<1001", true},
		{"le boundary", "balance<=999", false},
		{"eq string", "referId=034d1", true},
		{"ne string", "referId!=xyz", true},
		{"eq cross-kind numeric", "balance=1000.0", true},
		{"missing attribute fails", "ghost>1", false},
		{"defined hit", "balance?", true},
		{"defined miss", "ghost?", false},
		{"side any prefers out", "referState=active", true},
		{"side in sees old value", "in.referState=start", true},
		{"side out", "out.referState=active", true},
		{"side out misses read-only attr", "out.balance>0", false},
		{"side in misses written-only value", "in.referState=active", false},
		{"incomparable kinds fail", "referId>5", false},
		{"ne on missing fails", "ghost!=5", false},
		{"quoted value", `referId="034d1"`, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := Parse(tt.guard)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.guard, err)
			}
			if got := g.Match(r); got != tt.want {
				t.Errorf("Match(%q) = %v, want %v", tt.guard, got, tt.want)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", ">5", "balance", "balance>", "balance>=", "attr~5", "=5",
		"in.=5", `balance="unterminated`,
	}
	for _, s := range bad {
		t.Run(s, func(t *testing.T) {
			if _, err := Parse(s); !errors.Is(err, ErrMalformedGuard) {
				t.Errorf("Parse(%q) = %v, want ErrMalformedGuard", s, err)
			}
		})
	}
}

func TestGuardStringRoundTrip(t *testing.T) {
	guards := []string{
		"balance>5000",
		"in.referState=start",
		"out.amount<=100.5",
		`hospital!="Public Hospital"`,
		"receipt1?",
		"in.x<1",
		"out.y>=2",
	}
	for _, s := range guards {
		t.Run(s, func(t *testing.T) {
			g, err := Parse(s)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			back, err := Parse(g.String())
			if err != nil {
				t.Fatalf("re-Parse(%q): %v", g.String(), err)
			}
			if !g.Equal(back) {
				t.Errorf("round trip: %q -> %q -> %q", s, g.String(), back.String())
			}
		})
	}
}

func TestGuardEqual(t *testing.T) {
	g1, _ := Parse("balance>5000")
	g2, _ := Parse("balance>5000")
	g3, _ := Parse("balance>5001")
	g4, _ := Parse("in.balance>5000")
	g5, _ := Parse("balance>=5000")
	if !g1.Equal(g2) {
		t.Error("identical guards not Equal")
	}
	for i, other := range []Guard{g3, g4, g5} {
		if g1.Equal(other) {
			t.Errorf("case %d: distinct guards Equal", i)
		}
	}
	// Zero side equals explicit SideAny.
	zero := Guard{Attr: "x", Op: OpDefined}
	explicit := Guard{Side: SideAny, Attr: "x", Op: OpDefined}
	if !zero.Equal(explicit) {
		t.Error("zero Side should equal SideAny")
	}
}

func TestMatchAll(t *testing.T) {
	r := sampleRecord()
	g1, _ := Parse("balance>500")
	g2, _ := Parse("referState=active")
	g3, _ := Parse("balance>99999")
	if !MatchAll(nil, r) {
		t.Error("empty guard list must match")
	}
	if !MatchAll([]Guard{g1, g2}, r) {
		t.Error("all-true guards should match")
	}
	if MatchAll([]Guard{g1, g3}, r) {
		t.Error("one failing guard should reject")
	}
}

func TestEqualSlices(t *testing.T) {
	g1, _ := Parse("a>1")
	g2, _ := Parse("b<2")
	if !EqualSlices(nil, nil) || !EqualSlices([]Guard{g1}, []Guard{g1}) {
		t.Error("equal slices reported unequal")
	}
	if EqualSlices([]Guard{g1}, []Guard{g2}) || EqualSlices([]Guard{g1}, nil) {
		t.Error("unequal slices reported equal")
	}
	if EqualSlices([]Guard{g1, g2}, []Guard{g2, g1}) {
		t.Error("order must matter")
	}
}

func TestOpAndSideStrings(t *testing.T) {
	ops := map[Op]string{OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpDefined: "?"}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("Op %d String = %q, want %q", op, op.String(), want)
		}
	}
	if SideIn.String() != "in." || SideOut.String() != "out." || SideAny.String() != "" {
		t.Error("Side.String wrong")
	}
}
