package experiments

import (
	"fmt"
	"io"

	"wlq/internal/analytics"
	"wlq/internal/clinic"
	"wlq/internal/core/eval"
	"wlq/internal/core/incident"
	"wlq/internal/core/pattern"
)

// runExamples (E1) reproduces the paper's worked queries on the Figure 3
// log and checks the answers against the published ones.
func runExamples(w io.Writer, _ bool) error {
	ix := eval.NewIndex(clinic.Fig3())

	cases := []struct {
		label string
		query string
		want  *incident.Set
	}{
		{
			label: "Example 3: UpdateRefer ≺ GetReimburse (paper: {l14, l20})",
			query: "UpdateRefer -> GetReimburse",
			want:  incident.NewSet(incident.New(2, 5, 9)),
		},
		{
			label: "Example 5: SeeDoctor ≺ (UpdateRefer ≺ GetReimburse) (paper: {l13, l14, l20})",
			query: "SeeDoctor -> (UpdateRefer -> GetReimburse)",
			want:  incident.NewSet(incident.New(2, 4, 5, 9)),
		},
		{
			label: "Example 5 leaves: incL(SeeDoctor) (paper: {l9, l11, l13, l17})",
			query: "SeeDoctor",
			want: incident.NewSet(
				incident.New(1, 4), incident.New(1, 6),
				incident.New(2, 4), incident.New(2, 6)),
		},
	}
	for _, c := range cases {
		p, err := pattern.Parse(c.query)
		if err != nil {
			return err
		}
		got := eval.EvalSet(ix, p)
		status := "MATCH"
		if !got.Equal(c.want) {
			status = "MISMATCH (want " + c.want.String() + ")"
		}
		fmt.Fprintf(w, "%s\n  query:  %s\n  result: %s   [%s]\n", c.label, c.query, got, status)
		for _, inc := range got.Incidents() {
			for _, rec := range analytics.Records(ix, inc) {
				fmt.Fprintf(w, "    l%-2d %s\n", rec.LSN, rec.Activity)
			}
		}
	}
	return nil
}

// runIncidentTree (E2) prints the Figure 4 incident tree and traces the
// post-order evaluation of Example 5.
func runIncidentTree(w io.Writer, _ bool) error {
	p, err := pattern.Parse("SeeDoctor -> (UpdateRefer -> GetReimburse)")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "pattern (paper form): %s\n", pattern.Pretty(p))
	fmt.Fprintf(w, "postfix (Algorithm 3 / shunting-yard): %v\n", pattern.Postfix(p))
	fmt.Fprintln(w, "incident tree (Figure 4):")
	fmt.Fprint(w, pattern.TreeString(p))

	ix := eval.NewIndex(clinic.Fig3())
	e := eval.New(ix, eval.Options{})
	fmt.Fprintln(w, "post-order evaluation:")
	b := p.(*pattern.Binary)
	inner := b.Right.(*pattern.Binary)
	steps := []struct {
		label string
		node  pattern.Node
	}{
		{"leaf SeeDoctor", b.Left},
		{"leaf UpdateRefer", inner.Left},
		{"leaf GetReimburse", inner.Right},
		{"node UpdateRefer ≺ GetReimburse", inner},
		{"root SeeDoctor ≺ (UpdateRefer ≺ GetReimburse)", p},
	}
	for _, s := range steps {
		fmt.Fprintf(w, "  %-45s -> %s\n", s.label, e.Eval(s.node))
	}
	return nil
}
