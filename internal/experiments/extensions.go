package experiments

import (
	"fmt"
	"io"
	"runtime"

	"wlq/internal/benchkit"
	"wlq/internal/clinic"
	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
	"wlq/internal/stream"
	"wlq/internal/wlog"
)

// runParallelEval (E11) measures per-instance parallel evaluation: because
// incidents never span workflow instances (Definition 4), incL(p)
// decomposes over instances and the evaluation parallelizes without
// synchronization. The sweep varies the worker count on a fixed log.
func runParallelEval(w io.Writer, quick bool) error {
	instances := 400
	if quick {
		instances = 80
	}
	l, err := clinic.Generate(instances, 7)
	if err != nil {
		return err
	}
	ix := eval.NewIndex(l)
	e := eval.New(ix, eval.Options{})
	// A per-instance-quadratic query so each instance carries real work.
	p := pattern.MustParse("(!A & !B) -> GetReimburse")
	serialSet := e.Eval(p)

	workers := []float64{1, 2, 4, 8}
	sw := benchkit.Run(
		fmt.Sprintf("parallel evaluation, %d instances (GOMAXPROCS=%d)", instances, runtime.GOMAXPROCS(0)),
		"workers", workers,
		func(x float64) (func(), map[string]float64) {
			n := int(x)
			same := 0.0
			if e.EvalParallel(p, n).Equal(serialSet) {
				same = 1
			}
			return func() { e.EvalParallel(p, n) },
				map[string]float64{"|incL|": float64(serialSet.Len()), "equal": same}
		})
	fmt.Fprint(w, sw.Table())
	fmt.Fprintln(w, "expected: equal=1 everywhere (correctness); speedup bounded by physical")
	fmt.Fprintln(w, "cores — modest on small containers, where GC and the second hardware")
	fmt.Fprintln(w, "thread contend with the workers")
	return nil
}

// runMonitor (E12) ablates streaming evaluation: ingesting a log record by
// record through the Monitor (incremental index + per-instance existence
// re-checks) versus re-indexing and re-evaluating the whole prefix at each
// batch boundary, the naive way to watch a growing log.
func runMonitor(w io.Writer, quick bool) error {
	instances := 150
	if quick {
		instances = 40
	}
	l, err := clinic.Generate(instances, 23)
	if err != nil {
		return err
	}
	records := l.Records()
	watches := map[string]string{
		"fraud":   "GetReimburse -> UpdateRefer",
		"triple":  "SeeDoctor -> SeeDoctor -> SeeDoctor",
		"updated": "UpdateRefer -> UpdateRefer",
	}

	streamTime := benchkit.Measure(func() {
		m := stream.NewMonitor(nil)
		for name, q := range watches {
			if err := m.Watch(name, q); err != nil {
				panic(err)
			}
		}
		for _, r := range records {
			if err := m.Ingest(r); err != nil {
				panic(err)
			}
		}
	})

	// Baseline 1: re-index and re-evaluate every batch records. Cheaper,
	// but alerts are delayed by up to a full batch.
	const batch = 200
	reEvalPrefix := func(cut int) {
		prefix, err := wlog.New(records[:cut])
		if err != nil {
			panic(err)
		}
		ix := eval.NewIndex(prefix)
		e := eval.New(ix, eval.Options{})
		for _, q := range watches {
			e.Exists(pattern.MustParse(q))
		}
	}
	batchTime := benchkit.Measure(func() {
		for cut := batch; ; cut += batch {
			if cut > len(records) {
				cut = len(records)
			}
			reEvalPrefix(cut)
			if cut == len(records) {
				break
			}
		}
	})

	// Baseline 2: re-index after every record — the only way the naive
	// approach matches the monitor's record-granularity alert latency.
	// Quadratic in the log length.
	perRecordTime := benchkit.Measure(func() {
		for cut := 1; cut <= len(records); cut++ {
			reEvalPrefix(cut)
		}
	})

	// Correctness: fired-instance counts equal batch distinct instances.
	m := stream.NewMonitor(nil)
	for name, q := range watches {
		if err := m.Watch(name, q); err != nil {
			return err
		}
	}
	if err := m.IngestLog(l); err != nil {
		return err
	}
	ix := eval.NewIndex(l)
	e := eval.New(ix, eval.Options{})
	rows := [][]string{{"watch", "monitor instances", "batch instances", "agree"}}
	for name, q := range watches {
		batchN := len(e.Eval(pattern.MustParse(q)).WIDs())
		monN := m.FiredInstances(name)
		rows = append(rows, []string{
			name, fmt.Sprint(monN), fmt.Sprint(batchN), fmt.Sprint(monN == batchN),
		})
	}
	fmt.Fprintf(w, "== streaming monitor vs prefix re-evaluation (%d records, %d-record batches) ==\n",
		len(records), batch)
	fmt.Fprint(w, benchkit.Align([][]string{
		{"method", "alert latency", "time"},
		{"monitor (incremental index)", "1 record", streamTime.String()},
		{"re-index every record", "1 record", perRecordTime.String()},
		{"re-index each batch", fmt.Sprintf("%d records", batch), batchTime.String()},
	}))
	fmt.Fprintf(w, "speedup at equal alert latency: %.1fx\n\n", float64(perRecordTime)/float64(streamTime))
	fmt.Fprint(w, benchkit.Align(rows))
	fmt.Fprintln(w, "expected: monitor beats the equal-latency baseline by a wide margin and")
	fmt.Fprintln(w, "is comparable to coarse batching while alerting per record; counts agree")
	return nil
}
