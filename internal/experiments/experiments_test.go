package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestInventory(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("experiments = %d, want 13 (E1..E13)", len(all))
	}
	seen := map[string]bool{}
	for i, e := range all {
		if e.ID == "" || e.Name == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %d incomplete: %+v", i, e)
		}
		if seen[e.ID] || seen[e.Name] {
			t.Errorf("duplicate id/name: %s/%s", e.ID, e.Name)
		}
		seen[e.ID], seen[e.Name] = true, true
	}
}

func TestFind(t *testing.T) {
	if e, ok := Find("E6"); !ok || e.Name != "thm1-worstcase" {
		t.Errorf("Find(E6) = %+v, %v", e, ok)
	}
	if e, ok := Find("lemma1-choice"); !ok || e.ID != "E4" {
		t.Errorf("Find(lemma1-choice) = %+v, %v", e, ok)
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) should miss")
	}
}

// TestAllExperimentsRunQuick smoke-runs every experiment in quick mode and
// checks for the failure markers experiments embed in their own output.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, true); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if len(out) == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
			for _, bad := range []string{"MISMATCH", "FAIL", "NEVER FIRED"} {
				if strings.Contains(out, bad) {
					t.Errorf("%s output contains %q:\n%s", e.ID, bad, out)
				}
			}
		})
	}
}

// TestExamplesExactOutput pins the E1 experiment to the paper's answers.
func TestExamplesExactOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := runExamples(&buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"wid=2:{5,9}",     // Example 3 incident
		"wid=2:{4,5,9}",   // Example 5 incident
		"l14 UpdateRefer", // materialized records
		"l20 GetReimburse",
		"[MATCH]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E1 output missing %q:\n%s", want, out)
		}
	}
}

func TestIncidentTreeOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := runIncidentTree(&buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"SeeDoctor ≺ (UpdateRefer ≺ GetReimburse)",
		"├── SeeDoctor",
		"postfix",
		"wid=2:{4,5,9}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E2 output missing %q:\n%s", want, out)
		}
	}
}

// TestShardedEvalExperiment pins E13's two claims: sharding is answer-
// preserving at every shard count, and under an injected fault the single
// failure domain loses the query while eight domains degrade gracefully.
func TestShardedEvalExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := runSharded(&buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"query lost",      // 1 failure domain: the fault takes everything
		"partial (7/8",    // 8 domains: only the poisoned shard is excluded
		"fault isolation", // the comparison table rendered
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E13 output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "equal 0") {
		t.Errorf("E13 reports a sharded/serial mismatch:\n%s", out)
	}
}

func TestChoose(t *testing.T) {
	tests := []struct {
		n, k int
		want float64
	}{
		{5, 3, 10}, {20, 4, 4845}, {4, 0, 1}, {4, 4, 1}, {4, 5, 0}, {4, -1, 0},
	}
	for _, tt := range tests {
		if got := choose(tt.n, tt.k); got != tt.want {
			t.Errorf("choose(%d,%d) = %g, want %g", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestEvalLimited(t *testing.T) {
	// A deep chain that would produce C(30,5) ≈ 142k incidents unlimited;
	// the cap keeps it tiny.
	got := evalLimited(5, 30, 4)
	if got == 0 || got > 5 {
		t.Errorf("evalLimited = %d, want 1..5", got)
	}
}
