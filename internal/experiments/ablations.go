package experiments

import (
	"fmt"
	"io"

	"wlq/internal/analytics"
	"wlq/internal/benchkit"
	"wlq/internal/clinic"
	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
	"wlq/internal/gen"
	"wlq/internal/wlog"
)

// runNaiveVsMerge (E9) ablates the published nested-loop joins against the
// merge-based variants that exploit the sorted incident-set order the paper
// notes in Section 3.1 but never uses.
func runNaiveVsMerge(w io.Writer, quick bool) error {
	n := 2000
	if quick {
		n = 200
	}
	type workload struct {
		label string
		log   *wlog.Log
		query string
	}
	workloads := []workload{
		{
			// No A precedes any B: naive scans all n² pairs, merge binary-
			// searches to the empty suffix per o1.
			label: fmt.Sprintf("≺ zero-selectivity (B×%d then A×%d)", n, n),
			log:   gen.Blocks("B", n, "A", n),
			query: "A -> B",
		},
		{
			// Exactly one adjacent pair: naive n², merge n·log n.
			label: fmt.Sprintf("⊙ one match (A×%d then B×%d)", n, n),
			log:   gen.Blocks("A", n, "B", n),
			query: "A . B",
		},
		{
			label: fmt.Sprintf("⊙ alternating (%d rounds)", n/2),
			log:   gen.Alternating([]string{"A", "B"}, n/2),
			query: "A . B",
		},
		{
			// Duplicate-heavy choice: naive's pairwise duplicate scan vs
			// the linear merge of sorted sets.
			label: "⊗ duplicate-heavy",
			log:   gen.Blocks("A", n/40, "B", n/40),
			query: "(A -> B) | (A -> B)",
		},
		{
			// Parallel with separated ranges: merge skips the per-record
			// disjointness scan via range pre-checks.
			label: fmt.Sprintf("⊕ disjoint ranges (%d each)", n/4),
			log:   gen.Blocks("A", n/4, "B", n/4),
			query: "A & B",
		},
	}

	fmt.Fprintln(w, "== Algorithm 1 (naive) vs sorted-merge joins ==")
	rows := [][]string{{"workload", "naive", "merge", "speedup", "|incL|"}}
	for _, wl := range workloads {
		ix := eval.NewIndex(wl.log)
		p := pattern.MustParse(wl.query)
		naive := benchkit.Measure(func() {
			eval.New(ix, eval.Options{Strategy: eval.StrategyNaive}).Eval(p)
		})
		merge := benchkit.Measure(func() {
			eval.New(ix, eval.Options{Strategy: eval.StrategyMerge}).Eval(p)
		})
		out := eval.New(ix, eval.Options{}).Eval(p).Len()
		rows = append(rows, []string{
			wl.label, naive.String(), merge.String(),
			fmt.Sprintf("%.2fx", float64(naive)/float64(merge)),
			fmt.Sprint(out),
		})
	}
	fmt.Fprint(w, benchkit.Align(rows))
	fmt.Fprintln(w, "expected: merge wins by growing factors as selectivity drops; identical results (cross-checked in tests)")
	return nil
}

// runAnalytics (E10) times the paper's Section 1 motivating queries on
// generated clinic logs of growing size, including the existence-only
// short-circuit ablation.
func runAnalytics(w io.Writer, quick bool) error {
	sizes := []float64{100, 400, 1600}
	if quick {
		sizes = []float64{50, 100}
	}

	sw := benchkit.Run("motivating query: yearly high-balance referrals", "instances", sizes,
		func(x float64) (func(), map[string]float64) {
			l, err := clinic.Generate(int(x), 7)
			if err != nil {
				panic(err)
			}
			ix := eval.NewIndex(l)
			p := pattern.MustParse("GetRefer[balance>5000]")
			run := func() {
				set := eval.New(ix, eval.Options{}).Eval(p)
				analytics.GroupBy(set, analytics.ByAttr(ix, "year"))
			}
			set := eval.New(ix, eval.Options{}).Eval(p)
			return run, map[string]float64{
				"matches": float64(set.Len()),
				"records": float64(l.Len()),
			}
		})
	fmt.Fprint(w, sw.Table())
	fmt.Fprintln(w, "expected: near-linear in log size (indexed atomic match + grouping)")
	fmt.Fprintln(w)

	rows := [][]string{{"instances", "full enumeration", "exists-only", "speedup", "anomalies"}}
	for _, x := range sizes {
		l, err := clinic.Generate(int(x), 7)
		if err != nil {
			return err
		}
		ix := eval.NewIndex(l)
		p := pattern.MustParse("GetReimburse -> UpdateRefer")
		e := eval.New(ix, eval.Options{})
		full := benchkit.Measure(func() { e.Eval(p) })
		exists := benchkit.Measure(func() { e.Exists(p) })
		rows = append(rows, []string{
			fmt.Sprint(int(x)), full.String(), exists.String(),
			fmt.Sprintf("%.2fx", float64(full)/float64(exists)),
			fmt.Sprint(e.Count(p)),
		})
	}
	fmt.Fprintln(w, "== anomaly detection: UpdateRefer after GetReimburse ==")
	fmt.Fprint(w, benchkit.Align(rows))
	fmt.Fprintln(w, "expected: exists-only at least as fast (stops at the first offending instance)")
	return nil
}
