package experiments

import (
	"fmt"
	"io"

	"wlq/internal/benchkit"
	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
	"wlq/internal/gen"
	"wlq/internal/wlog"
)

// naiveEval evaluates p over l with the published Algorithm 1 joins.
func naiveEval(l *wlog.Log, p pattern.Node) int {
	ix := eval.NewIndex(l)
	return eval.New(ix, eval.Options{Strategy: eval.StrategyNaive}).Eval(p).Len()
}

// runLemma1ConsSeq (E3) measures the consecutive and sequential joins of
// Algorithm 1 against their O(n1·n2) bound. The swept x axis is n1·n2; a
// power-law fit near slope 1 confirms the bound's shape.
func runLemma1ConsSeq(w io.Writer, quick bool) error {
	rounds := []float64{250, 500, 1000, 2000, 4000}
	if quick {
		rounds = []float64{50, 100, 200}
	}
	// Consecutive: alternating A B A B ... — every adjacent pair matches,
	// |incL(A)| = |incL(B)| = rounds.
	cons := benchkit.Run("Lemma 1 — consecutive ⊙ (naive, alternating log)", "n1*n2", rounds,
		func(x float64) (func(), map[string]float64) {
			r := int(x)
			l := gen.Alternating([]string{"A", "B"}, r)
			p := pattern.MustParse("A . B")
			out := float64(naiveEval(l, p))
			return func() { naiveEval(l, p) }, map[string]float64{"n1": x, "n2": x, "|out|": out}
		})
	// Rescale x to n1·n2 for the fit.
	for i := range cons.Points {
		cons.Points[i].X *= cons.Points[i].X
	}
	fmt.Fprint(w, cons.Table())
	fmt.Fprintln(w, "expected: time ~ (n1*n2)^1.0 — Lemma 1 bullet 1")
	fmt.Fprintln(w)

	sizes := []float64{50, 100, 200, 400}
	if quick {
		sizes = []float64{20, 40, 80}
	}
	// Sequential: block layout A×n B×n — all n² pairs match, so both the
	// join and the (unavoidable) output are n1·n2.
	seq := benchkit.Run("Lemma 1 — sequential ≺ (naive, block log)", "n1*n2", sizes,
		func(x float64) (func(), map[string]float64) {
			n := int(x)
			l := gen.Blocks("A", n, "B", n)
			p := pattern.MustParse("A -> B")
			out := float64(naiveEval(l, p))
			return func() { naiveEval(l, p) }, map[string]float64{"n1": x, "n2": x, "|out|": out}
		})
	for i := range seq.Points {
		seq.Points[i].X *= seq.Points[i].X
	}
	fmt.Fprint(w, seq.Table())
	fmt.Fprintln(w, "expected: time ~ (n1*n2)^1.0, |out| = n1*n2 — Lemma 1 bullet 2")
	return nil
}

// runLemma1Choice (E4) measures the choice join with duplicate elimination:
// both operands share the activity multiset, so the published algorithm's
// O(n1·n2·min(k1,k2)) pairwise duplicate scan engages fully.
func runLemma1Choice(w io.Writer, quick bool) error {
	sizes := []float64{24, 32, 48, 64, 96}
	if quick {
		sizes = []float64{4, 6, 8}
	}
	sw := benchkit.Run("Lemma 1 — choice ⊗ (naive, duplicate-heavy)", "n1*n2", sizes,
		func(x float64) (func(), map[string]float64) {
			n := int(x)
			l := gen.Blocks("A", n, "B", n)
			// (A -> B) | (A -> B): identical incident sets of size n².
			p := pattern.MustParse("(A -> B) | (A -> B)")
			out := float64(naiveEval(l, p))
			n2 := float64(n * n)
			return func() { naiveEval(l, p) }, map[string]float64{"n1": n2, "n2": n2, "|out|": out}
		})
	for i := range sw.Points {
		n2 := sw.Points[i].Extra["n1"]
		sw.Points[i].X = n2 * n2
	}
	fmt.Fprint(w, sw.Table())
	fmt.Fprintln(w, "expected: time ~ (n1*n2)^1.0 with the min(k1,k2)=2 duplicate scan; |out| = n1 — Lemma 1 bullet 3")
	return nil
}

// runLemma1Parallel (E5) measures the parallel join on disjoint operand
// sets (every pair unions) and sweeps the incident widths k1+k2 at fixed
// n1·n2 to expose the O(n1·n2·(k1+k2)) factor.
func runLemma1Parallel(w io.Writer, quick bool) error {
	sizes := []float64{50, 100, 200, 400}
	if quick {
		sizes = []float64{20, 40, 80}
	}
	sw := benchkit.Run("Lemma 1 — parallel ⊕ (naive, disjoint blocks)", "n1*n2", sizes,
		func(x float64) (func(), map[string]float64) {
			n := int(x)
			l := gen.Blocks("A", n, "B", n)
			p := pattern.MustParse("A & B")
			out := float64(naiveEval(l, p))
			return func() { naiveEval(l, p) }, map[string]float64{"n1": x, "n2": x, "|out|": out}
		})
	for i := range sw.Points {
		sw.Points[i].X *= sw.Points[i].X
	}
	fmt.Fprint(w, sw.Table())
	fmt.Fprintln(w, "expected: time ~ (n1*n2)^1.0, |out| = n1*n2 — Lemma 1 bullet 4")
	fmt.Fprintln(w)

	// Width sweep: chains A1 & A2 & ... on a log with one block per
	// activity; at each width the final join unions wider incidents.
	widths := []float64{2, 3, 4, 5}
	if quick {
		widths = []float64{2, 3}
	}
	// Small blocks: the output count is blockLen^k and would explode at
	// realistic block sizes (that is Theorem 1's point, measured in E6).
	const blockLen = 8
	ws := benchkit.Run("Lemma 1 — parallel ⊕ width factor (k1+k2)", "k1+k2", widths,
		func(x float64) (func(), map[string]float64) {
			k := int(x)
			pairs := make([]any, 0, 2*k)
			names := make([]string, 0, k)
			for i := 0; i < k; i++ {
				name := fmt.Sprintf("A%d", i)
				names = append(names, name)
				pairs = append(pairs, name, blockLen)
			}
			l := gen.Blocks(pairs...)
			p := gen.ChainPattern(pattern.OpParallel, names...)
			out := float64(naiveEval(l, p))
			return func() { naiveEval(l, p) }, map[string]float64{"|out|": out}
		})
	fmt.Fprint(w, ws.Table())
	fmt.Fprintln(w, "expected: superlinear growth in the chain width (both k and the n_i products grow)")
	return nil
}
