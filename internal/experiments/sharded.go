package experiments

import (
	"context"
	"fmt"
	"io"

	"wlq/internal/benchkit"
	"wlq/internal/clinic"
	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
	"wlq/internal/shard"
)

// runSharded (E13) measures shard-per-wid execution: because incidents never
// span workflow instances (Definition 4), the log partitions into wid-range
// shards that evaluate as isolated failure domains. Two claims are checked:
// the partition is free — the merged sharded result equals the single-domain
// result at every shard count — and it buys fault isolation: a fault that
// costs a single-domain evaluation the whole query costs a sharded one only
// the poisoned wid range, with the rest returned as a graceful partial
// result.
func runSharded(w io.Writer, quick bool) error {
	instances := 400
	if quick {
		instances = 80
	}
	l, err := clinic.Generate(instances, 7)
	if err != nil {
		return err
	}
	ix := eval.NewIndex(l)
	e := eval.New(ix, eval.Options{})
	// The E11 per-instance-quadratic query, so each shard carries real work.
	p := pattern.MustParse("(!A & !B) -> GetReimburse")
	serialSet := e.Eval(p)
	ctx := context.Background()

	shardCounts := []float64{1, 2, 4, 8}
	sw := benchkit.Run(
		fmt.Sprintf("sharded evaluation, %d instances", instances),
		"shards", shardCounts,
		func(v float64) (func(), map[string]float64) {
			x := shard.NewExecutor(ix, shard.Config{Shards: int(v)})
			set, comp, err := x.Execute(ctx, p, eval.Options{}, nil)
			same := 0.0
			if err == nil && comp.Complete && set.Equal(serialSet) {
				same = 1
			}
			return func() { x.Execute(ctx, p, eval.Options{}, nil) },
				map[string]float64{"|incL|": float64(serialSet.Len()), "equal": same}
		})
	fmt.Fprint(w, sw.Table())
	fmt.Fprintln(w, "expected: equal=1 everywhere — sharding never changes the answer; the")
	fmt.Fprintln(w, "per-shard overhead (goroutine, breaker check, budget slice) stays small")
	fmt.Fprintln(w)

	// Fault isolation: poison the last eighth of the wid space with a
	// persistent panic and run the same query as one failure domain versus
	// eight. One domain loses everything; eight lose one shard.
	wids := l.WIDs()
	cut := wids[len(wids)-len(wids)/8]
	eval.SetEvalHook(func(wid uint64) {
		if wid >= cut {
			panic("injected fault")
		}
	})
	defer eval.SetEvalHook(nil)

	rows := [][]string{{"failure domains", "outcome", "incidents", "wids covered"}}
	for _, n := range []int{1, 8} {
		x := shard.NewExecutor(ix, shard.Config{Shards: n, MaxAttempts: 1})
		set, comp, err := x.Execute(ctx, p, eval.Options{}, nil)
		outcome := "complete"
		switch {
		case err != nil:
			outcome = "query lost"
		case !comp.Complete:
			outcome = fmt.Sprintf("partial (%d/%d shards)", comp.Succeeded, comp.Shards)
		}
		incidents := 0
		if set != nil {
			incidents = set.Len()
		}
		rows = append(rows, []string{
			fmt.Sprint(n), outcome, fmt.Sprint(incidents),
			fmt.Sprintf("%d/%d", len(wids)-comp.ExcludedWIDs, len(wids)),
		})
	}
	fmt.Fprintf(w, "== fault isolation: persistent panic in wids ≥ %d ==\n", cut)
	fmt.Fprint(w, benchkit.Align(rows))
	fmt.Fprintln(w, "expected: one domain loses the query outright; eight domains return the")
	fmt.Fprintln(w, "seven clean shards' incidents and name the excluded wid range")
	return nil
}
