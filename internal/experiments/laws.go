package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"wlq/internal/benchkit"
	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
	"wlq/internal/core/rewrite"
	"wlq/internal/gen"
)

// runLaws (E7) validates every algebraic law of Theorems 2–5 by evaluation
// over randomized logs, reporting a PASS/FAIL matrix. (The same checks run
// continuously as property tests in internal/core/rewrite; this experiment
// makes the matrix part of the reproducible evaluation output.)
func runLaws(w io.Writer, quick bool) error {
	trials := 60
	if quick {
		trials = 12
	}
	rng := rand.New(rand.NewSource(12345))
	alphabet := gen.Alphabet(3)

	rows := [][]string{{"law", "theorem", "trials", "fired", "status"}}
	for _, law := range rewrite.Laws() {
		fired, failures := 0, 0
		for trial := 0; trial < trials; trial++ {
			var p pattern.Node
			var q pattern.Node
			if trial%2 == 0 {
				// A guaranteed match: the law's own left-hand-side shape
				// over random sub-patterns, rewritten at the root.
				sub := func() pattern.Node {
					return gen.RandomPattern(rng, gen.PatternParams{
						Operators: rng.Intn(2), Alphabet: alphabet,
					})
				}
				p = law.LHS(sub(), sub(), sub())
				var ok bool
				q, ok = law.Apply(p)
				if !ok {
					failures++
					continue
				}
				fired++
			} else {
				// A fully random pattern, rewritten wherever the law fires.
				p = gen.RandomPattern(rng, gen.PatternParams{
					Operators: 3 + rng.Intn(3), Alphabet: alphabet, NegateProb: 0.1,
				})
				var n int
				q, n = rewrite.ApplyEverywhere(p, law)
				if n == 0 {
					continue
				}
				fired += n
			}
			l := gen.MustRandomLog(gen.LogParams{
				Instances: 1 + rng.Intn(3), MeanLength: 5,
				Alphabet: alphabet, Seed: rng.Int63(),
			})
			ix := eval.NewIndex(l)
			if !eval.EvalSet(ix, p).Equal(eval.EvalSet(ix, q)) {
				failures++
			}
		}
		status := "PASS"
		if failures > 0 {
			status = fmt.Sprintf("FAIL (%d)", failures)
		}
		if fired == 0 {
			status = "NEVER FIRED"
		}
		rows = append(rows, []string{
			law.Name, law.Theorem, fmt.Sprint(trials), fmt.Sprint(fired), status,
		})
	}
	fmt.Fprint(w, benchkit.Align(rows))
	fmt.Fprintln(w, "expected: every row PASS — incL is invariant under Theorems 2-5")
	return nil
}

// runOptimizer (E8) ablates the Theorem 2–5 optimizer: factorable choice
// queries and skewed sequential chains, evaluated as written vs optimized
// (optimization time included in the optimized column).
func runOptimizer(w io.Writer, quick bool) error {
	instances := 60
	meanLen := 40
	if quick {
		instances, meanLen = 15, 15
	}
	// A skewed log: Act00 dominates, the high-index activities are rare.
	l := gen.MustRandomLog(gen.LogParams{
		Instances: instances, MeanLength: meanLen,
		Alphabet: gen.Alphabet(8), Skew: 1.5, Seed: 99,
	})
	ix := eval.NewIndex(l)

	queries := []struct {
		label string
		query string
	}{
		{"factorable choice", "(Act00 -> Act01) | (Act00 -> Act02) | (Act00 -> Act03)"},
		{"skewed ≺ chain (rare atom last)", "Act00 -> Act01 -> Act02 -> Act07"},
		{"skewed ⊕ chain (common atom first)", "Act00 & Act06 & Act07"},
		{"distributed duplicate work", "(Act00 . Act01) | (Act00 . Act02)"},
	}
	rows := [][]string{{"query", "as-written", "optimized", "speedup", "|incL| equal"}}
	for _, q := range queries {
		p := pattern.MustParse(q.query)
		base := benchkit.Measure(func() {
			eval.New(ix, eval.Options{}).Eval(p)
		})
		opt := benchkit.Measure(func() {
			op, _ := rewrite.Optimize(p, ix)
			eval.New(ix, eval.Options{}).Eval(op)
		})
		op, _ := rewrite.Optimize(p, ix)
		same := eval.EvalSet(ix, p).Equal(eval.EvalSet(ix, op))
		rows = append(rows, []string{
			q.label, base.String(), opt.String(),
			fmt.Sprintf("%.2fx", float64(base)/float64(opt)),
			fmt.Sprint(same),
		})
	}
	fmt.Fprint(w, benchkit.Align(rows))
	fmt.Fprintln(w, "expected: optimized never slower on factorable/skewed queries; |incL| always equal")
	return nil
}
