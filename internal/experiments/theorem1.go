package experiments

import (
	"fmt"
	"io"
	"math"

	"wlq/internal/benchkit"
	"wlq/internal/core/eval"
	"wlq/internal/gen"
)

// runTheorem1 (E6) measures the O(m^k) worst case: the left-deep parallel
// chain ((t ⊕ t) ⊕ t)… over a single-instance log of m identical records.
// Two sweeps: m at fixed k (expect slope ≈ k on log-log axes), and k at
// fixed m (expect geometric growth).
func runTheorem1(w io.Writer, quick bool) error {
	fixedK := 3
	ms := []float64{8, 12, 16, 24, 32}
	if quick {
		ms = []float64{6, 8, 10}
	}
	mSweep := benchkit.Run(
		fmt.Sprintf("Theorem 1 — worst case, m sweep at k=%d", fixedK), "m", ms,
		func(x float64) (func(), map[string]float64) {
			m := int(x)
			l := gen.WorstCaseLog(m)
			p := gen.WorstCasePattern(fixedK)
			out := float64(naiveEval(l, p))
			return func() { naiveEval(l, p) },
				map[string]float64{"|out|": out, "C(m,k+1)": choose(m, fixedK+1)}
		})
	fmt.Fprint(w, mSweep.Table())
	exp, r2 := mSweep.FitPowerLaw()
	fmt.Fprintf(w, "measured slope %.2f (r²=%.3f); expected ≈ k+1 = %d.\n", exp, r2, fixedK+1)
	fmt.Fprintln(w, "note: Theorem 1 states O(m^k), counting the O(m^k) incidents produced;")
	fmt.Fprintln(w, "the final ⊕ join additionally pays n1·n2·(k1+k2) pair checks with")
	fmt.Fprintln(w, "n1 = C(m,k) ≈ m^k/k!, so total work is Θ(m^(k+1)) — the measured")
	fmt.Fprintln(w, "exponent tracks k+1, i.e. the paper's bound is loose by one factor of m.")
	fmt.Fprintln(w)

	fixedM := 20
	ks := []float64{1, 2, 3, 4, 5}
	if quick {
		fixedM = 10
		ks = []float64{1, 2, 3}
	}
	kSweep := benchkit.Run(
		fmt.Sprintf("Theorem 1 — worst case, k sweep at m=%d", fixedM), "k", ks,
		func(x float64) (func(), map[string]float64) {
			k := int(x)
			l := gen.WorstCaseLog(fixedM)
			p := gen.WorstCasePattern(k)
			out := float64(naiveEval(l, p))
			return func() { naiveEval(l, p) },
				map[string]float64{"|out|": out, "C(m,k+1)": choose(fixedM, k+1)}
		})
	fmt.Fprint(w, kSweep.Table())
	fmt.Fprintln(w, "expected: geometric growth in k; |out| = C(m, k+1) exactly (sets of k+1 records)")
	return nil
}

// choose returns the binomial coefficient C(n, k) as a float64.
func choose(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out *= float64(n-i) / float64(i+1)
	}
	return math.Round(out)
}

// evalLimited is available for exploratory runs of deeper chains where the
// full output would not fit in memory: it caps per-operator results.
func evalLimited(ixLimit int, m, k int) int {
	l := gen.WorstCaseLog(m)
	p := gen.WorstCasePattern(k)
	ix := eval.NewIndex(l)
	return eval.New(ix, eval.Options{Strategy: eval.StrategyNaive, Limit: ixLimit}).Eval(p).Len()
}
