// Package experiments regenerates every evaluation artifact of the paper as
// a measured table (the experiment index of DESIGN.md, E1–E10). The paper
// has no measured tables of its own — its evaluation is the worked Figure 3
// examples plus the complexity analysis of Lemma 1 and Theorem 1 — so each
// experiment here either reproduces a worked example exactly or measures a
// scaling curve whose shape must match the stated bound.
//
// cmd/wlq-bench drives these; the root bench_test.go exposes the same
// workloads as testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
)

// Experiment is one reproducible unit of the evaluation.
type Experiment struct {
	// ID is the DESIGN.md experiment id (e.g. "E3").
	ID string
	// Name is a short slug for the -exp flag (e.g. "lemma1-consecutive").
	Name string
	// Paper cites the paper artifact the experiment reproduces.
	Paper string
	// Run executes the experiment, writing tables to w. quick shrinks the
	// sweep for fast test runs.
	Run func(w io.Writer, quick bool) error
}

// All returns every experiment in DESIGN.md order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Name: "examples", Paper: "Figure 3, Examples 1-3", Run: runExamples},
		{ID: "E2", Name: "incident-tree", Paper: "Figure 4, Example 5", Run: runIncidentTree},
		{ID: "E3", Name: "lemma1-consecutive", Paper: "Lemma 1 (consecutive, sequential)", Run: runLemma1ConsSeq},
		{ID: "E4", Name: "lemma1-choice", Paper: "Lemma 1 (choice)", Run: runLemma1Choice},
		{ID: "E5", Name: "lemma1-parallel", Paper: "Lemma 1 (parallel)", Run: runLemma1Parallel},
		{ID: "E6", Name: "thm1-worstcase", Paper: "Theorem 1 (O(m^k) worst case)", Run: runTheorem1},
		{ID: "E7", Name: "laws", Paper: "Theorems 2-5 (algebraic laws)", Run: runLaws},
		{ID: "E8", Name: "optimizer", Paper: "Section 4 (optimization basis)", Run: runOptimizer},
		{ID: "E9", Name: "naive-vs-merge", Paper: "Section 3.1 (sorted incident sets)", Run: runNaiveVsMerge},
		{ID: "E10", Name: "analytics", Paper: "Section 1 (motivating queries)", Run: runAnalytics},
		{ID: "E11", Name: "parallel-eval", Paper: "Definition 4 (instance decomposition; extension)", Run: runParallelEval},
		{ID: "E12", Name: "monitor", Paper: "Figure 2 (runtime monitoring; extension)", Run: runMonitor},
		{ID: "E13", Name: "sharded-eval", Paper: "Definition 4 (shard failure domains; extension)", Run: runSharded},
	}
}

// Find returns the experiment whose ID or Name matches (case-sensitive).
func Find(key string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == key || e.Name == key {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer, quick bool) error {
	for _, e := range All() {
		fmt.Fprintf(w, "######## %s %s — %s ########\n\n", e.ID, e.Name, e.Paper)
		if err := e.Run(w, quick); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
