package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"time"
)

// Distributed tracing support: trace/span id minting in the W3C
// traceparent shape, grafting of wire-decoded worker span subtrees into a
// live coordinator trace, worker attribution stamping, subtree size caps,
// and fleet-wide cost-table aggregation.
//
// The coordinator mints a trace id once per query and sends
// "00-<trace-id>-<span-id>-01" on every worker request (a fresh span id
// per attempt/hedge, the same trace id throughout). Workers adopt the
// propagated trace id, run their usual span tree under it, and return the
// serialized tree; the coordinator grafts each returned subtree under the
// local span that issued the winning request.

// TraceparentHeader is the HTTP header carrying the propagated trace
// context on coordinator→worker requests.
const TraceparentHeader = "Traceparent"

// NewTraceID mints a 32-hex-char (16-byte) trace id.
func NewTraceID() string { return randHex(16) }

// NewSpanID mints a 16-hex-char (8-byte) span id.
func NewSpanID() string { return randHex(8) }

// randHex returns n random bytes in lowercase hex, falling back to a
// time-derived value if the system entropy source fails.
func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		now := time.Now().UnixNano()
		for i := range b {
			b[i] = byte(now >> (8 * (i % 8)))
		}
	}
	return hex.EncodeToString(b)
}

// FormatTraceparent renders a W3C-style traceparent header value:
// version 00, sampled flag set.
func FormatTraceparent(traceID, spanID string) string {
	return fmt.Sprintf("00-%s-%s-01", traceID, spanID)
}

// ParseTraceparent splits a traceparent header value into its trace id and
// parent span id. Malformed values (wrong field count, wrong id widths,
// all-zero ids) report ok=false and must be ignored by the receiver.
func ParseTraceparent(v string) (traceID, spanID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) < 4 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return "", "", false
	}
	if parts[1] == strings.Repeat("0", 32) || parts[2] == strings.Repeat("0", 16) {
		return "", "", false
	}
	return parts[1], parts[2], true
}

// Graft attaches a wire-decoded span subtree under parent, shifting the
// subtree's clock by offsetUS so its offsets are expressed on the grafting
// trace's clock (pass the local span's StartUS to align the remote tree
// with the request that produced it). The subtree is adopted: its spans
// become finished members of parent's trace and render/marshal with it.
func Graft(parent *Span, sub *Span, offsetUS int64) {
	if parent == nil || sub == nil {
		return
	}
	t := parent.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	adopt(sub, t, offsetUS)
	parent.Children = append(parent.Children, sub)
}

// adopt recursively claims a foreign subtree for trace t. Wire-decoded
// spans carry no trace pointer and are already complete, so they are
// marked ended to keep End/SetAttr safe on them afterwards.
func adopt(s *Span, t *Trace, offsetUS int64) {
	s.trace = t
	s.ended = true
	s.StartUS += offsetUS
	for _, c := range s.Children {
		adopt(c, t, offsetUS)
	}
}

// StampWorker labels every span of the subtree that does not already carry
// a worker attribution. Workers stamp their own name before serializing;
// the coordinator stamps "coordinator" over the stitched trace afterwards,
// filling exactly the locally recorded spans. Call only once the spans are
// quiescent (trace ended or subtree not yet grafted).
func StampWorker(s *Span, worker string) {
	if s == nil || worker == "" {
		return
	}
	if s.Worker == "" {
		s.Worker = worker
	}
	for _, c := range s.Children {
		StampWorker(c, worker)
	}
}

// CountSpans reports the number of spans in the subtree rooted at s.
func CountSpans(s *Span) int {
	if s == nil {
		return 0
	}
	n := 1
	for _, c := range s.Children {
		n += CountSpans(c)
	}
	return n
}

// CapSpans prunes the subtree to at most max spans, keeping spans in
// pre-order (earlier siblings and their subtrees survive whole before
// later ones are admitted). The root always survives, even when max < 1.
// When anything is dropped the root is annotated with truncated_spans =
// <dropped count>. Returns the number of spans dropped. Call only on
// quiescent span trees (a finished worker trace, a not-yet-grafted wire
// subtree).
func CapSpans(root *Span, max int) int {
	if root == nil {
		return 0
	}
	total := CountSpans(root)
	if max < 1 {
		max = 1
	}
	if total <= max {
		return 0
	}
	budget := max - 1
	var prune func(s *Span)
	prune = func(s *Span) {
		kept := s.Children[:0]
		for _, c := range s.Children {
			if budget <= 0 {
				break
			}
			budget--
			kept = append(kept, c)
			prune(c)
		}
		s.Children = kept
	}
	prune(root)
	dropped := total - max
	if root.Attrs == nil {
		root.Attrs = make(map[string]any)
	}
	root.Attrs["truncated_spans"] = dropped
	return dropped
}

// AggregateCostTables folds per-worker Lemma 1 cost tables into one
// fleet-wide measured-vs-predicted table. Every worker evaluates the same
// plan text, so the tables are row-aligned pre-order walks of the same
// tree; measured and predicted columns sum row-by-row (Lemma 1 bounds are
// per-instance sums, so summing across disjoint instance placements
// preserves measured ≤ predicted). Tables whose shape disagrees with the
// first (a mid-rollout plan divergence) are skipped rather than
// mis-summed. Returns nil when no table is usable.
func AggregateCostTables(tables ...[]CostRow) []CostRow {
	var out []CostRow
	for _, t := range tables {
		if len(t) == 0 {
			continue
		}
		if out == nil {
			out = make([]CostRow, len(t))
			copy(out, t)
			continue
		}
		if !sameShape(out, t) {
			continue
		}
		for i := range t {
			out[i].N1 += t[i].N1
			out[i].N2 += t[i].N2
			out[i].Comparisons += t[i].Comparisons
			out[i].Outputs += t[i].Outputs
			out[i].Predicted += t[i].Predicted
			out[i].Evals += t[i].Evals
			out[i].MemoHits += t[i].MemoHits
			out[i].Pairs += t[i].Pairs
		}
	}
	return out
}

// sameShape reports whether two cost tables describe the same plan walk.
func sameShape(a, b []CostRow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Node != b[i].Node || a[i].Op != b[i].Op {
			return false
		}
	}
	return true
}
