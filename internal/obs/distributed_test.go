package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceIDMintedOnceAndPinnable(t *testing.T) {
	tr := NewTrace("q")
	id := tr.ID()
	if len(id) != 32 {
		t.Fatalf("trace id %q, want 32 hex chars", id)
	}
	if tr.ID() != id {
		t.Fatal("trace id changed between calls")
	}
	other := NewTrace("q")
	if other.ID() == id {
		t.Fatal("two traces minted the same id")
	}

	pinned := NewTrace("worker")
	pinned.SetID("deadbeefdeadbeefdeadbeefdeadbeef")
	if got := pinned.ID(); got != "deadbeefdeadbeefdeadbeefdeadbeef" {
		t.Fatalf("pinned id = %q", got)
	}
	// Pinning after lazy minting overrides: the propagated id wins.
	late := NewTrace("worker")
	_ = late.ID()
	late.SetID("cafecafecafecafecafecafecafecafe")
	if got := late.ID(); got != "cafecafecafecafecafecafecafecafe" {
		t.Fatalf("late-pinned id = %q", got)
	}

	var nilTrace *Trace
	if nilTrace.ID() != "" {
		t.Fatal("nil trace must report an empty id")
	}
	nilTrace.SetID("x") // must not panic
}

func TestTraceparentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	if len(tid) != 32 || len(sid) != 16 {
		t.Fatalf("id widths %d/%d, want 32/16", len(tid), len(sid))
	}
	header := FormatTraceparent(tid, sid)
	if !strings.HasPrefix(header, "00-") || !strings.HasSuffix(header, "-01") {
		t.Fatalf("header %q not in 00-...-01 shape", header)
	}
	gotTID, gotSID, ok := ParseTraceparent(header)
	if !ok || gotTID != tid || gotSID != sid {
		t.Fatalf("round trip = (%q, %q, %v), want (%q, %q, true)", gotTID, gotSID, ok, tid, sid)
	}
}

func TestTraceparentRejectsMalformedValues(t *testing.T) {
	bad := []string{
		"",
		"garbage",
		"00-shorttrace-0123456789abcdef-01",
		"00-0123456789abcdef0123456789abcdef-short-01",
		"00-" + strings.Repeat("0", 32) + "-0123456789abcdef-01",                 // all-zero trace id
		"00-0123456789abcdef0123456789abcdef-" + strings.Repeat("0", 16) + "-01", // all-zero span id
		"0123456789abcdef0123456789abcdef",
	}
	for _, v := range bad {
		if _, _, ok := ParseTraceparent(v); ok {
			t.Errorf("ParseTraceparent(%q) accepted a malformed value", v)
		}
	}
}

// wireTree simulates a worker subtree arriving over HTTP: built in one
// trace, serialized, decoded into spans with no trace pointer.
func wireTree(t *testing.T, build func(tr *Trace)) *Span {
	t.Helper()
	tr := NewTrace("worker")
	build(tr)
	tr.End()
	b, err := json.Marshal(tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	var s Span
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatal(err)
	}
	return &s
}

func TestGraftAdoptsWireSubtree(t *testing.T) {
	sub := wireTree(t, func(tr *Trace) {
		sp := tr.StartSpan("eval")
		sp.StartChild("atom").End()
		sp.End()
	})
	childStart := sub.Children[0].StartUS

	local := NewTrace("query")
	transport := local.StartSpan("transport")
	transport.End()
	Graft(transport, sub, 500)

	if len(transport.Children) != 1 || transport.Children[0] != sub {
		t.Fatal("subtree not attached under the transport span")
	}
	if sub.StartUS != 500 {
		t.Fatalf("grafted root StartUS = %d, want the 500µs offset", sub.StartUS)
	}
	if got := sub.Children[0].StartUS; got != childStart+500 {
		t.Fatalf("grafted child StartUS = %d, want %d (shifted by the offset)", got, childStart+500)
	}
	// Adopted spans are finished members of the local trace: End and
	// SetAttr must be safe on them (they now carry a trace pointer), End
	// must not restart the duration clock, and the stitched tree must
	// marshal.
	wantDur := sub.DurationUS
	sub.End()
	if sub.DurationUS != wantDur {
		t.Fatalf("End on an adopted span rewrote its duration: %d -> %d", wantDur, sub.DurationUS)
	}
	sub.SetAttr("annotation", true)
	local.End()
	if _, err := json.Marshal(local.Root()); err != nil {
		t.Fatalf("stitched trace does not marshal: %v", err)
	}
}

func TestStampWorkerFillsOnlyBlankAttribution(t *testing.T) {
	root := wireTree(t, func(tr *Trace) {
		tr.StartSpan("eval").End()
	})
	StampWorker(root, "http://w1")
	StampWorker(root, "coordinator") // second stamp must not overwrite
	if root.Worker != "http://w1" || root.Children[0].Worker != "http://w1" {
		t.Fatalf("worker stamps = %q/%q, want http://w1 on both", root.Worker, root.Children[0].Worker)
	}
	StampWorker(nil, "x") // must not panic
}

func TestCapSpansPrunesPreOrderAndAnnotates(t *testing.T) {
	build := func() *Span {
		return wireTree(t, func(tr *Trace) {
			for i := 0; i < 3; i++ {
				sp := tr.StartSpan("stage")
				sp.StartChild("inner").End()
				sp.End()
			}
		})
	}

	// 7 spans (root + 3×(stage+inner)) capped to 4: the earliest subtrees
	// survive whole, later ones drop.
	root := build()
	if got := CountSpans(root); got != 7 {
		t.Fatalf("fixture has %d spans, want 7", got)
	}
	dropped := CapSpans(root, 4)
	if dropped != 3 || CountSpans(root) != 4 {
		t.Fatalf("dropped %d spans leaving %d, want 3 dropped leaving 4", dropped, CountSpans(root))
	}
	if got := root.Attrs["truncated_spans"]; got != 3 {
		t.Fatalf("truncated_spans = %v, want 3", got)
	}
	if len(root.Children) == 0 || root.Children[0].Name != "stage" {
		t.Fatal("pre-order prune did not keep the earliest child")
	}

	// A cap below 1 still keeps the root.
	root = build()
	CapSpans(root, 0)
	if CountSpans(root) != 1 || len(root.Children) != 0 {
		t.Fatalf("cap 0 left %d spans, want the root alone", CountSpans(root))
	}

	// A generous cap is a no-op: nothing dropped, no annotation.
	root = build()
	if dropped := CapSpans(root, 100); dropped != 0 {
		t.Fatalf("cap 100 dropped %d spans", dropped)
	}
	if _, ok := root.Attrs["truncated_spans"]; ok {
		t.Fatal("no-op cap annotated the root anyway")
	}
}

func TestAggregateCostTablesSumsAlignedRows(t *testing.T) {
	mk := func(scale uint64) []CostRow {
		return []CostRow{
			{Node: "A -> B", Op: "sequential", N1: 10 * scale, N2: 20 * scale,
				Comparisons: 30 * scale, Outputs: 5 * scale, Predicted: 200 * scale,
				Evals: 2 * scale, MemoHits: scale, Pairs: 200 * scale, K1: 1, K2: 1},
			{Node: "A", Op: "atom", Comparisons: 10 * scale, Outputs: 10 * scale,
				Evals: 2 * scale},
			{Node: "B", Op: "atom", Comparisons: 20 * scale, Outputs: 20 * scale,
				Evals: 2 * scale},
		}
	}
	got := AggregateCostTables(mk(1), nil, mk(3))
	if len(got) != 3 {
		t.Fatalf("aggregate has %d rows, want 3", len(got))
	}
	top := got[0]
	if top.N1 != 40 || top.N2 != 80 || top.Comparisons != 120 || top.Outputs != 20 ||
		top.Predicted != 800 || top.Evals != 8 || top.MemoHits != 4 || top.Pairs != 800 {
		t.Fatalf("summed row = %+v", top)
	}
	// Shape columns come from the first table, not the sum.
	if top.K1 != 1 || top.K2 != 1 || top.Op != "sequential" {
		t.Fatalf("shape columns mutated: %+v", top)
	}
	// Summing per-worker tables must preserve the Lemma 1 invariant each
	// table satisfied on its own.
	if top.Comparisons > top.Predicted {
		t.Fatalf("aggregate violates measured ≤ predicted: %d > %d", top.Comparisons, top.Predicted)
	}

	// A shape mismatch (different plan walk) is skipped, not mis-summed.
	skewed := mk(1)
	skewed[1].Node = "C"
	got = AggregateCostTables(mk(1), skewed)
	if got[0].N1 != 10 {
		t.Fatalf("mismatched table was summed anyway: %+v", got[0])
	}
	if AggregateCostTables(nil, []CostRow{}) != nil {
		t.Fatal("aggregate of empty tables should be nil")
	}
}
