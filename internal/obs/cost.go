package obs

import (
	"fmt"

	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
	"wlq/internal/core/rewrite"
)

// CostRow is one plan node's measured-vs-predicted accounting, the
// column-for-column realization of Lemma 1:
//
//	n1, n2  operand incident-set sizes, summed over instance evaluations
//	k1, k2  atom counts of the operand patterns
//	bound   the Lemma 1 formula the node is charged under
//
// For operator rows, Predicted is the bound evaluated with the actual
// per-instance n1/n2; for atom rows it is the linear index-materialization
// work. Under the naive strategy Comparisons ≤ Predicted always holds.
type CostRow struct {
	// Node is the sub-pattern in query syntax; Depth its tree depth (0 =
	// plan root), for indented rendering.
	Node  string `json:"node"`
	Depth int    `json:"depth"`
	// Op is the operator name ("consecutive", "sequential", "choice",
	// "parallel") or "atom"; Symbol the paper's glyph for operators.
	Op     string `json:"op"`
	Symbol string `json:"symbol,omitempty"`
	// K1, K2 are Lemma 1's k1, k2 (0 for atom rows).
	K1 int `json:"k1"`
	K2 int `json:"k2"`
	// N1, N2 are Σ n1 and Σ n2 across instance evaluations.
	N1 uint64 `json:"n1"`
	N2 uint64 `json:"n2"`
	// Comparisons is the measured record-level comparison work; Outputs the
	// incidents the node produced.
	Comparisons uint64 `json:"comparisons"`
	Outputs     uint64 `json:"outputs"`
	// Predicted is the summed Lemma 1 bound; Bound its formula.
	Predicted uint64 `json:"predicted"`
	Bound     string `json:"bound"`
	// Evals counts instance evaluations; MemoHits those answered from the
	// repeated-sub-pattern memo without join work.
	Evals    uint64 `json:"evals"`
	MemoHits uint64 `json:"memo_hits,omitempty"`
	// Pairs is Σ n1·n2 across instance evaluations (operator rows only) —
	// the denominator the statistics registry needs to recover operator
	// selectivities from a table shipped across the wire.
	Pairs uint64 `json:"pairs,omitempty"`
	// Selectivity is the output-cardinality fraction the cost model charged
	// this node with, and SelectivitySource whether it was an assumed
	// constant or measured from the statistics registry. Present on
	// selective rows only: ⊙/≺/⊕ operators and guarded atoms — choice has
	// no selectivity constant, unguarded atoms no guard factor.
	Selectivity       float64 `json:"selectivity,omitempty"`
	SelectivitySource string  `json:"selectivity_source,omitempty"`
}

// boundFormula names the Lemma 1 bound an operator is charged under.
func boundFormula(op pattern.Op) string {
	switch op {
	case pattern.OpConsecutive, pattern.OpSequential:
		return "n1·n2"
	case pattern.OpChoice:
		return "n1·n2·min(k1,k2)"
	case pattern.OpParallel:
		return "n1·n2·(k1+k2)"
	default:
		return ""
	}
}

// nodeDepths maps every node of the plan to its depth, root = 0.
func nodeDepths(plan pattern.Node) map[pattern.Node]int {
	depths := make(map[pattern.Node]int)
	var walk func(n pattern.Node, d int)
	walk = func(n pattern.Node, d int) {
		depths[n] = d
		if b, ok := n.(*pattern.Binary); ok {
			walk(b.Left, d+1)
			walk(b.Right, d+1)
		}
	}
	walk(plan, 0)
	return depths
}

// CostTable assembles the measured-vs-predicted table for a metered plan,
// rows in pre-order of the plan tree, with selectivity columns from the
// model's assumed constants.
func CostTable(plan pattern.Node, m *eval.Meter) []CostRow {
	return CostTableWith(plan, m, rewrite.ModelSelectivities())
}

// CostTableWith is CostTable with explicit selectivities: each selective
// row (⊙/≺/⊕ operators, guarded atoms) reports the value the cost model
// charged it with and whether that value was assumed or measured.
func CostTableWith(plan pattern.Node, m *eval.Meter, sel rewrite.Selectivities) []CostRow {
	depths := nodeDepths(plan)
	stats := m.Snapshot()
	rows := make([]CostRow, 0, len(stats))
	for _, st := range stats {
		row := CostRow{
			Node:        st.Node.String(),
			Depth:       depths[st.Node],
			Evals:       st.Evals,
			MemoHits:    st.MemoHits,
			Comparisons: st.Comparisons,
			Outputs:     st.Outputs,
			Predicted:   st.Predicted,
		}
		if st.Atom {
			row.Op = "atom"
			row.Bound = "n (index scan)"
			if a, ok := st.Node.(*pattern.Atom); ok && len(a.Guards) > 0 {
				row.Selectivity, row.SelectivitySource = guardSelectivity(sel)
			}
		} else {
			row.Op = st.Op.Name()
			row.Symbol = st.Op.Symbol()
			row.K1, row.K2 = st.K1, st.K2
			row.N1, row.N2 = st.LeftInputs, st.RightInputs
			row.Pairs = st.Pairs
			row.Bound = boundFormula(st.Op)
			row.Selectivity, row.SelectivitySource = sel.ForOp(st.Op)
		}
		rows = append(rows, row)
	}
	return rows
}

// guardSelectivity returns the guard factor and source of a Selectivities,
// defaulted.
func guardSelectivity(sel rewrite.Selectivities) (float64, string) {
	m := rewrite.ModelSelectivities()
	v, src := sel.Guard, sel.GuardSource
	if v <= 0 {
		v, src = m.Guard, rewrite.SelectivityAssumed
	}
	if src == "" {
		src = rewrite.SelectivityAssumed
	}
	return v, src
}

// EvalSpans appends to parent a span subtree mirroring the plan's incident
// tree, one span per node, annotated with the node's meter counters. The
// spans are synthetic (built after evaluation, durations 0); their value is
// the per-operator accounting, not wall-clock timing — evaluation wall
// clock lives on the parent span.
func EvalSpans(parent *Span, plan pattern.Node, m *eval.Meter) {
	EvalSpansWith(parent, plan, m, rewrite.ModelSelectivities())
}

// EvalSpansWith is EvalSpans with explicit selectivities: selective operator
// spans additionally carry selectivity / selectivity_source attributes so a
// captured trace shows which cost-model values ranked the plan.
func EvalSpansWith(parent *Span, plan pattern.Node, m *eval.Meter, sel rewrite.Selectivities) {
	if parent == nil || m == nil {
		return
	}
	stats := make(map[pattern.Node]eval.NodeStats, len(m.Snapshot()))
	for _, st := range m.Snapshot() {
		stats[st.Node] = st
	}
	var rec func(sp *Span, n pattern.Node)
	rec = func(sp *Span, n pattern.Node) {
		st, ok := stats[n]
		if !ok {
			return
		}
		var label string
		if st.Atom {
			label = "atom " + n.String()
		} else {
			label = fmt.Sprintf("%s %s", st.Op.Symbol(), st.Op.Name())
		}
		child := sp.StartChild(label)
		child.SetAttr("node", n.String())
		child.SetAttr("evals", st.Evals)
		child.SetAttr("comparisons", st.Comparisons)
		child.SetAttr("outputs", st.Outputs)
		child.SetAttr("predicted", st.Predicted)
		if st.MemoHits > 0 {
			child.SetAttr("memo_hits", st.MemoHits)
		}
		if !st.Atom {
			child.SetAttr("n1", st.LeftInputs)
			child.SetAttr("n2", st.RightInputs)
			child.SetAttr("k1", st.K1)
			child.SetAttr("k2", st.K2)
			child.SetAttr("bound", boundFormula(st.Op))
			if v, src := sel.ForOp(st.Op); src != "" {
				child.SetAttr("selectivity", v)
				child.SetAttr("selectivity_source", src)
			}
		}
		if b, ok := n.(*pattern.Binary); ok {
			rec(child, b.Left)
			rec(child, b.Right)
		}
		child.End()
	}
	rec(parent, plan)
}

// RewriteSpans annotates sp with the optimizer trace: input/output forms
// and cost estimates on the span itself, plus one child span per applied
// Theorem 2–5 law carrying the law's theorem citation and the estimated
// cost bracket of the pass that applied it.
func RewriteSpans(sp *Span, tr rewrite.Trace) {
	if sp == nil {
		return
	}
	sp.SetAttr("input", tr.Input.String())
	sp.SetAttr("output", tr.Output.String())
	sp.SetAttr("changed", tr.Changed())
	if tr.Selectivities.Measured() {
		sp.SetAttr("adaptive", true)
	}
	sp.SetAttr("cost_before", tr.Before.Cost)
	sp.SetAttr("cost_after", tr.After.Cost)
	sp.SetAttr("card_before", tr.Before.Card)
	sp.SetAttr("card_after", tr.After.Card)
	for _, st := range tr.Details {
		c := sp.StartChild(st.Law)
		c.SetAttr("theorem", st.Theorem)
		c.SetAttr("cost_before", st.Before)
		c.SetAttr("cost_after", st.After)
		c.End()
	}
}

// QueryTrace is the assembled observability record of one traced query:
// the span tree plus the per-operator cost table. It is the wire shape of
// the query service's "trace" response field and the CLI's -trace output.
type QueryTrace struct {
	// Query is the query as written; Plan the pattern actually evaluated
	// (after any rewrite).
	Query string `json:"query"`
	Plan  string `json:"plan"`
	// Strategy is the join family that produced the measurements.
	Strategy string `json:"strategy"`
	// TraceID is the cross-process trace id (set on distributed traces,
	// where it was propagated to every worker on a traceparent header).
	TraceID string `json:"trace_id,omitempty"`
	// Spans is the root of the span tree.
	Spans *Span `json:"spans"`
	// CostTable is the per-node measured-vs-predicted accounting.
	CostTable []CostRow `json:"cost_table"`
}
