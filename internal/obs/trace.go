// Package obs is the query-execution tracing and instrumentation layer:
// span trees for the parse → canonicalize → rewrite → evaluate pipeline,
// and per-operator cost tables pairing the comparisons the evaluator
// actually performed (eval.Meter) with the Lemma 1 predicted bounds.
//
// A *Trace is carried through the pipeline via context.Context (WithTrace /
// FromContext); each stage opens spans on it and attaches attributes. The
// assembled QueryTrace is rendered as an ASCII tree for the CLI (-trace)
// and marshals to JSON for the query service (POST /v1/query with
// "trace": true).
//
// The package is stdlib-only and allocation-light: tracing a query costs a
// few span allocations plus the meter's atomic counters; untraced queries
// pay nothing (a nil *Trace and nil *Span are valid receivers everywhere
// and make every method a no-op).
package obs

import (
	"context"
	"sync"
	"time"
)

// Trace is one query execution's span tree. Create with NewTrace, carry via
// WithTrace/FromContext, and read Root after the pipeline finishes. All
// methods are safe for concurrent use and valid on a nil receiver.
type Trace struct {
	mu    sync.Mutex
	start time.Time
	root  *Span
	id    string
}

// NewTrace starts a trace whose root span carries the given name.
func NewTrace(name string) *Trace {
	t := &Trace{start: time.Now()}
	t.root = &Span{trace: t, Name: name}
	return t
}

// ID returns the trace id, minting one on first use. Minted ids are 16
// random bytes in lowercase hex — the W3C trace-id shape — so they can be
// propagated on a traceparent header as-is.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.id == "" {
		t.id = NewTraceID()
	}
	return t.id
}

// SetID pins the trace id — used by workers adopting a propagated id.
func (t *Trace) SetID(id string) {
	if t == nil || id == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.id = id
}

// Root returns the root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// StartSpan opens a child of the root span.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return t.root.StartChild(name)
}

// End closes the root span, fixing the trace's total duration.
func (t *Trace) End() {
	if t == nil {
		return
	}
	t.root.End()
}

// sinceUS is the trace clock: microseconds since the trace started.
func (t *Trace) sinceUS() int64 {
	return int64(time.Since(t.start) / time.Microsecond)
}

// Span is one timed stage of a traced query. Exported fields form the JSON
// wire shape; mutate only through the methods, which lock the owning trace.
type Span struct {
	trace *Trace
	ended bool

	// Name identifies the stage ("parse", "rewrite", an operator label…).
	Name string `json:"name"`
	// Worker attributes the span to the process that recorded it — a worker
	// base URL on grafted subtrees, "coordinator" on locally recorded spans
	// of a stitched distributed trace, empty on single-node traces.
	Worker string `json:"worker,omitempty"`
	// StartUS is the span's start offset from the trace start, µs.
	StartUS int64 `json:"start_us"`
	// DurationUS is the span's duration, µs (0 until End).
	DurationUS int64 `json:"duration_us"`
	// Attrs carries the stage's key/value annotations.
	Attrs map[string]any `json:"attrs,omitempty"`
	// Children are the nested spans, in start order.
	Children []*Span `json:"children,omitempty"`
}

// StartChild opens a nested span. Valid on a nil receiver (returns nil).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	c := &Span{trace: t, Name: name, StartUS: t.sinceUS()}
	s.Children = append(s.Children, c)
	return c
}

// End closes the span; later calls are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	if !s.ended {
		s.ended = true
		s.DurationUS = t.sinceUS() - s.StartUS
	}
}

// SetAttr annotates the span. Values should be JSON-marshalable scalars.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]any)
	}
	s.Attrs[key] = value
}

// ctxKey is the context key for a *Trace.
type ctxKey struct{}

// WithTrace returns a context carrying the trace; a nil trace returns ctx
// unchanged.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext extracts the trace carried by the context, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
