package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
	"wlq/internal/core/rewrite"
	"wlq/internal/wlog"
)

func TestTraceContextRoundTrip(t *testing.T) {
	tr := NewTrace("q")
	ctx := WithTrace(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %p, want %p", got, tr)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext(empty) = %p, want nil", got)
	}
	if ctx2 := WithTrace(context.Background(), nil); FromContext(ctx2) != nil {
		t.Fatal("WithTrace(nil) must not store a trace")
	}
}

func TestNilTraceAndSpanAreNoOps(t *testing.T) {
	var tr *Trace
	if tr.Root() != nil {
		t.Error("nil trace root not nil")
	}
	sp := tr.StartSpan("x") // must not panic
	sp.SetAttr("k", 1)
	sp.End()
	if c := sp.StartChild("y"); c != nil {
		t.Error("nil span child not nil")
	}
	tr.End()
}

func TestSpanNesting(t *testing.T) {
	tr := NewTrace("root")
	a := tr.StartSpan("a")
	b := a.StartChild("b")
	b.SetAttr("k", "v")
	b.End()
	a.End()
	tr.End()

	root := tr.Root()
	if root.Name != "root" || len(root.Children) != 1 {
		t.Fatalf("root = %q with %d children", root.Name, len(root.Children))
	}
	if got := root.Children[0]; got.Name != "a" || len(got.Children) != 1 ||
		got.Children[0].Name != "b" || got.Children[0].Attrs["k"] != "v" {
		t.Fatalf("unexpected span tree: %+v", got)
	}
}

// traceFixture evaluates a metered query over a tiny log.
func traceFixture(t *testing.T, query string) (pattern.Node, *eval.Meter) {
	t.Helper()
	var b wlog.Builder
	w1 := b.Start()
	w2 := b.Start()
	for _, act := range []string{"A", "B", "C", "D"} {
		if err := b.Emit(w1, act, nil, nil); err != nil {
			t.Fatal(err)
		}
		if err := b.Emit(w2, act, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	l := b.MustBuild()
	p := pattern.MustParse(query)
	m := eval.NewMeter(p)
	eval.New(eval.NewIndex(l), eval.Options{Strategy: eval.StrategyNaive, Meter: m}).Eval(p)
	return p, m
}

func TestCostTableShape(t *testing.T) {
	p, m := traceFixture(t, "(A -> B) | (C & D)")
	rows := CostTable(p, m)
	if len(rows) != pattern.Size(p) {
		t.Fatalf("%d rows, want one per node (%d)", len(rows), pattern.Size(p))
	}
	if rows[0].Depth != 0 || rows[0].Op != "choice" || rows[0].Symbol == "" {
		t.Errorf("root row = %+v", rows[0])
	}
	wantBounds := map[string]string{
		"choice":     "n1·n2·min(k1,k2)",
		"parallel":   "n1·n2·(k1+k2)",
		"sequential": "n1·n2",
		"atom":       "n (index scan)",
	}
	for _, r := range rows {
		if r.Bound != wantBounds[r.Op] {
			t.Errorf("%s row bound = %q, want %q", r.Op, r.Bound, wantBounds[r.Op])
		}
		if r.Op != "atom" && r.Comparisons > r.Predicted {
			t.Errorf("%s: comparisons %d > predicted %d under naive", r.Node, r.Comparisons, r.Predicted)
		}
	}
}

func TestEvalSpansMirrorPlan(t *testing.T) {
	p, m := traceFixture(t, "(A -> B) | (C & D)")
	tr := NewTrace("q")
	sp := tr.StartSpan("eval")
	EvalSpans(sp, p, m)
	sp.End()

	var count func(s *Span) int
	count = func(s *Span) int {
		n := 1
		for _, c := range s.Children {
			n += count(c)
		}
		return n
	}
	// eval span + one span per plan node
	if got, want := count(sp), 1+pattern.Size(p); got != want {
		t.Fatalf("span count = %d, want %d", got, want)
	}
	root := sp.Children[0]
	if root.Attrs["bound"] != "n1·n2·min(k1,k2)" {
		t.Errorf("root bound attr = %v", root.Attrs["bound"])
	}
	for _, key := range []string{"node", "evals", "comparisons", "outputs", "predicted", "n1", "n2", "k1", "k2"} {
		if _, ok := root.Attrs[key]; !ok {
			t.Errorf("root span missing attr %q", key)
		}
	}
}

func TestRewriteSpansCarryTheorems(t *testing.T) {
	tr := rewrite.Trace{
		Input:  pattern.MustParse("A -> B"),
		Output: pattern.MustParse("A -> B"),
		Details: []rewrite.Step{
			{Law: "factored shared choice operand", Theorem: "Theorem 5", Before: 10, After: 4},
		},
	}
	root := NewTrace("q")
	sp := root.StartSpan("rewrite")
	RewriteSpans(sp, tr)
	sp.End()
	if len(sp.Children) != 1 {
		t.Fatalf("%d law spans, want 1", len(sp.Children))
	}
	law := sp.Children[0]
	if law.Attrs["theorem"] != "Theorem 5" || law.Attrs["cost_before"] != 10.0 || law.Attrs["cost_after"] != 4.0 {
		t.Errorf("law span attrs = %v", law.Attrs)
	}
}

func TestQueryTraceJSONAndRender(t *testing.T) {
	p, m := traceFixture(t, "A . B")
	tr := NewTrace("q")
	sp := tr.StartSpan("eval")
	EvalSpans(sp, p, m)
	sp.End()
	tr.End()
	qt := &QueryTrace{
		Query:     "A . B",
		Plan:      p.String(),
		Strategy:  "naive",
		Spans:     tr.Root(),
		CostTable: CostTable(p, m),
	}

	raw, err := json.Marshal(qt)
	if err != nil {
		t.Fatal(err)
	}
	var back QueryTrace
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Query != qt.Query || len(back.CostTable) != len(qt.CostTable) || back.Spans == nil {
		t.Errorf("JSON round trip lost data: %+v", back)
	}

	var buf bytes.Buffer
	qt.Render(&buf)
	text := buf.String()
	for _, want := range []string{"A . B", "consecutive", "predicted", "n1·n2", "strategy: naive"} {
		if !strings.Contains(text, want) {
			t.Errorf("render output missing %q:\n%s", want, text)
		}
	}
}
