package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// Render writes the trace as an ASCII span tree followed by the cost
// table — the CLI's -trace output.
func (qt *QueryTrace) Render(w io.Writer) {
	if qt == nil {
		return
	}
	fmt.Fprintf(w, "trace: %s\n", qt.Query)
	if qt.Plan != qt.Query {
		fmt.Fprintf(w, "plan:  %s\n", qt.Plan)
	}
	fmt.Fprintf(w, "strategy: %s\n", qt.Strategy)
	if qt.TraceID != "" {
		fmt.Fprintf(w, "trace_id: %s\n", qt.TraceID)
	}
	RenderSpan(w, qt.Spans, "")
	fmt.Fprintln(w)
	RenderCostTable(w, qt.CostTable)
}

// RenderSpan writes one span subtree as an indented ASCII tree with
// durations and attributes.
func RenderSpan(w io.Writer, s *Span, indent string) {
	if s == nil {
		return
	}
	worker := ""
	if s.Worker != "" {
		worker = " [" + s.Worker + "]"
	}
	fmt.Fprintf(w, "%s%s%s (%dµs)%s\n", indent, s.Name, worker, s.DurationUS, attrString(s.Attrs))
	for _, c := range s.Children {
		RenderSpan(w, c, indent+"  ")
	}
}

// attrString renders attributes key-sorted as " k=v k=v" (empty when none).
func attrString(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, " %s=%v", k, attrs[k])
	}
	return sb.String()
}

// RenderCostTable writes the measured-vs-predicted accounting as an aligned
// table, one row per plan node, indented by tree depth.
func RenderCostTable(w io.Writer, rows []CostRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "node\top\tn1\tn2\tk1\tk2\tcomparisons\toutputs\tpredicted\tbound\tevals\tmemo")
	for _, r := range rows {
		op := r.Op
		if r.Symbol != "" {
			op = r.Symbol + " " + r.Op
		}
		fmt.Fprintf(tw, "%s%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t%d\t%d\n",
			strings.Repeat(". ", r.Depth), r.Node, op,
			r.N1, r.N2, r.K1, r.K2,
			r.Comparisons, r.Outputs, r.Predicted, r.Bound, r.Evals, r.MemoHits)
	}
	tw.Flush()
}
