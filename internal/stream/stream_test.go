package stream

import (
	"errors"
	"strings"
	"testing"

	"wlq/internal/clinic"
	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
	"wlq/internal/wlog"
)

func TestWatchRegistration(t *testing.T) {
	m := NewMonitor(nil)
	if err := m.Watch("w1", "A -> B"); err != nil {
		t.Fatal(err)
	}
	if err := m.Watch("w1", "B -> A"); !errors.Is(err, ErrDuplicateWatch) {
		t.Errorf("duplicate watch: %v", err)
	}
	if err := m.Watch("w2", "A -> "); err == nil {
		t.Error("bad query accepted")
	}
	names := m.WatchNames()
	if len(names) != 1 || names[0] != "w1" {
		t.Errorf("WatchNames = %v", names)
	}
}

func TestMonitorFiresAtExactRecord(t *testing.T) {
	var alerts []Alert
	m := NewMonitor(func(a Alert) { alerts = append(alerts, a) })
	if err := m.Watch("pair", "A -> B"); err != nil {
		t.Fatal(err)
	}

	recs := []wlog.Record{
		{LSN: 1, WID: 1, Seq: 1, Activity: wlog.ActivityStart},
		{LSN: 2, WID: 1, Seq: 2, Activity: "A"},
		{LSN: 3, WID: 2, Seq: 1, Activity: wlog.ActivityStart},
		{LSN: 4, WID: 2, Seq: 2, Activity: "B"}, // no A before: must not fire
		{LSN: 5, WID: 1, Seq: 3, Activity: "B"}, // completes A -> B in wid 1
		{LSN: 6, WID: 1, Seq: 4, Activity: "B"}, // second match: no re-alert
	}
	for _, r := range recs {
		if err := m.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	if len(alerts) != 1 {
		t.Fatalf("alerts = %v, want exactly 1", alerts)
	}
	a := alerts[0]
	if a.WID != 1 || a.LSN != 5 || a.Watch != "pair" {
		t.Errorf("alert = %+v", a)
	}
	if !strings.Contains(a.String(), "pair") || !strings.Contains(a.String(), "lsn=5") {
		t.Errorf("Alert.String = %q", a.String())
	}
	if m.Alerts() != 1 || m.FiredInstances("pair") != 1 || m.FiredInstances("nope") != 0 {
		t.Errorf("counters wrong: %d, %d", m.Alerts(), m.FiredInstances("pair"))
	}
	if m.Records() != len(recs) {
		t.Errorf("Records = %d", m.Records())
	}
}

func TestMonitorPerInstanceAlerts(t *testing.T) {
	m := NewMonitor(nil)
	if err := m.Watch("w", "A"); err != nil {
		t.Fatal(err)
	}
	// Two instances, both eventually matching: one alert each.
	recs := []wlog.Record{
		{LSN: 1, WID: 1, Seq: 1, Activity: wlog.ActivityStart},
		{LSN: 2, WID: 2, Seq: 1, Activity: wlog.ActivityStart},
		{LSN: 3, WID: 1, Seq: 2, Activity: "A"},
		{LSN: 4, WID: 2, Seq: 2, Activity: "A"},
		{LSN: 5, WID: 2, Seq: 3, Activity: "A"},
	}
	for _, r := range recs {
		if err := m.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	if m.FiredInstances("w") != 2 || m.Alerts() != 2 {
		t.Errorf("fired = %d, alerts = %d; want 2, 2", m.FiredInstances("w"), m.Alerts())
	}
}

func TestIngestDiscipline(t *testing.T) {
	start := wlog.Record{LSN: 1, WID: 1, Seq: 1, Activity: wlog.ActivityStart}
	tests := []struct {
		name string
		recs []wlog.Record
		want error
	}{
		{
			name: "lsn gap",
			recs: []wlog.Record{start, {LSN: 3, WID: 1, Seq: 2, Activity: "A"}},
			want: ErrBadLSN,
		},
		{
			name: "lsn restart",
			recs: []wlog.Record{start, {LSN: 1, WID: 1, Seq: 2, Activity: "A"}},
			want: ErrBadLSN,
		},
		{
			name: "seq gap",
			recs: []wlog.Record{start, {LSN: 2, WID: 1, Seq: 3, Activity: "A"}},
			want: ErrBadSeq,
		},
		{
			name: "first record not START",
			recs: []wlog.Record{{LSN: 1, WID: 1, Seq: 1, Activity: "A"}},
			want: ErrBadSeq,
		},
		{
			name: "START mid-instance",
			recs: []wlog.Record{start, {LSN: 2, WID: 1, Seq: 2, Activity: wlog.ActivityStart}},
			want: ErrBadSeq,
		},
		{
			name: "record after END",
			recs: []wlog.Record{
				start,
				{LSN: 2, WID: 1, Seq: 2, Activity: wlog.ActivityEnd},
				{LSN: 3, WID: 1, Seq: 3, Activity: "A"},
			},
			want: ErrBadSeq,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := NewMonitor(nil)
			var err error
			for _, r := range tt.recs {
				if err = m.Ingest(r); err != nil {
					break
				}
			}
			if !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

// TestMonitorMatchesBatchEvaluation: after replaying a full log, the
// monitor's fired-instance counts must equal the batch evaluator's
// distinct-instance counts, and ad-hoc Query must equal batch results.
func TestMonitorMatchesBatchEvaluation(t *testing.T) {
	l, err := clinic.Generate(150, 77)
	if err != nil {
		t.Fatal(err)
	}
	queries := map[string]string{
		"anomaly":  "GetReimburse -> UpdateRefer",
		"journey":  "CheckIn -> SeeDoctor -> PayTreatment",
		"pay-pair": "SeeDoctor . PayTreatment",
	}
	m := NewMonitor(nil)
	for name, q := range queries {
		if err := m.Watch(name, q); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.IngestLog(l); err != nil {
		t.Fatal(err)
	}

	ix := eval.NewIndex(l)
	e := eval.New(ix, eval.Options{})
	for name, q := range queries {
		batch := e.Eval(pattern.MustParse(q))
		if got := m.FiredInstances(name); got != len(batch.WIDs()) {
			t.Errorf("%s: monitor fired in %d instances, batch found %d",
				name, got, len(batch.WIDs()))
		}
		streamSet, err := m.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !streamSet.Equal(batch) {
			t.Errorf("%s: ad-hoc Query differs from batch", name)
		}
	}
	if _, err := m.Query("("); err == nil {
		t.Error("Query with syntax error: want error")
	}
}

func TestUnwatch(t *testing.T) {
	m := NewMonitor(nil)
	if err := m.Watch("w", "A"); err != nil {
		t.Fatal(err)
	}
	if !m.Unwatch("w") {
		t.Error("Unwatch(w) = false")
	}
	if m.Unwatch("w") {
		t.Error("double Unwatch = true")
	}
	if len(m.WatchNames()) != 0 {
		t.Errorf("watches left: %v", m.WatchNames())
	}
	// Re-registering the same name works after removal.
	if err := m.Watch("w", "B"); err != nil {
		t.Fatal(err)
	}
	recs := []wlog.Record{
		{LSN: 1, WID: 1, Seq: 1, Activity: wlog.ActivityStart},
		{LSN: 2, WID: 1, Seq: 2, Activity: "A"},
		{LSN: 3, WID: 1, Seq: 3, Activity: "B"},
	}
	for _, r := range recs {
		if err := m.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	if m.FiredInstances("w") != 1 {
		t.Errorf("re-registered watch fired %d", m.FiredInstances("w"))
	}
}
