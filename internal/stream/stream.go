// Package stream implements continuous query evaluation over a growing
// workflow log — the runtime-monitoring use of Figure 2 of the paper, where
// the execution engine appends to the log while analysts' queries watch it.
//
// A Monitor ingests records one at a time (enforcing the Definition 2 log
// discipline incrementally), maintains the Algorithm 2 index incrementally,
// and re-evaluates registered watch patterns against only the workflow
// instance each record extends. Because incidents never span instances
// (Definition 4), that per-instance re-evaluation is exact: a new record
// can only create incidents within its own instance.
//
// Concurrency contract: a Monitor is safe for concurrent use. Ingest takes
// the write lock; Query, Validate and every accessor take the read lock.
// Callers that need a stable view across several calls (the server's query
// path reads the Source for planning, then evaluates, then caches) bracket
// them with RLock/RUnlock — the backend is immutable while the read lock is
// held, which is exactly the immutability an eval.Evaluator requires of its
// Source.
package stream

import (
	"errors"
	"fmt"
	"sync"

	"wlq/internal/core/eval"
	"wlq/internal/core/incident"
	"wlq/internal/core/pattern"
	"wlq/internal/wlog"
)

// Backend is the incrementally-maintained index a Monitor appends to: an
// eval.Source that also supports Algorithm 2 maintenance one record at a
// time. eval.Index is the row backend; colstore.LiveStore is the
// columnar-symbol backend. Append must only be called while the Monitor's
// write lock is held (the Monitor guarantees this).
type Backend interface {
	eval.Source
	Append(r wlog.Record)
}

// Alert reports a watch firing: the named pattern gained its first incident
// in some workflow instance.
type Alert struct {
	// Watch is the name given at registration.
	Watch string
	// Query is the watch's pattern in textual form.
	Query string
	// WID is the workflow instance the incident occurred in.
	WID uint64
	// LSN is the log sequence number of the record that completed the
	// incident.
	LSN uint64
	// Incident is one witnessing incident (the canonical first).
	Incident incident.Incident
}

// String renders the alert for logs and CLIs.
func (a Alert) String() string {
	return fmt.Sprintf("watch %q fired at lsn=%d: %s (query %s)",
		a.Watch, a.LSN, a.Incident, a.Query)
}

// Handler receives alerts synchronously during Ingest, while the Monitor's
// write lock is held; handlers must not call back into the Monitor.
type Handler func(Alert)

// Ingestion errors.
var (
	// ErrBadLSN is returned when a record's lsn is not the next in sequence.
	ErrBadLSN = errors.New("stream: log sequence number not consecutive")
	// ErrBadSeq is returned when a record violates the per-instance
	// discipline of Definition 2 (START/is-lsn/END conditions).
	ErrBadSeq = errors.New("stream: instance sequence violation")
	// ErrDuplicateWatch is returned when a watch name is registered twice.
	ErrDuplicateWatch = errors.New("stream: duplicate watch name")
)

type watch struct {
	name  string
	query string
	p     pattern.Node
	// firedIn records instances already alerted, so each watch alerts at
	// most once per instance.
	firedIn map[uint64]struct{}
}

// Monitor incrementally evaluates watches over an append-only log.
// Safe for concurrent use; see the package comment for the lock contract.
type Monitor struct {
	mu      sync.RWMutex
	backend Backend
	ev      *eval.Evaluator
	handler Handler
	watches []*watch

	nextLSN uint64
	nextSeq map[uint64]uint64
	ended   map[uint64]struct{}
	alerts  int
}

// NewMonitor creates a Monitor over a fresh row backend (eval.Index),
// delivering alerts to handler (which may be nil when only the Alerts
// counter and FiredInstances are wanted).
func NewMonitor(handler Handler) *Monitor {
	return NewMonitorOn(handler, eval.NewEmptyIndex())
}

// NewMonitorOn creates a Monitor over an existing backend — typically one
// pre-loaded from a base snapshot, so live appends continue where the
// snapshot ends. nextLSN picks up after the backend's newest record.
func NewMonitorOn(handler Handler, backend Backend) *Monitor {
	next := uint64(1)
	nextSeq := make(map[uint64]uint64)
	ended := make(map[uint64]struct{})
	for _, wid := range backend.WIDs() {
		recs := backend.Instance(wid)
		if len(recs) == 0 {
			continue
		}
		last := recs[len(recs)-1]
		nextSeq[wid] = last.Seq + 1
		if last.IsEnd() {
			ended[wid] = struct{}{}
		}
		for _, r := range recs {
			if r.LSN >= next {
				next = r.LSN + 1
			}
		}
	}
	return &Monitor{
		backend: backend,
		ev:      eval.New(backend, eval.Options{}),
		handler: handler,
		nextLSN: next,
		nextSeq: nextSeq,
		ended:   ended,
	}
}

// Watch registers a named pattern. Watches alert at most once per workflow
// instance, at the moment the instance first contains an incident.
func (m *Monitor) Watch(name, query string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, w := range m.watches {
		if w.name == name {
			return fmt.Errorf("%w: %q", ErrDuplicateWatch, name)
		}
	}
	p, err := pattern.Parse(query)
	if err != nil {
		return err
	}
	m.watches = append(m.watches, &watch{
		name:    name,
		query:   query,
		p:       p,
		firedIn: make(map[uint64]struct{}),
	})
	return nil
}

// WatchNames returns the registered watch names in registration order.
func (m *Monitor) WatchNames() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, len(m.watches))
	for i, w := range m.watches {
		names[i] = w.name
	}
	return names
}

// validateLocked checks r against the Definition 2 discipline without
// mutating anything. Caller holds at least the read lock.
func (m *Monitor) validateLocked(r wlog.Record) error {
	if r.LSN != m.nextLSN {
		return fmt.Errorf("%w: got %d, want %d", ErrBadLSN, r.LSN, m.nextLSN)
	}
	if _, done := m.ended[r.WID]; done {
		return fmt.Errorf("%w: record after END of wid %d", ErrBadSeq, r.WID)
	}
	wantSeq := m.nextSeq[r.WID]
	if wantSeq == 0 {
		wantSeq = 1
	}
	if r.Seq != wantSeq {
		return fmt.Errorf("%w: wid %d got is-lsn %d, want %d", ErrBadSeq, r.WID, r.Seq, wantSeq)
	}
	if (r.Seq == 1) != r.IsStart() {
		return fmt.Errorf("%w: wid %d activity %q at is-lsn %d (START iff is-lsn=1)",
			ErrBadSeq, r.WID, r.Activity, r.Seq)
	}
	return nil
}

// Validate checks whether Ingest would accept r, without ingesting it. The
// answer is advisory under concurrency — another Ingest may land between
// Validate and Ingest — so the ingest coordinator calls it while externally
// serialized.
func (m *Monitor) Validate(r wlog.Record) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.validateLocked(r)
}

// Ingest appends one record, enforcing the log discipline, and evaluates
// every not-yet-fired watch against the record's instance.
func (m *Monitor) Ingest(r wlog.Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.validateLocked(r); err != nil {
		return err
	}

	m.backend.Append(r)
	m.nextLSN++
	m.nextSeq[r.WID] = r.Seq + 1
	if r.IsEnd() {
		m.ended[r.WID] = struct{}{}
	}

	for _, w := range m.watches {
		if _, fired := w.firedIn[r.WID]; fired {
			continue
		}
		set := m.ev.EvalInstance(w.p, r.WID)
		if set.Len() == 0 {
			continue
		}
		w.firedIn[r.WID] = struct{}{}
		m.alerts++
		if m.handler != nil {
			m.handler(Alert{
				Watch:    w.name,
				Query:    w.query,
				WID:      r.WID,
				LSN:      r.LSN,
				Incident: set.At(0),
			})
		}
	}
	return nil
}

// IngestLog replays an entire log through the monitor.
func (m *Monitor) IngestLog(l *wlog.Log) error {
	for i := 0; i < l.Len(); i++ {
		if err := m.Ingest(l.Record(i)); err != nil {
			return fmt.Errorf("record %d: %w", i+1, err)
		}
	}
	return nil
}

// Alerts returns how many alerts have been raised in total.
func (m *Monitor) Alerts() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.alerts
}

// FiredInstances returns how many instances the named watch has alerted
// for (0 for unknown names).
func (m *Monitor) FiredInstances(name string) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, w := range m.watches {
		if w.name == name {
			return len(w.firedIn)
		}
	}
	return 0
}

// Records returns the number of records ingested so far.
func (m *Monitor) Records() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.backend.TotalRecords()
}

// LastLSN returns the lsn of the newest ingested record (0 when empty).
func (m *Monitor) LastLSN() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.nextLSN - 1
}

// Source exposes the backend for read-only planning and evaluation. The
// caller must hold the Monitor's read lock (RLock) for the whole time it
// reads the Source — the lock is what makes the Source "immutable" in the
// sense eval.Evaluator requires.
func (m *Monitor) Source() eval.Source { return m.backend }

// LastLSNLocked returns the watermark without acquiring the lock. The
// caller must already hold RLock: re-acquiring the read lock while holding
// it can deadlock behind a queued writer (sync.RWMutex is not reentrant).
func (m *Monitor) LastLSNLocked() uint64 { return m.nextLSN - 1 }

// RLock takes the Monitor's read lock, freezing the backend against
// appends; pair with RUnlock.
func (m *Monitor) RLock() { m.mu.RLock() }

// RUnlock releases RLock.
func (m *Monitor) RUnlock() { m.mu.RUnlock() }

// Query evaluates an ad-hoc pattern over everything ingested so far.
func (m *Monitor) Query(query string) (*incident.Set, error) {
	p, err := pattern.Parse(query)
	if err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.ev.Eval(p), nil
}

// Unwatch removes a registered watch; it reports whether the name existed.
func (m *Monitor) Unwatch(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, w := range m.watches {
		if w.name == name {
			m.watches = append(m.watches[:i], m.watches[i+1:]...)
			return true
		}
	}
	return false
}
