package stream

import (
	"sync"
	"testing"

	"wlq/internal/clinic"
)

// The Monitor's concurrency contract under the race detector: one writer
// ingesting a full clinic log while readers hammer Query, the accessors and
// the RLock/Source window the server's query path uses. Answers read mid-
// stream must be internally consistent (a frozen view), and the final state
// must match a serial ingest of the same log.
func TestMonitorConcurrentIngestQuery(t *testing.T) {
	l, err := clinic.Generate(80, 99)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(nil)
	if err := m.Watch("refer", "GetRefer -> SeeDoctor"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers: ad-hoc queries, accessors, and the explicit RLock window.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := m.Query("GetRefer -> PayTreatment"); err != nil {
					t.Errorf("Query: %v", err)
					return
				}
				_ = m.Alerts()
				_ = m.Records()
				_ = m.LastLSN()
				_ = m.FiredInstances("refer")
				// The server's pattern: freeze the backend, read it twice;
				// both reads must agree because appends are locked out.
				m.RLock()
				a := m.Source().TotalRecords()
				b := m.Source().TotalRecords()
				m.RUnlock()
				if a != b {
					t.Errorf("Source changed under RLock: %d then %d", a, b)
					return
				}
			}
		}()
	}

	// The writer: the whole log, one record at a time.
	for i := 0; i < l.Len(); i++ {
		if err := m.Ingest(l.Record(i)); err != nil {
			t.Fatalf("Ingest %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	// Final state must equal a serial ingest.
	serial := NewMonitor(nil)
	if err := serial.Watch("refer", "GetRefer -> SeeDoctor"); err != nil {
		t.Fatal(err)
	}
	if err := serial.IngestLog(l); err != nil {
		t.Fatal(err)
	}
	if m.Records() != serial.Records() || m.LastLSN() != serial.LastLSN() {
		t.Fatalf("concurrent state diverged: %d/%d records, lsn %d/%d",
			m.Records(), serial.Records(), m.LastLSN(), serial.LastLSN())
	}
	if m.FiredInstances("refer") != serial.FiredInstances("refer") {
		t.Fatalf("alert counts diverged: %d vs %d",
			m.FiredInstances("refer"), serial.FiredInstances("refer"))
	}
	got, err := m.Query("GetRefer -> SeeDoctor")
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.Query("GetRefer -> SeeDoctor")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("final answers diverged:\nconcurrent: %s\nserial:     %s", got, want)
	}
}

// Validate must be non-mutating: validating the same record repeatedly,
// interleaved with ingests, never changes the accept/reject outcome the
// subsequent Ingest sees.
func TestMonitorValidateDoesNotMutate(t *testing.T) {
	l, err := clinic.Generate(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(nil)
	for i := 0; i < l.Len(); i++ {
		r := l.Record(i)
		for k := 0; k < 3; k++ {
			if err := m.Validate(r); err != nil {
				t.Fatalf("Validate record %d (pass %d): %v", i, k, err)
			}
		}
		// A wrong-lsn probe must reject without perturbing state.
		bad := r
		bad.LSN += 7
		if err := m.Validate(bad); err == nil {
			t.Fatalf("Validate accepted lsn gap at record %d", i)
		}
		if err := m.Ingest(r); err != nil {
			t.Fatalf("Ingest record %d after Validate: %v", i, err)
		}
	}
}

// NewMonitorOn over a pre-loaded backend must continue the lsn and seq
// sequences where the snapshot ends — the startup path of live ingestion.
func TestMonitorOnPreloadedBackend(t *testing.T) {
	l, err := clinic.Generate(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	serial := NewMonitor(nil)
	if err := serial.IngestLog(l); err != nil {
		t.Fatal(err)
	}

	// Preload a fresh backend with the same records, then resume.
	pre := NewMonitor(nil)
	if err := pre.IngestLog(l); err != nil {
		t.Fatal(err)
	}
	resumed := NewMonitorOn(nil, pre.backend)
	if resumed.LastLSN() != serial.LastLSN() {
		t.Fatalf("resumed lsn %d, want %d", resumed.LastLSN(), serial.LastLSN())
	}
	// The next append continues the global sequence; an old lsn is refused.
	r := l.Record(l.Len() - 1)
	if err := resumed.Ingest(r); err == nil {
		t.Fatal("resumed monitor re-accepted an already-ingested record")
	}
}
