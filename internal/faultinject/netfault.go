package faultinject

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
)

// Network fault injection for the cluster chaos suites. The production seam
// is cluster.Config.Transport (an http.RoundTripper): tests wrap the real
// transport in a FlakyRoundTripper to fail, blackhole or reroute exact
// requests — by ordinal, scoped to one worker — without killing processes
// or sleeping. HangableListener covers the one fault a RoundTripper cannot
// express from the client side: a server that accepts the connection and
// then never answers.

// FlakyRoundTripper wraps an http.RoundTripper with deterministic faults.
// Faults fire by request ordinal (NthCall semantics: exactly once, on an
// exact call), counting only requests whose URL contains Match (empty
// matches everything) — so a test can blackhole worker 2's third request
// while the rest of the fleet stays healthy.
type FlakyRoundTripper struct {
	// Next is the real transport (nil = http.DefaultTransport).
	Next http.RoundTripper
	// Match scopes fault counting to requests whose URL contains it.
	Match string
	// FailOn makes the matching request fail immediately with a transport
	// error wrapping ErrInjected — a connection reset, from the caller's
	// point of view.
	FailOn *NthCall
	// BlackholeOn makes the matching request hang until its context is
	// cancelled, then return the context error: a partitioned peer. The
	// caller's attempt timeout (or hedge) is what ends it, exactly as on a
	// real network.
	BlackholeOn *NthCall
	// RerouteTo, when non-empty, redirects EVERY matching request to this
	// base URL (scheme://host) instead of the original. It models a stale
	// membership list / DNS pointing at the wrong node: the receiver answers
	// as itself and the coordinator's ring cross-check must catch it.
	RerouteTo string
}

// RoundTrip implements http.RoundTripper.
func (f *FlakyRoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	if f.Match == "" || strings.Contains(req.URL.String(), f.Match) {
		if f.FailOn.Hit() {
			return nil, fmt.Errorf("connection reset by fault injection: %w", ErrInjected)
		}
		if f.BlackholeOn.Hit() {
			<-req.Context().Done()
			return nil, fmt.Errorf("blackholed request: %w", req.Context().Err())
		}
		if f.RerouteTo != "" {
			clone := req.Clone(req.Context())
			target := strings.TrimSuffix(f.RerouteTo, "/") + req.URL.Path
			u, err := clone.URL.Parse(target)
			if err != nil {
				return nil, fmt.Errorf("reroute %q: %w", f.RerouteTo, err)
			}
			clone.URL = u
			clone.Host = u.Host
			req = clone
		}
	}
	next := f.Next
	if next == nil {
		next = http.DefaultTransport
	}
	return next.RoundTrip(req)
}

// HangableListener wraps a net.Listener so a test can make the server
// behind it stop answering — accepted connections stay open but all reads
// from them stall — and later resume. From a client's side this is the
// worst network fault: TCP connects fine, the request goes out, and no
// bytes ever come back. Unlike killing the server there is no RST to fail
// fast on; only the client's own deadline ends the wait.
type HangableListener struct {
	net.Listener
	mu        sync.Mutex
	hung      bool
	release   chan struct{} // closed on Resume; conns blocked in Read wake up
	closed    chan struct{} // closed on Close; hung Reads unblock with ErrClosed
	closeOnce sync.Once
}

// NewHangableListener wraps ln; the listener starts in the normal
// (answering) state.
func NewHangableListener(ln net.Listener) *HangableListener {
	return &HangableListener{
		Listener: ln,
		release:  make(chan struct{}),
		closed:   make(chan struct{}),
	}
}

// Close unblocks every hung Read (with net.ErrClosed) and closes the
// wrapped listener, so a test torn down mid-hang leaks no goroutines.
func (h *HangableListener) Close() error {
	h.closeOnce.Do(func() { close(h.closed) })
	return h.Listener.Close()
}

// Accept returns connections whose reads stall while the listener is hung.
func (h *HangableListener) Accept() (net.Conn, error) {
	c, err := h.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &hangConn{Conn: c, owner: h}, nil
}

// Hang makes every connection (current and future) stall on Read until
// Resume. Idempotent.
func (h *HangableListener) Hang() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.hung {
		h.hung = true
		h.release = make(chan struct{})
	}
}

// Resume wakes every stalled Read and lets traffic flow again. Idempotent.
func (h *HangableListener) Resume() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.hung {
		h.hung = false
		close(h.release)
	}
}

// gate returns the current hang state and its release channel.
func (h *HangableListener) gate() (bool, chan struct{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hung, h.release
}

// hangConn is a connection whose Read blocks while the owning listener is
// hung. Writes still succeed (the request reaches the server; the response
// never comes back — the half-open behavior a partition actually shows).
type hangConn struct {
	net.Conn
	owner *HangableListener
}

func (c *hangConn) Read(p []byte) (int, error) {
	for {
		hung, release := c.owner.gate()
		if !hung {
			return c.Conn.Read(p)
		}
		select {
		case <-release:
			// Resumed; loop to re-check (a test may Hang again).
		case <-c.owner.closed:
			return 0, net.ErrClosed
		}
	}
}
