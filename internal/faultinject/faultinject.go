// Package faultinject provides deterministic fault injection for the chaos
// test suites. Every fault is seedable and repeatable: an injection point
// fires on an exact call ordinal (NthCall), a reader fails at an exact byte
// offset (ErrorReader), a clock skews by an exact duration (SkewClock) — no
// randomness, no sleeps, no timing races, so a chaos test that fails once
// fails every time under the same seed.
//
// The package is imported ONLY from tests. Production code exposes the
// seams — eval.SetEvalHook, resilience.SetClock, io.Reader wrapping — and
// this package supplies deterministic faults to plug into them. Nothing
// here touches global state by itself.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected I/O failure, so
// tests can assert a failure came from the harness and not the code under
// test: errors.Is(err, faultinject.ErrInjected).
var ErrInjected = errors.New("injected fault")

// NthCall fires an action on exactly the nth invocation (1-based) of an
// injection point. It is safe for concurrent use: under a parallel
// evaluation many workers hit the same point, and exactly one observes the
// fault. Subsequent calls do nothing, so a harness stays armed across
// retries without re-firing.
type NthCall struct {
	n     uint64
	calls atomic.Uint64
}

// OnNthCall arms an injection point that fires on the nth call (n < 1 never
// fires).
func OnNthCall(n uint64) *NthCall { return &NthCall{n: n} }

// Hit records one invocation and reports whether this is the firing one.
func (c *NthCall) Hit() bool {
	if c == nil || c.n == 0 {
		return false
	}
	return c.calls.Add(1) == c.n
}

// Calls returns how many invocations the point has seen.
func (c *NthCall) Calls() uint64 { return c.calls.Load() }

// PanicOnNth returns a hook that panics with the given value on its nth
// invocation — shaped to plug directly into eval.SetEvalHook for the
// worker-panic chaos tests (the wid argument is ignored; firing is by call
// ordinal so the fault is deterministic under any instance ordering).
func PanicOnNth(n uint64, value any) func(uint64) {
	c := OnNthCall(n)
	return func(uint64) {
		if c.Hit() {
			panic(value)
		}
	}
}

// ErrorReader yields r's bytes until limit bytes have been read, then fails
// with an error wrapping ErrInjected. limit 0 fails on the first Read. It
// simulates a log source dying mid-file (truncated upload, lost NFS mount)
// at a byte-exact, repeatable position.
func ErrorReader(r io.Reader, limit int64) io.Reader {
	return &errorReader{r: r, remaining: limit}
}

type errorReader struct {
	r         io.Reader
	remaining int64
}

func (e *errorReader) Read(p []byte) (int, error) {
	if e.remaining <= 0 {
		return 0, fmt.Errorf("read failed after byte limit: %w", ErrInjected)
	}
	if int64(len(p)) > e.remaining {
		p = p[:e.remaining]
	}
	n, err := e.r.Read(p)
	e.remaining -= int64(n)
	return n, err
}

// TruncateReader yields r's first limit bytes and then a clean EOF: the
// torn-file case where the source ends mid-record without any I/O error.
// Parsers must report a position-carrying syntax error, not succeed on half
// a log.
func TruncateReader(r io.Reader, limit int64) io.Reader {
	return io.LimitReader(r, limit)
}

// SlowReader delivers r's bytes at most chunk bytes per Read call. It does
// not sleep — determinism, not wall-clock slowness, is the point: it forces
// the many-small-Reads schedule that shakes out buffering bugs in stream
// parsers (a record split across arbitrary Read boundaries must still
// parse).
func SlowReader(r io.Reader, chunk int) io.Reader {
	if chunk < 1 {
		chunk = 1
	}
	return &slowReader{r: r, chunk: chunk}
}

type slowReader struct {
	r     io.Reader
	chunk int
}

func (s *slowReader) Read(p []byte) (int, error) {
	if len(p) > s.chunk {
		p = p[:s.chunk]
	}
	return s.r.Read(p)
}

// SkewClock returns a clock function for resilience.SetClock that reports
// base on its first call and base+skew on every later call: a wall-time
// budget or timeout sees its whole allowance consumed between two
// observations, deterministically and without sleeping.
func SkewClock(base time.Time, skew time.Duration) func() time.Time {
	var calls atomic.Uint64
	return func() time.Time {
		if calls.Add(1) == 1 {
			return base
		}
		return base.Add(skew)
	}
}
