package faultinject

import (
	"fmt"
	"os"
	"sync"
)

// FaultyFile wraps an *os.File with deterministic write-path faults for the
// WAL durability tests: a short write at an exact call ordinal, an fsync
// that fails on an exact call ordinal, and a hard error after an exact
// number of bytes. It implements wal.File (declared structurally there, so
// this package stays import-free of wal). Faults compose; each fires
// independently. Safe for concurrent use.
type FaultyFile struct {
	mu sync.Mutex
	f  *os.File

	// shortOn fires a short write (half the buffer, no error beyond
	// io.ErrShortWrite semantics left to the caller) on the nth Write.
	shortOn *NthCall
	// syncFailOn fails Sync with ErrInjected on the nth call.
	syncFailOn *NthCall
	// errAfter, when >= 0, fails any Write that would push the byte total
	// past the limit, after writing the bytes that fit — a disk running out
	// mid-frame.
	errAfter int64
	written  int64
}

// NewFaultyFile wraps f with no faults armed.
func NewFaultyFile(f *os.File) *FaultyFile {
	return &FaultyFile{f: f, errAfter: -1}
}

// ShortWriteOnNth arms a short write on the nth Write call (1-based): only
// half the buffer reaches the file and the call reports the truncated count
// with a nil error, the POSIX short-write shape callers must handle.
func (ff *FaultyFile) ShortWriteOnNth(n uint64) *FaultyFile {
	ff.shortOn = OnNthCall(n)
	return ff
}

// FailSyncOnNth arms an fsync failure on the nth Sync call (1-based).
func (ff *FaultyFile) FailSyncOnNth(n uint64) *FaultyFile {
	ff.syncFailOn = OnNthCall(n)
	return ff
}

// ErrorAfterBytes arms a hard write failure once limit bytes have been
// written: the Write that crosses the limit persists only the bytes that
// fit, then fails with an error wrapping ErrInjected.
func (ff *FaultyFile) ErrorAfterBytes(limit int64) *FaultyFile {
	ff.errAfter = limit
	return ff
}

// Write applies armed write faults, otherwise passes through.
func (ff *FaultyFile) Write(p []byte) (int, error) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ff.shortOn.Hit() {
		n, err := ff.f.Write(p[:len(p)/2])
		ff.written += int64(n)
		return n, err
	}
	if ff.errAfter >= 0 && ff.written+int64(len(p)) > ff.errAfter {
		fits := ff.errAfter - ff.written
		if fits < 0 {
			fits = 0
		}
		n, _ := ff.f.Write(p[:fits])
		ff.written += int64(n)
		return n, fmt.Errorf("write failed after byte limit: %w", ErrInjected)
	}
	n, err := ff.f.Write(p)
	ff.written += int64(n)
	return n, err
}

// Sync applies an armed fsync fault, otherwise passes through.
func (ff *FaultyFile) Sync() error {
	if ff.syncFailOn.Hit() {
		return fmt.Errorf("fsync failed: %w", ErrInjected)
	}
	return ff.f.Sync()
}

// Truncate passes through (recovery-path truncation is never faulted here;
// arm it by closing the file first if a test needs it to fail).
func (ff *FaultyFile) Truncate(size int64) error { return ff.f.Truncate(size) }

// Close passes through.
func (ff *FaultyFile) Close() error { return ff.f.Close() }

// PanicAtPoint returns a crash-point hook that panics when the named point
// fires for the nth time — plugged into wal.Options.Hook it simulates a
// process death at an exact instruction boundary ("append:framed" = before
// any bytes hit the file, "append:written" = frame written but possibly not
// synced). The panic value wraps ErrInjected context for recognition in
// recover().
func PanicAtPoint(point string, n uint64) func(string) {
	c := OnNthCall(n)
	return func(p string) {
		if p == point && c.Hit() {
			panic(fmt.Sprintf("crash injected at %s", point))
		}
	}
}
