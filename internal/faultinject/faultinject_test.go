package faultinject

import (
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestOnNthCallFiresExactlyOnce(t *testing.T) {
	c := OnNthCall(3)
	fired := 0
	for i := 0; i < 10; i++ {
		if c.Hit() {
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("fired %d times, want exactly once", fired)
	}
	if c.Calls() != 10 {
		t.Fatalf("calls = %d, want 10", c.Calls())
	}
}

func TestOnNthCallConcurrent(t *testing.T) {
	c := OnNthCall(50)
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if c.Hit() {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 1 {
		t.Fatalf("fired %d times under concurrency, want exactly once", fired)
	}
}

func TestZeroNeverFires(t *testing.T) {
	c := OnNthCall(0)
	for i := 0; i < 100; i++ {
		if c.Hit() {
			t.Fatal("n=0 must never fire")
		}
	}
}

func TestPanicOnNth(t *testing.T) {
	hook := PanicOnNth(2, "boom")
	hook(1) // first call: no panic
	defer func() {
		if recover() == nil {
			t.Fatal("second call did not panic")
		}
	}()
	hook(2)
}

func TestErrorReaderFailsAtLimit(t *testing.T) {
	data, err := io.ReadAll(ErrorReader(strings.NewReader("hello world"), 5))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if string(data) != "hello" {
		t.Fatalf("read %q before failing, want %q", data, "hello")
	}
}

func TestTruncateReaderCleanEOF(t *testing.T) {
	data, err := io.ReadAll(TruncateReader(strings.NewReader("hello world"), 5))
	if err != nil {
		t.Fatalf("truncated read must end in clean EOF, got %v", err)
	}
	if string(data) != "hello" {
		t.Fatalf("read %q, want %q", data, "hello")
	}
}

func TestSlowReaderPreservesContent(t *testing.T) {
	const text = "the quick brown fox jumps over the lazy dog"
	data, err := io.ReadAll(SlowReader(strings.NewReader(text), 1))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != text {
		t.Fatalf("content mangled: %q", data)
	}
}

func TestSkewClock(t *testing.T) {
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	clock := SkewClock(base, time.Hour)
	if got := clock(); !got.Equal(base) {
		t.Fatalf("first call = %v, want base", got)
	}
	for i := 0; i < 3; i++ {
		if got := clock(); !got.Equal(base.Add(time.Hour)) {
			t.Fatalf("later call = %v, want base+1h", got)
		}
	}
}
