package faultinject

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func okServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok:"+r.URL.Path)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestFaultFlakyRoundTripperFailOn(t *testing.T) {
	srv := okServer(t)
	client := &http.Client{Transport: &FlakyRoundTripper{FailOn: OnNthCall(1)}}
	if _, err := client.Get(srv.URL); !errors.Is(err, ErrInjected) {
		t.Fatalf("first request error = %v, want ErrInjected", err)
	}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("second request: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second request status %d", resp.StatusCode)
	}
}

func TestFaultFlakyRoundTripperMatchScoping(t *testing.T) {
	a, b := okServer(t), okServer(t)
	// Fault scoped to server b: a's requests must not consume the ordinal.
	client := &http.Client{Transport: &FlakyRoundTripper{Match: b.URL, FailOn: OnNthCall(1)}}
	for i := 0; i < 3; i++ {
		resp, err := client.Get(a.URL)
		if err != nil {
			t.Fatalf("unmatched request %d: %v", i, err)
		}
		resp.Body.Close()
	}
	if _, err := client.Get(b.URL); !errors.Is(err, ErrInjected) {
		t.Fatalf("matched request error = %v, want ErrInjected", err)
	}
}

func TestFaultFlakyRoundTripperBlackhole(t *testing.T) {
	srv := okServer(t)
	client := &http.Client{Transport: &FlakyRoundTripper{BlackholeOn: OnNthCall(1)}}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("blackholed request succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blackholed request error = %v, want deadline", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("blackholed request returned before the context deadline")
	}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("post-blackhole request: %v", err)
	}
	resp.Body.Close()
}

func TestFaultFlakyRoundTripperReroute(t *testing.T) {
	a := okServer(t)
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "impostor:"+r.URL.Path)
	}))
	defer b.Close()
	client := &http.Client{Transport: &FlakyRoundTripper{Match: a.URL, RerouteTo: b.URL}}
	resp, err := client.Get(a.URL + "/v1/thing")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := string(body); got != "impostor:/v1/thing" {
		t.Fatalf("rerouted body = %q (path must be preserved)", got)
	}
}

func TestFaultHangableListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hl := NewHangableListener(ln)
	srv := &httptest.Server{
		Listener: hl,
		Config:   &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, "up") })},
	}
	srv.Start()
	defer srv.Close()

	// Fresh connection per request: a pooled conn created pre-Hang would
	// bypass nothing (reads are gated per-Read), but keep it deterministic.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

	get := func(timeout time.Duration) (string, error) {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
		resp, err := client.Do(req)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	}

	if body, err := get(time.Second); err != nil || body != "up" {
		t.Fatalf("healthy request = %q, %v", body, err)
	}

	hl.Hang()
	if _, err := get(30 * time.Millisecond); err == nil {
		t.Fatal("request against hung listener succeeded")
	} else if !strings.Contains(err.Error(), "deadline") && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hung request error = %v, want client deadline", err)
	}

	hl.Resume()
	if body, err := get(time.Second); err != nil || body != "up" {
		t.Fatalf("post-resume request = %q, %v", body, err)
	}

	// Close while hung must not strand blocked readers.
	hl.Hang()
	done := make(chan error, 1)
	go func() {
		_, err := get(5 * time.Second)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the request reach the hung Read
	hl.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("request against closed listener succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock a hung request")
	}
}
