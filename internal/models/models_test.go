package models

import (
	"math"
	"testing"

	"wlq/internal/core/eval"
	"wlq/internal/core/incident"
	"wlq/internal/core/pattern"
)

func TestCatalogInventory(t *testing.T) {
	all := All()
	if len(all) != 3 {
		t.Fatalf("catalogs = %d", len(all))
	}
	for name, c := range all {
		if err := c.Model.Validate(); err != nil {
			t.Errorf("%s: invalid model: %v", name, err)
		}
		if len(c.Anomalies) == 0 {
			t.Errorf("%s: no planted anomalies", name)
		}
		for _, a := range c.Anomalies {
			if _, err := pattern.Parse(a.Query); err != nil {
				t.Errorf("%s/%s: bad query %q: %v", name, a.Name, a.Query, err)
			}
			if a.Rate <= 0 || a.Rate >= 0.2 {
				t.Errorf("%s/%s: implausible planted rate %g", name, a.Name, a.Rate)
			}
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("orders"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope): want error")
	}
}

// TestPlantedAnomalyRates generates each model at scale and checks every
// anomaly occurs at roughly its documented rate (binomial tolerance).
func TestPlantedAnomalyRates(t *testing.T) {
	const instances = 4000
	for name, c := range All() {
		name, c := name, c
		t.Run(name, func(t *testing.T) {
			l, err := c.Generate(instances, 11)
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Validate(); err != nil {
				t.Fatalf("generated log invalid: %v", err)
			}
			ix := eval.NewIndex(l)
			e := eval.New(ix, eval.Options{})
			for _, a := range c.Anomalies {
				p := pattern.MustParse(a.Query)
				offenders := make(map[uint64]bool)
				for _, inc := range e.Eval(p).Incidents() {
					offenders[inc.WID()] = true
				}
				got := float64(len(offenders)) / instances
				// Allow 4 binomial standard deviations plus 20% modeling
				// slack (loop/XOR interactions perturb exact rates).
				sd := math.Sqrt(a.Rate * (1 - a.Rate) / instances)
				tol := 4*sd + 0.2*a.Rate
				if math.Abs(got-a.Rate) > tol {
					t.Errorf("%s: measured rate %.4f, documented %.4f (tol %.4f)",
						a.Name, got, a.Rate, tol)
				}
				if len(offenders) == 0 {
					t.Errorf("%s: no offenders in %d instances", a.Name, instances)
				}
			}
		})
	}
}

// TestOrdersProcessInvariants checks structural properties every clean
// order must satisfy.
func TestOrdersProcessInvariants(t *testing.T) {
	c := Orders()
	l, err := c.Generate(500, 3)
	if err != nil {
		t.Fatal(err)
	}
	ix := eval.NewIndex(l)
	e := eval.New(ix, eval.Options{})

	ships := e.Eval(pattern.MustParse("Ship"))
	if len(ships.WIDs()) != 500 {
		t.Errorf("every order must ship; got %d", len(ships.WIDs()))
	}
	// Pick always precedes Pack within an instance.
	if e.Exists(pattern.MustParse("Pack -> Pick")) {
		t.Error("found Pack before Pick")
	}
	// Refund only in returned orders.
	badRefund := e.Eval(pattern.MustParse("Refund"))
	for _, inc := range badRefund.Incidents() {
		returns := ix.ActivitySeqs(inc.WID(), "Return")
		if len(returns) == 0 || returns[0] > inc.First() {
			t.Errorf("wid %d: refund without prior return", inc.WID())
		}
	}
}

// TestLoansDisbursementInvariant: every clean approval disburses exactly
// once; rejections (except planted) never disburse.
func TestLoansDisbursementInvariant(t *testing.T) {
	c := Loans()
	l, err := c.Generate(800, 5)
	if err != nil {
		t.Fatal(err)
	}
	ix := eval.NewIndex(l)
	e := eval.New(ix, eval.Options{})

	approvals := e.Eval(pattern.MustParse("Approve"))
	for _, inc := range approvals.Incidents() {
		if n := len(ix.ActivitySeqs(inc.WID(), "Disburse")); n < 1 || n > 2 {
			t.Errorf("wid %d: approved with %d disbursements", inc.WID(), n)
		}
	}
	// An instance never both approves and rejects.
	if e.Exists(pattern.MustParse("Approve & Reject")) {
		t.Error("an instance both approved and rejected")
	}
}

// TestHelpdeskConfirmInvariant: outside the planted branch, CloseTicket is
// always preceded by Confirm.
func TestHelpdeskConfirmInvariant(t *testing.T) {
	c := Helpdesk()
	l, err := c.Generate(800, 9)
	if err != nil {
		t.Fatal(err)
	}
	ix := eval.NewIndex(l)
	e := eval.New(ix, eval.Options{})

	planted := make(map[uint64]bool)
	for _, inc := range e.Eval(pattern.MustParse(c.Anomalies[0].Query)).Incidents() {
		planted[inc.WID()] = true
	}
	closes := e.Eval(pattern.MustParse("CloseTicket"))
	for _, inc := range closes.Incidents() {
		if planted[inc.WID()] {
			continue
		}
		confirms := ix.ActivitySeqs(inc.WID(), "Confirm")
		if len(confirms) == 0 {
			t.Errorf("wid %d: closed without confirmation yet not flagged", inc.WID())
		}
	}
	// Sanity: the verifier agrees an anomaly incident matches its pattern.
	anoms := e.Eval(pattern.MustParse(c.Anomalies[0].Query))
	if anoms.Len() > 0 {
		var first incident.Incident = anoms.At(0)
		if !e.Verify(pattern.MustParse(c.Anomalies[0].Query), first) {
			t.Error("anomaly incident does not verify")
		}
	}
}

// TestGeneratedTracesConform: every enacted instance's activity trace is in
// its model's language (complete instances as full words, in-flight ones as
// prefixes).
func TestGeneratedTracesConform(t *testing.T) {
	for name, c := range All() {
		name, c := name, c
		t.Run(name, func(t *testing.T) {
			l, err := c.Generate(300, 21)
			if err != nil {
				t.Fatal(err)
			}
			for _, wid := range l.WIDs() {
				var trace []string
				for _, r := range l.Instance(wid) {
					if r.IsStart() || r.IsEnd() {
						continue
					}
					trace = append(trace, r.Activity)
				}
				if l.InstanceComplete(wid) {
					if !c.Model.Accepts(trace) {
						t.Fatalf("wid %d: complete trace %v rejected", wid, trace)
					}
				} else if !c.Model.AcceptsPrefix(trace) {
					t.Fatalf("wid %d: prefix %v rejected", wid, trace)
				}
			}
		})
	}
}
