// Package models is a library of ready-made workflow models for examples,
// tests and benchmarks: an order-fulfillment process, a loan-application
// process, and a helpdesk-ticket process. Each model carries realistic data
// effects and — deliberately — one or more low-probability compliance bugs
// ("planted anomalies") with documented rates, so incident-pattern queries
// have measurable ground truth to detect, in the spirit of the paper's
// fraud-detection outlook (Section 6).
package models

import (
	"fmt"
	"math/rand"

	"wlq/internal/enact"
	"wlq/internal/wlog"
	"wlq/internal/workflow"
)

// Anomaly documents a planted compliance bug and the query that finds it.
type Anomaly struct {
	// Name describes the violated rule.
	Name string
	// Query is an incident-pattern query matching offending instances.
	Query string
	// Rate is the approximate fraction of instances that are planted
	// offenders (per the XOR weights in the model).
	Rate float64
}

// Catalog pairs a model with its planted anomalies and its clean reference.
type Catalog struct {
	// Model is the process as it actually runs, planted bugs included.
	Model *workflow.Model
	// Reference is the process as it should run: the same model with every
	// planted branch removed. Deriving compliance rules from Reference (see
	// internal/audit) flags exactly the instances that exercised a plant.
	Reference *workflow.Model
	Anomalies []Anomaly
}

// Generate enacts the catalog's model.
func (c Catalog) Generate(instances int, seed int64) (*wlog.Log, error) {
	return enact.Run(c.Model, enact.Config{
		Instances: instances,
		Seed:      seed,
		Policy:    enact.PolicyBursty,
	})
}

func task(name string) workflow.Task { return workflow.Task{Name: name} }

// Orders returns the order-fulfillment process:
//
//	Receive → Validate → (FraudCheck | skip†) → (Pick→Pack ∥ Invoice)
//	→ Ship → (Close | Return→Refund→Close)
//
// † ~5% of orders bypass the fraud check (the planted anomaly).
func Orders() Catalog {
	build := func(planted bool) *workflow.Model {
		receive := workflow.Task{
			Name: "Receive",
			Effect: func(_ wlog.AttrMap, rng *rand.Rand) (wlog.AttrMap, wlog.AttrMap) {
				return nil, wlog.Attrs(
					"amount", int64(10*(1+rng.Intn(500))),
					"express", rng.Intn(4) == 0,
				)
			},
		}
		fraud := workflow.Step(task("FraudCheck"))
		if planted {
			fraud = workflow.XOR{Branches: []workflow.Branch{
				{Weight: 19, Step: task("FraudCheck")},
				{Weight: 1, Step: nil}, // planted: unchecked shipment
			}}
		}
		return &workflow.Model{
			Name: "order-fulfillment",
			Root: workflow.Sequence{
				receive,
				task("Validate"),
				fraud,
				workflow.AND{Branches: []workflow.Step{
					workflow.Sequence{task("Pick"), task("Pack")},
					task("Invoice"),
				}},
				task("Ship"),
				workflow.XOR{Branches: []workflow.Branch{
					{Weight: 9, Step: task("Close")},
					{Weight: 1, Step: workflow.Sequence{task("Return"), task("Refund"), task("Close")}},
				}},
			},
		}
	}
	return Catalog{
		Model:     build(true),
		Reference: build(false),
		Anomalies: []Anomaly{{
			Name:  "shipment without fraud check",
			Query: "Validate . !FraudCheck & Ship",
			Rate:  0.05,
		}},
	}
}

// Loans returns the loan-application process:
//
//	Apply → ScoreCredit → (RequestDocs → ReceiveDocs)* →
//	(Approve → (Disburse | Disburse→Disburse†) | Reject) → Archive
//
// † ~2% of approved loans are disbursed twice (the planted anomaly), and a
// separate ~4% are rejected yet still disbursed.
func Loans() Catalog {
	apply := workflow.Task{
		Name: "Apply",
		Effect: func(_ wlog.AttrMap, rng *rand.Rand) (wlog.AttrMap, wlog.AttrMap) {
			return nil, wlog.Attrs(
				"principal", int64(1000*(5+rng.Intn(95))),
				"term", int64(12*(1+rng.Intn(5))),
			)
		},
	}
	score := workflow.Task{
		Name: "ScoreCredit",
		Effect: func(state wlog.AttrMap, rng *rand.Rand) (wlog.AttrMap, wlog.AttrMap) {
			return wlog.Attrs("principal", state.Get("principal")),
				wlog.Attrs("score", int64(300+rng.Intn(550)))
		},
	}
	disburse := workflow.Task{
		Name: "Disburse",
		Effect: func(state wlog.AttrMap, _ *rand.Rand) (wlog.AttrMap, wlog.AttrMap) {
			return wlog.Attrs("principal", state.Get("principal")), nil
		},
	}
	build := func(planted bool) *workflow.Model {
		var decision workflow.Step
		if planted {
			decision = workflow.XOR{Branches: []workflow.Branch{
				{Weight: 70, Step: workflow.Sequence{
					task("Approve"),
					workflow.XOR{Branches: []workflow.Branch{
						{Weight: 49, Step: disburse},
						// Planted: double disbursement.
						{Weight: 1, Step: workflow.Sequence{disburse, disburse}},
					}},
				}},
				{Weight: 26, Step: task("Reject")},
				// Planted: rejected but disbursed anyway.
				{Weight: 4, Step: workflow.Sequence{task("Reject"), disburse}},
			}}
		} else {
			decision = workflow.XOR{Branches: []workflow.Branch{
				{Weight: 70, Step: workflow.Sequence{task("Approve"), disburse}},
				{Weight: 30, Step: task("Reject")},
			}}
		}
		return &workflow.Model{
			Name: "loan-application",
			Root: workflow.Sequence{
				apply,
				score,
				workflow.Loop{
					Body:         workflow.Sequence{task("RequestDocs"), task("ReceiveDocs")},
					ContinueProb: 0.3,
					MaxIter:      3,
				},
				decision,
				task("Archive"),
			},
		}
	}
	return Catalog{
		Model:     build(true),
		Reference: build(false),
		Anomalies: []Anomaly{
			{
				Name:  "double disbursement",
				Query: "Disburse -> Disburse",
				Rate:  0.02 * 0.7, // within the approve branch
			},
			{
				Name:  "disbursement after rejection",
				Query: "Reject -> Disburse",
				Rate:  0.04,
			},
		},
	}
}

// Helpdesk returns the ticket-handling process:
//
//	Open → Triage → (Assign → Work → (Escalate → Work)?)* → Resolve →
//	(Confirm | Reopen→Assign→Work→Resolve→Confirm) → Close†
//
// † ~3% of tickets close without a Resolve ever confirming (the planted
// anomaly: Close with no prior Confirm).
func Helpdesk() Catalog {
	open := workflow.Task{
		Name: "Open",
		Effect: func(_ wlog.AttrMap, rng *rand.Rand) (wlog.AttrMap, wlog.AttrMap) {
			severities := []string{"low", "medium", "high", "critical"}
			return nil, wlog.Attrs(
				"severity", severities[rng.Intn(len(severities))],
				"channel", []string{"email", "phone", "portal"}[rng.Intn(3)],
			)
		},
	}
	workCycle := workflow.Sequence{
		task("Assign"),
		task("Work"),
		workflow.XOR{Branches: []workflow.Branch{
			{Weight: 3, Step: nil},
			{Weight: 1, Step: workflow.Sequence{task("Escalate"), task("Work")}},
		}},
	}
	build := func(planted bool) *workflow.Model {
		branches := []workflow.Branch{
			{Weight: 77, Step: task("Confirm")},
			{Weight: 20, Step: workflow.Sequence{
				task("Reopen"), task("Assign"), task("Work"), task("Resolve"), task("Confirm"),
			}},
		}
		if planted {
			// Planted: closed without confirmation.
			branches = append(branches, workflow.Branch{Weight: 3, Step: nil})
		}
		return &workflow.Model{
			Name: "helpdesk",
			Root: workflow.Sequence{
				open,
				task("Triage"),
				workflow.Loop{Body: workCycle, ContinueProb: 0.35, MaxIter: 3},
				task("Resolve"),
				workflow.XOR{Branches: branches},
				task("CloseTicket"),
			},
		}
	}
	return Catalog{
		Model:     build(true),
		Reference: build(false),
		Anomalies: []Anomaly{{
			Name:  "ticket closed without confirmation",
			Query: "Resolve . CloseTicket",
			Rate:  0.03,
		}},
	}
}

// All returns every catalog, keyed by a short name.
func All() map[string]Catalog {
	return map[string]Catalog{
		"orders":   Orders(),
		"loans":    Loans(),
		"helpdesk": Helpdesk(),
	}
}

// ByName returns the named catalog.
func ByName(name string) (Catalog, error) {
	c, ok := All()[name]
	if !ok {
		return Catalog{}, fmt.Errorf("models: unknown model %q", name)
	}
	return c, nil
}
