package analytics

import (
	"fmt"
	"strings"
	"testing"

	"wlq/internal/clinic"
	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
)

func TestDirectlyFollowsFig3(t *testing.T) {
	g := DirectlyFollows(clinic.Fig3(), false)

	// Hand-checked adjacencies within Figure 3's instances.
	checks := []struct {
		from, to string
		want     int
	}{
		{"GetRefer", "CheckIn", 2},       // wid 1 and wid 2
		{"SeeDoctor", "PayTreatment", 3}, // l9-l10, l11-l12, l17-l18
		{"SeeDoctor", "UpdateRefer", 1},  // l13-l14
		{"PayTreatment", "SeeDoctor", 1}, // l10-l11
		{"CheckIn", "SeeDoctor", 2},
		{"PayTreatment", "GetReimburse", 1},
		{"GetReimburse", "CompleteRefer", 1},
		{"PayTreatment", "TakeTreatment", 1},
		{"TakeTreatment", "GetReimburse", 1},
		{"UpdateRefer", "SeeDoctor", 1},
		{"CompleteRefer", "GetRefer", 0}, // never adjacent
	}
	for _, c := range checks {
		if got := g.Count(c.from, c.to); got != c.want {
			t.Errorf("Count(%s, %s) = %d, want %d", c.from, c.to, got, c.want)
		}
	}

	// Without endpoints, no START arcs appear.
	for _, e := range g.Edges() {
		if e.From == "START" || e.To == "END" {
			t.Errorf("endpoint arc leaked: %+v", e)
		}
	}

	// With endpoints, every instance contributes a START -> GetRefer arc.
	ge := DirectlyFollows(clinic.Fig3(), true)
	if got := ge.Count("START", "GetRefer"); got != 3 {
		t.Errorf("START -> GetRefer = %d, want 3", got)
	}
}

// TestDFGMatchesConsecutiveQueries: every DFG edge count must equal the
// incident count of the corresponding ⊙ query — the DFG is exactly the
// atomic consecutive relation aggregated by activity pair.
func TestDFGMatchesConsecutiveQueries(t *testing.T) {
	l, err := clinic.Generate(100, 13)
	if err != nil {
		t.Fatal(err)
	}
	g := DirectlyFollows(l, true)
	ix := eval.NewIndex(l)
	e := eval.New(ix, eval.Options{})
	if g.Len() == 0 {
		t.Fatal("empty DFG")
	}
	for _, edge := range g.Edges() {
		q := fmt.Sprintf("%q . %q", edge.From, edge.To)
		p, err := pattern.Parse(q)
		if err != nil {
			t.Fatalf("parse %s: %v", q, err)
		}
		if got := e.Count(p); got != edge.Count {
			t.Errorf("edge %s->%s: DFG %d, query %d", edge.From, edge.To, edge.Count, got)
		}
	}
}

func TestDFGEdgesSorted(t *testing.T) {
	g := DirectlyFollows(clinic.Fig3(), false)
	edges := g.Edges()
	for i := 1; i < len(edges); i++ {
		if edges[i-1].Count < edges[i].Count {
			t.Fatalf("edges unsorted: %v", edges)
		}
	}
	if edges[0].From != "SeeDoctor" || edges[0].To != "PayTreatment" {
		t.Errorf("heaviest edge = %+v", edges[0])
	}
}

func TestDFGString(t *testing.T) {
	s := DirectlyFollows(clinic.Fig3(), false).String()
	if !strings.Contains(s, "SeeDoctor -> PayTreatment  3") {
		t.Errorf("String output:\n%s", s)
	}
}

func TestDFGDot(t *testing.T) {
	dot := DirectlyFollows(clinic.Fig3(), true).Dot("fig3")
	for _, want := range []string{
		`digraph "fig3" {`,
		`"START" -> "GetRefer"`,
		"penwidth=",
		"label=3",
		"}",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot missing %q:\n%s", want, dot)
		}
	}
}
