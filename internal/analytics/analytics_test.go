package analytics

import (
	"strings"
	"testing"

	"wlq/internal/clinic"
	"wlq/internal/core/eval"
	"wlq/internal/core/incident"
	"wlq/internal/core/pattern"
	"wlq/internal/wlog"
)

// yearLog builds a log of GetRefer instances across two years with varying
// balances.
func yearLog(t *testing.T) *wlog.Log {
	t.Helper()
	var b wlog.Builder
	type ref struct {
		year    int64
		balance int64
	}
	refs := []ref{
		{2016, 6000}, {2016, 1000}, {2017, 7000}, {2017, 8000}, {2017, 400},
	}
	for _, r := range refs {
		w := b.Start()
		if err := b.Emit(w, "GetRefer", nil, wlog.Attrs("year", r.year, "balance", r.balance)); err != nil {
			t.Fatal(err)
		}
		if err := b.Emit(w, "CheckIn", wlog.Attrs("balance", r.balance), nil); err != nil {
			t.Fatal(err)
		}
		if err := b.End(w); err != nil {
			t.Fatal(err)
		}
	}
	return b.MustBuild()
}

func TestReportBasics(t *testing.T) {
	r := NewReport()
	if r.Len() != 0 || r.Total() != 0 {
		t.Error("empty report not empty")
	}
	r.Add("b", 2)
	r.Add("a", 1)
	r.Add("b", 3)
	if r.Count("b") != 5 || r.Count("a") != 1 || r.Count("zzz") != 0 {
		t.Errorf("counts wrong: %v", r)
	}
	if r.Total() != 6 || r.Len() != 2 {
		t.Errorf("Total/Len = %d/%d", r.Total(), r.Len())
	}
	keys := r.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("Keys = %v", keys)
	}
	if got := r.String(); got != "a: 1\nb: 5\n" {
		t.Errorf("String = %q", got)
	}
}

// TestMotivatingYearlyQuery answers the Section 1 question end to end:
// "How many students every year get referrals with balance > 5000?"
func TestMotivatingYearlyQuery(t *testing.T) {
	l := yearLog(t)
	ix := eval.NewIndex(l)
	set := eval.EvalSet(ix, pattern.MustParse("GetRefer[balance>5000]"))
	report := GroupBy(set, ByAttr(ix, "year"))
	if report.Count("2016") != 1 || report.Count("2017") != 2 {
		t.Errorf("yearly counts = %s", report)
	}
	if report.Total() != 3 {
		t.Errorf("Total = %d, want 3", report.Total())
	}
}

func TestGroupByExcludesKeylessIncidents(t *testing.T) {
	l := yearLog(t)
	ix := eval.NewIndex(l)
	// CheckIn records carry no year attribute of their own (only balance in
	// αin), so ByAttr(year) excludes them all.
	set := eval.EvalSet(ix, pattern.MustParse("CheckIn"))
	report := GroupBy(set, ByAttr(ix, "year"))
	if report.Total() != 0 {
		t.Errorf("keyless incidents grouped: %s", report)
	}
	// ByInstanceAttr falls back to the instance's records and finds it.
	report = GroupBy(set, ByInstanceAttr(ix, "year"))
	if report.Total() != 5 {
		t.Errorf("ByInstanceAttr total = %d, want 5", report.Total())
	}
}

func TestCountByInstanceAndDistinct(t *testing.T) {
	set := incident.NewSet(
		incident.New(1, 2), incident.New(1, 4), incident.New(3, 2),
	)
	counts := CountByInstance(set)
	if counts[1] != 2 || counts[3] != 1 || len(counts) != 2 {
		t.Errorf("CountByInstance = %v", counts)
	}
	if got := DistinctInstances(set); got != 2 {
		t.Errorf("DistinctInstances = %d, want 2", got)
	}
}

func TestByActivityOf(t *testing.T) {
	ix := eval.NewIndex(clinic.Fig3())
	set := eval.EvalSet(ix, pattern.MustParse("SeeDoctor . PayTreatment"))
	first := GroupBy(set, ByActivityOf(ix, 0))
	if first.Count("SeeDoctor") != set.Len() {
		t.Errorf("first-record activities = %s", first)
	}
	second := GroupBy(set, ByActivityOf(ix, 1))
	if second.Count("PayTreatment") != set.Len() {
		t.Errorf("second-record activities = %s", second)
	}
	outOfRange := GroupBy(set, ByActivityOf(ix, 5))
	if outOfRange.Total() != 0 {
		t.Errorf("out-of-range index grouped: %s", outOfRange)
	}
}

func TestSpanAndMeanSpan(t *testing.T) {
	if Span(incident.New(1, 3, 9)) != 6 {
		t.Errorf("Span = %d", Span(incident.New(1, 3, 9)))
	}
	set := incident.NewSet(incident.New(1, 1, 3), incident.New(1, 2, 8))
	if got := MeanSpan(set); got != 4 {
		t.Errorf("MeanSpan = %g, want 4", got)
	}
	if got := MeanSpan(incident.NewSet()); got != 0 {
		t.Errorf("MeanSpan(empty) = %g", got)
	}
}

func TestRecordsMaterialization(t *testing.T) {
	ix := eval.NewIndex(clinic.Fig3())
	recs := Records(ix, incident.New(2, 5, 9))
	if len(recs) != 2 {
		t.Fatalf("Records = %v", recs)
	}
	if recs[0].Activity != clinic.ActUpdateRefer || recs[1].Activity != clinic.ActGetReimburse {
		t.Errorf("activities = %s, %s", recs[0].Activity, recs[1].Activity)
	}
	if recs[0].LSN != 14 || recs[1].LSN != 20 {
		t.Errorf("lsns = %d, %d (want the paper's l14, l20)", recs[0].LSN, recs[1].LSN)
	}
}

// TestClinicAnomalyReport ties the pieces together on generated data: count
// post-reimbursement updates per hospital.
func TestClinicAnomalyReport(t *testing.T) {
	l, err := clinic.Generate(300, 19)
	if err != nil {
		t.Fatal(err)
	}
	ix := eval.NewIndex(l)
	anomalies := eval.EvalSet(ix, pattern.MustParse("GetReimburse -> UpdateRefer"))
	if anomalies.Len() == 0 {
		t.Fatal("no planted anomalies in 300 instances")
	}
	byHospital := GroupBy(anomalies, ByInstanceAttr(ix, "hospital"))
	if byHospital.Total() != anomalies.Len() {
		t.Errorf("hospital grouping lost incidents: %d vs %d",
			byHospital.Total(), anomalies.Len())
	}
	for _, key := range byHospital.Keys() {
		if !strings.Contains(key, "Hospital") {
			t.Errorf("unexpected hospital key %q", key)
		}
	}
}

func TestWithinSpan(t *testing.T) {
	set := incident.NewSet(
		incident.New(1, 2, 3), // span 1
		incident.New(1, 2, 9), // span 7
		incident.New(2, 4),    // span 0
	)
	got := WithinSpan(set, 1)
	want := incident.NewSet(incident.New(1, 2, 3), incident.New(2, 4))
	if !got.Equal(want) {
		t.Errorf("WithinSpan = %s, want %s", got, want)
	}
	if WithinSpan(set, 0).Len() != 1 {
		t.Errorf("WithinSpan(0) = %s", WithinSpan(set, 0))
	}
	if !WithinSpan(set, 100).Equal(set) {
		t.Error("WithinSpan(100) should keep everything")
	}
}
