package analytics

import (
	"strings"
	"testing"

	"wlq/internal/clinic"
	"wlq/internal/enact"
	"wlq/internal/wlog"
)

func TestProfileFig3(t *testing.T) {
	p := ProfileLog(clinic.Fig3())
	if p.Records != 20 || p.Instances != 3 || p.Completed != 0 {
		t.Errorf("basics = %+v", p)
	}
	// Instance lengths in Figure 3: wid1 has 9, wid2 has 9, wid3 has 2.
	if p.MinLen != 2 || p.MaxLen != 9 {
		t.Errorf("lengths = min %d max %d", p.MinLen, p.MaxLen)
	}
	if p.MeanLen < 6.6 || p.MeanLen > 6.7 { // 20/3
		t.Errorf("mean = %g", p.MeanLen)
	}
	// All three instances overlap in the prefix.
	if p.MaxConcurrent != 3 {
		t.Errorf("MaxConcurrent = %d, want 3", p.MaxConcurrent)
	}
	if p.Switches == 0 {
		t.Error("Figure 3 is interleaved; Switches = 0")
	}
	if len(p.Activities) == 0 || p.Activities[0].Count < p.Activities[len(p.Activities)-1].Count {
		t.Errorf("activity histogram unsorted: %v", p.Activities)
	}
}

func TestProfileSerialLog(t *testing.T) {
	l, err := enact.RunTraces([]string{"A"}, []string{"B"})
	if err != nil {
		t.Fatal(err)
	}
	p := ProfileLog(l)
	if p.Completed != 2 {
		t.Errorf("Completed = %d", p.Completed)
	}
	// RunTraces interleaves round-robin, so switches are high.
	if p.Switches == 0 {
		t.Error("round-robin log reported as serial")
	}
}

func TestProfileNoInterleaving(t *testing.T) {
	var b wlog.Builder
	w1 := b.Start()
	if err := b.Emit(w1, "A", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.End(w1); err != nil {
		t.Fatal(err)
	}
	w2 := b.Start()
	if err := b.End(w2); err != nil {
		t.Fatal(err)
	}
	p := ProfileLog(b.MustBuild())
	if p.Switches != 1 { // exactly one switch: end of wid1 block to wid2
		t.Errorf("Switches = %d, want 1", p.Switches)
	}
	if p.MaxConcurrent != 1 {
		t.Errorf("MaxConcurrent = %d, want 1", p.MaxConcurrent)
	}
}

func TestProfileString(t *testing.T) {
	s := ProfileLog(clinic.Fig3()).String()
	for _, want := range []string{
		"records:         20",
		"instances:       3 (0 complete)",
		"max concurrent:  3",
		"SeeDoctor",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestProfileStringTruncates(t *testing.T) {
	var b wlog.Builder
	w := b.Start()
	for i := 0; i < 30; i++ {
		if err := b.Emit(w, strings.Repeat("X", 3)+string(rune('A'+i)), nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	s := ProfileLog(b.MustBuild()).String()
	if !strings.Contains(s, "more") {
		t.Errorf("no truncation marker:\n%s", s)
	}
}

func TestTopActivities(t *testing.T) {
	p := ProfileLog(clinic.Fig3())
	top := p.TopActivities(3)
	if len(top) != 3 {
		t.Fatalf("TopActivities = %v", top)
	}
	for _, a := range top {
		if a == wlog.ActivityStart || a == wlog.ActivityEnd {
			t.Errorf("reserved activity %q in top list", a)
		}
	}
	// SeeDoctor (4 occurrences) must be among the top three.
	found := false
	for _, a := range top {
		if a == "SeeDoctor" {
			found = true
		}
	}
	if !found {
		t.Errorf("SeeDoctor missing from %v", top)
	}
}
