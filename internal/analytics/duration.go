package analytics

import (
	"time"

	"wlq/internal/core/eval"
	"wlq/internal/core/incident"
	"wlq/internal/wlog"
)

// Real-time duration analytics. The core model has no timestamps — the
// paper orders records by sequence numbers only — but logs imported from
// CSV/XES, or generated with enact.Config.Stamp, carry an RFC 3339 "time"
// attribute per record. These helpers read it.

// TimeAttr is the conventional attribute name carrying a record's
// timestamp (written by enact stamping and the CSV/XES importers).
const TimeAttr = "time"

// RecordTime returns the record's timestamp, parsed from the TimeAttr
// attribute (αout first, then αin). ok is false when the attribute is
// absent or unparsable.
func RecordTime(r wlog.Record) (time.Time, bool) {
	v := r.Out.Get(TimeAttr)
	if v.IsUndefined() {
		v = r.In.Get(TimeAttr)
	}
	s, isStr := v.Str()
	if !isStr {
		return time.Time{}, false
	}
	for _, layout := range []string{time.RFC3339Nano, time.RFC3339, "2006-01-02"} {
		if t, err := time.Parse(layout, s); err == nil {
			return t, true
		}
	}
	return time.Time{}, false
}

// Duration returns the wall-clock span of an incident: the time of its last
// record minus the time of its first. ok is false when either endpoint
// lacks a usable timestamp.
func Duration(ix eval.Source, inc incident.Incident) (time.Duration, bool) {
	first, ok1 := ix.Record(inc.WID(), inc.First())
	last, ok2 := ix.Record(inc.WID(), inc.Last())
	if !ok1 || !ok2 {
		return 0, false
	}
	t1, ok1 := RecordTime(first)
	t2, ok2 := RecordTime(last)
	if !ok1 || !ok2 {
		return 0, false
	}
	return t2.Sub(t1), true
}

// DurationStats summarizes the wall-clock spans of a set's incidents.
type DurationStats struct {
	// Counted is how many incidents had usable timestamps on both ends.
	Counted int
	// Skipped is how many lacked timestamps.
	Skipped int
	Min     time.Duration
	Max     time.Duration
	Mean    time.Duration
}

// Durations computes duration statistics across an incident set.
func Durations(ix eval.Source, set *incident.Set) DurationStats {
	var st DurationStats
	// Sum in float64: large sets of long spans overflow an int64 nanosecond
	// accumulator (2⁶³ ns ≈ 292 years total).
	var total float64
	for _, inc := range set.Incidents() {
		d, ok := Duration(ix, inc)
		if !ok {
			st.Skipped++
			continue
		}
		if st.Counted == 0 || d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
		total += float64(d)
		st.Counted++
	}
	if st.Counted > 0 {
		st.Mean = time.Duration(total / float64(st.Counted))
	}
	return st
}

// ByDurationBucket returns a KeyFunc grouping incidents by their duration,
// bucketed to multiples of the given width (e.g. time.Hour buckets "2h0m0s
// ≤ d < 3h0m0s" under key "2h0m0s"). Incidents without timestamps are
// excluded.
func ByDurationBucket(ix eval.Source, width time.Duration) KeyFunc {
	return func(inc incident.Incident) (string, bool) {
		d, ok := Duration(ix, inc)
		if !ok || width <= 0 {
			return "", false
		}
		return d.Truncate(width).String(), true
	}
}

// WithinDuration returns the subset of incidents whose wall-clock span is
// at most max. Incidents without usable timestamps are excluded.
func WithinDuration(ix eval.Source, set *incident.Set, max time.Duration) *incident.Set {
	var kept []incident.Incident
	for _, inc := range set.Incidents() {
		if d, ok := Duration(ix, inc); ok && d <= max {
			kept = append(kept, inc)
		}
	}
	return incident.NewSet(kept...)
}
