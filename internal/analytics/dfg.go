package analytics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"wlq/internal/wlog"
)

// Edge is one arc of a directly-follows graph: activity From is immediately
// followed by activity To (the ⊙ relation on activity names), Count times
// across all workflow instances.
type Edge struct {
	From, To string
	Count    int
}

// DFG is the directly-follows graph of a log — process mining's standard
// first artifact. Every pair of is-lsn-adjacent records within an instance
// contributes one arc; the incident pattern "a . b" over the same log finds
// exactly Count(a, b) incidents for every edge, which the tests exploit as
// a cross-check of the ⊙ semantics.
type DFG struct {
	edges map[[2]string]int
}

// DirectlyFollows computes the DFG. START and END records are included when
// withEndpoints is set (arcs from START show each process's entry
// activities; arcs into END its exits).
func DirectlyFollows(l *wlog.Log, withEndpoints bool) *DFG {
	g := &DFG{edges: make(map[[2]string]int)}
	for _, wid := range l.WIDs() {
		inst := l.Instance(wid)
		for i := 1; i < len(inst); i++ {
			from, to := inst[i-1], inst[i]
			if !withEndpoints && (from.IsStart() || to.IsEnd()) {
				continue
			}
			g.edges[[2]string{from.Activity, to.Activity}]++
		}
	}
	return g
}

// Count returns how often from is immediately followed by to.
func (g *DFG) Count(from, to string) int {
	return g.edges[[2]string{from, to}]
}

// Edges returns the arcs sorted by descending count (ties by from, to).
func (g *DFG) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for k, n := range g.edges {
		out = append(out, Edge{From: k[0], To: k[1], Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Len returns the number of distinct arcs.
func (g *DFG) Len() int { return len(g.edges) }

// String renders the graph as "from -> to  count" lines, heaviest first.
func (g *DFG) String() string {
	var sb strings.Builder
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "%s -> %s  %d\n", e.From, e.To, e.Count)
	}
	return sb.String()
}

// Dot renders the graph in Graphviz DOT format, edge thickness keyed to
// frequency, ready for `dot -Tsvg`.
func (g *DFG) Dot(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %s {\n", strconv.Quote(name))
	sb.WriteString("  rankdir=LR;\n  node [shape=box, style=rounded];\n")
	edges := g.Edges()
	maxCount := 1
	if len(edges) > 0 {
		maxCount = edges[0].Count
	}
	for _, e := range edges {
		width := 1 + 4*float64(e.Count)/float64(maxCount)
		fmt.Fprintf(&sb, "  %s -> %s [label=%d, penwidth=%.1f];\n",
			strconv.Quote(e.From), strconv.Quote(e.To), e.Count, width)
	}
	sb.WriteString("}\n")
	return sb.String()
}
