package analytics

import (
	"fmt"
	"sort"
	"strings"

	"wlq/internal/wlog"
)

// Profile summarizes a workflow log's shape: size, instance statistics,
// interleaving, and activity frequencies. It backs the CLI's -stats view
// and gives analysts a first look before writing incident-pattern queries.
type Profile struct {
	// Records is |L|.
	Records int
	// Instances is the number of workflow instances.
	Instances int
	// Completed is the number of instances with an END record.
	Completed int
	// MinLen, MeanLen and MaxLen describe instance lengths in records
	// (START/END included).
	MinLen, MaxLen int
	MeanLen        float64
	// MaxConcurrent is the largest number of instances simultaneously
	// in flight (started, not yet at their last record) at any lsn.
	MaxConcurrent int
	// Switches counts adjacent record pairs belonging to different
	// instances — a direct measure of interleaving (0 for serial logs).
	Switches int
	// Activities lists activity frequencies, most frequent first.
	Activities []wlog.ActivityCount
}

// ProfileLog computes a Profile in one pass (plus the histogram pass).
func ProfileLog(l *wlog.Log) Profile {
	p := Profile{
		Records:    l.Len(),
		Activities: wlog.ActivityHistogram(l),
		MinLen:     int(^uint(0) >> 1),
	}

	// Last record position per instance, for the concurrency profile.
	lastOf := make(map[uint64]int)
	records := l.Records()
	for i, r := range records {
		lastOf[r.WID] = i
	}
	p.Instances = len(lastOf)

	active := 0
	seen := make(map[uint64]bool)
	var prevWID uint64
	for i, r := range records {
		if i > 0 && r.WID != prevWID {
			p.Switches++
		}
		prevWID = r.WID
		if !seen[r.WID] {
			seen[r.WID] = true
			active++
			if active > p.MaxConcurrent {
				p.MaxConcurrent = active
			}
		}
		if lastOf[r.WID] == i {
			active--
		}
	}

	total := 0
	for _, wid := range l.WIDs() {
		inst := l.Instance(wid)
		n := len(inst)
		total += n
		if n < p.MinLen {
			p.MinLen = n
		}
		if n > p.MaxLen {
			p.MaxLen = n
		}
		if l.InstanceComplete(wid) {
			p.Completed++
		}
	}
	if p.Instances > 0 {
		p.MeanLen = float64(total) / float64(p.Instances)
	} else {
		p.MinLen = 0
	}
	return p
}

// String renders the profile as an aligned, human-readable block.
func (p Profile) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "records:         %d\n", p.Records)
	fmt.Fprintf(&sb, "instances:       %d (%d complete)\n", p.Instances, p.Completed)
	fmt.Fprintf(&sb, "instance length: min %d / mean %.1f / max %d\n", p.MinLen, p.MeanLen, p.MaxLen)
	fmt.Fprintf(&sb, "max concurrent:  %d\n", p.MaxConcurrent)
	fmt.Fprintf(&sb, "interleaving:    %d instance switches across %d records\n", p.Switches, p.Records)
	sb.WriteString("activities:\n")
	shown := p.Activities
	const maxShown = 20
	truncated := 0
	if len(shown) > maxShown {
		truncated = len(shown) - maxShown
		shown = shown[:maxShown]
	}
	width := 0
	for _, ac := range shown {
		if len(ac.Activity) > width {
			width = len(ac.Activity)
		}
	}
	for _, ac := range shown {
		fmt.Fprintf(&sb, "  %-*s %6d\n", width, ac.Activity, ac.Count)
	}
	if truncated > 0 {
		fmt.Fprintf(&sb, "  ... %d more\n", truncated)
	}
	return sb.String()
}

// TopActivities returns the n most frequent activity names (fewer when the
// log has fewer), excluding START and END.
func (p Profile) TopActivities(n int) []string {
	out := make([]string, 0, n)
	for _, ac := range p.Activities {
		if ac.Activity == wlog.ActivityStart || ac.Activity == wlog.ActivityEnd {
			continue
		}
		out = append(out, ac.Activity)
		if len(out) == n {
			break
		}
	}
	sort.Strings(out)
	return out
}
