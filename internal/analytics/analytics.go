// Package analytics provides counting and grouping over incident sets — the
// aggregation layer the paper's motivating questions need ("How many
// students every year get referrals with balance > 5000?") but its formal
// language leaves out. Everything here is a documented extension composing
// with, not changing, the core algebra: queries produce incident sets; this
// package folds those sets into counts keyed by instance, attribute value,
// or arbitrary caller-supplied keys.
package analytics

import (
	"fmt"
	"sort"
	"strings"

	"wlq/internal/core/eval"
	"wlq/internal/core/incident"
	"wlq/internal/wlog"
)

// KeyFunc maps an incident to a grouping key. Returning ok=false excludes
// the incident from the aggregation.
type KeyFunc func(inc incident.Incident) (key string, ok bool)

// Report is an ordered aggregation result: group key → count.
type Report struct {
	keys   []string
	counts map[string]int
}

// NewReport creates an empty report.
func NewReport() *Report {
	return &Report{counts: make(map[string]int)}
}

// Add increments a key's count.
func (r *Report) Add(key string, n int) {
	if _, ok := r.counts[key]; !ok {
		r.keys = append(r.keys, key)
	}
	r.counts[key] += n
}

// Count returns the count for a key (0 when absent).
func (r *Report) Count(key string) int { return r.counts[key] }

// Keys returns the group keys in sorted order.
func (r *Report) Keys() []string {
	out := make([]string, len(r.keys))
	copy(out, r.keys)
	sort.Strings(out)
	return out
}

// Total sums all counts.
func (r *Report) Total() int {
	total := 0
	for _, c := range r.counts {
		total += c
	}
	return total
}

// Len returns the number of groups.
func (r *Report) Len() int { return len(r.keys) }

// String renders "key: count" lines in sorted key order.
func (r *Report) String() string {
	var sb strings.Builder
	for _, k := range r.Keys() {
		fmt.Fprintf(&sb, "%s: %d\n", k, r.counts[k])
	}
	return sb.String()
}

// GroupBy aggregates an incident set by the given key function.
func GroupBy(set *incident.Set, key KeyFunc) *Report {
	r := NewReport()
	for _, inc := range set.Incidents() {
		if k, ok := key(inc); ok {
			r.Add(k, 1)
		}
	}
	return r
}

// CountByInstance returns, per workflow instance id, how many incidents the
// set contains for it.
func CountByInstance(set *incident.Set) map[uint64]int {
	out := make(map[uint64]int)
	for _, inc := range set.Incidents() {
		out[inc.WID()]++
	}
	return out
}

// DistinctInstances counts the workflow instances with at least one
// incident — the paper's "how many students …" reading, where each
// instance is one student's referral.
func DistinctInstances(set *incident.Set) int {
	return len(set.WIDs())
}

// ByAttr returns a KeyFunc keyed on an attribute of the incident's records:
// the value of the named attribute on the first record (in is-lsn order)
// that defines it, looking at αout first, then αin. Incidents whose records
// never define the attribute are excluded.
func ByAttr(ix eval.Source, attr string) KeyFunc {
	return func(inc incident.Incident) (string, bool) {
		for _, seq := range inc.Seqs() {
			rec, ok := ix.Record(inc.WID(), seq)
			if !ok {
				continue
			}
			if rec.Out.Has(attr) {
				return rec.Out.Get(attr).String(), true
			}
			if rec.In.Has(attr) {
				return rec.In.Get(attr).String(), true
			}
		}
		return "", false
	}
}

// ByInstanceAttr returns a KeyFunc keyed on an attribute drawn from the
// incident's whole workflow instance rather than just its own records: the
// first record of the instance that defines the attribute supplies the key.
// This answers groupings like "by the year of the referral" even when the
// matched incident does not include the GetRefer record itself.
func ByInstanceAttr(ix eval.Source, attr string) KeyFunc {
	return func(inc incident.Incident) (string, bool) {
		for _, rec := range ix.Instance(inc.WID()) {
			if rec.Out.Has(attr) {
				return rec.Out.Get(attr).String(), true
			}
			if rec.In.Has(attr) {
				return rec.In.Get(attr).String(), true
			}
		}
		return "", false
	}
}

// ByActivityOf returns a KeyFunc keyed on the activity name of the
// incident's i-th record (0-based, in is-lsn order).
func ByActivityOf(ix eval.Source, i int) KeyFunc {
	return func(inc incident.Incident) (string, bool) {
		seqs := inc.Seqs()
		if i < 0 || i >= len(seqs) {
			return "", false
		}
		rec, ok := ix.Record(inc.WID(), seqs[i])
		if !ok {
			return "", false
		}
		return rec.Activity, true
	}
}

// Span returns the is-lsn distance last(o) - first(o) of an incident: a
// simple duration proxy in a model without timestamps.
func Span(inc incident.Incident) uint64 {
	return inc.Last() - inc.First()
}

// MeanSpan returns the average span across the set (0 for an empty set).
func MeanSpan(set *incident.Set) float64 {
	n := set.Len()
	if n == 0 {
		return 0
	}
	total := 0.0
	for _, inc := range set.Incidents() {
		total += float64(Span(inc))
	}
	return total / float64(n)
}

// Records materializes an incident back into its log records, in is-lsn
// order, for display.
func Records(ix eval.Source, inc incident.Incident) []wlog.Record {
	out := make([]wlog.Record, 0, inc.Len())
	for _, seq := range inc.Seqs() {
		if rec, ok := ix.Record(inc.WID(), seq); ok {
			out = append(out, rec)
		}
	}
	return out
}

// WithinSpan returns the subset of incidents whose is-lsn span
// (last - first) is at most maxSpan — a "within N steps" window over the
// paper's purely ordinal time model.
func WithinSpan(set *incident.Set, maxSpan uint64) *incident.Set {
	var kept []incident.Incident
	for _, inc := range set.Incidents() {
		if Span(inc) <= maxSpan {
			kept = append(kept, inc)
		}
	}
	return incident.NewSet(kept...)
}
