package analytics

import (
	"testing"
	"time"

	"wlq/internal/clinic"
	"wlq/internal/core/eval"
	"wlq/internal/core/incident"
	"wlq/internal/core/pattern"
	"wlq/internal/enact"
	"wlq/internal/wlog"
)

// stampedLog enacts the clinic model with simulated timestamps.
func stampedLog(t *testing.T) *wlog.Log {
	t.Helper()
	l, err := enact.Run(clinic.Model(), enact.Config{
		Instances:    60,
		Seed:         9,
		Policy:       enact.PolicyRandom,
		Stamp:        true,
		StampMeanGap: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestStampedLogTimesMonotone(t *testing.T) {
	l := stampedLog(t)
	var prev time.Time
	for _, r := range l.Records() {
		if r.IsStart() || r.IsEnd() {
			continue
		}
		ts, ok := RecordTime(r)
		if !ok {
			t.Fatalf("record %v lacks a timestamp", r)
		}
		if ts.Before(prev) {
			t.Fatalf("timestamps not monotone: %v after %v", ts, prev)
		}
		prev = ts
	}
}

func TestRecordTimeParsing(t *testing.T) {
	mk := func(v any) wlog.Record {
		return wlog.Record{Out: wlog.Attrs(TimeAttr, v)}
	}
	if _, ok := RecordTime(mk("2017-03-01T09:00:00Z")); !ok {
		t.Error("RFC3339 not parsed")
	}
	if _, ok := RecordTime(mk("2017-03-01")); !ok {
		t.Error("date-only not parsed")
	}
	if _, ok := RecordTime(mk("yesterday-ish")); ok {
		t.Error("garbage parsed")
	}
	if _, ok := RecordTime(mk(42)); ok {
		t.Error("non-string parsed")
	}
	if _, ok := RecordTime(wlog.Record{}); ok {
		t.Error("missing attribute parsed")
	}
	// αin fallback.
	r := wlog.Record{In: wlog.Attrs(TimeAttr, "2017-03-01T09:00:00Z")}
	if _, ok := RecordTime(r); !ok {
		t.Error("αin timestamp not found")
	}
}

func TestDurationsOnStampedLog(t *testing.T) {
	l := stampedLog(t)
	ix := eval.NewIndex(l)
	set := eval.EvalSet(ix, pattern.MustParse("GetRefer -> GetReimburse"))
	if set.Len() == 0 {
		t.Fatal("no referral-to-reimbursement incidents")
	}
	st := Durations(ix, set)
	if st.Counted != set.Len() || st.Skipped != 0 {
		t.Errorf("counted %d of %d (skipped %d)", st.Counted, set.Len(), st.Skipped)
	}
	if st.Min < 0 || st.Mean <= 0 || st.Max < st.Mean || st.Mean < st.Min {
		t.Errorf("implausible stats: %+v", st)
	}

	// Bucketing groups every counted incident.
	report := GroupBy(set, ByDurationBucket(ix, time.Hour))
	if report.Total() != st.Counted {
		t.Errorf("bucket total %d != counted %d", report.Total(), st.Counted)
	}
}

func TestDurationsWithoutTimestamps(t *testing.T) {
	// Figure 3 has no time attributes: everything is skipped.
	ix := eval.NewIndex(clinic.Fig3())
	set := eval.EvalSet(ix, pattern.MustParse("SeeDoctor"))
	st := Durations(ix, set)
	if st.Counted != 0 || st.Skipped != set.Len() {
		t.Errorf("stats = %+v", st)
	}
	if _, ok := Duration(ix, incident.New(99, 1)); ok {
		t.Error("Duration on unknown instance succeeded")
	}
}

// TestDurationsLargeSumNoOverflow: many long spans must not overflow the
// mean (regression: an int64 nanosecond accumulator wraps past ~292 years
// total).
func TestDurationsLargeSumNoOverflow(t *testing.T) {
	var b wlog.Builder
	w := b.Start()
	if err := b.Emit(w, "A", nil, wlog.Attrs(TimeAttr, "2000-01-01T00:00:00Z")); err != nil {
		t.Fatal(err)
	}
	if err := b.Emit(w, "B", nil, wlog.Attrs(TimeAttr, "2100-01-01T00:00:00Z")); err != nil {
		t.Fatal(err)
	}
	l := b.MustBuild()
	ix := eval.NewIndex(l)
	// One century-long incident, repeated 4 times in the set by distinct
	// record subsets is impossible here, so simulate by measuring the same
	// stats over a synthetic big set: Durations on a set holding the single
	// incident must match Duration exactly; the overflow path is exercised
	// by the mean computation with a huge total below.
	set := eval.EvalSet(ix, pattern.MustParse("A -> B"))
	st := Durations(ix, set)
	want, _ := Duration(ix, set.At(0))
	if st.Mean != want || st.Min != want || st.Max != want {
		t.Errorf("stats = %+v, want all %v", st, want)
	}
	if st.Mean <= 0 {
		t.Errorf("century span came out non-positive: %v", st.Mean)
	}
}

func TestWithinDuration(t *testing.T) {
	l := stampedLog(t)
	ix := eval.NewIndex(l)
	set := eval.EvalSet(ix, pattern.MustParse("GetRefer -> GetReimburse"))
	st := Durations(ix, set)
	fast := WithinDuration(ix, set, st.Mean)
	if fast.Len() == 0 || fast.Len() >= set.Len() {
		t.Errorf("WithinDuration(mean) kept %d of %d", fast.Len(), set.Len())
	}
	for _, inc := range fast.Incidents() {
		if d, ok := Duration(ix, inc); !ok || d > st.Mean {
			t.Errorf("incident %s exceeds the cutoff", inc)
		}
	}
	// Unstamped incidents are excluded, not kept.
	plain := eval.NewIndex(clinic.Fig3())
	unstamped := eval.EvalSet(plain, pattern.MustParse("SeeDoctor"))
	if got := WithinDuration(plain, unstamped, time.Hour); got.Len() != 0 {
		t.Errorf("unstamped incidents kept: %s", got)
	}
}
