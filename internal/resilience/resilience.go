// Package resilience provides the safety layer that makes the query engine
// fit to face untrusted queries: per-query resource budgets, a semaphore
// admission controller for load shedding, and panic-to-error conversion with
// incident ids.
//
// The need is quantitative, not hypothetical: Lemma 1 bounds one operator
// application by O(n1·n2·k) and Theorem 1 shows incident counts up to
// O(m^k), so a single adversarial pattern (deep ⊕ nests over a dense log)
// can pin a worker for minutes. The paper's cost model predicts which
// queries are dangerous (rewrite.Estimate) and eval.Meter measures the work
// actually done; this package turns those numbers into enforcement:
//
//   - Budget caps what one evaluation may consume. The evaluator checks it
//     periodically (every CheckInterval comparisons, and between workflow
//     instances) and aborts with an error wrapping ErrBudgetExceeded.
//   - Admission bounds in-flight queries; requests beyond capacity are shed
//     immediately (HTTP 429 + Retry-After at the service layer) instead of
//     queueing behind a saturated worker pool.
//   - RecoverAsError converts a panicking evaluation into a *PanicError
//     carrying a short incident id and the stack, so one poisoned query
//     kills one request, not the process.
//
// The package is a leaf: it depends only on the standard library, so every
// layer (eval, server, the CLIs) can share the same Budget type without
// import cycles.
package resilience

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// CheckInterval is the number of record-level comparisons between budget
// checks inside the evaluator's join loops. Checks cost one atomic add and
// a couple of loads, so the interval trades abort latency against overhead:
// a query can overrun MaxComparisons by at most one interval per concurrent
// worker before aborting.
const CheckInterval = 4096

// Budget caps the resources one query evaluation may consume. The zero
// value (and any zero field) means unlimited. The same Budget protects the
// HTTP service (server.Config.Budget) and batch use (wlq -max-comparisons,
// -timeout), so both front ends degrade identically.
type Budget struct {
	// MaxComparisons caps the measured record-level comparison work of the
	// operator joins, in the units Lemma 1 counts (the same units
	// eval.Meter reports). Checked every CheckInterval comparisons.
	MaxComparisons uint64
	// MaxOutputs caps the total incidents produced across all operator
	// applications (intermediate results included), bounding the Theorem 1
	// blowup before it exhausts memory. Checked per operator application.
	MaxOutputs uint64
	// MaxWallTime caps evaluation wall clock. Checked at the comparison
	// stride and between workflow instances; independent of (and typically
	// tighter than) any context deadline.
	MaxWallTime time.Duration
	// MaxResultBytes caps the approximate in-memory size of the final
	// result set, checked as each workflow instance's incidents are
	// produced.
	MaxResultBytes uint64
}

// IsZero reports whether every limit is unset (nothing to enforce).
func (b Budget) IsZero() bool {
	return b.MaxComparisons == 0 && b.MaxOutputs == 0 &&
		b.MaxWallTime == 0 && b.MaxResultBytes == 0
}

// Slice divides the budget's work dimensions evenly across n concurrent
// failure domains (in-process shards, or cluster workers), rounding up so n
// slices always cover the whole budget. Wall time is NOT divided: the
// domains run concurrently, so each inherits the full wall-clock allowance.
// n <= 1 returns the budget unchanged.
func (b Budget) Slice(n int) Budget {
	if n <= 1 {
		return b
	}
	div := func(v uint64) uint64 {
		if v == 0 {
			return 0
		}
		return (v + uint64(n) - 1) / uint64(n)
	}
	return Budget{
		MaxComparisons: div(b.MaxComparisons),
		MaxOutputs:     div(b.MaxOutputs),
		MaxWallTime:    b.MaxWallTime,
		MaxResultBytes: div(b.MaxResultBytes),
	}
}

// ErrBudgetExceeded is the sentinel all budget aborts wrap; callers match
// with errors.Is and inspect the dimension via errors.As on *BudgetError.
var ErrBudgetExceeded = errors.New("query budget exceeded")

// Budget dimensions, as reported by BudgetError.Dimension.
const (
	DimComparisons = "comparisons"
	DimOutputs     = "outputs"
	DimWallTime    = "wall_time"
	DimResultBytes = "result_bytes"
)

// BudgetError reports which budget dimension a query exhausted. It wraps
// ErrBudgetExceeded.
type BudgetError struct {
	// Dimension is one of the Dim* constants.
	Dimension string
	// Limit is the configured cap; Measured the value that tripped it (for
	// DimWallTime both are in nanoseconds).
	Limit, Measured uint64
}

// Error implements error.
func (e *BudgetError) Error() string {
	if e.Dimension == DimWallTime {
		return fmt.Sprintf("query budget exceeded: %s %v > limit %v",
			e.Dimension, time.Duration(e.Measured), time.Duration(e.Limit))
	}
	return fmt.Sprintf("query budget exceeded: %s %d > limit %d",
		e.Dimension, e.Measured, e.Limit)
}

// Unwrap makes errors.Is(err, ErrBudgetExceeded) hold.
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// nowFn is the clock used for wall-time budget checks, replaceable for
// deterministic fault injection (internal/faultinject supplies a skewable
// clock). Stored atomically so tests swapping it race-cleanly with running
// evaluations.
var nowFn atomic.Pointer[func() time.Time]

// Now returns the current time from the configured clock.
func Now() time.Time {
	if f := nowFn.Load(); f != nil {
		return (*f)()
	}
	return time.Now()
}

// SetClock replaces the clock used by Now; nil restores time.Now. Intended
// for tests only (clock-skew fault injection).
func SetClock(f func() time.Time) {
	if f == nil {
		nowFn.Store(nil)
		return
	}
	nowFn.Store(&f)
}

// Admission is a semaphore-based admission controller: at most capacity
// queries evaluate concurrently, and arrivals beyond that are shed
// immediately rather than queued (a saturated pool means every queued query
// would wait behind Lemma 1 worst cases; fail fast and let the client retry
// with backoff). A nil *Admission admits everything.
type Admission struct {
	capacity int
	sem      chan struct{}
	shed     atomic.Uint64
}

// NewAdmission creates a controller admitting up to capacity concurrent
// queries; capacity <= 0 returns nil (unlimited).
func NewAdmission(capacity int) *Admission {
	if capacity <= 0 {
		return nil
	}
	return &Admission{capacity: capacity, sem: make(chan struct{}, capacity)}
}

// TryAcquire claims a slot without blocking; false means saturated (the
// caller should shed the request). Every failed acquire is counted.
func (a *Admission) TryAcquire() bool {
	if a == nil {
		return true
	}
	select {
	case a.sem <- struct{}{}:
		return true
	default:
		a.shed.Add(1)
		return false
	}
}

// Release frees a slot claimed by a successful TryAcquire.
func (a *Admission) Release() {
	if a == nil {
		return
	}
	select {
	case <-a.sem:
	default:
		// Release without acquire is a caller bug; tolerate it rather than
		// deadlock a serving path.
	}
}

// InFlight returns the number of slots currently held.
func (a *Admission) InFlight() int {
	if a == nil {
		return 0
	}
	return len(a.sem)
}

// Capacity returns the configured concurrency bound (0 = unlimited).
func (a *Admission) Capacity() int {
	if a == nil {
		return 0
	}
	return a.capacity
}

// Shed returns how many arrivals were rejected for saturation.
func (a *Admission) Shed() uint64 {
	if a == nil {
		return 0
	}
	return a.shed.Load()
}

// RetryAfter suggests a client backoff when saturated. One second: the
// service bounds evaluation with budgets and timeouts measured in seconds,
// so a saturated pool usually turns over within one.
func (a *Admission) RetryAfter() time.Duration { return time.Second }

// PanicError is a panic converted to an error at an isolation boundary (an
// evaluation worker or an HTTP handler). The incident id correlates the
// client-visible error with the server-side stack log.
type PanicError struct {
	// IncidentID is a short random id echoed to the client.
	IncidentID string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error implements error; the stack is deliberately omitted (log it
// server-side via the Stack field).
func (e *PanicError) Error() string {
	return fmt.Sprintf("internal panic (incident %s): %v", e.IncidentID, e.Value)
}

// NewPanicError wraps a recovered panic value with a fresh incident id and
// the current stack.
func NewPanicError(value any) *PanicError {
	return &PanicError{IncidentID: NewIncidentID(), Value: value, Stack: debug.Stack()}
}

// RecoverAsError converts an in-flight panic into a *PanicError stored in
// *err, leaving *err alone when there is no panic. Use as
//
//	defer resilience.RecoverAsError(&err)
//
// at any boundary where one request's failure must not take down its
// siblings.
func RecoverAsError(err *error) {
	if r := recover(); r != nil {
		*err = NewPanicError(r)
	}
}

// NewIncidentID returns a short random hex id for correlating recovered
// panics across client responses, logs and metrics.
func NewIncidentID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively unreachable; fall back to a
		// constant rather than plumb an error through every recover path.
		return "000000000000"
	}
	return hex.EncodeToString(b[:])
}
