package resilience

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestBudgetIsZero(t *testing.T) {
	if !(Budget{}).IsZero() {
		t.Fatal("zero Budget should be zero")
	}
	for i, b := range []Budget{
		{MaxComparisons: 1},
		{MaxOutputs: 1},
		{MaxWallTime: time.Nanosecond},
		{MaxResultBytes: 1},
	} {
		if b.IsZero() {
			t.Fatalf("budget %d with a limit should not be zero", i)
		}
	}
}

func TestBudgetErrorWrapsSentinel(t *testing.T) {
	var err error = &BudgetError{Dimension: DimComparisons, Limit: 10, Measured: 14}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatal("BudgetError must wrap ErrBudgetExceeded")
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Dimension != DimComparisons {
		t.Fatalf("errors.As failed: %v", err)
	}
	if got := err.Error(); got != "query budget exceeded: comparisons 14 > limit 10" {
		t.Fatalf("unexpected message %q", got)
	}
	wt := &BudgetError{Dimension: DimWallTime,
		Limit: uint64(time.Second), Measured: uint64(2 * time.Second)}
	if got := wt.Error(); got != "query budget exceeded: wall_time 2s > limit 1s" {
		t.Fatalf("unexpected wall-time message %q", got)
	}
}

func TestAdmissionBoundsAndSheds(t *testing.T) {
	a := NewAdmission(2)
	if !a.TryAcquire() || !a.TryAcquire() {
		t.Fatal("first two acquires must succeed")
	}
	if a.TryAcquire() {
		t.Fatal("third acquire must shed")
	}
	if got := a.Shed(); got != 1 {
		t.Fatalf("shed count = %d, want 1", got)
	}
	if got := a.InFlight(); got != 2 {
		t.Fatalf("in-flight = %d, want 2", got)
	}
	a.Release()
	if !a.TryAcquire() {
		t.Fatal("acquire after release must succeed")
	}
	if a.Capacity() != 2 {
		t.Fatalf("capacity = %d, want 2", a.Capacity())
	}
	if a.RetryAfter() <= 0 {
		t.Fatal("RetryAfter must be positive")
	}
}

func TestAdmissionNilAdmitsEverything(t *testing.T) {
	var a *Admission
	for i := 0; i < 100; i++ {
		if !a.TryAcquire() {
			t.Fatal("nil admission must admit")
		}
	}
	a.Release()
	if a.Shed() != 0 || a.InFlight() != 0 || a.Capacity() != 0 {
		t.Fatal("nil admission counters must be zero")
	}
}

func TestAdmissionConcurrent(t *testing.T) {
	a := NewAdmission(4)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if a.TryAcquire() {
					if n := a.InFlight(); n < 1 || n > 4 {
						t.Errorf("in-flight %d outside [1,4]", n)
					}
					a.Release()
				}
			}
		}()
	}
	wg.Wait()
	if a.InFlight() != 0 {
		t.Fatalf("in-flight after drain = %d, want 0", a.InFlight())
	}
}

func TestRecoverAsError(t *testing.T) {
	run := func() (err error) {
		defer RecoverAsError(&err)
		panic("kaboom")
	}
	err := run()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %T: %v", err, err)
	}
	if pe.Value != "kaboom" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if len(pe.IncidentID) != 12 {
		t.Fatalf("incident id %q not 12 hex chars", pe.IncidentID)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("stack not captured")
	}
	// No panic: err untouched.
	clean := func() (err error) {
		defer RecoverAsError(&err)
		return nil
	}
	if err := clean(); err != nil {
		t.Fatalf("clean path produced %v", err)
	}
}

func TestSetClock(t *testing.T) {
	fixed := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	SetClock(func() time.Time { return fixed })
	defer SetClock(nil)
	if !Now().Equal(fixed) {
		t.Fatalf("Now() = %v, want %v", Now(), fixed)
	}
	SetClock(nil)
	if d := time.Since(Now()); d < -time.Minute || d > time.Minute {
		t.Fatalf("restored clock is off by %v", d)
	}
}

func TestIncidentIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewIncidentID()
		if seen[id] {
			t.Fatalf("duplicate incident id %q", id)
		}
		seen[id] = true
	}
}

func ExampleBudget() {
	b := Budget{MaxComparisons: 1_000_000, MaxWallTime: 2 * time.Second}
	fmt.Println(b.IsZero())
	// Output: false
}

func TestBudgetSlice(t *testing.T) {
	b := Budget{
		MaxComparisons: 10, MaxOutputs: 7, MaxResultBytes: 3,
		MaxWallTime: 2 * time.Second,
	}
	s := b.Slice(3)
	// Work dimensions divide ceil-wise: the shards together may do slightly
	// MORE than the original budget, never less — a query that fit on one
	// node must not be rejected just because it was distributed.
	if s.MaxComparisons != 4 || s.MaxOutputs != 3 || s.MaxResultBytes != 1 {
		t.Fatalf("Slice(3) work dims = %d/%d/%d, want 4/3/1",
			s.MaxComparisons, s.MaxOutputs, s.MaxResultBytes)
	}
	// Wall time is shared, not divided: shards run concurrently.
	if s.MaxWallTime != b.MaxWallTime {
		t.Fatalf("Slice(3) wall time = %v, want %v", s.MaxWallTime, b.MaxWallTime)
	}
	if got := b.Slice(1); got != b {
		t.Fatalf("Slice(1) = %+v, want unchanged", got)
	}
	if got := b.Slice(0); got != b {
		t.Fatalf("Slice(0) = %+v, want unchanged", got)
	}
	// Unset (zero) dimensions stay unlimited.
	partial := Budget{MaxOutputs: 5}
	if s := partial.Slice(2); s.MaxComparisons != 0 || s.MaxOutputs != 3 {
		t.Fatalf("Slice(2) of partial budget = %+v", s)
	}
	var zero Budget
	if s := zero.Slice(4); !s.IsZero() {
		t.Fatalf("Slice of zero budget = %+v, want zero", s)
	}
}
