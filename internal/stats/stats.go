// Package stats maintains per-log evaluation statistics and derives measured
// operator selectivities from them, closing the loop between the evaluator's
// Meter and the rewriter's cost model.
//
// The paper's optimizer (Section V, Lemma 1) ranks rewrites with fixed
// selectivity constants — documented assumptions, not measurements. But every
// metered query already observes the true join behavior: for each operator
// node the Meter records Σ n1·n2 candidate pairs and the incidents actually
// produced, and for each atom the candidates examined and matches kept. A
// Registry aggregates those observations across queries, keyed by operator
// and by activity, and exposes them as a rewrite.Selectivities whose values
// are measured where enough evidence has accumulated and the model constants
// otherwise.
//
// Hygiene is the caller's contract: only successful, complete (non-partial,
// non-budget-tripped, non-panicked) evaluations may be folded in — a
// truncated run under-reports outputs and would bias every later plan.
//
// A Registry persists as a versioned JSON snapshot written atomically
// (temp file + rename) next to the log it describes, so measured behavior
// survives process restarts and hot reloads.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
	"wlq/internal/core/rewrite"
)

// SchemaVersion identifies the snapshot layout. Load rejects snapshots with
// a different schema rather than guessing at field meanings.
const SchemaVersion = "wlq-stats/v1"

// Evidence thresholds: below these the registry keeps reporting the model
// constant. A handful of observed pairs says nothing about a selectivity;
// trusting it would make the first query after startup rewrite the planner.
const (
	// MinOperatorPairs is the minimum Σ n1·n2 an operator must have
	// accumulated before its measured selectivity overrides the constant.
	MinOperatorPairs = 64
	// MinGuardCandidates is the minimum guarded-atom candidates before the
	// measured guard pass rate overrides the constant.
	MinGuardCandidates = 64
)

// Selectivity clamp bounds: a measured zero would estimate every plan
// containing the operator as free, and values above 1 are noise (merge
// outputs can exceed pairs on degenerate inputs).
const (
	minSelectivity = 1e-4
	maxSelectivity = 1.0
)

// OperatorStats aggregates the observed behavior of one operator across all
// folded-in queries.
type OperatorStats struct {
	// Evals counts instance evaluations of nodes with this operator.
	Evals uint64 `json:"evals"`
	// Pairs is Σ n1·n2 — the candidate pairs offered to the join.
	Pairs uint64 `json:"pairs"`
	// Outputs is the incidents the joins actually produced.
	Outputs uint64 `json:"outputs"`
	// Comparisons is the measured record-level comparison work.
	Comparisons uint64 `json:"comparisons"`
}

// Selectivity returns Outputs/Pairs clamped to (0, 1], or (0, false) when
// the operator has not accumulated MinOperatorPairs of evidence.
func (o OperatorStats) Selectivity() (float64, bool) {
	if o.Pairs < MinOperatorPairs {
		return 0, false
	}
	sel := float64(o.Outputs) / float64(o.Pairs)
	return clampSelectivity(sel), true
}

// ActivityStats aggregates the observed match behavior of one activity's
// atomic lookups (positive atoms only; negation inverts the denominator).
type ActivityStats struct {
	// Evals counts atomic lookups for the activity.
	Evals uint64 `json:"evals"`
	// Candidates is the index positions examined (pre-guard).
	Candidates uint64 `json:"candidates"`
	// Matches is the incidents kept (post-guard).
	Matches uint64 `json:"matches"`
}

// GuardStats aggregates guard pass rates across all guarded positive atoms.
type GuardStats struct {
	// Candidates is the index positions examined by guarded atoms.
	Candidates uint64 `json:"candidates"`
	// Passed is the matches surviving every guard on their atom.
	Passed uint64 `json:"passed"`
	// GuardWeight is Σ candidates·guards, so GuardWeight/Candidates is the
	// candidate-weighted mean number of guards per lookup — the exponent
	// that turns the overall pass rate back into a per-guard selectivity.
	GuardWeight uint64 `json:"guard_weight"`
}

// Selectivity returns the per-guard pass rate f^(1/ḡ) where f is the overall
// pass fraction and ḡ the weighted mean guard count, or (0, false) without
// MinGuardCandidates of evidence.
func (g GuardStats) Selectivity() (float64, bool) {
	if g.Candidates < MinGuardCandidates || g.GuardWeight == 0 {
		return 0, false
	}
	f := float64(g.Passed) / float64(g.Candidates)
	mean := float64(g.GuardWeight) / float64(g.Candidates)
	if f <= 0 {
		return minSelectivity, true
	}
	return clampSelectivity(math.Pow(f, 1/mean)), true
}

func clampSelectivity(sel float64) float64 {
	if sel < minSelectivity || math.IsNaN(sel) {
		return minSelectivity
	}
	if sel > maxSelectivity {
		return maxSelectivity
	}
	return sel
}

// Snapshot is the serializable point-in-time state of a Registry — both the
// persistence format and the /v1/logs observability surface.
type Snapshot struct {
	// Schema is SchemaVersion; Load rejects anything else.
	Schema string `json:"schema"`
	// Queries counts the complete metered queries folded in.
	Queries uint64 `json:"queries"`
	// Operators maps operator names (pattern.Op.Name) to their aggregates.
	Operators map[string]OperatorStats `json:"operators,omitempty"`
	// Activities maps activity names to their atomic lookup aggregates.
	Activities map[string]ActivityStats `json:"activities,omitempty"`
	// Guards aggregates guard pass rates across guarded atoms.
	Guards GuardStats `json:"guards"`
}

// Registry accumulates evaluation statistics for one log. It implements
// eval.MeterSink, so a finished Meter flushes into it directly. All methods
// are safe for concurrent use.
type Registry struct {
	mu         sync.RWMutex
	queries    uint64
	operators  map[string]OperatorStats
	activities map[string]ActivityStats
	guards     GuardStats
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		operators:  make(map[string]OperatorStats),
		activities: make(map[string]ActivityStats),
	}
}

// ObserveMeter folds one complete metered evaluation into the registry,
// implementing eval.MeterSink. Callers must only flush meters of successful,
// complete queries (see the package comment); the registry cannot tell a
// truncated run from a selective one.
func (r *Registry) ObserveMeter(stats []eval.NodeStats) {
	if r == nil || len(stats) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queries++
	for _, st := range stats {
		if !st.Atom {
			name := st.Op.Name()
			agg := r.operators[name]
			agg.Evals += st.Evals
			agg.Pairs += st.Pairs
			agg.Outputs += st.Outputs
			agg.Comparisons += st.Comparisons
			r.operators[name] = agg
			continue
		}
		atom, ok := st.Node.(*pattern.Atom)
		if !ok || atom.Negated {
			// Negated atoms examine the complement; folding them into the
			// positive match counts would corrupt both aggregates.
			continue
		}
		act := r.activities[atom.Activity]
		act.Evals += st.Evals
		act.Candidates += st.Comparisons // atom comparisons = candidates examined
		act.Matches += st.Outputs
		r.activities[atom.Activity] = act
		if g := len(atom.Guards); g > 0 {
			r.guards.Candidates += st.Comparisons
			r.guards.Passed += st.Outputs
			r.guards.GuardWeight += st.Comparisons * uint64(g)
		}
	}
}

// Queries returns how many complete metered queries have been folded in.
func (r *Registry) Queries() uint64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.queries
}

// Selectivities derives the cost-model selectivities: measured values where
// the evidence thresholds are met, the Theorem 2–5 era model constants
// otherwise. Choice is never overridden — its output estimate is n1+n2
// exactly, no constant to replace.
func (r *Registry) Selectivities() rewrite.Selectivities {
	sel := rewrite.ModelSelectivities()
	if r == nil {
		return sel
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if v, ok := r.operators[pattern.OpConsecutive.Name()].Selectivity(); ok {
		sel.Consecutive, sel.ConsecutiveSource = v, rewrite.SelectivityMeasured
	}
	if v, ok := r.operators[pattern.OpSequential.Name()].Selectivity(); ok {
		sel.Sequential, sel.SequentialSource = v, rewrite.SelectivityMeasured
	}
	if v, ok := r.operators[pattern.OpParallel.Name()].Selectivity(); ok {
		sel.Parallel, sel.ParallelSource = v, rewrite.SelectivityMeasured
	}
	if v, ok := r.guards.Selectivity(); ok {
		sel.Guard, sel.GuardSource = v, rewrite.SelectivityMeasured
	}
	return sel
}

// Snapshot returns a deep copy of the registry's state.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{Schema: SchemaVersion}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap.Queries = r.queries
	snap.Guards = r.guards
	if len(r.operators) > 0 {
		snap.Operators = make(map[string]OperatorStats, len(r.operators))
		for k, v := range r.operators {
			snap.Operators[k] = v
		}
	}
	if len(r.activities) > 0 {
		snap.Activities = make(map[string]ActivityStats, len(r.activities))
		for k, v := range r.activities {
			snap.Activities[k] = v
		}
	}
	return snap
}

// restore replaces the registry's state from a snapshot.
func (r *Registry) restore(snap Snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queries = snap.Queries
	r.guards = snap.Guards
	r.operators = make(map[string]OperatorStats, len(snap.Operators))
	for k, v := range snap.Operators {
		r.operators[k] = v
	}
	r.activities = make(map[string]ActivityStats, len(snap.Activities))
	for k, v := range snap.Activities {
		r.activities[k] = v
	}
}

// Save writes the registry atomically to path: the snapshot is written to a
// temp file in the same directory and renamed over the target, so a crash
// mid-write can never leave a truncated snapshot for the next startup.
func (r *Registry) Save(path string) error {
	if r == nil {
		return fmt.Errorf("stats: Save on nil registry")
	}
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("stats: encode snapshot: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".wlq-stats-*.tmp")
	if err != nil {
		return fmt.Errorf("stats: save: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("stats: save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("stats: save: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("stats: save: %w", err)
	}
	return nil
}

// Load reads a snapshot from path. A missing file is not an error — it
// returns an empty registry, the natural state before any query has run. A
// present but unreadable or schema-mismatched file is an error: silently
// discarding accumulated statistics would be a regression the operator
// should hear about.
func Load(path string) (*Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return New(), nil
		}
		return nil, fmt.Errorf("stats: load %s: %w", path, err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("stats: load %s: %w", path, err)
	}
	if snap.Schema != SchemaVersion {
		return nil, fmt.Errorf("stats: load %s: schema %q, want %q", path, snap.Schema, SchemaVersion)
	}
	r := New()
	r.restore(snap)
	return r, nil
}

// PathFor returns the default snapshot path for a log source spec: the log
// path plus ".stats.json". Synthetic specs (the built-in example logs and
// generators, which have no directory to sit next to) get no default path —
// PathFor returns "" and the caller should treat statistics as in-memory
// only unless an explicit path is configured.
func PathFor(spec string) string {
	if spec == "" || spec == "fig3" {
		return ""
	}
	if strings.Contains(spec, ":") && !filepath.IsAbs(spec) {
		// Generator specs like "clinic:1500" or "model:widgets".
		return ""
	}
	return spec + ".stats.json"
}

// Summary renders a short human-readable account of the registry, used by
// the CLI's verbose output. Operators appear in a stable order.
func (r *Registry) Summary() string {
	snap := r.Snapshot()
	var sb strings.Builder
	fmt.Fprintf(&sb, "queries observed: %d\n", snap.Queries)
	names := make([]string, 0, len(snap.Operators))
	for name := range snap.Operators {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		op := snap.Operators[name]
		if v, ok := op.Selectivity(); ok {
			fmt.Fprintf(&sb, "%-12s pairs=%d outputs=%d selectivity=%.4g (measured)\n",
				name, op.Pairs, op.Outputs, v)
		} else {
			fmt.Fprintf(&sb, "%-12s pairs=%d outputs=%d (below evidence threshold)\n",
				name, op.Pairs, op.Outputs)
		}
	}
	return sb.String()
}
