package stats

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
	"wlq/internal/core/rewrite"
	"wlq/internal/predicate"
)

// opStats builds one operator NodeStats for ObserveMeter.
func opStats(op pattern.Op, pairs, outputs uint64) eval.NodeStats {
	return eval.NodeStats{
		Node:    &pattern.Binary{Op: op, Left: &pattern.Atom{Activity: "A"}, Right: &pattern.Atom{Activity: "B"}},
		Op:      op,
		Evals:   1,
		Pairs:   pairs,
		Outputs: outputs,
	}
}

// atomStats builds one atom NodeStats; guards > 0 marks it guarded.
func atomStats(activity string, candidates, matches uint64, guards int) eval.NodeStats {
	return eval.NodeStats{
		Node:        &pattern.Atom{Activity: activity, Guards: make([]predicate.Guard, guards)},
		Atom:        true,
		Evals:       1,
		Comparisons: candidates,
		Outputs:     matches,
	}
}

func TestSelectivitiesBelowThresholdKeepModelConstants(t *testing.T) {
	r := New()
	// 63 pairs < MinOperatorPairs: no override.
	r.ObserveMeter([]eval.NodeStats{opStats(pattern.OpSequential, MinOperatorPairs-1, 10)})
	sel := r.Selectivities()
	model := rewrite.ModelSelectivities()
	if sel.Sequential != model.Sequential || sel.SequentialSource != rewrite.SelectivityAssumed {
		t.Fatalf("below threshold: got %v/%s, want model constant %v/%s",
			sel.Sequential, sel.SequentialSource, model.Sequential, rewrite.SelectivityAssumed)
	}
	if sel.Measured() {
		t.Fatal("Measured() true with no measured source")
	}
}

func TestSelectivitiesMeasuredAtThreshold(t *testing.T) {
	r := New()
	r.ObserveMeter([]eval.NodeStats{
		opStats(pattern.OpSequential, 100, 90),
		opStats(pattern.OpConsecutive, 200, 10),
		opStats(pattern.OpParallel, 64, 32),
	})
	sel := r.Selectivities()
	if sel.SequentialSource != rewrite.SelectivityMeasured || math.Abs(sel.Sequential-0.9) > 1e-9 {
		t.Fatalf("sequential: got %v/%s, want 0.9/measured", sel.Sequential, sel.SequentialSource)
	}
	if sel.ConsecutiveSource != rewrite.SelectivityMeasured || math.Abs(sel.Consecutive-0.05) > 1e-9 {
		t.Fatalf("consecutive: got %v/%s, want 0.05/measured", sel.Consecutive, sel.ConsecutiveSource)
	}
	if sel.ParallelSource != rewrite.SelectivityMeasured || math.Abs(sel.Parallel-0.5) > 1e-9 {
		t.Fatalf("parallel: got %v/%s, want 0.5/measured", sel.Parallel, sel.ParallelSource)
	}
	if !sel.Measured() {
		t.Fatal("Measured() false with measured sources")
	}
	if got := r.Queries(); got != 1 {
		t.Fatalf("Queries() = %d, want 1", got)
	}
}

func TestSelectivityClamps(t *testing.T) {
	zero := OperatorStats{Pairs: 1000, Outputs: 0}
	if v, ok := zero.Selectivity(); !ok || v != 1e-4 {
		t.Fatalf("zero outputs: got %v/%v, want clamp to 1e-4", v, ok)
	}
	over := OperatorStats{Pairs: 100, Outputs: 500} // degenerate: outputs > pairs
	if v, ok := over.Selectivity(); !ok || v != 1.0 {
		t.Fatalf("outputs>pairs: got %v/%v, want clamp to 1.0", v, ok)
	}
}

func TestChoiceNeverOverridden(t *testing.T) {
	r := New()
	r.ObserveMeter([]eval.NodeStats{opStats(pattern.OpChoice, 10_000, 10)})
	sel := r.Selectivities()
	// Choice has no selectivity constant: ForOp must keep reporting none.
	if v, src := sel.ForOp(pattern.OpChoice); v != 0 || src != "" {
		t.Fatalf("choice ForOp: got %v/%q, want 0/\"\"", v, src)
	}
}

func TestGuardSelectivity(t *testing.T) {
	r := New()
	// 100 candidates through atoms carrying 2 guards each, 25 pass overall:
	// f = 0.25, mean guards = 2, per-guard selectivity = sqrt(0.25) = 0.5.
	r.ObserveMeter([]eval.NodeStats{atomStats("X", 100, 25, 2)})
	sel := r.Selectivities()
	if sel.GuardSource != rewrite.SelectivityMeasured || math.Abs(sel.Guard-0.5) > 1e-9 {
		t.Fatalf("guard: got %v/%s, want 0.5/measured", sel.Guard, sel.GuardSource)
	}
}

func TestGuardBelowThreshold(t *testing.T) {
	r := New()
	r.ObserveMeter([]eval.NodeStats{atomStats("X", MinGuardCandidates-1, 10, 1)})
	sel := r.Selectivities()
	if sel.GuardSource != rewrite.SelectivityAssumed {
		t.Fatalf("guard below threshold: source %s, want assumed", sel.GuardSource)
	}
}

func TestNegatedAtomsIgnored(t *testing.T) {
	r := New()
	st := eval.NodeStats{
		Node:        &pattern.Atom{Activity: "X", Negated: true},
		Atom:        true,
		Evals:       1,
		Comparisons: 500,
		Outputs:     400,
	}
	r.ObserveMeter([]eval.NodeStats{st})
	snap := r.Snapshot()
	if len(snap.Activities) != 0 {
		t.Fatalf("negated atom leaked into activities: %+v", snap.Activities)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.ObserveMeter([]eval.NodeStats{opStats(pattern.OpSequential, 100, 50)})
	if r.Queries() != 0 {
		t.Fatal("nil registry reported queries")
	}
	sel := r.Selectivities()
	model := rewrite.ModelSelectivities()
	if sel != model {
		t.Fatalf("nil registry selectivities: got %+v, want model %+v", sel, model)
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	r := New()
	r.ObserveMeter([]eval.NodeStats{
		opStats(pattern.OpSequential, 100, 90),
		atomStats("SeeDoctor", 80, 40, 1),
	})
	path := filepath.Join(t.TempDir(), "log.stats.json")
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Snapshot(), r.Snapshot(); got.Queries != want.Queries ||
		got.Operators["sequential"] != want.Operators["sequential"] ||
		got.Activities["SeeDoctor"] != want.Activities["SeeDoctor"] ||
		got.Guards != want.Guards {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if loaded.Selectivities().SequentialSource != rewrite.SelectivityMeasured {
		t.Fatal("loaded registry lost measured sequential selectivity")
	}
}

func TestLoadMissingFileReturnsEmpty(t *testing.T) {
	r, err := Load(filepath.Join(t.TempDir(), "nope.stats.json"))
	if err != nil {
		t.Fatalf("missing file should not error: %v", err)
	}
	if r.Queries() != 0 {
		t.Fatal("missing file should yield empty registry")
	}
}

func TestLoadRejectsCorruptAndWrongSchema(t *testing.T) {
	dir := t.TempDir()
	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(corrupt); err == nil {
		t.Fatal("corrupt snapshot should error")
	}
	wrong := filepath.Join(dir, "wrong.json")
	if err := os.WriteFile(wrong, []byte(`{"schema":"wlq-stats/v999"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(wrong); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema mismatch should error, got %v", err)
	}
}

func TestPathFor(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"", ""},
		{"fig3", ""},
		{"clinic:1500:7", ""},
		{"model:orders:100:1", ""},
		{"referrals.jsonl", "referrals.jsonl.stats.json"},
		{"/data/logs/big.jsonl", "/data/logs/big.jsonl.stats.json"},
	}
	for _, c := range cases {
		if got := PathFor(c.spec); got != c.want {
			t.Errorf("PathFor(%q) = %q, want %q", c.spec, got, c.want)
		}
	}
}

func TestConcurrentObserveAndRead(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.ObserveMeter([]eval.NodeStats{opStats(pattern.OpSequential, 10, 5)})
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = r.Selectivities()
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Queries(); got != 800 {
		t.Fatalf("Queries() = %d, want 800", got)
	}
}
