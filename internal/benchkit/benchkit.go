// Package benchkit is the measurement harness behind cmd/wlq-bench and
// EXPERIMENTS.md: timed parameter sweeps, aligned table rendering, and a
// log-log least-squares fit used to check that measured scaling curves have
// the exponent the paper's complexity analysis predicts (Lemma 1,
// Theorem 1).
package benchkit

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Measure times fn, repeating it until at least minDuration has elapsed (or
// maxReps runs), and returns the mean duration per run. A garbage collection
// and a discarded warmup run precede the measurements so earlier workloads'
// heap pressure does not bleed into the series.
func Measure(fn func()) time.Duration {
	const (
		minDuration = 20 * time.Millisecond
		maxReps     = 1000
	)
	runtime.GC()
	fn() // warmup
	var total time.Duration
	reps := 0
	for total < minDuration && reps < maxReps {
		start := time.Now()
		fn()
		total += time.Since(start)
		reps++
	}
	return total / time.Duration(reps)
}

// Point is one row of a sweep: a parameter value and its measurement.
type Point struct {
	// X is the swept parameter (n1·n2, m, k, ...).
	X float64
	// Duration is the measured mean time.
	Duration time.Duration
	// Extra holds additional columns (e.g. output cardinality), rendered
	// in declaration order.
	Extra map[string]float64
}

// Sweep is a named series of measurements.
type Sweep struct {
	Name   string
	XLabel string
	Points []Point
}

// Run builds a sweep by measuring fn at each parameter value. setup
// prepares the workload for x and returns the closure to time plus any
// extra columns.
func Run(name, xlabel string, xs []float64, setup func(x float64) (func(), map[string]float64)) Sweep {
	sw := Sweep{Name: name, XLabel: xlabel}
	for _, x := range xs {
		fn, extra := setup(x)
		sw.Points = append(sw.Points, Point{X: x, Duration: Measure(fn), Extra: extra})
	}
	return sw
}

// FitPowerLaw fits duration ≈ c·x^e by least squares on log-log axes and
// returns the exponent e and the coefficient of determination r². Points
// with non-positive values are skipped; fewer than two usable points yield
// (0, 0).
func (s Sweep) FitPowerLaw() (exponent, r2 float64) {
	var xs, ys []float64
	for _, p := range s.Points {
		if p.X > 0 && p.Duration > 0 {
			xs = append(xs, math.Log(p.X))
			ys = append(ys, math.Log(float64(p.Duration)))
		}
	}
	return linfit(xs, ys)
}

// linfit returns the slope and r² of the least-squares line through (x, y).
func linfit(xs, ys []float64) (slope, r2 float64) {
	n := float64(len(xs))
	if n < 2 {
		return 0, 0
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0, 0
	}
	slope = (n*sxy - sx*sy) / denom
	// r² via the correlation coefficient.
	varY := n*syy - sy*sy
	if varY == 0 {
		return slope, 1 // constant y: the fit is exact (slope 0)
	}
	r := (n*sxy - sx*sy) / math.Sqrt(denom*varY)
	return slope, r * r
}

// Table renders the sweep as an aligned text table with the X column, the
// duration, and any extra columns (sorted by name).
func (s Sweep) Table() string {
	extraCols := map[string]struct{}{}
	for _, p := range s.Points {
		for k := range p.Extra {
			extraCols[k] = struct{}{}
		}
	}
	cols := make([]string, 0, len(extraCols))
	for k := range extraCols {
		cols = append(cols, k)
	}
	sort.Strings(cols)

	header := append([]string{s.XLabel, "time"}, cols...)
	rows := [][]string{header}
	for _, p := range s.Points {
		row := []string{formatX(p.X), p.Duration.String()}
		for _, c := range cols {
			row = append(row, formatX(p.Extra[c]))
		}
		rows = append(rows, row)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", s.Name)
	sb.WriteString(Align(rows))
	if exp, r2 := s.FitPowerLaw(); r2 > 0 {
		fmt.Fprintf(&sb, "power-law fit: time ~ %s^%.2f (r²=%.3f)\n", s.XLabel, exp, r2)
	}
	return sb.String()
}

func formatX(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%.4g", x)
}

// Align renders rows with space-padded, left-aligned columns.
func Align(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			for pad := len(cell); pad < widths[i] && i < len(row)-1; pad++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Comparison is a two-series table (e.g. naive vs merge) over shared xs.
type Comparison struct {
	Name   string
	XLabel string
	ALabel string
	BLabel string
	Xs     []float64
	ATimes []time.Duration
	BTimes []time.Duration
}

// Table renders the comparison with a speedup column.
func (c Comparison) Table() string {
	rows := [][]string{{c.XLabel, c.ALabel, c.BLabel, "speedup"}}
	for i, x := range c.Xs {
		speedup := "-"
		if i < len(c.ATimes) && i < len(c.BTimes) && c.BTimes[i] > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(c.ATimes[i])/float64(c.BTimes[i]))
		}
		rows = append(rows, []string{
			formatX(x), c.ATimes[i].String(), c.BTimes[i].String(), speedup,
		})
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", c.Name)
	sb.WriteString(Align(rows))
	return sb.String()
}
