package benchkit

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"time"
)

// ReportSchema versions the machine-readable run summary; bump it on any
// incompatible field change so downstream comparison tooling can refuse
// mixed-schema diffs instead of misreading them.
const ReportSchema = "wlq-bench/v1"

// Report is one wlq-bench run in machine-readable form — the format behind
// the checked-in BENCH_*.json files. Two reports from the same machine and
// log configuration are directly comparable: per-bench ns/op for the perf
// trajectory, and per-bench answer digests for cross-backend correctness
// (CI fails when the columnar backend's digests differ from the row
// backend's).
type Report struct {
	Schema     string      `json:"schema"`
	Tool       string      `json:"tool"`
	Backend    string      `json:"backend"` // "row" or "columnar"
	CreatedAt  time.Time   `json:"created_at"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Log        LogMeta     `json:"log"`
	Benches    []BenchItem `json:"benches"`
	// Digest combines every bench's answer digest; equal log configs and
	// equal Digest values mean the two runs produced identical answers.
	Digest string `json:"digest"`
}

// LogMeta identifies the benchmark workload so runs are only compared
// like-for-like.
type LogMeta struct {
	Source     string `json:"source"` // e.g. "clinic"
	Instances  int    `json:"instances"`
	Records    int    `json:"records"`
	Activities int    `json:"activities"`
	Seed       int64  `json:"seed"`
}

// BenchItem is one measured query.
type BenchItem struct {
	Name      string `json:"name"`
	Query     string `json:"query"`
	NsPerOp   int64  `json:"ns_per_op"`
	Incidents int    `json:"incidents"`
	// Digest is an FNV-1a 64 hash of the normalized incident set, so
	// answer equivalence is checkable without storing the incidents.
	Digest string `json:"digest"`
}

// NewReport stamps the environment fields.
func NewReport(backend string, log LogMeta) *Report {
	return &Report{
		Schema:     ReportSchema,
		Tool:       "wlq-bench",
		Backend:    backend,
		CreatedAt:  time.Now().UTC().Truncate(time.Second),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Log:        log,
	}
}

// Digest hashes an answer rendering with FNV-1a 64.
func Digest(answer string) string {
	h := fnv.New64a()
	h.Write([]byte(answer))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Finalize computes the combined digest over the per-bench digests (in
// bench order, names included, so a renamed or reordered suite never
// collides with an unchanged one).
func (r *Report) Finalize() {
	h := fnv.New64a()
	for _, b := range r.Benches {
		h.Write([]byte(b.Name))
		h.Write([]byte{0})
		h.Write([]byte(b.Digest))
		h.Write([]byte{0})
	}
	r.Digest = fmt.Sprintf("%016x", h.Sum64())
}

// WriteReport writes the report as indented JSON.
func WriteReport(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport loads and schema-checks a report.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchkit: parsing %s: %w", path, err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("benchkit: %s has schema %q, want %q", path, r.Schema, ReportSchema)
	}
	return &r, nil
}

// CompareReports checks that two runs answered identically and renders a
// per-bench speedup table (a over b, so "2.00x" means b ran twice as fast).
// It returns an error on any digest or workload mismatch — the signal CI's
// bench-smoke step trips on.
func CompareReports(a, b *Report) (string, error) {
	if a.Log != b.Log {
		return "", fmt.Errorf("benchkit: workloads differ: %+v vs %+v", a.Log, b.Log)
	}
	if len(a.Benches) != len(b.Benches) {
		return "", fmt.Errorf("benchkit: bench counts differ: %d vs %d", len(a.Benches), len(b.Benches))
	}
	rows := [][]string{{"bench", a.Backend, b.Backend, "speedup", "incidents"}}
	for i, ab := range a.Benches {
		bb := b.Benches[i]
		if ab.Name != bb.Name {
			return "", fmt.Errorf("benchkit: bench %d named %q vs %q", i, ab.Name, bb.Name)
		}
		if ab.Digest != bb.Digest {
			return "", fmt.Errorf("benchkit: answers differ on %q: digest %s (%s) vs %s (%s)",
				ab.Name, ab.Digest, a.Backend, bb.Digest, b.Backend)
		}
		speedup := "-"
		if bb.NsPerOp > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(ab.NsPerOp)/float64(bb.NsPerOp))
		}
		rows = append(rows, []string{
			ab.Name,
			time.Duration(ab.NsPerOp).String(),
			time.Duration(bb.NsPerOp).String(),
			speedup,
			fmt.Sprintf("%d", ab.Incidents),
		})
	}
	if a.Digest != b.Digest {
		return "", fmt.Errorf("benchkit: combined digests differ: %s vs %s", a.Digest, b.Digest)
	}
	return Align(rows), nil
}
