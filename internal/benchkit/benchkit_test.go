package benchkit

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestMeasurePositive(t *testing.T) {
	d := Measure(func() {
		s := 0
		for i := 0; i < 1000; i++ {
			s += i
		}
		_ = s
	})
	if d <= 0 {
		t.Errorf("Measure = %v, want positive", d)
	}
}

func TestLinfit(t *testing.T) {
	// Perfect line y = 3x + 1.
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 1
	}
	slope, r2 := linfit(xs, ys)
	if math.Abs(slope-3) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Errorf("linfit = %g, %g; want 3, 1", slope, r2)
	}
	if s, r := linfit(nil, nil); s != 0 || r != 0 {
		t.Errorf("linfit(empty) = %g, %g", s, r)
	}
	// Degenerate x (all equal).
	if s, _ := linfit([]float64{1, 1}, []float64{0, 5}); s != 0 {
		t.Errorf("degenerate linfit slope = %g", s)
	}
	// Constant y: exact slope-0 fit.
	if s, r := linfit([]float64{1, 2, 3}, []float64{4, 4, 4}); s != 0 || r != 1 {
		t.Errorf("constant-y linfit = %g, %g", s, r)
	}
}

func TestFitPowerLaw(t *testing.T) {
	// Synthetic quadratic scaling: duration = x².
	sw := Sweep{Name: "quad", XLabel: "n"}
	for _, x := range []float64{10, 20, 40, 80, 160} {
		sw.Points = append(sw.Points, Point{X: x, Duration: time.Duration(x * x)})
	}
	exp, r2 := sw.FitPowerLaw()
	if math.Abs(exp-2) > 0.01 || r2 < 0.999 {
		t.Errorf("FitPowerLaw = %g (r²=%g), want 2", exp, r2)
	}
	// Non-positive points are skipped.
	sw.Points = append(sw.Points, Point{X: 0, Duration: 5}, Point{X: 5, Duration: 0})
	exp2, _ := sw.FitPowerLaw()
	if math.Abs(exp2-2) > 0.01 {
		t.Errorf("FitPowerLaw with junk points = %g", exp2)
	}
}

func TestSweepTable(t *testing.T) {
	sw := Sweep{
		Name:   "demo",
		XLabel: "n",
		Points: []Point{
			{X: 10, Duration: time.Millisecond, Extra: map[string]float64{"out": 5}},
			{X: 100, Duration: 10 * time.Millisecond, Extra: map[string]float64{"out": 50}},
		},
	}
	got := sw.Table()
	for _, want := range []string{"== demo ==", "n", "time", "out", "1ms", "100", "power-law fit"} {
		if !strings.Contains(got, want) {
			t.Errorf("Table missing %q:\n%s", want, got)
		}
	}
}

func TestRun(t *testing.T) {
	sw := Run("r", "x", []float64{1, 2}, func(x float64) (func(), map[string]float64) {
		return func() { time.Sleep(time.Microsecond) }, map[string]float64{"double": 2 * x}
	})
	if len(sw.Points) != 2 {
		t.Fatalf("points = %d", len(sw.Points))
	}
	if sw.Points[1].Extra["double"] != 4 {
		t.Errorf("extra = %v", sw.Points[1].Extra)
	}
}

func TestAlign(t *testing.T) {
	got := Align([][]string{{"a", "bb"}, {"ccc", "d"}})
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.HasPrefix(lines[0], "a    bb") {
		t.Errorf("alignment wrong: %q", lines[0])
	}
	if Align(nil) != "" {
		t.Error("Align(nil) should be empty")
	}
}

func TestComparisonTable(t *testing.T) {
	c := Comparison{
		Name: "naive vs merge", XLabel: "n",
		ALabel: "naive", BLabel: "merge",
		Xs:     []float64{100},
		ATimes: []time.Duration{10 * time.Millisecond},
		BTimes: []time.Duration{2 * time.Millisecond},
	}
	got := c.Table()
	for _, want := range []string{"naive vs merge", "5.00x", "10ms", "2ms"} {
		if !strings.Contains(got, want) {
			t.Errorf("Comparison.Table missing %q:\n%s", want, got)
		}
	}
}

func TestFormatX(t *testing.T) {
	if formatX(100) != "100" {
		t.Errorf("formatX(100) = %q", formatX(100))
	}
	if formatX(0.5) != "0.5" {
		t.Errorf("formatX(0.5) = %q", formatX(0.5))
	}
}
