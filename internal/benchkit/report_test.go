package benchkit

import (
	"path/filepath"
	"strings"
	"testing"
)

func sampleReport(backend string, ns int64) *Report {
	r := NewReport(backend, LogMeta{Source: "clinic", Instances: 10, Records: 100, Activities: 8, Seed: 1})
	r.Benches = []BenchItem{
		{Name: "atom", Query: "A", NsPerOp: ns, Incidents: 3, Digest: Digest("{(1;2)}")},
		{Name: "seq", Query: "A -> B", NsPerOp: ns * 2, Incidents: 1, Digest: Digest("{(1;2,3)}")},
	}
	r.Finalize()
	return r
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	want := sampleReport("row", 1000)
	if err := WriteReport(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest != want.Digest || got.Backend != "row" || len(got.Benches) != 2 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if got.Schema != ReportSchema {
		t.Errorf("schema = %q", got.Schema)
	}
}

func TestCompareReportsAgreeing(t *testing.T) {
	a, b := sampleReport("row", 2000), sampleReport("columnar", 1000)
	table, err := CompareReports(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table, "2.00x") {
		t.Errorf("speedup column missing from:\n%s", table)
	}
}

func TestCompareReportsDigestMismatch(t *testing.T) {
	a, b := sampleReport("row", 1000), sampleReport("columnar", 1000)
	b.Benches[1].Digest = Digest("{(9;9,9)}")
	b.Finalize()
	if _, err := CompareReports(a, b); err == nil {
		t.Fatal("differing answers not detected")
	}
}

func TestCompareReportsWorkloadMismatch(t *testing.T) {
	a, b := sampleReport("row", 1000), sampleReport("columnar", 1000)
	b.Log.Seed = 2
	if _, err := CompareReports(a, b); err == nil {
		t.Fatal("differing workloads not detected")
	}
}

func TestDigestStable(t *testing.T) {
	if Digest("x") != Digest("x") {
		t.Error("digest not deterministic")
	}
	if Digest("x") == Digest("y") {
		t.Error("distinct answers collided (FNV-1a would be broken)")
	}
}
