// Package colstore is the columnar log backend: an immutable,
// query-optimized representation of a workflow log built once at load (or
// reload) time. Activity names are interned into dense int32 symbols,
// records live in parallel wid/is-lsn/activity columns with per-instance
// offset ranges, and every activity carries a sorted posting list so an
// atomic pattern is answered in O(log n + k) with zero allocation.
//
// The package implements eval.Source and eval.SymbolicSource; the
// cross-backend equivalence suite in this package proves its answers are
// byte-identical to the row backend's (eval.Index) for every operator,
// with and without rewriting, sharded and unsharded. See docs/STORAGE.md
// for the layout and its invariants.
package colstore

// SymbolTable interns activity names into dense int32 symbols. Symbols are
// assigned in first-intern order, starting at 0; the table is append-only
// and, once a Store is built, never mutated again (lookups after build are
// read-only and therefore safe for concurrent use).
type SymbolTable struct {
	names []string
	ids   map[string]int32
}

// NewSymbolTable returns an empty table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{ids: make(map[string]int32)}
}

// Intern returns the symbol for name, assigning the next dense id on first
// sight. Interning the same name twice returns the same symbol.
func (t *SymbolTable) Intern(name string) int32 {
	if id, ok := t.ids[name]; ok {
		return id
	}
	id := int32(len(t.names))
	t.names = append(t.names, name)
	t.ids[name] = id
	return id
}

// Resolve maps a name to its symbol; ok is false when the name was never
// interned.
func (t *SymbolTable) Resolve(name string) (int32, bool) {
	id, ok := t.ids[name]
	return id, ok
}

// Name returns the string for a symbol previously returned by Intern or
// Resolve. Panics on out-of-range symbols (a caller bug by contract).
func (t *SymbolTable) Name(sym int32) string { return t.names[sym] }

// Len returns the number of distinct interned names.
func (t *SymbolTable) Len() int { return len(t.names) }
