package colstore

import (
	"context"
	"testing"

	"wlq/internal/core/eval"
	"wlq/internal/core/pattern"
	"wlq/internal/core/rewrite"
	"wlq/internal/gen"
	"wlq/internal/shard"
	"wlq/internal/wlog"
)

// The cross-backend equivalence suite: for every operator, with and without
// the rewriter, sharded and unsharded, the columnar backend's incident sets
// must be identical (same incidents, same normalized order) to the row
// backend's. Run under -race in CI, this is the proof that -columnar is a
// physical switch, never a semantic one.

var equivalenceQueries = []string{
	// Each operator alone, and each in composition.
	"Act00 . Act01",
	"Act00 -> Act02",
	"Act01 | Act03",
	"Act00 & Act01",
	"(Act00 . Act01) -> Act02",
	"(Act00 -> Act01) | (Act00 -> Act02)",
	"(Act00 | Act01) & Act02",
	"Act00 -> (Act01 & (Act02 | Act03))",
	// Negation and absent activities.
	"!Act00 . Act01",
	"Act00 -> NoSuchActivity",
	"!NoSuchActivity & Act01",
	// START/END boundary records.
	"START . Act00",
	"Act00 -> END",
}

func equivalenceLogs(t *testing.T) map[string]*wlog.Log {
	t.Helper()
	return map[string]*wlog.Log{
		"uniform": gen.MustRandomLog(gen.LogParams{
			Instances: 40, MeanLength: 20, Seed: 11,
		}),
		"skewed": gen.MustRandomLog(gen.LogParams{
			Instances: 25, MeanLength: 30, Skew: 1.3, CompleteFraction: 0.6, Seed: 23,
		}),
	}
}

func parse(t *testing.T, q string) pattern.Node {
	t.Helper()
	p, err := pattern.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return p
}

func TestCrossBackendEquivalence(t *testing.T) {
	for logName, l := range equivalenceLogs(t) {
		ix := eval.NewIndex(l)
		cs := Build(l)
		for _, q := range equivalenceQueries {
			for _, rewritten := range []bool{false, true} {
				name := logName + "/" + q
				if rewritten {
					name += "/rewritten"
				}
				t.Run(name, func(t *testing.T) {
					rowP, colP := parse(t, q), parse(t, q)
					if rewritten {
						// Each backend feeds its own statistics to the
						// optimizer — the plans must still agree because
						// both backends report identical stats.
						rowP, _ = rewrite.Optimize(rowP, ix)
						colP, _ = rewrite.Optimize(colP, cs)
					}
					want := eval.New(ix, eval.Options{}).Eval(rowP)
					got := eval.New(cs, eval.Options{}).Eval(colP)
					if !want.Equal(got) {
						t.Fatalf("backends disagree:\nrow:      %s\ncolumnar: %s", want, got)
					}
					if want.String() != got.String() {
						t.Fatalf("normalized renderings differ:\nrow:      %s\ncolumnar: %s", want, got)
					}
				})
			}
		}
	}
}

func TestCrossBackendEquivalenceSharded(t *testing.T) {
	for logName, l := range equivalenceLogs(t) {
		ix := eval.NewIndex(l)
		cs := Build(l)
		rowEx := shard.NewExecutor(ix, shard.Config{Shards: 4})
		colEx := shard.NewExecutor(cs, shard.Config{Shards: 4})
		for _, q := range equivalenceQueries {
			t.Run(logName+"/"+q, func(t *testing.T) {
				p := parse(t, q)
				want, wc, err := rowEx.Execute(context.Background(), p, eval.Options{}, nil)
				if err != nil {
					t.Fatalf("row executor: %v", err)
				}
				got, gc, err := colEx.Execute(context.Background(), p, eval.Options{}, nil)
				if err != nil {
					t.Fatalf("columnar executor: %v", err)
				}
				if !wc.Complete || !gc.Complete {
					t.Fatalf("incomplete results: row %v, columnar %v", wc.Complete, gc.Complete)
				}
				if !want.Equal(got) {
					t.Fatalf("sharded backends disagree:\nrow:      %s\ncolumnar: %s", want, got)
				}
			})
		}
	}
}

func TestCrossBackendEquivalenceStrategies(t *testing.T) {
	l := gen.MustRandomLog(gen.LogParams{Instances: 12, MeanLength: 15, Seed: 5})
	ix := eval.NewIndex(l)
	cs := Build(l)
	for _, strat := range []eval.Strategy{eval.StrategyNaive, eval.StrategyMerge} {
		for _, q := range equivalenceQueries {
			t.Run(strat.String()+"/"+q, func(t *testing.T) {
				p := parse(t, q)
				want := eval.New(ix, eval.Options{Strategy: strat}).Eval(p)
				got := eval.New(cs, eval.Options{Strategy: strat}).Eval(p)
				if !want.Equal(got) {
					t.Fatalf("strategy %v disagrees:\nrow:      %s\ncolumnar: %s", strat, want, got)
				}
			})
		}
	}
}

func TestCrossBackendCountAndExists(t *testing.T) {
	l := gen.MustRandomLog(gen.LogParams{Instances: 20, MeanLength: 18, Skew: 0.8, Seed: 31})
	ix := eval.NewIndex(l)
	cs := Build(l)
	for _, q := range equivalenceQueries {
		p := parse(t, q)
		rowEv := eval.New(ix, eval.Options{})
		colEv := eval.New(cs, eval.Options{})
		if rc, cc := rowEv.Count(p), colEv.Count(p); rc != cc {
			t.Errorf("Count(%q): row %d, columnar %d", q, rc, cc)
		}
		if re, ce := rowEv.Exists(p), colEv.Exists(p); re != ce {
			t.Errorf("Exists(%q): row %v, columnar %v", q, re, ce)
		}
	}
}
