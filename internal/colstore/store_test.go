package colstore

import (
	"reflect"
	"strings"
	"testing"

	"wlq/internal/core/eval"
	"wlq/internal/gen"
	"wlq/internal/logio"
	"wlq/internal/wlog"
)

func TestSymbolTableBasics(t *testing.T) {
	st := NewSymbolTable()
	a := st.Intern("A")
	b := st.Intern("B")
	if a == b {
		t.Fatalf("distinct names interned to the same symbol %d", a)
	}
	if got := st.Intern("A"); got != a {
		t.Errorf("re-intern of A = %d, want %d", got, a)
	}
	if st.Len() != 2 {
		t.Errorf("Len = %d, want 2", st.Len())
	}
	if st.Name(a) != "A" || st.Name(b) != "B" {
		t.Errorf("Name round-trip failed: %q %q", st.Name(a), st.Name(b))
	}
	if _, ok := st.Resolve("C"); ok {
		t.Error("Resolve of never-interned name reported ok")
	}
}

func TestSymbolTableEmptyAndDuplicateNames(t *testing.T) {
	st := NewSymbolTable()
	empty := st.Intern("")
	if got := st.Intern(""); got != empty {
		t.Errorf("empty name interned twice to %d and %d", empty, got)
	}
	if st.Name(empty) != "" {
		t.Errorf("Name(empty) = %q", st.Name(empty))
	}
	// Whitespace-variant names are distinct symbols: interning does not
	// normalize — trimming is logio's job at ingest.
	sp := st.Intern(" A ")
	plain := st.Intern("A")
	if sp == plain {
		t.Error("\" A \" and \"A\" interned to the same symbol")
	}
}

// mustLog builds a small valid log with duplicate-heavy activity usage.
func mustLog(t *testing.T) *wlog.Log {
	t.Helper()
	var b wlog.Builder
	w1 := b.Start()
	w2 := b.Start()
	for _, act := range []string{"A", "B", "A", "A", "C"} {
		if err := b.Emit(w1, act, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, act := range []string{"B", "B", "A"} {
		if err := b.Emit(w2, act, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.End(w1); err != nil {
		t.Fatal(err)
	}
	if err := b.End(w2); err != nil {
		t.Fatal(err)
	}
	l, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestStoreMatchesRowIndex(t *testing.T) {
	logs := map[string]*wlog.Log{
		"handmade": mustLog(t),
		"random": gen.MustRandomLog(gen.LogParams{
			Instances: 37, MeanLength: 24, Skew: 1.1, CompleteFraction: 0.7, Seed: 7,
		}),
	}
	for name, l := range logs {
		t.Run(name, func(t *testing.T) {
			ix := eval.NewIndex(l)
			cs := Build(l)
			assertSourcesAgree(t, ix, cs, l)
		})
	}
}

// assertSourcesAgree checks every Source method answer of cs against the
// row index ix, including probes for absent wids and activities.
func assertSourcesAgree(t *testing.T, ix *eval.Index, cs *Store, l *wlog.Log) {
	t.Helper()
	if !reflect.DeepEqual(ix.WIDs(), cs.WIDs()) {
		t.Fatalf("WIDs: row %v, columnar %v", ix.WIDs(), cs.WIDs())
	}
	if ix.TotalRecords() != cs.TotalRecords() {
		t.Errorf("TotalRecords: row %d, columnar %d", ix.TotalRecords(), cs.TotalRecords())
	}
	if !reflect.DeepEqual(ix.Activities(), cs.Activities()) {
		t.Errorf("Activities: row %v, columnar %v", ix.Activities(), cs.Activities())
	}
	acts := append(ix.Activities(), "no-such-activity", "")
	for _, act := range acts {
		if rc, cc := ix.ActivityCount(act), cs.ActivityCount(act); rc != cc {
			t.Errorf("ActivityCount(%q): row %d, columnar %d", act, rc, cc)
		}
	}
	probeWIDs := append(append([]uint64{}, ix.WIDs()...), 0, 1<<40) // absent wids included
	for _, wid := range probeWIDs {
		if rl, cl := ix.InstanceLen(wid), cs.InstanceLen(wid); rl != cl {
			t.Errorf("InstanceLen(%d): row %d, columnar %d", wid, rl, cl)
		}
		ri, ci := ix.Instance(wid), cs.Instance(wid)
		if len(ri) != len(ci) {
			t.Fatalf("Instance(%d): row %d records, columnar %d", wid, len(ri), len(ci))
		}
		for k := range ri {
			if !ri[k].Equal(ci[k]) {
				t.Errorf("Instance(%d)[%d]: row %v, columnar %v", wid, k, ri[k], ci[k])
			}
		}
		for seq := uint64(0); seq <= uint64(len(ri))+2; seq++ {
			rr, rok := ix.Record(wid, seq)
			cr, cok := cs.Record(wid, seq)
			if rok != cok || (rok && !rr.Equal(cr)) {
				t.Errorf("Record(%d,%d): row (%v,%v), columnar (%v,%v)", wid, seq, rr, rok, cr, cok)
			}
		}
		for _, act := range acts {
			rs, css := ix.ActivitySeqs(wid, act), cs.ActivitySeqs(wid, act)
			if len(rs) != len(css) || (len(rs) > 0 && !reflect.DeepEqual(rs, css)) {
				t.Errorf("ActivitySeqs(%d,%q): row %v, columnar %v", wid, act, rs, css)
			}
		}
	}
}

func TestSymbolicLookups(t *testing.T) {
	cs := Build(mustLog(t))
	sym, ok := cs.ResolveActivity("A")
	if !ok {
		t.Fatal("ResolveActivity(A) not found")
	}
	if got := cs.ActivitySeqsSym(1, sym); !reflect.DeepEqual(got, []uint64{2, 4, 5}) {
		t.Errorf("ActivitySeqsSym(1, A) = %v, want [2 4 5]", got)
	}
	if got := cs.ActivitySeqsSym(999, sym); got != nil {
		t.Errorf("ActivitySeqsSym on absent wid = %v, want nil", got)
	}
	if got := cs.ActivitySeqsSym(1, -1); got != nil {
		t.Errorf("ActivitySeqsSym on negative symbol = %v, want nil", got)
	}
	if got := cs.ActivitySeqsSym(1, int32(cs.Symbols().Len())); got != nil {
		t.Errorf("ActivitySeqsSym on out-of-range symbol = %v, want nil", got)
	}
	if _, ok := cs.ResolveActivity("Z"); ok {
		t.Error("ResolveActivity of absent activity reported ok")
	}
}

const storeCSV = `case,activity,when
o-1,Pay,2017-01-02T10:00:00Z
o-2,Pack,2017-01-02T09:00:00Z
o-1,Ship,2017-01-03T08:00:00Z
o-2,Ship,2017-01-02T11:00:00Z
o-2,Pay,2017-01-04T12:00:00Z
`

const storeXES = `<?xml version="1.0" encoding="UTF-8"?>
<log xes.version="1.0">
  <trace>
    <string key="concept:name" value="o-1"/>
    <event><string key="concept:name" value="Pay"/></event>
    <event><string key="concept:name" value=" Ship "/></event>
  </trace>
  <trace>
    <string key="concept:name" value="o-2"/>
    <event><string key="concept:name" value="Pack"/></event>
    <event><string key="concept:name" value="Ship"/></event>
  </trace>
</log>
`

func TestStoreOverImportedLogs(t *testing.T) {
	csvLog, err := logio.ImportCSV(strings.NewReader(storeCSV), logio.CSVOptions{TimeColumn: "when"})
	if err != nil {
		t.Fatal(err)
	}
	xesLog, err := logio.ImportXES(strings.NewReader(storeXES), logio.XESOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for name, l := range map[string]*wlog.Log{"csv": csvLog, "xes": xesLog} {
		t.Run(name, func(t *testing.T) {
			assertSourcesAgree(t, eval.NewIndex(l), Build(l), l)
		})
	}
	// The XES importer trims concept:name whitespace at ingest, so " Ship "
	// and "Ship" share one symbol across both backends.
	cs := Build(xesLog)
	if got := cs.ActivityCount("Ship"); got != 2 {
		t.Errorf("ActivityCount(Ship) over XES log = %d, want 2 (trimmed at ingest)", got)
	}
	if _, ok := cs.ResolveActivity(" Ship "); ok {
		t.Error("untrimmed activity name survived XES ingest into the symbol table")
	}
}

// TestSparsePostingLayout forces the binary-search layout (dense budget 0)
// and requires answers identical to the dense layout and the row index.
func TestSparsePostingLayout(t *testing.T) {
	l := gen.MustRandomLog(gen.LogParams{Instances: 30, MeanLength: 25, Skew: 1.0, Seed: 13})
	sparse := build(l, 0)
	for i := range sparse.post {
		if sparse.post[i].wids == nil {
			t.Fatal("dense posting built despite a zero dense-cell budget")
		}
	}
	assertSourcesAgree(t, eval.NewIndex(l), sparse, l)
	dense := Build(l)
	for _, wid := range dense.WIDs() {
		for _, act := range dense.Activities() {
			if !reflect.DeepEqual(dense.ActivitySeqs(wid, act), sparse.ActivitySeqs(wid, act)) {
				t.Fatalf("layouts disagree on ActivitySeqs(%d, %q)", wid, act)
			}
		}
	}
}
