package colstore

import (
	"sort"

	"wlq/internal/core/eval"
	"wlq/internal/wlog"
)

// LiveStore is the appendable columnar-symbol backend for live ingestion.
// The immutable Store trades mutability for its CSR layout; a growing log
// needs the opposite trade, so LiveStore keeps the row backend's
// per-instance record slices (via an embedded eval.Index, which already
// maintains the Algorithm 2 structures incrementally) and layers the
// columnar path's defining optimization on top: interned activity symbols
// with per-instance posting lists, so the evaluator's SymbolicSource fast
// path — integer-keyed probes, no string hashing in the loops — keeps
// working while records arrive.
//
// Like every eval.Source it must be immutable while read; the
// stream.Monitor's lock provides that window. Append must not run
// concurrently with reads (same contract as eval.Index.Append).
type LiveStore struct {
	ix   *eval.Index
	syms *SymbolTable
	// seqs holds, per instance, the ascending is-lsn list of each activity
	// symbol — the live twin of the Store's posting lists.
	seqs map[uint64]map[int32][]uint64
}

// NewLiveStore returns an empty appendable columnar backend.
func NewLiveStore() *LiveStore {
	return &LiveStore{
		ix:   eval.NewEmptyIndex(),
		syms: NewSymbolTable(),
		seqs: make(map[uint64]map[int32][]uint64),
	}
}

// BuildLive constructs a LiveStore holding l's records — the appendable
// counterpart of Build, used as the base snapshot under live ingestion.
func BuildLive(l *wlog.Log) *LiveStore {
	s := NewLiveStore()
	for i := 0; i < l.Len(); i++ {
		s.Append(l.Record(i))
	}
	return s
}

// Append maintains the index and the symbol posting lists for one record.
// Records must arrive in lsn order with is-lsn dense per instance (the
// stream.Monitor validates; Append trusts).
func (s *LiveStore) Append(r wlog.Record) {
	s.ix.Append(r)
	sym := s.syms.Intern(r.Activity)
	inst := s.seqs[r.WID]
	if inst == nil {
		inst = make(map[int32][]uint64)
		s.seqs[r.WID] = inst
	}
	inst[sym] = append(inst[sym], r.Seq)
}

// WIDs implements eval.Source.
func (s *LiveStore) WIDs() []uint64 { return s.ix.WIDs() }

// InstanceLen implements eval.Source.
func (s *LiveStore) InstanceLen(wid uint64) int { return s.ix.InstanceLen(wid) }

// Instance implements eval.Source.
func (s *LiveStore) Instance(wid uint64) []wlog.Record { return s.ix.Instance(wid) }

// Record implements eval.Source.
func (s *LiveStore) Record(wid, seq uint64) (wlog.Record, bool) { return s.ix.Record(wid, seq) }

// ActivitySeqs implements eval.Source through the symbol path.
func (s *LiveStore) ActivitySeqs(wid uint64, act string) []uint64 {
	sym, ok := s.syms.Resolve(act)
	if !ok {
		return nil
	}
	return s.seqs[wid][sym]
}

// ActivityCount implements eval.Source.
func (s *LiveStore) ActivityCount(act string) int { return s.ix.ActivityCount(act) }

// TotalRecords implements eval.Source.
func (s *LiveStore) TotalRecords() int { return s.ix.TotalRecords() }

// Activities implements eval.Source. The symbol table is in first-seen
// order, so sort a copy.
func (s *LiveStore) Activities() []string {
	names := make([]string, s.syms.Len())
	for i := range names {
		names[i] = s.syms.Name(int32(i))
	}
	sort.Strings(names)
	return names
}

// ResolveActivity implements eval.SymbolicSource.
func (s *LiveStore) ResolveActivity(name string) (int32, bool) { return s.syms.Resolve(name) }

// ActivitySeqsSym implements eval.SymbolicSource.
func (s *LiveStore) ActivitySeqsSym(wid uint64, sym int32) []uint64 { return s.seqs[wid][sym] }

// Symbols exposes the intern table (observability parity with Store).
func (s *LiveStore) Symbols() *SymbolTable { return s.syms }

// LiveStore serves the evaluator's symbolic fast path; it also satisfies
// stream.Backend (asserted in internal/ingest, keeping the storage layer
// free of runtime-package imports).
var _ eval.SymbolicSource = (*LiveStore)(nil)
