package colstore

import (
	"sort"

	"wlq/internal/core/eval"
	"wlq/internal/wlog"
)

// posting is one activity's occurrence index. seqs holds the activity's
// is-lsn values grouped per instance (ascending within each group); the
// offsets delimiting each instance's group come in two layouts:
//
//   - dense: off has one entry per instance in the log (len = |WIDs|+1,
//     indexed by wid position), so a probe is pure array indexing — O(1).
//     Instances without the activity have an empty range.
//   - sparse: wids lists only the instances where the activity occurs and
//     off runs parallel to it (len = len(wids)+1); a probe binary-searches
//     wids — O(log n). Used when the dense layout's |activities|·|WIDs|
//     offset matrix would blow memory (huge alphabets over many instances).
//
// Build picks one layout per store (dense iff wids==nil in every posting).
type posting struct {
	wids []uint64 // nil in the dense layout
	off  []int32
	seqs []uint64
}

// maxDenseCells caps the dense layout's total offset entries
// (|activities| · (|WIDs|+1)); beyond it Build switches every posting to
// the sparse layout. 4M int32 cells ≈ 16 MB.
const maxDenseCells = 1 << 22

// Store is the columnar backend. All slices are laid out at Build time and
// never mutated afterwards: a Store is an immutable snapshot, exactly like
// the row eval.Index it can replace behind the eval.Source seam, so the
// result cache, shard executor, and hot-reload generation machinery treat
// the two backends identically.
//
// Record storage: recs holds every record grouped by workflow instance and
// sorted by is-lsn within each group; widOff[i]:widOff[i+1] delimits
// instance widList[i]. actCol is the parallel interned-activity column (the
// symbol of recs[k].Activity at actCol[k]) — evaluation loops that only
// need activity identity compare int32s, never strings.
type Store struct {
	syms    *SymbolTable
	recs    []wlog.Record
	actCol  []int32
	widList []uint64
	widOff  []int32
	widIdx  map[uint64]int32
	post    []posting // indexed by activity symbol
	names   []string  // distinct activity names, sorted
}

// Store satisfies the evaluator's backend seam, including the symbolic fast
// path. (It also satisfies rewrite.Stats structurally — ActivityCount,
// TotalRecords, WIDs — so the optimizer's selectivity estimates work
// unchanged over either backend.)
var (
	_ eval.Source         = (*Store)(nil)
	_ eval.SymbolicSource = (*Store)(nil)
)

// Build constructs the columnar representation of a log. The log's records
// are copied; l is not retained.
func Build(l *wlog.Log) *Store { return build(l, maxDenseCells) }

// build is Build with an explicit dense-layout budget (tests force the
// sparse layout by passing 0).
func build(l *wlog.Log, denseCells uint64) *Store {
	recs := l.Records()
	// Group by instance, is-lsn ascending within each (stable on lsn order,
	// though valid logs are already grouped-consistent: is-lsn order agrees
	// with lsn order inside an instance).
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].WID != recs[j].WID {
			return recs[i].WID < recs[j].WID
		}
		return recs[i].Seq < recs[j].Seq
	})

	s := &Store{
		syms:   NewSymbolTable(),
		recs:   recs,
		actCol: make([]int32, len(recs)),
		widIdx: make(map[uint64]int32),
	}

	// wid offset ranges + interned activity column.
	for k, r := range recs {
		if len(s.widList) == 0 || s.widList[len(s.widList)-1] != r.WID {
			s.widIdx[r.WID] = int32(len(s.widList))
			s.widList = append(s.widList, r.WID)
			s.widOff = append(s.widOff, int32(k))
		}
		s.actCol[k] = s.syms.Intern(r.Activity)
	}
	s.widOff = append(s.widOff, int32(len(recs)))

	// Posting lists: one pass over the grouped records extends each symbol's
	// list in (wid, is-lsn) order, which is exactly the sorted order the
	// evaluator's merge joins require.
	s.post = make([]posting, s.syms.Len())
	if cells := uint64(s.syms.Len()) * uint64(len(s.widList)+1); cells <= denseCells {
		// Dense layout: per-symbol offset rows indexed by wid position.
		// off[w+1] is each symbol's running occurrence count through
		// instance w, so off[w]:off[w+1] is instance w's group in seqs.
		counts := make([]int32, s.syms.Len())
		for i := range s.post {
			s.post[i].off = make([]int32, len(s.widList)+1)
		}
		for w := range s.widList {
			for k := s.widOff[w]; k < s.widOff[w+1]; k++ {
				sym := s.actCol[k]
				s.post[sym].seqs = append(s.post[sym].seqs, recs[k].Seq)
				counts[sym]++
			}
			for i := range s.post {
				s.post[i].off[w+1] = counts[i]
			}
		}
	} else {
		for k, r := range recs {
			p := &s.post[s.actCol[k]]
			if len(p.wids) == 0 || p.wids[len(p.wids)-1] != r.WID {
				p.wids = append(p.wids, r.WID)
				p.off = append(p.off, int32(len(p.seqs)))
			}
			p.seqs = append(p.seqs, r.Seq)
		}
		for i := range s.post {
			s.post[i].off = append(s.post[i].off, int32(len(s.post[i].seqs)))
		}
	}

	s.names = append(s.names, s.syms.names...)
	sort.Strings(s.names)
	return s
}

// WIDs returns the instance ids, ascending. Callers must not modify the
// returned slice.
func (s *Store) WIDs() []uint64 { return s.widList }

// InstanceLen returns the number of records of the instance (0 when the wid
// is absent).
func (s *Store) InstanceLen(wid uint64) int {
	i, ok := s.widIdx[wid]
	if !ok {
		return 0
	}
	return int(s.widOff[i+1] - s.widOff[i])
}

// Instance returns the instance's records in is-lsn order — a zero-copy
// slice of the record column. Callers must not modify it.
func (s *Store) Instance(wid uint64) []wlog.Record {
	i, ok := s.widIdx[wid]
	if !ok {
		return nil
	}
	return s.recs[s.widOff[i]:s.widOff[i+1]]
}

// Record returns the instance's record with the given is-lsn. Valid logs
// have dense is-lsn 1..n per instance, so the common case is a direct
// offset; a binary search covers unchecked logs with gaps.
func (s *Store) Record(wid, seq uint64) (wlog.Record, bool) {
	inst := s.Instance(wid)
	if seq >= 1 && seq <= uint64(len(inst)) {
		if r := inst[seq-1]; r.Seq == seq {
			return r, true
		}
	}
	j := sort.Search(len(inst), func(i int) bool { return inst[i].Seq >= seq })
	if j < len(inst) && inst[j].Seq == seq {
		return inst[j], true
	}
	return wlog.Record{}, false
}

// ActivitySeqs returns the is-lsn values (ascending) of the instance's
// records carrying the activity. Callers must not modify the result.
func (s *Store) ActivitySeqs(wid uint64, act string) []uint64 {
	sym, ok := s.syms.Resolve(act)
	if !ok {
		return nil
	}
	return s.ActivitySeqsSym(wid, sym)
}

// ResolveActivity maps an activity name to its interned symbol.
func (s *Store) ResolveActivity(name string) (int32, bool) {
	return s.syms.Resolve(name)
}

// ActivitySeqsSym is the symbolic fast path: a zero-copy slice of the
// activity's is-lsn group for the instance — O(1) array indexing in the
// dense posting layout, O(log n) binary search in the sparse one. No
// allocation, no string comparison either way.
func (s *Store) ActivitySeqsSym(wid uint64, sym int32) []uint64 {
	if sym < 0 || int(sym) >= len(s.post) {
		return nil
	}
	p := &s.post[sym]
	if p.wids == nil { // dense: off is indexed by wid position
		w, ok := s.widIdx[wid]
		if !ok {
			return nil
		}
		if lo, hi := p.off[w], p.off[w+1]; lo < hi {
			return p.seqs[lo:hi]
		}
		return nil
	}
	i := sort.Search(len(p.wids), func(i int) bool { return p.wids[i] >= wid })
	if i == len(p.wids) || p.wids[i] != wid {
		return nil
	}
	return p.seqs[p.off[i]:p.off[i+1]]
}

// ActivityCount returns the total number of records (across all instances)
// carrying the activity — the optimizer's selectivity statistic, answered
// here in O(1) from the posting list length.
func (s *Store) ActivityCount(act string) int {
	sym, ok := s.syms.Resolve(act)
	if !ok {
		return 0
	}
	return len(s.post[sym].seqs)
}

// TotalRecords returns m = |L|.
func (s *Store) TotalRecords() int { return len(s.recs) }

// Activities returns the distinct activity names, sorted. Callers must not
// modify the returned slice.
func (s *Store) Activities() []string { return s.names }

// Symbols exposes the symbol table (read-only after Build) for diagnostics
// and tests.
func (s *Store) Symbols() *SymbolTable { return s.syms }
