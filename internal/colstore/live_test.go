package colstore

import (
	"testing"

	"wlq/internal/core/eval"
	"wlq/internal/core/rewrite"
)

// The live (appendable) columnar backend joins the same equivalence bar as
// the immutable one: for every query, a LiveStore fed record-by-record must
// answer identically to the row backend and to a Store built in one shot —
// that is the proof that incremental Algorithm 2 maintenance preserves the
// columnar-symbol fast path.
func TestLiveStoreEquivalence(t *testing.T) {
	for logName, l := range equivalenceLogs(t) {
		ix := eval.NewIndex(l)
		cs := Build(l)
		ls := BuildLive(l)
		for _, q := range equivalenceQueries {
			for _, rewritten := range []bool{false, true} {
				name := logName + "/" + q
				if rewritten {
					name += "/rewritten"
				}
				t.Run(name, func(t *testing.T) {
					rowP, colP, liveP := parse(t, q), parse(t, q), parse(t, q)
					if rewritten {
						rowP, _ = rewrite.Optimize(rowP, ix)
						colP, _ = rewrite.Optimize(colP, cs)
						liveP, _ = rewrite.Optimize(liveP, ls)
					}
					want := eval.New(ix, eval.Options{}).Eval(rowP)
					batch := eval.New(cs, eval.Options{}).Eval(colP)
					live := eval.New(ls, eval.Options{}).Eval(liveP)
					if !want.Equal(live) {
						t.Fatalf("live columnar diverges from row:\nrow:  %s\nlive: %s", want, live)
					}
					if !batch.Equal(live) {
						t.Fatalf("live columnar diverges from batch columnar:\nbatch: %s\nlive:  %s", batch, live)
					}
				})
			}
		}
	}
}

// The appendable backend must report the same planner statistics and
// symbolic resolution as the batch build, or the optimizer would pick
// different plans live vs. reloaded.
func TestLiveStoreStatsAndSymbols(t *testing.T) {
	for logName, l := range equivalenceLogs(t) {
		cs := Build(l)
		ls := BuildLive(l)
		t.Run(logName, func(t *testing.T) {
			if cs.TotalRecords() != ls.TotalRecords() {
				t.Fatalf("TotalRecords: batch %d live %d", cs.TotalRecords(), ls.TotalRecords())
			}
			acts := cs.Activities()
			liveActs := ls.Activities()
			if len(acts) != len(liveActs) {
				t.Fatalf("Activities: batch %v live %v", acts, liveActs)
			}
			for i, a := range acts {
				if liveActs[i] != a {
					t.Fatalf("Activities[%d]: batch %q live %q", i, a, liveActs[i])
				}
				if cs.ActivityCount(a) != ls.ActivityCount(a) {
					t.Fatalf("ActivityCount(%q): batch %d live %d", a, cs.ActivityCount(a), ls.ActivityCount(a))
				}
				if _, ok := ls.ResolveActivity(a); !ok {
					t.Fatalf("live backend cannot resolve %q", a)
				}
			}
			if _, ok := ls.ResolveActivity("NoSuchActivity"); ok {
				t.Fatal("live backend resolved an absent activity")
			}
			for _, wid := range cs.WIDs() {
				for _, a := range acts {
					want := cs.ActivitySeqs(wid, a)
					got := ls.ActivitySeqs(wid, a)
					if len(want) != len(got) {
						t.Fatalf("ActivitySeqs(%d,%q): batch %v live %v", wid, a, want, got)
					}
					sym, _ := ls.ResolveActivity(a)
					if symSeqs := ls.ActivitySeqsSym(wid, sym); len(symSeqs) != len(want) {
						t.Fatalf("ActivitySeqsSym(%d,%q): %v want len %d", wid, a, symSeqs, len(want))
					}
				}
			}
		})
	}
}
